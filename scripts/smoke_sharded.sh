#!/usr/bin/env bash
# Multi-process sharded-ingest smoke: two exrayd collector shards and the
# exraygw gateway run as real processes, a heterogeneous device fleet
# uploads through the gateway with edgerun -upload, and the gateway's merged
# /fleet is diffed byte-for-byte against a single collector that ingested
# the identical per-device logs, and the shards' own /metrics chunk counters
# are reconciled against the chunks the upload clients reported sending.
# Run from anywhere; needs go and curl.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

bin="$work/bin"
mkdir -p "$bin"
go build -o "$bin" ./cmd/refrun ./cmd/edgerun ./cmd/exrayd ./cmd/exraygw

"$bin/refrun" -o "$work/ref.jsonl" -frames 8 >/dev/null

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "smoke_sharded: $1 never became healthy" >&2
	return 1
}

# The ring: two durable collector shards behind the gateway.
"$bin/exrayd" -ref "$work/ref.jsonl" -addr 127.0.0.1:19181 \
	-data-dir "$work/s0" -segment-bytes 65536 >/dev/null &
pids+=($!)
"$bin/exrayd" -ref "$work/ref.jsonl" -addr 127.0.0.1:19182 \
	-data-dir "$work/s1" -segment-bytes 65536 >/dev/null &
pids+=($!)
wait_ready http://127.0.0.1:19181
wait_ready http://127.0.0.1:19182
"$bin/exraygw" -addr 127.0.0.1:19180 \
	-shard s0=http://127.0.0.1:19181 -shard s1=http://127.0.0.1:19182 >/dev/null &
pids+=($!)
wait_ready http://127.0.0.1:19180

# A heterogeneous fleet uploads through the gateway; the replay also writes
# each device's shard log next to -o (edge.d0-Pixel4.jsonl, ...).
"$bin/edgerun" -model mobilenetv2-mini -bug normalization \
	-fleet "Pixel4:1,Pixel3:1,Emulator-x86:1" \
	-upload http://127.0.0.1:19180 -o "$work/edge.jsonl" >"$work/edgerun.out"

curl -fsS http://127.0.0.1:19180/fleet >"$work/fleet_sharded.json"

# Both shards must actually hold sessions — the ring spread the fleet.
for port in 19181 19182; do
	n=$(curl -fsS "http://127.0.0.1:$port/devices" | grep -c '"device"' || true)
	if [ "$n" -eq 0 ]; then
		echo "smoke_sharded: shard on :$port holds no sessions — the ring never spread the fleet" >&2
		exit 1
	fi
done

# Self-telemetry: each upload summary says how many chunks the client sent;
# the shards' own /metrics counters must agree exactly, and the gateway must
# have proxied every one of them (redirects are off in this smoke).
client_chunks=$(sed -n 's/.* in \([0-9][0-9]*\) chunks.*/\1/p' "$work/edgerun.out" | awk '{s+=$1} END {print s+0}')
server_chunks=0
for port in 19181 19182; do
	n=$(curl -fsS "http://127.0.0.1:$port/metrics" |
		awk '/^mlexray_ingest_chunks_total /{print $2}')
	server_chunks=$((server_chunks + ${n:-0}))
done
gateway_proxied=$(curl -fsS http://127.0.0.1:19180/metrics |
	awk '/^mlexray_gateway_proxy_seconds_count/{s+=$2} END {print s+0}')
if [ "$client_chunks" -eq 0 ] || [ "$server_chunks" -ne "$client_chunks" ]; then
	echo "smoke_sharded: shard /metrics count $server_chunks chunks but the clients sent $client_chunks" >&2
	exit 1
fi
if [ "$gateway_proxied" -ne "$client_chunks" ]; then
	echo "smoke_sharded: gateway proxied $gateway_proxied chunks but the clients sent $client_chunks" >&2
	exit 1
fi

# Reference: one collector ingests the identical per-device logs directly.
"$bin/exrayd" -ref "$work/ref.jsonl" -addr 127.0.0.1:19183 >/dev/null &
pids+=($!)
wait_ready http://127.0.0.1:19183
for log in "$work"/edge.d*.jsonl; do
	dev=$(basename "$log")
	dev=${dev#edge.}
	dev=${dev%.jsonl}
	curl -fsS -X POST --data-binary "@$log" \
		"http://127.0.0.1:19183/ingest?device=$dev" >/dev/null
done
curl -fsS http://127.0.0.1:19183/fleet >"$work/fleet_single.json"

if ! cmp -s "$work/fleet_single.json" "$work/fleet_sharded.json"; then
	echo "smoke_sharded: merged /fleet differs from the single-collector reference" >&2
	diff "$work/fleet_single.json" "$work/fleet_sharded.json" >&2 || true
	exit 1
fi
echo "smoke_sharded: PASS — merged /fleet byte-identical to the single collector" \
	"($(wc -c <"$work/fleet_sharded.json") bytes);" \
	"/metrics reconciled ($client_chunks chunks client-side = $server_chunks server-side, $gateway_proxied proxied)"
