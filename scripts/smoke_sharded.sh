#!/usr/bin/env bash
# Multi-process sharded-ingest smoke: two exrayd collector shards and the
# exraygw gateway run as real processes, a heterogeneous device fleet
# uploads through the gateway with edgerun -upload, and the gateway's merged
# /fleet is diffed byte-for-byte against a single collector that ingested
# the identical per-device logs. Run from anywhere; needs go and curl.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

bin="$work/bin"
mkdir -p "$bin"
go build -o "$bin" ./cmd/refrun ./cmd/edgerun ./cmd/exrayd ./cmd/exraygw

"$bin/refrun" -o "$work/ref.jsonl" -frames 8 >/dev/null

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "smoke_sharded: $1 never became healthy" >&2
	return 1
}

# The ring: two durable collector shards behind the gateway.
"$bin/exrayd" -ref "$work/ref.jsonl" -addr 127.0.0.1:19181 \
	-data-dir "$work/s0" -segment-bytes 65536 >/dev/null &
pids+=($!)
"$bin/exrayd" -ref "$work/ref.jsonl" -addr 127.0.0.1:19182 \
	-data-dir "$work/s1" -segment-bytes 65536 >/dev/null &
pids+=($!)
wait_ready http://127.0.0.1:19181
wait_ready http://127.0.0.1:19182
"$bin/exraygw" -addr 127.0.0.1:19180 \
	-shard s0=http://127.0.0.1:19181 -shard s1=http://127.0.0.1:19182 >/dev/null &
pids+=($!)
wait_ready http://127.0.0.1:19180

# A heterogeneous fleet uploads through the gateway; the replay also writes
# each device's shard log next to -o (edge.d0-Pixel4.jsonl, ...).
"$bin/edgerun" -model mobilenetv2-mini -bug normalization \
	-fleet "Pixel4:1,Pixel3:1,Emulator-x86:1" \
	-upload http://127.0.0.1:19180 -o "$work/edge.jsonl" >/dev/null

curl -fsS http://127.0.0.1:19180/fleet >"$work/fleet_sharded.json"

# Both shards must actually hold sessions — the ring spread the fleet.
for port in 19181 19182; do
	n=$(curl -fsS "http://127.0.0.1:$port/devices" | grep -c '"device"' || true)
	if [ "$n" -eq 0 ]; then
		echo "smoke_sharded: shard on :$port holds no sessions — the ring never spread the fleet" >&2
		exit 1
	fi
done

# Reference: one collector ingests the identical per-device logs directly.
"$bin/exrayd" -ref "$work/ref.jsonl" -addr 127.0.0.1:19183 >/dev/null &
pids+=($!)
wait_ready http://127.0.0.1:19183
for log in "$work"/edge.d*.jsonl; do
	dev=$(basename "$log")
	dev=${dev#edge.}
	dev=${dev%.jsonl}
	curl -fsS -X POST --data-binary "@$log" \
		"http://127.0.0.1:19183/ingest?device=$dev" >/dev/null
done
curl -fsS http://127.0.0.1:19183/fleet >"$work/fleet_single.json"

if ! cmp -s "$work/fleet_single.json" "$work/fleet_sharded.json"; then
	echo "smoke_sharded: merged /fleet differs from the single-collector reference" >&2
	diff "$work/fleet_single.json" "$work/fleet_sharded.json" >&2 || true
	exit 1
fi
echo "smoke_sharded: PASS — merged /fleet byte-identical to the single collector" \
	"($(wc -c <"$work/fleet_sharded.json") bytes)"
