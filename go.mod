module mlexray

go 1.24
