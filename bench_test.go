package mlexray

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (plus the appendix results and the DESIGN.md ablations). Each
// benchmark regenerates its artifact through internal/experiments and prints
// the table/series once; b.N iterations re-run only the (cheap) render so
// `go test -bench` semantics hold. Reported custom metrics carry the headline
// numbers into the benchmark output.
//
// Run everything with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"mlexray/internal/experiments"
	"mlexray/internal/pipeline"
)

// once-guards so expensive experiments run a single time per process even
// under -benchtime growth.
var benchOnce sync.Map

func runOnce[T any](key string, b *testing.B, f func() (T, error)) T {
	b.Helper()
	type slot struct {
		once sync.Once
		val  T
		err  error
	}
	s, _ := benchOnce.LoadOrStore(key, &slot{})
	sl := s.(*slot)
	sl.once.Do(func() { sl.val, sl.err = f() })
	if sl.err != nil {
		b.Fatal(sl.err)
	}
	return sl.val
}

var printed sync.Map

// printOnceThenDiscard renders to stdout the first time, io.Discard after.
func printOnceThenDiscard(key string, render func(w io.Writer)) {
	if _, loaded := printed.LoadOrStore(key, true); loaded {
		render(io.Discard)
		return
	}
	fmt.Println()
	render(os.Stdout)
}

func BenchmarkTable1_LinesOfCode(b *testing.B) {
	rows := experiments.Table1()
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("t1", func(w io.Writer) { experiments.RenderTable1(w, rows) })
	}
	with, without := 0, 0
	for _, r := range rows {
		with += r.WithInst + r.WithAssert
		without += r.WithoutInst + r.WithoutAssert
	}
	b.ReportMetric(float64(with), "loc_with")
	b.ReportMetric(float64(without), "loc_without")
}

func BenchmarkTable2_RuntimeOverhead(b *testing.B) {
	rows := runOnce("t2", b, func() ([]experiments.Table2Row, error) { return experiments.Table2(100) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("t2", func(w io.Writer) { experiments.RenderTable2(w, rows) })
	}
	for _, r := range rows {
		if r.Device == "Pixel4" && r.Instrumented {
			b.ReportMetric(r.LatMeanMs, "pixel4_inst_ms")
			b.ReportMetric(r.DiskKBPerFrm, "disk_kb_per_frame")
		}
	}
}

func BenchmarkTable3_OfflineOverheadQuant(b *testing.B) {
	rows := runOnce("t3", b, func() ([]experiments.Table3Row, error) { return experiments.Table3(20) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("t3", func(w io.Writer) {
			experiments.RenderTable3(w, "Table 3 — offline per-layer validation overhead (quantized int8 models)", rows)
		})
	}
	b.ReportMetric(rows[1].DiskMB, "v2_quant_log_mb")
}

func BenchmarkTable5_OfflineOverheadFloat(b *testing.B) {
	rows := runOnce("t5", b, func() ([]experiments.Table3Row, error) { return experiments.Table5(20) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("t5", func(w io.Writer) {
			experiments.RenderTable3(w, "Table 5 — offline per-layer validation overhead (float32 models)", rows)
		})
	}
	b.ReportMetric(rows[1].DiskMB, "v2_float_log_mb")
}

func BenchmarkTable4_LatencyByLayerType(b *testing.B) {
	rows := runOnce("t4", b, func() ([]experiments.Table4Row, error) { return experiments.Table4() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("t4", func(w io.Writer) { experiments.RenderTable4(w, rows) })
	}
	for _, r := range rows {
		if r.Class == "Conv" {
			b.ReportMetric(r.Ms["MobileQuantRef"]/r.Ms["MobileQuant"], "conv_ref_over_opt")
		}
	}
}

func BenchmarkFigure3_CoverageMatrix(b *testing.B) {
	cells := runOnce("f3", b, func() ([]experiments.Figure3Cell, error) { return experiments.Figure3(6) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f3", func(w io.Writer) { experiments.RenderFigure3(w, cells) })
	}
	caught := 0
	for _, c := range cells {
		if c.Caught {
			caught++
		}
	}
	b.ReportMetric(float64(caught), "issues_caught")
	b.ReportMetric(float64(len(cells)), "cells")
}

func BenchmarkFigure4a_PreprocClassification(b *testing.B) {
	rows := runOnce("f4a", b, func() ([]experiments.Figure4aRow, error) { return experiments.Figure4a() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f4a", func(w io.Writer) { experiments.RenderFigure4a(w, rows) })
	}
	var rotDrop float64
	for _, r := range rows {
		rotDrop += r.Baseline - r.ByBug[pipeline.BugRotation]
	}
	b.ReportMetric(rotDrop/float64(len(rows)), "mean_rotation_drop")
}

func BenchmarkFigure4b_PreprocDetection(b *testing.B) {
	rows := runOnce("f4b", b, func() ([]experiments.Figure4bRow, error) { return experiments.Figure4b() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f4b", func(w io.Writer) { experiments.RenderFigure4b(w, rows) })
	}
	b.ReportMetric(rows[0].Baseline, "ssd_baseline_map")
}

func BenchmarkFigure4c_PreprocSpeech(b *testing.B) {
	rows := runOnce("f4c", b, func() ([]experiments.Figure4cRow, error) { return experiments.Figure4c() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f4c", func(w io.Writer) { experiments.RenderFigure4c(w, rows) })
	}
	b.ReportMetric(rows[0].Baseline-rows[0].WrongNorm, "specnorm_drop")
}

func BenchmarkFigure5_QuantizationAccuracy(b *testing.B) {
	rows := runOnce("f5", b, func() ([]experiments.Figure5Row, error) { return experiments.Figure5() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f5", func(w io.Writer) { experiments.RenderFigure5(w, rows) })
	}
	for _, r := range rows {
		if r.Model == "mobilenetv3-mini" {
			b.ReportMetric(r.MobileQuantR, "v3_quant_ref_acc")
		}
	}
}

func BenchmarkFigure5_FixedKernels(b *testing.B) {
	rows := runOnce("f5fix", b, func() ([]experiments.Figure5Row, error) { return experiments.Figure5Fixed() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f5fix", func(w io.Writer) {
			fprintHeader(w, "Figure 5 (ablation) — same sweep on the repaired kernel build")
			experiments.RenderFigure5(w, rows)
		})
	}
}

func fprintHeader(w io.Writer, s string) { fmt.Fprintln(w, s) }

func BenchmarkFigure6_PerLayerRMSE(b *testing.B) {
	series := runOnce("f6", b, func() ([]experiments.Figure6Series, error) { return experiments.Figure6(5) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("f6", func(w io.Writer) { experiments.RenderFigure6(w, series) })
	}
}

func BenchmarkAppendixA_TextInvariance(b *testing.B) {
	rows := runOnce("txt", b, func() ([]experiments.AppendixTextRow, error) { return experiments.AppendixText(80) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("txt", func(w io.Writer) { experiments.RenderAppendixText(w, rows) })
	}
	b.ReportMetric(rows[0].EmbeddingNRMSE, "embedding_nrmse")
}

func BenchmarkAppendixA_InGraphPreprocessing(b *testing.B) {
	rows := runOnce("ing", b, func() ([]experiments.AppendixInGraphRow, error) { return experiments.AppendixInGraph(100) })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("ing", func(w io.Writer) { experiments.RenderAppendixInGraph(w, rows) })
	}
}

func BenchmarkAblation_ErrorMetrics(b *testing.B) {
	rows := runOnce("abem", b, func() ([]experiments.AblationErrorMetricsRow, error) { return experiments.AblationErrorMetrics() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("abem", func(w io.Writer) { experiments.RenderAblationErrorMetrics(w, rows) })
	}
}

func BenchmarkAblation_PerChannel(b *testing.B) {
	rows := runOnce("abpc", b, func() ([]experiments.AblationQuantRow, error) { return experiments.AblationPerChannel() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("abpc", func(w io.Writer) {
			experiments.RenderAblationQuant(w, "Ablation — per-channel vs per-tensor weight quantization (v2)", rows)
		})
	}
	b.ReportMetric(rows[0].Accuracy-rows[1].Accuracy, "per_channel_gain")
}

func BenchmarkAblation_Calibration(b *testing.B) {
	rows := runOnce("abcal", b, func() ([]experiments.AblationQuantRow, error) { return experiments.AblationCalibration() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("abcal", func(w io.Writer) {
			experiments.RenderAblationQuant(w, "Ablation — calibration with an outlier sample: strict vs clipped", rows)
		})
	}
}

func BenchmarkAblation_SymmetricActivations(b *testing.B) {
	rows := runOnce("absym", b, func() ([]experiments.AblationQuantRow, error) { return experiments.AblationSymmetric() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("absym", func(w io.Writer) {
			experiments.RenderAblationQuant(w, "Ablation — asymmetric vs symmetric activation quantization (v2)", rows)
		})
	}
}

func BenchmarkAblation_CaptureMode(b *testing.B) {
	rows := runOnce("abcap", b, func() ([]experiments.AblationCaptureRow, error) { return experiments.AblationCaptureMode() })
	for i := 0; i < b.N; i++ {
		printOnceThenDiscard("abcap", func(w io.Writer) { experiments.RenderAblationCapture(w, rows) })
	}
	b.ReportMetric(float64(rows[1].BytesPerFrame)/float64(rows[0].BytesPerFrame), "full_over_stats")
}
