package mlexray_test

// End-to-end exercise of the public API: instrument an edge app with a bug,
// replay the reference pipeline, persist both logs as JSONL files (the
// cross-process workflow of cmd/edgerun + cmd/refrun), read them back and
// validate.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/imaging"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/zoo"
)

func captureLog(t *testing.T, bug pipeline.Bug, resolver *ops.Resolver, quantized bool) *mlexray.Log {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	m := entry.Mobile
	if quantized {
		m = entry.Quant
	}
	mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true))
	cl, err := pipeline.NewClassifier(m, pipeline.Options{Resolver: resolver, Monitor: mon, Bug: bug})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range datasets.SynthImageNet(5555, 5) {
		if _, _, err := cl.Classify(s.Image); err != nil {
			t.Fatal(err)
		}
	}
	return mon.Log()
}

// roundTripThroughDisk serializes a log to a JSONL file and reads it back —
// the cross-process path.
func roundTripThroughDisk(t *testing.T, l *mlexray.Log, path string) *mlexray.Log {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := mlexray.ReadLog(rf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestFacadeEndToEndChannelBug(t *testing.T) {
	dir := t.TempDir()
	edge := roundTripThroughDisk(t,
		captureLog(t, pipeline.BugChannel, ops.NewOptimized(ops.Fixed()), false),
		filepath.Join(dir, "edge.jsonl"))
	ref := roundTripThroughDisk(t,
		captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false),
		filepath.Join(dir, "ref.jsonl"))

	report, err := mlexray.Validate(edge, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.OutputAgreement >= 0.99 {
		t.Errorf("channel bug should reduce agreement, got %.2f", report.OutputAgreement)
	}
	found := false
	for _, f := range report.Findings {
		if f.Assertion == "channel-arrangement" {
			found = true
		}
	}
	if !found {
		t.Errorf("channel-arrangement finding missing after disk round trip: %+v", report.Findings)
	}
}

// TestFacadeKernelBackend drives the kernel-backend seam end to end through
// the public API: a tiled-backend edge log must validate cleanly (benign
// float drift, bounded by the validators) against a blocked-backend
// reference, and the flag-name round trip must cover every backend.
func TestFacadeKernelBackend(t *testing.T) {
	for _, b := range mlexray.KernelBackends() {
		got, err := mlexray.ParseKernelBackend(b.String())
		if err != nil {
			t.Fatalf("ParseKernelBackend(%q): %v", b.String(), err)
		}
		if got != b {
			t.Errorf("ParseKernelBackend(%q) = %v, want %v", b.String(), got, b)
		}
	}
	if _, err := mlexray.ParseKernelBackend("simd512"); err == nil {
		t.Error("ParseKernelBackend accepted an unknown backend")
	}

	capture := func(backend mlexray.KernelBackend) *mlexray.Log {
		entry, err := zoo.Get("mobilenetv2-mini")
		if err != nil {
			t.Fatal(err)
		}
		mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true))
		cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Monitor: mon, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range datasets.SynthImageNet(7777, 5) {
			if _, _, err := cl.Classify(s.Image); err != nil {
				t.Fatal(err)
			}
		}
		return mon.Log()
	}
	edge := capture(mlexray.KernelTiled)
	ref := capture(mlexray.KernelBlocked)
	report, err := mlexray.Validate(edge, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.OutputAgreement < 0.99 {
		t.Errorf("tiled vs blocked agreement = %.2f, want >= 0.99 (benign drift only)", report.OutputAgreement)
	}
}

func TestFacadeQuantKernelDiagnosis(t *testing.T) {
	edge := captureLog(t, pipeline.BugNone, ops.NewOptimized(ops.Historical()), true)
	ref := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	diffs, err := mlexray.CompareLayers(edge, ref)
	if err != nil {
		t.Fatal(err)
	}
	spike, ok := mlexray.FirstSpike(diffs, 0.1, 3)
	if !ok || spike.OpType != "DepthwiseConv2D" {
		t.Errorf("spike = %+v, ok=%v; want DepthwiseConv2D", spike, ok)
	}
}

func TestFacadeCustomAssertion(t *testing.T) {
	edge := captureLog(t, pipeline.BugNone, ops.NewOptimized(ops.Fixed()), false)
	ref := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	called := false
	opts := mlexray.DefaultValidateOptions()
	opts.Assertions = append(opts.Assertions, mlexray.AssertionFunc{
		AssertionName: "user-check",
		Fn: func(ctx *mlexray.AssertCtx) *mlexray.Finding {
			called = true
			if len(ctx.Edge.MetricValues(mlexray.KeyInferenceLatency)) == 0 {
				return &mlexray.Finding{Assertion: "user-check", Detail: "no latency telemetry"}
			}
			return nil
		},
	})
	report, err := mlexray.Validate(edge, ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom assertion never ran")
	}
	// A clean deployment: high agreement, no findings.
	if report.OutputAgreement < 0.99 {
		t.Errorf("clean run agreement = %.2f", report.OutputAgreement)
	}
	for _, f := range report.Findings {
		t.Errorf("unexpected finding on clean run: %+v", f)
	}
}

// Combined bugs: with two preprocessing bugs at once the per-assertion
// hypotheses don't hold individually, but validation must still flag the
// deployment (the paper: "multiple issues can exist together").
func TestFacadeCombinedBugsStillCaught(t *testing.T) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull))
	cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{
		Resolver: ops.NewOptimized(ops.Fixed()), Monitor: mon, Bug: pipeline.BugChannel,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Manually stack a second bug by feeding rotated captures.
	for _, s := range datasets.SynthImageNet(5555, 5) {
		rotated := imaging.Rotate(s.Image, imaging.Rotate90)
		if _, _, err := cl.Classify(rotated); err != nil {
			t.Fatal(err)
		}
	}
	ref := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	report, err := mlexray.Validate(mon.Log(), ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.OutputAgreement > 0.9 {
		t.Errorf("stacked bugs should tank agreement, got %.2f", report.OutputAgreement)
	}
	// No single-hypothesis assertion should *mis*attribute: the channel
	// assertion requires an exact match after swapping, which rotation
	// breaks; accuracy validation still catches the problem.
	for _, f := range report.Findings {
		if f.Assertion == "channel-arrangement" || f.Assertion == "normalization-range" {
			t.Errorf("single-bug assertion misfired on stacked bugs: %+v", f)
		}
	}
}

// TestFacadeParallelReplay exercises the public parallel replay API: a
// worker-pool replay streamed through a JSONL sink, whose validator output
// matches a sequential capture of the same pipeline.
func TestFacadeParallelReplay(t *testing.T) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, 5)
	base, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: ops.NewReference(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "par.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := mlexray.NewJSONLSink(f)
	par, err := mlexray.Replay(len(samples), func(mon *mlexray.Monitor) (mlexray.ProcessFunc, error) {
		cl, err := base.Clone(mon)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			_, _, err := cl.Classify(samples[i].Image)
			return err
		}, nil
	}, mlexray.ReplayOptions{
		Workers:        4,
		MonitorOptions: []mlexray.MonitorOption{mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true)},
		Sink:           sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Records() != len(par.Records) {
		t.Errorf("sink wrote %d records, merged log has %d", sink.Records(), len(par.Records))
	}

	// The parallel log must validate cleanly against a sequential capture
	// of the same pipeline, and the streamed file must read back whole.
	seq := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	report, err := mlexray.Validate(par, seq, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.OutputAgreement != 1 {
		t.Errorf("parallel vs sequential agreement = %.2f, want 1", report.OutputAgreement)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := mlexray.ReadLog(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(par.Records) {
		t.Errorf("streamed file has %d records, merged log %d", len(back.Records), len(par.Records))
	}
}

// TestFacadeBinarySpillWorkflow drives the codec/sink surface of the facade
// end to end: an edge capture spills frame by frame through a BinarySink to
// disk, a parallel reference replay streams through a binary sink, both read
// back via the auto-detecting ReadLog, and Validate reports exactly what the
// JSONL path reports for the same telemetry.
func TestFacadeBinarySpillWorkflow(t *testing.T) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Edge capture in spill mode: full tensors stream to the binary log as
	// each frame completes instead of accumulating in the monitor.
	edgePath := filepath.Join(dir, "edge.mlxb")
	ef, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	sink := mlexray.NewBinarySink(ef)
	mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull),
		mlexray.WithPerLayer(true), mlexray.WithSink(sink))
	cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{
		Resolver: ops.NewOptimized(ops.Fixed()), Monitor: mon, Bug: pipeline.BugNormalization,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range datasets.SynthImageNet(5555, 4) {
		if _, _, err := cl.Classify(s.Image); err != nil {
			t.Fatal(err)
		}
	}
	if err := mon.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ef.Close(); err != nil {
		t.Fatal(err)
	}
	if mon.MemoryFootprintBytes() != 0 {
		t.Errorf("spill-mode monitor retains %d bytes after Flush", mon.MemoryFootprintBytes())
	}

	// Reference capture: a parallel replay streamed through a binary sink.
	refPath := filepath.Join(dir, "ref.mlxb")
	rfOut, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refSink, err := mlexray.NewLogSink(rfOut, mlexray.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	base, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: ops.NewReference(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, 4)
	if _, err := mlexray.Replay(len(samples), func(m *mlexray.Monitor) (mlexray.ProcessFunc, error) {
		w, err := base.Clone(m)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			_, _, err := w.Classify(samples[i].Image)
			return err
		}, nil
	}, mlexray.ReplayOptions{
		Workers:        2,
		MonitorOptions: []mlexray.MonitorOption{mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true)},
		Sink:           refSink,
		DiscardLog:     true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := refSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rfOut.Close(); err != nil {
		t.Fatal(err)
	}

	readBack := func(path string, wantFormat mlexray.LogFormat) *mlexray.Log {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		l, format, err := mlexray.ReadLogWithFormat(f)
		if err != nil {
			t.Fatal(err)
		}
		if format != wantFormat {
			t.Fatalf("%s detected as %v, want %v", path, format, wantFormat)
		}
		return l
	}
	edge := readBack(edgePath, mlexray.FormatBinary)
	ref := readBack(refPath, mlexray.FormatBinary)

	report, err := mlexray.Validate(edge, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range report.Findings {
		if f.Assertion == "normalization-range" {
			found = true
		}
	}
	if !found {
		t.Errorf("normalization finding missing from binary-log validation: %+v", report.Findings)
	}

	// The same telemetry re-encoded as JSONL must validate identically.
	jsonlEdge := roundTripThroughDisk(t, edge, filepath.Join(dir, "edge.jsonl"))
	jsonlRef := roundTripThroughDisk(t, ref, filepath.Join(dir, "ref.jsonl"))
	jreport, err := mlexray.Validate(jsonlEdge, jsonlRef, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	report.Render(&want)
	jreport.Render(&got)
	if want.String() != got.String() {
		t.Errorf("binary-log report differs from JSONL report:\n%s\nvs\n%s", want.String(), got.String())
	}
}

// TestFacadeFleetWorkflow drives the fleet surface of the facade end to
// end: parse a fleet spec, shard a replay across two simulated devices with
// a bug injected into one of them, and cross-validate the per-device shard
// logs — the flagged device must be exactly the bugged one, and the merge
// of the shard logs must validate like a whole-log replay.
func TestFacadeFleetWorkflow(t *testing.T) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	devs, err := mlexray.ParseFleetSpec("Pixel4:2:4,Pixel3:1")
	if err != nil {
		t.Fatal(err)
	}
	policy, err := mlexray.ParseShardPolicy("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, 16)
	images := make([]*imaging.Image, len(samples))
	for i := range samples {
		images[i] = samples[i].Image
	}
	const bugged = 0
	fleet := &mlexray.Fleet{
		Devices: devs,
		Policy:  policy,
		MonitorOptions: []mlexray.MonitorOption{
			mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true),
		},
	}
	res, err := replay.FleetClassification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images, fleet,
		func(dev int, spec mlexray.DeviceSpec, o *pipeline.Options) {
			if dev == bugged {
				o.Bug = pipeline.BugNormalization
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	ref := captureLogN(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), len(images))
	shards := make([]mlexray.DeviceShardLog, len(devs))
	for d, spec := range devs {
		shards[d] = mlexray.DeviceShardLog{Device: spec.Name(), Log: res.DeviceLogs[d]}
	}
	fleetReport, err := mlexray.FleetValidate(shards, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fleetReport.Flagged) != 1 || fleetReport.Flagged[0] != devs[bugged].Name() {
		t.Fatalf("flagged = %v, want exactly [%s]", fleetReport.Flagged, devs[bugged].Name())
	}

	// The merged shard logs behave as one log under the standard validator.
	merged := mlexray.MergeByFrame(res.DeviceLogs...)
	report, err := mlexray.Validate(merged, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.OutputAgreement >= 1 {
		t.Errorf("merged agreement %.2f should reflect the bugged shard", report.OutputAgreement)
	}
	if report.OutputAgreement != fleetReport.FleetAgreement {
		t.Errorf("merged agreement %.3f != fleet agreement %.3f", report.OutputAgreement, fleetReport.FleetAgreement)
	}
}

// captureLogN is captureLog with a configurable frame count.
func captureLogN(t *testing.T, bug pipeline.Bug, resolver *ops.Resolver, frames int) *mlexray.Log {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true))
	cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: resolver, Monitor: mon, Bug: bug})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range datasets.SynthImageNet(5555, frames) {
		if _, _, err := cl.Classify(s.Image); err != nil {
			t.Fatal(err)
		}
	}
	return mon.Log()
}

// TestFacadeShardedIngest drives the sharded ingestion API through the
// facade: two collectors behind an IngestGateway, a fleet of devices
// uploaded through it, and the merged /fleet byte-identical to a single
// collector ingesting the same uploads.
func TestFacadeShardedIngest(t *testing.T) {
	ref := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	edge := captureLog(t, pipeline.BugNormalization, ops.NewOptimized(ops.Fixed()), false)

	newCollector := func() *httptest.Server {
		srv, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: ref})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}
	single := newCollector()
	s0, s1 := newCollector(), newCollector()
	gw, err := mlexray.NewIngestGateway(mlexray.IngestGatewayOptions{
		Shards: []mlexray.IngestShard{
			{Name: "shard-0", URL: s0.URL},
			{Name: "shard-1", URL: s1.URL},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwTS := httptest.NewServer(gw)
	defer gwTS.Close()

	upload := func(base, device string) {
		sink, err := mlexray.NewRemoteSink(mlexray.RemoteSinkOptions{
			URL: base, Device: device, Format: mlexray.FormatBinary,
		})
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f <= edge.Frames(); f++ {
			if recs := edge.ByFrame(f); len(recs) > 0 {
				if err := sink.WriteFrame(f, recs); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	getFleet := func(base string) []byte {
		resp, err := http.Get(base + "/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/fleet status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, device := range []string{"Pixel4", "Pixel3", "Emulator-1", "Emulator-2"} {
		upload(gwTS.URL, device)
		upload(single.URL, device)
	}
	want, got := getFleet(single.URL), getFleet(gwTS.URL)
	if !bytes.Equal(want, got) {
		t.Errorf("gateway /fleet differs from single collector:\nsingle: %s\nmerged: %s", want, got)
	}

	// The placement ring is exposed directly too, and agrees with the
	// gateway's routing decisions.
	ring, err := mlexray.NewHashRing([]string{"shard-0", "shard-1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, device := range []string{"Pixel4", "Pixel3", "Emulator-1", "Emulator-2"} {
		if ring.Owner(device) != gw.Owner(device) {
			t.Errorf("ring owner %q != gateway owner %q for %s",
				ring.Owner(device), gw.Owner(device), device)
		}
	}
}

// TestFacadeStreamingIngest drives the ingestion API through the facade: a
// replay streams into a live collector via a RemoteSink, and the per-device
// report read off the server equals the offline Validate over the log the
// replay kept locally.
func TestFacadeStreamingIngest(t *testing.T) {
	ref := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	edge := captureLog(t, pipeline.BugNormalization, ops.NewOptimized(ops.Fixed()), false)

	// Streaming validator alone: identical to offline Validate.
	sv := mlexray.NewStreamValidator(ref, mlexray.DefaultValidateOptions())
	for _, r := range edge.Records {
		if err := sv.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := sv.Report()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := mlexray.Validate(edge, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if streamed.OutputAgreement != offline.OutputAgreement || len(streamed.Findings) != len(offline.Findings) {
		t.Errorf("streamed report %+v differs from offline %+v", streamed, offline)
	}

	// Full service loop: durable collector + RemoteSink upload + fleet
	// report, then a restart over the same WAL directory recovering it all.
	walDir := t.TempDir()
	srv, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: ref, DataDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sink, err := mlexray.NewRemoteSink(mlexray.RemoteSinkOptions{
		URL: ts.URL, Device: "Pixel4", Format: mlexray.FormatBinary, Gzip: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= edge.Frames(); f++ {
		if recs := edge.ByFrame(f); len(recs) > 0 {
			if err := sink.WriteFrame(f, recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := srv.FleetReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) != 1 || rep.Devices[0].Device != "Pixel4" {
		t.Fatalf("fleet report devices = %+v", rep.Devices)
	}
	if got, want := rep.FleetAgreement, offline.OutputAgreement; got != want {
		t.Errorf("server-side agreement %.4f, offline %.4f", got, want)
	}

	// Restart the collector over the same data directory: the WAL replay
	// recovers the session and the fleet report survives the "crash".
	srv.Close()
	srv2, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: ref, DataDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var rs mlexray.IngestRecoveryStats = srv2.Recovery()
	if rs.Sessions != 1 || rs.Chunks != sink.Chunks() {
		t.Errorf("recovery stats %+v, want 1 session / %d chunks", rs, sink.Chunks())
	}
	rep2, err := srv2.FleetReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FleetAgreement != rep.FleetAgreement || len(rep2.Devices) != 1 {
		t.Errorf("recovered fleet report %+v differs from pre-crash %+v", rep2, rep)
	}
}

// TestFacadeObservability drives the self-telemetry API through the facade:
// a shared MetricsRegistry across a collector and an upload sink, the
// Prometheus exposition served by DebugMux, the sink's client-side Stats
// reconciling with the server's chunk counter, and the per-chunk trace in
// the collector's TraceRing.
func TestFacadeObservability(t *testing.T) {
	ref := captureLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), false)
	edge := captureLog(t, pipeline.BugNormalization, ops.NewOptimized(ops.Fixed()), false)

	reg := mlexray.NewMetricsRegistry()
	mlexray.RegisterRuntimeMetrics(reg)
	srv, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: ref, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sink, err := mlexray.NewRemoteSink(mlexray.RemoteSinkOptions{
		URL: ts.URL, Device: "Pixel4", Format: mlexray.FormatBinary, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= edge.Frames(); f++ {
		if recs := edge.ByFrame(f); len(recs) > 0 {
			if err := sink.WriteFrame(f, recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var st mlexray.SinkStats = sink.Stats()
	if st.Chunks == 0 || st.GiveUps != 0 {
		t.Fatalf("sink stats %+v: want chunks > 0, no give-ups", st)
	}

	// One scrape shows both sides of the same session: the sink's
	// client-side counter and the collector's ingest counter agree.
	debug := httptest.NewServer(mlexray.DebugMux(reg, srv.Traces()))
	defer debug.Close()
	resp, err := http.Get(debug.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body := buf.String()
	for _, want := range []string{
		"mlexray_ingest_chunks_total", "mlexray_sink_chunks_total",
		"mlexray_process_goroutines",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}

	// The collector traced every chunk under its <stream>-<index> ID.
	spans := srv.TraceDump()
	var ingestHops int
	for _, s := range spans {
		if s.Hop == "ingest" {
			ingestHops++
		}
	}
	if ingestHops != st.Chunks {
		t.Errorf("trace ring holds %d ingest hops, sink sent %d chunks", ingestHops, st.Chunks)
	}
}
