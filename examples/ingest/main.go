// Ingest: stream a fleet replay's telemetry to a live collector and read
// the fleet report off the service — the paper's device→cloud upload half.
//
// Everything in the other examples is offline: logs land in files (or
// memory) and validation runs afterwards. Real deployments upload — the
// ML-EXray architecture is edge instrumentation plus a cloud-side analysis
// service. This example boots the ingestion collector in-process (the same
// handler cmd/exrayd serves), points each fleet device's sink at it, and
// replays: telemetry streams over HTTP in gzip-compressed binary chunks,
// the collector validates every session incrementally as frames arrive, and
// the fleet report — identical to running FleetValidate offline on stored
// logs — is ready the moment the replay ends. No log files anywhere —
// except the collector's own write-ahead log: the example runs the
// collector with a data directory (exrayd's -data-dir), then "crashes" it
// and boots a fresh one over the same directory to show exact recovery —
// the recovered fleet report is byte-identical to the pre-crash one.
//
//	go run ./examples/ingest
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		log.Fatal(err)
	}
	images := replay.Images(datasets.SynthImageNet(5555, 24))
	monOpts := []mlexray.MonitorOption{
		mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true),
	}

	// --- reference replay: what uploads validate against ---
	ref, err := replay.Classification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, images,
		mlexray.ReplayOptions{MonitorOptions: monOpts}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- the collector: in-process here; `exrayd -ref ref.jsonl` in prod.
	// DataDir makes it durable: every accepted chunk is fsynced to a
	// per-session write-ahead segment before the ack.
	walDir, err := os.MkdirTemp("", "exray-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	srv, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: ref, DataDir: walDir})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("collector listening on %s (WAL under %s)\n\n", ts.URL, walDir)

	// --- the fleet: every device streams straight to the collector ---
	devs, err := mlexray.ParseFleetSpec("Pixel4:2:4,Pixel3:1:2,Emulator-x86:1:2")
	if err != nil {
		log.Fatal(err)
	}
	sinks := make([]*mlexray.RemoteSink, len(devs))
	for d := range devs {
		name := fmt.Sprintf("d%d-%s", d, devs[d].Name())
		sinks[d], err = mlexray.NewRemoteSink(mlexray.RemoteSinkOptions{
			URL: ts.URL, Device: name,
			Format: mlexray.FormatBinary, Gzip: true, // raw payloads + gzip: the cheap wire
		})
		if err != nil {
			log.Fatal(err)
		}
		devs[d].Sink = sinks[d]
	}
	fleet := &mlexray.Fleet{
		Devices:        devs,
		Policy:         mlexray.RoundRobin{},
		MonitorOptions: monOpts,
		DiscardLogs:    true, // telemetry lives on the collector, not in memory
	}

	// --- fleet replay with a device-local bug on the Pixel 3 slot ---
	const bugged = 1
	if _, err := replay.FleetClassification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images, fleet,
		func(dev int, spec mlexray.DeviceSpec, o *pipeline.Options) {
			if dev == bugged {
				o.Bug = pipeline.BugNormalization
			}
		}); err != nil {
		log.Fatal(err)
	}
	for d := range sinks {
		if err := sinks[d].Flush(); err != nil { // ship the final chunks
			log.Fatal(err)
		}
		fmt.Printf("d%d-%-12s uploaded %5d records in %d chunks (%7d wire bytes, gzip binary)\n",
			d, devs[d].Name(), sinks[d].Records(), sinks[d].Chunks(), sinks[d].Bytes())
	}

	// --- the report is already there: validation happened during upload ---
	fleetReport, err := srv.FleetReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fleetReport.Render(os.Stdout)

	// --- the same data over the wire, as a dashboard would read it ---
	resp, err := http.Get(ts.URL + "/devices/d1-Pixel3")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var status struct {
		Records int `json:"records"`
		Frames  int `json:"frames"`
		Report  *mlexray.Report
	}
	if err := json.Unmarshal(body, &status); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /devices/d1-Pixel3: %d records, %d frames, agreement %.0f%%\n",
		status.Records, status.Frames, 100*status.Report.OutputAgreement)

	// --- crash the collector and recover from the write-ahead log ---
	// Every acked chunk is on disk, so dropping the server loses nothing: a
	// fresh collector over the same directory replays the segments through
	// the same validation path and serves the identical fleet report.
	preCrash, err := json.Marshal(fleetReport)
	if err != nil {
		log.Fatal(err)
	}
	ts.Close()
	srv.Close() // no drain, no goodbye: the "crash"

	srv2, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: ref, DataDir: walDir})
	if err != nil {
		log.Fatal(err)
	}
	rs := srv2.Recovery()
	fmt.Printf("\ncollector restarted: recovered %d sessions (%d chunks, %d records) from the WAL\n",
		rs.Sessions, rs.Chunks, rs.Records)
	recovered, err := srv2.FleetReport()
	if err != nil {
		log.Fatal(err)
	}
	postCrash, err := json.Marshal(recovered)
	if err != nil {
		log.Fatal(err)
	}
	if string(preCrash) == string(postCrash) {
		fmt.Println("recovered fleet report is byte-identical to the pre-crash one")
	} else {
		log.Fatal("recovered fleet report differs from the pre-crash one")
	}
}
