// Speech: catching a spectrogram-normalization mismatch (the Fig. 4c bug)
// with a user-defined assertion.
//
// Two keyword-spotting models come from different training pipelines with
// different spectrogram normalization conventions. The app team reuses the
// feature extraction code from model A when deploying model B; accuracy
// quietly collapses. A domain-specific assertion on the spectrogram
// statistics names the mismatch.
//
//	go run ./examples/speech
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("kws-mini-b") // trained with per-utterance normalization
	if err != nil {
		log.Fatal(err)
	}
	waves := datasets.SynthSpeech(7777, 8)

	capture := func(bug pipeline.Bug, resolver *ops.Resolver) *mlexray.Log {
		mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull))
		sr, err := pipeline.NewSpeechRecognizer(entry.Mobile, pipeline.Options{
			Resolver: resolver, Monitor: mon, Bug: bug,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range waves {
			if _, _, err := sr.Recognize(s.Wave); err != nil {
				log.Fatal(err)
			}
		}
		return mon.Log()
	}

	// The edge app mistakenly applies model A's log-global convention.
	edgeLog := capture(pipeline.BugSpecNorm, ops.NewOptimized(ops.Fixed()))
	refLog := capture(pipeline.BugNone, ops.NewReference(ops.Fixed()))

	// A user-defined assertion carrying speech-domain knowledge: a
	// per-utterance-normalized spectrogram has mean ~0 and variance ~1; a
	// log-global one lives in [0, ~1.5]. Mismatched statistics between the
	// edge and reference features name the convention error directly.
	specNormAssertion := mlexray.AssertionFunc{
		AssertionName: "spectrogram-normalization",
		Fn: func(ctx *mlexray.AssertCtx) *mlexray.Finding {
			edge, ref, err := ctx.PreprocPair(1)
			if err != nil {
				return nil
			}
			es, rs := tensor.ComputeStats(edge), tensor.ComputeStats(ref)
			if math.Abs(es.Mean-rs.Mean) < 0.25 && math.Abs(es.RMS-rs.RMS) < 0.25 {
				return nil
			}
			return &mlexray.Finding{
				Assertion: "spectrogram-normalization",
				Detail: fmt.Sprintf(
					"edge spectrogram stats (mean %.2f, rms %.2f) do not match the model's training convention (mean %.2f, rms %.2f): wrong normalization pipeline",
					es.Mean, es.RMS, rs.Mean, rs.RMS),
			}
		},
	}

	opts := mlexray.DefaultValidateOptions()
	opts.Assertions = append(opts.Assertions, specNormAssertion)
	report, err := mlexray.Validate(edgeLog, refLog, opts)
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)
}
