// Image classification: per-layer quantization diagnosis (the §4.4 / Fig. 6
// workflow).
//
// The quantized MobileNet-v2 returns garbage in production (the optimized op
// resolver) but works with the reference resolver — the exact situation the
// paper's industrial partners hit. This example captures per-layer outputs
// from both the quantized edge deployment and the float reference, computes
// the per-layer normalized rMSE, and localises the defective kernel.
//
//	go run ./examples/imageclassification
package main

import (
	"fmt"
	"log"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		log.Fatal(err)
	}
	images := datasets.SynthImageNet(5555, 4)

	capture := func(m *graph.Model, resolver *ops.Resolver) *mlexray.Log {
		mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true))
		cl, err := pipeline.NewClassifier(m, pipeline.Options{Resolver: resolver, Monitor: mon})
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range images {
			if _, _, err := cl.Classify(s.Image); err != nil {
				log.Fatal(err)
			}
		}
		return mon.Log()
	}

	refLog := capture(entry.Mobile, ops.NewReference(ops.Fixed()))

	for _, resolver := range []*ops.Resolver{
		ops.NewOptimized(ops.Historical()), // production kernels (defective depthwise)
		ops.NewReference(ops.Historical()), // debugging kernels
	} {
		edgeLog := capture(entry.Quant, resolver)
		diffs, err := mlexray.CompareLayers(edgeLog, refLog)
		if err != nil {
			log.Fatal(err)
		}
		agreement, _ := mlexray.OutputAgreement(edgeLog, refLog)
		fmt.Printf("\nquantized model under the %s resolver (output agreement %.0f%%):\n",
			resolver.Name(), 100*agreement)
		for _, d := range diffs {
			marker := ""
			if d.NRMSE >= 0.1 {
				marker = "  <-- drifting"
			}
			fmt.Printf("  [%2d] %-24s %-16s nRMSE=%.3f%s\n", d.Index, d.Name, d.OpType, d.NRMSE, marker)
		}
		if spike, ok := mlexray.FirstSpike(diffs, 0.1, 3); ok {
			fmt.Printf("  => first spike at %q: the quantized %s kernel is suspect\n", spike.Name, spike.OpType)
		} else {
			fmt.Printf("  => no drift spike: this resolver executes the quantized model faithfully\n")
		}
	}
	fmt.Println("\nConclusion: the drift appears only under the optimized resolver and starts at a")
	fmt.Println("DepthwiseConv2D layer — the optimized quantized depthwise kernel is broken, exactly")
	fmt.Println("the class of defect ML-EXray's per-layer validation was built to localise.")
}
