// Device sweep: per-layer latency validation across simulated hardware (the
// §4.5 workflow behind Table 4).
//
// The same MobileNet-v2 deployment is profiled on the Pixel 4 (float and
// quantized, optimized and reference resolvers) and on the x86 Android
// emulator. Per-layer latency records aggregate by layer class, and the
// straggler analysis flags the conv layers on the emulator, where the ARM
// NEON kernels don't transfer.
//
//	go run ./examples/devicesweep
package main

import (
	"fmt"
	"log"

	"mlexray"
	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		log.Fatal(err)
	}
	images := datasets.SynthImageNet(5555, 2)

	profileRun := func(m *graph.Model, resolver *ops.Resolver, dev *device.Profile) *mlexray.Log {
		mon := mlexray.NewMonitor(mlexray.WithPerLayer(true))
		cl, err := pipeline.NewClassifier(m, pipeline.Options{Resolver: resolver, Monitor: mon, Device: dev})
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range images {
			if _, _, err := cl.Classify(s.Image); err != nil {
				log.Fatal(err)
			}
		}
		return mon.Log()
	}

	classOf := func(opType string) string {
		for op := graph.OpType(0); op < graph.OpType(64); op++ {
			if op.String() == opType {
				return op.LayerClass()
			}
		}
		return "Other"
	}

	configs := []struct {
		name     string
		model    *graph.Model
		resolver *ops.Resolver
		dev      *device.Profile
	}{
		{"Pixel4 float (optimized)", entry.Mobile, ops.NewOptimized(ops.Historical()), device.Pixel4()},
		{"Pixel4 quant (optimized)", entry.Quant, ops.NewOptimized(ops.Historical()), device.Pixel4()},
		{"Pixel4 quant (reference)", entry.Quant, ops.NewReference(ops.Historical()), device.Pixel4()},
		{"Emulator float (optimized)", entry.Mobile, ops.NewOptimized(ops.Historical()), device.EmulatorX86()},
	}
	logs := map[string]*mlexray.Log{}
	for _, cfg := range configs {
		l := profileRun(cfg.model, cfg.resolver, cfg.dev)
		logs[cfg.name] = l
		fmt.Printf("\n%s — latency by layer class:\n", cfg.name)
		var total float64
		for _, a := range core.LatencyByClass(l, classOf) {
			fmt.Printf("  %-10s x%-3d %10.2f ms\n", a.Class, a.Count, a.TotalNs/2/1e6)
			total += a.TotalNs / 2
		}
		fmt.Printf("  %-10s      %10.2f ms\n", "Total", total/1e6)
	}

	// Straggler analysis: emulator vs Pixel 4 as the reference device.
	stragglers := core.StragglersVsReference(logs["Emulator float (optimized)"], logs["Pixel4 float (optimized)"], 8)
	fmt.Printf("\nStragglers on the emulator relative to Pixel 4: %v\n", stragglers)
	fmt.Println("(the ARM-optimized convolution kernels do not transfer to x86 — §4.5d)")
}
