// Fleet: shard one replay across a heterogeneous device fleet and isolate a
// device-local fault with fleet-level cross-validation.
//
// The paper's deployments span heterogeneous hardware — phones, GPU
// delegates, emulators — and a fault often lives on one device class only
// (a delegate kernel, a device-specific preprocessing path). This example
// builds a three-device fleet (a batched two-worker Pixel 4, a Pixel 3 and
// the x86 emulator), injects a normalization bug into the Pixel 3's
// pipeline alone, and lets the Weighted shard policy split the frame range
// by modeled device throughput. Each device replays its shard concurrently
// with its own per-device shard log; FleetValidate then cross-validates the
// shards against a reference replay. The merged-log report only shows
// degraded aggregate agreement — the fleet report pins the divergence to
// the Pixel 3, because the rest of the fleet vouches for the model on every
// frame the Pixel 3 got wrong.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"os"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		log.Fatal(err)
	}
	images := replay.Images(datasets.SynthImageNet(5555, 48))
	monOpts := []mlexray.MonitorOption{
		mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true),
	}

	// --- the fleet: heterogeneous profiles, workers and batch sizes ---
	devs, err := mlexray.ParseFleetSpec("Pixel4:2:8,Pixel3:1:2,Emulator-x86:1")
	if err != nil {
		log.Fatal(err)
	}
	fleet := &mlexray.Fleet{
		Devices:        devs,
		Policy:         mlexray.Weighted{}, // shards sized by modeled device throughput
		MonitorOptions: monOpts,
	}

	// --- edge fleet replay, with a bug on the Pixel 3 slot only ---
	const bugged = 1
	res, err := replay.FleetClassification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images, fleet,
		func(dev int, spec mlexray.DeviceSpec, o *pipeline.Options) {
			if dev == bugged {
				o.Bug = pipeline.BugNormalization // the device-local fault
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	for d, spec := range devs {
		fmt.Printf("device %d (%-12s): %2d frames in %d range(s), %5d records\n",
			d, spec.Name(), res.Frames(d), len(res.Assignment[d]), len(res.DeviceLogs[d].Records))
	}

	// --- reference replay over the whole frame range ---
	ref, err := replay.Classification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, images,
		mlexray.ReplayOptions{MonitorOptions: monOpts}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- whole-fleet view: the merged log under the standard validator ---
	fmt.Println()
	report, err := mlexray.Validate(res.Merged, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)

	// --- per-device view: fleet cross-validation isolates the fault ---
	shards := make([]mlexray.DeviceShardLog, len(devs))
	for d, spec := range devs {
		shards[d] = mlexray.DeviceShardLog{Device: spec.Name(), Log: res.DeviceLogs[d]}
	}
	fleetReport, err := mlexray.FleetValidate(shards, ref, mlexray.DefaultValidateOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fleetReport.Render(os.Stdout)
}
