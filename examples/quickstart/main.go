// Quickstart: catch a real deployment bug with a handful of lines.
//
// An app team deploys MobileNet-v2 but normalizes pixels to [0, 1] where the
// model was trained on [-1, 1] — the silent "washed-out image" bug of the
// paper's §2. This example instruments the edge pipeline, replays the same
// data through the reference pipeline, and lets ML-EXray's built-in
// assertions name the root cause.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		log.Fatal(err)
	}
	images := datasets.SynthImageNet(5555, 6)

	// --- the app's (buggy) edge pipeline, instrumented ---
	edgeMon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull))
	edge, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{
		Monitor: edgeMon,
		Bug:     pipeline.BugNormalization, // the mistake under investigation
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range images {
		if _, _, err := edge.Classify(s.Image); err != nil {
			log.Fatal(err)
		}
	}

	// --- the reference pipeline: same data, correct conventions ---
	refMon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull))
	ref, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{
		Monitor:  refMon,
		Resolver: ops.NewReference(ops.Fixed()),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range images {
		if _, _, err := ref.Classify(s.Image); err != nil {
			log.Fatal(err)
		}
	}

	// --- validation: accuracy check, then root-cause assertions ---
	report, err := mlexray.Validate(edgeMon.Log(), refMon.Log(), mlexray.DefaultValidateOptions())
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)
	fmt.Println()
	if len(report.Findings) > 0 {
		fmt.Println("quickstart: root cause identified —", report.Findings[0].Detail)
	} else {
		fmt.Println("quickstart: no issues found")
	}
}
