// Binarylog: stream a full-capture replay straight to a binary telemetry
// log, then validate a deployment from the files alone.
//
// Full per-layer tensor capture is megabytes per frame; the JSONL format
// pays a base64 expansion plus JSON escaping on every payload byte. This
// example streams the edge replay through a BinarySink (raw little-endian
// payloads, length-prefixed records — a fraction of the encode cost and
// none of the base64 growth), writes the reference log as ordinary JSONL,
// and then reads both back with the auto-detecting reader: Validate neither
// knows nor cares which encoding carried each log.
//
//	go run ./examples/binarylog
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/imaging"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/zoo"
)

func main() {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "binarylog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	images := replay.Images(datasets.SynthImageNet(5555, 6))

	// --- edge replay, streamed to a binary log ---
	edgePath := filepath.Join(dir, "edge.mlxb")
	edgeSink := capture(edgePath, mlexray.FormatBinary, entry, pipeline.Options{
		Resolver: ops.NewOptimized(ops.Fixed()),
		Bug:      pipeline.BugNormalization, // the mistake under investigation
	}, images)

	// --- reference replay, plain JSONL for contrast ---
	refPath := filepath.Join(dir, "ref.jsonl")
	refSink := capture(refPath, mlexray.FormatJSONL, entry, pipeline.Options{
		Resolver: ops.NewReference(ops.Fixed()),
	}, images)

	fmt.Printf("edge log:      %6d records %8d bytes (%s)\n", edgeSink.Records(), edgeSink.Bytes(), edgeSink.Format())
	fmt.Printf("reference log: %6d records %8d bytes (%s)\n", refSink.Records(), refSink.Bytes(), refSink.Format())

	// --- validate straight from the files, formats auto-detected ---
	edgeLog := read(edgePath)
	refLog := read(refPath)
	report, err := mlexray.Validate(edgeLog, refLog, mlexray.DefaultValidateOptions())
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)
}

// capture replays the dataset through the parallel engine with full
// per-layer capture, streaming telemetry to path in the given encoding.
func capture(path string, format mlexray.LogFormat, entry *zoo.Entry,
	popts pipeline.Options, images []*imaging.Image) mlexray.LogSink {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sink, err := mlexray.NewLogSink(f, format)
	if err != nil {
		log.Fatal(err)
	}
	_, err = replay.Classification(entry.Mobile, popts, images, mlexray.ReplayOptions{
		MonitorOptions: []mlexray.MonitorOption{
			mlexray.WithCaptureMode(mlexray.CaptureFull), mlexray.WithPerLayer(true),
		},
		Sink:       sink,
		DiscardLog: true, // telemetry lives on disk, not in memory
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}
	return sink
}

// read loads a telemetry log, auto-detecting its encoding.
func read(path string) *mlexray.Log {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	l, err := mlexray.ReadLog(f)
	if err != nil {
		log.Fatal(err)
	}
	return l
}
