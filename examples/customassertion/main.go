// Custom assertions on a detection pipeline (the paper's §3.1 lane-detection
// pattern): users inject domain knowledge by logging custom keys and writing
// assertions over them.
//
// The detector app logs its post-processed detection count per frame under a
// custom key. A user-defined assertion compares the edge pipeline's counts
// against the reference pipeline's — a task-level consistency check no
// generic assertion could know about. The injected bug is a channel swap,
// which makes the colour-keyed detector mislabel or drop objects.
//
//	go run ./examples/customassertion
package main

import (
	"fmt"
	"log"
	"os"

	"mlexray"
	"mlexray/internal/datasets"
	"mlexray/internal/models"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

const keyDetections = "postprocess/num_detections"

func main() {
	entry, err := zoo.Get("ssd-mini")
	if err != nil {
		log.Fatal(err)
	}
	images := datasets.SynthCOCO(6666, 8)
	anchors := entry.Mobile.Meta.Anchors

	capture := func(bug pipeline.Bug, resolver *ops.Resolver) *mlexray.Log {
		mon := mlexray.NewMonitor(mlexray.WithCaptureMode(mlexray.CaptureFull))
		det, err := pipeline.NewDetector(entry.Mobile, pipeline.Options{
			Resolver: resolver, Monitor: mon, Bug: bug,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range images {
			scores, boxes, err := det.Detect(s.Image)
			if err != nil {
				log.Fatal(err)
			}
			// Custom log: the app's post-processing result.
			dets := models.DecodeDetections(scores.Reshape(-1, 4), boxes.Reshape(-1, 4), anchors, 0.5, 0.45)
			mon.LogMetric(keyDetections, float64(len(dets)), "count")
		}
		return mon.Log()
	}

	edgeLog := capture(pipeline.BugChannel, ops.NewOptimized(ops.Fixed()))
	refLog := capture(pipeline.BugNone, ops.NewReference(ops.Fixed()))

	// User-defined assertion over the custom key: the edge pipeline should
	// find roughly the same number of objects as the reference.
	detectionCountAssertion := mlexray.AssertionFunc{
		AssertionName: "detection-count",
		Fn: func(ctx *mlexray.AssertCtx) *mlexray.Finding {
			edge := ctx.Edge.MetricValues(keyDetections)
			ref := ctx.Ref.MetricValues(keyDetections)
			if len(edge) == 0 || len(edge) != len(ref) {
				return nil
			}
			var eSum, rSum float64
			for i := range edge {
				eSum += edge[i]
				rSum += ref[i]
			}
			if rSum == 0 || eSum >= 0.8*rSum {
				return nil
			}
			return &mlexray.Finding{
				Assertion: "detection-count",
				Detail: fmt.Sprintf("edge pipeline finds %.0f detections where the reference finds %.0f: objects are being missed",
					eSum, rSum),
			}
		},
	}

	opts := mlexray.DefaultValidateOptions()
	opts.Assertions = append(opts.Assertions, detectionCountAssertion)
	report, err := mlexray.Validate(edgeLog, refLog, opts)
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)
}
