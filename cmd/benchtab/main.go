// Command benchtab regenerates the paper's tables and figures as text.
//
// Usage:
//
//	benchtab            # everything
//	benchtab -exp fig5  # one artifact: table1..5, fleet, fig3, fig4a/b/c,
//	                    # fig5, fig6, text, ingraph, ablations, kernels
//	benchtab -exp fleet -task detection  # fleet sharding over the SSD detector
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mlexray/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run")
	task := fs.String("task", "classification", "fleet experiment task: classification|detection")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := []struct {
		name string
		run  func() error
	}{
		{"table1", func() error {
			experiments.RenderTable1(stdout, experiments.Table1())
			return nil
		}},
		{"table2", func() error {
			rows, err := experiments.Table2(100)
			if err != nil {
				return err
			}
			experiments.RenderTable2(stdout, rows)
			return nil
		}},
		{"table3", func() error {
			rows, err := experiments.Table3(20)
			if err != nil {
				return err
			}
			experiments.RenderTable3(stdout, "Table 3 — offline per-layer validation overhead (quantized int8 models)", rows)
			return nil
		}},
		{"table4", func() error {
			rows, err := experiments.Table4()
			if err != nil {
				return err
			}
			experiments.RenderTable4(stdout, rows)
			return nil
		}},
		{"table5", func() error {
			rows, err := experiments.Table5(20)
			if err != nil {
				return err
			}
			experiments.RenderTable3(stdout, "Table 5 — offline per-layer validation overhead (float32 models)", rows)
			return nil
		}},
		{"fig3", func() error {
			cells, err := experiments.Figure3(6)
			if err != nil {
				return err
			}
			experiments.RenderFigure3(stdout, cells)
			return nil
		}},
		{"fig4a", func() error {
			rows, err := experiments.Figure4a()
			if err != nil {
				return err
			}
			experiments.RenderFigure4a(stdout, rows)
			return nil
		}},
		{"fig4b", func() error {
			rows, err := experiments.Figure4b()
			if err != nil {
				return err
			}
			experiments.RenderFigure4b(stdout, rows)
			return nil
		}},
		{"fig4c", func() error {
			rows, err := experiments.Figure4c()
			if err != nil {
				return err
			}
			experiments.RenderFigure4c(stdout, rows)
			return nil
		}},
		{"fig5", func() error {
			rows, err := experiments.Figure5()
			if err != nil {
				return err
			}
			experiments.RenderFigure5(stdout, rows)
			fmt.Fprintln(stdout)
			fixed, err := experiments.Figure5Fixed()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "Figure 5 (ablation) — repaired kernel build")
			experiments.RenderFigure5(stdout, fixed)
			return nil
		}},
		{"fleet", func() error {
			rows, err := experiments.Fleet(24, *task)
			if err != nil {
				return err
			}
			experiments.RenderFleet(stdout, *task, rows)
			return nil
		}},
		{"fig6", func() error {
			series, err := experiments.Figure6(5)
			if err != nil {
				return err
			}
			experiments.RenderFigure6(stdout, series)
			return nil
		}},
		{"text", func() error {
			rows, err := experiments.AppendixText(80)
			if err != nil {
				return err
			}
			experiments.RenderAppendixText(stdout, rows)
			return nil
		}},
		{"ingraph", func() error {
			rows, err := experiments.AppendixInGraph(100)
			if err != nil {
				return err
			}
			experiments.RenderAppendixInGraph(stdout, rows)
			return nil
		}},
		{"ablations", func() error {
			em, err := experiments.AblationErrorMetrics()
			if err != nil {
				return err
			}
			experiments.RenderAblationErrorMetrics(stdout, em)
			pc, err := experiments.AblationPerChannel()
			if err != nil {
				return err
			}
			experiments.RenderAblationQuant(stdout, "Ablation — per-channel vs per-tensor weights", pc)
			cal, err := experiments.AblationCalibration()
			if err != nil {
				return err
			}
			experiments.RenderAblationQuant(stdout, "Ablation — calibration with an outlier sample", cal)
			sym, err := experiments.AblationSymmetric()
			if err != nil {
				return err
			}
			experiments.RenderAblationQuant(stdout, "Ablation — asymmetric vs symmetric activations", sym)
			cm, err := experiments.AblationCaptureMode()
			if err != nil {
				return err
			}
			experiments.RenderAblationCapture(stdout, cm)
			lf, err := experiments.AblationLogFormat()
			if err != nil {
				return err
			}
			experiments.RenderAblationLogFormat(stdout, lf)
			return nil
		}},
		{"kernels", func() error {
			rows, err := experiments.AblationKernelBackend()
			if err != nil {
				return err
			}
			experiments.RenderAblationKernel(stdout, rows)
			return nil
		}},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		if err := r.run(); err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Fprintln(stdout)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
