package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSingleArtifact exercises flag parsing plus the cheapest artifact
// end to end.
func TestRunSingleArtifact(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Errorf("missing table caption:\n%s", buf.String())
	}
}

// TestRunReplayBackedArtifact exercises an artifact that rides the parallel
// replay engine (Table 4 runs one frame per configuration).
func TestRunReplayBackedArtifact(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 4") {
		t.Errorf("missing table caption:\n%s", buf.String())
	}
}

// TestRunFleetArtifact exercises the fleet table: the heterogeneous-device
// sharded replay with per-device validation, flagging the bugged device.
func TestRunFleetArtifact(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fleet"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fleet replay") || !strings.Contains(out, "Pixel3") {
		t.Errorf("missing fleet table content:\n%s", out)
	}
}

func TestRunFleetDetectionArtifact(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fleet", "-task", "detection"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fleet replay (detection)") || !strings.Contains(out, "Pixel3") {
		t.Errorf("missing detection fleet table content:\n%s", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "not-an-experiment"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-garbage"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-exp", "fleet", "-task", "no-such-task"}, &buf); err == nil {
		t.Error("unknown fleet task should error")
	}
}
