// Command exrayd is the ML-EXray telemetry ingestion daemon: the cloud half
// of the deployment-validation workflow. Edge devices (or edgerun -upload)
// stream their telemetry logs to it over HTTP; the daemon sessionizes the
// streams by device ID and validates each one incrementally against the
// reference log as frames arrive, so per-device and fleet-wide reports are
// ready the moment the uploads finish — identical to running cmd/exray on
// the stored logs, without storing them.
//
// Endpoints:
//
//	POST /ingest?device=ID   upload a log chunk (JSONL or MLXB, plain/gzip)
//	GET  /devices            all device session statuses (JSON)
//	GET  /devices/{device}   one session's status + incremental report
//	GET  /fleet              fleet-wide cross-validation report
//	GET  /fleet/export       per-session accumulator snapshots (what a
//	                         sharding gateway merges; see cmd/exraygw)
//	GET  /healthz            liveness + per-session WAL segment stats
//	GET  /metrics            Prometheus text exposition (self-telemetry)
//	GET  /debug/trace        recent request spans as JSON (bounded ring)
//
// With -debug-addr a second listener additionally serves /metrics,
// /debug/trace and the net/http/pprof endpoints — pprof is never exposed
// on the ingest address.
//
// Usage:
//
//	refrun -o ref.jsonl -frames 24
//	exrayd -ref ref.jsonl -addr :9090
//	edgerun -frames 24 -upload http://localhost:9090 -o edge.jsonl
//	curl localhost:9090/fleet
//
// Without -ref the daemon runs in collection mode: uploads are sessionized
// and counted but the report endpoints return 409.
//
// With -data-dir the daemon is durable: every accepted chunk is appended to
// a per-session write-ahead segment under the directory and fsynced before
// the 200 ack, and a restarted daemon replays the segments so the recovered
// reports are exactly what an uninterrupted run would serve. -max-sessions
// and -max-chunk-rate add admission control (503/429 with Retry-After; the
// upload clients treat both as transient and retry), and -evict-idle frees
// session slots held by silent devices — their segments stay on disk, so
// the next chunk resurrects the session exactly.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops
// accepting, in-flight uploads drain (bounded by -drain-timeout), the WAL
// segments close, and the process exits 0 — a restart recovers every acked
// chunk.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "exrayd:", err)
		os.Exit(1)
	}
}

// serve runs the accept loop; tests stub it out to exercise run() without
// binding the process to a socket forever.
var serve = func(ln net.Listener, hs *http.Server) error {
	return hs.Serve(ln)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("exrayd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":9090", "listen address")
		refPath      = fs.String("ref", "", "reference log to validate uploads against (JSONL or MLXB, plain or gzip; empty = collection mode)")
		agreement    = fs.Float64("agreement", 0, "output-agreement threshold (0 = default)")
		maxBody      = fs.Int64("max-body", 0, "per-chunk upload size cap in bytes (0 = 1GiB)")
		dataDir      = fs.String("data-dir", "", "write-ahead log directory: accepted chunks are fsynced here before the ack, and a restart replays them to recover every session exactly (empty = in-memory only)")
		segBytes     = fs.Int64("segment-bytes", 0, "roll a session's WAL to a new numbered segment once the active one passes this many bytes; closed segments compact automatically (requires -data-dir; 0 = one segment per session)")
		compactAfter = fs.Int("compact-after", 0, "merge closed WAL segments once this many accumulate (0 = default 4 when rotation is on; negative = never compact)")
		maxSessions  = fs.Int("max-sessions", 0, "cap on concurrent device sessions; new devices past it get 503 + Retry-After (0 = unlimited)")
		maxChunkRate = fs.Float64("max-chunk-rate", 0, "per-device accepted-chunk rate limit in chunks/sec; over-rate chunks get 429 + Retry-After (0 = unlimited)")
		evictIdle    = fs.Duration("evict-idle", 0, "evict sessions idle this long; their WAL segments stay recoverable (requires -data-dir; 0 = never)")
		readTimeout  = fs.Duration("read-timeout", time.Minute, "per-request body read deadline: sheds slow-loris uploads (0 = none)")
		writeTimeout = fs.Duration("write-timeout", time.Minute, "per-request response write deadline (0 = none)")
		headerTO     = fs.Duration("read-header-timeout", 10*time.Second, "time allowed to read a request's headers before the connection is shed")
		idleConnTO   = fs.Duration("idle-conn-timeout", 2*time.Minute, "keep-alive: how long an idle client connection is kept open")
		drainTO      = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown: how long in-flight uploads get to finish after SIGINT/SIGTERM")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, /debug/trace and /debug/pprof on a second listener (empty = off; the ingest listener serves /metrics and /debug/trace regardless, never pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One shared registry: the collector's counters and the process runtime
	// gauges land on the same scrape endpoint.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)

	opts := ingest.ServerOptions{
		Metrics:         reg,
		MaxBodyBytes:    *maxBody,
		DataDir:         *dataDir,
		SegmentBytes:    *segBytes,
		CompactAfter:    *compactAfter,
		MaxSessions:     *maxSessions,
		MaxChunksPerSec: *maxChunkRate,
		IdleTimeout:     *evictIdle,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
	}
	if *refPath != "" {
		f, err := os.Open(*refPath)
		if err != nil {
			return err
		}
		ref, err := core.ReadLog(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reference log %s: %w", *refPath, err)
		}
		opts.Ref = ref
		opts.Validate = core.DefaultValidateOptions()
		if *agreement > 0 {
			opts.Validate.AgreementThreshold = *agreement
		}
		fmt.Fprintf(stdout, "exrayd: reference %s (%d records, %d frames)\n",
			*refPath, len(ref.Records), ref.Frames())
	} else {
		fmt.Fprintf(stdout, "exrayd: no -ref: collection mode (report endpoints return 409)\n")
	}

	srv, err := ingest.NewServer(opts)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		rs := srv.Recovery()
		fmt.Fprintf(stdout, "exrayd: durable ingest under %s: recovered %d sessions (%d chunks, %d records",
			*dataDir, rs.Sessions, rs.Chunks, rs.Records)
		if rs.TruncatedBytes > 0 {
			fmt.Fprintf(stdout, "; truncated %d torn tail bytes", rs.TruncatedBytes)
		}
		if rs.SkippedChunks > 0 {
			fmt.Fprintf(stdout, "; skipped %d corrupt chunks", rs.SkippedChunks)
		}
		fmt.Fprintf(stdout, ")\n")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "exrayd: listening on http://%s (POST /ingest, GET /fleet, /devices/{id})\n", ln.Addr())

	// The opt-in debug listener: pprof is only ever reachable here, never on
	// the ingest address — profiling a production collector must be a
	// deliberate, separately-firewalled act.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		dhs := &http.Server{Handler: obs.DebugMux(reg, srv.Traces()), ReadHeaderTimeout: 10 * time.Second}
		defer dhs.Close()
		go dhs.Serve(dln)
		fmt.Fprintf(stdout, "exrayd: debug listener on http://%s (/metrics, /debug/trace, /debug/pprof)\n", dln.Addr())
	}

	// The accept loop runs under a server with header/idle timeouts (a
	// header-stalling client cannot hold a connection open indefinitely)
	// while SIGINT/SIGTERM trigger a graceful drain: stop accepting, let
	// in-flight uploads finish, close the WAL segments, exit clean — the
	// write-ahead log makes the subsequent restart exact.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: *headerTO,
		IdleTimeout:       *idleConnTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- serve(ln, hs) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			return err
		}
		return srv.Close()
	case <-ctx.Done():
		stop()
		fmt.Fprintf(stdout, "exrayd: signal received: draining in-flight uploads (up to %v)\n", *drainTO)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			// Drain deadline passed with uploads still in flight: cut them.
			// Their chunks were never acked, so the clients will retry
			// against the restarted daemon.
			hs.Close()
		}
		<-errc // the accept loop has returned http.ErrServerClosed
		if err := srv.Close(); err != nil {
			return fmt.Errorf("closing wal segments: %w", err)
		}
		fmt.Fprintf(stdout, "exrayd: shutdown complete (wal segments closed)\n")
		return nil
	}
}
