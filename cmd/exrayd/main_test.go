package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/tensor"
)

// testRefLog builds a minimal reference log with model outputs.
func testRefLog(frames int) *core.Log {
	l := &core.Log{}
	for f := 0; f < frames; f++ {
		out := tensor.New(tensor.F32, 4)
		out.F[f%4] = 1
		var r core.Record
		r.Seq, r.Frame, r.Key = f, f, core.KeyModelOutput
		r.EncodeTensor(out, true)
		l.Records = append(l.Records, r)
	}
	return l
}

// TestRunServesIngest boots the daemon with a reference log on an ephemeral
// port (the accept loop stubbed to return after the boot banner), then
// drives the real handler over HTTP via the same construction path.
func TestRunServesIngest(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	f, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := testRefLog(4)
	if err := ref.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Capture the handler run() builds, serve it for real on the test's own
	// terms, and let run() return.
	var handler http.Handler
	oldServe := serve
	serve = func(ln net.Listener, hs *http.Server) error {
		handler = hs.Handler
		return nil
	}
	defer func() { serve = oldServe }()

	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0", "-ref", refPath}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "listening on http://127.0.0.1:") {
		t.Errorf("missing listen banner:\n%s", out)
	}
	if !strings.Contains(out, "4 records, 4 frames") {
		t.Errorf("missing reference banner:\n%s", out)
	}
	if handler == nil {
		t.Fatal("run never built a handler")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, handler)
	base := "http://" + ln.Addr().String()

	// Upload the reference back as a device: perfect agreement.
	sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: base, Device: "dev-a", Format: core.FormatBinary, Gzip: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		if err := sink.WriteFrame(f, ref.Records[f:f+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status %d", resp.StatusCode)
	}
	var fleet struct {
		Devices []string
		Report  *core.FleetReport
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Devices) != 1 || fleet.Devices[0] != "dev-a" {
		t.Errorf("devices = %v", fleet.Devices)
	}
	if fleet.Report.FleetAgreement != 1 {
		t.Errorf("agreement = %v, want 1", fleet.Report.FleetAgreement)
	}
}

// TestRunCollectionMode boots without -ref and pins the banner.
func TestRunCollectionMode(t *testing.T) {
	oldServe := serve
	serve = func(ln net.Listener, hs *http.Server) error { return nil }
	defer func() { serve = oldServe }()
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "collection mode") {
		t.Errorf("missing collection-mode banner:\n%s", buf.String())
	}
}

// TestRunRejectsBadRef pins the error path for a missing reference file.
func TestRunRejectsBadRef(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ref", filepath.Join(t.TempDir(), "nope.jsonl")}, &buf); err == nil {
		t.Error("missing reference accepted")
	}
}

// TestRunDurableRecovery boots the daemon with -data-dir, uploads a stream,
// "crashes" it (run returns; the WAL survives on disk), and boots a second
// daemon over the same directory: the recovery banner reports the restored
// sessions and the recovered /fleet matches the pre-crash one.
func TestRunDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	f, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := testRefLog(4)
	if err := ref.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	walDir := filepath.Join(dir, "wal")

	oldServe := serve
	defer func() { serve = oldServe }()
	// boot starts run() with the accept loop stubbed to hand over the
	// handler and then block — the daemon stays live (WAL segments open)
	// until crash() releases it, at which point run() closes the WAL and
	// returns, exactly like a process exit.
	boot := func() (http.Handler, func() string) {
		handlerCh := make(chan http.Handler, 1)
		release := make(chan struct{})
		serve = func(ln net.Listener, hs *http.Server) error {
			handlerCh <- hs.Handler
			<-release
			return nil
		}
		var buf bytes.Buffer
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-ref", refPath, "-data-dir", walDir}, &buf)
		}()
		h := <-handlerCh
		crash := func() string {
			close(release)
			if err := <-done; err != nil {
				t.Errorf("run = %v", err)
			}
			return buf.String()
		}
		return h, crash
	}
	serveOn := func(h http.Handler) (string, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go http.Serve(ln, h)
		return "http://" + ln.Addr().String(), func() { ln.Close() }
	}

	h1, crash1 := boot()
	base, stop := serveOn(h1)
	sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: base, Device: "dev-a", Format: core.FormatBinary,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		if err := sink.WriteFrame(f, ref.Records[f:f+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	getFleet := func(base string) []byte {
		resp, err := http.Get(base + "/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/fleet status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := getFleet(base)
	stop()
	if out := crash1(); !strings.Contains(out, "recovered 0 sessions") {
		t.Errorf("first boot banner should report an empty WAL:\n%s", out)
	}

	h2, crash2 := boot()
	base2, stop2 := serveOn(h2)
	defer stop2()
	got := getFleet(base2)
	if out := crash2(); !strings.Contains(out, "recovered 1 sessions") {
		t.Errorf("second boot banner should report the recovered session:\n%s", out)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("recovered /fleet differs:\npre-crash: %s\nrecovered: %s", want, got)
	}
}

// syncBuffer is a bytes.Buffer safe for the banner-polling below: run()
// writes it from its own goroutine while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunGracefulSigterm boots the real daemon (unstubbed accept loop) with
// a durable data dir, uploads mid-stream, and sends the process SIGTERM:
// run() must drain, close the WAL, print the shutdown banner, and return
// nil (exit 0). A second boot over the same directory recovers the acked
// chunk exactly.
func TestRunGracefulSigterm(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	f, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := testRefLog(4)
	if err := ref.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	walDir := filepath.Join(dir, "wal")

	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-ref", refPath, "-data-dir", walDir}, &buf)
	}()
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		if out := buf.String(); strings.Contains(out, "listening on http://") {
			line := out[strings.Index(out, "listening on http://")+len("listening on "):]
			base = strings.Fields(line)[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen banner:\n%s", buf.String())
		}
	}

	// Mid-upload: the first chunk is acked and durable; the stream is not
	// finished when the signal lands.
	sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: base, Device: "dev-a", Format: core.FormatBinary,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		if err := sink.WriteFrame(f, ref.Records[f:f+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	out := buf.String()
	if !strings.Contains(out, "shutdown complete") {
		t.Errorf("missing shutdown banner:\n%s", out)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still serving after graceful shutdown")
	}

	// Restart over the same directory: the acked chunk recovered.
	var handler http.Handler
	oldServe := serve
	serve = func(ln net.Listener, hs *http.Server) error {
		handler = hs.Handler
		return nil
	}
	defer func() { serve = oldServe }()
	var buf2 bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0", "-ref", refPath, "-data-dir", walDir}, &buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "recovered 1 sessions (1 chunks, 2 records") {
		t.Errorf("recovery banner should report the acked chunk:\n%s", buf2.String())
	}
	req := httptest.NewRequest(http.MethodGet, "/devices/dev-a", nil)
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/devices/dev-a after restart: %d", rr.Code)
	}
	var st struct{ Records, Frames int }
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || st.Frames != 2 {
		t.Errorf("recovered session = %+v, want 2 records / 2 frames", st)
	}
}
