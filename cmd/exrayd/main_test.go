package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/tensor"
)

// testRefLog builds a minimal reference log with model outputs.
func testRefLog(frames int) *core.Log {
	l := &core.Log{}
	for f := 0; f < frames; f++ {
		out := tensor.New(tensor.F32, 4)
		out.F[f%4] = 1
		var r core.Record
		r.Seq, r.Frame, r.Key = f, f, core.KeyModelOutput
		r.EncodeTensor(out, true)
		l.Records = append(l.Records, r)
	}
	return l
}

// TestRunServesIngest boots the daemon with a reference log on an ephemeral
// port (the accept loop stubbed to return after the boot banner), then
// drives the real handler over HTTP via the same construction path.
func TestRunServesIngest(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	f, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := testRefLog(4)
	if err := ref.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Capture the handler run() builds, serve it for real on the test's own
	// terms, and let run() return.
	var handler http.Handler
	oldServe := serve
	serve = func(ln net.Listener, h http.Handler) error {
		handler = h
		return nil
	}
	defer func() { serve = oldServe }()

	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0", "-ref", refPath}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "listening on http://127.0.0.1:") {
		t.Errorf("missing listen banner:\n%s", out)
	}
	if !strings.Contains(out, "4 records, 4 frames") {
		t.Errorf("missing reference banner:\n%s", out)
	}
	if handler == nil {
		t.Fatal("run never built a handler")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, handler)
	base := "http://" + ln.Addr().String()

	// Upload the reference back as a device: perfect agreement.
	sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: base, Device: "dev-a", Format: core.FormatBinary, Gzip: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		if err := sink.WriteFrame(f, ref.Records[f:f+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status %d", resp.StatusCode)
	}
	var fleet struct {
		Devices []string
		Report  *core.FleetReport
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Devices) != 1 || fleet.Devices[0] != "dev-a" {
		t.Errorf("devices = %v", fleet.Devices)
	}
	if fleet.Report.FleetAgreement != 1 {
		t.Errorf("agreement = %v, want 1", fleet.Report.FleetAgreement)
	}
}

// TestRunCollectionMode boots without -ref and pins the banner.
func TestRunCollectionMode(t *testing.T) {
	oldServe := serve
	serve = func(ln net.Listener, h http.Handler) error { return nil }
	defer func() { serve = oldServe }()
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "collection mode") {
		t.Errorf("missing collection-mode banner:\n%s", buf.String())
	}
}

// TestRunRejectsBadRef pins the error path for a missing reference file.
func TestRunRejectsBadRef(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ref", filepath.Join(t.TempDir(), "nope.jsonl")}, &buf); err == nil {
		t.Error("missing reference accepted")
	}
}

// TestRunDurableRecovery boots the daemon with -data-dir, uploads a stream,
// "crashes" it (run returns; the WAL survives on disk), and boots a second
// daemon over the same directory: the recovery banner reports the restored
// sessions and the recovered /fleet matches the pre-crash one.
func TestRunDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	f, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := testRefLog(4)
	if err := ref.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	walDir := filepath.Join(dir, "wal")

	var handler http.Handler
	oldServe := serve
	serve = func(ln net.Listener, h http.Handler) error {
		handler = h
		return nil
	}
	defer func() { serve = oldServe }()
	boot := func() (http.Handler, string) {
		handler = nil
		var buf bytes.Buffer
		if err := run([]string{"-addr", "127.0.0.1:0", "-ref", refPath, "-data-dir", walDir}, &buf); err != nil {
			t.Fatal(err)
		}
		if handler == nil {
			t.Fatal("run never built a handler")
		}
		return handler, buf.String()
	}
	serveOn := func(h http.Handler) (string, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go http.Serve(ln, h)
		return "http://" + ln.Addr().String(), func() { ln.Close() }
	}

	h1, out1 := boot()
	if !strings.Contains(out1, "recovered 0 sessions") {
		t.Errorf("first boot banner should report an empty WAL:\n%s", out1)
	}
	base, stop := serveOn(h1)
	sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: base, Device: "dev-a", Format: core.FormatBinary,
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		if err := sink.WriteFrame(f, ref.Records[f:f+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	getFleet := func(base string) []byte {
		resp, err := http.Get(base + "/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/fleet status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := getFleet(base)
	stop() // crash: no drain, no goodbye

	h2, out2 := boot()
	if !strings.Contains(out2, "recovered 1 sessions") {
		t.Errorf("second boot banner should report the recovered session:\n%s", out2)
	}
	base2, stop2 := serveOn(h2)
	defer stop2()
	if got := getFleet(base2); !bytes.Equal(want, got) {
		t.Errorf("recovered /fleet differs:\npre-crash: %s\nrecovered: %s", want, got)
	}
}
