// Command exraygw is the fleet aggregator gateway: the front door of a
// horizontally sharded ingest deployment. It fronts a consistent-hash ring
// of exrayd collector shards with the exact HTTP surface a single collector
// serves, so edge devices and dashboards talk to one address whether the
// fleet is handled by one collector or sixteen.
//
//	POST /ingest            routed to the device's owning shard
//	GET  /devices           union of every shard's device list
//	GET  /devices/{device}  proxied to the owning shard
//	GET  /fleet             per-shard snapshots merged into one report
//	GET  /fleet/export      the merged snapshot union (gateway stacking)
//	GET  /healthz           gateway + per-shard health (fan-out with timeout)
//	GET  /metrics           Prometheus text exposition (self-telemetry)
//	GET  /debug/trace       recent routed-request spans as JSON
//
// With -debug-addr a second listener additionally serves /metrics,
// /debug/trace and the net/http/pprof endpoints — pprof is never exposed
// on the routing address.
//
// Placement hashes the device ID onto the ring of shard *names*, so a shard
// can be restarted on a new host or port (same -shard name, new URL)
// without relocating any device's session. The merged /fleet is
// byte-identical to what a single collector holding every session would
// serve: shards export accumulator-level snapshots and the gateway runs the
// same finalizer a lone collector runs.
//
// Usage:
//
//	exrayd -ref ref.jsonl -addr :9091 -data-dir /var/lib/exray/s0
//	exrayd -ref ref.jsonl -addr :9092 -data-dir /var/lib/exray/s1
//	exraygw -addr :9090 -shard s0=http://localhost:9091 -shard s1=http://localhost:9092
//	edgerun -frames 24 -upload http://localhost:9090 -o edge.jsonl
//	curl localhost:9090/fleet
//
// A bare URL (no name=) is auto-named shard-0, shard-1, ... in flag order.
// With -redirect the gateway answers uploads with 307 + Location naming the
// owning shard instead of proxying the body; upload clients that honor it
// (edgerun's sink does) then stream to the shard directly, keeping bulk
// telemetry bytes off the gateway.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/obs"
	"mlexray/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "exraygw:", err)
		os.Exit(1)
	}
}

// serve runs the accept loop; tests stub it out to exercise run() without
// binding the process to a socket forever.
var serve = func(ln net.Listener, hs *http.Server) error {
	return hs.Serve(ln)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("exraygw", flag.ContinueOnError)
	var shards []shard.ShardAddr
	fs.Func("shard", "ring member as name=url (repeatable; a bare url is auto-named shard-N in flag order)", func(v string) error {
		name, u, ok := strings.Cut(v, "=")
		if !ok {
			name, u = fmt.Sprintf("shard-%d", len(shards)), v
		}
		if name == "" || u == "" {
			return fmt.Errorf("want name=url or url, got %q", v)
		}
		shards = append(shards, shard.ShardAddr{Name: name, URL: u})
		return nil
	})
	var (
		addr       = fs.String("addr", ":9090", "listen address")
		vnodes     = fs.Int("vnodes", 0, "virtual nodes per shard on the placement ring (0 = default; must match every gateway fronting the same ring)")
		redirect   = fs.Bool("redirect", false, "answer uploads with 307 + Location to the owning shard instead of proxying the body")
		agreement  = fs.Float64("agreement", 0, "output-agreement threshold for the merged fleet report; must match the shards' (0 = default)")
		headerTO   = fs.Duration("read-header-timeout", 10*time.Second, "time allowed to read a request's headers before the connection is shed")
		idleConnTO = fs.Duration("idle-conn-timeout", 2*time.Minute, "keep-alive: how long an idle client connection is kept open")
		drainTO    = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown: how long in-flight requests get to finish after SIGINT/SIGTERM")
		healthTO   = fs.Duration("health-timeout", 0, "per-shard /healthz probe bound in the aggregated health fan-out (0 = 2s)")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /debug/trace and /debug/pprof on a second listener (empty = off; the routing listener serves /metrics and /debug/trace regardless, never pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(shards) == 0 {
		return fmt.Errorf("no ring membership: pass at least one -shard name=url")
	}

	// One shared registry for the gateway's routing counters and the process
	// runtime gauges.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)

	opts := shard.GatewayOptions{
		Shards:          shards,
		Vnodes:          *vnodes,
		RedirectUploads: *redirect,
		HealthTimeout:   *healthTO,
		Metrics:         reg,
	}
	if *agreement > 0 {
		opts.Validate = core.ValidateOptions{AgreementThreshold: *agreement}
	}
	// A dedicated transport: shard fan-out reuses pooled connections instead
	// of competing with whatever else the process dials.
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	defer transport.CloseIdleConnections()
	opts.Client = &http.Client{Transport: transport}

	gw, err := shard.NewGateway(opts)
	if err != nil {
		return err
	}
	mode := "proxy"
	if *redirect {
		mode = "redirect"
	}
	for _, s := range shards {
		fmt.Fprintf(stdout, "exraygw: shard %-10s %s\n", s.Name, s.URL)
	}
	fmt.Fprintf(stdout, "exraygw: ring of %d shard(s), %d vnodes each, %s uploads\n",
		gw.Ring().N(), gw.Ring().Vnodes(), mode)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "exraygw: listening on http://%s (POST /ingest, GET /fleet, /devices/{id})\n", ln.Addr())

	// The opt-in debug listener: pprof only lives here, never on the
	// routing address.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		dhs := &http.Server{Handler: obs.DebugMux(reg, gw.Traces()), ReadHeaderTimeout: 10 * time.Second}
		defer dhs.Close()
		go dhs.Serve(dln)
		fmt.Fprintf(stdout, "exraygw: debug listener on http://%s (/metrics, /debug/trace, /debug/pprof)\n", dln.Addr())
	}

	// The gateway holds no durable state of its own — every session lives in
	// a shard's WAL — so graceful shutdown is just a request drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{
		Handler:           gw,
		ReadHeaderTimeout: *headerTO,
		IdleTimeout:       *idleConnTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- serve(ln, hs) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		stop()
		fmt.Fprintf(stdout, "exraygw: signal received: draining in-flight requests (up to %v)\n", *drainTO)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			hs.Close()
		}
		<-errc // the accept loop has returned http.ErrServerClosed
		fmt.Fprintf(stdout, "exraygw: shutdown complete\n")
		return nil
	}
}
