package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/tensor"
)

// testRefLog builds a minimal reference log with model outputs.
func testRefLog(frames int) *core.Log {
	l := &core.Log{}
	for f := 0; f < frames; f++ {
		out := tensor.New(tensor.F32, 4)
		out.F[f%4] = 1
		var r core.Record
		r.Seq, r.Frame, r.Key = f, f, core.KeyModelOutput
		r.EncodeTensor(out, true)
		l.Records = append(l.Records, r)
	}
	return l
}

// bootShard starts a real collector shard the gateway can route to.
func bootShard(t *testing.T, ref *core.Log) *httptest.Server {
	t.Helper()
	srv, err := ingest.NewServer(ingest.ServerOptions{Ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunRoutesAcrossRing boots the gateway over two live collector shards
// (accept loop stubbed to hand back the handler), uploads several devices
// through it, and checks the merged /fleet: every device present, perfect
// agreement, and each session held by exactly one shard.
func TestRunRoutesAcrossRing(t *testing.T) {
	ref := testRefLog(4)
	s0, s1 := bootShard(t, ref), bootShard(t, ref)

	var handler http.Handler
	oldServe := serve
	serve = func(ln net.Listener, hs *http.Server) error {
		handler = hs.Handler
		return nil
	}
	defer func() { serve = oldServe }()

	var buf bytes.Buffer
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-shard", "alpha=" + s0.URL,
		"-shard", s1.URL, // bare URL: auto-named shard-1
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"shard alpha", "shard shard-1",
		"ring of 2 shard(s)", "proxy uploads",
		"listening on http://127.0.0.1:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("banner missing %q:\n%s", want, out)
		}
	}
	if handler == nil {
		t.Fatal("run never built a handler")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, handler)
	base := "http://" + ln.Addr().String()

	devices := []string{"dev-a", "dev-b", "dev-c", "dev-d", "dev-e", "dev-f"}
	for _, dev := range devices {
		sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
			URL: base, Device: dev, Format: core.FormatBinary,
		})
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if err := sink.WriteFrame(f, ref.Records[f:f+1]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(base + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status %d", resp.StatusCode)
	}
	var fleet struct {
		Devices []string
		Report  *core.FleetReport
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Devices) != len(devices) {
		t.Errorf("merged fleet devices = %v, want all %d", fleet.Devices, len(devices))
	}
	if fleet.Report.FleetAgreement != 1 {
		t.Errorf("agreement = %v, want 1", fleet.Report.FleetAgreement)
	}

	// The ring actually sharded: together the two shards hold every session,
	// and no session landed on both.
	count := func(ts *httptest.Server) int {
		resp, err := http.Get(ts.URL + "/devices")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ds []struct{ Device string }
		if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
			t.Fatal(err)
		}
		return len(ds)
	}
	n0, n1 := count(s0), count(s1)
	if n0+n1 != len(devices) {
		t.Errorf("shards hold %d + %d sessions, want %d total with no overlap", n0, n1, len(devices))
	}
	if n0 == 0 || n1 == 0 {
		t.Errorf("one shard held everything (%d/%d) — placement never spread", n0, n1)
	}
}

// TestRunRedirectBanner pins the redirect-mode banner.
func TestRunRedirectBanner(t *testing.T) {
	oldServe := serve
	serve = func(ln net.Listener, hs *http.Server) error { return nil }
	defer func() { serve = oldServe }()
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:0", "-redirect", "-shard", "a=http://localhost:1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "redirect uploads") {
		t.Errorf("missing redirect banner:\n%s", buf.String())
	}
}

// TestRunRejectsBadMembership pins the flag-validation error paths.
func TestRunRejectsBadMembership(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("empty ring accepted")
	}
	if err := run([]string{"-shard", "="}, &buf); err == nil {
		t.Error("empty name=url accepted")
	}
	if err := run([]string{"-shard", "a=http://localhost:1", "-shard", "a=http://localhost:2"}, &buf); err == nil {
		t.Error("duplicate shard name accepted")
	}
	if err := run([]string{"-shard", "a=http://bad url"}, &buf); err == nil {
		t.Error("unparseable shard URL accepted")
	}
}
