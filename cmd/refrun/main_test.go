package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlexray/internal/core"
)

// TestRunOneFrame drives a one-frame reference run end to end in both log
// encodings and checks the streamed log reads back via auto-detection.
func TestRunOneFrame(t *testing.T) {
	for _, format := range []string{"jsonl", "binary"} {
		t.Run(format, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "ref."+format)
			var buf bytes.Buffer
			if err := run([]string{"-frames", "1", "-parallel", "2", "-log-format", format, "-o", out}, &buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "refrun: wrote") {
				t.Errorf("missing summary line: %q", buf.String())
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			l, err := core.ReadLog(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(l.Records) == 0 {
				t.Error("log has no records")
			}
		})
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-model", "no-such-model"}, &buf); err == nil {
		t.Error("unknown model should error")
	}
	if err := run([]string{"-log-format", "xml"}, &buf); err == nil {
		t.Error("unknown log format should error")
	}
	for _, args := range [][]string{
		{"-frames", "0"},
		{"-parallel", "-1"},
		{"-batch", "0"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}
