// Command refrun executes the *reference pipeline* for a zoo model — the
// correct preprocessing derived from the model's training conventions, the
// float model, the reference op resolver with repaired kernels — over the
// same synthetic data edgerun uses, and writes the reference telemetry log.
//
// Like edgerun, the replay shards across -parallel workers (each running
// -batch frames per batched interpreter invoke) with telemetry streamed to
// disk in deterministic frame order, and -log-format selects the jsonl or
// binary telemetry encoding.
//
// Usage:
//
//	refrun -model mobilenetv2-mini -o ref.jsonl
//	refrun -model mobilenetv2-mini -log-format binary -o ref.mlxb
//	refrun -model mobilenetv2-mini -parallel 8 -batch 32 -o ref.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "refrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("refrun", flag.ContinueOnError)
	var (
		model    = fs.String("model", "mobilenetv2-mini", "zoo model name (classification)")
		frames   = fs.Int("frames", 8, "frames to process")
		perLayer = fs.Bool("perlayer", true, "capture per-layer outputs")
		parallel = fs.Int("parallel", 0, "replay workers (0 = all cores)")
		batch    = fs.Int("batch", 8, "frames per batched interpreter invoke (1 = frame at a time)")
		kernel   = fs.String("kernel", "", "kernel backend: reference|blocked|tiled (inert here: the reference resolver's kernels sit before the backend seam)")
		logFmt   = fs.String("log-format", "jsonl", "telemetry log encoding: jsonl|binary")
		out      = fs.String("o", "ref.jsonl", "output log path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := replay.ValidateFlags(*frames, *parallel, *batch); err != nil {
		return err
	}
	format, err := core.ParseLogFormat(*logFmt)
	if err != nil {
		return err
	}
	// Parsed for flag symmetry with edgerun and threaded through so a future
	// resolver swap picks it up, but the reference resolver never reaches the
	// GEMM seam, so the output is identical for every accepted value.
	backend, err := ops.ParseBackend(*kernel)
	if err != nil {
		return err
	}

	entry, err := zoo.Get(*model)
	if err != nil {
		return err
	}
	images := replay.Images(datasets.SynthImageNet(5555, *frames))
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	sink, err := core.NewLogSink(f, format)
	if err != nil {
		return err
	}
	_, err = replay.Classification(entry.Mobile, pipeline.Options{
		Resolver: ops.NewReference(ops.Fixed()),
		Backend:  backend,
	}, images, runner.Options{
		Workers:        *parallel,
		BatchFrames:    *batch,
		MonitorOptions: []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(*perLayer)},
		Sink:           sink,
		DiscardLog:     true,
	}, nil)
	if err != nil {
		return err
	}
	if err := sink.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "refrun: wrote %d records (%d bytes, %s) to %s\n", sink.Records(), sink.Bytes(), sink.Format(), *out)
	return nil
}
