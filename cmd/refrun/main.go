// Command refrun executes the *reference pipeline* for a zoo model — the
// correct preprocessing derived from the model's training conventions, the
// float model, the reference op resolver with repaired kernels — over the
// same synthetic data edgerun uses, and writes the reference telemetry log.
//
// Usage:
//
//	refrun -model mobilenetv2-mini -o ref.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "mobilenetv2-mini", "zoo model name (classification)")
		frames   = flag.Int("frames", 8, "frames to process")
		perLayer = flag.Bool("perlayer", true, "capture per-layer outputs")
		out      = flag.String("o", "ref.jsonl", "output log path")
	)
	flag.Parse()

	entry, err := zoo.Get(*model)
	if err != nil {
		fatal(err)
	}
	mon := core.NewMonitor(core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(*perLayer))
	cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{
		Resolver: ops.NewReference(ops.Fixed()),
		Monitor:  mon,
	})
	if err != nil {
		fatal(err)
	}
	for _, s := range datasets.SynthImageNet(5555, *frames) {
		if _, _, err := cl.Classify(s.Image); err != nil {
			fatal(err)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := mon.Log().WriteJSONL(f); err != nil {
		fatal(err)
	}
	fmt.Printf("refrun: wrote %d records to %s\n", len(mon.Log().Records), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refrun:", err)
	os.Exit(1)
}
