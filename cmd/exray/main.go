// Command exray runs the full ML-EXray deployment-validation flow on a zoo
// model: it executes an (optionally bugged) edge pipeline and the correct
// reference pipeline over the same data, compares the logs following the
// paper's Figure 2 flowchart, and prints the validation report with
// root-cause findings. Both replays shard across -parallel workers, and
// classification models run -batch frames per batched interpreter invoke.
//
// Instead of replaying, either side can be loaded from a pre-captured
// telemetry log (-edge-log / -ref-log): the file's encoding — JSONL or the
// binary format, e.g. from edgerun/refrun's -log-format — is auto-detected,
// and Validate produces identical reports whichever format the logs used.
//
// With -fleet the edge replay shards across several simulated devices
// ("profile:workers[:batch],..." under the -shard policy) and the standard
// report is followed by the fleet validation report: per-device agreement,
// drift and latency rollups plus cross-device divergence. -bug-device
// restricts the injected -bug to one fleet slot — the device-local fault
// class fleet validation isolates (the report flags exactly that device).
//
// Usage:
//
//	exray -model mobilenetv2-mini -bug channel
//	exray -model mobilenetv2-mini -quant -resolver optimized -perlayer -batch 32
//	exray -model kws-mini-a -bug specnorm
//	exray -edge-log edge.mlxb -ref-log ref.jsonl
//	exray -fleet "Pixel4:2:8,Pixel3:1,Emulator-x86:1" -bug normalization -bug-device 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "exray:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("exray", flag.ContinueOnError)
	var (
		model    = fs.String("model", "mobilenetv2-mini", "zoo model name")
		bug      = fs.String("bug", "none", "injected bug: none|resize|channel|normalization|rotation|specnorm|lowercase")
		quantF   = fs.Bool("quant", false, "deploy the quantized model version")
		resolver = fs.String("resolver", "optimized", "edge op resolver: optimized|reference")
		fixed    = fs.Bool("fixed", false, "use the repaired kernel build instead of the historical one")
		frames   = fs.Int("frames", 8, "evaluation frames")
		perLayer = fs.Bool("perlayer", true, "capture per-layer outputs for localisation")
		parallel = fs.Int("parallel", 0, "replay workers (0 = all cores)")
		batch    = fs.Int("batch", 8, "frames per batched interpreter invoke (1 = frame at a time)")
		fleetF   = fs.String("fleet", "", `shard the edge replay across a device fleet: "profile:workers[:batch],..."`)
		shard    = fs.String("shard", "round-robin", "fleet shard policy: contiguous|round-robin|weighted")
		bugDev   = fs.Int("bug-device", -1, "with -fleet, inject -bug into this device slot only (-1 = all devices)")
		edgePath = fs.String("edge-log", "", "validate this pre-captured edge log (jsonl or binary, auto-detected) instead of replaying")
		refPath  = fs.String("ref-log", "", "validate against this pre-captured reference log (jsonl or binary, auto-detected) instead of replaying")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := replay.ValidateFlags(*frames, *parallel, *batch); err != nil {
		return err
	}
	if *fleetF != "" {
		if *edgePath != "" {
			return fmt.Errorf("-fleet replays the edge side; it cannot combine with -edge-log")
		}
		return runFleetValidation(stdout, fleetConfig{
			model: *model, bug: *bug, quant: *quantF, resolver: *resolver, fixed: *fixed,
			frames: *frames, perLayer: *perLayer, spec: *fleetF, shard: *shard,
			bugDevice: *bugDev, refPath: *refPath,
		})
	}
	if *edgePath != "" && *refPath != "" {
		// Pure log-vs-log validation: no model or replay needed.
		edgeLog, err := loadLog(*edgePath, stdout, "edge")
		if err != nil {
			return err
		}
		refLog, err := loadLog(*refPath, stdout, "reference")
		if err != nil {
			return err
		}
		return validate(edgeLog, refLog, stdout)
	}

	// The model/resolver configuration applies only to the side(s) actually
	// being replayed; a file-loaded side describes itself via loadLog.
	entry, err := zoo.Get(*model)
	if err != nil {
		return err
	}

	var edgeLog *core.Log
	if *edgePath != "" {
		edgeLog, err = loadLog(*edgePath, stdout, "edge")
	} else {
		edgeModel := entry.Mobile
		if *quantF {
			edgeModel = entry.Quant
		}
		cfg := ops.Historical()
		if *fixed {
			cfg = ops.Fixed()
		}
		var edgeResolver *ops.Resolver
		switch *resolver {
		case "optimized":
			edgeResolver = ops.NewOptimized(cfg)
		case "reference":
			edgeResolver = ops.NewReference(cfg)
		default:
			return fmt.Errorf("unknown resolver %q", *resolver)
		}
		fmt.Fprintf(stdout, "edge:      %s (%s, %s resolver, bug=%s)\n", edgeModel.Name, edgeModel.Format, *resolver, *bug)
		edgeLog, err = captureLog(edgeModel, edgeResolver, pipeline.Bug(*bug), *frames, *perLayer, *parallel, *batch)
	}
	if err != nil {
		return err
	}
	var refLog *core.Log
	if *refPath != "" {
		refLog, err = loadLog(*refPath, stdout, "reference")
	} else {
		fmt.Fprintf(stdout, "reference: %s (%s, reference resolver, fixed kernels)\n", entry.Mobile.Name, entry.Mobile.Format)
		refLog, err = captureLog(entry.Mobile, ops.NewReference(ops.Fixed()), pipeline.BugNone, *frames, *perLayer, *parallel, *batch)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return validate(edgeLog, refLog, stdout)
}

// fleetConfig carries the -fleet validation flow's flags.
type fleetConfig struct {
	model, bug, resolver, spec, shard, refPath string
	quant, fixed, perLayer                     bool
	frames, bugDevice                          int
}

// runFleetValidation replays the edge side across a device fleet, validates
// the merged log the standard way, and then cross-validates the per-device
// shard logs: the fleet report's per-device rollups isolate device-local
// faults the merged report can only average over.
func runFleetValidation(stdout io.Writer, cfg fleetConfig) error {
	devs, err := runner.ParseFleetSpec(cfg.spec)
	if err != nil {
		return err
	}
	policy, err := runner.ParseShardPolicy(cfg.shard)
	if err != nil {
		return err
	}
	if cfg.bugDevice < -1 || cfg.bugDevice >= len(devs) {
		return fmt.Errorf("-bug-device %d out of range for a %d-device fleet (-1 = all devices)", cfg.bugDevice, len(devs))
	}
	entry, err := zoo.Get(cfg.model)
	if err != nil {
		return err
	}
	m := entry.Mobile
	if cfg.quant {
		m = entry.Quant
	}
	kcfg := ops.Historical()
	if cfg.fixed {
		kcfg = ops.Fixed()
	}
	var edgeResolver *ops.Resolver
	switch cfg.resolver {
	case "optimized":
		edgeResolver = ops.NewOptimized(kcfg)
	case "reference":
		edgeResolver = ops.NewReference(kcfg)
	default:
		return fmt.Errorf("unknown resolver %q", cfg.resolver)
	}

	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(cfg.perLayer)}
	images := replay.Images(datasets.SynthImageNet(5555, cfg.frames))
	fleet := &runner.Fleet{Devices: devs, Policy: policy, MonitorOptions: monOpts}
	bug := pipeline.Bug(cfg.bug)
	fmt.Fprintf(stdout, "edge fleet: %s (%s, %s resolver, %s policy, bug=%s on %s)\n",
		m.Name, m.Format, cfg.resolver, policy.Name(), cfg.bug, bugTarget(cfg.bugDevice, devs))
	res, err := replay.FleetClassification(m, pipeline.Options{Resolver: edgeResolver}, images, fleet,
		func(dev int, spec runner.DeviceSpec, o *pipeline.Options) {
			if cfg.bugDevice < 0 || dev == cfg.bugDevice {
				o.Bug = bug
			}
		})
	if err != nil {
		return err
	}

	var refLog *core.Log
	if cfg.refPath != "" {
		refLog, err = loadLog(cfg.refPath, stdout, "reference")
	} else {
		fmt.Fprintf(stdout, "reference:  %s (%s, reference resolver, fixed kernels)\n", entry.Mobile.Name, entry.Mobile.Format)
		refLog, err = captureLog(entry.Mobile, ops.NewReference(ops.Fixed()), pipeline.BugNone,
			cfg.frames, cfg.perLayer, 0, 8)
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout)
	if err := validate(res.Merged, refLog, stdout); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	shards := make([]core.DeviceShardLog, len(devs))
	for d, spec := range devs {
		shards[d] = core.DeviceShardLog{Device: fmt.Sprintf("d%d-%s", d, spec.Name()), Log: res.DeviceLogs[d]}
	}
	fleetRep, err := core.FleetValidate(shards, refLog, core.DefaultValidateOptions())
	if err != nil {
		return err
	}
	fleetRep.Render(stdout)
	return nil
}

// bugTarget names the device(s) an injected bug applies to.
func bugTarget(bugDevice int, devs []runner.DeviceSpec) string {
	if bugDevice < 0 {
		return "all devices"
	}
	return fmt.Sprintf("device %d (%s)", bugDevice, devs[bugDevice].Name())
}

// validate runs the Figure 2 flow on two logs and renders the report.
func validate(edgeLog, refLog *core.Log, stdout io.Writer) error {
	rep, err := core.Validate(edgeLog, refLog, core.DefaultValidateOptions())
	if err != nil {
		return err
	}
	rep.Render(stdout)
	return nil
}

// loadLog reads a pre-captured telemetry log, auto-detecting the encoding.
func loadLog(path string, stdout io.Writer, role string) (*core.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, format, err := core.ReadLogWithFormat(f)
	if err != nil {
		return nil, fmt.Errorf("%s log %s: %w", role, path, err)
	}
	fmt.Fprintf(stdout, "%s log: %s (%s, %d records)\n", role, path, format, len(l.Records))
	return l, nil
}

// captureLog replays the model's evaluation set through the parallel replay
// engine with full capture and returns the merged telemetry log.
// Classification models run on the batched inference path; speech and text
// batch dispatch only.
func captureLog(m *graph.Model, resolver *ops.Resolver, bug pipeline.Bug, frames int, perLayer bool, parallel, batch int) (*core.Log, error) {
	opts := runner.Options{
		Workers:        parallel,
		BatchFrames:    batch,
		MonitorOptions: []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(perLayer)},
	}
	popts := pipeline.Options{Resolver: resolver, Bug: bug}
	switch m.Meta.Task {
	case "classification":
		images := replay.Images(datasets.SynthImageNet(5555, frames))
		return replay.Classification(m, popts, images, opts, nil)
	case "speech":
		base, err := pipeline.NewSpeechRecognizer(m, popts)
		if err != nil {
			return nil, err
		}
		samples := datasets.SynthSpeech(7777, frames)
		return runner.Replay(len(samples), func(mon *core.Monitor) (runner.ProcessFunc, error) {
			sr, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(i int) error {
				_, _, err := sr.Recognize(samples[i].Wave)
				return err
			}, nil
		}, opts)
	case "text":
		base, err := pipeline.NewTextClassifier(m, datasets.TokenizeText, popts)
		if err != nil {
			return nil, err
		}
		samples := datasets.SynthIMDB(9999, frames)
		return runner.Replay(len(samples), func(mon *core.Monitor) (runner.ProcessFunc, error) {
			tc, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(i int) error {
				_, _, err := tc.ClassifyText(samples[i].Text)
				return err
			}, nil
		}, opts)
	default:
		return nil, fmt.Errorf("exray: task %q not supported by this command", m.Meta.Task)
	}
}
