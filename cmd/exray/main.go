// Command exray runs the full ML-EXray deployment-validation flow on a zoo
// model: it executes an (optionally bugged) edge pipeline and the correct
// reference pipeline over the same data, compares the logs following the
// paper's Figure 2 flowchart, and prints the validation report with
// root-cause findings.
//
// Usage:
//
//	exray -model mobilenetv2-mini -bug channel
//	exray -model mobilenetv2-mini -quant -resolver optimized -perlayer
//	exray -model kws-mini-a -bug specnorm
package main

import (
	"flag"
	"fmt"
	"os"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "mobilenetv2-mini", "zoo model name")
		bug      = flag.String("bug", "none", "injected bug: none|resize|channel|normalization|rotation|specnorm|lowercase")
		quantF   = flag.Bool("quant", false, "deploy the quantized model version")
		resolver = flag.String("resolver", "optimized", "edge op resolver: optimized|reference")
		fixed    = flag.Bool("fixed", false, "use the repaired kernel build instead of the historical one")
		frames   = flag.Int("frames", 8, "evaluation frames")
		perLayer = flag.Bool("perlayer", true, "capture per-layer outputs for localisation")
	)
	flag.Parse()

	entry, err := zoo.Get(*model)
	if err != nil {
		fatal(err)
	}
	edgeModel := entry.Mobile
	if *quantF {
		edgeModel = entry.Quant
	}
	cfg := ops.Historical()
	if *fixed {
		cfg = ops.Fixed()
	}
	var edgeResolver *ops.Resolver
	switch *resolver {
	case "optimized":
		edgeResolver = ops.NewOptimized(cfg)
	case "reference":
		edgeResolver = ops.NewReference(cfg)
	default:
		fatal(fmt.Errorf("unknown resolver %q", *resolver))
	}

	fmt.Printf("edge:      %s (%s, %s resolver, bug=%s)\n", edgeModel.Name, edgeModel.Format, *resolver, *bug)
	fmt.Printf("reference: %s (%s, reference resolver, fixed kernels)\n\n", entry.Mobile.Name, entry.Mobile.Format)

	edgeLog, err := run(edgeModel, edgeResolver, pipeline.Bug(*bug), *frames, *perLayer)
	if err != nil {
		fatal(err)
	}
	refLog, err := run(entry.Mobile, ops.NewReference(ops.Fixed()), pipeline.BugNone, *frames, *perLayer)
	if err != nil {
		fatal(err)
	}
	rep, err := core.Validate(edgeLog, refLog, core.DefaultValidateOptions())
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)
}

func run(m *graph.Model, resolver *ops.Resolver, bug pipeline.Bug, frames int, perLayer bool) (*core.Log, error) {
	mon := core.NewMonitor(core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(perLayer))
	opts := pipeline.Options{Resolver: resolver, Monitor: mon, Bug: bug}
	switch m.Meta.Task {
	case "classification":
		cl, err := pipeline.NewClassifier(m, opts)
		if err != nil {
			return nil, err
		}
		for _, s := range datasets.SynthImageNet(5555, frames) {
			if _, _, err := cl.Classify(s.Image); err != nil {
				return nil, err
			}
		}
	case "speech":
		sr, err := pipeline.NewSpeechRecognizer(m, opts)
		if err != nil {
			return nil, err
		}
		for _, s := range datasets.SynthSpeech(7777, frames) {
			if _, _, err := sr.Recognize(s.Wave); err != nil {
				return nil, err
			}
		}
	case "text":
		tc, err := pipeline.NewTextClassifier(m, datasets.TokenizeText, opts)
		if err != nil {
			return nil, err
		}
		for _, s := range datasets.SynthIMDB(9999, frames) {
			if _, _, err := tc.ClassifyText(s.Text); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("exray: task %q not supported by this command", m.Meta.Task)
	}
	return mon.Log(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exray:", err)
	os.Exit(1)
}
