package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

// TestRunOneFrameValidation drives the one-shot validation flow end to end
// on a single frame: both replays run on the parallel engine and the report
// renders.
func TestRunOneFrameValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-frames", "1", "-parallel", "2", "-perlayer=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "deployment validation report") {
		t.Errorf("missing report header:\n%s", out)
	}
	if !strings.Contains(out, "output agreement") {
		t.Errorf("missing agreement line:\n%s", out)
	}
}

// TestRunCatchesInjectedBug checks the flow flags a channel-arrangement bug
// on a small replay.
func TestRunCatchesInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frame validation sweep")
	}
	var buf bytes.Buffer
	if err := run([]string{"-frames", "4", "-bug", "channel", "-fixed"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "channel-arrangement") {
		t.Errorf("channel bug not flagged:\n%s", buf.String())
	}
}

// TestRunFromLogFiles validates pre-captured logs instead of replaying: the
// edge log stored binary, the reference log JSONL, both auto-detected — and
// the rendered report is identical whichever encoding carried the logs.
func TestRunFromLogFiles(t *testing.T) {
	edge, err := captureLog(mustModel(t, "mobilenetv2-mini"), ops.NewOptimized(ops.Fixed()),
		pipeline.BugNormalization, 2, true, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := captureLog(mustModel(t, "mobilenetv2-mini"), ops.NewReference(ops.Fixed()),
		pipeline.BugNone, 2, true, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name string, l *core.Log, format core.LogFormat) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := l.Write(f, format); err != nil {
			t.Fatal(err)
		}
		return path
	}

	report := func(edgePath, refPath string) string {
		var buf bytes.Buffer
		if err := run([]string{"-edge-log", edgePath, "-ref-log", refPath}, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "deployment validation report") {
			t.Fatalf("missing report:\n%s", out)
		}
		// Strip the per-file preamble (it names paths and formats); the
		// validation report itself must not depend on the encoding.
		return out[strings.Index(out, "ML-EXray"):]
	}

	binRep := report(write("edge.mlxb", edge, core.FormatBinary), write("ref.mlxb", ref, core.FormatBinary))
	jsonRep := report(write("edge.jsonl", edge, core.FormatJSONL), write("ref.jsonl", ref, core.FormatJSONL))
	mixedRep := report(write("edge2.mlxb", edge, core.FormatBinary), write("ref2.jsonl", ref, core.FormatJSONL))
	if binRep != jsonRep || mixedRep != jsonRep {
		t.Errorf("validation reports differ across log encodings:\n-- binary --\n%s\n-- jsonl --\n%s\n-- mixed --\n%s",
			binRep, jsonRep, mixedRep)
	}
	if !strings.Contains(jsonRep, "normalization") {
		t.Errorf("normalization bug not flagged:\n%s", jsonRep)
	}

	// One-sided mode: the edge side comes from the file, the reference side
	// replays — the preamble must describe only the replayed side.
	var buf bytes.Buffer
	edgePath := write("edge3.mlxb", edge, core.FormatBinary)
	if err := run([]string{"-edge-log", edgePath, "-frames", "2", "-parallel", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "edge log: "+edgePath) || !strings.Contains(out, "reference: ") {
		t.Errorf("mixed-mode preamble wrong:\n%s", out)
	}
	if strings.Contains(out, "edge:      ") {
		t.Errorf("mixed mode printed a replay header for the file-loaded edge side:\n%s", out)
	}
}

// TestRunFleetValidation drives the fleet validation flow: a bug injected
// into one device slot only must surface in the fleet report as exactly
// that device flagged.
func TestRunFleetValidation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-frames", "8", "-fleet", "Pixel4:2:4,Pixel3:1", "-shard", "round-robin",
		"-bug", "normalization", "-bug-device", "0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fleet validation report") {
		t.Fatalf("missing fleet report:\n%s", out)
	}
	// The flagged-devices summary must name the bugged slot and nothing
	// else; the healthy device's report line must carry no divergence mark.
	if !strings.Contains(out, "flagged devices: d0-Pixel4\n") {
		t.Errorf("flagged-devices line should list exactly d0-Pixel4:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "d1-Pixel3") && strings.Contains(line, "DIVERGES") {
			t.Errorf("healthy device flagged: %q", line)
		}
	}
	// The standard merged-log report still renders ahead of the fleet one.
	if !strings.Contains(out, "deployment validation report") {
		t.Errorf("missing merged report:\n%s", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-resolver", "wat"}, &buf); err == nil {
		t.Error("unknown resolver should error")
	}
	if err := run([]string{"-model", "no-such-model"}, &buf); err == nil {
		t.Error("unknown model should error")
	}
	if err := run([]string{"-edge-log", "no/such/file", "-ref-log", "also/missing"}, &buf); err == nil {
		t.Error("missing log file should error")
	}
	for _, args := range [][]string{
		{"-frames", "0"},
		{"-parallel", "-2"},
		{"-batch", "-1"},
		{"-fleet", "Pixel4:-1"},
		{"-fleet", "Pixel4:1", "-bug-device", "5"},
		{"-fleet", "Pixel4:1", "-edge-log", "some.jsonl"},
		{"-fleet", "Pixel4:1", "-shard", "wat"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

// mustModel resolves a zoo model for the file-based validation test.
func mustModel(t *testing.T, name string) *graph.Model {
	t.Helper()
	entry, err := zoo.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return entry.Mobile
}
