package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunOneFrameValidation drives the one-shot validation flow end to end
// on a single frame: both replays run on the parallel engine and the report
// renders.
func TestRunOneFrameValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-frames", "1", "-parallel", "2", "-perlayer=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "deployment validation report") {
		t.Errorf("missing report header:\n%s", out)
	}
	if !strings.Contains(out, "output agreement") {
		t.Errorf("missing agreement line:\n%s", out)
	}
}

// TestRunCatchesInjectedBug checks the flow flags a channel-arrangement bug
// on a small replay.
func TestRunCatchesInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frame validation sweep")
	}
	var buf bytes.Buffer
	if err := run([]string{"-frames", "4", "-bug", "channel", "-fixed"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "channel-arrangement") {
		t.Errorf("channel bug not flagged:\n%s", buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-resolver", "wat"}, &buf); err == nil {
		t.Error("unknown resolver should error")
	}
	if err := run([]string{"-model", "no-such-model"}, &buf); err == nil {
		t.Error("unknown model should error")
	}
}
