// Command exraystorm storm-tests the telemetry collector: it boots a live
// ingest daemon in-process and drives it with a synthetic device swarm
// through real upload clients, while a fault-injection layer damages the
// traffic — mid-chunk disconnects, slow-loris writes, corrupt bytes, lost
// acks, duplicated and reordered retries — and (optionally) the collector
// itself is hard-killed and restarted mid-storm.
//
// The storm is judged, not just survived. exraystorm exits nonzero unless
// every graceful-degradation invariant held:
//
//   - every upload response carried a documented status
//     (200/400/409/413/429/500/503, plus 502 from the sharding gateway),
//   - every 200-acked chunk survived crash recovery byte-exactly (the
//     recovered /fleet equals a fault-free reference over the same acks),
//   - every device sink drained despite throttling, caps and restarts,
//   - idle eviction reclaimed every session slot after the storm,
//   - the collectors' own /metrics counters, scraped after the final
//     recovery, reconcile with the client-observed set of acked chunks
//     (the self-telemetry must be as honest as the data path).
//
// While the swarm runs, a scrape loop samples every collector's (and the
// gateway's) /metrics the way an external Prometheus would, so exposition
// is exercised under full ingest load and crash/restart churn.
//
// Usage:
//
//	exraystorm -devices 200 -frames 2 -data-dir /tmp/storm -kill-after 100
//	exraystorm -devices 32 -seed 7 -json storm.json
//	exraystorm -devices 64 -shards 4 -data-dir /tmp/storm -kill-after 40
//
// With -shards N the swarm uploads through a consistent-hash gateway into a
// ring of N collector shards, the kill act takes down a single shard while
// the rest keep serving, and the judged /fleet is the gateway's merged
// report — still pinned byte-identical to the fault-free single-collector
// reference.
//
// The report prints throughput (frames/sec), p99 ingest latency, peak RSS,
// the status-code histogram and the per-fault injection counts; -json
// writes the full result for the bench tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mlexray/internal/storm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "exraystorm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("exraystorm", flag.ContinueOnError)
	var (
		devices   = fs.Int("devices", 200, "swarm size (concurrent simulated devices)")
		frames    = fs.Int("frames", 2, "frames per device")
		seed      = fs.Uint64("seed", 1, "storm randomness seed (same seed, same swarm)")
		shards    = fs.Int("shards", 0, "run a consistent-hash ring of this many collector shards behind an in-process gateway; the kill act takes down one shard (0 or 1 = single collector)")
		dataDir   = fs.String("data-dir", "", "collector write-ahead log directory (empty = in-memory collector; required for -kill-after and -evict-idle)")
		segBytes  = fs.Int64("segment-bytes", 0, "WAL segment-rotation threshold in bytes (0 = single-segment WALs)")
		sessions  = fs.Int("max-sessions", 64, "collector session cap (0 = unlimited)")
		chunkRate = fs.Float64("max-chunk-rate", 5, "per-device accepted-chunk rate limit (0 = unlimited)")
		burst     = fs.Int("chunk-burst", 1, "rate limiter burst size")
		evictIdle = fs.Duration("evict-idle", 250*time.Millisecond, "collector idle-session eviction horizon (0 = never evict)")
		readTO    = fs.Duration("read-timeout", 150*time.Millisecond, "collector per-request body read deadline (what sheds slow-loris uploads; 0 = none)")
		writeTO   = fs.Duration("write-timeout", time.Second, "collector per-request response write deadline (0 = none)")
		killAfter = fs.Int("kill-after", 100, "hard-kill and restart the collector after this many acked chunks (0 = never)")
		straggler = fs.Float64("stragglers", 0.05, "fraction of devices that stall mid-stream")
		stallFor  = fs.Duration("stall-for", 300*time.Millisecond, "how long a straggler stalls")
		sinkMax   = fs.Duration("sink-budget", 90*time.Second, "each device sink's total retry budget")
		noFaults  = fs.Bool("no-faults", false, "disable the chaos layer (clean-load baseline)")
		jsonPath  = fs.String("json", "", "also write the full result as JSON to this file")
		quiet     = fs.Bool("quiet", false, "suppress the storm narration, print only the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" && (*killAfter > 0 || *evictIdle > 0) {
		return fmt.Errorf("-kill-after and -evict-idle need -data-dir (recovery needs a WAL); pass -data-dir or set both to 0")
	}

	opts := storm.Options{
		Devices:         *devices,
		FramesPerDevice: *frames,
		Seed:            *seed,
		Shards:          *shards,
		DataDir:         *dataDir,
		SegmentBytes:    *segBytes,
		MaxSessions:     *sessions,
		MaxChunksPerSec: *chunkRate,
		ChunkBurst:      *burst,
		IdleTimeout:     *evictIdle,
		ReadTimeout:     *readTO,
		WriteTimeout:    *writeTO,
		KillAfterChunks: *killAfter,
		Stragglers:      *straggler,
		StallFor:        *stallFor,
		SinkMaxElapsed:  *sinkMax,
	}
	if !*noFaults {
		opts.Faults = storm.AllFaults()
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}

	res, err := storm.Run(opts)
	if err != nil {
		return err
	}
	report(stdout, res)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "result written to %s\n", *jsonPath)
	}
	if err := res.CheckInvariants(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "PASS: all graceful-degradation invariants held")
	return nil
}

func report(w io.Writer, res *storm.Result) {
	fmt.Fprintf(w, "\nstorm: %d devices, %d frames in %v",
		res.Devices, res.Frames, res.Elapsed.Round(time.Millisecond))
	if res.Shards > 1 {
		fmt.Fprintf(w, " across %d shards", res.Shards)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  throughput   %.1f frames/sec\n", res.FramesPerSec)
	fmt.Fprintf(w, "  p99 latency  %v\n", res.P99Latency.Round(time.Microsecond))
	if len(res.LatencyHist) > 0 {
		fmt.Fprintf(w, "  p99 history ")
		for _, b := range res.LatencyHist {
			fmt.Fprintf(w, " %v", (time.Duration(b.P99Ns) * time.Nanosecond).Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  peak rss     %.1f MiB\n", float64(res.PeakRSSBytes)/(1<<20))
	fmt.Fprintf(w, "  acked chunks %d (recovered %d across %d sessions)\n",
		res.AckedChunks, res.RecoveredChunks, res.RecoveredSessions)
	fmt.Fprintf(w, "  lifecycle    %d restarts, %d evictions, %d resurrections, %d leaked sessions\n",
		res.Restarts, res.Evictions, res.Resurrections, res.LeakedSessions)

	codes := make([]int, 0, len(res.StatusCounts))
	for code := range res.StatusCounts {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	fmt.Fprintf(w, "  statuses    ")
	for _, code := range codes {
		fmt.Fprintf(w, " %d:%d", code, res.StatusCounts[code])
	}
	fmt.Fprintln(w)

	if len(res.FaultsInjected) > 0 {
		names := make([]string, 0, len(res.FaultsInjected))
		for name := range res.FaultsInjected {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  faults      ")
		for _, name := range names {
			fmt.Fprintf(w, " %s:%d", name, res.FaultsInjected[name])
		}
		fmt.Fprintf(w, " (%d net errors)\n", res.NetErrors)
	}

	// The server-side view: what the collectors' own /metrics reported,
	// folded across shards after the final recovery. The reconcile line is
	// the telemetry-honesty check — server counters vs client-observed acks.
	if res.ServerMetrics != nil {
		fmt.Fprintf(w, "  scrapes      %d mid-storm /metrics samples\n", res.ScrapeSamples)
		verdict := "reconciled"
		if res.ServerChunks != res.DistinctAckedChunks {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "  server view  %d chunks counted vs %d distinct acked (%s)\n",
			res.ServerChunks, res.DistinctAckedChunks, verdict)
		for _, name := range []string{
			"mlexray_ingest_records_total",
			"mlexray_ingest_bytes_total",
			"mlexray_ingest_duplicate_chunks_total",
			"mlexray_ingest_rate_limited_total",
			"mlexray_ingest_session_cap_rejects_total",
			"mlexray_wal_fsync_seconds_count",
		} {
			if v := res.ServerMetrics[name]; v != 0 {
				fmt.Fprintf(w, "    %-42s %.0f\n", name, v)
			}
		}
	}
}
