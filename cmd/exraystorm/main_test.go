package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanStorm drives a small fault-free in-memory storm end to end
// through the CLI and pins the report shape and the JSON emit.
func TestRunCleanStorm(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "storm.json")
	var buf bytes.Buffer
	err := run([]string{
		"-devices", "6", "-frames", "2", "-no-faults", "-quiet",
		"-kill-after", "0", "-evict-idle", "0",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatalf("clean storm failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"6 devices, 12 frames",
		"throughput",
		"p99 latency",
		"peak rss",
		"statuses",
		"PASS: all graceful-degradation invariants held",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Devices      int             `json:"devices"`
		FramesPerSec float64         `json:"frames_per_sec"`
		PeakRSSBytes int64           `json:"peak_rss_bytes"`
		Statuses     map[string]int  `json:"status_counts"`
		Faults       map[string]int  `json:"faults_injected"`
		Raw          json.RawMessage `json:"-"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Devices != 6 || res.FramesPerSec <= 0 || res.PeakRSSBytes <= 0 {
		t.Errorf("JSON result incomplete: %+v", res)
	}
	if res.Statuses["200"] == 0 {
		t.Errorf("JSON statuses missing the 200s: %v", res.Statuses)
	}
}

// TestRunFaultyDurableStorm runs the full chaos path through the CLI: every
// fault type, a mid-storm kill/restart, eviction — small enough for a test,
// real enough to exercise each leg.
func TestRunFaultyDurableStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos storm skipped in -short")
	}
	var buf bytes.Buffer
	err := run([]string{
		"-devices", "40", "-frames", "2", "-seed", "3",
		"-data-dir", t.TempDir(), "-kill-after", "20",
	}, &buf)
	if err != nil {
		t.Fatalf("chaos storm failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "kill act") {
		t.Errorf("mid-storm kill never narrated:\n%s", out)
	}
	if !strings.Contains(out, "PASS: all graceful-degradation invariants held") {
		t.Errorf("missing verdict:\n%s", out)
	}
}

// TestRunRejectsKillWithoutDataDir pins the flag guard.
func TestRunRejectsKillWithoutDataDir(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-devices", "2", "-kill-after", "5"}, &buf); err == nil {
		t.Error("kill without data dir accepted")
	}
	if err := run([]string{"-devices", "2", "-kill-after", "0"}, &buf); err == nil {
		t.Error("default evict-idle without data dir accepted")
	}
}
