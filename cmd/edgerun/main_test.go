package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlexray/internal/core"
)

// TestRunOneFrame drives a one-frame end-to-end run through flag parsing,
// the parallel replay path and both streaming sinks, and checks that the
// written log reads back (auto-detected) in either encoding.
func TestRunOneFrame(t *testing.T) {
	for _, format := range []string{"jsonl", "binary"} {
		t.Run(format, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "edge."+format)
			var buf bytes.Buffer
			err := run([]string{"-frames", "1", "-parallel", "2", "-bug", "normalization",
				"-log-format", format, "-o", out}, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "edgerun: wrote") || !strings.Contains(buf.String(), format) {
				t.Errorf("missing summary line: %q", buf.String())
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			l, err := core.ReadLog(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(l.Records) == 0 {
				t.Error("log has no records")
			}
			if got := l.Frames(); got != 2 { // frames are 1-based: one frame -> max index 1
				t.Errorf("Frames() = %d, want 2", got)
			}
		})
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-model", "no-such-model"}, &buf); err == nil {
		t.Error("unknown model should error")
	}
	if err := run([]string{"-device", "no-such-device"}, &buf); err == nil {
		t.Error("unknown device should error")
	}
}
