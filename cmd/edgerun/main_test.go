package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
)

// TestRunOneFrame drives a one-frame end-to-end run through flag parsing,
// the parallel replay path and both streaming sinks, and checks that the
// written log reads back (auto-detected) in either encoding.
func TestRunOneFrame(t *testing.T) {
	for _, format := range []string{"jsonl", "binary"} {
		t.Run(format, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "edge."+format)
			var buf bytes.Buffer
			err := run([]string{"-frames", "1", "-parallel", "2", "-bug", "normalization",
				"-log-format", format, "-o", out}, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "edgerun: wrote") || !strings.Contains(buf.String(), format) {
				t.Errorf("missing summary line: %q", buf.String())
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			l, err := core.ReadLog(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(l.Records) == 0 {
				t.Error("log has no records")
			}
			if got := l.Frames(); got != 2 { // frames are 1-based: one frame -> max index 1
				t.Errorf("Frames() = %d, want 2", got)
			}
		})
	}
}

// TestRunFleet drives the fleet mode end to end: per-device shard logs land
// next to the merged log, every log reads back, and the merged record count
// equals the sum of the shards'.
func TestRunFleet(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "edge.jsonl")
	var buf bytes.Buffer
	err := run([]string{"-frames", "4", "-fleet", "Pixel4:2:2,Pixel3:1", "-shard", "round-robin", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	readLog := func(path string) *core.Log {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		l, err := core.ReadLog(f)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	merged := readLog(out)
	shardRecords := 0
	for _, name := range []string{"edge.d0-Pixel4.jsonl", "edge.d1-Pixel3.jsonl"} {
		l := readLog(filepath.Join(dir, name))
		if len(l.Records) == 0 {
			t.Errorf("%s has no records", name)
		}
		shardRecords += len(l.Records)
	}
	if len(merged.Records) == 0 || len(merged.Records) != shardRecords {
		t.Errorf("merged log has %d records, shards total %d", len(merged.Records), shardRecords)
	}
	if got := merged.Frames(); got != 5 { // frames are 1-based: four frames -> max index 4
		t.Errorf("merged Frames() = %d, want 5", got)
	}
	if !strings.Contains(buf.String(), "fleet (round-robin policy) merged") {
		t.Errorf("missing fleet summary line:\n%s", buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-model", "no-such-model"}, &buf); err == nil {
		t.Error("unknown model should error")
	}
	if err := run([]string{"-device", "no-such-device"}, &buf); err == nil {
		t.Error("unknown device should error")
	}
	// Replay sizing is validated up front: 0/negative values get a clear
	// error instead of hanging or panicking in the engine.
	for _, args := range [][]string{
		{"-frames", "0"},
		{"-frames", "-3"},
		{"-parallel", "-1"},
		{"-batch", "0"},
		{"-batch", "-8"},
		{"-fleet", "Pixel4:0"},
		{"-fleet", "Pixel4:1:-2"},
		{"-fleet", "NoSuchDevice:1"},
		{"-fleet", "Pixel4:2", "-shard", "zigzag"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

// getDeviceStatus fetches one device session's status from the collector.
func getDeviceStatus(t *testing.T, base, device string) ingest.DeviceStatus {
	t.Helper()
	resp, err := http.Get(base + "/devices/" + device)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/devices/%s status %d", device, resp.StatusCode)
	}
	var st ingest.DeviceStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRunUpload drives -upload: the replay's telemetry lands both in the
// local log(s) and in a live collector, one session per device, with the
// collector's per-session record counts matching the local logs.
func TestRunUpload(t *testing.T) {
	srv, err := ingest.NewServer(ingest.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	readLog := func(path string) *core.Log {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		l, err := core.ReadLog(f)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	t.Run("single", func(t *testing.T) {
		out := filepath.Join(t.TempDir(), "edge.jsonl")
		var buf bytes.Buffer
		if err := run([]string{"-frames", "2", "-parallel", "2", "-upload", ts.URL, "-o", out}, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "uploaded") {
			t.Errorf("missing upload summary:\n%s", buf.String())
		}
		local := readLog(out)
		st := getDeviceStatus(t, ts.URL, "Pixel4")
		if st.Records != len(local.Records) || st.Records == 0 {
			t.Errorf("collector holds %d records, local log %d", st.Records, len(local.Records))
		}
	})

	t.Run("fleet", func(t *testing.T) {
		dir := t.TempDir()
		out := filepath.Join(dir, "edge.jsonl")
		var buf bytes.Buffer
		err := run([]string{"-frames", "4", "-fleet", "Pixel4:2:2,Pixel3:1", "-log-format", "binary",
			"-upload", ts.URL, "-o", out}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"d0-Pixel4", "d1-Pixel3"} {
			local := readLog(filepath.Join(dir, "edge."+name+".jsonl"))
			st := getDeviceStatus(t, ts.URL, name)
			if st.Records != len(local.Records) || st.Records == 0 {
				t.Errorf("%s: collector holds %d records, shard log %d", name, st.Records, len(local.Records))
			}
		}
	})
}
