// Command edgerun executes an instrumented edge pipeline over the synthetic
// dataset and writes the ML-EXray telemetry log as JSONL — the on-device
// half of the validation workflow. Pair with refrun and feed both logs to
// the validation library (or cmd/exray for the one-shot flow).
//
// The replay shards across -parallel workers (default: all cores), each
// owning its own interpreter replica, and each worker runs -batch frames per
// batched interpreter invoke (1 = frame at a time); telemetry streams to
// disk merged in frame order, so the log is identical to a single-worker
// frame-at-a-time run.
//
// The telemetry encoding is selectable with -log-format: "jsonl" (the
// human-readable default) or "binary" (the length-prefixed raw-payload
// format, roughly half the bytes and a fraction of the encode cost for
// full-tensor capture). cmd/exray and mlexray.ReadLog auto-detect either.
//
// Usage:
//
//	edgerun -model mobilenetv2-mini -bug normalization -o edge.jsonl
//	edgerun -model mobilenetv2-mini -log-format binary -o edge.mlxb
//	edgerun -model mobilenetv2-mini -quant -device Pixel4 -parallel 8 -batch 32 -o edge.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edgerun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("edgerun", flag.ContinueOnError)
	var (
		model    = fs.String("model", "mobilenetv2-mini", "zoo model name (classification)")
		bug      = fs.String("bug", "none", "injected preprocessing bug")
		quantF   = fs.Bool("quant", false, "deploy the quantized version")
		devName  = fs.String("device", "Pixel4", "device profile")
		frames   = fs.Int("frames", 8, "frames to process")
		perLayer = fs.Bool("perlayer", true, "capture per-layer outputs")
		parallel = fs.Int("parallel", 0, "replay workers (0 = all cores)")
		batch    = fs.Int("batch", 8, "frames per batched interpreter invoke (1 = frame at a time)")
		logFmt   = fs.String("log-format", "jsonl", "telemetry log encoding: jsonl|binary")
		out      = fs.String("o", "edge.jsonl", "output log path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	format, err := core.ParseLogFormat(*logFmt)
	if err != nil {
		return err
	}

	entry, err := zoo.Get(*model)
	if err != nil {
		return err
	}
	m := entry.Mobile
	if *quantF {
		m = entry.Quant
	}
	dev, err := device.ByName(*devName)
	if err != nil {
		return err
	}
	images := replay.Images(datasets.SynthImageNet(5555, *frames))
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	sink, err := core.NewLogSink(f, format)
	if err != nil {
		return err
	}
	// DiscardLog: frames stream to disk as they merge, so memory stays flat
	// however long the replay; MaxPending bounds the reorder window.
	_, err = replay.Classification(m, pipeline.Options{
		Resolver: ops.NewOptimized(ops.Historical()),
		Device:   dev,
		Bug:      pipeline.Bug(*bug),
	}, images, runner.Options{
		Workers:        *parallel,
		BatchFrames:    *batch,
		MonitorOptions: []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(*perLayer)},
		Sink:           sink,
		DiscardLog:     true,
	}, nil)
	if err != nil {
		return err
	}
	if err := sink.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "edgerun: wrote %d records (%d bytes, %s) to %s\n", sink.Records(), sink.Bytes(), sink.Format(), *out)
	return nil
}
