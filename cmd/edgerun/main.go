// Command edgerun executes an instrumented edge pipeline over the synthetic
// dataset and writes the ML-EXray telemetry log as JSONL — the on-device
// half of the validation workflow. Pair with refrun and feed both logs to
// the validation library (or cmd/exray for the one-shot flow).
//
// Usage:
//
//	edgerun -model mobilenetv2-mini -bug normalization -o edge.jsonl
//	edgerun -model mobilenetv2-mini -quant -device Pixel4 -o edge.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "mobilenetv2-mini", "zoo model name (classification)")
		bug      = flag.String("bug", "none", "injected preprocessing bug")
		quantF   = flag.Bool("quant", false, "deploy the quantized version")
		devName  = flag.String("device", "Pixel4", "device profile")
		frames   = flag.Int("frames", 8, "frames to process")
		perLayer = flag.Bool("perlayer", true, "capture per-layer outputs")
		out      = flag.String("o", "edge.jsonl", "output log path")
	)
	flag.Parse()

	entry, err := zoo.Get(*model)
	if err != nil {
		fatal(err)
	}
	m := entry.Mobile
	if *quantF {
		m = entry.Quant
	}
	dev, err := device.ByName(*devName)
	if err != nil {
		fatal(err)
	}
	mon := core.NewMonitor(core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(*perLayer))
	cl, err := pipeline.NewClassifier(m, pipeline.Options{
		Resolver: ops.NewOptimized(ops.Historical()),
		Monitor:  mon,
		Device:   dev,
		Bug:      pipeline.Bug(*bug),
	})
	if err != nil {
		fatal(err)
	}
	for _, s := range datasets.SynthImageNet(5555, *frames) {
		if _, _, err := cl.Classify(s.Image); err != nil {
			fatal(err)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := mon.Log().WriteJSONL(f); err != nil {
		fatal(err)
	}
	n, _ := mon.Log().SizeBytes()
	fmt.Printf("edgerun: wrote %d records (%d bytes) to %s\n", len(mon.Log().Records), n, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgerun:", err)
	os.Exit(1)
}
