// Command edgerun executes an instrumented edge pipeline over the synthetic
// dataset and writes the ML-EXray telemetry log as JSONL — the on-device
// half of the validation workflow. Pair with refrun and feed both logs to
// the validation library (or cmd/exray for the one-shot flow).
//
// The replay shards across -parallel workers (default: all cores), each
// owning its own interpreter replica, and each worker runs -batch frames per
// batched interpreter invoke (1 = frame at a time); telemetry streams to
// disk merged in frame order, so the log is identical to a single-worker
// frame-at-a-time run.
//
// The telemetry encoding is selectable with -log-format: "jsonl" (the
// human-readable default) or "binary" (the length-prefixed raw-payload
// format, roughly half the bytes and a fraction of the encode cost for
// full-tensor capture). cmd/exray and mlexray.ReadLog auto-detect either.
//
// With -fleet the replay shards across several simulated devices instead of
// one: the spec "profile:workers[:batch],..." builds a heterogeneous fleet
// whose shard policy (-shard: contiguous, round-robin or weighted) splits
// the frame range. Each device writes its own shard log next to -o
// (edge.jsonl -> edge.d0-Pixel4.jsonl, ...) and the merged fleet log —
// byte-identical to a sequential replay of the same shard assignment — goes
// to -o itself.
//
// With -upload the telemetry additionally streams to a running exrayd
// collector (chunked gzip uploads, one session per device — fleet devices
// upload as d0-Pixel4, d1-..., matching their shard-log file names), so the
// daemon's incremental /fleet and /devices reports are ready when the replay
// ends.
//
// Usage:
//
//	edgerun -model mobilenetv2-mini -bug normalization -o edge.jsonl
//	edgerun -model mobilenetv2-mini -log-format binary -o edge.mlxb
//	edgerun -model mobilenetv2-mini -quant -device Pixel4 -parallel 8 -batch 32 -o edge.jsonl
//	edgerun -model mobilenetv2-mini -fleet "Pixel4:2:8,Pixel3:1,Emulator-x86:1" -shard weighted -o edge.jsonl
//	edgerun -model mobilenetv2-mini -fleet "Pixel4:2,Pixel3:1" -upload http://localhost:9090 -o edge.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/ingest"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edgerun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("edgerun", flag.ContinueOnError)
	var (
		model    = fs.String("model", "mobilenetv2-mini", "zoo model name (classification)")
		bug      = fs.String("bug", "none", "injected preprocessing bug")
		quantF   = fs.Bool("quant", false, "deploy the quantized version")
		devName  = fs.String("device", "Pixel4", "device profile")
		frames   = fs.Int("frames", 8, "frames to process")
		perLayer = fs.Bool("perlayer", true, "capture per-layer outputs")
		parallel = fs.Int("parallel", 0, "replay workers (0 = all cores)")
		batch    = fs.Int("batch", 8, "frames per batched interpreter invoke (1 = frame at a time)")
		fleet    = fs.String("fleet", "", `shard across a device fleet: "profile:workers[:batch],..." (overrides -device/-parallel/-batch)`)
		shard    = fs.String("shard", "contiguous", "fleet shard policy: contiguous|round-robin|weighted")
		kernel   = fs.String("kernel", "", "kernel backend: reference|blocked|tiled (default blocked)")
		logFmt   = fs.String("log-format", "jsonl", "telemetry log encoding: jsonl|binary")
		upload   = fs.String("upload", "", "also stream telemetry to an exrayd collector at this URL (per-device sessions)")
		gz       = fs.Bool("upload-gzip", true, "gzip-compress upload chunks")
		out      = fs.String("o", "edge.jsonl", "output log path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := replay.ValidateFlags(*frames, *parallel, *batch); err != nil {
		return err
	}
	format, err := core.ParseLogFormat(*logFmt)
	if err != nil {
		return err
	}
	backend, err := ops.ParseBackend(*kernel)
	if err != nil {
		return err
	}

	entry, err := zoo.Get(*model)
	if err != nil {
		return err
	}
	m := entry.Mobile
	if *quantF {
		m = entry.Quant
	}
	images := replay.Images(datasets.SynthImageNet(5555, *frames))
	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(*perLayer)}
	popts := pipeline.Options{
		Resolver: ops.NewOptimized(ops.Historical()),
		Bug:      pipeline.Bug(*bug),
		Backend:  backend,
	}

	up := uploadOptions{url: *upload, gzip: *gz}

	if *fleet != "" {
		return runFleet(stdout, m, popts, images, *fleet, *shard, monOpts, format, *out, up)
	}

	dev, err := device.ByName(*devName)
	if err != nil {
		return err
	}
	popts.Device = dev
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	sink, err := core.NewLogSink(f, format)
	if err != nil {
		return err
	}
	frameSink, remote, err := up.wrap(sink, *devName, format)
	if err != nil {
		return err
	}
	// DiscardLog: frames stream to disk as they merge, so memory stays flat
	// however long the replay; MaxPending bounds the reorder window.
	_, err = replay.Classification(m, popts, images, runner.Options{
		Workers:        *parallel,
		BatchFrames:    *batch,
		MonitorOptions: monOpts,
		Sink:           frameSink,
		DiscardLog:     true,
	}, nil)
	if err != nil {
		return err
	}
	if err := frameSink.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "edgerun: wrote %d records (%d bytes, %s) to %s\n", sink.Records(), sink.Bytes(), sink.Format(), *out)
	if remote != nil {
		fmt.Fprintf(stdout, "edgerun: uploaded to %s as %s: %s\n", up.url, *devName, uploadSummary(remote.Stats()))
	}
	return nil
}

// uploadSummary renders one sink's end-of-run Stats line: volume always,
// retry/redirect/failure detail only when there is any to report.
func uploadSummary(st ingest.SinkStats) string {
	s := fmt.Sprintf("%d records, %d frames in %d chunks (%d wire bytes)",
		st.Records, st.Frames, st.Chunks, st.WireBytes)
	if st.Retries > 0 {
		s += fmt.Sprintf(", %d retries (%v backing off)", st.Retries, st.BackoffSlept.Round(time.Millisecond))
	}
	if st.Redirects > 0 {
		s += fmt.Sprintf(", %d redirects", st.Redirects)
	}
	if st.GiveUps > 0 {
		s += fmt.Sprintf(", %d chunks given up (last error: %s)", st.GiveUps, st.LastErr)
	}
	return s
}

// uploadOptions carries the -upload flags: when url is set, every log sink
// tees its frames into a RemoteSink streaming to the exrayd collector, one
// session per device.
type uploadOptions struct {
	url  string
	gzip bool
}

// wrap tees local into a RemoteSink for the named device session (a no-op
// pass-through when no collector URL was given).
func (u uploadOptions) wrap(local core.Sink, device string, format core.LogFormat) (core.Sink, *ingest.RemoteSink, error) {
	if u.url == "" {
		return local, nil, nil
	}
	remote, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: u.url, Device: device, Format: format, Gzip: u.gzip,
	})
	if err != nil {
		return nil, nil, err
	}
	return teeSink{local, remote}, remote, nil
}

// teeSink fans frames out to several sinks in order (local file first, then
// the collector upload).
type teeSink []core.Sink

// WriteFrame implements core.Sink.
func (t teeSink) WriteFrame(frame int, recs []core.Record) error {
	for _, s := range t {
		if err := s.WriteFrame(frame, recs); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements core.Sink.
func (t teeSink) Flush() error {
	for _, s := range t {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// deviceLogPath derives device d's shard-log path from the merged-log path:
// edge.jsonl -> edge.d0-Pixel4.jsonl.
func deviceLogPath(out string, d int, name string) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.d%d-%s%s", strings.TrimSuffix(out, ext), d, name, ext)
}

// runFleet shards the replay across the -fleet devices: per-device shard
// logs stream to sibling files of -o (flat memory, like the single-device
// DiscardLog path), and the merged fleet log (sequential record order) is
// produced by a streaming k-way merge of those files into -o itself.
func runFleet(stdout io.Writer, m *graph.Model, popts pipeline.Options, images []*imaging.Image,
	fleetSpec, shardPolicy string, monOpts []core.MonitorOption, format core.LogFormat, out string,
	up uploadOptions) error {
	devs, err := runner.ParseFleetSpec(fleetSpec)
	if err != nil {
		return err
	}
	policy, err := runner.ParseShardPolicy(shardPolicy)
	if err != nil {
		return err
	}
	paths := make([]string, len(devs))
	files := make([]*os.File, len(devs))
	sinks := make([]core.LogSink, len(devs))
	remotes := make([]*ingest.RemoteSink, len(devs))
	for d := range devs {
		paths[d] = deviceLogPath(out, d, devs[d].Name())
		if files[d], err = os.Create(paths[d]); err != nil {
			return err
		}
		// Closed explicitly after the replay flushes (the merge reopens the
		// files); a one-shot CLI leaves earlier error paths to process exit.
		if sinks[d], err = core.NewLogSink(files[d], format); err != nil {
			return err
		}
		// Each device streams to its own collector session, named like its
		// shard-log file suffix (d0-Pixel4, ...), so the daemon's /fleet
		// report lines up with the local shard logs.
		devs[d].Sink, remotes[d], err = up.wrap(sinks[d], fmt.Sprintf("d%d-%s", d, devs[d].Name()), format)
		if err != nil {
			return err
		}
	}
	// DiscardLogs: telemetry lives only in the per-device files, so memory
	// stays flat however long the replay — same contract as the
	// single-device DiscardLog path above.
	_, err = replay.FleetClassification(m, popts, images,
		&runner.Fleet{Devices: devs, Policy: policy, MonitorOptions: monOpts, DiscardLogs: true}, nil)
	if err != nil {
		return err
	}
	for d := range sinks {
		if err := devs[d].Sink.Flush(); err != nil {
			return err
		}
		if err := files[d].Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "edgerun: device %d (%s) wrote %d records (%d bytes, %s) to %s\n",
			d, devs[d].Name(), sinks[d].Records(), sinks[d].Bytes(), sinks[d].Format(), paths[d])
		if remotes[d] != nil {
			fmt.Fprintf(stdout, "edgerun: device %d (%s) uploaded to %s: %s\n",
				d, devs[d].Name(), up.url, uploadSummary(remotes[d].Stats()))
		}
	}
	merged, err := mergeShardLogs(paths, format, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "edgerun: fleet (%s policy) merged %d records (%d bytes, %s) to %s\n",
		policy.Name(), merged.Records(), merged.Bytes(), merged.Format(), out)
	return nil
}

// mergeShardLogs streams a k-way merge of per-device shard logs into the
// merged log at out. The shard files hold disjoint frame sets, each in
// increasing frame order, so repeatedly draining the stream with the
// smallest next frame reproduces the sequential record order; sequence
// numbers renumber globally. One frame group is in memory at a time.
func mergeShardLogs(paths []string, format core.LogFormat, out string) (core.LogSink, error) {
	type stream struct {
		dec  core.LogDecoder
		next core.Record
		ok   bool
	}
	advance := func(s *stream) error {
		rec, err := s.dec.Next()
		if err == io.EOF {
			s.ok = false
			return nil
		}
		if err != nil {
			return err
		}
		s.next, s.ok = rec, true
		return nil
	}
	streams := make([]*stream, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		dec, _, err := core.OpenLog(f)
		if err != nil {
			return nil, fmt.Errorf("shard log %s: %w", p, err)
		}
		streams[i] = &stream{dec: dec}
		if err := advance(streams[i]); err != nil {
			return nil, fmt.Errorf("shard log %s: %w", p, err)
		}
	}
	outF, err := os.Create(out)
	if err != nil {
		return nil, err
	}
	defer outF.Close()
	sink, err := core.NewLogSink(outF, format)
	if err != nil {
		return nil, err
	}
	seq := 0
	var recs []core.Record
	for {
		best := -1
		for i, s := range streams {
			if s.ok && (best == -1 || s.next.Frame < streams[best].next.Frame) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		s := streams[best]
		frame := s.next.Frame
		recs = recs[:0]
		for s.ok && s.next.Frame == frame {
			r := s.next
			r.Seq = seq
			seq++
			recs = append(recs, r)
			if err := advance(s); err != nil {
				return nil, err
			}
		}
		if err := sink.WriteFrame(frame, recs); err != nil {
			return nil, err
		}
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	return sink, nil
}
