package core

import (
	"fmt"
	"io"
)

// Sink consumes merged telemetry frames in order: the runner's collector,
// the Monitor's spill mode and hand-rolled shard workflows all write through
// it. Frames must arrive in increasing frame order with sequence numbers
// already assigned; Flush is called once after the last frame (closing any
// underlying file is the caller's job).
//
// Sinks are not safe for concurrent use; the parallel replay engine
// serializes frames through its in-order collector before writing, which is
// also what guarantees the on-disk record order matches a sequential run.
type Sink interface {
	WriteFrame(frame int, recs []Record) error
	Flush() error
}

// LogSink is the interface of the built-in streaming sinks: a Sink that
// writes one of the log formats and reports write statistics.
type LogSink interface {
	Sink
	// Records returns the number of records written so far.
	Records() int
	// Bytes returns the serialized bytes written so far (pre-buffering
	// count is exact after Flush).
	Bytes() int
	// Format returns the log format the sink writes.
	Format() LogFormat
}

// NewLogSink wraps w in a streaming sink for the given format — the
// constructor behind the CLIs' -log-format flag.
func NewLogSink(w io.Writer, format LogFormat) (LogSink, error) {
	switch format {
	case FormatJSONL:
		return NewJSONLSink(w), nil
	case FormatBinary:
		return NewBinarySink(w), nil
	}
	return nil, fmt.Errorf("core: unknown log format %v", format)
}

// streamSink is the shared machinery of the built-in sinks: a codec encoder
// plus record/byte counters. Records stream through without being retained,
// so replays over arbitrarily long datasets keep constant memory; a log
// written through a sink reads back (ReadLog) identically to one accumulated
// in memory and written at the end.
type streamSink struct {
	format  LogFormat
	enc     LogEncoder
	records int
	bytes   countingWriter
}

func (s *streamSink) init(w io.Writer, format LogFormat) {
	s.format = format
	var err error
	s.enc, err = NewLogEncoder(io.MultiWriter(w, &s.bytes), format)
	if err != nil {
		// Both built-in constructors pass a valid format.
		panic(err)
	}
}

// WriteFrame appends one frame's records to the stream.
func (s *streamSink) WriteFrame(frame int, recs []Record) error {
	for i := range recs {
		if err := s.enc.EncodeRecord(&recs[i]); err != nil {
			return fmt.Errorf("core: sink frame %d record %d: %w", frame, i, err)
		}
	}
	s.records += len(recs)
	return nil
}

// Flush drains buffered output to the underlying writer.
func (s *streamSink) Flush() error { return s.enc.Flush() }

// Records returns the number of records written so far.
func (s *streamSink) Records() int { return s.records }

// Bytes returns the serialized bytes written so far (pre-buffering count is
// exact after Flush).
func (s *streamSink) Bytes() int { return int(s.bytes) }

// Format returns the log format the sink writes.
func (s *streamSink) Format() LogFormat { return s.format }

// JSONLSink streams telemetry records to a writer in the JSONL log format —
// the human-readable Sink implementation.
type JSONLSink struct{ streamSink }

// NewJSONLSink wraps w in a streaming JSONL log writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{}
	s.init(w, FormatJSONL)
	return s
}

// BinarySink streams telemetry records to a writer in the length-prefixed
// binary log format — the low-overhead Sink implementation for full-tensor
// capture (raw little-endian payloads, no base64).
type BinarySink struct{ streamSink }

// NewBinarySink wraps w in a streaming binary log writer.
func NewBinarySink(w io.Writer) *BinarySink {
	s := &BinarySink{}
	s.init(w, FormatBinary)
	return s
}
