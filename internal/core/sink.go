package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink streams telemetry records to a writer in the standard JSONL log
// format without retaining them, so replays over arbitrarily long datasets
// keep constant memory. It is the streaming counterpart of Log.WriteJSONL:
// a log written through the sink reads back (ReadJSONL) identically to one
// accumulated in memory and written at the end.
//
// The sink is not safe for concurrent use; the parallel replay engine
// serializes frames through its in-order collector before writing, which is
// also what guarantees the on-disk record order matches a sequential run.
type JSONLSink struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	records int
	bytes   countingWriter
}

// NewJSONLSink wraps w in a streaming JSONL log writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{}
	s.bw = bufio.NewWriter(io.MultiWriter(w, &s.bytes))
	s.enc = json.NewEncoder(s.bw)
	return s
}

// WriteFrame appends one frame's records to the stream. Frames must arrive
// in increasing frame order with sequence numbers already assigned.
func (s *JSONLSink) WriteFrame(frame int, recs []Record) error {
	for i := range recs {
		if err := s.enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("core: sink frame %d record %d: %w", frame, i, err)
		}
	}
	s.records += len(recs)
	return nil
}

// Flush drains buffered output to the underlying writer. Call once after the
// replay completes (closing the underlying file is the caller's job).
func (s *JSONLSink) Flush() error { return s.bw.Flush() }

// Records returns the number of records written so far.
func (s *JSONLSink) Records() int { return s.records }

// Bytes returns the serialized bytes written so far (pre-buffering count is
// exact after Flush).
func (s *JSONLSink) Bytes() int { return int(s.bytes) }
