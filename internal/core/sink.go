package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Sink consumes merged telemetry frames in order: the runner's collector,
// the Monitor's spill mode and hand-rolled shard workflows all write through
// it. Frames must arrive in increasing frame order with sequence numbers
// already assigned; Flush is called once after the last frame (closing any
// underlying file is the caller's job).
//
// Sinks are not safe for concurrent use; the parallel replay engine
// serializes frames through its in-order collector before writing, which is
// also what guarantees the on-disk record order matches a sequential run.
type Sink interface {
	WriteFrame(frame int, recs []Record) error
	Flush() error
}

// LogSink is the interface of the built-in streaming sinks: a Sink that
// writes one of the log formats and reports write statistics.
type LogSink interface {
	Sink
	// Records returns the number of records written so far.
	Records() int
	// Bytes returns the serialized bytes written so far (pre-buffering
	// count is exact after Flush).
	Bytes() int
	// Format returns the log format the sink writes.
	Format() LogFormat
}

// NewLogSink wraps w in a streaming sink for the given format — the
// constructor behind the CLIs' -log-format flag.
func NewLogSink(w io.Writer, format LogFormat) (LogSink, error) {
	switch format {
	case FormatJSONL:
		return NewJSONLSink(w), nil
	case FormatBinary:
		return NewBinarySink(w), nil
	}
	return nil, fmt.Errorf("core: unknown log format %v", format)
}

// streamSink is the shared machinery of the built-in sinks: a codec encoder
// plus record/byte counters. Records stream through without being retained,
// so replays over arbitrarily long datasets keep constant memory; a log
// written through a sink reads back (ReadLog) identically to one accumulated
// in memory and written at the end.
type streamSink struct {
	format  LogFormat
	enc     LogEncoder
	records int
	bytes   countingWriter
}

func (s *streamSink) init(w io.Writer, format LogFormat) {
	s.format = format
	var err error
	s.enc, err = NewLogEncoder(io.MultiWriter(w, &s.bytes), format)
	if err != nil {
		// Both built-in constructors pass a valid format.
		panic(err)
	}
}

// WriteFrame appends one frame's records to the stream.
func (s *streamSink) WriteFrame(frame int, recs []Record) error {
	for i := range recs {
		if err := s.enc.EncodeRecord(&recs[i]); err != nil {
			return fmt.Errorf("core: sink frame %d record %d: %w", frame, i, err)
		}
	}
	s.records += len(recs)
	return nil
}

// Flush drains buffered output to the underlying writer.
func (s *streamSink) Flush() error { return s.enc.Flush() }

// Records returns the number of records written so far.
func (s *streamSink) Records() int { return s.records }

// Bytes returns the serialized bytes written so far (pre-buffering count is
// exact after Flush).
func (s *streamSink) Bytes() int { return int(s.bytes) }

// Format returns the log format the sink writes.
func (s *streamSink) Format() LogFormat { return s.format }

// PreEncodedFrame holds one frame's records marshaled ahead of the in-order
// collector: serialized lines whose sequence-number prefix — which only the
// collector knows — gets patched at write time. Produced by
// FramePreEncoder.PreEncodeFrame on worker goroutines, consumed by
// WritePreEncoded on the collector.
type PreEncodedFrame struct {
	buf  []byte
	offs []int // start offset of each record's line within buf
}

// Records returns the number of records the frame carries.
func (pf PreEncodedFrame) Records() int { return len(pf.offs) }

// FramePreEncoder is an optional Sink capability: sinks that can split
// record encoding into a parallel-safe pre-marshal stage and a cheap
// in-order patch-and-append stage. The replay engine uses it to move the
// expensive part of full-capture JSONL serialization (base64 expansion,
// JSON escaping) from its serial collector onto the worker goroutines.
//
// The contract: for any records recs and sequence base seq,
// WritePreEncoded(frame, PreEncodeFrame(recs), seq) must write exactly the
// bytes WriteFrame(frame, recs) would after setting recs[i].Seq = seq+i.
type FramePreEncoder interface {
	Sink
	// PreEncodeFrame marshals one frame's records, ignoring their Seq
	// fields. Safe for concurrent use by multiple goroutines.
	PreEncodeFrame(recs []Record) (PreEncodedFrame, error)
	// WritePreEncoded appends a pre-encoded frame, patching record sequence
	// numbers to seq, seq+1, ... Not safe for concurrent use (same as
	// WriteFrame).
	WritePreEncoded(frame int, pf PreEncodedFrame, seq int) error
}

// JSONLSink streams telemetry records to a writer in the JSONL log format —
// the human-readable Sink implementation. It also implements
// FramePreEncoder, so parallel replays marshal record lines on their worker
// goroutines and the collector only patches sequence numbers.
type JSONLSink struct {
	streamSink
	jsonl *JSONLEncoder
}

// NewJSONLSink wraps w in a streaming JSONL log writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{}
	s.init(w, FormatJSONL)
	s.jsonl = s.enc.(*JSONLEncoder)
	return s
}

// preEncodeSeqPrefix is the byte prefix every record line marshaled with
// Seq == 0 opens with; pre-encoding stores the line after it and
// WritePreEncoded substitutes the real sequence number. The recordWire
// field order guarantees "seq" always serializes first.
var preEncodeSeqPrefix = []byte(`{"seq":0`)

// PreEncodeFrame marshals recs into JSONL lines (Seq ignored — the
// collector patches it). Safe for concurrent use: each call stages into its
// own buffer, reusing one json.Encoder across the frame's records so the
// marshal cost is a single streamed pass.
func (s *JSONLSink) PreEncodeFrame(recs []Record) (PreEncodedFrame, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	offs := make([]int, 0, len(recs))
	for i := range recs {
		r := recs[i]
		r.Seq = 0
		off := buf.Len()
		if err := enc.Encode(r); err != nil {
			return PreEncodedFrame{}, fmt.Errorf("core: pre-encode record %q: %w", r.Key, err)
		}
		if !bytes.HasPrefix(buf.Bytes()[off:], preEncodeSeqPrefix) {
			return PreEncodedFrame{}, fmt.Errorf("core: pre-encode record %q: line does not open with %q", r.Key, preEncodeSeqPrefix)
		}
		offs = append(offs, off)
	}
	return PreEncodedFrame{buf: buf.Bytes(), offs: offs}, nil
}

// WritePreEncoded appends a frame pre-marshaled by PreEncodeFrame, patching
// record sequence numbers to seq, seq+1, ... The bytes written are identical
// to WriteFrame over the same records with those sequence numbers.
func (s *JSONLSink) WritePreEncoded(frame int, pf PreEncodedFrame, seq int) error {
	for i, off := range pf.offs {
		end := len(pf.buf)
		if i+1 < len(pf.offs) {
			end = pf.offs[i+1]
		}
		tail := pf.buf[off+len(preEncodeSeqPrefix) : end]
		if err := s.jsonl.encodePreMarshaled(seq+i, tail); err != nil {
			return fmt.Errorf("core: sink frame %d record %d: %w", frame, i, err)
		}
	}
	s.records += len(pf.offs)
	return nil
}

// BinarySink streams telemetry records to a writer in the length-prefixed
// binary log format — the low-overhead Sink implementation for full-tensor
// capture (raw little-endian payloads, no base64).
type BinarySink struct{ streamSink }

// NewBinarySink wraps w in a streaming binary log writer.
func NewBinarySink(w io.Writer) *BinarySink {
	s := &BinarySink{}
	s.init(w, FormatBinary)
	return s
}
