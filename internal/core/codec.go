package core

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"mlexray/internal/tensor"
)

// LogFormat selects a telemetry log encoding.
type LogFormat int

const (
	// FormatJSONL is the human-readable format: one JSON object per line,
	// tensor payloads base64-encoded. It is byte-stable — the golden-fixture
	// test pins it to the pre-codec-redesign output.
	FormatJSONL LogFormat = iota
	// FormatBinary is the length-prefixed binary format: a magic+version
	// header followed by varint-framed records whose tensor payloads are raw
	// little-endian bytes (no base64, no JSON). It is the low-overhead
	// streaming format for full-tensor capture.
	FormatBinary
)

// String returns the CLI flag spelling of the format.
func (f LogFormat) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseLogFormat is the inverse of LogFormat.String, for -log-format flags.
func ParseLogFormat(s string) (LogFormat, error) {
	switch s {
	case "jsonl":
		return FormatJSONL, nil
	case "binary":
		return FormatBinary, nil
	}
	return FormatJSONL, fmt.Errorf("core: unknown log format %q (want jsonl or binary)", s)
}

// LogEncoder is the writer side of a log codec: it serializes telemetry
// records one at a time onto a stream. Implementations buffer; call Flush
// after the last record (closing the underlying writer is the caller's job).
type LogEncoder interface {
	EncodeRecord(r *Record) error
	Flush() error
}

// LogDecoder is the reader side of a log codec: Next returns records in
// stream order and io.EOF at the end of the log.
type LogDecoder interface {
	Next() (Record, error)
}

// NewLogEncoder returns the encoder for the given format.
func NewLogEncoder(w io.Writer, format LogFormat) (LogEncoder, error) {
	switch format {
	case FormatJSONL:
		return NewJSONLEncoder(w), nil
	case FormatBinary:
		return NewBinaryEncoder(w), nil
	}
	return nil, fmt.Errorf("core: unknown log format %v", format)
}

// ---- JSONL codec ----

// JSONLEncoder writes the JSONL log format. Its output is byte-identical to
// the pre-codec JSONL writer: one json.Marshal-ed record per line.
type JSONLEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLEncoder wraps w in a JSONL log encoder.
func NewJSONLEncoder(w io.Writer) *JSONLEncoder {
	bw := bufio.NewWriter(w)
	return &JSONLEncoder{bw: bw, enc: json.NewEncoder(bw)}
}

// EncodeRecord appends one record line.
func (e *JSONLEncoder) EncodeRecord(r *Record) error { return e.enc.Encode(r) }

// encodePreMarshaled appends a record line whose tail — everything after the
// leading `{"seq":<n>` group, including the trailing newline — was marshaled
// elsewhere (the parallel pre-encode stage of the replay engine). The bytes
// written are identical to EncodeRecord over the same record with Seq = seq.
func (e *JSONLEncoder) encodePreMarshaled(seq int, tail []byte) error {
	if _, err := e.bw.WriteString(`{"seq":`); err != nil {
		return err
	}
	var digits [20]byte
	if _, err := e.bw.Write(strconv.AppendInt(digits[:0], int64(seq), 10)); err != nil {
		return err
	}
	_, err := e.bw.Write(tail)
	return err
}

// Flush drains buffered output to the underlying writer.
func (e *JSONLEncoder) Flush() error { return e.bw.Flush() }

// JSONLDecoder reads the JSONL log format.
type JSONLDecoder struct {
	sc   *bufio.Scanner
	line int
}

// NewJSONLDecoder wraps r in a JSONL log decoder.
func NewJSONLDecoder(r io.Reader) *JSONLDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	return &JSONLDecoder{sc: sc}
}

// Next returns the next record, or io.EOF at the end of the stream.
func (d *JSONLDecoder) Next() (Record, error) {
	for d.sc.Scan() {
		d.line++
		if len(d.sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(d.sc.Bytes(), &rec); err != nil {
			return Record{}, fmt.Errorf("core: log line %d: %w", d.line, err)
		}
		return rec, nil
	}
	if err := d.sc.Err(); err != nil {
		return Record{}, fmt.Errorf("core: read log: %w", err)
	}
	return Record{}, io.EOF
}

// ---- binary codec ----

// binaryMagic opens every binary log; the trailing byte is the format
// version. OpenLog sniffs it to auto-detect the format.
var binaryMagic = []byte{'M', 'L', 'X', 'B'}

const binaryVersion = 1

// maxBinaryRecord caps one record's body so a corrupt length prefix cannot
// drive an arbitrarily large allocation.
const maxBinaryRecord = 1 << 30

// BinaryEncoder writes the length-prefixed binary log format: the
// magic+version header, then per record a uvarint body length and a body
// whose tensor payload is the raw little-endian bytes — no base64 and no
// per-byte JSON escaping on the hot path.
type BinaryEncoder struct {
	bw      *bufio.Writer
	scratch []byte
	started bool
}

// NewBinaryEncoder wraps w in a binary log encoder.
func NewBinaryEncoder(w io.Writer) *BinaryEncoder {
	return &BinaryEncoder{bw: bufio.NewWriter(w)}
}

func (e *BinaryEncoder) header() error {
	if e.started {
		return nil
	}
	e.started = true
	if _, err := e.bw.Write(binaryMagic); err != nil {
		return err
	}
	return e.bw.WriteByte(binaryVersion)
}

// EncodeRecord appends one length-prefixed record.
func (e *BinaryEncoder) EncodeRecord(r *Record) error {
	if err := e.header(); err != nil {
		return err
	}
	e.scratch = appendRecordBinary(e.scratch[:0], r)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(e.scratch)))
	if _, err := e.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := e.bw.Write(e.scratch)
	return err
}

// Flush writes the header if no record has (an empty binary log is just the
// header, still auto-detectable) and drains buffered output.
func (e *BinaryEncoder) Flush() error {
	if err := e.header(); err != nil {
		return err
	}
	return e.bw.Flush()
}

// appendRecordBinary serializes one record body. Field order is fixed;
// readRecordBinary mirrors it exactly.
func appendRecordBinary(buf []byte, r *Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Seq))
	buf = binary.AppendUvarint(buf, uint64(r.Frame))
	buf = appendBinString(buf, r.Key)
	buf = appendBinString(buf, string(r.Kind))
	buf = binary.AppendVarint(buf, int64(r.LayerIndex))
	buf = appendBinString(buf, r.LayerName)
	buf = appendBinString(buf, r.OpType)
	buf = binary.AppendUvarint(buf, uint64(len(r.Shape)))
	for _, d := range r.Shape {
		buf = binary.AppendVarint(buf, int64(d))
	}
	buf = appendBinString(buf, r.DType)
	buf = binary.AppendUvarint(buf, uint64(len(r.Payload)))
	buf = append(buf, r.Payload...)
	if r.Stats != nil {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Stats.Min))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Stats.Max))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Stats.Mean))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Stats.RMS))
		buf = binary.AppendVarint(buf, int64(r.Stats.N))
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.QScale))
	buf = binary.AppendVarint(buf, int64(r.QZero))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
	buf = appendBinString(buf, r.Unit)
	return buf
}

func appendBinString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// BinaryDecoder reads the length-prefixed binary log format.
type BinaryDecoder struct {
	br      *bufio.Reader
	started bool
	body    []byte
}

// NewBinaryDecoder wraps r in a binary log decoder.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	return &BinaryDecoder{br: bufio.NewReaderSize(r, 1<<16)}
}

func (d *BinaryDecoder) checkHeader() error {
	if d.started {
		return nil
	}
	d.started = true
	head := make([]byte, len(binaryMagic)+1)
	if _, err := io.ReadFull(d.br, head); err != nil {
		return fmt.Errorf("core: binary log header: %w", err)
	}
	if !bytes.Equal(head[:len(binaryMagic)], binaryMagic) {
		return fmt.Errorf("core: not a binary telemetry log (bad magic %q)", head[:len(binaryMagic)])
	}
	if v := head[len(binaryMagic)]; v != binaryVersion {
		return fmt.Errorf("core: binary log version %d not supported (want %d)", v, binaryVersion)
	}
	return nil
}

// Next returns the next record, or io.EOF at the end of the stream.
func (d *BinaryDecoder) Next() (Record, error) {
	if err := d.checkHeader(); err != nil {
		return Record{}, err
	}
	n, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("core: binary log record length: %w", err)
	}
	if n > maxBinaryRecord {
		return Record{}, fmt.Errorf("core: binary log record of %d bytes exceeds the %d limit", n, maxBinaryRecord)
	}
	if uint64(cap(d.body)) < n {
		d.body = make([]byte, n)
	}
	d.body = d.body[:n]
	if _, err := io.ReadFull(d.br, d.body); err != nil {
		return Record{}, fmt.Errorf("core: binary log record body: %w", err)
	}
	return readRecordBinary(d.body)
}

// binCursor walks a record body with bounds checking.
type binCursor struct {
	buf []byte
	off int
}

func (c *binCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: binary record truncated at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *binCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: binary record truncated at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *binCursor) bytes(n uint64) ([]byte, error) {
	if uint64(len(c.buf)-c.off) < n {
		return nil, fmt.Errorf("core: binary record truncated at offset %d", c.off)
	}
	b := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}

func (c *binCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *binCursor) f64() (float64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// readRecordBinary mirrors appendRecordBinary.
func readRecordBinary(body []byte) (Record, error) {
	c := &binCursor{buf: body}
	var r Record
	var err error
	fail := func(field string, e error) (Record, error) {
		return Record{}, fmt.Errorf("core: binary record field %s: %w", field, e)
	}
	var u uint64
	var v int64
	if u, err = c.uvarint(); err != nil {
		return fail("seq", err)
	}
	r.Seq = int(u)
	if u, err = c.uvarint(); err != nil {
		return fail("frame", err)
	}
	r.Frame = int(u)
	if r.Key, err = c.str(); err != nil {
		return fail("key", err)
	}
	var kind string
	if kind, err = c.str(); err != nil {
		return fail("kind", err)
	}
	r.Kind = RecordKind(kind)
	if v, err = c.varint(); err != nil {
		return fail("layer_index", err)
	}
	r.LayerIndex = int(v)
	if r.LayerName, err = c.str(); err != nil {
		return fail("layer_name", err)
	}
	if r.OpType, err = c.str(); err != nil {
		return fail("op_type", err)
	}
	if u, err = c.uvarint(); err != nil {
		return fail("shape", err)
	}
	if u > 0 {
		if u > uint64(len(body)) { // a rank can never exceed the body size
			return fail("shape", fmt.Errorf("rank %d implausible", u))
		}
		r.Shape = make([]int, u)
		for i := range r.Shape {
			if v, err = c.varint(); err != nil {
				return fail("shape", err)
			}
			r.Shape[i] = int(v)
		}
	}
	if r.DType, err = c.str(); err != nil {
		return fail("dtype", err)
	}
	if u, err = c.uvarint(); err != nil {
		return fail("payload", err)
	}
	if u > 0 {
		b, err := c.bytes(u)
		if err != nil {
			return fail("payload", err)
		}
		r.Payload = append([]byte(nil), b...)
	}
	flag, err := c.bytes(1)
	if err != nil {
		return fail("stats", err)
	}
	if flag[0] != 0 {
		var s tensor.Stats
		if s.Min, err = c.f64(); err != nil {
			return fail("stats", err)
		}
		if s.Max, err = c.f64(); err != nil {
			return fail("stats", err)
		}
		if s.Mean, err = c.f64(); err != nil {
			return fail("stats", err)
		}
		if s.RMS, err = c.f64(); err != nil {
			return fail("stats", err)
		}
		if v, err = c.varint(); err != nil {
			return fail("stats", err)
		}
		s.N = int(v)
		r.Stats = &s
	}
	if r.QScale, err = c.f64(); err != nil {
		return fail("qscale", err)
	}
	if v, err = c.varint(); err != nil {
		return fail("qzero", err)
	}
	r.QZero = int32(v)
	if r.Value, err = c.f64(); err != nil {
		return fail("value", err)
	}
	if r.Unit, err = c.str(); err != nil {
		return fail("unit", err)
	}
	if c.off != len(body) {
		return Record{}, fmt.Errorf("core: binary record has %d trailing bytes", len(body)-c.off)
	}
	return r, nil
}

// ---- unified open / read ----

// gzipMagic opens every gzip stream (RFC 1952); OpenLog sniffs it so
// compressed logs — .jsonl.gz / .mlxb.gz files, gzip upload bodies — read
// transparently.
var gzipMagic = []byte{0x1f, 0x8b}

// OpenLog wraps r in the decoder matching its format, auto-detected from the
// leading bytes: the MLXB magic selects the binary codec, the gzip magic
// transparently decompresses and re-detects, anything else is read as JSONL.
// The reported format is the format of the (decompressed) log itself.
func OpenLog(r io.Reader) (LogDecoder, LogFormat, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if head, err := br.Peek(len(gzipMagic)); err == nil && bytes.Equal(head, gzipMagic) {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, FormatJSONL, fmt.Errorf("core: open gzip log: %w", err)
		}
		return OpenLog(zr)
	}
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, FormatJSONL, fmt.Errorf("core: detect log format: %w", err)
	}
	if bytes.Equal(head, binaryMagic) {
		return NewBinaryDecoder(br), FormatBinary, nil
	}
	return NewJSONLDecoder(br), FormatJSONL, nil
}

// ReadLog reads a whole telemetry log in either format, auto-detected.
func ReadLog(r io.Reader) (*Log, error) {
	l, _, err := ReadLogWithFormat(r)
	return l, err
}

// ReadLogWithFormat reads a whole telemetry log in either format and also
// reports which format it detected.
func ReadLogWithFormat(r io.Reader) (*Log, LogFormat, error) {
	dec, format, err := OpenLog(r)
	if err != nil {
		return nil, format, err
	}
	l, err := readAll(dec)
	return l, format, err
}

func readAll(dec LogDecoder) (*Log, error) {
	var l Log
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			return &l, nil
		}
		if err != nil {
			return nil, err
		}
		l.Records = append(l.Records, rec)
	}
}
