package core

import (
	"sync"
	"time"

	"mlexray/internal/interp"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Well-known record keys emitted by the monitor. User code may log any
// additional keys; the built-in assertions look for these.
const (
	KeyPreprocessOutput  = "preprocess/output"
	KeyModelInput        = "model/input"
	KeyModelOutput       = "model/output"
	KeyInferenceLatency  = "inference/latency_ns"
	KeyInferenceModeled  = "inference/modeled_latency_ns"
	KeySensorOrientation = "sensor/orientation_deg"

	keyLayerPrefix = "layer/"
)

// LayerOutputKey builds the per-layer output record key.
func LayerOutputKey(name string) string { return keyLayerPrefix + name + "/output" }

// LayerLatencyKey builds the per-layer latency record key.
func LayerLatencyKey(name string) string { return keyLayerPrefix + name + "/latency_ns" }

// CaptureMode selects the runtime logging depth: stats-only keeps overhead
// at the paper's 0.41 KB/frame (Table 2); full-tensor capture is the offline
// per-layer validation mode (Table 3/5).
type CaptureMode int

const (
	CaptureStats CaptureMode = iota
	CaptureFull
)

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithCaptureMode sets stats-only vs full-tensor logging.
func WithCaptureMode(m CaptureMode) MonitorOption {
	return func(mon *Monitor) { mon.mode = m }
}

// WithPerLayer enables per-layer output and latency records (the offline
// validation mode).
func WithPerLayer(enabled bool) MonitorOption {
	return func(mon *Monitor) { mon.perLayer = enabled }
}

// WithSink puts the monitor in direct-to-sink spill mode: each frame's
// records stream to s as soon as the frame counter advances past it, so
// full-capture logs never accumulate tensor payloads in memory. Call
// Monitor.Flush after the last frame to spill the final frame and flush the
// sink. Spill-mode monitors are for sequential instrumentation loops; the
// parallel replay engine streams through its own collector sink instead
// (runner.Options.Sink), so do not combine the two.
func WithSink(s Sink) MonitorOption {
	return func(mon *Monitor) { mon.sink = s }
}

// Monitor is the EdgeML Monitor (§3.2, Fig. 7): the instrumentation object
// an app (or the reference pipeline) uses to produce telemetry. All methods
// are safe for concurrent use.
type Monitor struct {
	mu       sync.Mutex
	log      Log
	seq      int
	frame    int
	mode     CaptureMode
	perLayer bool
	sink     Sink
	sinkErr  error

	infStart time.Time
}

// NewMonitor constructs a Monitor. The default captures stats-only records
// and no per-layer detail — the lightweight always-on configuration.
func NewMonitor(opts ...MonitorOption) *Monitor {
	m := &Monitor{mode: CaptureStats}
	for _, o := range opts {
		o(m)
	}
	return m
}

// NextFrame advances the frame counter (one frame = one sensor capture /
// inference), spilling the completed frame when a sink is attached. Returns
// the new frame index.
func (m *Monitor) NextFrame() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spillLocked()
	m.frame++
	return m.frame
}

// spillLocked streams the buffered records of the current frame to the
// attached sink, if any. The first sink error is retained and reported by
// Flush; later frames are dropped rather than written out of order.
func (m *Monitor) spillLocked() {
	if m.sink == nil || len(m.log.Records) == 0 {
		return
	}
	recs := m.log.Records
	m.log.Records = nil
	if m.sinkErr != nil {
		return
	}
	if err := m.sink.WriteFrame(m.frame, recs); err != nil {
		m.sinkErr = err
	}
}

// Flush spills any buffered records of the current (final) frame and flushes
// the attached sink. It reports the first error the sink returned. Without a
// sink it is a no-op. Call once after the last frame when the monitor was
// built WithSink.
func (m *Monitor) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spillLocked()
	if m.sinkErr != nil {
		return m.sinkErr
	}
	// Flush under the lock: the sink is not thread-safe and every other
	// touch (spillLocked's WriteFrame) happens while m.mu is held.
	if m.sink != nil {
		return m.sink.Flush()
	}
	return nil
}

// SetNextFrame positions the frame counter so that the next NextFrame call
// returns idx. Shard monitors in the parallel replay engine use this to tag
// records with global frame indices: a worker owning dataset frame g seeks
// to g+1 before invoking the pipeline, so its records carry exactly the
// frame number a sequential run would have assigned.
func (m *Monitor) SetNextFrame(idx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spillLocked()
	m.frame = idx - 1
}

// Drain removes and returns all buffered records, leaving the sequence and
// frame counters untouched. The parallel replay engine drains each shard
// after every frame so per-shard buffers stay one frame deep regardless of
// replay length.
func (m *Monitor) Drain() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs := m.log.Records
	m.log.Records = nil
	return recs
}

func (m *Monitor) append(r Record) {
	m.mu.Lock()
	r.Seq = m.seq
	r.Frame = m.frame
	m.seq++
	m.log.Records = append(m.log.Records, r)
	m.mu.Unlock()
}

// LogTensor records a tensor under the given key (honouring the capture
// mode).
func (m *Monitor) LogTensor(key string, t *tensor.Tensor) {
	r := Record{Key: key}
	r.EncodeTensor(t, m.mode == CaptureFull)
	m.append(r)
}

// LogTensorFull records a tensor with its full payload regardless of the
// capture mode (used for preprocessing outputs, which assertions need
// verbatim).
func (m *Monitor) LogTensorFull(key string, t *tensor.Tensor) {
	r := Record{Key: key}
	r.EncodeTensor(t, true)
	m.append(r)
}

// LogMetric records a scalar performance metric.
func (m *Monitor) LogMetric(key string, value float64, unit string) {
	m.append(Record{Key: key, Kind: KindMetric, Value: value, Unit: unit})
}

// LogSensor records a peripheral sensor reading (orientation, motion,
// ambient light ... §3.2's third telemetry class).
func (m *Monitor) LogSensor(key string, value float64, unit string) {
	m.append(Record{Key: key, Kind: KindSensor, Value: value, Unit: unit})
}

// OnInferenceStart marks the start of one model invocation — the paper's
// MLEXray->on_inf_start().
func (m *Monitor) OnInferenceStart() {
	m.mu.Lock()
	m.infStart = time.Now()
	m.mu.Unlock()
}

// OnInferenceStop closes the invocation opened by OnInferenceStart,
// recording end-to-end latency — the paper's on_inf_stop(&interpreter). The
// interpreter argument supplies the model output and modeled device timing;
// it may be nil when only wall-clock is wanted.
func (m *Monitor) OnInferenceStop(ip *interp.Interpreter) {
	m.mu.Lock()
	elapsed := time.Since(m.infStart)
	m.mu.Unlock()
	m.LogMetric(KeyInferenceLatency, float64(elapsed.Nanoseconds()), "ns")
	if ip == nil {
		return
	}
	if st := ip.LastInvokeStats(); st.Modeled > 0 {
		m.LogMetric(KeyInferenceModeled, float64(st.Modeled.Nanoseconds()), "ns")
	}
	if out, err := ip.Output(0); err == nil {
		r := Record{Key: KeyModelOutput}
		r.EncodeTensor(out, true) // outputs are small; always keep them whole
		m.append(r)
	}
}

// OnBatchFrame closes one frame element of a batched invocation — the
// batched-execution analogue of OnInferenceStop. The caller passes the
// per-frame stats (interp.Batch.FrameStats) and that element's output view;
// the records emitted are identical in kind and order to a sequential
// OnInferenceStop: end-to-end latency, modeled latency when a device model
// is attached, then the full model output.
func (m *Monitor) OnBatchFrame(stats interp.InvokeStats, out *tensor.Tensor) {
	m.LogMetric(KeyInferenceLatency, float64(stats.Measured.Nanoseconds()), "ns")
	if stats.Modeled > 0 {
		m.LogMetric(KeyInferenceModeled, float64(stats.Modeled.Nanoseconds()), "ns")
	}
	if out != nil {
		r := Record{Key: KeyModelOutput}
		r.EncodeTensor(out, true) // outputs are small; always keep them whole
		m.append(r)
	}
}

// LayerHook returns an interpreter hook that records per-layer outputs and
// latency when per-layer capture is enabled, and always aggregates latency
// by layer for the Table 4 style breakdowns.
func (m *Monitor) LayerHook() interp.NodeHook {
	return func(ev interp.NodeEvent) {
		if !m.perLayer {
			return
		}
		r := Record{
			Key:        LayerOutputKey(ev.Node.Name),
			LayerIndex: ev.Index,
			LayerName:  ev.Node.Name,
			OpType:     ev.Node.Op.String(),
		}
		// Quantized captures are stored raw (1 byte/element) with their
		// scale/zero-point; decode dequantizes, so per-layer logs compare in
		// real units across float and quantized versions of a model while
		// keeping the on-disk size advantage of integer models.
		out := ev.Outputs[0]
		if out.DType == tensor.U8 && len(ev.OutQuant) > 0 && ev.OutQuant[0] != nil {
			r.QScale = ev.OutQuant[0].Scale(0)
			r.QZero = ev.OutQuant[0].ZeroPoint(0)
			// Stats must reflect real units for range-normalized drift.
			if m.mode != CaptureFull {
				deq := quant.DequantizeTensorU8(out, ev.OutQuant[0])
				r.EncodeTensor(deq, false)
				m.append(r)
				m.appendLayerLatency(ev)
				return
			}
		}
		r.EncodeTensor(out, m.mode == CaptureFull)
		if r.QScale != 0 && r.Stats != nil {
			// Rewrite stats in dequantized units.
			s := *r.Stats
			s.Min = r.QScale * (s.Min - float64(r.QZero))
			s.Max = r.QScale * (s.Max - float64(r.QZero))
			s.Mean = r.QScale * (s.Mean - float64(r.QZero))
			s.RMS = 0 // raw RMS does not transform linearly; recompute on decode when needed
			r.Stats = &s
		}
		m.append(r)
		m.appendLayerLatency(ev)
	}
}

func (m *Monitor) appendLayerLatency(ev interp.NodeEvent) {
	lat := ev.Measured
	unit := "ns"
	if ev.Modeled > 0 {
		lat = ev.Modeled
		unit = "ns-modeled"
	}
	m.append(Record{
		Key:        LayerLatencyKey(ev.Node.Name),
		Kind:       KindMetric,
		LayerIndex: ev.Index,
		LayerName:  ev.Node.Name,
		OpType:     ev.Node.Op.String(),
		Value:      float64(lat.Nanoseconds()),
		Unit:       unit,
	})
}

// Log returns the accumulated log. The returned value shares storage with
// the monitor; callers that keep recording should copy it. In spill mode
// (WithSink) only the not-yet-spilled records of the current frame are
// buffered — the full log lives wherever the sink streamed it.
func (m *Monitor) Log() *Log {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &Log{Records: m.log.Records}
}

// Reset clears all recorded telemetry and counters. In spill mode the sink
// is detached (without a final spill — Reset discards telemetry): the
// restarted frame numbering would violate the sink's increasing-frame-order
// contract, and an already-written stream cannot be rewound. Flush before
// Reset to keep what was captured; attach a fresh sink by constructing a
// new Monitor.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = Log{}
	m.seq = 0
	m.frame = 0
	m.sink = nil
	m.sinkErr = nil
}

// MemoryFootprintBytes estimates the monitor's buffer memory: the sum of
// all record payloads currently held.
func (m *Monitor) MemoryFootprintBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log.MemoryFootprintBytes()
}
