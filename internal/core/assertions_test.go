package core

import (
	"strings"
	"testing"

	"mlexray/internal/tensor"
)

// preprocLogs builds edge/ref logs holding one preprocessing-output tensor
// per frame.
func preprocLogs(frames int, edgeOf, refOf func(frame int) *tensor.Tensor) (*Log, *Log) {
	edge, ref := &Log{}, &Log{}
	for f := 0; f < frames; f++ {
		var er, rr Record
		er.Frame, rr.Frame = f, f
		er.Key, rr.Key = KeyPreprocessOutput, KeyPreprocessOutput
		er.EncodeTensor(edgeOf(f), true)
		rr.EncodeTensor(refOf(f), true)
		edge.Records = append(edge.Records, er)
		ref.Records = append(ref.Records, rr)
	}
	return edge, ref
}

// imageTensor builds a deterministic [1,4,5,3] test tensor.
func imageTensor(f int) *tensor.Tensor {
	t := tensor.New(tensor.F32, 1, 4, 5, 3)
	for i := range t.F {
		t.F[i] = float32((i*7+f*13)%100)/50 - 1
	}
	return t
}

func TestChannelAssertionFires(t *testing.T) {
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor { return swapRBTensor(imageTensor(f)) },
		imageTensor)
	finding := ChannelArrangementAssertion{}.Check(&AssertCtx{Edge: edge, Ref: ref})
	if finding == nil {
		t.Fatal("channel assertion did not fire on swapped channels")
	}
	if !strings.Contains(finding.Detail, "BGR") {
		t.Errorf("detail = %q", finding.Detail)
	}
}

func TestChannelAssertionSilentOnMatch(t *testing.T) {
	edge, ref := preprocLogs(2, imageTensor, imageTensor)
	if f := (ChannelArrangementAssertion{}).Check(&AssertCtx{Edge: edge, Ref: ref}); f != nil {
		t.Errorf("false positive: %+v", f)
	}
}

func TestChannelAssertionSilentOnOtherBug(t *testing.T) {
	// A normalization shift must not trigger the channel assertion.
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor {
			tt := imageTensor(f)
			for i := range tt.F {
				tt.F[i] = tt.F[i]*0.5 + 0.5
			}
			return tt
		},
		imageTensor)
	if f := (ChannelArrangementAssertion{}).Check(&AssertCtx{Edge: edge, Ref: ref}); f != nil {
		t.Errorf("false positive on normalization bug: %+v", f)
	}
}

func TestNormalizationAssertionFires(t *testing.T) {
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor {
			tt := imageTensor(f)
			for i := range tt.F {
				tt.F[i] = tt.F[i]*0.5 + 0.5 // [-1,1] -> [0,1]
			}
			return tt
		},
		imageTensor)
	finding := NormalizationRangeAssertion{}.Check(&AssertCtx{Edge: edge, Ref: ref})
	if finding == nil {
		t.Fatal("normalization assertion did not fire")
	}
	if !strings.Contains(finding.Detail, "normalized to") {
		t.Errorf("detail = %q", finding.Detail)
	}
}

func TestNormalizationAssertionSilentOnChannelBug(t *testing.T) {
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor { return swapRBTensor(imageTensor(f)) },
		imageTensor)
	if f := (NormalizationRangeAssertion{}).Check(&AssertCtx{Edge: edge, Ref: ref}); f != nil {
		t.Errorf("false positive on channel bug: %+v", f)
	}
}

func TestOrientationAssertionFromTensors(t *testing.T) {
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor { return rotateTensor(imageTensor(f), 1) },
		imageTensor)
	finding := OrientationAssertion{}.Check(&AssertCtx{Edge: edge, Ref: ref})
	if finding == nil {
		t.Fatal("orientation assertion did not fire on rotated input")
	}
}

func TestOrientationAssertionFromSensor(t *testing.T) {
	edge, ref := preprocLogs(2, imageTensor, imageTensor)
	edge.Records = append(edge.Records, Record{Key: KeySensorOrientation, Kind: KindSensor, Value: 90})
	edge.Records = append(edge.Records, Record{Key: KeySensorOrientation, Kind: KindSensor, Value: 90})
	finding := OrientationAssertion{}.Check(&AssertCtx{Edge: edge, Ref: ref})
	if finding == nil || !strings.Contains(finding.Detail, "sensor") {
		t.Fatalf("sensor-based orientation finding missing: %+v", finding)
	}
}

func TestRotateTensorRoundTrip(t *testing.T) {
	x := imageTensor(0)
	r := rotateTensor(rotateTensor(rotateTensor(rotateTensor(x, 1), 1), 1), 1)
	if !tensor.AllClose(x, r, 0, 0) {
		t.Error("four quarter turns are not identity")
	}
	once := rotateTensor(x, 1)
	if tensor.SameShape(once.Shape, x.Shape) {
		t.Error("non-square rotation should swap dims")
	}
}

func TestResizeAssertionFires(t *testing.T) {
	// Simulate resampling difference: reference is smooth, edge carries
	// alternating high-frequency error with matching mean/range.
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor {
			tt := imageTensor(f)
			for i := range tt.F {
				if i%2 == 0 {
					tt.F[i] += 0.12
				} else {
					tt.F[i] -= 0.12
				}
			}
			return tt
		},
		imageTensor)
	finding := ResizeFunctionAssertion{}.Check(&AssertCtx{Edge: edge, Ref: ref})
	if finding == nil {
		t.Fatal("resize assertion did not fire on high-frequency disagreement")
	}
}

func TestResizeAssertionSilentOnNormalizationBug(t *testing.T) {
	edge, ref := preprocLogs(2,
		func(f int) *tensor.Tensor {
			tt := imageTensor(f)
			for i := range tt.F {
				tt.F[i] = tt.F[i]*0.5 + 0.5
			}
			return tt
		},
		imageTensor)
	if f := (ResizeFunctionAssertion{}).Check(&AssertCtx{Edge: edge, Ref: ref}); f != nil {
		t.Errorf("false positive on normalization bug: %+v", f)
	}
}

func TestLatencyBudgetAssertion(t *testing.T) {
	l := &Log{}
	l.Records = append(l.Records, Record{Key: KeyInferenceLatency, Kind: KindMetric, Value: 5e6})
	ctx := &AssertCtx{Edge: l, Ref: &Log{}}
	if f := (LatencyBudgetAssertion{BudgetNs: 10e6}).Check(ctx); f != nil {
		t.Errorf("budget not exceeded but fired: %+v", f)
	}
	if f := (LatencyBudgetAssertion{BudgetNs: 1e6}).Check(ctx); f == nil {
		t.Error("budget exceeded but silent")
	}
}

func TestAssertionFuncAdapter(t *testing.T) {
	called := false
	a := AssertionFunc{AssertionName: "custom", Fn: func(ctx *AssertCtx) *Finding {
		called = true
		return &Finding{Assertion: "custom", Detail: "hello"}
	}}
	if a.Name() != "custom" {
		t.Error("name")
	}
	if f := a.Check(&AssertCtx{Edge: &Log{}, Ref: &Log{}}); f == nil || !called {
		t.Error("check")
	}
}

func TestBuiltinAssertionsSilentOnCleanLogs(t *testing.T) {
	edge, ref := preprocLogs(3, imageTensor, imageTensor)
	ctx := &AssertCtx{Edge: edge, Ref: ref, Report: &Report{}}
	for _, a := range BuiltinAssertions() {
		if f := a.Check(ctx); f != nil {
			t.Errorf("%s fired on clean logs: %+v", a.Name(), f)
		}
	}
}
