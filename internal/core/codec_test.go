package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"mlexray/internal/tensor"
)

// goldenTelemetryLog builds the deterministic log pinned by
// testdata/golden.jsonl: every record kind, every dtype, quantized params,
// layer provenance, stats-only captures and an empty tensor payload. The
// fixture was generated before the codec redesign, so matching it proves the
// on-disk JSONL format never changed.
func goldenTelemetryLog() *Log {
	l := &Log{}
	add := func(r Record) {
		r.Seq = len(l.Records)
		l.Records = append(l.Records, r)
	}

	// Frame 0: sensor and metric records.
	add(Record{Frame: 0, Key: KeySensorOrientation, Kind: KindSensor, Value: 90, Unit: "deg"})
	add(Record{Frame: 0, Key: KeyInferenceLatency, Kind: KindMetric, Value: 123456, Unit: "ns"})

	// Frame 1: one full tensor per dtype, with layer provenance.
	for i, dt := range []tensor.DType{tensor.F32, tensor.U8, tensor.I8, tensor.I32} {
		tt := tensor.New(dt, 2, 3)
		for j := 0; j < tt.Len(); j++ {
			var v float64
			switch dt {
			case tensor.F32:
				v = float64(j)*1.5 - 2
			case tensor.U8:
				v = float64((j*37 + 11) % 200)
			case tensor.I8:
				v = float64((j*29)%200 - 100)
			case tensor.I32:
				v = float64(j*1000 - 2500)
			}
			tt.SetAt(v, j/3, j%3)
		}
		name := fmt.Sprintf("node%d", i)
		r := Record{Frame: 1, Key: LayerOutputKey(name), LayerIndex: i, LayerName: name, OpType: "Conv2D"}
		r.EncodeTensor(tt, true)
		add(r)
	}

	// Frame 1: a stats-only capture.
	st := tensor.New(tensor.F32, 8)
	for i := range st.F {
		st.F[i] = float32(i) * 0.25
	}
	sr := Record{Frame: 1, Key: KeyModelInput}
	sr.EncodeTensor(st, false)
	add(sr)

	// Frame 2: quantized captures (u8 and i8) carrying scale/zero-point.
	qu := tensor.New(tensor.U8, 5)
	for i := range qu.U {
		qu.U[i] = uint8(3 + i*7)
	}
	qur := Record{Frame: 2, Key: LayerOutputKey("quant_u8"), LayerIndex: 9, LayerName: "quant_u8", OpType: "Conv2D"}
	qur.EncodeTensor(qu, true)
	qur.QScale = 0.05
	qur.QZero = 3
	add(qur)

	qi := tensor.New(tensor.I8, 5)
	for i := range qi.I {
		qi.I[i] = int8(i*13 - 20)
	}
	qir := Record{Frame: 2, Key: LayerOutputKey("quant_i8"), LayerIndex: 10, LayerName: "quant_i8", OpType: "FullyConnected"}
	qir.EncodeTensor(qi, true)
	qir.QScale = 0.02
	qir.QZero = -4
	add(qir)

	// Frame 2: an empty tensor payload.
	er := Record{Frame: 2, Key: "debug/empty"}
	er.EncodeTensor(tensor.New(tensor.F32, 0), true)
	add(er)

	// Frame 3: a model output.
	out := tensor.New(tensor.F32, 4)
	out.F[2] = 1
	or := Record{Frame: 3, Key: KeyModelOutput}
	or.EncodeTensor(out, true)
	add(or)

	return l
}

// TestGoldenJSONLPinned asserts the serialized JSONL of the golden log is
// byte-identical to the fixture generated before the codec redesign — the
// proof that lazy payloads did not change the on-disk JSONL format.
// Regenerate (only for a deliberate, documented format change) with
// REGEN_GOLDEN=1 go test ./internal/core -run TestGoldenJSONLPinned.
func TestGoldenJSONLPinned(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTelemetryLog().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/golden.jsonl"
	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL output diverged from the pre-redesign golden fixture (%d vs %d bytes)", buf.Len(), len(want))
	}
	// And the fixture reads back whole.
	back, err := ReadJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(goldenTelemetryLog().Records) {
		t.Fatalf("fixture reads back %d records", len(back.Records))
	}
}

// roundTrip serializes l in the given format and reads it back through the
// auto-detecting reader.
func roundTrip(t *testing.T, l *Log, format LogFormat) *Log {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Write(&buf, format); err != nil {
		t.Fatal(err)
	}
	dec, got, err := OpenLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != format {
		t.Fatalf("auto-detected %v, wrote %v", got, format)
	}
	back, err := readAll(dec)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func jsonlBytes(t *testing.T, l *Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenCrossCodecRoundTrip pushes the golden log through
// JSONL→binary→JSONL: the final JSONL must be byte-identical to the first —
// the binary codec loses nothing the JSONL format can express.
func TestGoldenCrossCodecRoundTrip(t *testing.T) {
	l := goldenTelemetryLog()
	want := jsonlBytes(t, l)
	viaJSONL := roundTrip(t, l, FormatJSONL)
	viaBinary := roundTrip(t, viaJSONL, FormatBinary)
	if got := jsonlBytes(t, viaBinary); !bytes.Equal(got, want) {
		t.Fatalf("JSONL→binary→JSONL changed the log (%d vs %d bytes)", len(got), len(want))
	}
}

// randomLog fabricates a log drawing every record kind, every dtype,
// quantization params and degenerate shapes from the seed.
func randomLog(seed int64) *Log {
	rng := rand.New(rand.NewSource(seed))
	l := &Log{}
	n := rng.Intn(14) // occasionally zero records
	for i := 0; i < n; i++ {
		r := Record{Seq: i, Frame: rng.Intn(4)}
		switch rng.Intn(4) {
		case 0, 1: // tensor / stats capture
			dt := []tensor.DType{tensor.F32, tensor.U8, tensor.I8, tensor.I32}[rng.Intn(4)]
			var tt *tensor.Tensor
			if rng.Intn(8) == 0 {
				tt = tensor.New(dt, 0) // empty payload
			} else {
				tt = tensor.New(dt, 1+rng.Intn(3), 1+rng.Intn(5))
				for j := 0; j < tt.Len(); j++ {
					tt.SetAt(float64(rng.Intn(200)-100), j/tt.Shape[1], j%tt.Shape[1])
				}
			}
			r.Key = LayerOutputKey(fmt.Sprintf("n%d", i))
			r.LayerIndex = i
			r.LayerName = fmt.Sprintf("n%d", i)
			r.OpType = []string{"Conv2D", "DepthwiseConv2D", "Softmax"}[rng.Intn(3)]
			r.EncodeTensor(tt, rng.Intn(2) == 0)
			if (dt == tensor.U8 || dt == tensor.I8) && rng.Intn(2) == 0 {
				r.QScale = float64(1+rng.Intn(9)) / 100
				r.QZero = int32(rng.Intn(11) - 5)
			}
		case 2:
			r.Key = KeyInferenceLatency
			r.Kind = KindMetric
			r.Value = float64(rng.Intn(1 << 20))
			r.Unit = "ns"
		default:
			r.Key = KeySensorOrientation
			r.Kind = KindSensor
			r.Value = float64(rng.Intn(360))
			r.Unit = "deg"
		}
		l.Records = append(l.Records, r)
	}
	return l
}

// Property: any log — all kinds, all dtypes, quantized params, empty logs —
// survives JSONL→binary→JSONL byte-identically.
func TestCrossCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		l := randomLog(seed)
		want := jsonlBytes(t, l)
		back := roundTrip(t, roundTrip(t, l, FormatJSONL), FormatBinary)
		return bytes.Equal(jsonlBytes(t, back), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEmptyLogRoundTrip pins both codecs on the degenerate log: an empty
// binary log is just the header and still auto-detects; an empty JSONL log
// is zero bytes.
func TestEmptyLogRoundTrip(t *testing.T) {
	empty := &Log{}
	for _, format := range []LogFormat{FormatJSONL, FormatBinary} {
		if back := roundTrip(t, empty, format); len(back.Records) != 0 {
			t.Errorf("%v: empty log read back %d records", format, len(back.Records))
		}
	}
	var buf bytes.Buffer
	if err := empty.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, []byte("MLXB\x01")) {
		t.Errorf("empty binary log = %q, want bare MLXB header", got)
	}
}

// TestBinaryHeaderPinned pins the on-disk header so the format cannot drift
// silently, and checks version/garbage rejection.
func TestBinaryHeaderPinned(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTelemetryLog().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("MLXB\x01")) {
		t.Fatalf("binary log starts %q, want MLXB\\x01", buf.Bytes()[:5])
	}
	if _, err := readAll(NewBinaryDecoder(strings.NewReader("MLXB\x02rest"))); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	if _, err := readAll(NewBinaryDecoder(strings.NewReader("not a log"))); err == nil {
		t.Error("garbage accepted as binary log")
	}
	// Truncated mid-record fails loudly, not silently short.
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := readAll(NewBinaryDecoder(bytes.NewReader(trunc))); err == nil {
		t.Error("truncated binary log read without error")
	}
}

// TestOpenLogAutoDetect routes each encoding to its decoder and treats an
// empty stream as an empty JSONL log.
func TestOpenLogAutoDetect(t *testing.T) {
	l := goldenTelemetryLog()
	for _, format := range []LogFormat{FormatJSONL, FormatBinary} {
		var buf bytes.Buffer
		if err := l.Write(&buf, format); err != nil {
			t.Fatal(err)
		}
		back, err := ReadLog(&buf)
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if len(back.Records) != len(l.Records) {
			t.Errorf("%v: %d records, want %d", format, len(back.Records), len(l.Records))
		}
	}
	empty, err := ReadLog(strings.NewReader(""))
	if err != nil || len(empty.Records) != 0 {
		t.Errorf("empty stream: %v, %d records", err, len(empty.Records))
	}
}

// TestBinarySmallerThanJSONL quantifies the point of the binary format:
// full-tensor logs shed the base64 expansion plus the JSON framing.
func TestBinarySmallerThanJSONL(t *testing.T) {
	l := goldenTelemetryLog()
	jb, err := l.EncodedSize(FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := l.EncodedSize(FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if bb >= jb {
		t.Errorf("binary log (%dB) not smaller than JSONL (%dB)", bb, jb)
	}
}

// TestDecodeTensorDequantizesI8 is the regression test for the quantized-
// capture decode asymmetry: I8 records with QScale set must decode in real
// units, exactly like U8 records always have.
func TestDecodeTensorDequantizesI8(t *testing.T) {
	for _, dt := range []tensor.DType{tensor.U8, tensor.I8} {
		tt := tensor.New(dt, 4)
		for i := 0; i < tt.Len(); i++ {
			tt.SetAt(float64(i*10), i)
		}
		var r Record
		r.Key = "q"
		r.EncodeTensor(tt, true)
		r.QScale = 0.5
		r.QZero = 2
		back, err := r.DecodeTensor()
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if back.DType != tensor.F32 {
			t.Fatalf("%v: quantized capture decoded as %v, want dequantized f32", dt, back.DType)
		}
		for i := 0; i < back.Len(); i++ {
			want := 0.5 * float64(i*10-2)
			if got := back.At(i); got != want {
				t.Errorf("%v[%d] = %v, want %v", dt, i, got, want)
			}
		}
	}
	// Unquantized integer records still decode raw.
	raw := tensor.New(tensor.I8, 3)
	raw.I[1] = -7
	var r Record
	r.EncodeTensor(raw, true)
	back, err := r.DecodeTensor()
	if err != nil {
		t.Fatal(err)
	}
	if back.DType != tensor.I8 || back.I[1] != -7 {
		t.Errorf("unquantized i8 decode = %v", back)
	}
}

// TestLazyPayloadIsRaw pins the lazy-payload design: EncodeTensor stores raw
// little-endian bytes (1 byte per u8 element, no base64 expansion), and the
// JSONL base64 only materializes at serialization time.
func TestLazyPayloadIsRaw(t *testing.T) {
	tt := tensor.New(tensor.U8, 300)
	for i := range tt.U {
		tt.U[i] = uint8(i)
	}
	var r Record
	r.Key = "t"
	r.EncodeTensor(tt, true)
	if len(r.Payload) != 300 {
		t.Fatalf("payload = %d bytes, want 300 raw bytes", len(r.Payload))
	}
	data, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"data":"`)) {
		t.Error("JSONL wire format lost the base64 data field")
	}
	var back Record
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Payload, r.Payload) {
		t.Error("payload changed across JSON round trip")
	}
}

// TestReadLogRejectsBadBase64 keeps corrupted JSONL payloads failing loudly
// (now at read time, where the base64 is decoded).
func TestReadLogRejectsBadBase64(t *testing.T) {
	line := `{"seq":0,"frame":0,"key":"t","kind":"tensor","shape":[1],"dtype":"u8","data":"!!!"}` + "\n"
	if _, err := ReadLog(strings.NewReader(line)); err == nil {
		t.Error("corrupt base64 payload accepted")
	}
}

// TestDecodeTensorRejectsCorruptShape hardens the validate-from-file path:
// a crafted or corrupt log whose shape disagrees with its payload must
// error, not panic on a negative dim or allocate terabytes from an
// implausible dim product.
func TestDecodeTensorRejectsCorruptShape(t *testing.T) {
	base := Record{Kind: KindTensor, Key: "t", DType: "f32", Payload: make([]byte, 24)}
	for name, shape := range map[string][]int{
		"negative dim":     {-1, 6},
		"huge dim":         {1 << 40},
		"overflow product": {1 << 20, 1 << 20, 1 << 20},
		"payload mismatch": {7},
	} {
		r := base
		r.Shape = shape
		if _, err := r.DecodeTensor(); err == nil {
			t.Errorf("%s: shape %v accepted", name, shape)
		}
	}
	// And the same corruption arriving through the binary codec fails at
	// decode-tensor time with an error, not a panic.
	r := base
	r.Shape = []int{-1, 6}
	var buf bytes.Buffer
	if err := (&Log{Records: []Record{r}}).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Records[0].DecodeTensor(); err == nil {
		t.Error("corrupt binary record decoded without error")
	}
}

// TestLogEncoderUnknownFormat covers the constructor guards.
func TestLogEncoderUnknownFormat(t *testing.T) {
	if _, err := NewLogEncoder(io.Discard, LogFormat(42)); err == nil {
		t.Error("unknown format accepted by NewLogEncoder")
	}
	if _, err := NewLogSink(io.Discard, LogFormat(42)); err == nil {
		t.Error("unknown format accepted by NewLogSink")
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Error("unknown format name parsed")
	}
	for _, f := range []LogFormat{FormatJSONL, FormatBinary} {
		if parsed, err := ParseLogFormat(f.String()); err != nil || parsed != f {
			t.Errorf("ParseLogFormat(%q) = %v, %v", f.String(), parsed, err)
		}
	}
}
