package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DeviceShardLog pairs a device name with the shard telemetry it produced
// during a fleet replay. Shard records carry global frame tags, so each
// shard validates directly against the full reference log — frames the
// device did not own simply have no records to compare.
type DeviceShardLog struct {
	Device string
	Log    *Log
}

// FleetDeviceReport is one device's rollup within a FleetReport: accuracy
// (output agreement with the reference on the frames the device owned),
// drift (mean per-layer normalized rMSE, when per-layer capture was on) and
// latency (mean modeled inference time, when a device model was attached).
type FleetDeviceReport struct {
	Device string
	// Frames is the number of frames compared (frames whose model output
	// exists in both the shard log and the reference log).
	Frames int
	// OutputAgreement is the fraction of compared frames whose output
	// argmax matches the reference.
	OutputAgreement float64
	// MeanNRMSE averages per-layer normalized rMSE vs the reference across
	// the layers the logs share; zero when per-layer capture was off.
	MeanNRMSE float64
	// Layers is the number of layers MeanNRMSE averages over.
	Layers int
	// MeanModeledNs is the mean modeled inference latency in nanoseconds;
	// zero when no device latency model was attached.
	MeanModeledNs float64
	// Divergent lists the frames where this device disagrees with the
	// reference while the rest of the fleet is healthy — disagreement that
	// isolates to the device rather than the model or the data.
	Divergent []int
	// Flagged marks a device whose shard diverges: its agreement is below
	// the threshold while the rest of the fleet's is not. A fleet-wide
	// model defect degrades every device and flags none.
	Flagged bool
}

// FleetReport is the fleet-level cross-validation result: per-device
// rollups plus the cross-device divergence analysis. Built by
// FleetValidate from per-device shard logs and one reference log.
type FleetReport struct {
	Devices []FleetDeviceReport
	// FleetAgreement is the frame-weighted output agreement across all
	// devices — what a single merged-log validation would report.
	FleetAgreement float64
	// Flagged names the devices whose divergence isolates to them (in
	// device order).
	Flagged []string
	// DivergentFrames is the sorted union of the per-device divergent
	// frames.
	DivergentFrames []int
}

// outputArgmaxByFrame indexes a log's per-frame model-output argmax (first
// output record per frame, matching FirstTensor's semantics).
func outputArgmaxByFrame(l *Log) (map[int]int, error) {
	out := map[int]int{}
	for i := range l.Records {
		r := &l.Records[i]
		if r.Kind != KindTensor || r.Key != KeyModelOutput {
			continue
		}
		if _, ok := out[r.Frame]; ok {
			continue
		}
		t, err := r.DecodeTensor()
		if err != nil {
			return nil, err
		}
		out[r.Frame] = t.ArgMax()
	}
	return out, nil
}

// FleetValidate cross-validates the per-device shard logs of a fleet replay
// against the reference log. Beyond running the per-device half of the
// Figure 2 flow (output agreement, per-layer drift, latency rollups) on
// each shard, it compares the devices against each other: a frame where the
// owning device disagrees with the reference while the rest of the fleet
// agrees is cross-device divergence — evidence of a device-local fault (a
// bad delegate kernel, a device-specific preprocessing path) rather than a
// model or data problem, which would degrade every device alike. Devices
// whose shards diverge this way are flagged.
func FleetValidate(shards []DeviceShardLog, ref *Log, opts ValidateOptions) (*FleetReport, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: fleet validation needs at least one device shard")
	}
	refArg, err := outputArgmaxByFrame(ref)
	if err != nil {
		return nil, err
	}
	if len(refArg) == 0 {
		return nil, fmt.Errorf("core: reference log carries no model outputs")
	}

	type devAcc struct {
		agree, total int
		mismatched   []int
	}
	accs := make([]devAcc, len(shards))
	sumAgree, sumTotal := 0, 0
	for d, shard := range shards {
		devArg, err := outputArgmaxByFrame(shard.Log)
		if err != nil {
			return nil, fmt.Errorf("core: device %q shard: %w", shard.Device, err)
		}
		for frame, got := range devArg {
			want, ok := refArg[frame]
			if !ok {
				continue
			}
			accs[d].total++
			if got == want {
				accs[d].agree++
			} else {
				accs[d].mismatched = append(accs[d].mismatched, frame)
			}
		}
		sort.Ints(accs[d].mismatched)
		sumAgree += accs[d].agree
		sumTotal += accs[d].total
	}
	if sumTotal == 0 {
		return nil, fmt.Errorf("core: fleet shards share no output frames with the reference")
	}

	rep := &FleetReport{FleetAgreement: float64(sumAgree) / float64(sumTotal)}
	for d, shard := range shards {
		acc := accs[d]
		dr := FleetDeviceReport{Device: shard.Device, Frames: acc.total}
		if acc.total > 0 {
			dr.OutputAgreement = float64(acc.agree) / float64(acc.total)
		}
		// Drift rollup: per-layer normalized rMSE against the reference,
		// averaged over the shared layers. Shards without per-layer capture
		// skip it (CompareLayers reports no shared records).
		if diffs, err := CompareLayers(shard.Log, ref); err == nil && len(diffs) > 0 {
			sum := 0.0
			for _, diff := range diffs {
				sum += diff.NRMSE
			}
			dr.MeanNRMSE = sum / float64(len(diffs))
			dr.Layers = len(diffs)
		}
		// Latency rollup: modeled inference time, comparable across runs
		// (wall-clock is not).
		if vals := shard.Log.MetricValues(KeyInferenceModeled); len(vals) > 0 {
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			dr.MeanModeledNs = sum / float64(len(vals))
		}
		// Cross-device divergence: does the rest of the fleet vouch for the
		// model on the frames this device got wrong? With no other frames
		// to consult (single-device fleets) the rest is vacuously healthy —
		// the report degrades to per-device validation.
		restAgree, restTotal := sumAgree-acc.agree, sumTotal-acc.total
		restHealthy := restTotal == 0 || float64(restAgree)/float64(restTotal) >= opts.AgreementThreshold
		if restHealthy && acc.total > 0 {
			dr.Divergent = acc.mismatched
			if dr.OutputAgreement < opts.AgreementThreshold {
				dr.Flagged = true
				rep.Flagged = append(rep.Flagged, shard.Device)
			}
		}
		rep.DivergentFrames = append(rep.DivergentFrames, dr.Divergent...)
		rep.Devices = append(rep.Devices, dr)
	}
	sort.Ints(rep.DivergentFrames)
	return rep, nil
}

// Render writes a human-readable fleet report.
func (r *FleetReport) Render(w io.Writer) {
	fmt.Fprintf(w, "ML-EXray fleet validation report\n")
	fmt.Fprintf(w, "  fleet output agreement with reference: %.1f%%\n", 100*r.FleetAgreement)
	for _, d := range r.Devices {
		if d.Frames == 0 {
			fmt.Fprintf(w, "  %-14s no frames assigned (policy starved this device)\n", d.Device)
			continue
		}
		line := fmt.Sprintf("  %-14s frames=%-4d agreement=%5.1f%%", d.Device, d.Frames, 100*d.OutputAgreement)
		if d.Layers > 0 {
			line += fmt.Sprintf(" nRMSE=%.4f", d.MeanNRMSE)
		}
		if d.MeanModeledNs > 0 {
			line += fmt.Sprintf(" modeled=%.2fms", d.MeanModeledNs/1e6)
		}
		if d.Flagged {
			line += "  <- DIVERGES FROM FLEET"
		}
		fmt.Fprintln(w, line)
	}
	if len(r.Flagged) > 0 {
		fmt.Fprintf(w, "  flagged devices: %s\n", strings.Join(r.Flagged, ", "))
	}
	if n := len(r.DivergentFrames); n > 0 {
		show := r.DivergentFrames
		suffix := ""
		if n > 12 {
			show = show[:12]
			suffix = fmt.Sprintf(" ... and %d more", n-12)
		}
		fmt.Fprintf(w, "  cross-device divergent frames (%d): %s%s\n", n, joinInts(show), suffix)
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ", ")
}
