package core

import (
	"fmt"
	"io"
	"strings"
)

// DeviceShardLog pairs a device name with the shard telemetry it produced
// during a fleet replay. Shard records carry global frame tags, so each
// shard validates directly against the full reference log — frames the
// device did not own simply have no records to compare.
type DeviceShardLog struct {
	Device string
	Log    *Log
}

// FleetDeviceReport is one device's rollup within a FleetReport: accuracy
// (output agreement with the reference on the frames the device owned),
// drift (mean per-layer normalized rMSE, when per-layer capture was on) and
// latency (mean modeled inference time, when a device model was attached).
type FleetDeviceReport struct {
	Device string
	// Frames is the number of frames compared (frames whose model output
	// exists in both the shard log and the reference log).
	Frames int
	// OutputAgreement is the fraction of compared frames whose output
	// argmax matches the reference.
	OutputAgreement float64
	// MeanNRMSE averages per-layer normalized rMSE vs the reference across
	// the layers the logs share; zero when per-layer capture was off.
	MeanNRMSE float64
	// Layers is the number of layers MeanNRMSE averages over.
	Layers int
	// MeanModeledNs is the mean modeled inference latency in nanoseconds;
	// zero when no device latency model was attached.
	MeanModeledNs float64
	// Divergent lists the frames where this device disagrees with the
	// reference while the rest of the fleet is healthy — disagreement that
	// isolates to the device rather than the model or the data.
	Divergent []int
	// Flagged marks a device whose shard diverges: its agreement is below
	// the threshold while the rest of the fleet's is not. A fleet-wide
	// model defect degrades every device and flags none.
	Flagged bool
}

// FleetReport is the fleet-level cross-validation result: per-device
// rollups plus the cross-device divergence analysis. Built by
// FleetValidate from per-device shard logs and one reference log.
type FleetReport struct {
	Devices []FleetDeviceReport
	// FleetAgreement is the frame-weighted output agreement across all
	// devices — what a single merged-log validation would report.
	FleetAgreement float64
	// Flagged names the devices whose divergence isolates to them (in
	// device order).
	Flagged []string
	// DivergentFrames is the sorted union of the per-device divergent
	// frames.
	DivergentFrames []int
}

// FleetValidate cross-validates the per-device shard logs of a fleet replay
// against the reference log. Beyond running the per-device half of the
// Figure 2 flow (output agreement, per-layer drift, latency rollups) on
// each shard, it compares the devices against each other: a frame where the
// owning device disagrees with the reference while the rest of the fleet
// agrees is cross-device divergence — evidence of a device-local fault (a
// bad delegate kernel, a device-specific preprocessing path) rather than a
// model or data problem, which would degrade every device alike. Devices
// whose shards diverge this way are flagged.
//
// FleetValidate is the offline entry point of the incremental fleet
// validator: each shard log streams through a session of a
// FleetStreamValidator (the same accumulators a live ingest collector runs
// per device), so a fleet report assembled from live streams is identical by
// construction to this offline one over the same records.
func FleetValidate(shards []DeviceShardLog, ref *Log, opts ValidateOptions) (*FleetReport, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: fleet validation needs at least one device shard")
	}
	fv, err := NewFleetStreamValidator(ref, opts)
	if err != nil {
		return nil, err
	}
	// Sessions in shard order, one per shard even under duplicate device
	// names — the report keeps the caller's ordering, where the live
	// collector (Report) orders its by-name sessions alphabetically.
	sessions := make([]*StreamValidator, len(shards))
	for d, shard := range shards {
		fv.mu.Lock()
		sessions[d] = fv.newSessionLocked(shard.Device)
		fv.mu.Unlock()
		for i := range shard.Log.Records {
			_ = sessions[d].Consume(shard.Log.Records[i])
		}
	}
	return fleetReportFrom(sessions, opts)
}

// Render writes a human-readable fleet report.
func (r *FleetReport) Render(w io.Writer) {
	fmt.Fprintf(w, "ML-EXray fleet validation report\n")
	fmt.Fprintf(w, "  fleet output agreement with reference: %.1f%%\n", 100*r.FleetAgreement)
	for _, d := range r.Devices {
		if d.Frames == 0 {
			fmt.Fprintf(w, "  %-14s no frames assigned (policy starved this device)\n", d.Device)
			continue
		}
		line := fmt.Sprintf("  %-14s frames=%-4d agreement=%5.1f%%", d.Device, d.Frames, 100*d.OutputAgreement)
		if d.Layers > 0 {
			line += fmt.Sprintf(" nRMSE=%.4f", d.MeanNRMSE)
		}
		if d.MeanModeledNs > 0 {
			line += fmt.Sprintf(" modeled=%.2fms", d.MeanModeledNs/1e6)
		}
		if d.Flagged {
			line += "  <- DIVERGES FROM FLEET"
		}
		fmt.Fprintln(w, line)
	}
	if len(r.Flagged) > 0 {
		fmt.Fprintf(w, "  flagged devices: %s\n", strings.Join(r.Flagged, ", "))
	}
	if n := len(r.DivergentFrames); n > 0 {
		show := r.DivergentFrames
		suffix := ""
		if n > 12 {
			show = show[:12]
			suffix = fmt.Sprintf(" ... and %d more", n-12)
		}
		fmt.Fprintf(w, "  cross-device divergent frames (%d): %s%s\n", n, joinInts(show), suffix)
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ", ")
}
