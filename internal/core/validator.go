package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mlexray/internal/tensor"
)

// LayerDiff is the per-layer drift between an edge log and a reference log,
// averaged over frames. NRMSE is the paper's normalized rMSE (§3.4):
// rMSE / (max - min) of the reference layer output.
type LayerDiff struct {
	Index  int
	Name   string
	OpType string
	NRMSE  float64
	RMSE   float64
	MaxAbs float64
	Frames int
}

// CompareLayers aligns per-layer tensor records of two logs by layer name
// and computes drift per layer, averaged across the frames present in both.
// Layers existing in only one log (e.g. Quantize/Dequantize boundary nodes
// in the quantized graph) are skipped — alignment is by name, exactly how
// the paper compares model versions that share structure.
func CompareLayers(edge, ref *Log) ([]LayerDiff, error) {
	type acc struct {
		diff LayerDiff
		sumN float64
		sumR float64
		maxA float64
		n    int
	}
	accs := make(map[string]*acc)
	order := []string{}

	frames := edge.Frames()
	if rf := ref.Frames(); rf < frames {
		frames = rf
	}
	if frames == 0 {
		return nil, fmt.Errorf("core: no frames to compare")
	}
	// Index reference tensor records by (frame, key).
	refIdx := make(map[[2]interface{}]*Record)
	for i := range ref.Records {
		r := &ref.Records[i]
		if r.Kind == KindTensor && strings.HasPrefix(r.Key, keyLayerPrefix) {
			refIdx[[2]interface{}{r.Frame, r.Key}] = r
		}
	}
	for i := range edge.Records {
		er := &edge.Records[i]
		if er.Kind != KindTensor || !strings.HasPrefix(er.Key, keyLayerPrefix) || er.Frame >= frames {
			continue
		}
		rr, ok := refIdx[[2]interface{}{er.Frame, er.Key}]
		if !ok {
			continue
		}
		et, err := er.DecodeTensor()
		if err != nil {
			return nil, err
		}
		rt, err := rr.DecodeTensor()
		if err != nil {
			return nil, err
		}
		et = dequantIfNeeded(et, er)
		rt = dequantIfNeeded(rt, rr)
		if et.Len() != rt.Len() {
			continue
		}
		nrmse, err := tensor.NormalizedRMSE(et, rt)
		if err != nil {
			return nil, err
		}
		rmse, _ := tensor.RMSE(et, rt)
		maxA, _ := tensor.MaxAbsDiff(et, rt)
		a, ok := accs[er.Key]
		if !ok {
			a = &acc{diff: LayerDiff{Index: er.LayerIndex, Name: er.LayerName, OpType: er.OpType}}
			accs[er.Key] = a
			order = append(order, er.Key)
		}
		a.sumN += nrmse
		a.sumR += rmse
		if maxA > a.maxA {
			a.maxA = maxA
		}
		a.n++
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("core: logs share no per-layer tensor records (was per-layer capture enabled?)")
	}
	diffs := make([]LayerDiff, 0, len(accs))
	for _, key := range order {
		a := accs[key]
		d := a.diff
		d.NRMSE = a.sumN / float64(a.n)
		d.RMSE = a.sumR / float64(a.n)
		d.MaxAbs = a.maxA
		d.Frames = a.n
		diffs = append(diffs, d)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Index < diffs[j].Index })
	return diffs, nil
}

// dequantIfNeeded widens quantized layer captures to float using the stats
// the record carries. Per-layer comparison across float and quantized model
// versions needs both sides in real units; quantized records carry raw u8
// values plus stats, and the capture path stores dequantized stats... to
// stay self-contained, logs of quantized models are written already
// dequantized by the pipeline layer, so this only widens integer payloads.
func dequantIfNeeded(t *tensor.Tensor, r *Record) *tensor.Tensor {
	if t.DType == tensor.F32 {
		return t
	}
	return tensor.FromFloats(t.Floats(), t.Shape...)
}

// SuspectLayers returns the layers whose drift indicates a fault: NRMSE
// above threshold, with the classic "jump" pattern (a layer much worse than
// the best preceding layer) flagged first. This is the localisation step of
// the Figure 2 flowchart.
func SuspectLayers(diffs []LayerDiff, threshold float64) []LayerDiff {
	var out []LayerDiff
	for _, d := range diffs {
		if d.NRMSE >= threshold {
			out = append(out, d)
		}
	}
	return out
}

// FirstSpike returns the earliest layer whose NRMSE exceeds threshold and
// is at least jumpFactor times the previous layer's — the "jump of rMSE
// after a particular op" that localises a kernel defect (§4.4).
func FirstSpike(diffs []LayerDiff, threshold, jumpFactor float64) (LayerDiff, bool) {
	prev := 0.0
	for _, d := range diffs {
		if d.NRMSE >= threshold && (prev <= 0 || d.NRMSE >= jumpFactor*prev) {
			return d, true
		}
		prev = d.NRMSE
	}
	return LayerDiff{}, false
}

// OutputAgreement returns the fraction of frames on which the two logs'
// model outputs have the same argmax — the accuracy-validation step when no
// labels are available.
func OutputAgreement(edge, ref *Log) (float64, error) {
	frames := edge.Frames()
	if rf := ref.Frames(); rf < frames {
		frames = rf
	}
	if frames == 0 {
		return 0, fmt.Errorf("core: no frames to compare")
	}
	agree, total := 0, 0
	for f := 0; f < frames; f++ {
		et, err1 := edge.FirstTensor(f, KeyModelOutput)
		rt, err2 := ref.FirstTensor(f, KeyModelOutput)
		if err1 != nil || err2 != nil {
			continue
		}
		total++
		if et.ArgMax() == rt.ArgMax() {
			agree++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("core: logs carry no model outputs")
	}
	return float64(agree) / float64(total), nil
}

// LayerLatency aggregates per-layer latency records by layer class (the
// Table 4 breakdown): total nanoseconds and node counts per OpType class.
type LayerLatency struct {
	Class   string
	Count   int
	TotalNs float64
}

// LatencyByClass aggregates one log's per-layer latency records.
func LatencyByClass(l *Log, classOf func(opType string) string) []LayerLatency {
	byClass := map[string]*LayerLatency{}
	seen := map[string]map[string]bool{} // class -> layer names (count distinct layers)
	var order []string
	for _, r := range l.Records {
		if r.Kind != KindMetric || !strings.HasSuffix(r.Key, "/latency_ns") || !strings.HasPrefix(r.Key, keyLayerPrefix) {
			continue
		}
		cls := classOf(r.OpType)
		ll, ok := byClass[cls]
		if !ok {
			ll = &LayerLatency{Class: cls}
			byClass[cls] = ll
			seen[cls] = map[string]bool{}
			order = append(order, cls)
		}
		ll.TotalNs += r.Value
		if !seen[cls][r.LayerName] {
			seen[cls][r.LayerName] = true
			ll.Count++
		}
	}
	out := make([]LayerLatency, 0, len(byClass))
	for _, c := range order {
		out = append(out, *byClass[c])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// StragglersVsReference compares per-layer latency against the reference
// run's: each layer's slowdown ratio is normalized by the median ratio (the
// overall platform speed difference), and layers exceeding factor times the
// median stand out — the §4.5 diagnosis that exposed ARM-specific conv
// kernels running 44x slower on the x86 emulator.
func StragglersVsReference(edge, ref *Log, factor float64) []string {
	// Only device-modeled latencies are comparable across runs; wall-clock
	// measurements from different resolvers or hosts would produce spurious
	// ratios.
	edgeLat := meanLayerLatencyModeled(edge)
	refLat := meanLayerLatencyModeled(ref)
	type ratioEntry struct {
		name  string
		ratio float64
	}
	var entries []ratioEntry
	for name, e := range edgeLat {
		if r, ok := refLat[name]; ok && r > 0 {
			entries = append(entries, ratioEntry{name, e / r})
		}
	}
	if len(entries) == 0 {
		return nil
	}
	ratios := make([]float64, len(entries))
	for i, e := range entries {
		ratios[i] = e.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median <= 0 {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.ratio >= factor*median {
			out = append(out, e.name)
		}
	}
	sort.Strings(out)
	return out
}

func meanLayerLatencyModeled(l *Log) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range l.Records {
		if r.Kind != KindMetric || r.Unit != "ns-modeled" ||
			!strings.HasSuffix(r.Key, "/latency_ns") || !strings.HasPrefix(r.Key, keyLayerPrefix) {
			continue
		}
		sums[r.LayerName] += r.Value
		counts[r.LayerName]++
	}
	out := make(map[string]float64, len(sums))
	for name, s := range sums {
		out[name] = s / float64(counts[name])
	}
	return out
}

// Stragglers returns the layers whose mean latency exceeds factor times the
// median layer latency — the per-layer latency validation of §4.5.
func Stragglers(l *Log, factor float64) []string {
	type layerLat struct {
		name string
		sum  float64
		n    int
	}
	byLayer := map[string]*layerLat{}
	var order []string
	for _, r := range l.Records {
		if r.Kind != KindMetric || !strings.HasSuffix(r.Key, "/latency_ns") || !strings.HasPrefix(r.Key, keyLayerPrefix) {
			continue
		}
		ll, ok := byLayer[r.LayerName]
		if !ok {
			ll = &layerLat{name: r.LayerName}
			byLayer[r.LayerName] = ll
			order = append(order, r.LayerName)
		}
		ll.sum += r.Value
		ll.n++
	}
	if len(byLayer) == 0 {
		return nil
	}
	means := make([]float64, 0, len(byLayer))
	for _, ll := range byLayer {
		means = append(means, ll.sum/float64(ll.n))
	}
	sort.Float64s(means)
	median := means[len(means)/2]
	var out []string
	for _, name := range order {
		ll := byLayer[name]
		if median > 0 && ll.sum/float64(ll.n) >= factor*median {
			out = append(out, name)
		}
	}
	return out
}

// Report is the validator's output: the Figure 2 flowchart results.
type Report struct {
	OutputAgreement float64
	LayerDiffs      []LayerDiff
	Suspects        []LayerDiff
	Spike           *LayerDiff
	Findings        []Finding
	Stragglers      []string
}

// ValidateOptions tunes the validator.
type ValidateOptions struct {
	// AgreementThreshold below which per-layer analysis is triggered.
	AgreementThreshold float64
	// NRMSEThreshold above which a layer is suspect.
	NRMSEThreshold float64
	// StragglerFactor for latency outliers.
	StragglerFactor float64
	// Assertions to run for root-cause analysis (built-ins plus
	// user-defined).
	Assertions []Assertion
}

// DefaultValidateOptions returns the thresholds used throughout the
// evaluation.
func DefaultValidateOptions() ValidateOptions {
	return ValidateOptions{
		AgreementThreshold: 0.98,
		NRMSEThreshold:     0.1,
		StragglerFactor:    8,
		Assertions:         BuiltinAssertions(),
	}
}

// Validate implements the paper's deployment-validation flowchart (Fig. 2):
// 1) match outputs between the edge and reference pipelines; 2) on
// disagreement, scrutinise layer-level drift to localise the fault; 3) run
// assertion functions for root-cause analysis.
//
// Validate is the offline entry point of the incremental validator: it
// streams the edge log through a StreamValidator record by record (the same
// accumulators a live ingest session runs) and finalizes with the full edge
// log as assertion evidence. A report produced by streaming the same records
// through StreamValidator.Consume is therefore identical by construction.
func Validate(edge, ref *Log, opts ValidateOptions) (*Report, error) {
	sv := NewStreamValidator(ref, opts)
	// Offline, the log is at hand: skip the expensive per-layer drift fold
	// unless agreement turns out to need it (reportLocked replays the layer
	// records then) — healthy runs never pay for CompareLayers, exactly as
	// before the streaming decomposition.
	sv.deferLayers = true
	for i := range edge.Records {
		// Malformed records poison exactly the analyses the offline flow
		// drops (per-layer drift, the frame's agreement sample); the errors
		// they carry are re-surfaced by reportLocked where fatal.
		_ = sv.Consume(edge.Records[i])
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.reportLocked(edge)
}

// Render writes a human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "ML-EXray deployment validation report\n")
	fmt.Fprintf(w, "  output agreement with reference: %.1f%%\n", 100*r.OutputAgreement)
	if r.Spike != nil {
		fmt.Fprintf(w, "  first drift spike: layer %d (%s, %s) nRMSE=%.3f\n",
			r.Spike.Index, r.Spike.Name, r.Spike.OpType, r.Spike.NRMSE)
	}
	if len(r.Suspects) > 0 {
		fmt.Fprintf(w, "  suspect layers (nRMSE over threshold): %d\n", len(r.Suspects))
		for i, d := range r.Suspects {
			if i >= 8 {
				fmt.Fprintf(w, "    ... and %d more\n", len(r.Suspects)-8)
				break
			}
			fmt.Fprintf(w, "    [%3d] %-28s %-16s nRMSE=%.3f\n", d.Index, d.Name, d.OpType, d.NRMSE)
		}
	}
	if len(r.Stragglers) > 0 {
		fmt.Fprintf(w, "  straggler layers: %s\n", strings.Join(r.Stragglers, ", "))
	}
	if len(r.Findings) == 0 {
		fmt.Fprintf(w, "  root-cause assertions: none triggered\n")
	} else {
		fmt.Fprintf(w, "  root-cause assertions:\n")
		for _, f := range r.Findings {
			fmt.Fprintf(w, "    [%s] %s\n", f.Assertion, f.Detail)
		}
	}
}
