package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"reflect"
	"testing"

	"mlexray/internal/tensor"
)

// streamFrames feeds a log's records frame group by frame group (the shape
// an ingest session sees: one frame per sink write).
func streamFrames(t *testing.T, v *StreamValidator, l *Log) {
	t.Helper()
	start := 0
	for start < len(l.Records) {
		end := start
		for end < len(l.Records) && l.Records[end].Frame == l.Records[start].Frame {
			end++
		}
		if err := v.ConsumeFrame(l.Records[start].Frame, l.Records[start:end]); err != nil {
			t.Fatalf("consume frame %d: %v", l.Records[start].Frame, err)
		}
		start = end
	}
}

// driftedLogs builds an edge/reference pair with a drift spike from layer
// "dw1" on and disagreeing outputs, so the full validation flow engages:
// agreement below threshold, per-layer analysis, suspects and spike.
func driftedLogs(frames int) (edge, ref *Log) {
	layers := []string{"conv1", "dw1", "conv2"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D", "Conv2D"}
	ref = buildLayerLog(frames, layers, opTypes, func(f, l, i int) float32 {
		return float32(f + l + i)
	})
	edge = buildLayerLog(frames, layers, opTypes, func(f, l, i int) float32 {
		v := float32(f + l + i)
		if l >= 1 {
			v += 50
		}
		return v
	})
	// Flip every edge output so agreement drops to 0.
	for i := range edge.Records {
		if edge.Records[i].Key == KeyModelOutput {
			out := tensor.New(tensor.F32, 4)
			out.F[(edge.Records[i].Frame+1)%4] = 1
			edge.Records[i].EncodeTensor(out, true)
		}
	}
	return edge, ref
}

// TestStreamValidatorMatchesOffline pins the tentpole contract: a report
// assembled by streaming the log frame by frame is identical — field for
// field and byte for byte once serialized — to the offline Validate over the
// same records.
func TestStreamValidatorMatchesOffline(t *testing.T) {
	edge, ref := driftedLogs(5)
	opts := DefaultValidateOptions()

	want, err := Validate(edge, ref, opts)
	if err != nil {
		t.Fatal(err)
	}

	sv := NewStreamValidator(ref, opts)
	streamFrames(t, sv, edge)
	got, err := sv.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streaming report differs from offline:\nstream: %+v\noffline: %+v", got, want)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("serialized reports differ:\nstream: %s\noffline: %s", gotJSON, wantJSON)
	}
}

// TestStreamValidatorRecordAtATime drives the finest-grained arrival order —
// one record per consume, as the ingest decoder delivers them — and also
// checks that mid-stream Report calls neither disturb nor consume state.
func TestStreamValidatorRecordAtATime(t *testing.T) {
	edge, ref := driftedLogs(4)
	opts := DefaultValidateOptions()
	want, err := Validate(edge, ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewStreamValidator(ref, opts)
	for i := range edge.Records {
		if err := sv.Consume(edge.Records[i]); err != nil {
			t.Fatal(err)
		}
		if i == len(edge.Records)/2 {
			// A live status probe mid-upload must be non-destructive.
			if _, err := sv.Report(); err != nil {
				t.Fatalf("mid-stream report: %v", err)
			}
		}
	}
	got, err := sv.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("record-at-a-time report differs from offline:\n%+v\nvs\n%+v", got, want)
	}
	if sv.Records() != len(edge.Records) {
		t.Errorf("Records() = %d, want %d", sv.Records(), len(edge.Records))
	}
	if sv.Frames() != edge.Frames() {
		t.Errorf("Frames() = %d, want %d", sv.Frames(), edge.Frames())
	}
}

// TestStreamValidatorIsSink checks the Sink facet: a monitor spilling
// straight into a StreamValidator validates without a log in between.
func TestStreamValidatorIsSink(t *testing.T) {
	edge, ref := driftedLogs(3)
	opts := DefaultValidateOptions()
	want, err := Validate(edge, ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewStreamValidator(ref, opts)
	var sink Sink = sv
	streamFrames(t, sv, edge)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := sv.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sink-fed report differs from offline")
	}
}

// TestFleetStreamMatchesOfflineInterleaved pins fleet parity under the
// arrival pattern a live collector sees: device streams interleaved frame by
// frame (each device's own frames still in order), with one device carrying
// a fault. The streamed fleet report must equal FleetValidate over the
// complete shard logs.
func TestFleetStreamMatchesOfflineInterleaved(t *testing.T) {
	layers := []string{"conv1", "dw1"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D"}
	const frames = 12
	ref := buildLayerLog(frames, layers, opTypes, func(f, l, i int) float32 {
		return float32(f + l + i)
	})
	// Three devices own disjoint global frame thirds: d0 healthy, d1 drifted
	// + disagreeing, d2 healthy.
	mkShard := func(dev int, bugged bool) *Log {
		full := buildLayerLog(frames, layers, opTypes, func(f, l, i int) float32 {
			v := float32(f + l + i)
			if bugged {
				v += 40
			}
			return v
		})
		shard := &Log{}
		for _, r := range full.Records {
			if r.Frame%3 != dev {
				continue
			}
			if bugged && r.Key == KeyModelOutput {
				out := tensor.New(tensor.F32, 4)
				out.F[(r.Frame+1)%4] = 1
				r.EncodeTensor(out, true)
			}
			shard.Records = append(shard.Records, r)
		}
		return shard
	}
	shards := []DeviceShardLog{
		{Device: "d0-Pixel4", Log: mkShard(0, false)},
		{Device: "d1-Pixel3", Log: mkShard(1, true)},
		{Device: "d2-Emulator", Log: mkShard(2, false)},
	}
	opts := DefaultValidateOptions()
	want, err := FleetValidate(shards, ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Flagged) != 1 || want.Flagged[0] != "d1-Pixel3" {
		t.Fatalf("offline fleet report flags %v, want exactly d1-Pixel3", want.Flagged)
	}

	fv, err := NewFleetStreamValidator(ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: deal one record from each device in turn until all streams
	// drain — the worst-case arrival order the collector must tolerate.
	idx := make([]int, len(shards))
	for {
		progressed := false
		for d, shard := range shards {
			if idx[d] >= len(shard.Log.Records) {
				continue
			}
			if err := fv.Session(shard.Device).Consume(shard.Log.Records[idx[d]]); err != nil {
				t.Fatal(err)
			}
			idx[d]++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	got, err := fv.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed fleet report differs from offline:\nstream: %+v\noffline: %+v", got, want)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("serialized fleet reports differ:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

// TestStreamValidatorResetReplay pins the reset/replay seam durable
// collectors build on: after Reset, re-consuming the same stream yields a
// report identical (JSON-byte) to the first pass — the validator is
// indistinguishable from a fresh session while keeping the shared reference
// index. The fleet variant drops all sessions the same way.
func TestStreamValidatorResetReplay(t *testing.T) {
	edge, ref := driftedLogs(5)
	opts := DefaultValidateOptions()

	sv := NewStreamValidator(ref, opts)
	streamFrames(t, sv, edge)
	sv.AddBytes(123)
	first, err := sv.Report()
	if err != nil {
		t.Fatal(err)
	}
	firstJSON, _ := json.Marshal(first)

	sv.Reset()
	if sv.Records() != 0 || sv.Bytes() != 0 {
		t.Errorf("after Reset: records=%d bytes=%d, want 0/0", sv.Records(), sv.Bytes())
	}
	if _, err := sv.Report(); err == nil {
		t.Error("report on a reset validator succeeded (state retained?)")
	}

	// Replay: the same stream through the same validator.
	streamFrames(t, sv, edge)
	replayed, err := sv.Report()
	if err != nil {
		t.Fatal(err)
	}
	replayedJSON, _ := json.Marshal(replayed)
	if !bytes.Equal(firstJSON, replayedJSON) {
		t.Errorf("reset+replay report differs:\nfirst:    %s\nreplayed: %s", firstJSON, replayedJSON)
	}

	// Fleet: Reset drops sessions but keeps the reference; replaying the
	// same device streams rebuilds an identical fleet report.
	fv, err := NewFleetStreamValidator(ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	streamFrames(t, fv.Session("dev-a"), edge)
	streamFrames(t, fv.Session("dev-b"), ref)
	wantRep, err := fv.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(wantRep)
	fv.Reset()
	if n := len(fv.Sessions()); n != 0 {
		t.Errorf("after fleet Reset: %d sessions, want 0", n)
	}
	streamFrames(t, fv.Session("dev-a"), edge)
	streamFrames(t, fv.Session("dev-b"), ref)
	gotRep, err := fv.Report()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(gotRep)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("fleet reset+replay report differs:\nfirst:    %s\nreplayed: %s", wantJSON, gotJSON)
	}
}

// TestStreamValidatorBoundedMemory pins the memory contract: per-layer
// tensor payloads are folded and dropped, so the retained evidence does not
// grow with the per-layer telemetry volume.
func TestStreamValidatorBoundedMemory(t *testing.T) {
	edge, ref := driftedLogs(64)
	sv := NewStreamValidator(ref, DefaultValidateOptions())
	streamFrames(t, sv, edge)
	retained := 0
	for _, r := range sv.retain.Records {
		retained += len(r.Payload)
	}
	streamed := 0
	for _, r := range edge.Records {
		streamed += len(r.Payload)
	}
	// The stream is dominated by per-layer tensors; retention must hold only
	// the leading boundary window (here: the small model outputs).
	if retained*10 > streamed {
		t.Errorf("retained %d payload bytes of %d streamed — per-layer telemetry leaked into retention", retained, streamed)
	}
	for _, r := range sv.retain.Records {
		if r.Kind == KindTensor && r.Frame > DefaultRetainBoundaryFrames {
			t.Errorf("tensor record %q frame %d retained beyond the boundary window", r.Key, r.Frame)
		}
	}
}

// TestOpenLogGzip pins transparent decompression: gzip-wrapped logs in both
// encodings read back identically to their plain forms, and the reported
// format is the inner log's.
func TestOpenLogGzip(t *testing.T) {
	edge, _ := driftedLogs(3)
	for _, format := range []LogFormat{FormatJSONL, FormatBinary} {
		var plain bytes.Buffer
		if err := edge.Write(&plain, format); err != nil {
			t.Fatal(err)
		}
		var zipped bytes.Buffer
		zw := gzip.NewWriter(&zipped)
		if _, err := zw.Write(plain.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if zipped.Len() >= plain.Len() {
			t.Errorf("%v: gzip did not shrink the log (%d vs %d bytes)", format, zipped.Len(), plain.Len())
		}
		back, gotFormat, err := ReadLogWithFormat(&zipped)
		if err != nil {
			t.Fatalf("%v: read gzip log: %v", format, err)
		}
		if gotFormat != format {
			t.Errorf("gzip %v detected as %v", format, gotFormat)
		}
		if !reflect.DeepEqual(back.Records, edge.Records) {
			t.Errorf("%v: gzip round trip changed records", format)
		}
	}
}

// TestFleetStreamValidatorRefRequirements pins the constructor errors shared
// with FleetValidate: a reference without model outputs cannot anchor fleet
// validation.
func TestFleetStreamValidatorRefRequirements(t *testing.T) {
	empty := &Log{Records: []Record{{Key: "x", Kind: KindMetric, Value: 1}}}
	if _, err := NewFleetStreamValidator(empty, DefaultValidateOptions()); err == nil {
		t.Error("fleet stream validator accepted a reference without outputs")
	}
	if _, err := FleetValidate([]DeviceShardLog{{Device: "d", Log: empty}}, empty, DefaultValidateOptions()); err == nil {
		t.Error("FleetValidate accepted a reference without outputs")
	}
}

// TestMergeFleetSnapshotsByteIdentical pins the sharded-ingest merge
// contract: splitting the fleet's sessions across N validators (as a
// consistent-hash ring would), exporting each shard's Snapshots through a
// JSON round trip (the /fleet/export wire), and merging them must yield a
// report byte-identical to the single validator that held every session —
// for every shard count, in any concatenation order.
func TestMergeFleetSnapshotsByteIdentical(t *testing.T) {
	layers := []string{"conv1", "dw1"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D"}
	const frames = 12
	ref := buildLayerLog(frames, layers, opTypes, func(f, l, i int) float32 {
		return float32(f + l + i)
	})
	mkShard := func(dev int, bugged bool) *Log {
		full := buildLayerLog(frames, layers, opTypes, func(f, l, i int) float32 {
			v := float32(f + l + i)
			if bugged {
				v += 40
			}
			return v
		})
		shard := &Log{}
		for _, r := range full.Records {
			if r.Frame%4 != dev {
				continue
			}
			if bugged && r.Key == KeyModelOutput {
				out := tensor.New(tensor.F32, 4)
				out.F[(r.Frame+1)%4] = 1
				r.EncodeTensor(out, true)
			}
			shard.Records = append(shard.Records, r)
		}
		return shard
	}
	devices := []DeviceShardLog{
		{Device: "d0-Pixel4", Log: mkShard(0, false)},
		{Device: "d1-Pixel3", Log: mkShard(1, true)},
		{Device: "d2-Emulator", Log: mkShard(2, false)},
		{Device: "d3-Nano", Log: mkShard(3, false)},
	}
	opts := DefaultValidateOptions()

	feed := func(fv *FleetStreamValidator, shards []DeviceShardLog) {
		for _, sh := range shards {
			s := fv.Session(sh.Device)
			for _, r := range sh.Log.Records {
				if err := s.Consume(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	single, err := NewFleetStreamValidator(ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	feed(single, devices)
	want, err := single.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, shardCount := range []int{1, 2, 4} {
		// Deal devices across shards round-robin — placement does not matter,
		// only the union of snapshots.
		fvs := make([]*FleetStreamValidator, shardCount)
		for i := range fvs {
			fv, err := NewFleetStreamValidator(ref, opts)
			if err != nil {
				t.Fatal(err)
			}
			fvs[i] = fv
		}
		for d, sh := range devices {
			feed(fvs[d%shardCount], []DeviceShardLog{sh})
		}
		// Concatenate snapshots shard by shard, reversed, through a JSON
		// round trip — the exact wire an aggregator gateway sees.
		var snaps []FleetSessionSnapshot
		for i := shardCount - 1; i >= 0; i-- {
			wire, err := json.Marshal(fvs[i].Snapshots())
			if err != nil {
				t.Fatal(err)
			}
			var back []FleetSessionSnapshot
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, back...)
		}
		got, err := MergeFleetSnapshots(snaps, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%d-shard merged report differs from single validator:\nmerged: %s\nsingle: %s", shardCount, gotJSON, wantJSON)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d-shard merged report struct differs from single validator", shardCount)
		}
	}

	// A snapshot carrying a poisoned output analysis must surface the same
	// error message a local report raises.
	if _, err := MergeFleetSnapshots([]FleetSessionSnapshot{{Device: "bad", OutputErr: "boom"}}, opts); err == nil {
		t.Error("merge accepted a snapshot with a poisoned output analysis")
	}
	if _, err := MergeFleetSnapshots(nil, opts); err == nil {
		t.Error("merge accepted an empty snapshot set")
	}
}
