package core

import (
	"bytes"
	"testing"

	"mlexray/internal/tensor"
)

func TestSetNextFrameAndDrain(t *testing.T) {
	m := NewMonitor()
	m.SetNextFrame(7)
	if got := m.NextFrame(); got != 7 {
		t.Fatalf("NextFrame after SetNextFrame(7) = %d", got)
	}
	m.LogMetric("a", 1, "u")
	m.LogMetric("b", 2, "u")
	recs := m.Drain()
	if len(recs) != 2 {
		t.Fatalf("drained %d records", len(recs))
	}
	if recs[0].Frame != 7 || recs[1].Frame != 7 {
		t.Errorf("drained frames = %d, %d, want 7", recs[0].Frame, recs[1].Frame)
	}
	if len(m.Log().Records) != 0 {
		t.Error("Drain left records behind")
	}
	// The sequence counter survives a drain, so later records keep
	// monotonically increasing shard-local seq.
	m.LogMetric("c", 3, "u")
	if got := m.Log().Records[0].Seq; got != 2 {
		t.Errorf("post-drain seq = %d, want 2", got)
	}
}

func TestMergeByFrame(t *testing.T) {
	// Two shards that processed interleaved frames, each in increasing
	// order — the parallel replay shape.
	shardA := &Log{Records: []Record{
		{Seq: 0, Frame: 1, Key: "x"},
		{Seq: 1, Frame: 1, Key: "y"},
		{Seq: 2, Frame: 3, Key: "x"},
	}}
	shardB := &Log{Records: []Record{
		{Seq: 0, Frame: 2, Key: "x"},
		{Seq: 1, Frame: 4, Key: "x"},
	}}
	merged := MergeByFrame(shardA, shardB)
	wantFrames := []int{1, 1, 2, 3, 4}
	if len(merged.Records) != len(wantFrames) {
		t.Fatalf("merged %d records", len(merged.Records))
	}
	for i, r := range merged.Records {
		if r.Frame != wantFrames[i] {
			t.Errorf("record %d frame = %d, want %d", i, r.Frame, wantFrames[i])
		}
		if r.Seq != i {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i)
		}
	}
	// Intra-frame order preserved (stable merge).
	if merged.Records[0].Key != "x" || merged.Records[1].Key != "y" {
		t.Error("intra-frame order not preserved")
	}
}

func TestJSONLSinkMatchesWriteJSONL(t *testing.T) {
	m := NewMonitor(WithCaptureMode(CaptureFull))
	tt := tensor.FromFloats([]float32{1, 2, 3, 4}, 2, 2)
	for f := 0; f < 3; f++ {
		m.NextFrame()
		m.LogTensor("t", tt)
		m.LogMetric("m", float64(f), "u")
	}
	l := m.Log()
	var want bytes.Buffer
	if err := l.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	sink := NewJSONLSink(&got)
	for f := 1; f <= 3; f++ {
		if err := sink.WriteFrame(f, l.ByFrame(f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("sink output differs from WriteJSONL")
	}
	if sink.Records() != len(l.Records) {
		t.Errorf("sink.Records() = %d, want %d", sink.Records(), len(l.Records))
	}
	if sink.Bytes() != want.Len() {
		t.Errorf("sink.Bytes() = %d, want %d", sink.Bytes(), want.Len())
	}
	// And the stream reads back as a log.
	back, err := ReadJSONL(&got)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(l.Records) {
		t.Errorf("read back %d records, want %d", len(back.Records), len(l.Records))
	}
}
