package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mlexray/internal/tensor"
)

func TestSetNextFrameAndDrain(t *testing.T) {
	m := NewMonitor()
	m.SetNextFrame(7)
	if got := m.NextFrame(); got != 7 {
		t.Fatalf("NextFrame after SetNextFrame(7) = %d", got)
	}
	m.LogMetric("a", 1, "u")
	m.LogMetric("b", 2, "u")
	recs := m.Drain()
	if len(recs) != 2 {
		t.Fatalf("drained %d records", len(recs))
	}
	if recs[0].Frame != 7 || recs[1].Frame != 7 {
		t.Errorf("drained frames = %d, %d, want 7", recs[0].Frame, recs[1].Frame)
	}
	if len(m.Log().Records) != 0 {
		t.Error("Drain left records behind")
	}
	// The sequence counter survives a drain, so later records keep
	// monotonically increasing shard-local seq.
	m.LogMetric("c", 3, "u")
	if got := m.Log().Records[0].Seq; got != 2 {
		t.Errorf("post-drain seq = %d, want 2", got)
	}
}

func TestMergeByFrame(t *testing.T) {
	// Two shards that processed interleaved frames, each in increasing
	// order — the parallel replay shape.
	shardA := &Log{Records: []Record{
		{Seq: 0, Frame: 1, Key: "x"},
		{Seq: 1, Frame: 1, Key: "y"},
		{Seq: 2, Frame: 3, Key: "x"},
	}}
	shardB := &Log{Records: []Record{
		{Seq: 0, Frame: 2, Key: "x"},
		{Seq: 1, Frame: 4, Key: "x"},
	}}
	merged := MergeByFrame(shardA, shardB)
	wantFrames := []int{1, 1, 2, 3, 4}
	if len(merged.Records) != len(wantFrames) {
		t.Fatalf("merged %d records", len(merged.Records))
	}
	for i, r := range merged.Records {
		if r.Frame != wantFrames[i] {
			t.Errorf("record %d frame = %d, want %d", i, r.Frame, wantFrames[i])
		}
		if r.Seq != i {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i)
		}
	}
	// Intra-frame order preserved (stable merge).
	if merged.Records[0].Key != "x" || merged.Records[1].Key != "y" {
		t.Error("intra-frame order not preserved")
	}
}

func TestJSONLSinkMatchesWriteJSONL(t *testing.T) {
	m := NewMonitor(WithCaptureMode(CaptureFull))
	tt := tensor.FromFloats([]float32{1, 2, 3, 4}, 2, 2)
	for f := 0; f < 3; f++ {
		m.NextFrame()
		m.LogTensor("t", tt)
		m.LogMetric("m", float64(f), "u")
	}
	l := m.Log()
	var want bytes.Buffer
	if err := l.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	sink := NewJSONLSink(&got)
	for f := 1; f <= 3; f++ {
		if err := sink.WriteFrame(f, l.ByFrame(f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("sink output differs from WriteJSONL")
	}
	if sink.Records() != len(l.Records) {
		t.Errorf("sink.Records() = %d, want %d", sink.Records(), len(l.Records))
	}
	if sink.Bytes() != want.Len() {
		t.Errorf("sink.Bytes() = %d, want %d", sink.Bytes(), want.Len())
	}
	// And the stream reads back as a log.
	back, err := ReadJSONL(&got)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(l.Records) {
		t.Errorf("read back %d records, want %d", len(back.Records), len(l.Records))
	}
}

// TestPreEncodeMatchesWriteFrame pins the FramePreEncoder contract: for any
// frame and sequence base, WritePreEncoded over worker-marshaled lines
// produces exactly the bytes WriteFrame produces after assigning the same
// sequence numbers — including multi-digit seq patches and base64 payloads.
func TestPreEncodeMatchesWriteFrame(t *testing.T) {
	m := NewMonitor(WithCaptureMode(CaptureFull), WithPerLayer(true))
	tt := tensor.FromFloats([]float32{1.5, -2.25, 3, 4}, 2, 2)
	qt := tensor.New(tensor.U8, 4)
	copy(qt.U, []byte{0, 7, 130, 255})
	for f := 0; f < 3; f++ {
		m.NextFrame()
		m.LogTensorFull(KeyPreprocessOutput, tt)
		m.LogTensor("layer/q/output", qt)
		m.LogMetric(KeyInferenceLatency, float64(100+f), "ns")
		m.LogSensor(KeySensorOrientation, 90, "deg")
	}
	l := m.Log()

	// Start the sequence high so the patch replaces a multi-digit number.
	const seqBase = 4095
	var want bytes.Buffer
	wantSink := NewJSONLSink(&want)
	seq := seqBase
	for f := 1; f <= 3; f++ {
		recs := l.ByFrame(f)
		for i := range recs {
			recs[i].Seq = seq + i
		}
		if err := wantSink.WriteFrame(f, recs); err != nil {
			t.Fatal(err)
		}
		seq += len(recs)
	}
	if err := wantSink.Flush(); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	sink := NewJSONLSink(&got)
	seq = seqBase
	for f := 1; f <= 3; f++ {
		recs := l.ByFrame(f)
		// Scramble Seq to prove pre-encoding ignores it.
		for i := range recs {
			recs[i].Seq = -99
		}
		pf, err := sink.PreEncodeFrame(recs)
		if err != nil {
			t.Fatal(err)
		}
		if pf.Records() != len(recs) {
			t.Fatalf("pre-encoded %d records, want %d", pf.Records(), len(recs))
		}
		if err := sink.WritePreEncoded(f, pf, seq); err != nil {
			t.Fatal(err)
		}
		seq += len(recs)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("pre-encoded stream differs from WriteFrame stream")
	}
	if sink.Records() != len(l.Records) {
		t.Errorf("sink.Records() = %d, want %d", sink.Records(), len(l.Records))
	}
	back, err := ReadJSONL(&got)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(l.Records) {
		t.Fatalf("read back %d records, want %d", len(back.Records), len(l.Records))
	}
	if s := back.Records[0].Seq; s != seqBase {
		t.Errorf("first read-back seq = %d, want %d", s, seqBase)
	}
}

// TestBinarySinkMatchesWriteBinary is the binary twin of the JSONL sink
// parity test: streaming frame by frame produces the same bytes as writing
// the accumulated log at the end, for either sink constructor.
func TestBinarySinkMatchesWriteBinary(t *testing.T) {
	m := NewMonitor(WithCaptureMode(CaptureFull))
	tt := tensor.FromFloats([]float32{1, 2, 3, 4}, 2, 2)
	for f := 0; f < 3; f++ {
		m.NextFrame()
		m.LogTensor("t", tt)
		m.LogMetric("m", float64(f), "u")
	}
	l := m.Log()
	var want bytes.Buffer
	if err := l.WriteBinary(&want); err != nil {
		t.Fatal(err)
	}

	for _, mk := range []func(w *bytes.Buffer) LogSink{
		func(w *bytes.Buffer) LogSink { return NewBinarySink(w) },
		func(w *bytes.Buffer) LogSink {
			s, err := NewLogSink(w, FormatBinary)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		var got bytes.Buffer
		sink := mk(&got)
		if sink.Format() != FormatBinary {
			t.Errorf("Format() = %v", sink.Format())
		}
		for f := 1; f <= 3; f++ {
			if err := sink.WriteFrame(f, l.ByFrame(f)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Error("sink output differs from WriteBinary")
		}
		if sink.Records() != len(l.Records) || sink.Bytes() != want.Len() {
			t.Errorf("sink stats = %d records / %d bytes, want %d / %d",
				sink.Records(), sink.Bytes(), len(l.Records), want.Len())
		}
		back, err := ReadLog(&got)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Records) != len(l.Records) {
			t.Errorf("read back %d records, want %d", len(back.Records), len(l.Records))
		}
	}
}

// TestMonitorSpillMode checks WithSink: the spill-mode stream is
// byte-identical to an accumulate-then-write run of the same capture, the
// monitor's buffer stays one frame deep, and Flush delivers the final frame.
func TestMonitorSpillMode(t *testing.T) {
	capture := func(m *Monitor) {
		tt := tensor.New(tensor.F32, 64)
		for i := range tt.F {
			tt.F[i] = float32(i) * 0.5
		}
		for f := 0; f < 4; f++ {
			m.NextFrame()
			m.LogTensorFull(KeyPreprocessOutput, tt)
			m.LogMetric(KeyInferenceModeled, float64(1000*f), "ns-modeled")
		}
	}

	ref := NewMonitor(WithCaptureMode(CaptureFull))
	capture(ref)
	var want bytes.Buffer
	if err := ref.Log().WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	for _, format := range []LogFormat{FormatJSONL, FormatBinary} {
		var got bytes.Buffer
		sink, err := NewLogSink(&got, format)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMonitor(WithCaptureMode(CaptureFull), WithSink(sink))
		capture(m)
		// Before Flush the final frame is the only thing buffered.
		if n := len(m.Log().Records); n != 2 {
			t.Errorf("%v: %d records buffered mid-capture, want one frame (2)", format, n)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
		if n := len(m.Log().Records); n != 0 {
			t.Errorf("%v: %d records left after Flush", format, n)
		}
		back, err := ReadLog(&got)
		if err != nil {
			t.Fatal(err)
		}
		var backJSONL bytes.Buffer
		if err := back.WriteJSONL(&backJSONL); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(backJSONL.Bytes(), want.Bytes()) {
			t.Errorf("%v: spill-mode log differs from accumulated log", format)
		}
	}
}

// failSink fails every write; spill mode must retain the first error and
// surface it from Flush.
type failSink struct{ calls int }

func (s *failSink) WriteFrame(frame int, recs []Record) error {
	s.calls++
	return fmt.Errorf("disk full")
}

func (s *failSink) Flush() error { return nil }

// TestMonitorResetDetachesSink pins the Reset contract in spill mode: the
// sink is detached (restarted frame numbering would violate its increasing-
// frame-order contract) and unspilled records are discarded, not written.
func TestMonitorResetDetachesSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	m := NewMonitor(WithSink(sink))
	m.NextFrame()
	m.LogMetric("a", 1, "u")
	m.Reset()
	m.NextFrame()
	m.LogMetric("b", 2, "u")
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Records() != 0 {
		t.Errorf("detached sink received %d records after Reset", sink.Records())
	}
	// Post-Reset telemetry accumulates in memory as on a fresh monitor.
	if got := len(m.Log().Records); got != 1 {
		t.Errorf("post-Reset log has %d records, want 1", got)
	}
}

func TestMonitorSpillModeSinkError(t *testing.T) {
	sink := &failSink{}
	m := NewMonitor(WithSink(sink))
	m.NextFrame()
	m.LogMetric("a", 1, "u")
	m.NextFrame() // first spill fails
	m.LogMetric("b", 2, "u")
	if err := m.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush = %v, want the sink error", err)
	}
	if sink.calls != 1 {
		t.Errorf("sink called %d times after failing, want 1 (no out-of-order writes)", sink.calls)
	}
}
