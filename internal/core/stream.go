package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mlexray/internal/tensor"
)

// This file is the incremental half of the deployment validator: the
// StreamValidator consumes one telemetry stream record by record — frames
// arriving from a live device upload, not a log file on disk — and rolls the
// validation analyses up as it goes, so the final Report is available the
// moment the stream ends without ever holding the stream in memory. The
// offline entry points (Validate, FleetValidate) delegate to the same
// accumulators, which is what pins the streaming and offline reports to each
// other: they are one code path, not two implementations kept in sync by
// hand.
//
// Memory contract: per-layer telemetry — the megabytes-per-frame part of a
// full-capture log — is folded into fixed-size per-layer accumulators and
// dropped. What grows with the stream is bounded evidence: one argmax per
// frame (output agreement), scalar metrics (assertion evidence), and the
// boundary tensors of the first few frames (what the built-in root-cause
// assertions sample). A million-frame upload costs megabytes of state, not
// the gigabytes the log itself serializes to.

// refIndex precomputes the reference-side lookups every stream consumer
// needs: per-(frame, key) layer tensor records, per-frame output argmax, and
// the per-layer modeled-latency means. One refIndex is shared read-only by
// all sessions validating against the same reference log.
type refIndex struct {
	ref    *Log
	frames int
	layer  map[refKey]*Record
	outArg map[int]int
	// outErr is the first output-record decode error, in log order —
	// propagated by the fleet path (outputArgmaxByFrame semantics), skipped
	// by the per-stream agreement (FirstTensor-per-frame semantics, where a
	// frame that fails to decode is simply not compared).
	outErr error
	lat    map[string]float64
}

type refKey struct {
	frame int
	key   string
}

func newRefIndex(ref *Log) *refIndex {
	ri := &refIndex{
		ref:    ref,
		frames: ref.Frames(),
		layer:  make(map[refKey]*Record),
		outArg: make(map[int]int),
	}
	seenOut := make(map[int]bool)
	for i := range ref.Records {
		r := &ref.Records[i]
		if r.Kind != KindTensor {
			continue
		}
		if strings.HasPrefix(r.Key, keyLayerPrefix) {
			ri.layer[refKey{r.Frame, r.Key}] = r
			continue
		}
		if r.Key == KeyModelOutput && !seenOut[r.Frame] {
			seenOut[r.Frame] = true
			t, err := r.DecodeTensor()
			if err != nil {
				if ri.outErr == nil {
					ri.outErr = err
				}
				continue
			}
			ri.outArg[r.Frame] = t.ArgMax()
		}
	}
	ri.lat = meanLayerLatencyModeled(ref)
	return ri
}

// layerAcc accumulates one layer's drift across frames — the streaming form
// of CompareLayers' per-key accumulator.
type layerAcc struct {
	diff LayerDiff
	sumN float64
	sumR float64
	maxA float64
	n    int
}

// layerDiffState is the incremental CompareLayers: each consumed edge layer
// record is matched against the reference index and folded into its layer's
// accumulator. A record that fails to decode or compare poisons the whole
// analysis (sticky error), exactly as the offline CompareLayers aborts on
// the first bad record.
type layerDiffState struct {
	accs  map[string]*layerAcc
	order []string
	err   error
}

func (s *layerDiffState) consume(er *Record, ri *refIndex) error {
	if s.err != nil {
		return nil
	}
	rr, ok := ri.layer[refKey{er.Frame, er.Key}]
	if !ok {
		return nil
	}
	et, err := er.DecodeTensor()
	if err != nil {
		s.err = err
		return err
	}
	rt, err := rr.DecodeTensor()
	if err != nil {
		s.err = err
		return err
	}
	et = dequantIfNeeded(et, er)
	rt = dequantIfNeeded(rt, rr)
	if et.Len() != rt.Len() {
		return nil
	}
	nrmse, err := tensor.NormalizedRMSE(et, rt)
	if err != nil {
		s.err = err
		return err
	}
	rmse, _ := tensor.RMSE(et, rt)
	maxA, _ := tensor.MaxAbsDiff(et, rt)
	a, ok := s.accs[er.Key]
	if !ok {
		if s.accs == nil {
			s.accs = make(map[string]*layerAcc)
		}
		a = &layerAcc{diff: LayerDiff{Index: er.LayerIndex, Name: er.LayerName, OpType: er.OpType}}
		s.accs[er.Key] = a
		s.order = append(s.order, er.Key)
	}
	a.sumN += nrmse
	a.sumR += rmse
	if maxA > a.maxA {
		a.maxA = maxA
	}
	a.n++
	return nil
}

// finalize builds the per-layer diff table the accumulators hold so far. It
// does not consume the state: a status endpoint can call it mid-stream and
// the final report later.
func (s *layerDiffState) finalize() ([]LayerDiff, error) {
	if s.err != nil {
		return nil, s.err
	}
	if len(s.accs) == 0 {
		return nil, fmt.Errorf("core: logs share no per-layer tensor records (was per-layer capture enabled?)")
	}
	diffs := make([]LayerDiff, 0, len(s.accs))
	for _, key := range s.order {
		a := s.accs[key]
		d := a.diff
		d.NRMSE = a.sumN / float64(a.n)
		d.RMSE = a.sumR / float64(a.n)
		d.MaxAbs = a.maxA
		d.Frames = a.n
		diffs = append(diffs, d)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Index < diffs[j].Index })
	return diffs, nil
}

// outputState tracks per-frame output argmax incrementally: the first output
// tensor record of each frame decides the frame (later duplicates are
// ignored, matching FirstTensor), and maxFrame tracks the stream's frame
// count across all records.
type outputState struct {
	arg      map[int]int
	seen     map[int]bool
	maxFrame int
	// argErr is the first output decode error, sticky — the fleet rollup
	// propagates it (outputArgmaxByFrame), the agreement rollup skips the
	// frame (FirstTensor error semantics).
	argErr error
}

func (s *outputState) consume(r *Record) error {
	if r.Frame > s.maxFrame {
		s.maxFrame = r.Frame
	}
	if r.Kind != KindTensor || r.Key != KeyModelOutput {
		return nil
	}
	if s.seen[r.Frame] {
		return nil
	}
	if s.seen == nil {
		s.seen = make(map[int]bool)
		s.arg = make(map[int]int)
	}
	s.seen[r.Frame] = true
	t, err := r.DecodeTensor()
	if err != nil {
		if s.argErr == nil {
			s.argErr = err
		}
		return err
	}
	s.arg[r.Frame] = t.ArgMax()
	return nil
}

// frames is the stream's frame count so far (max frame tag + 1, like
// Log.Frames).
func (s *outputState) frames() int { return s.maxFrame + 1 }

// latAcc accumulates one layer's latency records.
type latAcc struct {
	sum float64
	n   int
}

// stragglerState is the incremental Stragglers analysis: per-layer latency
// sums in first-seen order.
type stragglerState struct {
	byLayer map[string]*latAcc
	order   []string
	// modeledSum/modeledN mirror meanLayerLatencyModeled for the
	// vs-reference comparison (only "ns-modeled" records are comparable
	// across runs).
	modeledSum map[string]float64
	modeledN   map[string]int
}

func (s *stragglerState) consume(r *Record) {
	ll, ok := s.byLayer[r.LayerName]
	if !ok {
		if s.byLayer == nil {
			s.byLayer = make(map[string]*latAcc)
			s.modeledSum = make(map[string]float64)
			s.modeledN = make(map[string]int)
		}
		ll = &latAcc{}
		s.byLayer[r.LayerName] = ll
		s.order = append(s.order, r.LayerName)
	}
	ll.sum += r.Value
	ll.n++
	if r.Unit == "ns-modeled" {
		s.modeledSum[r.LayerName] += r.Value
		s.modeledN[r.LayerName]++
	}
}

// finalize returns the layers whose mean latency exceeds factor times the
// median — the incremental Stragglers.
func (s *stragglerState) finalize(factor float64) []string {
	if len(s.byLayer) == 0 {
		return nil
	}
	means := make([]float64, 0, len(s.byLayer))
	for _, ll := range s.byLayer {
		means = append(means, ll.sum/float64(ll.n))
	}
	sort.Float64s(means)
	median := means[len(means)/2]
	var out []string
	for _, name := range s.order {
		ll := s.byLayer[name]
		if median > 0 && ll.sum/float64(ll.n) >= factor*median {
			out = append(out, name)
		}
	}
	return out
}

// vsReference returns the layers whose modeled-latency slowdown vs the
// reference exceeds factor times the median slowdown — the incremental
// StragglersVsReference.
func (s *stragglerState) vsReference(ri *refIndex, factor float64) []string {
	type ratioEntry struct {
		name  string
		ratio float64
	}
	var entries []ratioEntry
	for name, sum := range s.modeledSum {
		e := sum / float64(s.modeledN[name])
		if r, ok := ri.lat[name]; ok && r > 0 {
			entries = append(entries, ratioEntry{name, e / r})
		}
	}
	if len(entries) == 0 {
		return nil
	}
	ratios := make([]float64, len(entries))
	for i, e := range entries {
		ratios[i] = e.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median <= 0 {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.ratio >= factor*median {
			out = append(out, e.name)
		}
	}
	sort.Strings(out)
	return out
}

// DefaultRetainBoundaryFrames is how many leading frames keep their boundary
// tensor records (preprocess/model inputs and outputs) for the assertion
// pass. The built-in assertions sample at most the first three frames that
// carry preprocessing records in both logs, so the default leaves headroom
// without growing with the stream.
const DefaultRetainBoundaryFrames = 8

// StreamValidator is the incremental deployment validator: it consumes one
// device's telemetry stream record by record (frames in increasing order, as
// every log codec and sink emits them) and maintains the rollups the
// validation Report is computed from — output agreement, per-layer drift,
// straggler latency — in bounded memory. Report may be called at any point:
// mid-stream for a live status, and after the last record for the final
// report, which is pinned identical to running the offline Validate over the
// same records (Validate itself delegates here).
//
// Per-layer tensor payloads are folded into accumulators and dropped;
// boundary tensors are retained for the first DefaultRetainBoundaryFrames
// frames and scalar metrics throughout, which is the evidence the built-in
// root-cause assertions read. A custom Assertion that scans full tensors
// beyond the retained window will see them missing in streaming mode — run
// such assertions offline on the stored log instead.
//
// A StreamValidator is also a Sink (WriteFrame/Flush), so a replay can
// stream straight into validation without a log file in between. All methods
// are safe for concurrent use; records of one stream must still be consumed
// in log order for the report to be meaningful.
type StreamValidator struct {
	mu   sync.Mutex
	ri   *refIndex
	opts ValidateOptions

	device  string
	out     outputState
	layers  layerDiffState
	strag   stragglerState
	infSum  float64 // KeyInferenceModeled rollup (fleet latency column)
	infN    int
	retain  Log
	records int
	bytes   int
	// deferLayers (offline Validate only) skips per-layer drift during
	// consumption; reportLocked replays the layer records from the full log
	// if — and only if — agreement drops below threshold. A live stream
	// cannot defer (the records are gone once consumed), so streaming
	// validators always fold drift as frames arrive.
	deferLayers bool
}

// NewStreamValidator builds an incremental validator that checks a telemetry
// stream against the reference log. The reference is indexed once up front;
// use NewFleetStreamValidator to share one reference across many device
// sessions.
func NewStreamValidator(ref *Log, opts ValidateOptions) *StreamValidator {
	return &StreamValidator{ri: newRefIndex(ref), opts: opts, out: outputState{maxFrame: -1}}
}

func newSessionValidator(ri *refIndex, opts ValidateOptions, device string) *StreamValidator {
	return &StreamValidator{ri: ri, opts: opts, device: device, out: outputState{maxFrame: -1}}
}

// Device returns the device name the session was opened under (empty for a
// standalone validator).
func (v *StreamValidator) Device() string { return v.device }

// Reset clears every accumulated rollup — output argmaxes, layer-drift and
// straggler accumulators, retained evidence, byte/record counters — while
// keeping the shared reference index, options and device name. After Reset
// the validator is indistinguishable from a fresh session: re-consuming the
// same records yields an identical Report. This is the replay seam durable
// collectors build on — rebuild a session in place and replay its
// write-ahead log through Consume, instead of constructing a new validator
// against a re-indexed reference.
func (v *StreamValidator) Reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.out = outputState{maxFrame: -1}
	v.layers = layerDiffState{}
	v.strag = stragglerState{}
	v.infSum, v.infN = 0, 0
	v.retain = Log{}
	v.records, v.bytes = 0, 0
}

// Consume folds one record into the rollups. The returned error reports a
// malformed record (an undecodable tensor payload); consumption may continue
// but the analyses the record belonged to are marked poisoned, exactly as
// the offline validator aborts them.
func (v *StreamValidator) Consume(r Record) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.consumeLocked(&r)
}

func (v *StreamValidator) consumeLocked(r *Record) error {
	v.records++
	err := v.out.consume(r)
	if strings.HasPrefix(r.Key, keyLayerPrefix) {
		// Per-layer telemetry: fold and drop — this is the part of the
		// stream whose retention would grow without bound.
		switch {
		case r.Kind == KindTensor:
			if v.deferLayers {
				break
			}
			if lerr := v.layers.consume(r, v.ri); lerr != nil && err == nil {
				err = lerr
			}
		case r.Kind == KindMetric && strings.HasSuffix(r.Key, "/latency_ns"):
			v.strag.consume(r)
		}
		return err
	}
	if (r.Kind == KindMetric || r.Kind == KindSensor) && r.Key == KeyInferenceModeled {
		v.infSum += r.Value
		v.infN++
	}
	// Boundary records are the assertion evidence: scalars are retained
	// throughout (they are what Metric/Sensor queries read), tensors only in
	// the leading window the built-in assertions sample.
	if r.Kind == KindMetric || r.Kind == KindSensor || r.Frame <= DefaultRetainBoundaryFrames {
		v.retain.Records = append(v.retain.Records, *r)
	}
	return err
}

// ConsumeFrame folds one frame's records in order — the Sink-shaped entry
// point the ingest service and replay engines use.
func (v *StreamValidator) ConsumeFrame(frame int, recs []Record) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	var first error
	for i := range recs {
		if err := v.consumeLocked(&recs[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteFrame implements Sink: a replay can stream directly into validation.
func (v *StreamValidator) WriteFrame(frame int, recs []Record) error {
	return v.ConsumeFrame(frame, recs)
}

// Flush implements Sink; the validator holds no buffered output.
func (v *StreamValidator) Flush() error { return nil }

// AddBytes accounts wire bytes received for this stream (the ingest service
// feeds it; purely informational).
func (v *StreamValidator) AddBytes(n int) {
	v.mu.Lock()
	v.bytes += n
	v.mu.Unlock()
}

// Records returns the number of records consumed so far.
func (v *StreamValidator) Records() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.records
}

// Bytes returns the wire bytes accounted via AddBytes.
func (v *StreamValidator) Bytes() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bytes
}

// Frames returns the stream's frame count so far (max frame tag + 1, like
// Log.Frames).
func (v *StreamValidator) Frames() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.out.frames()
}

// Report computes the validation report from the rollups consumed so far —
// the streaming Validate. Safe to call repeatedly; the final call (after the
// last record) returns exactly what Validate would on the full log.
func (v *StreamValidator) Report() (*Report, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	edge := &Log{Records: v.retain.Records}
	return v.reportLocked(edge)
}

// reportLocked assembles the Report; edge is the log handed to assertions
// (the full log offline, the retained skeleton when streaming).
func (v *StreamValidator) reportLocked(edge *Log) (*Report, error) {
	frames := v.out.frames()
	if v.ri.frames < frames {
		frames = v.ri.frames
	}
	if frames == 0 {
		return nil, fmt.Errorf("core: no frames to compare")
	}
	agree, total := 0, 0
	for f := 0; f < frames; f++ {
		ea, okE := v.out.arg[f]
		ra, okR := v.ri.outArg[f]
		if !okE || !okR {
			continue
		}
		total++
		if ea == ra {
			agree++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("core: logs carry no model outputs")
	}
	rep := &Report{OutputAgreement: float64(agree) / float64(total)}

	if rep.OutputAgreement < v.opts.AgreementThreshold {
		if v.deferLayers {
			// Deferred offline drift: agreement dropped, so the expensive
			// per-layer analysis is warranted — replay the layer records from
			// the full log, in log order, exactly as streaming would have.
			v.deferLayers = false
			for i := range edge.Records {
				r := &edge.Records[i]
				if r.Kind == KindTensor && strings.HasPrefix(r.Key, keyLayerPrefix) {
					_ = v.layers.consume(r, v.ri)
				}
			}
		}
		diffs, err := v.layers.finalize()
		if err == nil {
			rep.LayerDiffs = diffs
			rep.Suspects = SuspectLayers(diffs, v.opts.NRMSEThreshold)
			if spike, ok := FirstSpike(diffs, v.opts.NRMSEThreshold, 3); ok {
				rep.Spike = &spike
			}
		}
		// Missing per-layer records is not fatal: assertions may still
		// explain the drop from boundary records alone.
	}
	rep.Stragglers = v.strag.finalize(v.opts.StragglerFactor)
	for _, s := range v.strag.vsReference(v.ri, v.opts.StragglerFactor) {
		dup := false
		for _, have := range rep.Stragglers {
			if have == s {
				dup = true
			}
		}
		if !dup {
			rep.Stragglers = append(rep.Stragglers, s)
		}
	}

	ctx := &AssertCtx{Edge: edge, Ref: v.ri.ref, Report: rep}
	for _, a := range v.opts.Assertions {
		if f := a.Check(ctx); f != nil {
			rep.Findings = append(rep.Findings, *f)
		}
	}
	return rep, nil
}

// fleetAcc is what the fleet rollup reads from one session.
type fleetAcc struct {
	agree, total int
	mismatched   []int
}

// fleetAccLocked derives the device-vs-reference agreement tallies from the
// session's output state.
func (v *StreamValidator) fleetAccLocked() fleetAcc {
	var acc fleetAcc
	for frame, got := range v.out.arg {
		want, ok := v.ri.outArg[frame]
		if !ok {
			continue
		}
		acc.total++
		if got == want {
			acc.agree++
		} else {
			acc.mismatched = append(acc.mismatched, frame)
		}
	}
	sort.Ints(acc.mismatched)
	return acc
}

// FleetStreamValidator validates many concurrent device streams against one
// shared reference — the ingest service's server-side state. Each device
// stream gets a Session (a StreamValidator sharing the reference index);
// Report cross-validates the sessions exactly as the offline FleetValidate
// does on complete shard logs (FleetValidate delegates here), flagging the
// devices whose divergence isolates to them.
type FleetStreamValidator struct {
	mu       sync.Mutex
	ri       *refIndex
	opts     ValidateOptions
	sessions []*StreamValidator
	byName   map[string]*StreamValidator
}

// NewFleetStreamValidator indexes the reference log for fleet-wide streaming
// validation. It fails when the reference carries no decodable model outputs
// — nothing could ever be validated against it.
func NewFleetStreamValidator(ref *Log, opts ValidateOptions) (*FleetStreamValidator, error) {
	ri := newRefIndex(ref)
	if ri.outErr != nil {
		return nil, ri.outErr
	}
	if len(ri.outArg) == 0 {
		return nil, fmt.Errorf("core: reference log carries no model outputs")
	}
	return &FleetStreamValidator{ri: ri, opts: opts, byName: make(map[string]*StreamValidator)}, nil
}

// Session returns the named device's stream session, creating it on first
// use. Sessions are independent: concurrent streams from different devices
// consume without contending on the fleet state.
func (f *FleetStreamValidator) Session(device string) *StreamValidator {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byName[device]; ok {
		return s
	}
	s := f.newSessionLocked(device)
	f.byName[device] = s
	return s
}

// newSessionLocked always creates (FleetValidate keeps duplicate-named
// shards distinct; the by-name lookup is the ingest service's semantics).
func (f *FleetStreamValidator) newSessionLocked(device string) *StreamValidator {
	s := newSessionValidator(f.ri, f.opts, device)
	f.sessions = append(f.sessions, s)
	return s
}

// Remove drops the named device's session while keeping every other — the
// fleet half of session eviction: an ingest collector that evicts an idle
// device must also take it out of the fleet report, so a later resurrection
// replays into a fresh session instead of double-folding records into the
// stale one. Reports no session by that name without change.
func (f *FleetStreamValidator) Remove(device string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.byName[device]
	if !ok {
		return false
	}
	delete(f.byName, device)
	for i, candidate := range f.sessions {
		if candidate == s {
			f.sessions = append(f.sessions[:i], f.sessions[i+1:]...)
			break
		}
	}
	return true
}

// Reset drops every session while keeping the shared reference index — the
// fleet half of the replay seam: a recovering collector clears the fleet
// state and replays each device's durable log into fresh sessions without
// paying the reference re-index.
func (f *FleetStreamValidator) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sessions = nil
	f.byName = make(map[string]*StreamValidator)
}

// Sessions returns the open sessions sorted by device name — the stable
// order the fleet report uses regardless of upload interleaving.
func (f *FleetStreamValidator) Sessions() []*StreamValidator {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := append([]*StreamValidator(nil), f.sessions...)
	sort.Slice(out, func(i, j int) bool { return out[i].device < out[j].device })
	return out
}

// Report cross-validates the sessions' streams, in device-name order — the
// streaming FleetValidate. Safe to call repeatedly while uploads continue.
func (f *FleetStreamValidator) Report() (*FleetReport, error) {
	return fleetReportFrom(f.Sessions(), f.opts)
}

// FleetLayerSnapshot is one layer accumulator of a session's drift analysis:
// running sums rather than finished means, so a merged report divides exactly
// once, in the shared finalizer, wherever the session lived. Snapshots list
// layers in first-seen order (the accumulation order), which keeps float
// summation order — and therefore the serialized report bytes — identical
// between a local report and a merge of exported snapshots.
type FleetLayerSnapshot struct {
	Key      string  `json:"key"`
	Index    int     `json:"index"`
	Name     string  `json:"name,omitempty"`
	OpType   string  `json:"op_type,omitempty"`
	SumNRMSE float64 `json:"sum_nrmse"`
	SumRMSE  float64 `json:"sum_rmse"`
	MaxAbs   float64 `json:"max_abs"`
	Frames   int     `json:"frames"`
}

// FleetSessionSnapshot is one device session's fleet-rollup state, exported:
// everything fleetReportFrom reads from a live session, carried as plain
// data. A sharded collector ships these over the wire (ingest's
// /fleet/export) and an aggregator recombines them with MergeFleetSnapshots;
// because Go's JSON encoding round-trips float64 exactly and the merge runs
// the same finalizer as a local Report, the merged report is byte-identical
// to a single collector holding every session.
type FleetSessionSnapshot struct {
	Device string `json:"device"`
	// OutputErr carries the session's sticky output decode error, if any —
	// the merge propagates it exactly as a local report would.
	OutputErr string `json:"output_err,omitempty"`
	// Agree/Total/Mismatched are the device-vs-reference agreement tallies
	// (fleetAcc), Mismatched sorted ascending.
	Agree      int   `json:"agree"`
	Total      int   `json:"total"`
	Mismatched []int `json:"mismatched,omitempty"`
	// Layers is empty when the session has no per-layer capture or its layer
	// analysis is poisoned — both cases a report skips identically.
	Layers []FleetLayerSnapshot `json:"layers,omitempty"`
	// InfSum/InfN accumulate KeyInferenceModeled for the latency column.
	InfSum float64 `json:"inf_sum"`
	InfN   int     `json:"inf_n"`
}

// fleetSnapshotLocked captures the session's fleet-rollup state. The error
// mirrors the session's sticky output decode error; the snapshot carries its
// message either way so a remote merge reports it identically.
func (v *StreamValidator) fleetSnapshotLocked() (FleetSessionSnapshot, error) {
	snap := FleetSessionSnapshot{Device: v.device}
	if err := v.out.argErr; err != nil {
		snap.OutputErr = err.Error()
		return snap, err
	}
	acc := v.fleetAccLocked()
	snap.Agree, snap.Total, snap.Mismatched = acc.agree, acc.total, acc.mismatched
	if v.layers.err == nil {
		for _, key := range v.layers.order {
			a := v.layers.accs[key]
			snap.Layers = append(snap.Layers, FleetLayerSnapshot{
				Key:      key,
				Index:    a.diff.Index,
				Name:     a.diff.Name,
				OpType:   a.diff.OpType,
				SumNRMSE: a.sumN,
				SumRMSE:  a.sumR,
				MaxAbs:   a.maxA,
				Frames:   a.n,
			})
		}
	}
	snap.InfSum, snap.InfN = v.infSum, v.infN
	return snap, nil
}

// FleetSnapshot exports the session's fleet-rollup state for aggregation
// elsewhere. Like Report, it is non-destructive and safe mid-stream.
func (v *StreamValidator) FleetSnapshot() FleetSessionSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	snap, _ := v.fleetSnapshotLocked()
	return snap
}

// Snapshots exports every session's fleet-rollup state in device-name order —
// the per-shard half of a sharded fleet report. MergeFleetSnapshots over the
// union of every shard's Snapshots equals the Report of one validator that
// had held all the sessions.
func (f *FleetStreamValidator) Snapshots() []FleetSessionSnapshot {
	sessions := f.Sessions()
	out := make([]FleetSessionSnapshot, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.FleetSnapshot())
	}
	return out
}

// MergeFleetSnapshots assembles the fleet cross-validation from exported
// session snapshots, sorted by device name — the aggregator half of sharded
// ingest. Feeding it the concatenated Snapshots of N disjoint shards yields
// a report byte-identical (serialized) to a single collector's /fleet over
// the same devices: the snapshots carry accumulator sums, so every division
// and float fold happens once, here, in the same order a local report runs
// them.
func MergeFleetSnapshots(snaps []FleetSessionSnapshot, opts ValidateOptions) (*FleetReport, error) {
	ordered := append([]FleetSessionSnapshot(nil), snaps...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Device < ordered[j].Device })
	return fleetReportFromSnapshots(ordered, opts)
}

// fleetReportFrom assembles the fleet cross-validation over finished (or
// in-flight) sessions, in the order given — the shared finalizer behind
// FleetValidate and FleetStreamValidator.Report. It snapshots each session
// and delegates to the same merge the sharded aggregator uses, so local and
// merged reports cannot drift apart.
func fleetReportFrom(sessions []*StreamValidator, opts ValidateOptions) (*FleetReport, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("core: fleet validation needs at least one device shard")
	}
	snaps := make([]FleetSessionSnapshot, len(sessions))
	for d, s := range sessions {
		s.mu.Lock()
		snap, err := s.fleetSnapshotLocked()
		s.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: device %q shard: %w", s.device, err)
		}
		snaps[d] = snap
	}
	return fleetReportFromSnapshots(snaps, opts)
}

func fleetReportFromSnapshots(snaps []FleetSessionSnapshot, opts ValidateOptions) (*FleetReport, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("core: fleet validation needs at least one device shard")
	}
	sumAgree, sumTotal := 0, 0
	for _, snap := range snaps {
		if snap.OutputErr != "" {
			return nil, fmt.Errorf("core: device %q shard: %s", snap.Device, snap.OutputErr)
		}
		sumAgree += snap.Agree
		sumTotal += snap.Total
	}
	if sumTotal == 0 {
		return nil, fmt.Errorf("core: fleet shards share no output frames with the reference")
	}

	rep := &FleetReport{FleetAgreement: float64(sumAgree) / float64(sumTotal)}
	for _, snap := range snaps {
		dr := FleetDeviceReport{Device: snap.Device, Frames: snap.Total}
		if snap.Total > 0 {
			dr.OutputAgreement = float64(snap.Agree) / float64(snap.Total)
		}
		// Drift rollup: per-layer normalized rMSE against the reference,
		// averaged over the shared layers. Streams without per-layer capture
		// (or with a poisoned layer analysis) skip it.
		if len(snap.Layers) > 0 {
			// Mean in Index order, matching layerDiffState.finalize's sorted
			// diff table, so the fold order (and the serialized float) is the
			// same whether the session was local or imported.
			ordered := append([]FleetLayerSnapshot(nil), snap.Layers...)
			sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
			sum := 0.0
			for _, l := range ordered {
				sum += l.SumNRMSE / float64(l.Frames)
			}
			dr.MeanNRMSE = sum / float64(len(ordered))
			dr.Layers = len(ordered)
		}
		// Latency rollup: modeled inference time, comparable across runs
		// (wall-clock is not).
		if snap.InfN > 0 {
			dr.MeanModeledNs = snap.InfSum / float64(snap.InfN)
		}
		// Cross-device divergence: does the rest of the fleet vouch for the
		// model on the frames this device got wrong? With no other frames
		// to consult (single-device fleets) the rest is vacuously healthy —
		// the report degrades to per-device validation.
		restAgree, restTotal := sumAgree-snap.Agree, sumTotal-snap.Total
		restHealthy := restTotal == 0 || float64(restAgree)/float64(restTotal) >= opts.AgreementThreshold
		if restHealthy && snap.Total > 0 {
			dr.Divergent = snap.Mismatched
			if dr.OutputAgreement < opts.AgreementThreshold {
				dr.Flagged = true
				rep.Flagged = append(rep.Flagged, snap.Device)
			}
		}
		rep.DivergentFrames = append(rep.DivergentFrames, dr.Divergent...)
		rep.Devices = append(rep.Devices, dr)
	}
	sort.Ints(rep.DivergentFrames)
	return rep, nil
}
