package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mlexray/internal/tensor"
)

func TestRecordTensorRoundTrip(t *testing.T) {
	for _, dt := range []tensor.DType{tensor.F32, tensor.U8, tensor.I8, tensor.I32} {
		src := tensor.New(dt, 2, 3)
		for i := 0; i < src.Len(); i++ {
			src.SetAt(float64(i%120-5), i/3, i%3)
		}
		var r Record
		r.Key = "t"
		r.EncodeTensor(src, true)
		back, err := r.DecodeTensor()
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if back.DType != dt || !tensor.SameShape(back.Shape, src.Shape) {
			t.Fatalf("%v: got %v", dt, back)
		}
		for i := 0; i < src.Len(); i++ {
			if src.At(i/3, i%3) != back.At(i/3, i%3) {
				t.Fatalf("%v: value changed at %d", dt, i)
			}
		}
	}
}

func TestRecordStatsOnlyRejectsDecode(t *testing.T) {
	var r Record
	r.EncodeTensor(tensor.New(tensor.F32, 4), false)
	if r.Kind != KindStats {
		t.Errorf("kind = %v", r.Kind)
	}
	if r.Stats == nil {
		t.Error("stats missing")
	}
	if _, err := r.DecodeTensor(); err == nil {
		t.Error("stats-only record decoded as tensor")
	}
}

// Property: JSONL round trip preserves every record.
func TestLogJSONLRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l Log
		for i := 0; i < 10; i++ {
			var r Record
			r.Seq = i
			r.Frame = i / 3
			r.Key = "k" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				tt := tensor.New(tensor.F32, 3)
				tensor.RandUniform(rng, tt, -1, 1)
				r.EncodeTensor(tt, true)
			} else {
				r.Kind = KindMetric
				r.Value = rng.Float64()
			}
			l.Records = append(l.Records, r)
		}
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			return false
		}
		back, err := ReadJSONL(&buf)
		if err != nil || len(back.Records) != len(l.Records) {
			return false
		}
		for i := range l.Records {
			if back.Records[i].Key != l.Records[i].Key || back.Records[i].Kind != l.Records[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("accepted garbage line")
	}
}

func TestMonitorBasicFlow(t *testing.T) {
	m := NewMonitor()
	m.LogSensor(KeySensorOrientation, 90, "deg")
	m.NextFrame()
	tt := tensor.FromFloats([]float32{1, 2, 3}, 3)
	m.LogTensorFull(KeyPreprocessOutput, tt)
	m.OnInferenceStart()
	m.OnInferenceStop(nil)
	l := m.Log()
	if len(l.Records) != 3 {
		t.Fatalf("record count = %d", len(l.Records))
	}
	if l.Records[0].Frame != 0 || l.Records[1].Frame != 1 {
		t.Error("frame attribution wrong")
	}
	if got := l.MetricValues(KeyInferenceLatency); len(got) != 1 || got[0] < 0 {
		t.Errorf("latency metrics = %v", got)
	}
	if m.MemoryFootprintBytes() <= 0 {
		t.Error("memory footprint")
	}
	m.Reset()
	if len(m.Log().Records) != 0 {
		t.Error("reset did not clear")
	}
}

func TestMonitorCaptureModes(t *testing.T) {
	tt := tensor.New(tensor.F32, 100)
	stats := NewMonitor(WithCaptureMode(CaptureStats))
	stats.LogTensor("x", tt)
	full := NewMonitor(WithCaptureMode(CaptureFull))
	full.LogTensor("x", tt)
	sb, _ := stats.Log().SizeBytes()
	fb, _ := full.Log().SizeBytes()
	if fb <= sb*2 {
		t.Errorf("full capture (%dB) should dwarf stats capture (%dB)", fb, sb)
	}
}

// buildLayerLog fabricates a per-layer log for validator tests.
func buildLayerLog(frames int, layers []string, opTypes []string, valueAt func(frame, layer, idx int) float32) *Log {
	l := &Log{}
	seq := 0
	for f := 0; f < frames; f++ {
		for li, name := range layers {
			tt := tensor.New(tensor.F32, 8)
			for i := range tt.F {
				tt.F[i] = valueAt(f, li, i)
			}
			var r Record
			r.Seq = seq
			seq++
			r.Frame = f
			r.Key = LayerOutputKey(name)
			r.LayerIndex = li
			r.LayerName = name
			r.OpType = opTypes[li]
			r.EncodeTensor(tt, true)
			l.Records = append(l.Records, r)

			l.Records = append(l.Records, Record{
				Seq: seq, Frame: f, Key: LayerLatencyKey(name), Kind: KindMetric,
				LayerIndex: li, LayerName: name, OpType: opTypes[li],
				Value: float64(1000 * (li + 1)), Unit: "ns",
			})
			seq++
		}
		// Model output per frame.
		out := tensor.New(tensor.F32, 4)
		out.F[f%4] = 1
		var r Record
		r.Seq = seq
		seq++
		r.Frame = f
		r.Key = KeyModelOutput
		r.EncodeTensor(out, true)
		l.Records = append(l.Records, r)
	}
	return l
}

func TestCompareLayersFindsSpike(t *testing.T) {
	layers := []string{"conv1", "dw1", "conv2"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D", "Conv2D"}
	ref := buildLayerLog(3, layers, opTypes, func(f, l, i int) float32 {
		return float32(f + l + i)
	})
	// Edge matches on conv1 but diverges hugely from dw1 onward.
	edge := buildLayerLog(3, layers, opTypes, func(f, l, i int) float32 {
		v := float32(f + l + i)
		if l >= 1 {
			v += 50
		}
		return v
	})
	diffs, err := CompareLayers(edge, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 3 {
		t.Fatalf("%d diffs", len(diffs))
	}
	if diffs[0].NRMSE > 0.01 {
		t.Errorf("conv1 drift = %v, want ~0", diffs[0].NRMSE)
	}
	if diffs[1].NRMSE < 1 {
		t.Errorf("dw1 drift = %v, want large", diffs[1].NRMSE)
	}
	spike, ok := FirstSpike(diffs, 0.1, 3)
	if !ok || spike.Name != "dw1" {
		t.Errorf("spike = %+v, ok=%v", spike, ok)
	}
	suspects := SuspectLayers(diffs, 0.1)
	if len(suspects) != 2 {
		t.Errorf("suspects = %d", len(suspects))
	}
}

func TestOutputAgreement(t *testing.T) {
	layers := []string{"conv1"}
	ops := []string{"Conv2D"}
	a := buildLayerLog(4, layers, ops, func(f, l, i int) float32 { return float32(i) })
	b := buildLayerLog(4, layers, ops, func(f, l, i int) float32 { return float32(i) })
	ag, err := OutputAgreement(a, b)
	if err != nil || ag != 1 {
		t.Errorf("agreement = %v, %v", ag, err)
	}
	// Perturb two frames' outputs in b.
	changed := 0
	for i := range b.Records {
		if b.Records[i].Key == KeyModelOutput && changed < 2 {
			out := tensor.New(tensor.F32, 4)
			out.F[(b.Records[i].Frame+1)%4] = 2
			b.Records[i].EncodeTensor(out, true)
			changed++
		}
	}
	ag, err = OutputAgreement(a, b)
	if err != nil || ag != 0.5 {
		t.Errorf("agreement after perturbation = %v, %v", ag, err)
	}
}

func TestLatencyByClassAndStragglers(t *testing.T) {
	layers := []string{"conv1", "dw1", "slow"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D", "Conv2D"}
	l := &Log{}
	for f := 0; f < 2; f++ {
		for li, name := range layers {
			v := float64(1000)
			if name == "slow" {
				v = 100000
			}
			l.Records = append(l.Records, Record{
				Frame: f, Key: LayerLatencyKey(name), Kind: KindMetric,
				LayerIndex: li, LayerName: name, OpType: opTypes[li], Value: v, Unit: "ns",
			})
		}
	}
	classOf := func(op string) string {
		if op == "DepthwiseConv2D" {
			return "D-Conv"
		}
		return "Conv"
	}
	agg := LatencyByClass(l, classOf)
	if len(agg) != 2 {
		t.Fatalf("classes = %d", len(agg))
	}
	if agg[0].Class != "Conv" || agg[0].Count != 2 {
		t.Errorf("top class = %+v", agg[0])
	}
	st := Stragglers(l, 8)
	if len(st) != 1 || st[0] != "slow" {
		t.Errorf("stragglers = %v", st)
	}
}

func TestValidateEndToEndFlow(t *testing.T) {
	layers := []string{"conv1", "dw1"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D"}
	ref := buildLayerLog(4, layers, opTypes, func(f, l, i int) float32 { return float32(f + i) })
	edge := buildLayerLog(4, layers, opTypes, func(f, l, i int) float32 {
		v := float32(f + i)
		if l == 1 {
			v = -v * 10
		}
		return v
	})
	// Force output disagreement so the layer analysis triggers.
	for i := range edge.Records {
		if edge.Records[i].Key == KeyModelOutput {
			out := tensor.New(tensor.F32, 4)
			out.F[(edge.Records[i].Frame+2)%4] = 1
			edge.Records[i].EncodeTensor(out, true)
		}
	}
	rep, err := Validate(edge, ref, DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutputAgreement != 0 {
		t.Errorf("agreement = %v", rep.OutputAgreement)
	}
	if rep.Spike == nil || rep.Spike.Name != "dw1" {
		t.Fatalf("spike = %+v", rep.Spike)
	}
	// The quantization-drift assertion should name the depthwise layer.
	found := false
	for _, f := range rep.Findings {
		if f.Assertion == "quantization-drift" && strings.Contains(f.Detail, "DepthwiseConv2D") {
			found = true
		}
	}
	if !found {
		t.Errorf("quantization-drift finding missing: %+v", rep.Findings)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "dw1") {
		t.Error("report render missing spike layer")
	}
}

func TestLogQueries(t *testing.T) {
	m := NewMonitor()
	m.LogMetric("a", 1, "x")
	m.NextFrame()
	m.LogMetric("a", 2, "x")
	m.LogMetric("b", 3, "x")
	l := m.Log()
	if v := l.MetricValues("a"); len(v) != 2 || v[1] != 2 {
		t.Errorf("MetricValues = %v", v)
	}
	if got := len(l.ByKey("b")); got != 1 {
		t.Errorf("ByKey = %d", got)
	}
	if got := len(l.ByFrame(1)); got != 2 {
		t.Errorf("ByFrame = %d", got)
	}
	if l.Frames() != 2 {
		t.Errorf("Frames = %d", l.Frames())
	}
	if _, err := l.FirstTensor(0, "missing"); err == nil {
		t.Error("FirstTensor accepted missing key")
	}
}
