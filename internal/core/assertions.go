package core

import (
	"fmt"
	"math"

	"mlexray/internal/tensor"
)

// Finding is one triggered assertion: a root-cause hypothesis with evidence.
type Finding struct {
	Assertion string
	Detail    string
}

// AssertCtx is the evidence available to assertion functions: both logs and
// the validator's layer analysis so far.
type AssertCtx struct {
	Edge   *Log
	Ref    *Log
	Report *Report
}

// PreprocPair decodes the preprocessing-output tensors of one frame from
// both logs — the comparison the paper's example channel assertion is
// written around (edge_out, ref_out).
func (c *AssertCtx) PreprocPair(frame int) (edge, ref *tensor.Tensor, err error) {
	edge, err = c.Edge.FirstTensor(frame, KeyPreprocessOutput)
	if err != nil {
		return nil, nil, err
	}
	ref, err = c.Ref.FirstTensor(frame, KeyPreprocessOutput)
	if err != nil {
		return nil, nil, err
	}
	return edge, ref, nil
}

// Assertion is a root-cause check. Check returns nil when the hypothesis
// does not hold. Users add domain knowledge by implementing this interface
// (or using AssertionFunc).
type Assertion interface {
	Name() string
	Check(ctx *AssertCtx) *Finding
}

// AssertionFunc adapts a function to the Assertion interface.
type AssertionFunc struct {
	AssertionName string
	Fn            func(ctx *AssertCtx) *Finding
}

// Name implements Assertion.
func (a AssertionFunc) Name() string { return a.AssertionName }

// Check implements Assertion.
func (a AssertionFunc) Check(ctx *AssertCtx) *Finding { return a.Fn(ctx) }

// BuiltinAssertions returns the standard root-cause assertions for
// image-style pipelines plus the model-agnostic quantization and straggler
// checks (the assertion set of Figure 3).
func BuiltinAssertions() []Assertion {
	return []Assertion{
		ChannelArrangementAssertion{},
		NormalizationRangeAssertion{},
		OrientationAssertion{},
		ResizeFunctionAssertion{},
		QuantizationDriftAssertion{},
		StragglerAssertion{},
	}
}

const assertTol = 1e-3

// sampleFrames picks up to 3 frames that have preprocessing records in both
// logs.
func sampleFrames(ctx *AssertCtx) []int {
	frames := ctx.Edge.Frames()
	if rf := ctx.Ref.Frames(); rf < frames {
		frames = rf
	}
	var out []int
	for f := 0; f < frames && len(out) < 3; f++ {
		if _, _, err := ctx.PreprocPair(f); err == nil {
			out = append(out, f)
		}
	}
	return out
}

// ChannelArrangementAssertion detects swapped colour channels: the edge
// preprocessing output differs from the reference, but matches after an
// R<->B swap — the paper's worked example (§3.2).
type ChannelArrangementAssertion struct{}

// Name implements Assertion.
func (ChannelArrangementAssertion) Name() string { return "channel-arrangement" }

// Check implements Assertion.
func (ChannelArrangementAssertion) Check(ctx *AssertCtx) *Finding {
	frames := sampleFrames(ctx)
	if len(frames) == 0 {
		return nil
	}
	for _, f := range frames {
		edge, ref, err := ctx.PreprocPair(f)
		if err != nil || edge.Rank() != 4 || edge.Dim(3) != 3 || !tensor.SameShape(edge.Shape, ref.Shape) {
			return nil
		}
		if tensor.AllClose(edge, ref, assertTol, assertTol) {
			return nil // matches already on this frame
		}
		if !tensor.AllClose(swapRBTensor(edge), ref, assertTol, assertTol) {
			return nil // swap does not explain it
		}
	}
	return &Finding{
		Assertion: "channel-arrangement",
		Detail:    "preprocessing output matches the reference after an R<->B swap: input channels are arranged BGR where the model expects RGB (or vice versa)",
	}
}

func swapRBTensor(t *tensor.Tensor) *tensor.Tensor {
	out := t.Clone()
	for i := 0; i+2 < len(out.F); i += 3 {
		out.F[i], out.F[i+2] = out.F[i+2], out.F[i]
	}
	return out
}

// NormalizationRangeAssertion detects a wrong numerical-conversion range:
// the edge output is an affine transform of the reference (fit from their
// value ranges), e.g. [0,1] fed to a [-1,1] model — the washed-out-image
// failure of §2.
type NormalizationRangeAssertion struct{}

// Name implements Assertion.
func (NormalizationRangeAssertion) Name() string { return "normalization-range" }

// Check implements Assertion.
func (NormalizationRangeAssertion) Check(ctx *AssertCtx) *Finding {
	frames := sampleFrames(ctx)
	if len(frames) == 0 {
		return nil
	}
	var eLo, eHi, rLo, rHi float64
	for _, f := range frames {
		edge, ref, err := ctx.PreprocPair(f)
		if err != nil || !tensor.SameShape(edge.Shape, ref.Shape) {
			return nil
		}
		if tensor.AllClose(edge, ref, assertTol, assertTol) {
			return nil
		}
		es := tensor.ComputeStats(edge)
		rs := tensor.ComputeStats(ref)
		if es.Range() < 1e-9 || rs.Range() < 1e-9 {
			return nil
		}
		// Fit edge = a*ref + b from the ranges and verify element-wise.
		a := es.Range() / rs.Range()
		b := es.Min - a*rs.Min
		if math.Abs(a-1) < 0.02 && math.Abs(b) < 0.02 {
			return nil // ranges already agree; mismatch is not a normalization issue
		}
		mapped := ref.Clone()
		for i := range mapped.F {
			mapped.F[i] = float32(a*float64(mapped.F[i]) + b)
		}
		if !tensor.AllClose(edge, mapped, 0.02, 0.02) {
			return nil
		}
		eLo, eHi, rLo, rHi = es.Min, es.Max, rs.Min, rs.Max
	}
	return &Finding{
		Assertion: "normalization-range",
		Detail: fmt.Sprintf("edge input is normalized to [%.2g, %.2g] but the model expects [%.2g, %.2g]: wrong numerical conversion scale",
			eLo, eHi, rLo, rHi),
	}
}

// OrientationAssertion detects rotated input: the edge preprocessing output
// matches the reference after a quarter-turn, or the peripheral orientation
// sensor reports a non-upright capture.
type OrientationAssertion struct{}

// Name implements Assertion.
func (OrientationAssertion) Name() string { return "orientation" }

// Check implements Assertion.
func (OrientationAssertion) Check(ctx *AssertCtx) *Finding {
	// Sensor evidence first: the cheap always-available signal.
	if vals := ctx.Edge.MetricValues(KeySensorOrientation); len(vals) > 0 {
		nonUpright := 0
		for _, v := range vals {
			if math.Mod(math.Abs(v), 360) >= 45 {
				nonUpright++
			}
		}
		if nonUpright > len(vals)/2 {
			return &Finding{
				Assertion: "orientation",
				Detail:    fmt.Sprintf("orientation sensor reports non-upright capture on %d/%d frames: input is rotated relative to training data", nonUpright, len(vals)),
			}
		}
	}
	frames := sampleFrames(ctx)
	if len(frames) == 0 {
		return nil
	}
	degreesFixed := -1
	for _, f := range frames {
		edge, ref, err := ctx.PreprocPair(f)
		if err != nil || edge.Rank() != 4 {
			return nil
		}
		// Undoing a rotation does not reproduce the reference bit-exactly:
		// resampling happened on the rotated image, so values differ by up
		// to a couple of 8-bit quantization steps. Tolerate ~2.5 steps of
		// the reference range.
		tol := 2.5 / 255.0 * tensor.ComputeStats(ref).Range()
		if tol < assertTol {
			tol = assertTol
		}
		if tensor.SameShape(edge.Shape, ref.Shape) && tensor.AllClose(edge, ref, 0, tol) {
			return nil
		}
		found := false
		for _, quarter := range []int{1, 2, 3} {
			r := rotateTensor(edge, quarter)
			if tensor.SameShape(r.Shape, ref.Shape) && tensor.AllClose(r, ref, 0, tol) {
				deg := (4 - quarter) % 4 * 90 // the rotation the capture has undergone
				if degreesFixed >= 0 && degreesFixed != deg {
					return nil
				}
				degreesFixed = deg
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return &Finding{
		Assertion: "orientation",
		Detail:    fmt.Sprintf("preprocessing output matches the reference after a %d-degree rotation: the capture orientation differs from training", degreesFixed),
	}
}

// rotateTensor rotates an NHWC tensor clockwise by the given number of
// quarter turns.
func rotateTensor(t *tensor.Tensor, quarters int) *tensor.Tensor {
	out := t
	for q := 0; q < quarters; q++ {
		n, h, w, c := out.Shape[0], out.Shape[1], out.Shape[2], out.Shape[3]
		r := tensor.New(tensor.F32, n, w, h, c)
		for b := 0; b < n; b++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					for ch := 0; ch < c; ch++ {
						// (x, y) -> (h-1-y, x) clockwise
						r.F[((b*w+x)*h+(h-1-y))*c+ch] = out.F[((b*h+y)*w+x)*c+ch]
					}
				}
			}
		}
		out = r
	}
	return out
}

// ResizeFunctionAssertion detects a resampling-filter mismatch: the two
// preprocessing outputs differ by high-frequency content only — their ranges
// agree and a 3x3 box blur brings them substantially closer, which is the
// aliasing signature of bilinear-vs-area downsampling (§2, §4.3).
type ResizeFunctionAssertion struct{}

// Name implements Assertion.
func (ResizeFunctionAssertion) Name() string { return "resize-function" }

// Check implements Assertion.
func (ResizeFunctionAssertion) Check(ctx *AssertCtx) *Finding {
	frames := sampleFrames(ctx)
	if len(frames) == 0 {
		return nil
	}
	improvements := 0
	for _, f := range frames {
		edge, ref, err := ctx.PreprocPair(f)
		if err != nil || edge.Rank() != 4 || !tensor.SameShape(edge.Shape, ref.Shape) {
			return nil
		}
		if tensor.AllClose(edge, ref, assertTol, assertTol) {
			return nil
		}
		es := tensor.ComputeStats(edge)
		rs := tensor.ComputeStats(ref)
		// Ranges and means must agree (otherwise it's a normalization or
		// channel problem, not resampling).
		if math.Abs(es.Mean-rs.Mean) > 0.1*rs.Range() || math.Abs(es.Range()-rs.Range()) > 0.3*rs.Range() {
			return nil
		}
		raw, _ := tensor.RMSE(edge, ref)
		blurred, _ := tensor.RMSE(blur3x3(edge), blur3x3(ref))
		if raw <= assertTol || blurred > raw*0.6 {
			return nil
		}
		improvements++
	}
	if improvements == 0 {
		return nil
	}
	return &Finding{
		Assertion: "resize-function",
		Detail:    "preprocessing outputs differ only in high-frequency content (a 3x3 blur removes most of the difference): the edge pipeline uses a different resampling filter (e.g. bilinear where training used area averaging)",
	}
}

func blur3x3(t *tensor.Tensor) *tensor.Tensor {
	n, h, w, c := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	out := tensor.New(tensor.F32, n, h, w, c)
	for b := 0; b < n; b++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for ch := 0; ch < c; ch++ {
					var sum float32
					cnt := 0
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							yy, xx := y+dy, x+dx
							if yy < 0 || yy >= h || xx < 0 || xx >= w {
								continue
							}
							sum += t.F[((b*h+yy)*w+xx)*c+ch]
							cnt++
						}
					}
					out.F[((b*h+y)*w+x)*c+ch] = sum / float32(cnt)
				}
			}
		}
	}
	return out
}

// QuantizationDriftAssertion interprets the validator's per-layer analysis:
// a drift spike at a compute or pooling op in a quantized deployment points
// at that op's quantized kernel — the §4.4 diagnosis that identified the
// depthwise-convolution and average-pool defects.
type QuantizationDriftAssertion struct{}

// Name implements Assertion.
func (QuantizationDriftAssertion) Name() string { return "quantization-drift" }

// Check implements Assertion.
func (QuantizationDriftAssertion) Check(ctx *AssertCtx) *Finding {
	if ctx.Report == nil || ctx.Report.Spike == nil {
		return nil
	}
	s := ctx.Report.Spike
	switch s.OpType {
	case "DepthwiseConv2D", "Conv2D", "Dense", "AvgPool2D", "MaxPool2D", "Mean":
		return &Finding{
			Assertion: "quantization-drift",
			Detail: fmt.Sprintf("per-layer drift spikes at layer %d (%s, %s, nRMSE=%.3f): the quantized %s kernel is suspect — rerun with the reference op resolver to separate kernel defects from quantization resolution",
				s.Index, s.Name, s.OpType, s.NRMSE, s.OpType),
		}
	}
	return nil
}

// StragglerAssertion reports latency outliers found by the validator (§4.5).
type StragglerAssertion struct{}

// Name implements Assertion.
func (StragglerAssertion) Name() string { return "straggler-latency" }

// Check implements Assertion.
func (StragglerAssertion) Check(ctx *AssertCtx) *Finding {
	if ctx.Report == nil || len(ctx.Report.Stragglers) == 0 {
		return nil
	}
	return &Finding{
		Assertion: "straggler-latency",
		Detail:    fmt.Sprintf("%d layer(s) run far slower than the per-layer median (%v): suboptimal kernels for this hardware", len(ctx.Report.Stragglers), ctx.Report.Stragglers),
	}
}

// LatencyBudgetAssertion triggers when mean end-to-end inference latency
// exceeds a budget.
type LatencyBudgetAssertion struct {
	BudgetNs float64
}

// Name implements Assertion.
func (LatencyBudgetAssertion) Name() string { return "latency-budget" }

// Check implements Assertion.
func (a LatencyBudgetAssertion) Check(ctx *AssertCtx) *Finding {
	vals := ctx.Edge.MetricValues(KeyInferenceModeled)
	if len(vals) == 0 {
		vals = ctx.Edge.MetricValues(KeyInferenceLatency)
	}
	if len(vals) == 0 {
		return nil
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean <= a.BudgetNs {
		return nil
	}
	return &Finding{
		Assertion: "latency-budget",
		Detail:    fmt.Sprintf("mean inference latency %.2fms exceeds the %.2fms budget", mean/1e6, a.BudgetNs/1e6),
	}
}
