// Package core is ML-EXray itself: the EdgeML Monitor instrumentation API
// (§3.2), the key-value telemetry data model and JSONL log format, the
// deployment validator (§3.4) implementing the paper's Figure 2 flowchart —
// accuracy validation, per-layer normalized-rMSE localisation, per-layer
// latency validation — and the assertion framework with the built-in
// root-cause assertions (channel arrangement, normalization range, resize
// function, orientation, quantization drift, latency budgets).
package core

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"mlexray/internal/tensor"
)

// RecordKind classifies telemetry records, following the paper's data model
// (§3.2): inputs/outputs, performance metrics, peripheral sensors.
type RecordKind string

const (
	KindTensor RecordKind = "tensor" // full tensor payload
	KindStats  RecordKind = "stats"  // tensor summary only (cheap runtime mode)
	KindMetric RecordKind = "metric" // scalar performance metric
	KindSensor RecordKind = "sensor" // peripheral sensor reading
)

// Record is one telemetry entry: a key-value pair with provenance. Every
// ML-EXray log is a sequence of Records serialized as JSONL.
type Record struct {
	Seq   int        `json:"seq"`
	Frame int        `json:"frame"`
	Key   string     `json:"key"`
	Kind  RecordKind `json:"kind"`

	// Layer provenance, set on per-layer records.
	LayerIndex int    `json:"layer_index,omitempty"`
	LayerName  string `json:"layer_name,omitempty"`
	OpType     string `json:"op_type,omitempty"`

	// Tensor payload (KindTensor) or summary (both tensor kinds).
	Shape []int         `json:"shape,omitempty"`
	DType string        `json:"dtype,omitempty"`
	Data  string        `json:"data,omitempty"` // base64 little-endian
	Stats *tensor.Stats `json:"stats,omitempty"`
	// Quantization params of integer payloads: quantized layer captures are
	// stored raw (1 byte/element, the Table 3 disk advantage) and
	// dequantized on decode so comparisons happen in real units.
	QScale float64 `json:"qscale,omitempty"`
	QZero  int32   `json:"qzero,omitempty"`

	// Scalar payload (KindMetric / KindSensor).
	Value float64 `json:"value,omitempty"`
	Unit  string  `json:"unit,omitempty"`
}

// EncodeTensor fills the record's tensor payload fields.
func (r *Record) EncodeTensor(t *tensor.Tensor, full bool) {
	r.Shape = append([]int(nil), t.Shape...)
	r.DType = t.DType.String()
	s := tensor.ComputeStats(t)
	r.Stats = &s
	if !full {
		r.Kind = KindStats
		return
	}
	r.Kind = KindTensor
	buf := make([]byte, t.Bytes())
	switch t.DType {
	case tensor.F32:
		for i, v := range t.F {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
	case tensor.U8:
		copy(buf, t.U)
	case tensor.I8:
		for i, v := range t.I {
			buf[i] = byte(v)
		}
	case tensor.I32:
		for i, v := range t.X {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
	}
	r.Data = base64.StdEncoding.EncodeToString(buf)
}

// DecodeTensor reconstructs the tensor payload of a KindTensor record.
func (r *Record) DecodeTensor() (*tensor.Tensor, error) {
	if r.Kind != KindTensor {
		return nil, fmt.Errorf("core: record %q is %s, not a full tensor", r.Key, r.Kind)
	}
	dt, err := tensor.ParseDType(r.DType)
	if err != nil {
		return nil, err
	}
	buf, err := base64.StdEncoding.DecodeString(r.Data)
	if err != nil {
		return nil, fmt.Errorf("core: record %q payload: %w", r.Key, err)
	}
	t := tensor.New(dt, r.Shape...)
	if len(buf) != t.Bytes() {
		return nil, fmt.Errorf("core: record %q has %d payload bytes for %s", r.Key, len(buf), t)
	}
	switch dt {
	case tensor.F32:
		for i := range t.F {
			t.F[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case tensor.U8:
		copy(t.U, buf)
	case tensor.I8:
		for i := range t.I {
			t.I[i] = int8(buf[i])
		}
	case tensor.I32:
		for i := range t.X {
			t.X[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	// Quantized captures dequantize on decode.
	if r.QScale != 0 && dt == tensor.U8 {
		f := tensor.New(tensor.F32, t.Shape...)
		for i, q := range t.U {
			f.F[i] = float32(r.QScale * float64(int32(q)-r.QZero))
		}
		return f, nil
	}
	return t, nil
}

// Log is a sequence of telemetry records plus helpers for querying it.
type Log struct {
	Records []Record
}

// WriteJSONL serializes the log, one record per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range l.Records {
		if err := enc.Encode(&l.Records[i]); err != nil {
			return fmt.Errorf("core: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a log written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var l Log
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("core: log line %d: %w", line, err)
		}
		l.Records = append(l.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read log: %w", err)
	}
	return &l, nil
}

// SizeBytes returns the serialized size of the log, the disk-footprint
// metric of the overhead tables.
func (l *Log) SizeBytes() (int, error) {
	var n countingWriter
	if err := l.WriteJSONL(&n); err != nil {
		return 0, err
	}
	return int(n), nil
}

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// MemoryFootprintBytes estimates the buffer memory the log's records hold:
// the sum of all payloads plus fixed per-record overhead.
func (l *Log) MemoryFootprintBytes() int {
	n := 0
	for i := range l.Records {
		n += len(l.Records[i].Data) + len(l.Records[i].Key) + 64
	}
	return n
}

// MergeByFrame merges shard logs into one log ordered by frame index, with
// sequence numbers renumbered globally — the utility for hand-rolled shard
// workflows (e.g. logs gathered from separate devices). Each frame must have
// been processed by exactly one shard, and each shard must have processed
// its frames in increasing order; the result then reproduces the record
// order a sequential run would have logged. runner.Replay applies the same
// contract incrementally in its streaming collector; a runner test pins the
// two to identical output.
func MergeByFrame(shards ...*Log) *Log {
	total := 0
	for _, s := range shards {
		total += len(s.Records)
	}
	merged := &Log{Records: make([]Record, 0, total)}
	for _, s := range shards {
		merged.Records = append(merged.Records, s.Records...)
	}
	sort.SliceStable(merged.Records, func(i, j int) bool {
		return merged.Records[i].Frame < merged.Records[j].Frame
	})
	for i := range merged.Records {
		merged.Records[i].Seq = i
	}
	return merged
}

// ByKey returns all records with the given key, in order.
func (l *Log) ByKey(key string) []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Key == key {
			out = append(out, r)
		}
	}
	return out
}

// ByFrame returns all records of one frame.
func (l *Log) ByFrame(frame int) []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Frame == frame {
			out = append(out, r)
		}
	}
	return out
}

// Frames returns the number of distinct frames (max frame + 1).
func (l *Log) Frames() int {
	max := -1
	for _, r := range l.Records {
		if r.Frame > max {
			max = r.Frame
		}
	}
	return max + 1
}

// FirstTensor decodes the first full-tensor record with the given key in
// the given frame.
func (l *Log) FirstTensor(frame int, key string) (*tensor.Tensor, error) {
	for _, r := range l.Records {
		if r.Frame == frame && r.Key == key && r.Kind == KindTensor {
			return r.DecodeTensor()
		}
	}
	return nil, fmt.Errorf("core: frame %d has no tensor record %q", frame, key)
}

// MetricValues returns the values of all metric records with the key.
func (l *Log) MetricValues(key string) []float64 {
	var out []float64
	for _, r := range l.Records {
		if r.Key == key && (r.Kind == KindMetric || r.Kind == KindSensor) {
			out = append(out, r.Value)
		}
	}
	return out
}
