// Package core is ML-EXray itself: the EdgeML Monitor instrumentation API
// (§3.2), the key-value telemetry data model and pluggable log codecs (JSONL
// and the length-prefixed binary format), the streaming Sink layer, the
// deployment validator (§3.4) implementing the paper's Figure 2 flowchart —
// accuracy validation, per-layer normalized-rMSE localisation, per-layer
// latency validation — and the assertion framework with the built-in
// root-cause assertions (channel arrangement, normalization range, resize
// function, orientation, quantization drift, latency budgets).
package core

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"mlexray/internal/tensor"
)

// RecordKind classifies telemetry records, following the paper's data model
// (§3.2): inputs/outputs, performance metrics, peripheral sensors.
type RecordKind string

const (
	KindTensor RecordKind = "tensor" // full tensor payload
	KindStats  RecordKind = "stats"  // tensor summary only (cheap runtime mode)
	KindMetric RecordKind = "metric" // scalar performance metric
	KindSensor RecordKind = "sensor" // peripheral sensor reading
)

// Record is one telemetry entry: a key-value pair with provenance. Every
// ML-EXray log is a sequence of Records, serialized by a LogCodec (JSONL or
// the binary format — see codec.go).
type Record struct {
	Seq   int
	Frame int
	Key   string
	Kind  RecordKind

	// Layer provenance, set on per-layer records.
	LayerIndex int
	LayerName  string
	OpType     string

	// Tensor payload (KindTensor) or summary (both tensor kinds). Payload
	// holds the raw little-endian element bytes and is kept raw in memory:
	// capture pays one memcpy-style encode, and the base64 expansion of the
	// JSONL format (or nothing at all, for the binary format) is paid only
	// at serialization time.
	Shape   []int
	DType   string
	Payload []byte
	Stats   *tensor.Stats
	// Quantization params of integer payloads: quantized layer captures are
	// stored raw (1 byte/element, the Table 3 disk advantage) and
	// dequantized on decode so comparisons happen in real units.
	QScale float64
	QZero  int32

	// Scalar payload (KindMetric / KindSensor).
	Value float64
	Unit  string
}

// recordWire is the JSON wire shape of a Record. Field order and tags define
// the JSONL log format and must never change — the golden-fixture test pins
// the serialized bytes to the pre-codec-redesign output.
type recordWire struct {
	Seq        int           `json:"seq"`
	Frame      int           `json:"frame"`
	Key        string        `json:"key"`
	Kind       RecordKind    `json:"kind"`
	LayerIndex int           `json:"layer_index,omitempty"`
	LayerName  string        `json:"layer_name,omitempty"`
	OpType     string        `json:"op_type,omitempty"`
	Shape      []int         `json:"shape,omitempty"`
	DType      string        `json:"dtype,omitempty"`
	Data       string        `json:"data,omitempty"` // base64 of Payload
	Stats      *tensor.Stats `json:"stats,omitempty"`
	QScale     float64       `json:"qscale,omitempty"`
	QZero      int32         `json:"qzero,omitempty"`
	Value      float64       `json:"value,omitempty"`
	Unit       string        `json:"unit,omitempty"`
}

// MarshalJSON serializes the record in the JSONL wire format, base64-encoding
// the raw payload at this point and not before.
func (r Record) MarshalJSON() ([]byte, error) {
	w := recordWire{
		Seq: r.Seq, Frame: r.Frame, Key: r.Key, Kind: r.Kind,
		LayerIndex: r.LayerIndex, LayerName: r.LayerName, OpType: r.OpType,
		Shape: r.Shape, DType: r.DType, Stats: r.Stats,
		QScale: r.QScale, QZero: r.QZero, Value: r.Value, Unit: r.Unit,
	}
	if len(r.Payload) > 0 {
		w.Data = base64.StdEncoding.EncodeToString(r.Payload)
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the JSONL wire format, decoding the base64 payload
// back to raw bytes.
func (r *Record) UnmarshalJSON(data []byte) error {
	var w recordWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Record{
		Seq: w.Seq, Frame: w.Frame, Key: w.Key, Kind: w.Kind,
		LayerIndex: w.LayerIndex, LayerName: w.LayerName, OpType: w.OpType,
		Shape: w.Shape, DType: w.DType, Stats: w.Stats,
		QScale: w.QScale, QZero: w.QZero, Value: w.Value, Unit: w.Unit,
	}
	if w.Data != "" {
		p, err := base64.StdEncoding.DecodeString(w.Data)
		if err != nil {
			return fmt.Errorf("core: record %q payload: %w", w.Key, err)
		}
		r.Payload = p
	}
	return nil
}

// EncodeTensor fills the record's tensor payload fields. Full capture stores
// the raw little-endian bytes; the textual (base64) expansion is deferred to
// JSONL serialization, and never happens on the binary path.
func (r *Record) EncodeTensor(t *tensor.Tensor, full bool) {
	r.Shape = append([]int(nil), t.Shape...)
	r.DType = t.DType.String()
	s := tensor.ComputeStats(t)
	r.Stats = &s
	if !full {
		r.Kind = KindStats
		return
	}
	r.Kind = KindTensor
	r.Payload = appendTensorLE(make([]byte, 0, t.Bytes()), t)
}

// appendTensorLE appends t's element data in little-endian order.
func appendTensorLE(buf []byte, t *tensor.Tensor) []byte {
	switch t.DType {
	case tensor.F32:
		for _, v := range t.F {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	case tensor.U8:
		buf = append(buf, t.U...)
	case tensor.I8:
		for _, v := range t.I {
			buf = append(buf, byte(v))
		}
	case tensor.I32:
		for _, v := range t.X {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf
}

// DecodeTensor reconstructs the tensor payload of a KindTensor record.
// Integer payloads carrying quantization params (QScale set) dequantize to
// float32, so comparisons happen in real units for both u8 activations and
// i8 weights/activations.
func (r *Record) DecodeTensor() (*tensor.Tensor, error) {
	if r.Kind != KindTensor {
		return nil, fmt.Errorf("core: record %q is %s, not a full tensor", r.Key, r.Kind)
	}
	dt, err := tensor.ParseDType(r.DType)
	if err != nil {
		return nil, err
	}
	buf := r.Payload
	// Validate the shape against the payload BEFORE allocating: a corrupt
	// or crafted log must fail with an error, not a panic on a negative dim
	// or a huge allocation from an implausible dim product.
	elems := 1
	for _, d := range r.Shape {
		if d < 0 {
			return nil, fmt.Errorf("core: record %q has negative dim in shape %v", r.Key, r.Shape)
		}
		if d > 0 && elems > maxBinaryRecord/d {
			return nil, fmt.Errorf("core: record %q shape %v exceeds the element limit", r.Key, r.Shape)
		}
		elems *= d
	}
	if elems*dt.Size() != len(buf) {
		return nil, fmt.Errorf("core: record %q has %d payload bytes for %s%v", r.Key, len(buf), dt, r.Shape)
	}
	t := tensor.New(dt, r.Shape...)
	switch dt {
	case tensor.F32:
		for i := range t.F {
			t.F[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case tensor.U8:
		copy(t.U, buf)
	case tensor.I8:
		for i := range t.I {
			t.I[i] = int8(buf[i])
		}
	case tensor.I32:
		for i := range t.X {
			t.X[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	// Quantized captures dequantize on decode.
	if r.QScale != 0 {
		switch dt {
		case tensor.U8:
			f := tensor.New(tensor.F32, t.Shape...)
			for i, q := range t.U {
				f.F[i] = float32(r.QScale * float64(int32(q)-r.QZero))
			}
			return f, nil
		case tensor.I8:
			f := tensor.New(tensor.F32, t.Shape...)
			for i, q := range t.I {
				f.F[i] = float32(r.QScale * float64(int32(q)-r.QZero))
			}
			return f, nil
		}
	}
	return t, nil
}

// Log is a sequence of telemetry records plus helpers for querying it.
type Log struct {
	Records []Record
}

// WriteJSONL serializes the log in the JSONL format, one record per line.
func (l *Log) WriteJSONL(w io.Writer) error { return l.Write(w, FormatJSONL) }

// WriteBinary serializes the log in the length-prefixed binary format.
func (l *Log) WriteBinary(w io.Writer) error { return l.Write(w, FormatBinary) }

// Write serializes the log in the given format.
func (l *Log) Write(w io.Writer, format LogFormat) error {
	enc, err := NewLogEncoder(w, format)
	if err != nil {
		return err
	}
	for i := range l.Records {
		if err := enc.EncodeRecord(&l.Records[i]); err != nil {
			return fmt.Errorf("core: encode record %d: %w", i, err)
		}
	}
	return enc.Flush()
}

// ReadJSONL parses a JSONL log written by WriteJSONL. Use ReadLog to accept
// either format with auto-detection.
func ReadJSONL(r io.Reader) (*Log, error) {
	return readAll(NewJSONLDecoder(r))
}

// SizeBytes returns the serialized JSONL size of the log, the disk-footprint
// metric of the overhead tables. EncodedSize reports other formats.
func (l *Log) SizeBytes() (int, error) { return l.EncodedSize(FormatJSONL) }

// EncodedSize returns the serialized size of the log in the given format.
func (l *Log) EncodedSize(format LogFormat) (int, error) {
	var n countingWriter
	if err := l.Write(&n, format); err != nil {
		return 0, err
	}
	return int(n), nil
}

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// MemoryFootprintBytes estimates the buffer memory the log's records hold:
// the sum of all raw payloads plus fixed per-record overhead.
func (l *Log) MemoryFootprintBytes() int {
	n := 0
	for i := range l.Records {
		n += len(l.Records[i].Payload) + len(l.Records[i].Key) + 64
	}
	return n
}

// MergeByFrame merges shard logs into one log ordered by frame index, with
// sequence numbers renumbered globally — the utility for hand-rolled shard
// workflows (e.g. logs gathered from separate devices). Each frame must have
// been processed by exactly one shard, and each shard must have processed
// its frames in increasing order; the result then reproduces the record
// order a sequential run would have logged. runner.Replay applies the same
// contract incrementally in its streaming collector; a runner test pins the
// two to identical output.
func MergeByFrame(shards ...*Log) *Log {
	total := 0
	for _, s := range shards {
		total += len(s.Records)
	}
	merged := &Log{Records: make([]Record, 0, total)}
	for _, s := range shards {
		merged.Records = append(merged.Records, s.Records...)
	}
	sort.SliceStable(merged.Records, func(i, j int) bool {
		return merged.Records[i].Frame < merged.Records[j].Frame
	})
	for i := range merged.Records {
		merged.Records[i].Seq = i
	}
	return merged
}

// ByKey returns all records with the given key, in order.
func (l *Log) ByKey(key string) []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Key == key {
			out = append(out, r)
		}
	}
	return out
}

// ByFrame returns all records of one frame.
func (l *Log) ByFrame(frame int) []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Frame == frame {
			out = append(out, r)
		}
	}
	return out
}

// Frames returns the number of distinct frames (max frame + 1).
func (l *Log) Frames() int {
	max := -1
	for _, r := range l.Records {
		if r.Frame > max {
			max = r.Frame
		}
	}
	return max + 1
}

// FirstTensor decodes the first full-tensor record with the given key in
// the given frame.
func (l *Log) FirstTensor(frame int, key string) (*tensor.Tensor, error) {
	for _, r := range l.Records {
		if r.Frame == frame && r.Key == key && r.Kind == KindTensor {
			return r.DecodeTensor()
		}
	}
	return nil, fmt.Errorf("core: frame %d has no tensor record %q", frame, key)
}

// MetricValues returns the values of all metric records with the key.
func (l *Log) MetricValues(key string) []float64 {
	var out []float64
	for _, r := range l.Records {
		if r.Key == key && (r.Kind == KindMetric || r.Kind == KindSensor) {
			out = append(out, r.Value)
		}
	}
	return out
}
