package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlexray/internal/ingest"
	"mlexray/internal/obs"
)

// TestTracePropagation pins the cross-tier trace protocol: the RemoteSink
// mints one X-MLEXray-Trace ID per chunk POST, the gateway records its
// proxy hop under that ID and forwards the header, and the owning shard
// records its ingest and WAL hops under the same ID — so a single trace
// value stitches the whole path together across two processes' rings.
func TestTracePropagation(t *testing.T) {
	const frames = 8
	ref := gwSynthLog(frames, nil, false)

	// Durable shards: the WAL hop only exists when appends hit a log.
	shards := make(map[string]*ingest.Server, 2)
	var addrs []ShardAddr
	for i := 0; i < 2; i++ {
		srv, err := ingest.NewServer(ingest.ServerOptions{Ref: ref, DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		name := fmt.Sprintf("shard-%d", i)
		shards[name] = srv
		addrs = append(addrs, ShardAddr{Name: name, URL: ts.URL})
	}
	gw, err := NewGateway(GatewayOptions{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	gwTS := httptest.NewServer(gw)
	t.Cleanup(gwTS.Close)

	device := "trace-dev"
	gwUpload(t, gwTS.URL, device, gwSynthLog(frames, nil, false))

	gwSpans := gw.TraceDump()
	if len(gwSpans) == 0 {
		t.Fatal("gateway recorded no spans")
	}
	owner := shards[gw.Owner(device)]

	matched := 0
	for _, gs := range gwSpans {
		if gs.Hop != "gateway" || gs.Trace == "" {
			continue
		}
		if !strings.HasPrefix(gs.Detail, "proxy:") {
			t.Errorf("proxy-mode gateway span detail = %q, want proxy:<shard>", gs.Detail)
		}
		shardSpans := owner.TraceDump()
		var hops []string
		for _, ss := range shardSpans {
			if ss.Trace == gs.Trace {
				hops = append(hops, ss.Hop)
			}
		}
		if len(hops) == 0 {
			t.Errorf("trace %q seen at the gateway but not at the owning shard", gs.Trace)
			continue
		}
		for _, want := range []string{"ingest", "wal"} {
			found := false
			for _, h := range hops {
				if h == want {
					found = true
				}
			}
			if !found {
				t.Errorf("trace %q missing %q hop at the shard: got %v", gs.Trace, want, hops)
			}
		}
		matched++
	}
	if matched == 0 {
		t.Fatal("no gateway span matched a shard span — trace IDs did not propagate")
	}

	// The trace IDs are stable chunk identities: stream token + chunk index,
	// so a retried chunk keeps its ID across hops and attempts.
	for _, gs := range gwSpans {
		if gs.Trace == "" {
			continue
		}
		if i := strings.LastIndexByte(gs.Trace, '-'); i <= 0 || i == len(gs.Trace)-1 {
			t.Errorf("trace ID %q is not <stream>-<chunk>", gs.Trace)
		}
	}
}

// TestGatewayHealthAggregation pins the fan-out /healthz: per-shard
// up/down plus session totals, fleet-wide sums, and a dead shard flipping
// ok=false while the endpoint itself stays 200 (the gateway is reachable;
// the detail is in the body).
func TestGatewayHealthAggregation(t *testing.T) {
	const frames = 8
	ref := gwSynthLog(frames, nil, false)
	fleet := newShardFleet(t, 3, ref, false)

	devices := []string{"health-a", "health-b", "health-c"}
	for _, d := range devices {
		gwUpload(t, fleet.gwTS.URL, d, gwSynthLog(frames, nil, false))
	}

	var reply struct {
		OK      bool                   `json:"ok"`
		Shards  map[string]ShardHealth `json:"shards"`
		Devices int                    `json:"devices"`
		Ring    map[string]int         `json:"ring"`
	}
	if err := json.Unmarshal(gwGetBytes(t, fleet.gwTS.URL+"/healthz"), &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.OK {
		t.Errorf("healthy fleet reported ok=false: %+v", reply)
	}
	if len(reply.Shards) != 3 {
		t.Fatalf("healthz covers %d shards, want 3", len(reply.Shards))
	}
	for name, sh := range reply.Shards {
		if !sh.Up {
			t.Errorf("shard %s reported down: %+v", name, sh)
		}
	}
	if reply.Devices != len(devices) {
		t.Errorf("aggregated devices = %d, want %d", reply.Devices, len(devices))
	}
	if reply.Ring["shards"] != 3 {
		t.Errorf("ring size = %d, want 3", reply.Ring["shards"])
	}

	// Kill one shard: its entry flips down with an error, the rest stay up,
	// and the fleet verdict goes false — but the HTTP status stays 200.
	fleet.tss[0].Close()
	resp, err := http.Get(fleet.gwTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with dead shard: status %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK {
		t.Error("fleet with dead shard reported ok=true")
	}
	dead := reply.Shards["shard-0"]
	if dead.Up || dead.Error == "" {
		t.Errorf("dead shard entry = %+v, want down with an error", dead)
	}
	for _, name := range []string{"shard-1", "shard-2"} {
		if !reply.Shards[name].Up {
			t.Errorf("surviving shard %s reported down", name)
		}
	}
}

// TestGatewayMetricsExposition pins the routing tier's own telemetry: after
// proxied uploads, GET /metrics parses as Prometheus text and the per-shard
// proxy histogram counted every proxied request.
func TestGatewayMetricsExposition(t *testing.T) {
	const frames = 8
	ref := gwSynthLog(frames, nil, false)
	fleet := newShardFleet(t, 2, ref, false)
	sink := gwUpload(t, fleet.gwTS.URL, "metrics-dev", gwSynthLog(frames, nil, false))

	body := gwGetBytes(t, fleet.gwTS.URL+"/metrics")
	parsed, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("gateway /metrics does not parse: %v", err)
	}
	proxied := obs.SumSeries(parsed, "mlexray_gateway_proxy_seconds_count")
	if int(proxied) < sink.Chunks() {
		t.Errorf("proxy histogram counted %d requests, want >= %d chunks", int(proxied), sink.Chunks())
	}
	if obs.SumSeries(parsed, "mlexray_gateway_redirects_total") != 0 {
		t.Error("proxy-mode gateway counted redirects")
	}
}

// TestGatewayHealthTimeout pins the probe bound: a shard that hangs past
// HealthTimeout is reported down, not awaited.
func TestGatewayHealthTimeout(t *testing.T) {
	ref := gwSynthLog(4, nil, false)
	fleet := newShardFleet(t, 1, ref, false)

	// A second "shard" that accepts the probe and stalls until the probe's
	// own context gives up (Server.Close waits for handlers, so the handler
	// must observe the cancellation or teardown deadlocks).
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer stuck.Close()

	gw, err := NewGateway(GatewayOptions{
		Shards: []ShardAddr{
			{Name: "shard-live", URL: fleet.tss[0].URL},
			{Name: "shard-stuck", URL: stuck.URL},
		},
		HealthTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rw := httptest.NewRecorder()
	gw.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("healthz took %v — the probe timeout did not bound the hang", elapsed)
	}
	var reply struct {
		OK     bool                   `json:"ok"`
		Shards map[string]ShardHealth `json:"shards"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK {
		t.Error("hung shard reported ok=true")
	}
	if reply.Shards["shard-stuck"].Up {
		t.Error("hung shard reported up")
	}
	if !reply.Shards["shard-live"].Up {
		t.Error("live shard reported down")
	}
}
