package shard

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/tensor"
)

// gwSynthLog builds the same synthetic telemetry shape the ingest tests use:
// per-layer tensors and latency plus one model output per frame, for the
// frames in own (nil: all of [0,frames)). bugged shifts values and flips
// outputs so exactly the bugged device diverges.
func gwSynthLog(frames int, own []int, bugged bool) *core.Log {
	owned := make(map[int]bool)
	if own == nil {
		for f := 0; f < frames; f++ {
			owned[f] = true
		}
	} else {
		for _, f := range own {
			owned[f] = true
		}
	}
	layers := []string{"conv1", "dw1"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D"}
	l := &core.Log{}
	seq := 0
	for f := 0; f < frames; f++ {
		if !owned[f] {
			continue
		}
		for li, name := range layers {
			tt := tensor.New(tensor.F32, 8)
			for i := range tt.F {
				tt.F[i] = float32(f + li + i)
				if bugged {
					tt.F[i] += 40
				}
			}
			var r core.Record
			r.Seq, r.Frame = seq, f
			r.Key = core.LayerOutputKey(name)
			r.LayerIndex, r.LayerName, r.OpType = li, name, opTypes[li]
			r.EncodeTensor(tt, true)
			l.Records = append(l.Records, r)
			seq++
			l.Records = append(l.Records, core.Record{
				Seq: seq, Frame: f, Key: core.LayerLatencyKey(name), Kind: core.KindMetric,
				LayerIndex: li, LayerName: name, OpType: opTypes[li],
				Value: float64(1000 * (li + 1)), Unit: "ns",
			})
			seq++
		}
		out := tensor.New(tensor.F32, 4)
		idx := f % 4
		if bugged {
			idx = (f + 1) % 4
		}
		out.F[idx] = 1
		var r core.Record
		r.Seq, r.Frame = seq, f
		r.Key = core.KeyModelOutput
		r.EncodeTensor(out, true)
		l.Records = append(l.Records, r)
		seq++
	}
	return l
}

func gwUpload(t testing.TB, baseURL, device string, l *core.Log) *ingest.RemoteSink {
	t.Helper()
	sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
		URL: baseURL, Device: device, ChunkBytes: 512, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := 0
	for start < len(l.Records) {
		end := start
		for end < len(l.Records) && l.Records[end].Frame == l.Records[start].Frame {
			end++
		}
		if err := sink.WriteFrame(l.Records[start].Frame, l.Records[start:end]); err != nil {
			t.Fatalf("%s: write frame %d: %v", device, l.Records[start].Frame, err)
		}
		start = end
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("%s: flush: %v", device, err)
	}
	return sink
}

func gwGetBytes(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}

// shardFleet spins up n collector shards plus a gateway over them, all with
// the same reference log.
type shardFleet struct {
	shards  []*ingest.Server
	tss     []*httptest.Server
	gateway *Gateway
	gwTS    *httptest.Server
}

func newShardFleet(t testing.TB, n int, ref *core.Log, redirect bool) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	var addrs []ShardAddr
	for i := 0; i < n; i++ {
		srv, err := ingest.NewServer(ingest.ServerOptions{Ref: ref})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		f.shards = append(f.shards, srv)
		f.tss = append(f.tss, ts)
		addrs = append(addrs, ShardAddr{Name: fmt.Sprintf("shard-%d", i), URL: ts.URL})
	}
	gw, err := NewGateway(GatewayOptions{Shards: addrs, RedirectUploads: redirect})
	if err != nil {
		t.Fatal(err)
	}
	f.gateway = gw
	f.gwTS = httptest.NewServer(gw)
	t.Cleanup(f.gwTS.Close)
	return f
}

func (f *shardFleet) shardByName(name string) (*ingest.Server, *httptest.Server) {
	for i := range f.shards {
		if fmt.Sprintf("shard-%d", i) == name {
			return f.shards[i], f.tss[i]
		}
	}
	return nil, nil
}

// TestGatewayFleetByteIdenticalToSingleCollector is the tentpole pin: six
// devices (one divergent) uploaded through a 4-shard gateway produce a
// merged GET /fleet byte-for-byte equal to the same fleet uploaded into one
// collector — body, divergence flags, float formatting, everything.
func TestGatewayFleetByteIdenticalToSingleCollector(t *testing.T) {
	const frames, nDevs = 12, 6
	ref := gwSynthLog(frames, nil, false)

	logs := make(map[string]*core.Log, nDevs)
	for d := 0; d < nDevs; d++ {
		var own []int
		for f := d; f < frames; f += nDevs {
			own = append(own, f)
		}
		device := fmt.Sprintf("d%d-unit", d)
		logs[device] = gwSynthLog(frames, own, d == 1)
	}

	// Reference: one collector holding every session.
	single, err := ingest.NewServer(ingest.ServerOptions{Ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single)
	defer singleTS.Close()
	for device, l := range logs {
		gwUpload(t, singleTS.URL, device, l)
	}

	// Sharded: same uploads through the gateway in proxy mode.
	fleet := newShardFleet(t, 4, ref, false)
	owners := map[string]bool{}
	for device, l := range logs {
		owners[fleet.gateway.Owner(device)] = true
		gwUpload(t, fleet.gwTS.URL, device, l)
	}
	if len(owners) < 2 {
		t.Fatalf("all %d devices landed on one shard — test exercises no merge", nDevs)
	}

	want := gwGetBytes(t, singleTS.URL+"/fleet")
	got := gwGetBytes(t, fleet.gwTS.URL+"/fleet")
	if !bytes.Equal(want, got) {
		t.Errorf("merged /fleet differs from single collector:\nsingle:  %s\nmerged:  %s", want, got)
	}

	// Per-device proxying: the gateway's /devices/{id} is the owning shard's
	// answer, verbatim.
	for device := range logs {
		_, ownerTS := fleet.shardByName(fleet.gateway.Owner(device))
		wantDev := gwGetBytes(t, ownerTS.URL+"/devices/"+device)
		gotDev := gwGetBytes(t, fleet.gwTS.URL+"/devices/"+device)
		if !bytes.Equal(wantDev, gotDev) {
			t.Errorf("%s: proxied /devices/{id} differs from owner shard", device)
		}
	}
}

// TestGatewayRedirectUploads pins redirect mode end to end: the gateway
// answers one 307 per sink, the sink sticks to the owning shard for the
// rest of the upload, and the records land on exactly the ring's choice.
func TestGatewayRedirectUploads(t *testing.T) {
	const frames = 12
	ref := gwSynthLog(frames, nil, false)
	fleet := newShardFleet(t, 4, ref, true)

	// Front the gateway with a POST counter.
	var gwPosts atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			gwPosts.Add(1)
		}
		fleet.gateway.ServeHTTP(w, r)
	}))
	defer counting.Close()

	device := "redirect-dev"
	l := gwSynthLog(frames, nil, false)
	sink := gwUpload(t, counting.URL, device, l)

	if sink.Chunks() < 2 {
		t.Fatalf("upload shipped %d chunk(s), want several", sink.Chunks())
	}
	if got := sink.Redirects(); got != 1 {
		t.Errorf("sink followed %d redirects, want exactly 1 (sticky re-route)", got)
	}
	if got := gwPosts.Load(); got != 1 {
		t.Errorf("gateway saw %d POSTs, want 1 — chunks after the redirect must go shard-direct", got)
	}
	owner, _ := fleet.shardByName(fleet.gateway.Owner(device))
	if got := owner.Session(device).Records(); got != len(l.Records) {
		t.Errorf("owning shard holds %d records, want %d", got, len(l.Records))
	}
	for i, srv := range fleet.shards {
		if srv == owner {
			continue
		}
		if srv.Session(device) != nil {
			t.Errorf("shard-%d holds a session for %s but does not own it", i, device)
		}
	}
}

// TestGatewayDeadShard pins degraded-mode semantics: with one shard down,
// requests needing that shard are 502 (shard unreachable, not a gateway
// crash), while traffic for devices on surviving shards still flows.
func TestGatewayDeadShard(t *testing.T) {
	const frames = 8
	ref := gwSynthLog(frames, nil, false)
	fleet := newShardFleet(t, 4, ref, false)

	// Find devices on two different shards, then kill the first's shard.
	deadDev, liveDev := "", ""
	for i := 0; deadDev == "" || liveDev == ""; i++ {
		d := fmt.Sprintf("probe-%d", i)
		switch fleet.gateway.Owner(d) {
		case "shard-0":
			if deadDev == "" {
				deadDev = d
			}
		default:
			if liveDev == "" {
				liveDev = d
			}
		}
	}
	gwUpload(t, fleet.gwTS.URL, deadDev, gwSynthLog(frames, nil, false))
	gwUpload(t, fleet.gwTS.URL, liveDev, gwSynthLog(frames, nil, false))

	fleet.tss[0].Close()

	if resp, err := http.Get(fleet.gwTS.URL + "/fleet"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Errorf("/fleet with dead shard: status %d, want 502", resp.StatusCode)
		}
	}
	if resp, err := http.Get(fleet.gwTS.URL + "/devices/" + deadDev); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Errorf("/devices/{dead-shard dev}: status %d, want 502", resp.StatusCode)
		}
	}
	if resp, err := http.Get(fleet.gwTS.URL + "/devices/" + liveDev); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/devices/{live dev}: status %d, want 200", resp.StatusCode)
		}
	}
}

// TestGatewayCollectionMode pins the 409 relay: shards without a reference
// log cannot produce fleet state, and the gateway surfaces that as the same
// conflict a lone collector reports, not as a gateway fault.
func TestGatewayCollectionMode(t *testing.T) {
	fleet := newShardFleet(t, 2, nil, false)
	resp, err := http.Get(fleet.gwTS.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("/fleet in collection mode: status %d, want 409", resp.StatusCode)
	}
}
