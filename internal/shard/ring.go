// Package shard spreads the ingest collector horizontally: a consistent-hash
// ring assigns each device session to exactly one collector shard, and a
// Gateway fronts the ring — routing chunk uploads to the owning shard and
// recombining per-shard fleet state into reports byte-identical to a single
// collector holding every session.
//
// Placement is a pure function of (shard set, vnode count, device ID): every
// gateway, script, and test that agrees on the ring configuration agrees on
// where a device lives, with no coordination service. Growing or shrinking
// the ring moves only the keys that must move (~K/N for one shard among N),
// because each shard owns many small arcs of the hash circle rather than one
// contiguous range.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard when RingOptions leave
// it unset. 128 arcs per shard keeps the max/min load ratio within a few
// percent for small fleets while the ring stays tiny (N*128 points).
const DefaultVnodes = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard. Clockwise from any key's hash, the first point's shard owns it.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is an immutable consistent-hash ring over a set of shard names.
// Build a new Ring to change membership; placement for unmoved keys is
// stable across rebuilds because vnode positions depend only on shard names.
type Ring struct {
	points []ringPoint
	shards []string // sorted, deduplicated
	vnodes int
}

// NewRing builds a ring over the given shard names. vnodes is the
// virtual-node count per shard (<= 0 means DefaultVnodes). Shard order does
// not matter — placement depends only on the set.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	for i, s := range sorted {
		if s == "" {
			return nil, fmt.Errorf("shard: empty shard name")
		}
		if i > 0 && sorted[i-1] == s {
			return nil, fmt.Errorf("shard: duplicate shard %q", s)
		}
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(sorted)*vnodes),
		shards: sorted,
		vnodes: vnodes,
	}
	for _, s := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(s + "#" + strconv.Itoa(i)), shard: s})
		}
	}
	// Tie-break equal hashes by shard name so two shards whose vnodes
	// collide still order deterministically regardless of input order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Owner returns the shard that owns the given device ID: the first vnode at
// or clockwise past the device's hash, wrapping at the top of the circle.
func (r *Ring) Owner(device string) string {
	h := hashKey(device)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the ring's membership, sorted, as a fresh slice.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// N returns the number of shards on the ring.
func (r *Ring) N() int { return len(r.shards) }

// Vnodes returns the per-shard virtual-node count in effect.
func (r *Ring) Vnodes() int { return r.vnodes }

// hashKey is the ring's hash: FNV-64a through a 64-bit avalanche finalizer.
// Not cryptographic — placement needs determinism and spread, not adversary
// resistance — but raw FNV leaves near-identical keys ("shard-0#1",
// "shard-0#2", ...) correlated enough to lump vnodes and wreck balance; the
// finalizer's multiply/xor-shift rounds restore full-width diffusion.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
