package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/obs"
)

// ShardAddr names one collector shard and where it listens.
type ShardAddr struct {
	// Name is the shard's ring identity. Placement hashes the name, not the
	// URL, so a shard can move hosts (or be restarted on a new port) without
	// relocating its devices.
	Name string
	// URL is the shard collector's base URL (e.g. "http://host:9091").
	URL string
}

// GatewayOptions configures a Gateway.
type GatewayOptions struct {
	// Shards is the ring membership: every collector shard by name and URL.
	Shards []ShardAddr
	// Vnodes is the per-shard virtual-node count (<= 0 means DefaultVnodes).
	// Must match across every gateway fronting the same ring.
	Vnodes int
	// Validate mirrors the shards' ServerOptions.Validate; the merged fleet
	// report applies the same thresholds the shards do. Unset fields default
	// like ingest.NewServer's.
	Validate core.ValidateOptions
	// RedirectUploads answers POST /ingest with 307 + Location naming the
	// owning shard instead of proxying the body. Sinks that honor the
	// redirect (ingest.RemoteSink does) then stream to the shard directly,
	// keeping bulk telemetry bytes off the gateway.
	RedirectUploads bool
	// Client overrides the HTTP client used for proxying and fan-out.
	Client *http.Client
	// HealthTimeout bounds each shard probe in the aggregated /healthz
	// fan-out, so one hung shard cannot stall the gateway's own health
	// answer; <= 0 means 2 seconds.
	HealthTimeout time.Duration
	// Metrics is the registry the gateway instruments itself into; nil
	// means a private per-gateway registry (GET /metrics serves it either
	// way). DisableMetrics turns self-telemetry off entirely.
	Metrics        *obs.Registry
	DisableMetrics bool
	// TraceCapacity bounds the request-trace ring (GET /debug/trace);
	// <= 0 means obs.DefaultTraceCapacity.
	TraceCapacity int
}

func (o *GatewayOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

func (o *GatewayOptions) healthTimeout() time.Duration {
	if o.HealthTimeout <= 0 {
		return 2 * time.Second
	}
	return o.HealthTimeout
}

// gatewayMetrics holds the gateway's pre-registered instruments: per-shard
// proxy latency and 502 counts (the ring's health as seen from the routing
// tier) plus redirect issuance. Per-shard series register once at
// construction — the shard set is fixed at boot — so the proxy path is a
// map read plus atomics.
type gatewayMetrics struct {
	reg        *obs.Registry
	redirects  *obs.Counter
	proxyLat   map[string]*obs.Histogram
	badGateway map[string]*obs.Counter
}

func newGatewayMetrics(reg *obs.Registry, shards []string) *gatewayMetrics {
	if reg == nil {
		return nil
	}
	m := &gatewayMetrics{
		reg: reg,
		redirects: reg.Counter("mlexray_gateway_redirects_total",
			"Uploads answered 307 naming the owning shard."),
		proxyLat:   make(map[string]*obs.Histogram, len(shards)),
		badGateway: make(map[string]*obs.Counter, len(shards)),
	}
	for _, name := range shards {
		m.proxyLat[name] = reg.Histogram("mlexray_gateway_proxy_seconds",
			"Proxied request latency by shard.", obs.LatencyBounds(), obs.L("shard", name))
		m.badGateway[name] = reg.Counter("mlexray_gateway_bad_gateway_total",
			"502 answers for unreachable shards, by shard.", obs.L("shard", name))
	}
	return m
}

// Gateway fronts a consistent-hash ring of ingest collectors with the same
// HTTP surface a single collector serves:
//
//	POST /ingest            — routed (proxy or 307) to the device's shard
//	GET  /devices           — union of every shard's device list
//	GET  /devices/{device}  — proxied to the owning shard
//	GET  /fleet             — per-shard snapshots merged into one report
//	GET  /fleet/export      — the merged snapshot union (gateway stacking)
//	GET  /healthz           — gateway + per-shard health
//
// The merged /fleet is byte-identical to a single collector holding every
// session: shards export accumulator-level snapshots (not finished reports)
// and core.MergeFleetSnapshots runs the same finalizer a lone collector
// runs, so fleet-wide sums, divergence gating, and float folding all happen
// exactly once, in the same order.
type Gateway struct {
	opts GatewayOptions
	ring *Ring
	urls map[string]*url.URL

	// met/traces are the gateway's self-telemetry (nil with
	// DisableMetrics); both are nil-safe throughout.
	met    *gatewayMetrics
	traces *obs.TraceRing

	mux *http.ServeMux
}

// NewGateway builds a gateway over the given shard set.
func NewGateway(opts GatewayOptions) (*Gateway, error) {
	names := make([]string, 0, len(opts.Shards))
	urls := make(map[string]*url.URL, len(opts.Shards))
	for _, s := range opts.Shards {
		if s.URL == "" {
			return nil, fmt.Errorf("shard: shard %q has no URL", s.Name)
		}
		u, err := url.Parse(s.URL)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %q URL: %w", s.Name, err)
		}
		names = append(names, s.Name)
		urls[s.Name] = u
	}
	ring, err := NewRing(names, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	// Mirror ingest.NewServer's per-field Validate defaulting so gateway and
	// shards agree on thresholds even when both were built from a partial
	// options struct.
	def := core.DefaultValidateOptions()
	if opts.Validate.AgreementThreshold == 0 {
		opts.Validate.AgreementThreshold = def.AgreementThreshold
	}
	if opts.Validate.NRMSEThreshold == 0 {
		opts.Validate.NRMSEThreshold = def.NRMSEThreshold
	}
	if opts.Validate.StragglerFactor == 0 {
		opts.Validate.StragglerFactor = def.StragglerFactor
	}
	if opts.Validate.Assertions == nil {
		opts.Validate.Assertions = def.Assertions
	}
	g := &Gateway{opts: opts, ring: ring, urls: urls}
	if !opts.DisableMetrics {
		reg := opts.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		g.met = newGatewayMetrics(reg, ring.Shards())
		g.traces = obs.NewTraceRing(opts.TraceCapacity)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", g.handleIngest)
	mux.HandleFunc("GET /devices", g.handleDevices)
	mux.HandleFunc("GET /devices/{device}", g.handleDevice)
	mux.HandleFunc("GET /fleet", g.handleFleet)
	mux.HandleFunc("GET /fleet/export", g.handleFleetExport)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	if g.met != nil {
		mux.Handle("GET /metrics", g.met.reg.Handler())
	}
	if g.traces != nil {
		mux.Handle("GET /debug/trace", g.traces.Handler())
	}
	g.mux = mux
	return g, nil
}

// Metrics returns the gateway's registry (nil when DisableMetrics) — the
// families GET /metrics renders, for in-process scrapers.
func (g *Gateway) Metrics() *obs.Registry {
	if g.met == nil {
		return nil
	}
	return g.met.reg
}

// TraceDump returns the buffered request spans oldest-first — the
// programmatic accessor behind GET /debug/trace.
func (g *Gateway) TraceDump() []obs.Span { return g.traces.Spans("") }

// Traces returns the gateway's bounded span ring (nil with
// DisableMetrics) — what a daemon's -debug-addr listener mounts at
// /debug/trace.
func (g *Gateway) Traces() *obs.TraceRing { return g.traces }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Ring exposes the gateway's placement ring (tests, status tooling).
func (g *Gateway) Ring() *Ring { return g.ring }

// Owner returns the shard name owning a device — the routing decision
// POST /ingest makes, exposed for harnesses that need to aim at (or kill)
// a specific device's shard.
func (g *Gateway) Owner(device string) string { return g.ring.Owner(device) }

// shardTarget rebuilds the incoming request's URI against a shard's base
// URL, preserving path and query.
func (g *Gateway) shardTarget(shard string, u *url.URL) string {
	return strings.TrimRight(g.urls[shard].String(), "/") + u.RequestURI()
}

func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	device := r.Header.Get("X-MLEXray-Device")
	if device == "" {
		device = r.URL.Query().Get("device")
	}
	if device == "" {
		httpError(w, http.StatusBadRequest, "missing device ID (X-MLEXray-Device header or ?device=)")
		return
	}
	owner := g.ring.Owner(device)
	start := time.Now()
	if g.opts.RedirectUploads {
		// 307 keeps the method and body: the client re-POSTs the same chunk
		// to the shard. RemoteSink treats the new endpoint as sticky.
		if g.met != nil {
			g.met.redirects.Inc()
		}
		w.Header().Set("Location", g.shardTarget(owner, r.URL))
		w.Header().Set("X-MLEXray-Shard", owner)
		w.WriteHeader(http.StatusTemporaryRedirect)
		g.traces.RecordSince(r.Header.Get(obs.TraceHeader), "gateway",
			"redirect:"+owner, http.StatusTemporaryRedirect, start)
		return
	}
	sc := &gwStatusCapture{ResponseWriter: w, status: http.StatusOK}
	g.proxy(sc, r, owner)
	g.traces.RecordSince(r.Header.Get(obs.TraceHeader), "gateway",
		"proxy:"+owner, sc.status, start)
}

// gwStatusCapture records the proxied status for the gateway's trace span.
// Unwrap keeps http.ResponseController working through it.
type gwStatusCapture struct {
	http.ResponseWriter
	status int
}

func (s *gwStatusCapture) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *gwStatusCapture) Unwrap() http.ResponseWriter { return s.ResponseWriter }

func (g *Gateway) handleDevice(w http.ResponseWriter, r *http.Request) {
	g.proxy(w, r, g.ring.Owner(r.PathValue("device")))
}

// proxy forwards the request to one shard and relays the response verbatim
// — status, headers (the shard's Retry-After backpressure hints included),
// and body. An unreachable shard is a 502: the gateway is fine, the ring
// member is not.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, shard string) {
	start := time.Now()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, g.shardTarget(shard, r.URL), r.Body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "proxy: %v", err)
		return
	}
	req.Header = r.Header.Clone()
	req.ContentLength = r.ContentLength
	resp, err := g.opts.client().Do(req)
	if g.met != nil {
		g.met.proxyLat[shard].ObserveSince(start)
	}
	if err != nil {
		if g.met != nil {
			g.met.badGateway[shard].Inc()
		}
		httpError(w, http.StatusBadGateway, "shard %q unreachable: %v", shard, err)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// shardConflictError carries a shard's 409 — the shard is alive but cannot
// produce fleet state (collection mode); the gateway relays it as its own
// 409 rather than masking it as a gateway fault.
type shardConflictError struct {
	shard string
	msg   string
}

func (e *shardConflictError) Error() string { return e.msg }

// fanOutSnapshots collects every shard's /fleet/export concurrently.
func (g *Gateway) fanOutSnapshots() ([]core.FleetSessionSnapshot, error) {
	shards := g.ring.Shards()
	type result struct {
		snaps []core.FleetSessionSnapshot
		err   error
	}
	results := make([]result, len(shards))
	var wg sync.WaitGroup
	for i, name := range shards {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i].snaps, results[i].err = g.exportFrom(name)
		}(i, name)
	}
	wg.Wait()
	var all []core.FleetSessionSnapshot
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		all = append(all, results[i].snaps...)
	}
	return all, nil
}

func (g *Gateway) exportFrom(shard string) ([]core.FleetSessionSnapshot, error) {
	resp, err := g.opts.client().Get(strings.TrimRight(g.urls[shard].String(), "/") + "/fleet/export")
	if err != nil {
		return nil, fmt.Errorf("shard %q unreachable: %w", shard, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var body struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return nil, &shardConflictError{shard: shard, msg: body.Error}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("shard %q export: status %d: %s", shard, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var snaps []core.FleetSessionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("shard %q export: %w", shard, err)
	}
	return snaps, nil
}

func (g *Gateway) handleFleet(w http.ResponseWriter, r *http.Request) {
	snaps, err := g.fanOutSnapshots()
	if err != nil {
		var conflict *shardConflictError
		if errors.As(err, &conflict) {
			httpError(w, http.StatusConflict, "%s", conflict.msg)
		} else {
			httpError(w, http.StatusBadGateway, "%v", err)
		}
		return
	}
	rep, err := core.MergeFleetSnapshots(snaps, g.opts.Validate)
	if err != nil {
		// Same body a lone collector's /fleet produces for the same fleet
		// state (e.g. no devices yet).
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	devices := make([]string, 0, len(rep.Devices))
	for _, dr := range rep.Devices {
		devices = append(devices, dr.Device)
	}
	writeJSON(w, http.StatusOK, ingest.FleetResponse{Devices: devices, Report: rep})
}

func (g *Gateway) handleFleetExport(w http.ResponseWriter, r *http.Request) {
	snaps, err := g.fanOutSnapshots()
	if err != nil {
		var conflict *shardConflictError
		if errors.As(err, &conflict) {
			httpError(w, http.StatusConflict, "%s", conflict.msg)
		} else {
			httpError(w, http.StatusBadGateway, "%v", err)
		}
		return
	}
	if snaps == nil {
		snaps = []core.FleetSessionSnapshot{}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Device < snaps[j].Device })
	writeJSON(w, http.StatusOK, snaps)
}

func (g *Gateway) handleDevices(w http.ResponseWriter, r *http.Request) {
	shards := g.ring.Shards()
	lists := make([][]ingest.DeviceStatus, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, name := range shards {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resp, err := g.opts.client().Get(strings.TrimRight(g.urls[name].String(), "/") + "/devices")
			if err != nil {
				errs[i] = fmt.Errorf("shard %q unreachable: %w", name, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("shard %q devices: status %d", name, resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&lists[i])
		}(i, name)
	}
	wg.Wait()
	var out []ingest.DeviceStatus
	for i := range lists {
		if errs[i] != nil {
			httpError(w, http.StatusBadGateway, "%v", errs[i])
			return
		}
		out = append(out, lists[i]...)
	}
	if out == nil {
		out = []ingest.DeviceStatus{}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	writeJSON(w, http.StatusOK, out)
}

// ShardHealth is one ring member's view in the gateway's aggregated
// /healthz: reachability plus the shard's own session totals, so the
// gateway's health answer is a fleet summary, not just its own liveness.
type ShardHealth struct {
	Up            bool   `json:"up"`
	Devices       int    `json:"devices"`
	Evictions     int    `json:"evictions"`
	Resurrections int    `json:"resurrections"`
	Error         string `json:"error,omitempty"`
}

// probeShard fetches one shard's /healthz under the health timeout and
// folds its body into a ShardHealth.
func (g *Gateway) probeShard(ctx context.Context, name string) ShardHealth {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(g.urls[name].String(), "/")+"/healthz", nil)
	if err != nil {
		return ShardHealth{Error: err.Error()}
	}
	resp, err := g.opts.client().Do(req)
	if err != nil {
		return ShardHealth{Error: fmt.Sprintf("unreachable: %v", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ShardHealth{Error: fmt.Sprintf("status %d", resp.StatusCode)}
	}
	var body struct {
		Devices       int `json:"devices"`
		Evictions     int `json:"evictions"`
		Resurrections int `json:"resurrections"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return ShardHealth{Error: fmt.Sprintf("bad health body: %v", err)}
	}
	return ShardHealth{
		Up:            true,
		Devices:       body.Devices,
		Evictions:     body.Evictions,
		Resurrections: body.Resurrections,
	}
}

// handleHealth aggregates per-shard health: every ring member is probed
// concurrently under HealthTimeout (one hung shard cannot stall the
// answer), and the reply carries each shard's up/down plus session totals
// and the fleet-wide sums. "ok" means every shard answered healthy; the
// HTTP status stays 200 either way — reachability of the gateway itself —
// with the detail in the body.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.opts.healthTimeout())
	defer cancel()
	shards := g.ring.Shards()
	health := make([]ShardHealth, len(shards))
	var wg sync.WaitGroup
	for i, name := range shards {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			health[i] = g.probeShard(ctx, name)
		}(i, name)
	}
	wg.Wait()
	status := make(map[string]ShardHealth, len(shards))
	ok := true
	devices, evictions, resurrections := 0, 0, 0
	for i, name := range shards {
		status[name] = health[i]
		ok = ok && health[i].Up
		devices += health[i].Devices
		evictions += health[i].Evictions
		resurrections += health[i].Resurrections
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            ok,
		"shards":        status,
		"devices":       devices,
		"evictions":     evictions,
		"resurrections": resurrections,
		"ring":          map[string]int{"shards": g.ring.N(), "vnodes": g.ring.Vnodes()},
	})
}

// writeJSON must mirror ingest's writeJSON byte-for-byte: the gateway's
// merged /fleet is pinned byte-identical to a single collector's, and the
// envelope encoding is part of that contract.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
