package shard

import (
	"fmt"
	"testing"
)

// testDevices builds a synthetic fleet of K device IDs shaped like the real
// ones the harnesses use (rack/model/serial-ish strings).
func testDevices(k int) []string {
	devs := make([]string, k)
	for i := range devs {
		devs[i] = fmt.Sprintf("d%02d-Pixel%d/unit-%04d", i%16, i%5, i)
	}
	return devs
}

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

// TestRingDeterministicPlacement pins the ring's core contract: placement is
// a pure function of the shard set — identical across independently built
// rings, across input orderings, and across N ∈ {1, 2, 4}.
func TestRingDeterministicPlacement(t *testing.T) {
	devs := testDevices(1000)
	for _, n := range []int{1, 2, 4} {
		names := shardNames(n)
		a, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Same set, reversed input order.
		rev := make([]string, n)
		for i, s := range names {
			rev[n-1-i] = s
		}
		b, err := NewRing(rev, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, d := range devs {
			oa, ob := a.Owner(d), b.Owner(d)
			if oa != ob {
				t.Fatalf("N=%d: device %q placed on %q and %q across builds", n, d, oa, ob)
			}
			counts[oa]++
		}
		if n == 1 && counts["shard-0"] != len(devs) {
			t.Fatalf("single-shard ring did not own everything: %v", counts)
		}
		// Spread sanity: no shard more than 2x the fair share. Consistent
		// hashing is not perfectly uniform, but 128 vnodes keeps skew small.
		fair := len(devs) / n
		for s, c := range counts {
			if n > 1 && c > 2*fair {
				t.Errorf("N=%d: shard %q owns %d of %d keys (fair share %d)", n, s, c, len(devs), fair)
			}
		}
	}
}

// TestRingMinimalMovementOnAdd pins the "consistent" in consistent hashing:
// adding a shard to an N-shard ring moves at most K/N keys, and every moved
// key moves TO the new shard — no key shuffles between surviving shards.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	devs := testDevices(1000)
	for _, n := range []int{1, 2, 4} {
		before, err := NewRing(shardNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		added := fmt.Sprintf("shard-%d", n)
		after, err := NewRing(append(shardNames(n), added), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, d := range devs {
			oa, ob := before.Owner(d), after.Owner(d)
			if oa == ob {
				continue
			}
			if ob != added {
				t.Fatalf("N=%d→%d: device %q moved %q→%q, but only the new shard %q may gain keys",
					n, n+1, d, oa, ob, added)
			}
			moved++
		}
		if bound := len(devs) / n; moved > bound {
			t.Errorf("N=%d→%d: %d keys moved, want <= K/N = %d", n, n+1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("N=%d→%d: new shard received no keys", n, n+1)
		}
		t.Logf("N=%d→%d: moved %d/%d keys (bound %d)", n, n+1, moved, len(devs), len(devs)/n)
	}
}

// TestRingMinimalMovementOnRemove is the mirror: removing a shard moves only
// the keys it owned, each landing somewhere on the survivors, and no
// surviving shard loses a key.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	devs := testDevices(1000)
	for _, n := range []int{2, 4} {
		names := shardNames(n)
		before, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		removed := names[n-1]
		after, err := NewRing(names[:n-1], 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, d := range devs {
			oa, ob := before.Owner(d), after.Owner(d)
			if oa == ob {
				continue
			}
			if oa != removed {
				t.Fatalf("N=%d→%d: device %q moved %q→%q though %q was the shard removed",
					n, n-1, d, oa, ob, removed)
			}
			moved++
		}
		if bound := len(devs) / (n - 1); moved > bound {
			t.Errorf("N=%d→%d: %d keys moved, want <= K/(N-1) = %d", n, n-1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("N=%d→%d: removed shard owned no keys", n, n-1)
		}
	}
}

// TestRingRejectsBadMembership pins constructor validation.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard name accepted")
	}
}
