package ingest

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALRecovery hands arbitrary bytes to the collector's startup WAL
// replay as a segment file. Whatever the corruption — bit flips, truncation,
// length prefixes claiming gigabytes, CRC-valid entries whose bodies do not
// decode — recovery must never panic: it either rejects the segment outright
// (an unreadable header is an error, not silent data loss) or truncates the
// torn tail / skips the bad chunk and reports it via Recovery().
func FuzzWALRecovery(f *testing.F) {
	// Seed corpus: a real segment written by the production append path
	// (two MLXB chunks, same shape wal_test.go drives), plus truncations
	// and single-byte corruptions of it — the shapes a torn disk actually
	// produces. The fuzzer mutates from there.
	dir := f.TempDir()
	w, err := createSessionWAL(walConfig{dir: dir}, "fuzz-device")
	if err != nil {
		f.Fatal(err)
	}
	l := synthLog(4, nil, false)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 2; i++ {
		body := chunkBody(f, l, i*2, i*2+2)
		e := walEntry{stream: "s1", chunk: i, when: base.Add(time.Duration(i) * time.Second), body: body}
		if err := w.append(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(walPath(dir, "fuzz-device"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	f.Add(seg[:len(walMagic)+1])
	f.Add([]byte{})
	for _, pos := range []int{2, len(walMagic) + 2, len(seg) / 3, len(seg) - 3} {
		mut := append([]byte(nil), seg...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fuzz-device.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerOptions{DataDir: dir, MaxBodyBytes: 1 << 20})
		if err != nil {
			// Rejected segments are fine; panics are not.
			return
		}
		defer srv.Close()
		stats := srv.Recovery()
		if stats.Sessions > 1 {
			t.Fatalf("one segment recovered %d sessions", stats.Sessions)
		}
		_ = srv.Devices()
	})
}
