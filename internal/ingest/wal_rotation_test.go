package ingest

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
)

// TestWALSegmentRotationExactRecovery pins the rotation tentpole: with a
// small segment-size threshold the session's log rolls across several
// numbered segments and closed segments compact, yet a kill-and-restart
// over the directory still serves /fleet and /devices/{id} byte-identical
// to an uninterrupted collector that never rotated — segmentation is a
// storage layout, not a semantics change.
func TestWALSegmentRotationExactRecovery(t *testing.T) {
	const frames = 12
	ref := synthLog(frames, nil, false)
	l := synthLog(frames, nil, false)
	var uploads []chunkUpload
	for i := 0; i < frames; i++ {
		uploads = append(uploads, chunkUpload{"dev", "s1", i, chunkBody(t, l, i, i+1)})
	}

	run := func(dataDir string, segmentBytes int64, restartAt int) (fleet, dev []byte) {
		clock := &tickClock{}
		newSrv := func() (*Server, *httptest.Server) {
			srv, err := NewServer(ServerOptions{
				Ref: ref, DataDir: dataDir, Clock: clock.Now,
				SegmentBytes: segmentBytes, CompactAfter: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			return srv, httptest.NewServer(srv)
		}
		srv, ts := newSrv()
		for i, up := range uploads {
			if i == restartAt {
				ts.Close()
				srv.Close()
				srv, ts = newSrv()
				rs := srv.Recovery()
				if rs.Sessions != 1 || rs.Chunks != i || rs.SkippedChunks != 0 {
					t.Fatalf("recovery stats after %d uploads: %+v", i, rs)
				}
			}
			if resp, _ := postChunk(t, ts.URL, up); resp.StatusCode != 200 {
				t.Fatalf("upload %d: status %d", i, resp.StatusCode)
			}
		}
		fleet = getBytes(t, ts.URL+"/fleet")
		dev = getBytes(t, ts.URL+"/devices/dev")
		ts.Close()
		srv.Close()
		return fleet, dev
	}

	wantFleet, wantDev := run(t.TempDir(), 0, -1) // single segment, uninterrupted

	rotDir := t.TempDir()
	gotFleet, gotDev := run(rotDir, 256, 7) // tiny threshold: every chunk rolls

	segs, err := deviceSegments(rotDir, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("256-byte threshold produced %d segment(s), want rotation", len(segs))
	}
	// Compaction must have merged old closed segments: with CompactAfter 3
	// the closed set never exceeds 3 at a roll boundary, so at most
	// 3 closed + 1 active files remain.
	if len(segs) > 4 {
		t.Errorf("compaction left %d segments on disk, want <= 4", len(segs))
	}
	for _, s := range segs[1:] {
		if s.seq == 0 {
			t.Errorf("duplicate segment 0 in %+v", segs)
		}
	}

	if !bytes.Equal(wantFleet, gotFleet) {
		t.Errorf("rotated+recovered /fleet differs:\nplain:   %s\nrotated: %s", wantFleet, gotFleet)
	}
	if !bytes.Equal(wantDev, gotDev) {
		t.Errorf("rotated+recovered /devices/dev differs:\nplain:   %s\nrotated: %s", wantDev, gotDev)
	}
}

// TestWALCompactionCrashWindowDedup reconstructs the worst compaction crash
// window — the merged file has been renamed into place but the originals
// were not yet removed, so every merged entry exists in two files — and
// checks recovery replays each entry exactly once, by its per-session index.
func TestWALCompactionCrashWindowDedup(t *testing.T) {
	dir := t.TempDir()
	ref := synthLog(8, nil, false)
	l := synthLog(8, nil, false)

	// Build a 3-segment log by hand: tiny threshold rolls on every append.
	w, err := createSessionWAL(walConfig{dir: dir, segmentBytes: 1}, "dev")
	if err != nil {
		t.Fatal(err)
	}
	clock := &tickClock{}
	for i := 0; i < 3; i++ {
		e := walEntry{stream: "s1", chunk: i, when: clock.Now(), body: chunkBody(t, l, i*2, i*2+2)}
		if err := w.append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := deviceSegments(dir, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("setup built %d segments, want 3 (one entry each)", len(segs))
	}

	// Freeze the closed originals, compact them, then restore the originals
	// next to the merged file: the post-rename pre-remove crash state.
	frozen := make(map[string][]byte)
	for _, s := range segs[:2] {
		b, err := os.ReadFile(s.path)
		if err != nil {
			t.Fatal(err)
		}
		frozen[s.path] = b
	}
	if err := compactClosedSegments(dir, "dev", 2, 2); err != nil {
		t.Fatal(err)
	}
	after, err := deviceSegments(dir, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("compaction left %d segments, want 2 (merged + active)", len(after))
	}
	for path, b := range frozen {
		if _, err := os.Stat(path); err == nil && path == after[0].path {
			continue // the merged target keeps its name
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rs := srv.Recovery()
	if rs.Sessions != 1 || rs.Chunks != 3 || rs.SkippedChunks != 0 {
		t.Fatalf("crash-window recovery stats = %+v, want exactly 3 chunks once each", rs)
	}
	wantRecs := 0
	for _, r := range l.Records {
		if r.Frame < 6 {
			wantRecs++
		}
	}
	if got := srv.Session("dev").Records(); got != wantRecs {
		t.Errorf("recovered session holds %d records, want %d", got, wantRecs)
	}
}

// TestHealthzReportsWALSegments pins the observability satellite: /healthz
// carries per-session segment counts and on-disk byte totals, including for
// sessions whose logs rotated.
func TestHealthzReportsWALSegments(t *testing.T) {
	dir := t.TempDir()
	ref := synthLog(6, nil, false)
	l := synthLog(6, nil, false)
	srv, err := NewServer(ServerOptions{Ref: ref, DataDir: dir, SegmentBytes: 256, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		if resp, _ := postChunk(t, ts.URL, chunkUpload{"rack-1/slot 2", "s1", i, chunkBody(t, l, i*2, i*2+2)}); resp.StatusCode != 200 {
			t.Fatalf("chunk %d: status %d", i, resp.StatusCode)
		}
	}
	var health struct {
		OK  bool                       `json:"ok"`
		WAL map[string]SessionWALStats `json:"wal"`
	}
	if err := json.Unmarshal(getBytes(t, ts.URL+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	got, ok := health.WAL["rack-1/slot 2"]
	if !ok {
		t.Fatalf("healthz wal stats missing device: %+v", health.WAL)
	}
	segs, err := deviceSegments(dir, "rack-1/slot 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("rotation did not engage: %d segments", len(segs))
	}
	wantBytes := int64(0)
	for _, s := range segs {
		st, err := os.Stat(s.path)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes += st.Size()
	}
	if got.Segments != len(segs) || got.Bytes != wantBytes {
		t.Errorf("healthz wal stats = %+v, want %d segments / %d bytes", got, len(segs), wantBytes)
	}
}
