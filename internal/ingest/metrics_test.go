package ingest

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlexray/internal/obs"
)

// TestServerMetricsExposition drives a live durable collector and pins the
// scrape: /metrics parses as Prometheus text, the chunk/byte/frame counters
// match what was uploaded, response statuses are labeled, and the WAL
// append/fsync histograms saw every durable append.
func TestServerMetricsExposition(t *testing.T) {
	ref := synthLog(4, nil, false)
	srv, err := NewServer(ServerOptions{Ref: ref, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	l := synthLog(4, nil, false)

	for i, lo := range []int{0, 2} {
		if resp, _ := postChunk(t, ts.URL, chunkUpload{"dev-m", "gen-1", i, chunkBody(t, l, lo, lo+2)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, resp.StatusCode)
		}
	}
	// A duplicate: acked idempotently, counted as a dup, not as a chunk.
	if resp, _ := postChunk(t, ts.URL, chunkUpload{"dev-m", "gen-1", 0, chunkBody(t, l, 0, 2)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("dup chunk: status %d", resp.StatusCode)
	}

	body := getBytes(t, ts.URL+"/metrics")
	parsed, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	checks := map[string]float64{
		"mlexray_ingest_chunks_total":           2,
		"mlexray_ingest_duplicate_chunks_total": 1,
		"mlexray_ingest_sessions_live":          1,
		"mlexray_wal_append_seconds_count":      2,
		"mlexray_wal_fsync_seconds_count":       2,
	}
	for name, want := range checks {
		if got := obs.SumSeries(parsed, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := parsed[`mlexray_ingest_responses_total{status="200"}`]; got != 3 {
		t.Errorf(`responses{status="200"} = %v, want 3`, got)
	}
	if obs.SumSeries(parsed, "mlexray_ingest_frames_total") != 4 {
		t.Errorf("frames_total = %v, want 4", obs.SumSeries(parsed, "mlexray_ingest_frames_total"))
	}
	if obs.SumSeries(parsed, "mlexray_ingest_bytes_total") == 0 {
		t.Error("bytes_total = 0 after uploads")
	}
	if obs.SumSeries(parsed, "mlexray_ingest_request_seconds_count") != 3 {
		t.Errorf("request_seconds_count = %v, want 3", obs.SumSeries(parsed, "mlexray_ingest_request_seconds_count"))
	}
}

// TestMetricsCountRecoveryReplay pins the reconcile seed: the counters are
// registered before WAL recovery runs, so a restarted collector's
// chunks_total reflects every replayed chunk — the storm's final scrape
// compares exactly this against the client-side acked set.
func TestMetricsCountRecoveryReplay(t *testing.T) {
	ref := synthLog(4, nil, false)
	dir := t.TempDir()
	srv, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	l := synthLog(4, nil, false)
	for i, lo := range []int{0, 2} {
		if resp, _ := postChunk(t, ts.URL, chunkUpload{"dev-r", "gen-1", i, chunkBody(t, l, lo, lo+2)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, resp.StatusCode)
		}
	}
	ts.Close()
	srv.Close()

	restarted, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(restarted)
	defer ts2.Close()
	parsed, err := obs.ParseText(getBytes(t, ts2.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SumSeries(parsed, "mlexray_ingest_chunks_total"); got != 2 {
		t.Errorf("replayed chunks_total = %v, want 2", got)
	}
	if got := obs.SumSeries(parsed, "mlexray_ingest_sessions_live"); got != 1 {
		t.Errorf("sessions_live after recovery = %v, want 1", got)
	}
}

// TestHealthzSweepsIdleSessions pins the staleness fix: only the ingest
// path used to run the idle sweep, so an otherwise-quiet collector would
// report evicted-eligible sessions as live forever. A health probe must
// observe the world as the sweep would leave it.
func TestHealthzSweepsIdleSessions(t *testing.T) {
	ref := synthLog(4, nil, false)
	clock := newManualClock()
	srv, err := NewServer(ServerOptions{
		Ref:         ref,
		DataDir:     t.TempDir(),
		IdleTimeout: 10 * time.Second,
		Clock:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	l := synthLog(4, nil, false)
	if resp, _ := postChunk(t, ts.URL, chunkUpload{"dev-h", "gen-1", 0, chunkBody(t, l, 0, 2)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk: status %d", resp.StatusCode)
	}

	if body := getBytes(t, ts.URL+"/healthz"); !strings.Contains(string(body), `"devices": 1`) &&
		!strings.Contains(string(body), `"devices":1`) {
		t.Fatalf("healthz before idle horizon: %s", body)
	}
	clock.Advance(11 * time.Second)
	// No ingest traffic arrives; the probe alone must sweep.
	body := string(getBytes(t, ts.URL+"/healthz"))
	if !strings.Contains(body, `"devices": 0`) && !strings.Contains(body, `"devices":0`) {
		t.Errorf("healthz did not sweep the idle session: %s", body)
	}
	if srv.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1 from the health-probe sweep", srv.Evictions())
	}
}

// TestDisableMetrics pins the bare path: no registry, no trace ring, no
// /metrics endpoint — the benchmark baseline really does run unobserved.
func TestDisableMetrics(t *testing.T) {
	srv, err := NewServer(ServerOptions{Ref: synthLog(2, nil, false), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Metrics() != nil {
		t.Error("DisableMetrics left a registry")
	}
	if srv.TraceDump() != nil {
		t.Error("DisableMetrics left a trace ring")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestSinkStats pins the client-side upload summary: chunk/byte totals,
// retries and give-ups, for edgerun's end-of-run report.
func TestSinkStats(t *testing.T) {
	var fail = true
	srv, err := NewServer(ServerOptions{Ref: synthLog(4, nil, false)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail && r.Method == http.MethodPost {
			fail = false
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	sink, err := NewRemoteSink(SinkOptions{
		URL: ts.URL, Device: "dev-s", ChunkBytes: 256,
		RetryBackoff: time.Millisecond, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploadLog(t, sink, synthLog(4, nil, false))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	st := sink.Stats()
	if st.Device != "dev-s" {
		t.Errorf("stats device = %q", st.Device)
	}
	if st.Chunks == 0 || st.WireBytes == 0 || st.Records == 0 || st.Frames == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.Retries != 1 {
		t.Errorf("stats retries = %d, want 1 (one injected 503)", st.Retries)
	}
	if st.GiveUps != 0 || st.LastErr != "" {
		t.Errorf("clean upload reported failures: %+v", st)
	}
	if st.BackoffSlept <= 0 {
		t.Error("retry recorded no backoff sleep")
	}

	// The same story lands on the client's registry.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseText([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SumSeries(parsed, "mlexray_sink_chunks_total"); got != float64(st.Chunks) {
		t.Errorf("sink chunks counter = %v, want %d", got, st.Chunks)
	}
	if got := obs.SumSeries(parsed, "mlexray_sink_retries_total"); got != 1 {
		t.Errorf("sink retries counter = %v, want 1", got)
	}
}
