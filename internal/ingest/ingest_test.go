package ingest

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// synthLog builds a small synthetic telemetry log: per-layer tensors and
// latency plus one model output per frame, for the frames in own (nil: all
// of [0,frames)). bugged shifts layer values and flips outputs.
func synthLog(frames int, own []int, bugged bool) *core.Log {
	owned := make(map[int]bool)
	if own == nil {
		for f := 0; f < frames; f++ {
			owned[f] = true
		}
	} else {
		for _, f := range own {
			owned[f] = true
		}
	}
	layers := []string{"conv1", "dw1"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D"}
	l := &core.Log{}
	seq := 0
	for f := 0; f < frames; f++ {
		if !owned[f] {
			continue
		}
		for li, name := range layers {
			tt := tensor.New(tensor.F32, 8)
			for i := range tt.F {
				tt.F[i] = float32(f + li + i)
				if bugged {
					tt.F[i] += 40
				}
			}
			var r core.Record
			r.Seq, r.Frame = seq, f
			r.Key = core.LayerOutputKey(name)
			r.LayerIndex, r.LayerName, r.OpType = li, name, opTypes[li]
			r.EncodeTensor(tt, true)
			l.Records = append(l.Records, r)
			seq++
			l.Records = append(l.Records, core.Record{
				Seq: seq, Frame: f, Key: core.LayerLatencyKey(name), Kind: core.KindMetric,
				LayerIndex: li, LayerName: name, OpType: opTypes[li],
				Value: float64(1000 * (li + 1)), Unit: "ns",
			})
			seq++
		}
		out := tensor.New(tensor.F32, 4)
		idx := f % 4
		if bugged {
			idx = (f + 1) % 4
		}
		out.F[idx] = 1
		var r core.Record
		r.Seq, r.Frame = seq, f
		r.Key = core.KeyModelOutput
		r.EncodeTensor(out, true)
		l.Records = append(l.Records, r)
		seq++
	}
	return l
}

// uploadLog streams a log to the collector through a RemoteSink, one frame
// per write, and flushes.
func uploadLog(t testing.TB, sink *RemoteSink, l *core.Log) {
	t.Helper()
	start := 0
	for start < len(l.Records) {
		end := start
		for end < len(l.Records) && l.Records[end].Frame == l.Records[start].Frame {
			end++
		}
		if err := sink.WriteFrame(l.Records[start].Frame, l.Records[start:end]); err != nil {
			t.Fatalf("write frame %d: %v", l.Records[start].Frame, err)
		}
		start = end
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
}

func newTestServer(t testing.TB, ref *core.Log) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(ServerOptions{Ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t testing.TB, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestServerFleetMatchesOfflineSynthetic pins the server-side fleet report to
// the offline FleetValidate over the same shard streams, with devices
// uploading in different encodings (plain JSONL, gzip JSONL, binary) and
// tiny chunks so every stream spans many HTTP requests.
func TestServerFleetMatchesOfflineSynthetic(t *testing.T) {
	const frames = 12
	ref := synthLog(frames, nil, false)
	_, ts := newTestServer(t, ref)

	specs := []struct {
		device string
		format core.LogFormat
		gz     bool
		bugged bool
	}{
		{"d0-a", core.FormatJSONL, false, false},
		{"d1-b", core.FormatJSONL, true, true},
		{"d2-c", core.FormatBinary, false, false},
	}
	var shards []core.DeviceShardLog
	for d, spec := range specs {
		var own []int
		for f := d; f < frames; f += len(specs) {
			own = append(own, f)
		}
		shard := synthLog(frames, own, spec.bugged)
		shards = append(shards, core.DeviceShardLog{Device: spec.device, Log: shard})
		sink, err := NewRemoteSink(SinkOptions{
			URL: ts.URL, Device: spec.device, Format: spec.format, Gzip: spec.gz,
			ChunkBytes: 256, // force many chunks
		})
		if err != nil {
			t.Fatal(err)
		}
		uploadLog(t, sink, shard)
		if sink.Chunks() < 2 {
			t.Errorf("%s: %d chunks, want a chunked upload", spec.device, sink.Chunks())
		}
	}

	want, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	var got FleetResponse
	if resp := getJSON(t, ts.URL+"/fleet", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status %d", resp.StatusCode)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got.Report)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("server fleet report differs from offline FleetValidate:\nserver:  %s\noffline: %s", gotJSON, wantJSON)
	}
	if len(got.Report.Flagged) != 1 || got.Report.Flagged[0] != "d1-b" {
		t.Errorf("flagged %v, want exactly the bugged d1-b", got.Report.Flagged)
	}

	// Per-device status: counters and an incremental report for the bugged
	// device showing the drop.
	var st DeviceStatus
	getJSON(t, ts.URL+"/devices/d1-b", &st)
	if st.Records != len(shards[1].Log.Records) {
		t.Errorf("d1-b records = %d, want %d", st.Records, len(shards[1].Log.Records))
	}
	if st.Report == nil {
		t.Fatalf("d1-b report missing (report_error %q)", st.ReportError)
	}
	if st.Report.OutputAgreement >= 0.98 {
		t.Errorf("bugged device agreement %.2f, want < 0.98", st.Report.OutputAgreement)
	}
}

// TestServerConcurrentUploads hammers one collector from many devices at
// once — interleaved chunked uploads racing status and fleet-report reads —
// and then checks the final fleet report still matches the offline
// validation. Run under -race this pins the locking discipline.
func TestServerConcurrentUploads(t *testing.T) {
	const frames = 24
	const devices = 8
	ref := synthLog(frames, nil, false)
	_, ts := newTestServer(t, ref)

	var shards []core.DeviceShardLog
	for d := 0; d < devices; d++ {
		var own []int
		for f := d; f < frames; f += devices {
			own = append(own, f)
		}
		shards = append(shards, core.DeviceShardLog{
			Device: fmt.Sprintf("dev-%02d", d),
			Log:    synthLog(frames, own, d == 3),
		})
	}

	var wg sync.WaitGroup
	errs := make([]error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sink, err := NewRemoteSink(SinkOptions{
				URL: ts.URL, Device: shards[d].Device,
				Format: core.LogFormat(d % 2), Gzip: d%3 == 0,
				ChunkBytes: 128,
			})
			if err != nil {
				errs[d] = err
				return
			}
			l := shards[d].Log
			start := 0
			for start < len(l.Records) {
				end := start
				for end < len(l.Records) && l.Records[end].Frame == l.Records[start].Frame {
					end++
				}
				if err := sink.WriteFrame(l.Records[start].Frame, l.Records[start:end]); err != nil {
					errs[d] = err
					return
				}
				start = end
			}
			errs[d] = sink.Flush()
		}(d)
	}
	// Status reads race the uploads: they must never observe torn state.
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/fleet")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			resp, err = http.Get(ts.URL + "/devices")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(stop)
	pollWG.Wait()
	for d, err := range errs {
		if err != nil {
			t.Fatalf("device %d upload: %v", d, err)
		}
	}

	want, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	var got FleetResponse
	getJSON(t, ts.URL+"/fleet", &got)
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got.Report)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("concurrent-upload fleet report differs from offline:\nserver:  %s\noffline: %s", gotJSON, wantJSON)
	}
	if len(got.Devices) != devices {
		t.Errorf("%d devices, want %d", len(got.Devices), devices)
	}
}

// TestEndToEndFleetReplayUpload is the acceptance flow: a heterogeneous
// fleet replay streams per-device telemetry through RemoteSinks into a live
// collector, and the server's /fleet report equals core.FleetValidate run
// offline on the shard logs the replay kept locally.
func TestEndToEndFleetReplayUpload(t *testing.T) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 24
	images := replay.Images(datasets.SynthImageNet(5555, frames))
	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}

	ref, err := replay.Classification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, images,
		runner.Options{Workers: 2, BatchFrames: 2, MonitorOptions: monOpts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ref)

	devs := []runner.DeviceSpec{
		{Profile: device.Pixel4(), Workers: 2, BatchFrames: 4},
		{Profile: device.Pixel3(), Workers: 1, BatchFrames: 2},
		{Profile: device.EmulatorX86(), Workers: 1, BatchFrames: 2},
	}
	names := make([]string, len(devs))
	sinks := make([]*RemoteSink, len(devs))
	for d := range devs {
		names[d] = fmt.Sprintf("d%d-%s", d, devs[d].Name())
		sinks[d], err = NewRemoteSink(SinkOptions{
			URL: ts.URL, Device: names[d],
			Format: core.FormatBinary, Gzip: d%2 == 0,
			ChunkBytes: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		devs[d].Sink = sinks[d]
	}
	const bugged = 1
	fleet := &runner.Fleet{Devices: devs, Policy: runner.RoundRobin{}, MonitorOptions: monOpts}
	res, err := replay.FleetClassification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images, fleet,
		func(dev int, spec runner.DeviceSpec, o *pipeline.Options) {
			if dev == bugged {
				o.Bug = pipeline.BugNormalization
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for d := range sinks {
		if err := sinks[d].Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Offline cross-validation of the same shards, in the server's
	// device-name order.
	shards := make([]core.DeviceShardLog, len(devs))
	for d := range devs {
		shards[d] = core.DeviceShardLog{Device: names[d], Log: res.DeviceLogs[d]}
	}
	want, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}

	var got FleetResponse
	if resp := getJSON(t, ts.URL+"/fleet", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status %d", resp.StatusCode)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got.Report)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("live /fleet report differs from offline FleetValidate:\nserver:  %s\noffline: %s", gotJSON, wantJSON)
	}
	if len(got.Report.Flagged) != 1 || got.Report.Flagged[0] != names[bugged] {
		t.Errorf("flagged %v, want exactly %s", got.Report.Flagged, names[bugged])
	}
	if !reflect.DeepEqual(got.Devices, names) {
		t.Errorf("devices %v, want %v", got.Devices, names)
	}
}

// TestRemoteSinkRetryBackoff pins the retry contract: transient 5xx
// responses retry with backoff and the stream completes; a 4xx fails fast.
func TestRemoteSinkRetryBackoff(t *testing.T) {
	ref := synthLog(4, nil, false)
	srv, err := NewServer(ServerOptions{Ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	failures := 2
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "drained", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	sink, err := NewRemoteSink(SinkOptions{
		URL: flaky.URL, Device: "flaky-dev", Format: core.FormatJSONL,
		ChunkBytes: 1 << 20, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := synthLog(4, nil, false)
	uploadLog(t, sink, l)
	if sink.Retries() < 2 {
		t.Errorf("%d retries recorded, want >= 2", sink.Retries())
	}
	if sv := srv.Session("flaky-dev"); sv == nil || sv.Records() != len(l.Records) {
		t.Errorf("collector holds %v records, want %d", sv, len(l.Records))
	}

	// 4xx must not retry: a sink pointed at a rejecting endpoint fails fast
	// and sticks.
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad stream", http.StatusBadRequest)
	}))
	defer reject.Close()
	sink2, err := NewRemoteSink(SinkOptions{
		URL: reject.URL, Device: "d", Format: core.FormatJSONL, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.WriteFrame(0, l.Records[:1]); err != nil {
		t.Fatalf("buffered write failed: %v", err)
	}
	if err := sink2.Flush(); err == nil {
		t.Error("flush to rejecting collector succeeded")
	}
	if sink2.Retries() != 0 {
		t.Errorf("4xx retried %d times", sink2.Retries())
	}
	if err := sink2.WriteFrame(1, l.Records[:1]); err == nil {
		t.Error("write after failed flush did not surface the sticky error")
	}
}

// TestRemoteSinkGzipShrinksWire pins the compression satellite end to end:
// the same stream costs fewer wire bytes with Gzip on, and the server
// decodes both identically.
func TestRemoteSinkGzipShrinksWire(t *testing.T) {
	ref := synthLog(6, nil, false)
	srv, ts := newTestServer(t, ref)
	l := synthLog(6, nil, false)
	wire := map[bool]int{}
	for _, gz := range []bool{false, true} {
		name := fmt.Sprintf("gz-%v", gz)
		sink, err := NewRemoteSink(SinkOptions{
			URL: ts.URL, Device: name, Format: core.FormatJSONL, Gzip: gz,
		})
		if err != nil {
			t.Fatal(err)
		}
		uploadLog(t, sink, l)
		wire[gz] = sink.Bytes()
		if sv := srv.Session(name); sv.Records() != len(l.Records) {
			t.Errorf("%s: server holds %d records, want %d", name, sv.Records(), len(l.Records))
		}
	}
	if wire[true] >= wire[false] {
		t.Errorf("gzip wire bytes %d not below plain %d", wire[true], wire[false])
	}
}

// TestServerRequestValidation pins the protocol errors: missing device IDs,
// undecodable bodies, unknown devices and report endpoints without a
// reference log.
func TestServerRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, synthLog(2, nil, false))

	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing device: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/ingest?device=x", "application/octet-stream",
		strings.NewReader("not a log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d (%s), want 400", resp.StatusCode, body)
	}

	if resp := getJSON(t, ts.URL+"/devices/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown device: status %d, want 404", resp.StatusCode)
	}

	// Collection mode: ingestion works, reports 409.
	_, tsNoRef := func() (*Server, *httptest.Server) {
		srv, err := NewServer(ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h := httptest.NewServer(srv)
		t.Cleanup(h.Close)
		return srv, h
	}()
	sink, err := NewRemoteSink(SinkOptions{URL: tsNoRef.URL, Device: "d", Format: core.FormatBinary})
	if err != nil {
		t.Fatal(err)
	}
	uploadLog(t, sink, synthLog(2, nil, false))
	if resp := getJSON(t, tsNoRef.URL+"/fleet", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("collection-mode /fleet: status %d, want 409", resp.StatusCode)
	}
	var st DeviceStatus
	getJSON(t, tsNoRef.URL+"/devices/d", &st)
	if st.Records == 0 || st.ReportError == "" {
		t.Errorf("collection-mode status = %+v, want counted records and a report_error", st)
	}
}

// TestIngestChunkIdempotency pins the retry contract on the server side: a
// chunk replayed with the same sequence number (a retry whose first
// response was lost) is acknowledged without re-ingesting, and a sequence
// gap is rejected — what keeps streamed reports equal to offline ones under
// at-least-once delivery.
func TestIngestChunkIdempotency(t *testing.T) {
	srv, ts := newTestServer(t, synthLog(4, nil, false))
	l := synthLog(4, nil, false)
	var chunk bytes.Buffer
	if err := l.Write(&chunk, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	post := func(idx string) (*http.Response, IngestResponse) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest?device=d", bytes.NewReader(chunk.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if idx != "" {
			req.Header.Set("X-MLEXray-Chunk", idx)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ir IngestResponse
		_ = json.NewDecoder(resp.Body).Decode(&ir)
		return resp, ir
	}
	if resp, ir := post("0"); resp.StatusCode != http.StatusOK || ir.Records != len(l.Records) {
		t.Fatalf("first delivery: status %d, records %d", resp.StatusCode, ir.Records)
	}
	// Replay of the applied chunk: acknowledged, nothing re-ingested.
	resp, ir := post("0")
	if resp.StatusCode != http.StatusOK || !ir.Duplicate {
		t.Errorf("replayed chunk: status %d duplicate=%v, want 200 + duplicate", resp.StatusCode, ir.Duplicate)
	}
	if ir.Records != len(l.Records) || srv.Session("d").Records() != len(l.Records) {
		t.Errorf("replayed chunk double-ingested: session holds %d records, want %d",
			srv.Session("d").Records(), len(l.Records))
	}
	// A gap means a lost chunk: refuse rather than silently skip.
	if resp, _ := post("5"); resp.StatusCode != http.StatusConflict {
		t.Errorf("gapped chunk: status %d, want 409", resp.StatusCode)
	}
	// Headerless uploads (curl) apply unconditionally.
	if resp, ir := post(""); resp.StatusCode != http.StatusOK || ir.Records != 2*len(l.Records) {
		t.Errorf("headerless upload: status %d records %d, want %d", resp.StatusCode, ir.Records, 2*len(l.Records))
	}
}

// TestIngestNewStreamAppends pins the upload-generation contract: a second
// RemoteSink for the same device (a client re-run against a long-lived
// collector) restarts chunk numbering under a fresh stream token and its
// data APPENDS — it must not be dropped as duplicate chunks of the first
// run.
func TestIngestNewStreamAppends(t *testing.T) {
	srv, ts := newTestServer(t, synthLog(4, nil, false))
	l := synthLog(4, nil, false)
	for run := 0; run < 2; run++ {
		sink, err := NewRemoteSink(SinkOptions{
			URL: ts.URL, Device: "rerun-dev", Format: core.FormatBinary, ChunkBytes: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		uploadLog(t, sink, l)
	}
	if got, want := srv.Session("rerun-dev").Records(), 2*len(l.Records); got != want {
		t.Errorf("after two upload runs the session holds %d records, want %d (second run dropped?)", got, want)
	}
}

// TestIngestDecompressionBomb pins the decoded-footprint cap: a small gzip
// body that decodes far past MaxBodyBytes is rejected with 413 instead of
// being buffered.
func TestIngestDecompressionBomb(t *testing.T) {
	srv, err := NewServer(ServerOptions{MaxBodyBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A highly repetitive log: one big zero-filled tensor per record
	// compresses ~1000:1.
	l := &core.Log{}
	zero := tensor.New(tensor.F32, 64<<10)
	for i := 0; i < 8; i++ {
		var r core.Record
		r.Seq, r.Frame, r.Key = i, i, "bomb"
		r.EncodeTensor(zero, true)
		l.Records = append(l.Records, r)
	}
	var body bytes.Buffer
	zw := gzip.NewWriter(&body)
	if err := l.Write(zw, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if body.Len() >= 64<<10 {
		t.Fatalf("bomb body %d bytes does not fit the wire cap", body.Len())
	}
	resp, err := http.Post(ts.URL+"/ingest?device=bomber", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("decompression bomb: status %d, want 413", resp.StatusCode)
	}
}

// TestHeaderlessUploadDoesNotResetStream is the stream-reset regression: a
// curl-style headerless upload arriving mid-way through an active RemoteSink
// stream must not disturb the stream's chunk numbering. Pre-fix, the
// headerless chunk overwrote the session's stream token and reset nextChunk
// to 0, so the sink's next in-sequence chunk drew a spurious 409 and the
// sink went sticky-failed.
func TestHeaderlessUploadDoesNotResetStream(t *testing.T) {
	srv, ts := newTestServer(t, synthLog(4, nil, false))
	l := synthLog(4, nil, false)
	sink, err := NewRemoteSink(SinkOptions{
		URL: ts.URL, Device: "mixed", Format: core.FormatBinary,
		ChunkBytes: 1, // ship every frame as its own chunk
	})
	if err != nil {
		t.Fatal(err)
	}
	writeFrames := func(lo, hi int) {
		start := 0
		for start < len(l.Records) {
			end := start
			for end < len(l.Records) && l.Records[end].Frame == l.Records[start].Frame {
				end++
			}
			if f := l.Records[start].Frame; f >= lo && f < hi {
				if err := sink.WriteFrame(f, l.Records[start:end]); err != nil {
					t.Fatalf("write frame %d: %v", f, err)
				}
			}
			start = end
		}
	}

	writeFrames(0, 2) // chunks 0 and 1 of the sink's stream are on the server

	// The operator curls an extra log into the same device mid-stream.
	extra := synthLog(4, []int{2}, false)
	var curl bytes.Buffer
	if err := extra.Write(&curl, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest?device=mixed", "application/octet-stream", &curl)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("curl upload: status %d", resp.StatusCode)
	}

	// The sink keeps streaming: its chunk 2 must be accepted in sequence, not
	// rejected because the curl upload reset the generation state.
	writeFrames(2, 4)
	if err := sink.Flush(); err != nil {
		t.Fatalf("sink failed after interleaved headerless upload: %v", err)
	}
	if got, want := srv.Session("mixed").Records(), len(l.Records)+len(extra.Records); got != want {
		t.Errorf("session holds %d records, want %d (sink + curl)", got, want)
	}
}

// TestIngestOversizedBody413 is the wrong-status regression: a body past the
// wire-size cap must answer 413 Request Entity Too Large, not a misleading
// 400 "decode record" from the truncated read.
func TestIngestOversizedBody413(t *testing.T) {
	srv, err := NewServer(ServerOptions{MaxBodyBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A valid, uncompressed log whose wire size exceeds the cap.
	l := &core.Log{}
	var r core.Record
	r.Seq, r.Frame, r.Key = 0, 0, "big"
	r.EncodeTensor(tensor.New(tensor.F32, 4<<10), true)
	l.Records = append(l.Records, r)
	var body bytes.Buffer
	if err := l.Write(&body, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if body.Len() <= 4<<10 {
		t.Fatalf("test body %d bytes does not exceed the cap", body.Len())
	}
	resp, err := http.Post(ts.URL+"/ingest?device=big", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%s), want 413", resp.StatusCode, bytes.TrimSpace(msg))
	}
}

// TestIngestGlobalFrameTagFrames is the frame-accounting regression: a fleet
// shard owning global frame tags 1000–1009 holds 10 frames, not 1010. The
// old maxFrame+1 accounting inflated every sharded device's frame count by
// its frame-tag offset.
func TestIngestGlobalFrameTagFrames(t *testing.T) {
	const total, lo = 1010, 1000
	ref := synthLog(total, nil, false)
	_, ts := newTestServer(t, ref)

	var own []int
	for f := lo; f < total; f++ {
		own = append(own, f)
	}
	shard := synthLog(total, own, false)
	var body bytes.Buffer
	if err := shard.Write(&body, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest?device=shard-hi", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ir.Frames != total-lo {
		t.Errorf("ingest ack frames = %d, want %d (distinct frames, not maxFrame+1)", ir.Frames, total-lo)
	}
	var st DeviceStatus
	getJSON(t, ts.URL+"/devices/shard-hi", &st)
	if st.Frames != total-lo {
		t.Errorf("status frames = %d, want %d", st.Frames, total-lo)
	}
}

// TestFleetDevicesMatchReport is the snapshot-consistency regression: the
// /fleet device list must agree with the report in the same response even
// while new devices register concurrently. Pre-fix the list and the report
// were separate snapshots, so a first upload landing between them produced a
// device list the report did not cover.
func TestFleetDevicesMatchReport(t *testing.T) {
	ref := synthLog(4, nil, false)
	_, ts := newTestServer(t, ref)
	l := synthLog(4, nil, false)
	var body bytes.Buffer
	if err := l.Write(&body, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	chunk := body.Bytes()

	// Seed one device so the fleet report exists before the first poll (an
	// empty fleet answers 409).
	resp, err := http.Post(ts.URL+"/ingest?device=seed", "application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A writer registers a stream of brand-new devices while the main
	// goroutine polls /fleet; every response must be internally consistent.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			resp, err := http.Post(
				fmt.Sprintf("%s/ingest?device=race-%04d", ts.URL, i),
				"application/octet-stream", bytes.NewReader(chunk))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	polls := 0
	for {
		select {
		case <-done:
			if polls == 0 {
				t.Fatal("writer finished before a single poll")
			}
			return
		default:
		}
		var got FleetResponse
		if resp := getJSON(t, ts.URL+"/fleet", &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("/fleet status %d", resp.StatusCode)
		}
		polls++
		if len(got.Devices) != len(got.Report.Devices) {
			t.Fatalf("device list (%d) and report (%d) disagree", len(got.Devices), len(got.Report.Devices))
		}
		for i, dr := range got.Report.Devices {
			if got.Devices[i] != dr.Device {
				t.Fatalf("devices[%d] = %q but report[%d] covers %q", i, got.Devices[i], i, dr.Device)
			}
		}
	}
}
