package ingest

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"mlexray/internal/obs"
)

// serverMetrics holds the collector's pre-registered instruments. Handlers
// and the chunk-apply path touch only these pointers — registration (the
// locked, allocating part) happens once in newServerMetrics, so the hot
// path stays zero-alloc. A nil *serverMetrics (DisableMetrics) makes every
// field access a nil-instrument no-op via the obs nil-receiver contract.
type serverMetrics struct {
	reg *obs.Registry

	chunks    *obs.Counter // distinct chunks applied (HTTP + WAL replay)
	records   *obs.Counter // records folded into sessions
	frames    *obs.Counter // newly seen distinct frame tags
	bytes     *obs.Counter // wire bytes applied
	dupChunks *obs.Counter // retry replays acked without re-ingesting

	rateLimited *obs.Counter // 429 token-bucket rejections
	capRejects  *obs.Counter // 503 session-cap rejections

	evictions     *obs.Counter
	resurrections *obs.Counter
	sessionsLive  *obs.Gauge

	ingestLatency *obs.Histogram // whole POST /ingest request
	walAppend     *obs.Histogram // serialize + write + fsync of one entry
	walFsync      *obs.Histogram // the fsync alone (the durability tax)

	// responses is the per-status lazy counter cache: statuses appear as
	// they happen, and repeat lookups are a read-locked map hit instead of
	// a registry round-trip.
	respMu    sync.RWMutex
	responses map[int]*obs.Counter
}

// newServerMetrics registers the collector's metric families on reg.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	lat := obs.LatencyBounds()
	return &serverMetrics{
		reg: reg,
		chunks: reg.Counter("mlexray_ingest_chunks_total",
			"Distinct chunks applied to sessions (live ingest and WAL replay)."),
		records: reg.Counter("mlexray_ingest_records_total",
			"Telemetry records folded into sessions."),
		frames: reg.Counter("mlexray_ingest_frames_total",
			"Distinct frame tags first seen across all sessions."),
		bytes: reg.Counter("mlexray_ingest_bytes_total",
			"Wire bytes of applied chunks."),
		dupChunks: reg.Counter("mlexray_ingest_duplicate_chunks_total",
			"Retried chunks acknowledged without re-ingesting."),
		rateLimited: reg.Counter("mlexray_ingest_rate_limited_total",
			"Chunks rejected 429 by the per-device token bucket."),
		capRejects: reg.Counter("mlexray_ingest_session_cap_rejects_total",
			"Chunks rejected 503 by the max-sessions cap."),
		evictions: reg.Counter("mlexray_ingest_sessions_evicted_total",
			"Sessions evicted for idleness (WAL kept for resurrection)."),
		resurrections: reg.Counter("mlexray_ingest_sessions_resurrected_total",
			"Evicted sessions rebuilt from their WAL segments."),
		sessionsLive: reg.Gauge("mlexray_ingest_sessions_live",
			"Device sessions currently tracked in memory."),
		ingestLatency: reg.Histogram("mlexray_ingest_request_seconds",
			"POST /ingest latency (admission through response).", lat),
		walAppend: reg.Histogram("mlexray_wal_append_seconds",
			"WAL entry append latency including the fsync.", lat),
		walFsync: reg.Histogram("mlexray_wal_fsync_seconds",
			"WAL fsync latency alone (the durability tax).", lat),
		responses: make(map[int]*obs.Counter),
	}
}

// response returns the counter for one HTTP status, registering the series
// on first sight.
func (m *serverMetrics) response(status int) *obs.Counter {
	if m == nil {
		return nil
	}
	m.respMu.RLock()
	c, ok := m.responses[status]
	m.respMu.RUnlock()
	if ok {
		return c
	}
	m.respMu.Lock()
	defer m.respMu.Unlock()
	if c, ok := m.responses[status]; ok {
		return c
	}
	c = m.reg.Counter("mlexray_ingest_responses_total",
		"POST /ingest responses by status.", obs.L("status", strconv.Itoa(status)))
	m.responses[status] = c
	return c
}

// statusCapture records the status a handler wrote so the instrument
// middleware can count per-status responses. Unwrap keeps
// http.ResponseController working through it — the per-request read/write
// deadlines the ingest handler sets must reach the real writer.
type statusCapture struct {
	http.ResponseWriter
	status int
}

func (s *statusCapture) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusCapture) Unwrap() http.ResponseWriter { return s.ResponseWriter }

// instrument wraps the ingest handler with the request-level telemetry:
// latency histogram, per-status response counter, and — when the client
// sent X-MLEXray-Trace — an "ingest" span in the trace ring. With metrics
// and tracing both disabled the handler runs bare.
func (s *Server) instrument(next http.HandlerFunc) http.Handler {
	if s.met == nil && s.traces == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sc := &statusCapture{ResponseWriter: w, status: http.StatusOK}
		next(sc, r)
		if s.met != nil {
			s.met.ingestLatency.ObserveSince(start)
			s.met.response(sc.status).Inc()
		}
		s.traces.RecordSince(r.Header.Get(obs.TraceHeader), "ingest",
			deviceOf(r), sc.status, start)
	})
}

// deviceOf extracts the device ID the way handleIngest does — span detail
// only, never authoritative.
func deviceOf(r *http.Request) string {
	if d := r.Header.Get("X-MLEXray-Device"); d != "" {
		return d
	}
	return r.URL.Query().Get("device")
}

// Metrics returns the collector's registry (nil when DisableMetrics) — the
// same families GET /metrics renders, for in-process scrapers like the
// storm harness.
func (s *Server) Metrics() *obs.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

// TraceDump returns the buffered request spans oldest-first — the
// programmatic accessor behind GET /debug/trace.
func (s *Server) TraceDump() []obs.Span { return s.traces.Spans("") }

// Traces returns the collector's bounded span ring (nil with
// DisableMetrics) — what a daemon's -debug-addr listener mounts at
// /debug/trace.
func (s *Server) Traces() *obs.TraceRing { return s.traces }
