package ingest

// This file is the collector's durability layer: a per-session write-ahead
// segment log. Every accepted upload chunk is appended to the session's
// segment file — a small header (stream token, chunk sequence number,
// arrival time) plus the raw wire bytes exactly as received — and fsynced
// BEFORE the 200 ack, so an acknowledged chunk survives a collector crash.
// On startup the segments replay in order through the same ingestion path
// the HTTP handler uses, so the recovered per-device and fleet reports are
// byte-identical to an uninterrupted run: recovery is exact by
// construction, not by best effort.
//
// Segment file layout (all integers varint/uvarint unless noted):
//
//	header:  "MLXW" magic, version byte (1), device string (uvarint len + bytes)
//	entry:   stream string (uvarint len + bytes)
//	         chunk sequence number (varint; -1 = headerless upload)
//	         arrival time (varint, unix nanoseconds)
//	         body length (uvarint)
//	         crc32 (IEEE) of body (4 bytes little-endian)
//	         body (raw wire bytes: a standalone log chunk, plain or gzip)
//
// A crash can tear at most the entry being appended (each append is one
// write syscall followed by fsync); recovery detects the torn tail by
// length/CRC, truncates the file back to the last complete entry, and
// replays the intact prefix. The client never saw an ack for the torn
// chunk, so its retry re-delivers it to the recovered session, whose
// expected chunk sequence number picks up exactly where the log ends.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

var walMagic = []byte{'M', 'L', 'X', 'W'}

const walVersion = 1

// walSuffix names session segment files: <url.PathEscape(device)>.wal.
const walSuffix = ".wal"

// maxWALEntry caps one entry's body so a corrupt length prefix cannot drive
// an arbitrarily large allocation during recovery.
const maxWALEntry = 1 << 31

// walEntry is one logged chunk: the upload-generation metadata that makes
// retries idempotent, the arrival time (so a recovered session's status is
// identical to the uninterrupted one), and the raw wire bytes.
type walEntry struct {
	stream string
	chunk  int // X-MLEXray-Chunk, -1 for headerless uploads
	when   time.Time
	body   []byte
}

// sessionWAL is one session's open segment file. Appends happen under the
// session mutex (chunks of one device are already serialized), so the type
// itself is not concurrency-safe.
type sessionWAL struct {
	f         *os.File
	path      string
	committed int64 // offset after the last fully synced entry
	buf       []byte
	err       error // sticky: a failed truncate-back leaves the file unusable
}

// walPath maps a device ID to its segment file. url.PathEscape is injective
// and never emits a path separator, so arbitrary device IDs are safe.
func walPath(dir, device string) string {
	return filepath.Join(dir, url.PathEscape(device)+walSuffix)
}

// appendWALHeader serializes the segment file header.
func appendWALHeader(buf []byte, device string) []byte {
	buf = append(buf, walMagic...)
	buf = append(buf, walVersion)
	buf = binary.AppendUvarint(buf, uint64(len(device)))
	return append(buf, device...)
}

// createSessionWAL opens the device's segment file for appending, writing
// and syncing the header when the file is new. The parent directory entry is
// synced too, so a freshly created segment survives a crash right after the
// first ack.
func createSessionWAL(dir, device string) (*sessionWAL, error) {
	path := walPath(dir, device)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: stat wal segment: %w", err)
	}
	w := &sessionWAL{f: f, path: path, committed: st.Size()}
	if st.Size() == 0 {
		hdr := appendWALHeader(nil, device)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: write wal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: sync wal header: %w", err)
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
		w.committed = int64(len(hdr))
	}
	return w, nil
}

// syncDir fsyncs a directory so newly created file entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ingest: open wal dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ingest: sync wal dir: %w", err)
	}
	return nil
}

// append logs one chunk and fsyncs — the write barrier in front of every
// ack. The entry is assembled into one buffer and written with a single
// syscall, so a crash tears at most the file's tail, never an earlier entry.
// On a failed write the file is truncated back to the last committed entry;
// if even that fails the WAL is marked broken (sticky error) so no later
// chunk can be acked against a corrupt log.
func (w *sessionWAL) append(e walEntry) error {
	if w.err != nil {
		return w.err
	}
	buf := w.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(e.stream)))
	buf = append(buf, e.stream...)
	buf = binary.AppendVarint(buf, int64(e.chunk))
	buf = binary.AppendVarint(buf, e.when.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(e.body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(e.body))
	buf = append(buf, e.body...)
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		if terr := w.f.Truncate(w.committed); terr != nil {
			w.err = fmt.Errorf("ingest: wal truncate after failed append: %v (append: %w)", terr, err)
			return w.err
		}
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		// The entry's durability is unknown; roll it back so the in-memory
		// state (which will not apply this chunk) and the log agree.
		if terr := w.f.Truncate(w.committed); terr != nil {
			w.err = fmt.Errorf("ingest: wal truncate after failed sync: %v (sync: %w)", terr, err)
			return w.err
		}
		return fmt.Errorf("ingest: wal sync: %w", err)
	}
	w.committed += int64(len(buf))
	return nil
}

// Close closes the segment file.
func (w *sessionWAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// recoveredSession is one session's replayable history: the device ID from
// the segment header and its intact entries in append order.
type recoveredSession struct {
	device  string
	entries []walEntry
}

// RecoveryStats summarizes a startup replay of the write-ahead log.
type RecoveryStats struct {
	// Sessions is how many device sessions were restored.
	Sessions int `json:"sessions"`
	// Chunks and Records are the replayed totals across sessions.
	Chunks  int `json:"chunks"`
	Records int `json:"records"`
	// TruncatedBytes counts torn tail bytes discarded across segment files
	// (at most one torn entry per file — the append in flight at the crash).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// SkippedChunks counts logged chunks the replay could not apply (an
	// undecodable body after an intact CRC — corruption beyond a torn tail).
	SkippedChunks int `json:"skipped_chunks,omitempty"`
}

// loadWAL reads every session segment under dir, truncating torn tails in
// place, and returns the sessions in device order (deterministic recovery).
func loadWAL(dir string) ([]recoveredSession, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("ingest: wal dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: wal dir: %w", err)
	}
	var sessions []recoveredSession
	var truncated int64
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), walSuffix) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		rs, torn, err := readSegment(path)
		if err != nil {
			return nil, 0, err
		}
		truncated += torn
		sessions = append(sessions, rs)
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].device < sessions[j].device })
	return sessions, truncated, nil
}

// readSegment parses one segment file, truncating it back to the last
// complete entry when the tail is torn. A file whose header itself is
// unreadable is rejected outright — it is not a WAL segment, and silently
// skipping it would un-ack data.
func readSegment(path string) (recoveredSession, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: open wal segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: %w", path, err)
	}
	size := st.Size()
	cr := &walCountingReader{r: bufio.NewReaderSize(f, 1<<16)}

	head := make([]byte, len(walMagic)+1)
	if _, err := io.ReadFull(cr, head); err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: header: %w", path, err)
	}
	if string(head[:len(walMagic)]) != string(walMagic) {
		return recoveredSession{}, 0, fmt.Errorf("ingest: %s is not a wal segment (bad magic %q)", path, head[:len(walMagic)])
	}
	if v := head[len(walMagic)]; v != walVersion {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: version %d not supported (want %d)", path, v, walVersion)
	}
	// Length prefixes are additionally capped by the bytes actually left in
	// the file: a corrupt prefix claiming gigabytes cannot drive a huge
	// allocation before ReadFull discovers the truth at EOF.
	device, err := readWALString(cr, uint64(min(int64(maxWALEntry), size-cr.n)))
	if err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: device: %w", path, err)
	}

	rs := recoveredSession{device: device}
	good := cr.n // offset after the last complete entry
	for {
		e, err := readWALEntry(cr, size-cr.n)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: the entry being appended at the crash. Everything
			// before it is intact; cut the file back so future appends start
			// from a clean boundary.
			break
		}
		rs.entries = append(rs.entries, e)
		good = cr.n
	}
	torn := size - good
	if torn > 0 {
		if err := f.Truncate(good); err != nil {
			return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: truncate torn tail: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: sync truncation: %w", path, err)
		}
	}
	return rs, torn, nil
}

// readWALEntry reads one entry. io.EOF at an entry boundary is a clean end;
// any other error (including EOF mid-entry and a CRC mismatch) marks a torn
// tail. remain is the byte count left in the file at the entry's start: a
// length prefix claiming more than that is corruption, rejected before the
// allocation it would otherwise size.
func readWALEntry(r io.Reader, remain int64) (walEntry, error) {
	br := r.(io.ByteReader)
	streamLen, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return walEntry{}, io.EOF
		}
		return walEntry{}, fmt.Errorf("ingest: wal entry stream length: %w", err)
	}
	if streamLen > maxWALEntry || int64(streamLen) > remain {
		return walEntry{}, fmt.Errorf("ingest: wal entry stream length %d implausible", streamLen)
	}
	stream := make([]byte, streamLen)
	if _, err := io.ReadFull(r, stream); err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry stream: %w", err)
	}
	chunk, err := binary.ReadVarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry chunk: %w", err)
	}
	nanos, err := binary.ReadVarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry time: %w", err)
	}
	bodyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry body length: %w", err)
	}
	if bodyLen > maxWALEntry || int64(bodyLen) > remain {
		return walEntry{}, fmt.Errorf("ingest: wal entry body of %d bytes exceeds the %d limit", bodyLen, maxWALEntry)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry crc: %w", err)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry body: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return walEntry{}, fmt.Errorf("ingest: wal entry crc mismatch (%08x != %08x)", got, want)
	}
	return walEntry{
		stream: string(stream),
		chunk:  int(chunk),
		when:   time.Unix(0, nanos),
		body:   body,
	}, nil
}

// readWALString reads a uvarint-prefixed string.
func readWALString(r io.Reader, limit uint64) (string, error) {
	n, err := binary.ReadUvarint(r.(io.ByteReader))
	if err != nil {
		return "", err
	}
	if n > limit {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// walCountingReader tracks the byte offset while exposing ByteReader (varint
// decoding) — what lets readSegment know the exact boundary of the last
// complete entry.
type walCountingReader struct {
	r *bufio.Reader
	n int64
}

func (c *walCountingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *walCountingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}
