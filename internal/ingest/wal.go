package ingest

// This file is the collector's durability layer: a per-session write-ahead
// segment log. Every accepted upload chunk is appended to the session's
// segment file — a small header (stream token, chunk sequence number,
// arrival time) plus the raw wire bytes exactly as received — and fsynced
// BEFORE the 200 ack, so an acknowledged chunk survives a collector crash.
// On startup the segments replay in order through the same ingestion path
// the HTTP handler uses, so the recovered per-device and fleet reports are
// byte-identical to an uninterrupted run: recovery is exact by
// construction, not by best effort.
//
// Segment file layout (all integers varint/uvarint unless noted):
//
//	header:  "MLXW" magic, version byte (2), device string (uvarint len + bytes)
//	entry:   entry index (uvarint, monotonic per session, never reused)
//	         stream string (uvarint len + bytes)
//	         chunk sequence number (varint; -1 = headerless upload)
//	         arrival time (varint, unix nanoseconds)
//	         body length (uvarint)
//	         crc32 (IEEE) of body (4 bytes little-endian)
//	         body (raw wire bytes: a standalone log chunk, plain or gzip)
//
// A session's log is a sequence of numbered segment files: segment 0 is
// <url.PathEscape(device)>.wal, later segments <escaped>#000001.wal,
// <escaped>#000002.wal, … ('#' never appears in PathEscape output, so the
// separator is unambiguous). The highest-numbered segment is the active
// one; once an append pushes it past the configured size threshold the log
// rolls to a fresh segment, and closed segments are periodically compacted:
// merged into one file via write-temp → fsync → rename-over-the-newest →
// remove-the-rest, each step crash-safe. The per-entry index makes the
// compaction windows harmless — recovery orders a session's entries by
// index and replays each index exactly once, so a crash between the rename
// and the removals (when an entry briefly exists in two files) cannot
// double-apply a chunk.
//
// A crash can tear at most the entry being appended (each append is one
// write syscall followed by fsync); recovery detects the torn tail by
// length/CRC, truncates the file back to the last complete entry, and
// replays the intact prefix. The client never saw an ack for the torn
// chunk, so its retry re-delivers it to the recovered session, whose
// expected chunk sequence number picks up exactly where the log ends.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mlexray/internal/obs"
)

var walMagic = []byte{'M', 'L', 'X', 'W'}

const walVersion = 2

// walSuffix names session segment files: <url.PathEscape(device)>.wal.
const walSuffix = ".wal"

// walTmpSuffix marks an in-flight compaction output; never replayed.
const walTmpSuffix = ".wal.tmp"

// maxWALEntry caps one entry's body so a corrupt length prefix cannot drive
// an arbitrarily large allocation during recovery.
const maxWALEntry = 1 << 31

// defaultCompactAfter is how many closed segments accumulate before a
// rotation triggers compaction, when the server does not say otherwise.
const defaultCompactAfter = 4

// walConfig is the durability layer's tuning, shared by every session of one
// collector.
type walConfig struct {
	dir string
	// segmentBytes rolls the active segment to a new numbered one once its
	// committed size reaches this; <= 0 never rolls (one segment per session).
	segmentBytes int64
	// compactAfter merges a session's closed segments into one once at least
	// this many have accumulated; <= 0 never compacts.
	compactAfter int
	// appendHist/fsyncHist time each entry append (whole barrier) and its
	// fsync alone — the collector's WAL latency histograms. Nil (metrics
	// disabled) observes nothing.
	appendHist *obs.Histogram
	fsyncHist  *obs.Histogram
}

// walEntry is one logged chunk: the upload-generation metadata that makes
// retries idempotent, the arrival time (so a recovered session's status is
// identical to the uninterrupted one), and the raw wire bytes.
type walEntry struct {
	index  uint64 // monotonic per session; assigned by append
	stream string
	chunk  int // X-MLEXray-Chunk, -1 for headerless uploads
	when   time.Time
	body   []byte
}

// sessionWAL is one session's open segment log. Appends happen under the
// session mutex (chunks of one device are already serialized), so the type
// itself is not concurrency-safe.
type sessionWAL struct {
	cfg       walConfig
	device    string
	f         *os.File
	path      string
	seq       int    // active segment number
	nextIndex uint64 // index the next appended entry gets
	committed int64  // offset after the last fully synced entry
	buf       []byte
	err       error // sticky: a failed truncate-back leaves the file unusable
}

// walPath maps a device ID to its first segment file. url.PathEscape is
// injective and never emits a path separator, so arbitrary device IDs are
// safe.
func walPath(dir, device string) string {
	return filepath.Join(dir, url.PathEscape(device)+walSuffix)
}

// segmentPath names the device's seq'th segment. Segment 0 keeps the plain
// pre-rotation name, so logs written before rotation existed replay as a
// single-segment session.
func segmentPath(dir, device string, seq int) string {
	if seq == 0 {
		return walPath(dir, device)
	}
	return filepath.Join(dir, fmt.Sprintf("%s#%06d%s", url.PathEscape(device), seq, walSuffix))
}

// parseSegmentName splits a segment file name into the escaped device and
// the segment number. '#' cannot appear in url.PathEscape output, so the
// last '#' — when present — is always the segment separator.
func parseSegmentName(name string) (escDevice string, seq int, ok bool) {
	base, found := strings.CutSuffix(name, walSuffix)
	if !found {
		return "", 0, false
	}
	i := strings.LastIndexByte(base, '#')
	if i < 0 {
		return base, 0, true
	}
	numPart := base[i+1:]
	if numPart == "" {
		return "", 0, false
	}
	n := 0
	for _, c := range numPart {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return "", 0, false
		}
	}
	return base[:i], n, true
}

// walSegmentFile is one on-disk segment of a session's log.
type walSegmentFile struct {
	path string
	seq  int
	size int64
}

// deviceSegments lists the device's segment files sorted by segment number.
func deviceSegments(dir, device string) ([]walSegmentFile, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ingest: wal dir: %w", err)
	}
	esc := url.PathEscape(device)
	var segs []walSegmentFile
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		gotEsc, seq, ok := parseSegmentName(de.Name())
		if !ok || gotEsc != esc {
			continue
		}
		info, err := de.Info()
		if err != nil {
			return nil, fmt.Errorf("ingest: wal segment %s: %w", de.Name(), err)
		}
		segs = append(segs, walSegmentFile{path: filepath.Join(dir, de.Name()), seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// appendWALHeader serializes the segment file header.
func appendWALHeader(buf []byte, device string) []byte {
	buf = append(buf, walMagic...)
	buf = append(buf, walVersion)
	buf = binary.AppendUvarint(buf, uint64(len(device)))
	return append(buf, device...)
}

// createSessionWAL opens the device's log for appending. With no segments on
// disk it creates segment 0, writing and syncing the header (and the parent
// directory entry, so a freshly created segment survives a crash right after
// the first ack). With existing segments it reopens the highest-numbered one
// — truncating any torn tail first — and resumes the entry index after the
// highest index on disk, so indexes are never reused across restarts.
func createSessionWAL(cfg walConfig, device string) (*sessionWAL, error) {
	segs, err := deviceSegments(cfg.dir, device)
	if err != nil {
		return nil, err
	}
	w := &sessionWAL{cfg: cfg, device: device}
	if len(segs) > 0 {
		// Resume: scan from the newest segment down until entries are found —
		// a crash between rotation's create and the first append can leave
		// the newest segment holding a bare header.
		active := segs[len(segs)-1]
		for i := len(segs) - 1; i >= 0; i-- {
			rs, _, err := readSegment(segs[i].path)
			if err != nil {
				return nil, err
			}
			if n := len(rs.entries); n > 0 {
				w.nextIndex = rs.entries[n-1].index + 1
				break
			}
		}
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("ingest: open wal segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: stat wal segment: %w", err)
		}
		w.f, w.path, w.seq, w.committed = f, active.path, active.seq, st.Size()
		return w, nil
	}
	f, committed, err := createSegmentFile(cfg.dir, device, 0)
	if err != nil {
		return nil, err
	}
	w.f, w.path, w.seq, w.committed = f, segmentPath(cfg.dir, device, 0), 0, committed
	return w, nil
}

// createSegmentFile creates (or reopens) one segment file for appending,
// writing and syncing the header when the file is empty.
func createSegmentFile(dir, device string, seq int) (*os.File, int64, error) {
	path := segmentPath(dir, device, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: open wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ingest: stat wal segment: %w", err)
	}
	committed := st.Size()
	if committed == 0 {
		hdr := appendWALHeader(nil, device)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("ingest: write wal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("ingest: sync wal header: %w", err)
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, 0, err
		}
		committed = int64(len(hdr))
	}
	return f, committed, nil
}

// syncDir fsyncs a directory so newly created file entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ingest: open wal dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ingest: sync wal dir: %w", err)
	}
	return nil
}

// append logs one chunk and fsyncs — the write barrier in front of every
// ack. The entry is assembled into one buffer and written with a single
// syscall, so a crash tears at most the file's tail, never an earlier entry.
// On a failed write the file is truncated back to the last committed entry;
// if even that fails the WAL is marked broken (sticky error) so no later
// chunk can be acked against a corrupt log.
func (w *sessionWAL) append(e walEntry) error {
	if w.err != nil {
		return w.err
	}
	// Size-threshold roll: once the active segment has reached the limit the
	// entry opens a fresh one. A segment holding no entries yet never rolls
	// (a threshold below the header size must not spin off empty files). A
	// failed roll is not sticky — the old segment is still intact and the
	// entry is simply not acked; the client retries.
	if w.cfg.segmentBytes > 0 && w.committed >= w.cfg.segmentBytes &&
		w.committed > int64(len(appendWALHeader(nil, w.device))) {
		if err := w.roll(); err != nil {
			return err
		}
	}
	appendStart := time.Now()
	e.index = w.nextIndex
	buf := appendWALEntry(w.buf[:0], e)
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		if terr := w.f.Truncate(w.committed); terr != nil {
			w.err = fmt.Errorf("ingest: wal truncate after failed append: %v (append: %w)", terr, err)
			return w.err
		}
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	fsyncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		// The entry's durability is unknown; roll it back so the in-memory
		// state (which will not apply this chunk) and the log agree.
		if terr := w.f.Truncate(w.committed); terr != nil {
			w.err = fmt.Errorf("ingest: wal truncate after failed sync: %v (sync: %w)", terr, err)
			return w.err
		}
		return fmt.Errorf("ingest: wal sync: %w", err)
	}
	w.cfg.fsyncHist.ObserveSince(fsyncStart)
	w.cfg.appendHist.ObserveSince(appendStart)
	w.committed += int64(len(buf))
	w.nextIndex++
	return nil
}

// appendWALEntry serializes one entry — the exact bytes append writes and
// compaction copies.
func appendWALEntry(buf []byte, e walEntry) []byte {
	buf = binary.AppendUvarint(buf, e.index)
	buf = binary.AppendUvarint(buf, uint64(len(e.stream)))
	buf = append(buf, e.stream...)
	buf = binary.AppendVarint(buf, int64(e.chunk))
	buf = binary.AppendVarint(buf, e.when.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(e.body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(e.body))
	return append(buf, e.body...)
}

// roll closes the active segment and opens the next-numbered one. The new
// segment's header is synced (file and directory) before the swap, so the
// log never points at a segment that could vanish in a crash. After a
// successful roll the closed segments are compacted when enough have piled
// up; compaction failure does not fail the roll — the closed segments are
// still individually valid, and the next roll retries.
func (w *sessionWAL) roll() error {
	f, committed, err := createSegmentFile(w.cfg.dir, w.device, w.seq+1)
	if err != nil {
		return fmt.Errorf("ingest: wal roll: %w", err)
	}
	w.f.Close()
	w.f, w.committed = f, committed
	w.seq++
	w.path = segmentPath(w.cfg.dir, w.device, w.seq)
	if w.cfg.compactAfter > 0 {
		// Best-effort: rotation succeeded regardless; a failed compaction
		// leaves individually valid closed segments and retries next roll.
		_ = compactClosedSegments(w.cfg.dir, w.device, w.seq, w.cfg.compactAfter)
	}
	return nil
}

// compactClosedSegments merges every segment of the device numbered below
// activeSeq into the highest-numbered closed segment, once at least
// compactAfter of them have accumulated. The merge is crash-safe: the
// combined log is written to a temp file and fsynced, then renamed over the
// newest closed segment (atomic), the directory synced, and only then are
// the older segments removed. A crash at any point leaves a replayable set
// of segments — at worst an entry exists in two files for a moment, which
// recovery's per-index dedup makes harmless.
func compactClosedSegments(dir, device string, activeSeq, compactAfter int) error {
	segs, err := deviceSegments(dir, device)
	if err != nil {
		return err
	}
	var closed []walSegmentFile
	for _, s := range segs {
		if s.seq < activeSeq {
			closed = append(closed, s)
		}
	}
	if len(closed) < max(2, compactAfter) {
		return nil
	}
	// Re-encode the intact entries rather than splicing raw bytes: a torn
	// tail in a closed segment (possible only after a crash that predates
	// this compaction) must not glue garbage into the merged file.
	buf := appendWALHeader(nil, device)
	for _, s := range closed {
		rs, _, err := readSegment(s.path)
		if err != nil {
			return err
		}
		for _, e := range rs.entries {
			buf = appendWALEntry(buf, e)
		}
	}
	target := closed[len(closed)-1].path
	tmp := target + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: wal compact: %w", err)
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("ingest: wal compact write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("ingest: wal compact sync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ingest: wal compact close: %w", err)
	}
	if err := os.Rename(tmp, target); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ingest: wal compact rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	for _, s := range closed[:len(closed)-1] {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("ingest: wal compact remove: %w", err)
		}
	}
	return syncDir(dir)
}

// Close closes the segment file.
func (w *sessionWAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// recoveredSession is one session's replayable history: the device ID from
// the segment header and its intact entries in append order.
type recoveredSession struct {
	device  string
	entries []walEntry
}

// RecoveryStats summarizes a startup replay of the write-ahead log.
type RecoveryStats struct {
	// Sessions is how many device sessions were restored.
	Sessions int `json:"sessions"`
	// Chunks and Records are the replayed totals across sessions.
	Chunks  int `json:"chunks"`
	Records int `json:"records"`
	// TruncatedBytes counts torn tail bytes discarded across segment files
	// (at most one torn entry per file — the append in flight at the crash).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// SkippedChunks counts logged chunks the replay could not apply (an
	// undecodable body after an intact CRC — corruption beyond a torn tail).
	SkippedChunks int `json:"skipped_chunks,omitempty"`
}

// loadWAL reads every session segment under dir, truncating torn tails in
// place, and returns the sessions in device order (deterministic recovery).
// A session split across several segments comes back as one entry stream:
// segments merge in segment order, entries are ordered by their per-session
// index, and an index appearing in two files (the compaction crash window)
// replays exactly once.
func loadWAL(dir string) ([]recoveredSession, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("ingest: wal dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: wal dir: %w", err)
	}
	byDevice := make(map[string][]parsedSegment)
	var truncated int64
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(de.Name(), walTmpSuffix) {
			// An interrupted compaction's scratch file; the originals it was
			// built from are still on disk.
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		_, seq, ok := parseSegmentName(de.Name())
		if !ok {
			continue
		}
		path := filepath.Join(dir, de.Name())
		rs, torn, err := readSegment(path)
		if err != nil {
			return nil, 0, err
		}
		truncated += torn
		// The header's device is authoritative; the filename only orders the
		// device's segments.
		byDevice[rs.device] = append(byDevice[rs.device], parsedSegment{seq: seq, entries: rs.entries})
	}
	sessions := make([]recoveredSession, 0, len(byDevice))
	for device, segs := range byDevice {
		sessions = append(sessions, recoveredSession{device: device, entries: mergeSegmentEntries(segs)})
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].device < sessions[j].device })
	return sessions, truncated, nil
}

// parsedSegment is one decoded segment of a session's log.
type parsedSegment struct {
	seq     int
	entries []walEntry
}

// mergeSegmentEntries flattens a session's segments into one replayable
// entry stream. Entries are written with monotonically increasing indexes,
// so after a stable sort over the seq-ordered concatenation the stream is in
// append order; duplicate indexes (an entry caught mid-compaction in two
// files) collapse to their first copy.
func mergeSegmentEntries(segs []parsedSegment) []walEntry {
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	var entries []walEntry
	for _, s := range segs {
		entries = append(entries, s.entries...)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].index < entries[j].index })
	deduped := entries[:0]
	for i, e := range entries {
		if i > 0 && e.index == entries[i-1].index {
			continue
		}
		deduped = append(deduped, e)
	}
	return deduped
}

// readDeviceWAL reads and merges every segment of one device, truncating
// torn tails in place — the resurrection-path counterpart of loadWAL.
// found is false when the device has no segments on disk.
func readDeviceWAL(dir, device string) (recoveredSession, bool, error) {
	segs, err := deviceSegments(dir, device)
	if err != nil {
		return recoveredSession{}, false, err
	}
	if len(segs) == 0 {
		return recoveredSession{}, false, nil
	}
	parsed := make([]parsedSegment, 0, len(segs))
	for _, sf := range segs {
		rs, _, err := readSegment(sf.path)
		if err != nil {
			return recoveredSession{}, false, err
		}
		parsed = append(parsed, parsedSegment{seq: sf.seq, entries: rs.entries})
	}
	return recoveredSession{device: device, entries: mergeSegmentEntries(parsed)}, true, nil
}

// readSegment parses one segment file, truncating it back to the last
// complete entry when the tail is torn. A file whose header itself is
// unreadable is rejected outright — it is not a WAL segment, and silently
// skipping it would un-ack data.
func readSegment(path string) (recoveredSession, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: open wal segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: %w", path, err)
	}
	size := st.Size()
	cr := &walCountingReader{r: bufio.NewReaderSize(f, 1<<16)}

	head := make([]byte, len(walMagic)+1)
	if _, err := io.ReadFull(cr, head); err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: header: %w", path, err)
	}
	if string(head[:len(walMagic)]) != string(walMagic) {
		return recoveredSession{}, 0, fmt.Errorf("ingest: %s is not a wal segment (bad magic %q)", path, head[:len(walMagic)])
	}
	if v := head[len(walMagic)]; v != walVersion {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: version %d not supported (want %d)", path, v, walVersion)
	}
	// Length prefixes are additionally capped by the bytes actually left in
	// the file: a corrupt prefix claiming gigabytes cannot drive a huge
	// allocation before ReadFull discovers the truth at EOF.
	device, err := readWALString(cr, uint64(min(int64(maxWALEntry), size-cr.n)))
	if err != nil {
		return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: device: %w", path, err)
	}

	rs := recoveredSession{device: device}
	good := cr.n // offset after the last complete entry
	for {
		e, err := readWALEntry(cr, size-cr.n)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: the entry being appended at the crash. Everything
			// before it is intact; cut the file back so future appends start
			// from a clean boundary.
			break
		}
		rs.entries = append(rs.entries, e)
		good = cr.n
	}
	torn := size - good
	if torn > 0 {
		if err := f.Truncate(good); err != nil {
			return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: truncate torn tail: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return recoveredSession{}, 0, fmt.Errorf("ingest: wal segment %s: sync truncation: %w", path, err)
		}
	}
	return rs, torn, nil
}

// readWALEntry reads one entry. io.EOF at an entry boundary is a clean end;
// any other error (including EOF mid-entry and a CRC mismatch) marks a torn
// tail. remain is the byte count left in the file at the entry's start: a
// length prefix claiming more than that is corruption, rejected before the
// allocation it would otherwise size.
func readWALEntry(r io.Reader, remain int64) (walEntry, error) {
	br := r.(io.ByteReader)
	index, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return walEntry{}, io.EOF
		}
		return walEntry{}, fmt.Errorf("ingest: wal entry index: %w", err)
	}
	streamLen, err := binary.ReadUvarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry stream length: %w", err)
	}
	if streamLen > maxWALEntry || int64(streamLen) > remain {
		return walEntry{}, fmt.Errorf("ingest: wal entry stream length %d implausible", streamLen)
	}
	stream := make([]byte, streamLen)
	if _, err := io.ReadFull(r, stream); err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry stream: %w", err)
	}
	chunk, err := binary.ReadVarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry chunk: %w", err)
	}
	nanos, err := binary.ReadVarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry time: %w", err)
	}
	bodyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry body length: %w", err)
	}
	if bodyLen > maxWALEntry || int64(bodyLen) > remain {
		return walEntry{}, fmt.Errorf("ingest: wal entry body of %d bytes exceeds the %d limit", bodyLen, maxWALEntry)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry crc: %w", err)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return walEntry{}, fmt.Errorf("ingest: wal entry body: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return walEntry{}, fmt.Errorf("ingest: wal entry crc mismatch (%08x != %08x)", got, want)
	}
	return walEntry{
		index:  index,
		stream: string(stream),
		chunk:  int(chunk),
		when:   time.Unix(0, nanos),
		body:   body,
	}, nil
}

// readWALString reads a uvarint-prefixed string.
func readWALString(r io.Reader, limit uint64) (string, error) {
	n, err := binary.ReadUvarint(r.(io.ByteReader))
	if err != nil {
		return "", err
	}
	if n > limit {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// walCountingReader tracks the byte offset while exposing ByteReader (varint
// decoding) — what lets readSegment know the exact boundary of the last
// complete entry.
type walCountingReader struct {
	r *bufio.Reader
	n int64
}

func (c *walCountingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *walCountingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// SessionWALStats is one session's on-disk write-ahead footprint — how many
// segment files the log currently spans and their total size. Surfaced per
// device by /healthz so segment rotation and compaction are observable.
type SessionWALStats struct {
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// walStats sizes every session's segment files under dir, keyed by device.
// It reads only directory metadata (names and sizes), never file contents,
// so a health probe stays cheap no matter how much history the logs hold.
// The device comes from the file name (the escaping is injective), which
// also covers evicted sessions whose logs are still on disk.
func walStats(dir string) (map[string]SessionWALStats, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ingest: wal dir: %w", err)
	}
	stats := make(map[string]SessionWALStats)
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		escDevice, _, ok := parseSegmentName(de.Name())
		if !ok {
			continue
		}
		device, err := url.PathUnescape(escDevice)
		if err != nil {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s := stats[device]
		s.Segments++
		s.Bytes += info.Size()
		stats[device] = s
	}
	return stats, nil
}
