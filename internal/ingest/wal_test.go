package ingest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mlexray/internal/core"
)

// chunkBody encodes the records of frames [lo, hi) as one standalone binary
// chunk — the wire bytes a single POST /ingest carries.
func chunkBody(t testing.TB, l *core.Log, lo, hi int) []byte {
	t.Helper()
	sub := &core.Log{}
	for _, r := range l.Records {
		if r.Frame >= lo && r.Frame < hi {
			sub.Records = append(sub.Records, r)
		}
	}
	var buf bytes.Buffer
	if err := sub.Write(&buf, core.FormatBinary); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chunkUpload is one scripted POST /ingest: device, generation headers (or
// headerless when chunk < 0) and the exact body bytes.
type chunkUpload struct {
	device string
	stream string
	chunk  int
	body   []byte
}

func postChunk(t testing.TB, base string, up chunkUpload) (*http.Response, IngestResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/ingest?device="+url.QueryEscape(up.device), bytes.NewReader(up.body))
	if err != nil {
		t.Fatal(err)
	}
	if up.chunk >= 0 {
		req.Header.Set("X-MLEXray-Chunk", strconv.Itoa(up.chunk))
		req.Header.Set("X-MLEXray-Stream", up.stream)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	_ = json.NewDecoder(resp.Body).Decode(&ir)
	return resp, ir
}

func getBytes(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// tickClock is a deterministic session clock: every call advances one
// second, so two runs performing the same accepted-chunk sequence stamp
// identical times — what lets the recovery test compare status JSON
// byte-for-byte (last_seen included).
type tickClock struct {
	mu sync.Mutex
	n  int64
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return time.Unix(1700000000, 0).Add(time.Duration(c.n) * time.Second).UTC()
}

// TestWALKillRestartExactRecovery is the tentpole acceptance test: a
// collector killed mid-ingest and restarted over the same data directory
// serves /fleet and /devices/{id} JSON byte-identical to an uninterrupted
// run over the same uploads — recovery is exact, not approximate. The
// scripted uploads cover both fixed-chunk generations (two per device, so
// recovery restores mid-generation sequence state), a headerless curl-style
// chunk, and a post-restart retry of the last acked chunk (whose ack the
// "crash" could have eaten), which must dup-ack without re-ingesting.
func TestWALKillRestartExactRecovery(t *testing.T) {
	const frames = 12
	ref := synthLog(frames, nil, false)
	logOK := synthLog(frames, nil, false)
	logBug := synthLog(frames, nil, true)

	// Interleaved rounds: both devices progress together, so the restart
	// point lands mid-stream for both.
	var uploads []chunkUpload
	spans := []struct {
		stream string
		chunk  int
		lo, hi int
	}{
		{"gen1", 0, 0, 3},
		{"gen1", 1, 3, 6},
		{"", -1, 6, 8}, // curl-style headerless upload
		{"gen2", 0, 8, 10},
		{"gen2", 1, 10, 12},
	}
	for _, sp := range spans {
		uploads = append(uploads,
			chunkUpload{"d-ok", sp.stream, sp.chunk, chunkBody(t, logOK, sp.lo, sp.hi)},
			chunkUpload{"d-bug", sp.stream, sp.chunk, chunkBody(t, logBug, sp.lo, sp.hi)},
		)
	}

	// run executes the scripted uploads against a collector over dataDir
	// (empty = in-memory), killing and restarting it before upload index
	// restartAt (-1 = uninterrupted), then snapshots the service JSON.
	run := func(dataDir string, restartAt int) (fleet, devOK, devBug []byte) {
		clock := &tickClock{}
		newSrv := func() (*Server, *httptest.Server) {
			srv, err := NewServer(ServerOptions{Ref: ref, DataDir: dataDir, Clock: clock.Now})
			if err != nil {
				t.Fatal(err)
			}
			return srv, httptest.NewServer(srv)
		}
		srv, ts := newSrv()
		for i, up := range uploads {
			if i == restartAt {
				// Kill: drop the server without any graceful drain. Acked
				// chunks are fsynced, so closing the handles loses nothing.
				ts.Close()
				srv.Close()
				srv, ts = newSrv()
				rs := srv.Recovery()
				if rs.Sessions != 2 || rs.Chunks != i || rs.SkippedChunks != 0 {
					t.Fatalf("recovery stats after %d uploads: %+v", i, rs)
				}
				// The client whose ack the crash ate retries its last chunk:
				// the recovered sequence state must dup-ack it, not
				// re-ingest (the WAL already holds it).
				if prev := uploads[i-1]; prev.chunk >= 0 {
					resp, ir := postChunk(t, ts.URL, prev)
					if resp.StatusCode != http.StatusOK || !ir.Duplicate {
						t.Fatalf("post-restart retry: status %d duplicate=%v, want 200 dup-ack", resp.StatusCode, ir.Duplicate)
					}
				}
			}
			if resp, _ := postChunk(t, ts.URL, up); resp.StatusCode != http.StatusOK {
				t.Fatalf("upload %d (%s %s#%d): status %d", i, up.device, up.stream, up.chunk, resp.StatusCode)
			}
		}
		fleet = getBytes(t, ts.URL+"/fleet")
		devOK = getBytes(t, ts.URL+"/devices/d-ok")
		devBug = getBytes(t, ts.URL+"/devices/d-bug")
		ts.Close()
		srv.Close()
		return fleet, devOK, devBug
	}

	wantFleet, wantOK, wantBug := run(t.TempDir(), -1)
	gotFleet, gotOK, gotBug := run(t.TempDir(), 4) // mid gen1 for d-ok, pre-retry for d-bug

	if !bytes.Equal(wantFleet, gotFleet) {
		t.Errorf("recovered /fleet differs from uninterrupted run:\nuninterrupted: %s\nrecovered:     %s", wantFleet, gotFleet)
	}
	if !bytes.Equal(wantOK, gotOK) {
		t.Errorf("recovered /devices/d-ok differs:\nuninterrupted: %s\nrecovered:     %s", wantOK, gotOK)
	}
	if !bytes.Equal(wantBug, gotBug) {
		t.Errorf("recovered /devices/d-bug differs:\nuninterrupted: %s\nrecovered:     %s", wantBug, gotBug)
	}

	// The WAL is a durability layer, not a semantics layer: the durable
	// uninterrupted run must match a plain in-memory run byte for byte.
	memFleet, memOK, _ := run("", -1)
	if !bytes.Equal(wantFleet, memFleet) {
		t.Errorf("durable run /fleet differs from in-memory run:\nin-memory: %s\ndurable:   %s", memFleet, wantFleet)
	}
	if !bytes.Equal(wantOK, memOK) {
		t.Errorf("durable run /devices/d-ok differs from in-memory run:\nin-memory: %s\ndurable:   %s", memOK, wantOK)
	}
}

// TestWALTornTailTruncatedAndResumes pins the crash-mid-append story: a
// torn trailing entry (the write in flight at the crash) is detected by
// length/CRC, truncated away, and the session resumes exactly where the
// intact log ends — the never-acked chunk's retry is accepted in sequence,
// and a further restart recovers everything.
func TestWALTornTailTruncatedAndResumes(t *testing.T) {
	dir := t.TempDir()
	ref := synthLog(6, nil, false)
	l := synthLog(6, nil, false)
	bodies := [][]byte{chunkBody(t, l, 0, 2), chunkBody(t, l, 2, 4), chunkBody(t, l, 4, 6)}
	recordsIn := func(body []byte) int {
		lg, err := core.ReadLog(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return len(lg.Records)
	}

	srv1, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	for i := 0; i < 2; i++ {
		if resp, _ := postChunk(t, ts1.URL, chunkUpload{"dev", "s", i, bodies[i]}); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, resp.StatusCode)
		}
	}
	ts1.Close()
	srv1.Close()

	// Tear the tail: a partial third entry, as if the crash hit mid-write.
	f, err := os.OpenFile(walPath(dir, "dev"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x05, 'p', 'a'} // claims a 5-byte stream token, then ends
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rs := srv2.Recovery()
	if rs.Sessions != 1 || rs.Chunks != 2 || rs.TruncatedBytes != int64(len(torn)) || rs.SkippedChunks != 0 {
		t.Fatalf("recovery stats = %+v, want 1 session, 2 chunks, %d truncated bytes", rs, len(torn))
	}
	wantRecs := recordsIn(bodies[0]) + recordsIn(bodies[1])
	if got := srv2.Session("dev").Records(); got != wantRecs {
		t.Errorf("recovered session holds %d records, want %d", got, wantRecs)
	}

	// The torn chunk was never acked; its retry arrives in sequence and the
	// (truncated) segment accepts the append cleanly.
	ts2 := httptest.NewServer(srv2)
	if resp, ir := postChunk(t, ts2.URL, chunkUpload{"dev", "s", 2, bodies[2]}); resp.StatusCode != http.StatusOK || ir.Duplicate {
		t.Fatalf("retry of torn chunk: status %d duplicate=%v", resp.StatusCode, ir.Duplicate)
	}
	ts2.Close()
	srv2.Close()

	srv3, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if got, want := srv3.Session("dev").Records(), wantRecs+recordsIn(bodies[2]); got != want {
		t.Errorf("after second restart the session holds %d records, want %d", got, want)
	}
	if rs := srv3.Recovery(); rs.Chunks != 3 || rs.TruncatedBytes != 0 {
		t.Errorf("second recovery stats = %+v, want 3 chunks and no truncation", rs)
	}
}

// TestWALRecoversArbitraryDeviceNames pins the segment-file naming: device
// IDs with path separators and spaces round-trip through recovery.
func TestWALRecoversArbitraryDeviceNames(t *testing.T) {
	dir := t.TempDir()
	ref := synthLog(2, nil, false)
	body := chunkBody(t, synthLog(2, nil, false), 0, 2)
	device := "rack-1/slot 2?x=../y"

	srv1, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-MLEXray-Device", device)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	ts.Close()
	srv1.Close()

	srv2, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if sv := srv2.Session(device); sv == nil || sv.Records() == 0 {
		t.Errorf("device %q not recovered (session %v)", device, sv)
	}
}

// TestIngestRateLimit429 pins the per-device admission control: past the
// chunk-rate budget the collector answers 429 with a Retry-After hint, and
// the budget refills with the clock.
func TestIngestRateLimit429(t *testing.T) {
	ref := synthLog(2, nil, false)
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	srv, err := NewServer(ServerOptions{Ref: ref, MaxChunksPerSec: 1, ChunkBurst: 1, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := chunkBody(t, synthLog(2, nil, false), 0, 2)

	if resp, _ := postChunk(t, ts.URL, chunkUpload{"ratey", "", -1, body}); resp.StatusCode != http.StatusOK {
		t.Fatalf("first chunk: status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/ingest?device=ratey", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate chunk: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	bodyRecs := func() int {
		lg, err := core.ReadLog(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return len(lg.Records)
	}()
	if got := srv.Session("ratey").Records(); got != bodyRecs {
		t.Errorf("throttled chunk ingested anyway (%d records, want %d)", got, bodyRecs)
	}

	mu.Lock()
	now = now.Add(1100 * time.Millisecond)
	mu.Unlock()
	if resp, _ := postChunk(t, ts.URL, chunkUpload{"ratey", "", -1, body}); resp.StatusCode != http.StatusOK {
		t.Errorf("post-refill chunk: status %d, want 200", resp.StatusCode)
	}
}

// TestIngestSessionCap503 pins the fleet-size admission control: a chunk
// from a device past MaxSessions gets 503 + Retry-After, while known
// devices keep uploading.
func TestIngestSessionCap503(t *testing.T) {
	ref := synthLog(2, nil, false)
	srv, err := NewServer(ServerOptions{Ref: ref, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := chunkBody(t, synthLog(2, nil, false), 0, 2)

	for _, dev := range []string{"cap-a", "cap-b"} {
		if resp, _ := postChunk(t, ts.URL, chunkUpload{dev, "", -1, body}); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", dev, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/ingest?device=cap-c", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap device: status %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("503 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if srv.Session("cap-c") != nil {
		t.Error("rejected device got a session anyway")
	}
	// Known devices are unaffected by the cap.
	if resp, _ := postChunk(t, ts.URL, chunkUpload{"cap-a", "", -1, body}); resp.StatusCode != http.StatusOK {
		t.Errorf("known device after cap: status %d, want 200", resp.StatusCode)
	}
}

// TestRemoteSinkRetriesThrottled pins the client half of admission control:
// 429 responses are transient — the sink retries (honoring Retry-After) and
// the stream completes instead of going sticky-failed.
func TestRemoteSinkRetriesThrottled(t *testing.T) {
	ref := synthLog(4, nil, false)
	srv, err := NewServer(ServerOptions{Ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	throttles := 2
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		throttle := throttles > 0
		if throttle {
			throttles--
		}
		mu.Unlock()
		if throttle {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "over rate", http.StatusTooManyRequests)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer gate.Close()

	sink, err := NewRemoteSink(SinkOptions{
		URL: gate.URL, Device: "throttled", Format: core.FormatBinary, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := synthLog(4, nil, false)
	uploadLog(t, sink, l)
	if sink.Retries() < 2 {
		t.Errorf("%d retries recorded, want >= 2 (one per 429)", sink.Retries())
	}
	if sv := srv.Session("throttled"); sv == nil || sv.Records() != len(l.Records) {
		t.Errorf("collector holds %v, want %d records", sv, len(l.Records))
	}
}

// TestParseRetryAfter pins the header parsing: delay-seconds honored, capped
// at maxRetryAfter, junk ignored.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"junk", 0},
		{"86400", maxRetryAfter},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestWALDurableBenchSanity keeps the durable path honest at bench scale: a
// full upload through a RemoteSink against a DataDir-backed collector
// recovers to the identical fleet report.
func TestWALDurableRemoteSinkRecovery(t *testing.T) {
	dir := t.TempDir()
	const frames = 8
	ref := synthLog(frames, nil, false)
	l := synthLog(frames, nil, true)

	srv1, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1)
	sink, err := NewRemoteSink(SinkOptions{
		URL: ts.URL, Device: "sink-dev", Format: core.FormatBinary, Gzip: true, ChunkBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploadLog(t, sink, l)
	if sink.Chunks() < 2 {
		t.Fatalf("want a chunked upload, got %d chunks", sink.Chunks())
	}
	want, err := srv1.FleetReport()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	ts.Close()
	srv1.Close()

	srv2, err := NewServer(ServerOptions{Ref: ref, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	got, err := srv2.FleetReport()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("recovered fleet report differs:\nlive:      %s\nrecovered: %s", wantJSON, gotJSON)
	}
	if rs := srv2.Recovery(); rs.Chunks != sink.Chunks() || rs.Records != sink.Records() {
		t.Errorf("recovery stats %+v, want %d chunks / %d records", rs, sink.Chunks(), sink.Records())
	}
}
