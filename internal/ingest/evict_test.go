package ingest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mlexray/internal/core"
)

// manualClock is a hand-advanced session clock for the eviction tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1700000000, 0).UTC()}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestIdleEvictionRequiresDataDir pins the config guard: eviction destroys
// in-memory sessions, so it is only safe when a WAL can bring them back.
func TestIdleEvictionRequiresDataDir(t *testing.T) {
	if _, err := NewServer(ServerOptions{IdleTimeout: time.Second}); err == nil {
		t.Fatal("IdleTimeout without DataDir accepted")
	}
}

// TestIdleEvictionResurrection pins the eviction lifecycle: an idle session
// is evicted (slot freed, device gone from /devices and the fleet), its WAL
// segment stays, and the device's next chunk resurrects the session with
// its stream generation intact — the upload continues mid-stream with no
// 409 and no data loss.
func TestIdleEvictionResurrection(t *testing.T) {
	ref := synthLog(4, nil, false)
	clock := newManualClock()
	srv, err := NewServer(ServerOptions{
		Ref:         ref,
		DataDir:     t.TempDir(),
		IdleTimeout: 10 * time.Second,
		Clock:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	l := synthLog(4, nil, false)

	if resp, _ := postChunk(t, ts.URL, chunkUpload{"dev-e", "gen-1", 0, chunkBody(t, l, 0, 2)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 0: status %d", resp.StatusCode)
	}
	clock.Advance(11 * time.Second)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	if devs := srv.Devices(); len(devs) != 0 {
		t.Fatalf("devices after eviction = %v, want none", devs)
	}
	if srv.Session("dev-e") != nil {
		t.Fatal("evicted session still resolvable")
	}

	// The device comes back mid-stream: chunk 1 of the same generation must
	// be accepted in sequence, not 409'd as a gap.
	resp, ir := postChunk(t, ts.URL, chunkUpload{"dev-e", "gen-1", 1, chunkBody(t, l, 2, 4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 1 after eviction: status %d", resp.StatusCode)
	}
	if ir.Duplicate {
		t.Error("post-resurrection chunk acked as duplicate")
	}
	if got := srv.Resurrections(); got != 1 {
		t.Errorf("Resurrections = %d, want 1", got)
	}
	if got := srv.Evictions(); got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	if sess := srv.Session("dev-e"); sess == nil || sess.Records() != len(l.Records) {
		t.Errorf("resurrected session holds %v records, want %d", sess, len(l.Records))
	}
}

// TestEvictionFreesCapAndResurrectBypassesIt pins the interplay with the
// session cap: at the cap, admitting a new device evicts an idle one; and a
// device with durable state resurrects even past the cap — its chunks were
// already acked, refusing them would break the durability contract.
func TestEvictionFreesCapAndResurrectBypassesIt(t *testing.T) {
	ref := synthLog(2, nil, false)
	clock := newManualClock()
	srv, err := NewServer(ServerOptions{
		Ref:         ref,
		DataDir:     t.TempDir(),
		MaxSessions: 1,
		IdleTimeout: 10 * time.Second,
		Clock:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := chunkBody(t, synthLog(2, nil, false), 0, 2)

	if resp, _ := postChunk(t, ts.URL, chunkUpload{"cap-a", "", -1, body}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cap-a: status %d", resp.StatusCode)
	}
	clock.Advance(11 * time.Second)
	// cap-b needs the one slot; cap-a is idle past the horizon and must
	// yield it.
	if resp, _ := postChunk(t, ts.URL, chunkUpload{"cap-b", "", -1, body}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cap-b at cap: status %d", resp.StatusCode)
	}
	if srv.Evictions() == 0 {
		t.Error("cap pressure did not evict the idle session")
	}
	// cap-a returns while cap-b holds the only slot: durable state wins
	// over the cap.
	if resp, _ := postChunk(t, ts.URL, chunkUpload{"cap-a", "", -1, body}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cap-a resurrection past cap: status %d", resp.StatusCode)
	}
	if srv.Resurrections() != 1 {
		t.Errorf("Resurrections = %d, want 1", srv.Resurrections())
	}
	devs := srv.Devices()
	if len(devs) != 2 {
		t.Errorf("devices = %v, want both cap-a and cap-b", devs)
	}
}

// slowLorisBody trickles bytes with long pauses — a client holding a
// request open far past any reasonable upload time.
type slowLorisBody struct {
	n     int
	delay time.Duration
}

func (s *slowLorisBody) Read(p []byte) (int, error) {
	if s.n <= 0 {
		return 0, io.EOF
	}
	time.Sleep(s.delay)
	s.n--
	p[0] = 'x'
	return 1, nil
}

// TestReadTimeoutShedsSlowLoris pins the per-request read deadline: a
// trickling upload is cut off near ReadTimeout instead of occupying the
// collector indefinitely.
func TestReadTimeoutShedsSlowLoris(t *testing.T) {
	srv, err := NewServer(ServerOptions{
		Ref:         synthLog(2, nil, false),
		ReadTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	start := time.Now()
	resp, err := http.Post(ts.URL+"/ingest?device=loris", "application/octet-stream",
		&slowLorisBody{n: 100, delay: 100 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("slow-loris upload acked with 200")
		}
	}
	// 100 bytes at 100ms apiece is a 10s crawl; the deadline must cut it
	// off far earlier.
	if elapsed > 5*time.Second {
		t.Errorf("slow-loris request held the collector for %v", elapsed)
	}
}

// TestRemoteSinkRetryBudgetExhausted pins MaxElapsed: against a collector
// that only ever fails, the sink gives up once the budget cannot cover the
// next wait — in bounded time, with the attempt count in the error.
func TestRemoteSinkRetryBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	sink, err := NewRemoteSink(SinkOptions{
		URL: ts.URL, Device: "budgeted", Format: core.FormatBinary,
		MaxRetries: 1 << 20, RetryBackoff: 5 * time.Millisecond, MaxElapsed: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := synthLog(2, nil, false)
	start := time.Now()
	err = sink.WriteFrame(0, l.Records)
	if err == nil {
		err = sink.Flush()
	}
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("sink succeeded against an always-failing collector")
	}
	if !strings.Contains(err.Error(), "retry budget 100ms exhausted") {
		t.Errorf("error does not name the exhausted budget: %v", err)
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error does not report the attempt count: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("budgeted give-up took %v, want well under the retry ceiling", elapsed)
	}
}

// TestRemoteSinkGiveUpReportsAttempts pins the MaxRetries path: with the
// elapsed budget disabled, the sink exhausts its attempts and says how many
// it made.
func TestRemoteSinkGiveUpReportsAttempts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	sink, err := NewRemoteSink(SinkOptions{
		URL: ts.URL, Device: "counted", Format: core.FormatBinary,
		MaxRetries: 2, RetryBackoff: time.Millisecond, MaxElapsed: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := synthLog(2, nil, false)
	err = sink.WriteFrame(0, l.Records)
	if err == nil {
		err = sink.Flush()
	}
	if err == nil {
		t.Fatal("sink succeeded against an always-failing collector")
	}
	if !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Errorf("error does not report attempts: %v", err)
	}
}

// TestRetryWaitJitterBounds pins the backoff curve: each step stays within
// [base*2^n / 2, base*2^n], never exceeds the cap, and two attempts at the
// same step are not forced into lockstep.
func TestRetryWaitJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		full := base
		for i := 0; i < attempt && full < maxRetryWait; i++ {
			full *= 2
		}
		if full > maxRetryWait {
			full = maxRetryWait
		}
		for trial := 0; trial < 50; trial++ {
			w := retryWait(base, attempt)
			if w < full/2 || w > full {
				t.Fatalf("retryWait(base, %d) = %v outside [%v, %v]", attempt, w, full/2, full)
			}
		}
	}
	// Jitter must actually vary (full jitter over the upper half).
	seen := map[time.Duration]bool{}
	for trial := 0; trial < 100; trial++ {
		seen[retryWait(base, 3)] = true
	}
	if len(seen) < 2 {
		t.Error("retryWait produced no jitter across 100 draws")
	}
}
