package ingest

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoteSinkFollowsShardRedirect pins the shard re-route contract: a
// 307 + Location answer from a routing gateway sends the chunk to the owning
// shard transparently (no error, no retry consumed), and the re-route is
// sticky — later chunks go straight to the shard without another gateway
// hop. When the redirected endpoint dies, the sink falls back to the
// configured gateway rather than failing the upload.
func TestRemoteSinkFollowsShardRedirect(t *testing.T) {
	const frames = 8
	ref := synthLog(frames, nil, false)
	l := synthLog(frames, nil, false)

	shardSrv, err := NewServer(ServerOptions{Ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	shardTS := httptest.NewServer(shardSrv)
	defer shardTS.Close()

	// The gateway: answers every POST with a 307 naming the owning shard,
	// until absorb is flipped — then it accepts chunks itself (the fallback
	// path after the shard it once named has died).
	var gwHits, gwAbsorbed atomic.Int64
	var absorb atomic.Bool
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gwHits.Add(1)
		if absorb.Load() {
			gwAbsorbed.Add(1)
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Location", shardTS.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer gw.Close()

	sink, err := NewRemoteSink(SinkOptions{
		URL: gw.URL, Device: "dev",
		ChunkBytes:   256, // force a multi-chunk upload
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	uploadLog(t, sink, l)

	if sink.Chunks() < 2 {
		t.Fatalf("upload shipped %d chunk(s), want several to prove stickiness", sink.Chunks())
	}
	if got := gwHits.Load(); got != 1 {
		t.Errorf("gateway saw %d POSTs, want exactly 1 (re-route must stick)", got)
	}
	if got := sink.Redirects(); got != 1 {
		t.Errorf("sink followed %d redirects, want 1", got)
	}
	if sink.Retries() != 0 {
		t.Errorf("redirect consumed %d retries, want 0 — a re-route is not a failure", sink.Retries())
	}
	if got := shardSrv.Session("dev").Records(); got != len(l.Records) {
		t.Errorf("shard holds %d records, want all %d", got, len(l.Records))
	}

	// Kill the shard; the sink's sticky endpoint is now dead. The next chunk
	// must fall back to the configured gateway (which has absorbed the shard's
	// keys) instead of erroring out.
	shardTS.Close()
	shardSrv.Close()
	absorb.Store(true)
	if err := sink.WriteFrame(frames, nil); err != nil {
		t.Fatalf("write after shard death: %v", err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush after shard death must fall back to the gateway: %v", err)
	}
	if gwAbsorbed.Load() == 0 {
		t.Error("fallback chunk never reached the gateway")
	}
}

// TestRemoteSinkRedirectLoopBounded pins the hop cap: a gateway that answers
// 307 forever (two gateways pointing at each other) must not hang the sink —
// after maxShardRedirects hops the chunk fails like any other upload error.
func TestRemoteSinkRedirectLoopBounded(t *testing.T) {
	var hits atomic.Int64
	loop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Location", r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer loop.Close()

	sink, err := NewRemoteSink(SinkOptions{
		URL: loop.URL, Device: "dev",
		MaxRetries: 1, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := synthLog(2, nil, false)
	for i := range l.Records {
		_ = sink.WriteFrame(l.Records[i].Frame, l.Records[i:i+1])
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("endless redirect loop did not fail the upload")
	}
	// Per attempt: 1 initial POST + maxShardRedirects hops.
	wantMax := int64((1 + maxShardRedirects) * 2) // MaxRetries 1 → 2 attempts
	if got := hits.Load(); got > wantMax {
		t.Errorf("loop server saw %d POSTs, want <= %d (hop cap must bound it)", got, wantMax)
	}
}
