package ingest

import (
	"bytes"
	"compress/gzip"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/obs"
)

// SinkOptions configures a RemoteSink.
type SinkOptions struct {
	// URL is the collector base URL (e.g. "http://collector:9090"); the sink
	// posts to URL + "/ingest".
	URL string
	// Device is the stream's device ID — the server's session key.
	Device string
	// Format selects the chunk log encoding (FormatJSONL or FormatBinary).
	Format core.LogFormat
	// Gzip compresses each chunk (the server auto-detects either way).
	Gzip bool
	// ChunkBytes is the encoded-bytes threshold that ships a chunk; <= 0
	// means 1 MiB. Frames are never split: a chunk ships at the first frame
	// boundary past the threshold.
	ChunkBytes int
	// MaxRetries is how many times a failed POST is retried (network
	// errors, 5xx responses and 429 throttling; other 4xx fail immediately
	// — resending a rejected chunk cannot succeed). <= 0 means 4.
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubling per attempt (with
	// jitter, capped at maxRetryWait); <= 0 means 250ms.
	RetryBackoff time.Duration
	// MaxElapsed caps the total time one chunk may spend retrying: once the
	// budget cannot cover the next wait, the upload fails with the last
	// error instead of sleeping again — a dead collector fails the sink in
	// bounded time. 0 means 2 minutes; negative means no budget (retry
	// until MaxRetries alone gives up).
	MaxElapsed time.Duration
	// Client overrides the HTTP client (tests, custom timeouts).
	Client *http.Client
	// Metrics registers client-side upload counters (chunks, retries,
	// redirects, give-ups, backoff sleep histogram) on the given registry.
	// Sinks sharing one registry share the series — a fleet's sinks fold
	// into one client-side view. Nil means no metrics.
	Metrics *obs.Registry
}

func (o *SinkOptions) chunkBytes() int {
	if o.ChunkBytes <= 0 {
		return 1 << 20
	}
	return o.ChunkBytes
}

func (o *SinkOptions) maxRetries() int {
	if o.MaxRetries <= 0 {
		return 4
	}
	return o.MaxRetries
}

func (o *SinkOptions) backoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return o.RetryBackoff
}

func (o *SinkOptions) maxElapsed() time.Duration {
	switch {
	case o.MaxElapsed < 0:
		return 0 // no budget
	case o.MaxElapsed == 0:
		return 2 * time.Minute
	default:
		return o.MaxElapsed
	}
}

func (o *SinkOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

// RemoteSink streams telemetry frames to an ingest collector: a core.Sink
// whose "file" is a device session on the server. Frames buffer into chunks
// — each a standalone log stream in the configured encoding, optionally
// gzip-compressed — shipped when the chunk threshold is reached and on
// Flush. Failed uploads retry with exponential backoff; after the retry
// budget the error is sticky and surfaces on the next write and on Flush,
// like a failed disk write would.
//
// A RemoteSink is single-stream state (one device's frames in order), so
// like the file sinks it is not safe for concurrent use; the replay engines
// write each device's sink from one goroutine.
type RemoteSink struct {
	opts SinkOptions
	// endpoint is where chunks currently post; origin is the configured
	// collector. A 307/308 answer (a shard-routing gateway pointing at the
	// owning shard) moves endpoint — stickily, so later chunks skip the
	// gateway hop — and any failure on the redirected endpoint falls back to
	// origin, which knows the ring's current shape.
	endpoint string
	origin   string
	// client is the configured client with redirect-following disabled: the
	// sink handles 307/308 itself, so the re-route can stick across chunks.
	client *http.Client
	// stream is this sink's random upload-generation token: the server
	// scopes chunk-sequence deduplication to it, so a new sink for the same
	// device appends instead of colliding with a previous run's chunk
	// numbers.
	stream string

	chunk   bytes.Buffer
	zw      *gzip.Writer
	encoded countingWriter // pre-compression bytes of the open chunk
	enc     core.LogEncoder
	pending int // frames in the open chunk

	records      int
	frames       int
	wireBytes    int
	chunks       int
	retries      int
	redirects    int
	giveUps      int
	backoffSlept time.Duration
	err          error

	// Client-side obs instruments (nil without SinkOptions.Metrics; every
	// operation on them is then a no-op).
	metChunks    *obs.Counter
	metRetries   *obs.Counter
	metRedirects *obs.Counter
	metGiveUps   *obs.Counter
	metBackoff   *obs.Histogram
}

// NewRemoteSink builds a sink streaming to the collector at opts.URL.
func NewRemoteSink(opts SinkOptions) (*RemoteSink, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("ingest: remote sink needs a collector URL")
	}
	if opts.Device == "" {
		return nil, fmt.Errorf("ingest: remote sink needs a device ID")
	}
	base, err := url.Parse(opts.URL)
	if err != nil {
		return nil, fmt.Errorf("ingest: collector URL: %w", err)
	}
	endpoint := base.JoinPath("ingest")
	q := endpoint.Query()
	q.Set("device", opts.Device)
	endpoint.RawQuery = q.Encode()
	var tok [8]byte
	if _, err := rand.Read(tok[:]); err != nil {
		return nil, fmt.Errorf("ingest: stream token: %w", err)
	}
	s := &RemoteSink{opts: opts, endpoint: endpoint.String(), origin: endpoint.String(), stream: hex.EncodeToString(tok[:])}
	// Nil registry hands back nil instruments whose methods are no-ops, so
	// the upload path needs no telemetry conditionals.
	s.metChunks = opts.Metrics.Counter("mlexray_sink_chunks_total",
		"Chunks successfully uploaded by RemoteSinks.")
	s.metRetries = opts.Metrics.Counter("mlexray_sink_retries_total",
		"Upload attempts retried after a transient failure.")
	s.metRedirects = opts.Metrics.Counter("mlexray_sink_redirects_total",
		"Shard re-routes (307/308 Location answers) followed.")
	s.metGiveUps = opts.Metrics.Counter("mlexray_sink_giveups_total",
		"Chunk uploads abandoned after exhausting the retry budget.")
	s.metBackoff = opts.Metrics.Histogram("mlexray_sink_backoff_seconds",
		"Backoff sleeps between upload retries.", obs.LatencyBounds())
	// Disable the client's own redirect following (a copy, so the caller's
	// client is untouched): post handles 307/308 itself to make the shard
	// re-route sticky instead of re-resolving through the gateway per chunk.
	c := *opts.client()
	c.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}
	s.client = &c
	if err := s.openChunk(); err != nil {
		return nil, err
	}
	return s, nil
}

// openChunk starts a fresh standalone log stream in the buffer.
func (s *RemoteSink) openChunk() error {
	s.chunk.Reset()
	s.pending = 0
	s.encoded.n = 0
	var w io.Writer = &s.chunk
	if s.opts.Gzip {
		if s.zw == nil {
			s.zw = gzip.NewWriter(&s.chunk)
		} else {
			s.zw.Reset(&s.chunk)
		}
		w = s.zw
	}
	// The chunk threshold reads pre-compression bytes: gzip buffers
	// internally, so the compressed buffer length lags far behind what has
	// been encoded.
	s.encoded.w = w
	enc, err := core.NewLogEncoder(&s.encoded, s.opts.Format)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	s.enc = enc
	return nil
}

// countingWriter counts the bytes passing through to w.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// WriteFrame implements core.Sink: the frame's records append to the open
// chunk, which ships once it crosses the chunk threshold.
func (s *RemoteSink) WriteFrame(frame int, recs []core.Record) error {
	if s.err != nil {
		return s.err
	}
	for i := range recs {
		if err := s.enc.EncodeRecord(&recs[i]); err != nil {
			s.err = fmt.Errorf("ingest: encode frame %d record %d: %w", frame, i, err)
			return s.err
		}
	}
	s.records += len(recs)
	s.frames++
	s.pending++
	if err := s.enc.Flush(); err != nil {
		s.err = fmt.Errorf("ingest: %w", err)
		return s.err
	}
	if s.encoded.n >= s.opts.chunkBytes() {
		return s.ship()
	}
	return nil
}

// Flush implements core.Sink: the final partial chunk ships and the first
// upload error (if any) is reported.
func (s *RemoteSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	if s.pending > 0 {
		return s.ship()
	}
	return nil
}

// ship closes the open chunk into one POST /ingest (with retry/backoff) and
// opens the next.
func (s *RemoteSink) ship() error {
	if err := s.enc.Flush(); err != nil {
		s.err = fmt.Errorf("ingest: %w", err)
		return s.err
	}
	if s.opts.Gzip {
		if err := s.zw.Close(); err != nil {
			s.err = fmt.Errorf("ingest: %w", err)
			return s.err
		}
	}
	body := s.chunk.Bytes()
	if err := s.post(body, s.chunks); err != nil {
		s.giveUps++
		s.metGiveUps.Inc()
		s.err = err
		return s.err
	}
	s.wireBytes += len(body)
	s.chunks++
	s.metChunks.Inc()
	return s.openChunk()
}

// maxRetryAfter caps how long a collector's Retry-After hint can stall one
// attempt, so a misconfigured server cannot park the sink for hours.
const maxRetryAfter = 30 * time.Second

// maxRetryWait caps one backoff step: past ~7 doublings the exponential
// curve adds nothing but shift-overflow risk with a large MaxRetries.
const maxRetryWait = 30 * time.Second

// retryWait computes the attempt'th backoff: exponential from the base,
// capped, with full jitter over the upper half so a swarm of sinks kicked
// loose by the same collector restart does not retry in lockstep.
func retryWait(base time.Duration, attempt int) time.Duration {
	wait := base
	for i := 0; i < attempt && wait < maxRetryWait; i++ {
		wait *= 2
	}
	if wait > maxRetryWait {
		wait = maxRetryWait
	}
	return wait/2 + mrand.N(wait/2+1)
}

// maxShardRedirects caps Location hops within one upload, so two gateways
// pointing at each other cannot bounce the sink forever.
const maxShardRedirects = 4

// post uploads one chunk, retrying transient failures (network errors, 5xx,
// and 429 throttling) with jittered exponential backoff under two budgets:
// MaxRetries attempts and MaxElapsed total time. A Retry-After header on a
// throttled or unavailable response (the collector's admission control)
// stretches the wait to what the server asked for. A 307/308 with a
// Location (a shard-routing gateway naming the owning shard) re-posts there
// immediately — a transparent re-route, not a retry — and the new endpoint
// sticks for subsequent chunks; any later failure falls back to the
// configured collector, which re-routes against the ring's current shape.
// The chunk sequence number rides along so a retry of a chunk the server
// already applied (response lost in flight) is acknowledged instead of
// double-ingested.
func (s *RemoteSink) post(body []byte, chunkIdx int) error {
	start := time.Now()
	budget := s.opts.maxElapsed()
	var lastErr error
	attempt, hops := 0, 0
	for {
		req, err := http.NewRequest(http.MethodPost, s.endpoint, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set("X-MLEXray-Device", s.opts.Device)
		req.Header.Set("X-MLEXray-Chunk", strconv.Itoa(chunkIdx))
		req.Header.Set("X-MLEXray-Stream", s.stream)
		// The trace ID: stream token + chunk sequence, stable across
		// retries and redirect hops of the same chunk, so every hop's span
		// (gateway, shard ingest, WAL) carries one ID per logical upload.
		req.Header.Set(obs.TraceHeader, s.stream+"-"+strconv.Itoa(chunkIdx))
		if s.opts.Gzip {
			req.Header.Set("Content-Encoding", "gzip")
		}
		var retryAfter time.Duration
		resp, err := s.client.Do(req)
		if err == nil {
			status := resp.StatusCode
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			loc := resp.Header.Get("Location")
			resp.Body.Close()
			switch {
			case status == http.StatusTemporaryRedirect || status == http.StatusPermanentRedirect:
				if target, perr := req.URL.Parse(loc); perr == nil && loc != "" && hops < maxShardRedirects {
					hops++
					s.redirects++
					s.metRedirects.Inc()
					s.endpoint = target.String()
					continue // transparent re-route: no backoff, no attempt spent
				}
				lastErr = fmt.Errorf("ingest: collector redirect (%d) unusable (Location %q after %d hops)", status, loc, hops)
			case status < 300:
				return nil
			default:
				lastErr = fmt.Errorf("ingest: collector returned %d: %s", status, bytes.TrimSpace(msg))
				if status < 500 && status != http.StatusTooManyRequests {
					// The collector rejected the chunk; resending it cannot
					// help. 429 is the exception: over-rate is transient by
					// definition.
					return lastErr
				}
			}
		} else {
			lastErr = fmt.Errorf("ingest: upload: %w", err)
		}
		// A failure on a re-routed endpoint goes back through the configured
		// collector: the shard the redirect named may be gone, and the
		// gateway knows the ring's current shape.
		s.endpoint = s.origin
		if attempt >= s.opts.maxRetries() {
			return fmt.Errorf("%w (gave up after %d attempts in %v)",
				lastErr, attempt+1, time.Since(start).Round(time.Millisecond))
		}
		wait := retryWait(s.opts.backoff(), attempt)
		if retryAfter > wait {
			wait = retryAfter
		}
		if budget > 0 && time.Since(start)+wait > budget {
			return fmt.Errorf("%w (retry budget %v exhausted after %d attempts)",
				lastErr, budget, attempt+1)
		}
		s.retries++
		s.metRetries.Inc()
		s.backoffSlept += wait
		s.metBackoff.Observe(wait.Seconds())
		time.Sleep(wait)
		attempt++
	}
}

// parseRetryAfter reads a Retry-After header's delay-seconds form (what the
// collector sends), capped at maxRetryAfter; anything else means no hint.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// Records returns the records encoded so far.
func (s *RemoteSink) Records() int { return s.records }

// Frames returns the frames written so far.
func (s *RemoteSink) Frames() int { return s.frames }

// Bytes returns the wire bytes successfully uploaded (post-compression).
func (s *RemoteSink) Bytes() int { return s.wireBytes }

// Chunks returns the uploads completed so far.
func (s *RemoteSink) Chunks() int { return s.chunks }

// Retries returns how many upload attempts were retried.
func (s *RemoteSink) Retries() int { return s.retries }

// Redirects reports how many shard re-routes (307/308 Location answers) the
// sink followed.
func (s *RemoteSink) Redirects() int { return s.redirects }

// Format returns the chunk log encoding.
func (s *RemoteSink) Format() core.LogFormat { return s.opts.Format }

// SinkStats is one upload session's summary — what edgerun -upload prints
// on exit.
type SinkStats struct {
	Device    string `json:"device"`
	Records   int    `json:"records"`
	Frames    int    `json:"frames"`
	Chunks    int    `json:"chunks"`
	WireBytes int    `json:"wire_bytes"`
	Retries   int    `json:"retries"`
	Redirects int    `json:"redirects"`
	// GiveUps counts chunks abandoned after the retry budget; with a
	// non-empty LastErr the stream is truncated at the server.
	GiveUps      int           `json:"give_ups"`
	BackoffSlept time.Duration `json:"backoff_slept"`
	LastErr      string        `json:"last_err,omitempty"`
}

// Stats snapshots the sink's upload counters. Like the sink itself it is
// single-goroutine state: call it from the goroutine that writes the sink
// (typically after Flush).
func (s *RemoteSink) Stats() SinkStats {
	st := SinkStats{
		Device:       s.opts.Device,
		Records:      s.records,
		Frames:       s.frames,
		Chunks:       s.chunks,
		WireBytes:    s.wireBytes,
		Retries:      s.retries,
		Redirects:    s.redirects,
		GiveUps:      s.giveUps,
		BackoffSlept: s.backoffSlept,
	}
	if s.err != nil {
		st.LastErr = s.err.Error()
	}
	return st
}
