// Package ingest is the telemetry ingestion service: the cloud half of the
// ML-EXray architecture, where edge devices upload their per-layer logs for
// fleet-scale deployment validation. It has two sides:
//
//   - Server accepts concurrent log streams over HTTP (POST /ingest),
//     sessionizes them by device ID and validates each stream incrementally
//     through core.StreamValidator as frames arrive — the final per-device
//     and fleet reports are identical to running core.Validate /
//     core.FleetValidate offline on the same records, at bounded memory per
//     session (per-layer tensors fold into rollups and are dropped). With a
//     data directory configured, every accepted chunk is appended to a
//     per-session write-ahead segment and fsynced before the ack, so a
//     collector restart replays the segments and recovers every session
//     exactly (see wal.go).
//
//   - RemoteSink is the device side: a core.Sink that streams a replay's
//     telemetry to the collector in chunked, optionally gzip-compressed
//     uploads with retry/backoff, so runner.Replay / runner.Fleet per-device
//     sinks feed the service directly instead of a local file.
//
// Streams may use either log encoding (JSONL or MLXB binary) and may be
// gzip-compressed; the server auto-detects per chunk via core.OpenLog. A
// device's chunks must arrive in stream order (RemoteSink posts them
// sequentially); different devices upload concurrently without coordination.
// Admission control caps the fleet: a per-device chunk-rate limit (429) and
// a max-sessions cap (503), both carrying Retry-After, which RemoteSink
// honors as transient retries.
package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/obs"
)

// ServerOptions configures a collector.
type ServerOptions struct {
	// Ref is the reference log uploads validate against. Without it the
	// server still sessionizes and counts uploads (collection mode), but the
	// report endpoints return 409 Conflict.
	Ref *core.Log
	// Validate tunes the incremental validator (zero value: defaults).
	Validate core.ValidateOptions
	// MaxBodyBytes caps one upload chunk — both its wire size and its
	// decoded record footprint, so a small gzip body cannot balloon into
	// unbounded memory; <= 0 means 1 GiB.
	MaxBodyBytes int64
	// DataDir enables the write-ahead log: accepted chunks append to
	// per-session segment files under it and are fsynced before the ack, and
	// NewServer replays existing segments so a restart recovers every
	// session exactly. Empty means in-memory only (a restart loses all
	// sessions).
	DataDir string
	// MaxSessions caps concurrently tracked device sessions; a chunk from a
	// new device past the cap gets 503 with Retry-After. <= 0 means
	// unlimited. Sessions recovered from the WAL always load (they hold
	// acked data), even past the cap.
	MaxSessions int
	// MaxChunksPerSec rate-limits each device's accepted chunks (token
	// bucket; burst ChunkBurst). Past the limit a chunk gets 429 with
	// Retry-After. <= 0 means unlimited.
	MaxChunksPerSec float64
	// ChunkBurst is the rate limiter's bucket size; <= 0 means one second's
	// worth of chunks (minimum 1).
	ChunkBurst int
	// IdleTimeout evicts sessions idle longer than this: the session slot
	// frees (a slow-loris device cannot pin it forever) while the device's
	// write-ahead segment stays on disk, so its next chunk resurrects the
	// session exactly. Requires DataDir — evicting an in-memory session
	// would silently discard acked data, so NewServer rejects that
	// combination. <= 0 disables eviction.
	IdleTimeout time.Duration
	// ReadTimeout bounds reading one upload body (per request, applied via
	// the response controller): a device trickling bytes — a slow-loris —
	// has its connection shed instead of holding a handler forever. <= 0
	// means no per-request read deadline beyond the http.Server's.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response, same mechanism. <= 0 means
	// no per-request write deadline.
	WriteTimeout time.Duration
	// SessionRetryAfterSecs is the Retry-After hint (seconds) on 503
	// session-cap and mid-eviction rejections; <= 0 means 5.
	SessionRetryAfterSecs int
	// SegmentBytes rolls a session's active WAL segment to a new numbered
	// segment once it reaches this size, so a long-lived session's log grows
	// as finite units instead of one unbounded file. <= 0 disables rotation
	// (one segment per session, the pre-rotation behavior).
	SegmentBytes int64
	// CompactAfter merges a session's closed WAL segments into one once this
	// many have accumulated. 0 defaults to 4 when rotation is enabled;
	// negative disables compaction (closed segments accumulate).
	CompactAfter int
	// Clock overrides time.Now for the session timestamps (tests).
	Clock func() time.Time
	// Metrics is the registry the collector instruments itself into; nil
	// means a private registry per server (what GET /metrics renders
	// either way). Daemons pass a shared registry so runtime gauges and
	// collector counters land on one scrape endpoint.
	Metrics *obs.Registry
	// DisableMetrics turns self-telemetry off entirely: no registry, no
	// trace ring, the ingest path runs bare. The instrumented-overhead
	// benchmark's baseline.
	DisableMetrics bool
	// TraceCapacity bounds the in-process request-trace ring buffer
	// (GET /debug/trace); <= 0 means obs.DefaultTraceCapacity.
	TraceCapacity int
}

// walConfig is the server's WAL tuning with the append/fsync latency
// histograms wired in (nil histograms when metrics are disabled).
func (s *Server) walConfig() walConfig {
	cfg := s.opts.walConfig()
	if s.met != nil {
		cfg.appendHist = s.met.walAppend
		cfg.fsyncHist = s.met.walFsync
	}
	return cfg
}

// walConfig folds the durability options into the WAL layer's tuning.
func (o *ServerOptions) walConfig() walConfig {
	cfg := walConfig{dir: o.DataDir, segmentBytes: o.SegmentBytes}
	switch {
	case o.CompactAfter > 0:
		cfg.compactAfter = o.CompactAfter
	case o.CompactAfter == 0 && o.SegmentBytes > 0:
		cfg.compactAfter = defaultCompactAfter
	}
	return cfg
}

func (o *ServerOptions) chunkBurst() float64 {
	if o.ChunkBurst > 0 {
		return float64(o.ChunkBurst)
	}
	return math.Max(1, math.Ceil(o.MaxChunksPerSec))
}

// retryAfterSessions is the default Retry-After hint (seconds) on a 503
// session-cap rejection: sessions drain on operator timescales, not
// milliseconds. SessionRetryAfterSecs overrides it.
const retryAfterSessions = 5

func (o *ServerOptions) sessionRetryAfter() string {
	secs := o.SessionRetryAfterSecs
	if secs <= 0 {
		secs = retryAfterSessions
	}
	return strconv.Itoa(secs)
}

// Server is the ingestion collector: an http.Handler exposing
//
//	POST /ingest?device=ID   upload one log chunk (JSONL/MLXB, plain or gzip)
//	GET  /devices            all device session statuses
//	GET  /devices/{device}   one session's status + incremental report
//	GET  /fleet              fleet-wide cross-validation report
//	GET  /healthz            liveness + session count
//
// The device ID comes from the X-MLEXray-Device header or the device query
// parameter. Handlers are safe for concurrent use; chunks of one device are
// serialized per session, different devices ingest in parallel.
type Server struct {
	opts  ServerOptions
	fleet *core.FleetStreamValidator

	// closeMu orders durable appends against Close: handlers hold the read
	// side across WAL creation+append, Close flips closed under the write
	// side first — so every ack either lands fully before Close closes the
	// segments (and a successor's recovery replays it) or answers 503. A
	// separate lock because the append path already holds sess.mu and
	// taking s.mu there would invert the s.mu → sess.mu order.
	closeMu sync.RWMutex
	closed  bool

	mu       sync.Mutex
	sessions map[string]*session
	// lastSweep rate-limits the opportunistic idle-eviction sweep; evictions
	// and resurrections count lifecycle events for /healthz and the storm
	// harness's leak checks.
	lastSweep     time.Time
	evictions     int
	resurrections int

	recovery RecoveryStats

	// met holds the pre-registered self-telemetry instruments (nil with
	// DisableMetrics); traces is the bounded request-span ring. Both are
	// nil-safe throughout, so instrumented code needs no conditionals.
	met    *serverMetrics
	traces *obs.TraceRing

	mux *http.ServeMux
}

// session is one device's upload state. Its mutex serializes chunk ingestion
// (a device's frames must fold in stream order); status reads take it only
// briefly.
type session struct {
	mu      sync.Mutex
	device  string
	sv      *core.StreamValidator // nil in collection mode
	records int
	// seenFrames tracks the distinct frame tags observed, so a fleet shard
	// owning frames 1000–1999 reports 1000 frames, not 2000 (the old
	// maxFrame+1 accounting).
	seenFrames map[int]bool
	bytes      int64
	chunks     int
	// stream identifies the current upload generation (X-MLEXray-Stream, a
	// random token per RemoteSink): chunk numbering restarts with each new
	// stream, so a re-run client appends instead of being mistaken for a
	// replay of the previous run's chunks.
	stream string
	// nextChunk is the next expected X-MLEXray-Chunk sequence number within
	// the current stream — what makes RemoteSink retries idempotent.
	nextChunk int
	lastSeen  time.Time
	lastErr   string
	// evicted marks a session removed by the idle sweep: a handler that
	// raced the eviction (looked the session up before it left the map)
	// answers 503 instead of folding into dead state; the retry resurrects
	// the session from its WAL segment.
	evicted bool
	// wal is the session's write-ahead segment (nil without a DataDir).
	wal *sessionWAL
	// met points at the server's instruments so the shared apply path can
	// count without reaching through the server (nil when disabled).
	met *serverMetrics
	// tokens/tokensAt implement the per-device chunk-rate token bucket.
	tokens   float64
	tokensAt time.Time
}

// NewServer builds a collector. Unset Validate fields default individually
// to core.DefaultValidateOptions — a partially-specified ValidateOptions
// keeps its set fields (pass an empty non-nil Assertions slice to disable
// assertions rather than inherit the built-ins). With DataDir set, existing
// write-ahead segments replay before the server accepts traffic; Recovery
// reports what was restored.
func NewServer(opts ServerOptions) (*Server, error) {
	def := core.DefaultValidateOptions()
	if opts.Validate.AgreementThreshold == 0 {
		opts.Validate.AgreementThreshold = def.AgreementThreshold
	}
	if opts.Validate.NRMSEThreshold == 0 {
		opts.Validate.NRMSEThreshold = def.NRMSEThreshold
	}
	if opts.Validate.StragglerFactor == 0 {
		opts.Validate.StragglerFactor = def.StragglerFactor
	}
	if opts.Validate.Assertions == nil {
		opts.Validate.Assertions = def.Assertions
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 30
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.IdleTimeout > 0 && opts.DataDir == "" {
		return nil, fmt.Errorf("ingest: IdleTimeout requires DataDir — evicting an in-memory session would discard acked data")
	}
	s := &Server{opts: opts, sessions: make(map[string]*session)}
	if !opts.DisableMetrics {
		reg := opts.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		// Registered before recovery: WAL replay runs the same apply path
		// as live ingest, so a restarted collector's chunk counters equal
		// the distinct chunks it holds — the storm harness reconciles
		// client-observed acks against exactly this.
		s.met = newServerMetrics(reg)
		s.traces = obs.NewTraceRing(opts.TraceCapacity)
	}
	if opts.Ref != nil {
		fv, err := core.NewFleetStreamValidator(opts.Ref, opts.Validate)
		if err != nil {
			return nil, fmt.Errorf("ingest: reference log: %w", err)
		}
		s.fleet = fv
	}
	if opts.DataDir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.Handle("POST /ingest", s.instrument(s.handleIngest))
	mux.HandleFunc("GET /devices", s.handleDevices)
	mux.HandleFunc("GET /devices/{device}", s.handleDevice)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("GET /fleet/export", s.handleFleetExport)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.met != nil {
		mux.Handle("GET /metrics", s.met.reg.Handler())
	}
	if s.traces != nil {
		mux.Handle("GET /debug/trace", s.traces.Handler())
	}
	s.mux = mux
	return s, nil
}

// recover replays the write-ahead segments under DataDir through the exact
// chunk-apply path the HTTP handler uses — the same generation bookkeeping,
// the same validator consumption — so the recovered sessions are
// byte-identical to the uninterrupted ones. Runs before the server serves,
// so no lock ordering is at stake.
func (s *Server) recover() error {
	recovered, truncated, err := loadWAL(s.opts.DataDir)
	if err != nil {
		return err
	}
	s.recovery.TruncatedBytes = truncated
	for _, rs := range recovered {
		sess := s.createSession(rs.device)
		s.recovery.Sessions++
		sess.mu.Lock()
		chunks, records, skipped := s.replayEntriesLocked(sess, rs.entries)
		s.recovery.Chunks += chunks
		s.recovery.Records += records
		s.recovery.SkippedChunks += skipped
		// Reopen the log for appending: new chunks continue the highest
		// segment, with entry indexes resuming past the replayed history.
		w, err := createSessionWAL(s.walConfig(), rs.device)
		if err != nil {
			sess.mu.Unlock()
			return err
		}
		sess.wal = w
		sess.mu.Unlock()
	}
	return nil
}

// replayEntriesLocked folds one segment's recovered entries into the session
// through the exact apply path the HTTP handler uses — shared by startup
// recovery and idle-eviction resurrection. The caller holds sess.mu.
func (s *Server) replayEntriesLocked(sess *session, entries []walEntry) (chunks, records, skipped int) {
	for _, e := range entries {
		recs, _, err := decodeChunk(e.body, s.opts.MaxBodyBytes)
		if err != nil {
			// The CRC was intact but the body does not decode: corruption
			// beyond a torn tail, or a segment written by a future codec.
			// The chunks before it replayed; surface the defect and stop
			// this session's replay rather than guessing.
			skipped++
			if sess.lastErr == "" {
				sess.lastErr = fmt.Sprintf("wal replay: %v", err)
			}
			break
		}
		dup, seqErr := sess.advanceStreamLocked(e.stream, e.chunk)
		if seqErr != nil || dup {
			// Entries were only appended after the generation checks
			// passed, so an in-log dup/gap is corruption; skip it.
			skipped++
			continue
		}
		sess.applyChunkLocked(recs, int64(len(e.body)), e.when)
		chunks++
		records += len(recs)
	}
	return chunks, records, skipped
}

// Recovery reports what the startup WAL replay restored (zero value when no
// DataDir is configured or the log was empty).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// Close releases the write-ahead segment files. The in-memory state stays
// queryable; further durable ingestion answers 503 (shutting down), so a
// successor recovering from the same DataDir cannot miss an acked chunk.
func (s *Server) Close() error {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.wal != nil {
			if err := sess.wal.Close(); err != nil && first == nil {
				first = err
			}
		}
		sess.mu.Unlock()
	}
	return first
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Session returns the named device's session validator (nil until that
// device uploads, or in collection mode) — the programmatic accessor behind
// /devices/{device}.
func (s *Server) Session(device string) *core.StreamValidator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[device]; ok {
		return sess.sv
	}
	return nil
}

// FleetReport cross-validates all device sessions — the programmatic
// accessor behind /fleet.
func (s *Server) FleetReport() (*core.FleetReport, error) {
	if s.fleet == nil {
		return nil, fmt.Errorf("ingest: no reference log loaded (collection mode)")
	}
	return s.fleet.Report()
}

// Devices returns the known device IDs, sorted.
func (s *Server) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// createSession unconditionally creates the device's session — the recovery
// path, where the cap does not apply (the data is already acked).
func (s *Server) createSession(device string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.createSessionLocked(device)
}

func (s *Server) createSessionLocked(device string) *session {
	sess := &session{device: device, seenFrames: make(map[int]bool), met: s.met}
	if s.fleet != nil {
		sess.sv = s.fleet.Session(device)
	}
	if s.opts.MaxChunksPerSec > 0 {
		sess.tokens = s.opts.chunkBurst()
		sess.tokensAt = s.opts.Clock()
	}
	if s.opts.IdleTimeout > 0 {
		// Stamp creation so a session that never applies a chunk (its first
		// chunk failed) still ages out instead of pinning a slot forever.
		// Gated on IdleTimeout so the extra Clock() call cannot perturb the
		// deterministic-clock recovery tests.
		sess.lastSeen = s.opts.Clock()
	}
	s.sessions[device] = sess
	if s.met != nil {
		s.met.sessionsLive.Set(int64(len(s.sessions)))
	}
	return sess
}

// getSession returns the device's session, creating it if the session cap
// allows; past the cap it first tries an idle-eviction sweep, then returns
// nil (the caller answers 503). A device with a write-ahead segment on disk
// — one evicted earlier, or acked before a restart under a different cap —
// resurrects regardless of the cap: its data is already durable and acked.
func (s *Server) getSession(device string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[device]; ok {
		return sess, nil
	}
	if s.opts.DataDir != "" {
		sess, err := s.resurrectLocked(device)
		if err != nil {
			return nil, err
		}
		if sess != nil {
			return sess, nil
		}
	}
	if s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions {
		s.evictIdleLocked(s.opts.Clock())
		if len(s.sessions) >= s.opts.MaxSessions {
			return nil, nil
		}
	}
	return s.createSessionLocked(device), nil
}

// resurrectLocked rebuilds an evicted (or pre-restart) session from its
// write-ahead segments. Returns (nil, nil) when the device has no segments;
// a log that exists but cannot replay is an error — creating a fresh
// session over it would diverge from the durable log.
func (s *Server) resurrectLocked(device string) (*session, error) {
	rs, found, err := readDeviceWAL(s.opts.DataDir, device)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	sess := s.createSessionLocked(device)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.replayEntriesLocked(sess, rs.entries)
	w, err := createSessionWAL(s.walConfig(), device)
	if err != nil {
		return nil, err
	}
	sess.wal = w
	s.resurrections++
	if s.met != nil {
		s.met.resurrections.Inc()
	}
	return sess, nil
}

// evictIdleLocked removes sessions idle past IdleTimeout: the slot frees and
// the device leaves the fleet report, while its WAL segment stays on disk
// for exact resurrection. The caller holds s.mu.
func (s *Server) evictIdleLocked(now time.Time) int {
	if s.opts.IdleTimeout <= 0 {
		return 0
	}
	n := 0
	for name, sess := range s.sessions {
		sess.mu.Lock()
		if now.Sub(sess.lastSeen) >= s.opts.IdleTimeout {
			sess.evicted = true
			if sess.wal != nil {
				sess.wal.Close()
				sess.wal = nil
			}
			delete(s.sessions, name)
			if s.fleet != nil {
				s.fleet.Remove(name)
			}
			n++
		}
		sess.mu.Unlock()
	}
	s.evictions += n
	if s.met != nil {
		s.met.evictions.Add(int64(n))
		s.met.sessionsLive.Set(int64(len(s.sessions)))
	}
	return n
}

// maybeSweepLocked runs the idle sweep at most once per IdleTimeout/2 — an
// opportunistic hook on the ingest path, so eviction needs no background
// goroutine (nothing to leak, nothing to stop on Close).
func (s *Server) maybeSweepLocked() {
	if s.opts.IdleTimeout <= 0 {
		return
	}
	now := s.opts.Clock()
	if now.Sub(s.lastSweep) < s.opts.IdleTimeout/2 {
		return
	}
	s.lastSweep = now
	s.evictIdleLocked(now)
}

// EvictIdle sweeps idle sessions immediately and reports how many were
// evicted — the operator/test hook behind the opportunistic sweep.
func (s *Server) EvictIdle() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictIdleLocked(s.opts.Clock())
}

// Evictions returns the total sessions evicted for idleness.
func (s *Server) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Resurrections returns how many sessions were rebuilt from their segments
// after an eviction (startup recovery not included).
func (s *Server) Resurrections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resurrections
}

// peekSession is the pre-decode admission lookup: the existing session (nil
// if new) and whether a new one may still be created. It also hosts the
// rate-limited idle sweep — every ingest passes through here.
func (s *Server) peekSession(device string) (sess *session, admitNew bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeSweepLocked()
	if existing, ok := s.sessions[device]; ok {
		return existing, true
	}
	return nil, s.opts.MaxSessions <= 0 || len(s.sessions) < s.opts.MaxSessions
}

// canResurrect reports whether a device rejected by the session cap holds a
// durable segment — such a device is admitted anyway (its data is already
// acked; refusing it would orphan the log).
func (s *Server) canResurrect(device string) bool {
	if s.opts.DataDir == "" {
		return false
	}
	segs, err := deviceSegments(s.opts.DataDir, device)
	return err == nil && len(segs) > 0
}

// takeToken consumes one chunk token from the session's rate bucket,
// refilled at MaxChunksPerSec up to the burst. When empty it reports the
// wait until the next token — the 429 Retry-After value.
func (sess *session) takeToken(rate, burst float64, now time.Time) (ok bool, wait time.Duration) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if elapsed := now.Sub(sess.tokensAt).Seconds(); elapsed > 0 {
		sess.tokens = math.Min(burst, sess.tokens+elapsed*rate)
	}
	sess.tokensAt = now
	if sess.tokens >= 1 {
		sess.tokens--
		return true, 0
	}
	return false, time.Duration((1 - sess.tokens) / rate * float64(time.Second))
}

// IngestResponse is the POST /ingest reply: the chunk's contribution and the
// session totals after it.
type IngestResponse struct {
	Device       string `json:"device"`
	ChunkRecords int    `json:"chunk_records"`
	Records      int    `json:"records"`
	Frames       int    `json:"frames"`
	Chunks       int    `json:"chunks"`
	// Duplicate marks a replayed chunk (a retry whose first delivery was
	// already applied): acknowledged without re-ingesting.
	Duplicate bool `json:"duplicate,omitempty"`
}

// decodeChunk decodes one chunk body (either encoding, plain or gzip) into
// records, capping the decoded footprint — shared by the HTTP path and WAL
// recovery so the two ingest identically.
func decodeChunk(body []byte, maxBytes int64) ([]core.Record, int, error) {
	dec, _, err := core.OpenLog(bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("open log stream: %w", err)
	}
	var recs []core.Record
	var decoded int64
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, len(recs), fmt.Errorf("decode record %d: %w", len(recs), err)
		}
		decoded += int64(len(rec.Payload)+len(rec.Key)) + 64
		if decoded > maxBytes {
			return nil, len(recs), errDecodedTooLarge
		}
		recs = append(recs, rec)
	}
	return recs, len(recs), nil
}

// errDecodedTooLarge marks a chunk whose decoded footprint exceeds
// MaxBodyBytes (a decompression bomb) — answered with 413, not 400.
var errDecodedTooLarge = errors.New("decoded footprint exceeds the body limit")

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	device := r.Header.Get("X-MLEXray-Device")
	if device == "" {
		device = r.URL.Query().Get("device")
	}
	if device == "" {
		httpError(w, http.StatusBadRequest, "missing device ID (X-MLEXray-Device header or ?device=)")
		return
	}
	// The chunk sequence number (RemoteSink sets it) makes retries
	// idempotent: a chunk that was applied but whose response got lost is
	// acknowledged, not re-ingested. The stream token scopes the numbering
	// to one upload generation, so a freshly started client (chunk 0 again)
	// appends rather than being dropped as a replay. Uploads without the
	// chunk header (curl) apply unconditionally and leave the generation
	// state alone — they must never disturb an in-flight RemoteSink stream.
	chunkIdx := -1
	if h := r.Header.Get("X-MLEXray-Chunk"); h != "" {
		idx, err := strconv.Atoi(h)
		if err != nil || idx < 0 {
			httpError(w, http.StatusBadRequest, "bad X-MLEXray-Chunk %q", h)
			return
		}
		chunkIdx = idx
	}
	stream := r.Header.Get("X-MLEXray-Stream")

	// Per-request read/write deadlines: a device trickling its body — a
	// slow-loris — times out instead of holding this handler (and, with
	// eviction, its session slot) indefinitely. The response controller
	// errors on writers that cannot set deadlines (httptest recorders);
	// that just means no deadline, the behavior those tests expect.
	rc := http.NewResponseController(w)
	if s.opts.ReadTimeout > 0 {
		_ = rc.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
	}
	if s.opts.WriteTimeout > 0 {
		_ = rc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}

	// Admission control, before the body is read: a new device past the
	// session cap gets 503, a known device past its chunk rate gets 429 —
	// both with Retry-After, both cheap (no decode work spent on a chunk
	// that will not be admitted). A device with a durable segment (evicted
	// earlier) bypasses the cap: its data is already acked.
	sess, admitNew := s.peekSession(device)
	if sess == nil && !admitNew && !s.canResurrect(device) {
		if s.met != nil {
			s.met.capRejects.Inc()
		}
		w.Header().Set("Retry-After", s.opts.sessionRetryAfter())
		httpError(w, http.StatusServiceUnavailable,
			"session cap reached (%d); retry later", s.opts.MaxSessions)
		return
	}
	if sess != nil && s.opts.MaxChunksPerSec > 0 {
		if ok, wait := sess.takeToken(s.opts.MaxChunksPerSec, s.opts.chunkBurst(), s.opts.Clock()); !ok {
			if s.met != nil {
				s.met.rateLimited.Inc()
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(wait.Seconds()))))
			httpError(w, http.StatusTooManyRequests,
				"device %q over its chunk rate (%.3g/s); retry in %v", device, s.opts.MaxChunksPerSec, wait)
			return
		}
	}

	// Read, then decode, the whole chunk before touching the session: a
	// failed chunk is atomic (no partial ingest — safe to retry after a
	// 400/disconnect), the raw wire bytes are what the write-ahead log
	// persists, and the session lock is never held across a network read, so
	// status reads stay live under slow uploads. core.OpenLog sniffs gzip
	// and either log encoding from the leading bytes. MaxBodyBytes caps the
	// decoded footprint too, so a small gzip body cannot balloon into
	// unbounded decoded records (decompression bomb).
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"chunk exceeds the %d-byte limit", mbe.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "read chunk: %v", err)
		return
	}
	recs, nRecs, err := decodeChunk(body, s.opts.MaxBodyBytes)
	if err != nil {
		if errors.Is(err, errDecodedTooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"chunk decodes past the %d-byte limit (record %d)", s.opts.MaxBodyBytes, nRecs)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if sess == nil {
		var err error
		if sess, err = s.getSession(device); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if sess == nil {
			// Lost the admission race to another new device.
			if s.met != nil {
				s.met.capRejects.Inc()
			}
			w.Header().Set("Retry-After", s.opts.sessionRetryAfter())
			httpError(w, http.StatusServiceUnavailable,
				"session cap reached (%d); retry later", s.opts.MaxSessions)
			return
		}
		if s.opts.MaxChunksPerSec > 0 {
			// The session was created for this chunk; it still pays its
			// token (the fresh bucket is full, so this never rejects).
			sess.takeToken(s.opts.MaxChunksPerSec, s.opts.chunkBurst(), s.opts.Clock())
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.evicted {
		// The idle sweep took this session between our lookup and the lock;
		// folding into it would write into dead state. The retry finds the
		// durable segment and resurrects.
		w.Header().Set("Retry-After", s.opts.sessionRetryAfter())
		httpError(w, http.StatusServiceUnavailable,
			"session %q evicted mid-flight; retry", device)
		return
	}
	dup, seqErr := sess.advanceStreamLocked(stream, chunkIdx)
	if seqErr != nil {
		httpError(w, http.StatusConflict, "%v", seqErr)
		return
	}
	if dup {
		// Already applied; the first delivery's response was lost.
		if s.met != nil {
			s.met.dupChunks.Inc()
		}
		writeJSON(w, http.StatusOK, IngestResponse{
			Device: device, Records: sess.records, Frames: len(sess.seenFrames),
			Chunks: sess.chunks, Duplicate: true,
		})
		return
	}
	now := s.opts.Clock()
	if s.opts.DataDir != "" {
		// The whole durable step — segment creation and the append — runs
		// under closeMu's read side: either it completes before Close flips
		// closed (so a successor's recovery replays this ack), or the chunk
		// answers 503 and the client retries against the successor.
		s.closeMu.RLock()
		if s.closed {
			s.closeMu.RUnlock()
			sess.rewindStreamLocked(chunkIdx)
			w.Header().Set("Retry-After", s.opts.sessionRetryAfter())
			httpError(w, http.StatusServiceUnavailable, "collector shutting down; retry")
			return
		}
		if sess.wal == nil {
			walW, err := createSessionWAL(s.walConfig(), device)
			if err != nil {
				s.closeMu.RUnlock()
				sess.rewindStreamLocked(chunkIdx)
				httpError(w, http.StatusInternalServerError, "wal: %v", err)
				return
			}
			sess.wal = walW
		}
		// The write barrier: the chunk is durable before it is acked. A
		// failed append answers 500 without applying — the client retries,
		// and the log and the in-memory state stay in agreement.
		walStart := time.Now()
		err := sess.wal.append(walEntry{stream: stream, chunk: chunkIdx, when: now, body: body})
		s.closeMu.RUnlock()
		s.traces.RecordSince(r.Header.Get(obs.TraceHeader), "wal", device, 0, walStart)
		if err != nil {
			sess.rewindStreamLocked(chunkIdx)
			httpError(w, http.StatusInternalServerError, "wal: %v", err)
			return
		}
	}
	sess.applyChunkLocked(recs, int64(len(body)), now)
	writeJSON(w, http.StatusOK, IngestResponse{
		Device:       device,
		ChunkRecords: len(recs),
		Records:      sess.records,
		Frames:       len(sess.seenFrames),
		Chunks:       sess.chunks,
	})
}

// advanceStreamLocked applies the upload-generation bookkeeping for one
// arriving chunk: duplicate detection, gap rejection, and the sequence
// advance. Headerless chunks (chunkIdx < 0 — curl uploads) apply
// unconditionally and do NOT touch the generation state, so an interleaved
// manual upload cannot reset an active RemoteSink stream's numbering.
// Shared by the HTTP path and WAL recovery.
func (sess *session) advanceStreamLocked(stream string, chunkIdx int) (dup bool, err error) {
	if chunkIdx < 0 {
		return false, nil
	}
	if stream != sess.stream {
		// A new upload generation for this device: chunk numbering restarts,
		// data appends to the session.
		sess.stream = stream
		sess.nextChunk = 0
	}
	if chunkIdx < sess.nextChunk {
		return true, nil
	}
	if chunkIdx > sess.nextChunk {
		return false, fmt.Errorf("chunk %d arrived but chunk %d is next (lost chunk?)", chunkIdx, sess.nextChunk)
	}
	sess.nextChunk++
	return false, nil
}

// rewindStreamLocked undoes advanceStreamLocked after a failed durable
// append: the chunk was not applied, so its retry must be in-sequence again.
func (sess *session) rewindStreamLocked(chunkIdx int) {
	if chunkIdx >= 0 {
		sess.nextChunk = chunkIdx
	}
}

// applyChunkLocked folds one admitted, durable chunk into the session: the
// validator consumes its records and the counters advance. Shared verbatim
// by the HTTP path and WAL recovery — what makes recovery exact.
func (sess *session) applyChunkLocked(recs []core.Record, wireBytes int64, now time.Time) {
	if sess.sv != nil {
		for i := range recs {
			if err := sess.sv.Consume(recs[i]); err != nil && sess.lastErr == "" {
				// A malformed payload poisons exactly the analyses the
				// offline validator would drop; the stream keeps flowing and
				// the status surfaces the defect.
				sess.lastErr = err.Error()
			}
		}
	}
	newFrames := 0
	for i := range recs {
		if !sess.seenFrames[recs[i].Frame] {
			newFrames++
		}
		sess.seenFrames[recs[i].Frame] = true
	}
	if sess.met != nil {
		// Counted here — the path shared by live ingest, startup recovery
		// and resurrection — so a restarted collector's counters equal the
		// distinct chunks it actually holds. The storm harness reconciles
		// client-observed acks against these.
		sess.met.chunks.Inc()
		sess.met.records.Add(int64(len(recs)))
		sess.met.frames.Add(int64(newFrames))
		sess.met.bytes.Add(wireBytes)
	}
	sess.bytes += wireBytes
	sess.records += len(recs)
	sess.chunks++
	sess.lastSeen = now
	if sess.sv != nil {
		sess.sv.AddBytes(int(wireBytes))
	}
}

// DeviceStatus is one session's JSON status.
type DeviceStatus struct {
	Device   string    `json:"device"`
	Records  int       `json:"records"`
	Frames   int       `json:"frames"`
	Bytes    int64     `json:"bytes"`
	Chunks   int       `json:"chunks"`
	LastSeen time.Time `json:"last_seen"`
	Error    string    `json:"error,omitempty"`
	// Report is the device's incremental validation report (GET
	// /devices/{device} only; nil in collection mode).
	Report *core.Report `json:"report,omitempty"`
	// ReportError explains a missing Report (e.g. the stream carries no
	// model outputs yet).
	ReportError string `json:"report_error,omitempty"`
}

func (sess *session) status() DeviceStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return DeviceStatus{
		Device:   sess.device,
		Records:  sess.records,
		Frames:   len(sess.seenFrames),
		Bytes:    sess.bytes,
		Chunks:   sess.chunks,
		LastSeen: sess.lastSeen,
		Error:    sess.lastErr,
	}
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]DeviceStatus, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	device := r.PathValue("device")
	s.mu.Lock()
	sess, ok := s.sessions[device]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown device %q", device)
		return
	}
	st := sess.status()
	if sess.sv != nil {
		// The incremental report: valid mid-upload (a live status) and final
		// after the last chunk, when it equals the offline Validate.
		if rep, err := sess.sv.Report(); err != nil {
			st.ReportError = err.Error()
		} else {
			st.Report = rep
		}
	} else {
		st.ReportError = "no reference log loaded (collection mode)"
	}
	writeJSON(w, http.StatusOK, st)
}

// FleetResponse is the GET /fleet reply.
type FleetResponse struct {
	Devices []string          `json:"devices"`
	Report  *core.FleetReport `json:"report"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	rep, err := s.FleetReport()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	// The device list derives from the report snapshot itself — a separate
	// Devices() read could disagree under a concurrent first upload.
	devices := make([]string, 0, len(rep.Devices))
	for _, dr := range rep.Devices {
		devices = append(devices, dr.Device)
	}
	writeJSON(w, http.StatusOK, FleetResponse{Devices: devices, Report: rep})
}

// handleFleetExport serves the per-session fleet snapshots — the shard half
// of a sharded fleet report. An aggregator gateway fans this endpoint out
// across the ring and recombines the union with core.MergeFleetSnapshots;
// because the snapshots carry accumulator sums and the merge runs the same
// finalizer as a local /fleet, the merged report is byte-identical to one
// collector holding every session.
func (s *Server) handleFleetExport(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		httpError(w, http.StatusConflict, "no reference log loaded (collection mode)")
		return
	}
	snaps := s.fleet.Snapshots()
	if snaps == nil {
		snaps = []core.FleetSessionSnapshot{}
	}
	writeJSON(w, http.StatusOK, snaps)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	// Health probes run the same rate-limited idle sweep as ingest:
	// without it an otherwise-idle collector would keep reporting
	// sessions long past IdleTimeout (the sweep only ran on uploads), so
	// a gateway aggregating per-shard health would overcount. The count,
	// lifecycle totals and the sweep share one critical section — the
	// probe can never see a session both evicted and still counted.
	s.maybeSweepLocked()
	n := len(s.sessions)
	evictions, resurrections := s.evictions, s.resurrections
	s.mu.Unlock()
	body := map[string]any{
		"ok":            true,
		"devices":       n,
		"reference":     s.fleet != nil,
		"durable":       s.opts.DataDir != "",
		"evictions":     evictions,
		"resurrections": resurrections,
	}
	if s.opts.DataDir != "" {
		// Per-session segment counts and on-disk bytes, straight from the
		// directory listing — covers evicted sessions too, and makes segment
		// rotation/compaction observable without touching file contents.
		if stats, err := walStats(s.opts.DataDir); err == nil {
			body["wal"] = stats
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
