// Package ingest is the telemetry ingestion service: the cloud half of the
// ML-EXray architecture, where edge devices upload their per-layer logs for
// fleet-scale deployment validation. It has two sides:
//
//   - Server accepts concurrent log streams over HTTP (POST /ingest),
//     sessionizes them by device ID and validates each stream incrementally
//     through core.StreamValidator as frames arrive — the final per-device
//     and fleet reports are identical to running core.Validate /
//     core.FleetValidate offline on the same records, at bounded memory per
//     session (per-layer tensors fold into rollups and are dropped).
//
//   - RemoteSink is the device side: a core.Sink that streams a replay's
//     telemetry to the collector in chunked, optionally gzip-compressed
//     uploads with retry/backoff, so runner.Replay / runner.Fleet per-device
//     sinks feed the service directly instead of a local file.
//
// Streams may use either log encoding (JSONL or MLXB binary) and may be
// gzip-compressed; the server auto-detects per chunk via core.OpenLog. A
// device's chunks must arrive in stream order (RemoteSink posts them
// sequentially); different devices upload concurrently without coordination.
package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mlexray/internal/core"
)

// ServerOptions configures a collector.
type ServerOptions struct {
	// Ref is the reference log uploads validate against. Without it the
	// server still sessionizes and counts uploads (collection mode), but the
	// report endpoints return 409 Conflict.
	Ref *core.Log
	// Validate tunes the incremental validator (zero value: defaults).
	Validate core.ValidateOptions
	// MaxBodyBytes caps one upload chunk — both its wire size and its
	// decoded record footprint, so a small gzip body cannot balloon into
	// unbounded memory; <= 0 means 1 GiB.
	MaxBodyBytes int64
	// Clock overrides time.Now for the session timestamps (tests).
	Clock func() time.Time
}

// Server is the ingestion collector: an http.Handler exposing
//
//	POST /ingest?device=ID   upload one log chunk (JSONL/MLXB, plain or gzip)
//	GET  /devices            all device session statuses
//	GET  /devices/{device}   one session's status + incremental report
//	GET  /fleet              fleet-wide cross-validation report
//	GET  /healthz            liveness + session count
//
// The device ID comes from the X-MLEXray-Device header or the device query
// parameter. Handlers are safe for concurrent use; chunks of one device are
// serialized per session, different devices ingest in parallel.
type Server struct {
	opts  ServerOptions
	fleet *core.FleetStreamValidator

	mu       sync.Mutex
	sessions map[string]*session

	mux *http.ServeMux
}

// session is one device's upload state. Its mutex serializes chunk ingestion
// (a device's frames must fold in stream order); status reads take it only
// briefly.
type session struct {
	mu      sync.Mutex
	device  string
	sv      *core.StreamValidator // nil in collection mode
	records int
	frames  int
	bytes   int64
	chunks  int
	// stream identifies the current upload generation (X-MLEXray-Stream, a
	// random token per RemoteSink): chunk numbering restarts with each new
	// stream, so a re-run client appends instead of being mistaken for a
	// replay of the previous run's chunks.
	stream string
	// nextChunk is the next expected X-MLEXray-Chunk sequence number within
	// the current stream — what makes RemoteSink retries idempotent.
	nextChunk int
	lastSeen  time.Time
	lastErr   string
}

// NewServer builds a collector. Unset Validate fields default individually
// to core.DefaultValidateOptions — a partially-specified ValidateOptions
// keeps its set fields (pass an empty non-nil Assertions slice to disable
// assertions rather than inherit the built-ins).
func NewServer(opts ServerOptions) (*Server, error) {
	def := core.DefaultValidateOptions()
	if opts.Validate.AgreementThreshold == 0 {
		opts.Validate.AgreementThreshold = def.AgreementThreshold
	}
	if opts.Validate.NRMSEThreshold == 0 {
		opts.Validate.NRMSEThreshold = def.NRMSEThreshold
	}
	if opts.Validate.StragglerFactor == 0 {
		opts.Validate.StragglerFactor = def.StragglerFactor
	}
	if opts.Validate.Assertions == nil {
		opts.Validate.Assertions = def.Assertions
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 30
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	s := &Server{opts: opts, sessions: make(map[string]*session)}
	if opts.Ref != nil {
		fv, err := core.NewFleetStreamValidator(opts.Ref, opts.Validate)
		if err != nil {
			return nil, fmt.Errorf("ingest: reference log: %w", err)
		}
		s.fleet = fv
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /devices", s.handleDevices)
	mux.HandleFunc("GET /devices/{device}", s.handleDevice)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Session returns the named device's session validator (nil until that
// device uploads, or in collection mode) — the programmatic accessor behind
// /devices/{device}.
func (s *Server) Session(device string) *core.StreamValidator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[device]; ok {
		return sess.sv
	}
	return nil
}

// FleetReport cross-validates all device sessions — the programmatic
// accessor behind /fleet.
func (s *Server) FleetReport() (*core.FleetReport, error) {
	if s.fleet == nil {
		return nil, fmt.Errorf("ingest: no reference log loaded (collection mode)")
	}
	return s.fleet.Report()
}

// Devices returns the known device IDs, sorted.
func (s *Server) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Server) getSession(device string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[device]; ok {
		return sess
	}
	sess := &session{device: device}
	if s.fleet != nil {
		sess.sv = s.fleet.Session(device)
	}
	s.sessions[device] = sess
	return sess
}

// IngestResponse is the POST /ingest reply: the chunk's contribution and the
// session totals after it.
type IngestResponse struct {
	Device       string `json:"device"`
	ChunkRecords int    `json:"chunk_records"`
	Records      int    `json:"records"`
	Frames       int    `json:"frames"`
	Chunks       int    `json:"chunks"`
	// Duplicate marks a replayed chunk (a retry whose first delivery was
	// already applied): acknowledged without re-ingesting.
	Duplicate bool `json:"duplicate,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	device := r.Header.Get("X-MLEXray-Device")
	if device == "" {
		device = r.URL.Query().Get("device")
	}
	if device == "" {
		httpError(w, http.StatusBadRequest, "missing device ID (X-MLEXray-Device header or ?device=)")
		return
	}
	// The chunk sequence number (RemoteSink sets it) makes retries
	// idempotent: a chunk that was applied but whose response got lost is
	// acknowledged, not re-ingested. The stream token scopes the numbering
	// to one upload generation, so a freshly started client (chunk 0 again)
	// appends rather than being dropped as a replay. Uploads without the
	// headers (curl) apply unconditionally.
	chunkIdx := -1
	if h := r.Header.Get("X-MLEXray-Chunk"); h != "" {
		idx, err := strconv.Atoi(h)
		if err != nil || idx < 0 {
			httpError(w, http.StatusBadRequest, "bad X-MLEXray-Chunk %q", h)
			return
		}
		chunkIdx = idx
	}
	stream := r.Header.Get("X-MLEXray-Stream")

	// Decode the whole chunk before touching the session: a failed chunk is
	// atomic (no partial ingest — safe to retry after a 400/disconnect), and
	// the session lock is never held across a network read, so status reads
	// stay live under slow uploads. core.OpenLog sniffs gzip and either log
	// encoding from the leading bytes; the counter reads the wire size.
	// MaxBodyBytes caps the decoded footprint too, so a small gzip body
	// cannot balloon into unbounded decoded records (decompression bomb).
	cr := &countingReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)}
	dec, _, err := core.OpenLog(cr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "open log stream: %v", err)
		return
	}
	var recs []core.Record
	maxFrame := -1
	var decoded int64
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "decode record %d: %v", len(recs), err)
			return
		}
		decoded += int64(len(rec.Payload)+len(rec.Key)) + 64
		if decoded > s.opts.MaxBodyBytes {
			httpError(w, http.StatusRequestEntityTooLarge,
				"chunk decodes past the %d-byte limit (record %d)", s.opts.MaxBodyBytes, len(recs))
			return
		}
		if rec.Frame > maxFrame {
			maxFrame = rec.Frame
		}
		recs = append(recs, rec)
	}

	sess := s.getSession(device)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if stream != sess.stream {
		// A new upload generation for this device: chunk numbering restarts,
		// data appends to the session.
		sess.stream = stream
		sess.nextChunk = 0
	}
	if chunkIdx >= 0 {
		if chunkIdx < sess.nextChunk {
			// Already applied; the first delivery's response was lost.
			writeJSON(w, http.StatusOK, IngestResponse{
				Device: device, Records: sess.records, Frames: sess.frames,
				Chunks: sess.chunks, Duplicate: true,
			})
			return
		}
		if chunkIdx > sess.nextChunk {
			httpError(w, http.StatusConflict, "chunk %d arrived but chunk %d is next (lost chunk?)", chunkIdx, sess.nextChunk)
			return
		}
		sess.nextChunk++
	}
	if sess.sv != nil {
		for i := range recs {
			if err := sess.sv.Consume(recs[i]); err != nil && sess.lastErr == "" {
				// A malformed payload poisons exactly the analyses the
				// offline validator would drop; the stream keeps flowing and
				// the status surfaces the defect.
				sess.lastErr = err.Error()
			}
		}
	}
	sess.noteLocked(cr.n, len(recs), maxFrame, s.opts.Clock())
	writeJSON(w, http.StatusOK, IngestResponse{
		Device:       device,
		ChunkRecords: len(recs),
		Records:      sess.records,
		Frames:       sess.frames,
		Chunks:       sess.chunks,
	})
}

// noteLocked folds one applied chunk into the session counters.
func (sess *session) noteLocked(bytes int64, records, maxFrame int, now time.Time) {
	sess.bytes += bytes
	sess.records += records
	sess.chunks++
	if maxFrame+1 > sess.frames {
		sess.frames = maxFrame + 1
	}
	sess.lastSeen = now
	if sess.sv != nil {
		sess.sv.AddBytes(int(bytes))
	}
}

// DeviceStatus is one session's JSON status.
type DeviceStatus struct {
	Device   string    `json:"device"`
	Records  int       `json:"records"`
	Frames   int       `json:"frames"`
	Bytes    int64     `json:"bytes"`
	Chunks   int       `json:"chunks"`
	LastSeen time.Time `json:"last_seen"`
	Error    string    `json:"error,omitempty"`
	// Report is the device's incremental validation report (GET
	// /devices/{device} only; nil in collection mode).
	Report *core.Report `json:"report,omitempty"`
	// ReportError explains a missing Report (e.g. the stream carries no
	// model outputs yet).
	ReportError string `json:"report_error,omitempty"`
}

func (sess *session) status() DeviceStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return DeviceStatus{
		Device:   sess.device,
		Records:  sess.records,
		Frames:   sess.frames,
		Bytes:    sess.bytes,
		Chunks:   sess.chunks,
		LastSeen: sess.lastSeen,
		Error:    sess.lastErr,
	}
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]DeviceStatus, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	device := r.PathValue("device")
	s.mu.Lock()
	sess, ok := s.sessions[device]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown device %q", device)
		return
	}
	st := sess.status()
	if sess.sv != nil {
		// The incremental report: valid mid-upload (a live status) and final
		// after the last chunk, when it equals the offline Validate.
		if rep, err := sess.sv.Report(); err != nil {
			st.ReportError = err.Error()
		} else {
			st.Report = rep
		}
	} else {
		st.ReportError = "no reference log loaded (collection mode)"
	}
	writeJSON(w, http.StatusOK, st)
}

// FleetResponse is the GET /fleet reply.
type FleetResponse struct {
	Devices []string          `json:"devices"`
	Report  *core.FleetReport `json:"report"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	rep, err := s.FleetReport()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, FleetResponse{Devices: s.Devices(), Report: rep})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"devices":   n,
		"reference": s.fleet != nil,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
