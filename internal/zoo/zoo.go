// Package zoo trains the miniature model zoo on the synthetic datasets and
// serves the three deployment-path versions of each model (checkpoint,
// mobile, quant). Training is deterministic; trained checkpoints are cached
// in memory per process and on disk across processes (set MLEXRAY_NO_CACHE
// to disable the disk cache).
package zoo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"math/rand"

	"mlexray/internal/convert"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/pipeline"
	"mlexray/internal/tensor"
	"mlexray/internal/train"
)

// cacheVersion invalidates on-disk checkpoints whenever architectures,
// datasets or training schedules change.
const cacheVersion = "v11"

// Entry bundles the deployment-path versions of one trained model.
type Entry struct {
	Name       string
	Checkpoint *graph.Model // trained, training graph
	Mobile     *graph.Model // folded + fused float graph
	Quant      *graph.Model // post-training full-integer graph
}

type spec struct {
	build func(seed int64) *graph.Model
	train func(m *graph.Model) error
	// fullInteger selects full-integer quantization; text models use
	// dynamic-range instead.
	fullInteger bool
}

var specs = map[string]spec{
	"mobilenetv1-mini": {buildCls(modelsV1), trainClassifier, true},
	"mobilenetv2-mini": {buildCls(modelsV2), trainClassifier, true},
	"mobilenetv3-mini": {buildCls(modelsV3), trainClassifier, true},
	"resnet-mini":      {buildCls(modelsResNet), trainClassifier, true},
	"inception-mini":   {buildCls(modelsInception), trainClassifier, true},
	"densenet-mini":    {buildCls(modelsDenseNet), trainClassifier, true},
	"ssd-mini":         {buildCls(modelsSSD), trainDetector, true},
	"frcnn-mini":       {buildCls(modelsFRCNN), trainDetector, true},
	"deeplab-mini":     {buildCls(modelsDeepLab), trainSegmenter, true},
	"kws-mini-a":       {buildKWS("a", "log-global"), trainSpeech, true},
	"kws-mini-b":       {buildKWS("b", "per-utterance"), trainSpeech, true},
	"nnlm-mini":        {buildText(modelsNNLM), trainText, false},
	"mobilebert-mini":  {buildText(modelsBert), trainText, false},
}

// Names returns all zoo model names.
func Names() []string {
	out := make([]string, 0, len(specs))
	for n := range specs {
		out = append(out, n)
	}
	return out
}

// ClassifierNames lists the Figure 4a / Figure 5 classification zoo in
// presentation order.
func ClassifierNames() []string {
	return []string{
		"mobilenetv1-mini", "mobilenetv2-mini", "mobilenetv3-mini",
		"resnet-mini", "inception-mini", "densenet-mini",
	}
}

var (
	mu      sync.Mutex
	entries = map[string]*Entry{}
)

// Get returns the trained Entry for a zoo model, training it on first use.
func Get(name string) (*Entry, error) {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := entries[name]; ok {
		return e, nil
	}
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown model %q (have %v)", name, Names())
	}
	ck, err := loadOrTrain(name, sp)
	if err != nil {
		return nil, err
	}
	mob, err := convert.Optimize(ck)
	if err != nil {
		return nil, fmt.Errorf("zoo: optimize %s: %w", name, err)
	}
	var q *graph.Model
	if sp.fullInteger {
		calib, err := calibrationInputs(mob)
		if err != nil {
			return nil, err
		}
		q, err = convert.Quantize(mob, calib, convert.DefaultQuantOptions())
		if err != nil {
			return nil, fmt.Errorf("zoo: quantize %s: %w", name, err)
		}
	} else {
		q, err = convert.QuantizeDynamicRange(mob, convert.DefaultQuantOptions())
		if err != nil {
			return nil, fmt.Errorf("zoo: quantize %s: %w", name, err)
		}
	}
	e := &Entry{Name: name, Checkpoint: ck, Mobile: mob, Quant: q}
	entries[name] = e
	return e, nil
}

// MustGet is Get for experiment code where a zoo failure is fatal.
func MustGet(name string) *Entry {
	e, err := Get(name)
	if err != nil {
		panic(err)
	}
	return e
}

func cachePath(name string) string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("mlexray-zoo-%s-%s.mlxm", cacheVersion, name))
}

func loadOrTrain(name string, sp spec) (*graph.Model, error) {
	useDisk := os.Getenv("MLEXRAY_NO_CACHE") == ""
	if useDisk {
		if m, err := graph.LoadFile(cachePath(name)); err == nil && m.Name != "" {
			return m, nil
		}
	}
	m := sp.build(zooSeed(name))
	if err := sp.train(m); err != nil {
		return nil, fmt.Errorf("zoo: train %s: %w", name, err)
	}
	if useDisk {
		if err := graph.SaveFile(m, cachePath(name)); err != nil {
			// Disk cache is best-effort.
			_ = os.Remove(cachePath(name))
		}
	}
	return m, nil
}

// zooSeed derives a stable per-model seed.
func zooSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h%100000 + 7
}

// calibrationInputs builds the representative dataset for quantization: a
// handful of correctly preprocessed samples of the model's task.
func calibrationInputs(m *graph.Model) ([]*tensor.Tensor, error) {
	switch m.Meta.Task {
	case "classification", "detection", "segmentation":
		pp, err := pipeline.CorrectImagePreproc(m.Meta)
		if err != nil {
			return nil, err
		}
		var out []*tensor.Tensor
		switch m.Meta.Task {
		case "classification":
			for _, s := range datasets.SynthImageNet(901, 10) {
				out = append(out, pipeline.PreprocessImage(s.Image, m.Meta, pp))
			}
		case "detection":
			for _, s := range datasets.SynthCOCO(902, 8) {
				out = append(out, pipeline.PreprocessImage(s.Image, m.Meta, pp))
			}
		case "segmentation":
			for _, s := range datasets.SynthSegmentation(903, 8) {
				out = append(out, pipeline.PreprocessImage(s.Image, m.Meta, pp))
			}
		}
		return out, nil
	case "speech":
		pp, err := pipeline.CorrectSpeechPreproc(m.Meta)
		if err != nil {
			return nil, err
		}
		var out []*tensor.Tensor
		for _, s := range datasets.SynthSpeech(904, 8) {
			t, err := pipeline.PreprocessSpeech(s.Wave, pp)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	}
	return nil, fmt.Errorf("zoo: no calibration data for task %q", m.Meta.Task)
}

// ---- training routines ----

const (
	clsTrainN = 240
	clsBatch  = 24
	clsEpochs = 6
	trainSeed = 1234
)

func trainClassifier(m *graph.Model) error {
	pp, err := pipeline.CorrectImagePreproc(m.Meta)
	if err != nil {
		return err
	}
	samples := datasets.SynthImageNet(trainSeed, clsTrainN)
	cfg := train.DefaultConfig()
	cfg.LR = 0.08
	tr, err := train.New(m, clsBatch, cfg)
	if err != nil {
		return err
	}
	// Contrast/brightness jitter, the standard photometric augmentation:
	// it gives the models partial robustness to normalization shifts (the
	// paper's models "somewhat work" under the [0,1]-vs-[-1,1] bug rather
	// than collapsing outright).
	aug := rand.New(rand.NewSource(trainSeed * 31))
	h, w, c := m.Meta.InputH, m.Meta.InputW, m.Meta.InputC
	for epoch := 0; epoch < clsEpochs; epoch++ {
		for off := 0; off+clsBatch <= len(samples); off += clsBatch {
			batch := tensor.New(tensor.F32, clsBatch, h, w, c)
			labels := make([]int32, clsBatch)
			for i := 0; i < clsBatch; i++ {
				s := samples[off+i]
				t := pipeline.PreprocessImage(s.Image, m.Meta, pp)
				a := float32(0.5 + 1.0*aug.Float64())
				b := float32(-0.4 + 0.8*aug.Float64())
				scale := float32(m.Meta.NormHi-m.Meta.NormLo) / 2
				for j, v := range t.F {
					t.F[j] = a*v + b*scale
				}
				copy(batch.F[i*h*w*c:], t.F)
				labels[i] = int32(s.Label)
			}
			if _, err := tr.Step([]*tensor.Tensor{batch}, train.SoftmaxCE("logits", labels)); err != nil {
				return err
			}
		}
	}
	return tr.ExportInto(m)
}

func trainSpeech(m *graph.Model) error {
	pp, err := pipeline.CorrectSpeechPreproc(m.Meta)
	if err != nil {
		return err
	}
	samples := datasets.SynthSpeech(trainSeed, 192)
	const batch = 24
	cfg := train.DefaultConfig()
	cfg.LR = 0.08
	tr, err := train.New(m, batch, cfg)
	if err != nil {
		return err
	}
	h, w := m.Meta.InputH, m.Meta.InputW
	for epoch := 0; epoch < 6; epoch++ {
		for off := 0; off+batch <= len(samples); off += batch {
			bt := tensor.New(tensor.F32, batch, h, w, 1)
			labels := make([]int32, batch)
			for i := 0; i < batch; i++ {
				s := samples[off+i]
				t, err := pipeline.PreprocessSpeech(s.Wave, pp)
				if err != nil {
					return err
				}
				copy(bt.F[i*h*w:], t.F)
				labels[i] = int32(s.Label)
			}
			if _, err := tr.Step([]*tensor.Tensor{bt}, train.SoftmaxCE("logits", labels)); err != nil {
				return err
			}
		}
	}
	return tr.ExportInto(m)
}

func trainText(m *graph.Model) error {
	samples := datasets.SynthIMDB(trainSeed, 256)
	const batch = 32
	cfg := train.DefaultConfig()
	cfg.LR = 0.1
	cfg.WeightDecay = 0
	tr, err := train.New(m, batch, cfg)
	if err != nil {
		return err
	}
	seq := m.Meta.SeqLen
	for epoch := 0; epoch < 8; epoch++ {
		for off := 0; off+batch <= len(samples); off += batch {
			ids := tensor.New(tensor.I32, batch, seq)
			labels := make([]int32, batch)
			for i := 0; i < batch; i++ {
				s := samples[off+i]
				copy(ids.X[i*seq:], s.Tokens)
				labels[i] = int32(s.Label)
			}
			if _, err := tr.Step([]*tensor.Tensor{ids}, train.SoftmaxCE("logits", labels)); err != nil {
				return err
			}
		}
	}
	return tr.ExportInto(m)
}

func trainSegmenter(m *graph.Model) error {
	pp, err := pipeline.CorrectImagePreproc(m.Meta)
	if err != nil {
		return err
	}
	samples := datasets.SynthSegmentation(trainSeed, 96)
	const batch = 12
	cfg := train.DefaultConfig()
	cfg.LR = 0.08
	tr, err := train.New(m, batch, cfg)
	if err != nil {
		return err
	}
	h, w, c := m.Meta.InputH, m.Meta.InputW, m.Meta.InputC
	for epoch := 0; epoch < 6; epoch++ {
		for off := 0; off+batch <= len(samples); off += batch {
			bt := tensor.New(tensor.F32, batch, h, w, c)
			var labels []int32
			for i := 0; i < batch; i++ {
				s := samples[off+i]
				t := pipeline.PreprocessImage(s.Image, m.Meta, pp)
				copy(bt.F[i*h*w*c:], t.F)
				labels = append(labels, s.Labels...)
			}
			if _, err := tr.Step([]*tensor.Tensor{bt}, train.SoftmaxCE("seg_logits", labels)); err != nil {
				return err
			}
		}
	}
	return tr.ExportInto(m)
}

func trainDetector(m *graph.Model) error {
	pp, err := pipeline.CorrectImagePreproc(m.Meta)
	if err != nil {
		return err
	}
	samples := datasets.SynthCOCO(trainSeed, 192)
	const batch = 16
	cfg := train.DefaultConfig()
	cfg.LR = 0.05
	tr, err := train.New(m, batch, cfg)
	if err != nil {
		return err
	}
	anchors := m.Meta.Anchors
	h, w, c := m.Meta.InputH, m.Meta.InputW, m.Meta.InputC
	for epoch := 0; epoch < 8; epoch++ {
		for off := 0; off+batch <= len(samples); off += batch {
			bt := tensor.New(tensor.F32, batch, h, w, c)
			var clsLabels []int32
			var boxTargets []float32
			for i := 0; i < batch; i++ {
				s := samples[off+i]
				t := pipeline.PreprocessImage(s.Image, m.Meta, pp)
				copy(bt.F[i*h*w*c:], t.F)
				gtBoxes := make([][4]float64, len(s.Boxes))
				gtClasses := make([]int, len(s.Boxes))
				for j, gb := range s.Boxes {
					gtBoxes[j] = [4]float64{gb.CY, gb.CX, gb.H, gb.W}
					gtClasses[j] = gb.Class
				}
				cl, bx := matchAnchors(anchors, gtBoxes, gtClasses)
				clsLabels = append(clsLabels, cl...)
				boxTargets = append(boxTargets, bx...)
			}
			loss := train.SSDLoss("cls_logits", "box_preds", clsLabels, boxTargets, 1.0)
			if _, err := tr.Step([]*tensor.Tensor{bt}, loss); err != nil {
				return err
			}
		}
	}
	return tr.ExportInto(m)
}
