package zoo

import (
	"testing"

	"mlexray/internal/datasets"
	"mlexray/internal/metrics"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
)

// evalClassifier measures top-1 accuracy of a model version through the
// correct pipeline.
func evalClassifier(t *testing.T, e *Entry, which string, n int) float64 {
	t.Helper()
	m := e.Mobile
	if which == "quant" {
		m = e.Quant
	}
	cl, err := pipeline.NewClassifier(m, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, n)
	preds := make([]int, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		p, _, err := cl.Classify(s.Image)
		if err != nil {
			t.Fatal(err)
		}
		preds[i], labels[i] = p, s.Label
	}
	acc, err := metrics.Top1(preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestZooTrainsAccurateClassifier(t *testing.T) {
	// One representative model exercises the full train->convert->quantize
	// path; the remaining classifiers are covered by the experiment suite.
	e, err := Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	acc := evalClassifier(t, e, "mobile", 100)
	if acc < 0.8 {
		t.Errorf("mobilenetv2-mini mobile accuracy = %.2f, want >= 0.8", acc)
	}
	// Quantized with *fixed* kernels should be within a few points.
	accQ := evalClassifier(t, e, "quant", 100)
	if accQ < acc-0.15 {
		t.Errorf("quantized accuracy %.2f fell too far from float %.2f", accQ, acc)
	}
}

func TestZooSpeechModel(t *testing.T) {
	e, err := Get("kws-mini-a")
	if err != nil {
		t.Fatal(err)
	}
	sr, err := pipeline.NewSpeechRecognizer(e.Mobile, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthSpeech(5556, 64)
	hit := 0
	for _, s := range samples {
		p, _, err := sr.Recognize(s.Wave)
		if err != nil {
			t.Fatal(err)
		}
		if p == s.Label {
			hit++
		}
	}
	if acc := float64(hit) / float64(len(samples)); acc < 0.85 {
		t.Errorf("kws accuracy = %.2f, want >= 0.85", acc)
	}
}

func TestZooTextModel(t *testing.T) {
	e, err := Get("nnlm-mini")
	if err != nil {
		t.Fatal(err)
	}
	tc, err := pipeline.NewTextClassifier(e.Mobile, datasets.TokenizeText, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthIMDB(5557, 80)
	hit := 0
	for _, s := range samples {
		p, _, err := tc.ClassifyText(s.Text)
		if err != nil {
			t.Fatal(err)
		}
		if p == s.Label {
			hit++
		}
	}
	if acc := float64(hit) / float64(len(samples)); acc < 0.9 {
		t.Errorf("nnlm accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestZooUnknownModel(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("Get accepted unknown model")
	}
}
