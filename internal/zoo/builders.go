package zoo

import (
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/models"
)

// Thin adapters binding models builders into the spec table.

func modelsV1(seed int64) *graph.Model        { return models.MobileNetV1Mini(seed) }
func modelsV2(seed int64) *graph.Model        { return models.MobileNetV2Mini(seed) }
func modelsV3(seed int64) *graph.Model        { return models.MobileNetV3Mini(seed) }
func modelsResNet(seed int64) *graph.Model    { return models.ResNetMini(seed) }
func modelsInception(seed int64) *graph.Model { return models.InceptionMini(seed) }
func modelsDenseNet(seed int64) *graph.Model  { return models.DenseNetMini(seed) }
func modelsSSD(seed int64) *graph.Model       { return models.SSDMini(seed) }
func modelsFRCNN(seed int64) *graph.Model     { return models.FRCNNMini(seed) }
func modelsDeepLab(seed int64) *graph.Model   { return models.DeepLabMini(seed) }

func buildCls(f func(int64) *graph.Model) func(int64) *graph.Model { return f }

func buildKWS(variant, norm string) func(int64) *graph.Model {
	return func(seed int64) *graph.Model { return models.KWSMini(seed, variant, norm) }
}

func buildText(f func(seed int64, seqLen, vocab int) *graph.Model) func(int64) *graph.Model {
	return func(seed int64) *graph.Model {
		return f(seed, datasets.TextSeqLen, datasets.TextVocabSize)
	}
}

func modelsNNLM(seed int64, seqLen, vocab int) *graph.Model {
	return models.NNLMMini(seed, seqLen, vocab)
}

func modelsBert(seed int64, seqLen, vocab int) *graph.Model {
	return models.MobileBertMini(seed, seqLen, vocab)
}

func matchAnchors(anchors [][4]float64, gtBoxes [][4]float64, gtClasses []int) ([]int32, []float32) {
	return models.MatchAnchors(anchors, gtBoxes, gtClasses)
}
