package train

import (
	"fmt"
	"math"

	"mlexray/internal/tensor"
)

// SoftmaxCE returns a loss function computing mean softmax cross-entropy
// between the named logits tensor ([N, C] or [N, ..., C], class axis last)
// and integer labels (flattened row-major over the leading axes). The
// gradient is taken directly on the logits — the numerically stable fused
// form — so the model's trailing Softmax node (kept for deployment parity)
// is bypassed during training.
func SoftmaxCE(logitsName string, labels []int32) LossFn {
	return func(get func(string) (*tensor.Tensor, error)) (float64, map[string]*tensor.Tensor, error) {
		logits, err := get(logitsName)
		if err != nil {
			return 0, nil, err
		}
		c := logits.Shape[len(logits.Shape)-1]
		rows := logits.Len() / c
		if len(labels) != rows {
			return 0, nil, fmt.Errorf("train: %d labels for %d logit rows", len(labels), rows)
		}
		grad := tensor.New(tensor.F32, logits.Shape...)
		var loss float64
		valid := 0
		for r := 0; r < rows; r++ {
			lbl := labels[r]
			if lbl < 0 {
				continue // ignore index (e.g. unlabeled pixels)
			}
			valid++
		}
		if valid == 0 {
			return 0, nil, fmt.Errorf("train: no valid labels")
		}
		inv := 1 / float64(valid)
		for r := 0; r < rows; r++ {
			lbl := labels[r]
			if lbl < 0 {
				continue
			}
			base := r * c
			mx := logits.F[base]
			for i := 1; i < c; i++ {
				if logits.F[base+i] > mx {
					mx = logits.F[base+i]
				}
			}
			var sum float64
			for i := 0; i < c; i++ {
				sum += math.Exp(float64(logits.F[base+i] - mx))
			}
			logZ := math.Log(sum) + float64(mx)
			loss += (logZ - float64(logits.F[base+int(lbl)])) * inv
			for i := 0; i < c; i++ {
				p := math.Exp(float64(logits.F[base+i]) - logZ)
				g := p * inv
				if int32(i) == lbl {
					g -= inv
				}
				grad.F[base+i] += float32(g)
			}
		}
		return loss, map[string]*tensor.Tensor{logitsName: grad}, nil
	}
}

// SmoothL1 computes the Huber loss gradient element-wise; used by the SSD
// box-regression head.
func smoothL1(pred, target float32) (loss, grad float64) {
	d := float64(pred - target)
	if math.Abs(d) < 1 {
		return 0.5 * d * d, d
	}
	if d > 0 {
		return math.Abs(d) - 0.5, 1
	}
	return math.Abs(d) - 0.5, -1
}

// WeightedSoftmaxCE is SoftmaxCE with a per-row weight, the tool for
// class-imbalanced objectives (SSD anchors are overwhelmingly background).
func WeightedSoftmaxCE(logitsName string, labels []int32, weights []float64) LossFn {
	return func(get func(string) (*tensor.Tensor, error)) (float64, map[string]*tensor.Tensor, error) {
		logits, err := get(logitsName)
		if err != nil {
			return 0, nil, err
		}
		c := logits.Shape[len(logits.Shape)-1]
		rows := logits.Len() / c
		if len(labels) != rows || len(weights) != rows {
			return 0, nil, fmt.Errorf("train: %d labels / %d weights for %d logit rows", len(labels), len(weights), rows)
		}
		grad := tensor.New(tensor.F32, logits.Shape...)
		var totalW float64
		for r := 0; r < rows; r++ {
			if labels[r] >= 0 {
				totalW += weights[r]
			}
		}
		if totalW == 0 {
			return 0, nil, fmt.Errorf("train: no labeled rows")
		}
		var loss float64
		for r := 0; r < rows; r++ {
			lbl := labels[r]
			if lbl < 0 {
				continue
			}
			w := weights[r] / totalW
			base := r * c
			mx := logits.F[base]
			for i := 1; i < c; i++ {
				if logits.F[base+i] > mx {
					mx = logits.F[base+i]
				}
			}
			var sum float64
			for i := 0; i < c; i++ {
				sum += math.Exp(float64(logits.F[base+i] - mx))
			}
			logZ := math.Log(sum) + float64(mx)
			loss += (logZ - float64(logits.F[base+int(lbl)])) * w
			for i := 0; i < c; i++ {
				p := math.Exp(float64(logits.F[base+i]) - logZ)
				g := p * w
				if int32(i) == lbl {
					g -= w
				}
				grad.F[base+i] += float32(g)
			}
		}
		return loss, map[string]*tensor.Tensor{logitsName: grad}, nil
	}
}

// SSDLoss combines per-anchor classification cross-entropy (with positive
// anchors up-weighted to counter the background imbalance) and smooth-L1 box
// regression on positive anchors — the standard single-shot-detector
// objective. clsLabels holds one class per anchor row (0 = background);
// boxTargets holds [cy, cx, h, w] offsets for positive anchors.
func SSDLoss(clsName, boxName string, clsLabels []int32, boxTargets []float32, boxWeight float64) LossFn {
	weights := make([]float64, len(clsLabels))
	for i, l := range clsLabels {
		if l > 0 {
			weights[i] = 8 // positive anchors carry ~8x weight
		} else {
			weights[i] = 1
		}
	}
	ce := WeightedSoftmaxCE(clsName, clsLabels, weights)
	return func(get func(string) (*tensor.Tensor, error)) (float64, map[string]*tensor.Tensor, error) {
		loss, grads, err := ce(get)
		if err != nil {
			return 0, nil, err
		}
		boxes, err := get(boxName)
		if err != nil {
			return 0, nil, err
		}
		if boxes.Len() != len(boxTargets) {
			return 0, nil, fmt.Errorf("train: %d box targets for %d predictions", len(boxTargets), boxes.Len())
		}
		grad := tensor.New(tensor.F32, boxes.Shape...)
		pos := 0
		for a := 0; a < len(clsLabels); a++ {
			if clsLabels[a] > 0 {
				pos++
			}
		}
		if pos > 0 {
			inv := boxWeight / float64(pos)
			for a := 0; a < len(clsLabels); a++ {
				if clsLabels[a] <= 0 {
					continue
				}
				for j := 0; j < 4; j++ {
					i := a*4 + j
					l, g := smoothL1(boxes.F[i], boxTargets[i])
					loss += l * inv
					grad.F[i] = float32(g * inv)
				}
			}
		}
		grads[boxName] = grad
		return loss, grads, nil
	}
}
