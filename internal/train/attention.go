package train

import (
	"math"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// backSelfAttention is the full multi-head self-attention backward pass.
// Rather than caching the Q/K/V projections and attention probabilities from
// the forward pass, it recomputes them from the cached layer input — at the
// mini-model scale this trades a little compute for much less memory.
func (tr *Trainer) backSelfAttention(n *graph.Node, dOut *tensor.Tensor) error {
	x := tr.acts[n.Inputs[0]]
	dX := tr.grad(n.Inputs[0])
	weights := make([][]float32, 4) // q, k, v, o
	biases := make([][]float32, 4)
	dWeights := make([][]float32, 4)
	dBiases := make([][]float32, 4)
	for i := 0; i < 4; i++ {
		weights[i] = tr.acts[n.Inputs[1+2*i]].F
		biases[i] = tr.acts[n.Inputs[2+2*i]].F
		dWeights[i] = tr.grad(n.Inputs[1+2*i]).F
		dBiases[i] = tr.grad(n.Inputs[2+2*i]).F
	}
	nb, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	h := n.Attrs.NumHeads
	dh := d / h
	scale := 1 / math.Sqrt(float64(dh))

	q := make([]float64, t*d)
	k := make([]float64, t*d)
	v := make([]float64, t*d)
	attnA := make([]float64, t*d) // pre-Wo attention output
	probs := make([]float64, h*t*t)
	dQ := make([]float64, t*d)
	dK := make([]float64, t*d)
	dV := make([]float64, t*d)
	dA := make([]float64, t*d)
	dP := make([]float64, t)
	scores := make([]float64, t)

	project := func(dst []float64, xb []float32, w []float32, b []float32) {
		for ti := 0; ti < t; ti++ {
			for o := 0; o < d; o++ {
				acc := float64(b[o])
				for i := 0; i < d; i++ {
					acc += float64(xb[ti*d+i]) * float64(w[o*d+i])
				}
				dst[ti*d+o] = acc
			}
		}
	}

	for b := 0; b < nb; b++ {
		xb := x.F[b*t*d : (b+1)*t*d]
		dOutB := dOut.F[b*t*d : (b+1)*t*d]

		// ---- recompute forward ----
		project(q, xb, weights[0], biases[0])
		project(k, xb, weights[1], biases[1])
		project(v, xb, weights[2], biases[2])
		for head := 0; head < h; head++ {
			off := head * dh
			for ti := 0; ti < t; ti++ {
				mx := math.Inf(-1)
				for tj := 0; tj < t; tj++ {
					var s float64
					for e := 0; e < dh; e++ {
						s += q[ti*d+off+e] * k[tj*d+off+e]
					}
					s *= scale
					scores[tj] = s
					if s > mx {
						mx = s
					}
				}
				var sum float64
				for tj := 0; tj < t; tj++ {
					scores[tj] = math.Exp(scores[tj] - mx)
					sum += scores[tj]
				}
				for tj := 0; tj < t; tj++ {
					probs[(head*t+ti)*t+tj] = scores[tj] / sum
				}
				for e := 0; e < dh; e++ {
					var acc float64
					for tj := 0; tj < t; tj++ {
						acc += probs[(head*t+ti)*t+tj] * v[tj*d+off+e]
					}
					attnA[ti*d+off+e] = acc
				}
			}
		}

		// ---- backward through the output projection ----
		for i := range dA {
			dA[i] = 0
		}
		for ti := 0; ti < t; ti++ {
			for o := 0; o < d; o++ {
				g := float64(dOutB[ti*d+o])
				if g == 0 {
					continue
				}
				dBiases[3][o] += float32(g)
				for i := 0; i < d; i++ {
					dWeights[3][o*d+i] += float32(g * attnA[ti*d+i])
					dA[ti*d+i] += g * float64(weights[3][o*d+i])
				}
			}
		}

		// ---- backward through attention per head ----
		for i := range dQ {
			dQ[i], dK[i], dV[i] = 0, 0, 0
		}
		for head := 0; head < h; head++ {
			off := head * dh
			for ti := 0; ti < t; ti++ {
				// dP[tj] = sum_e dA[ti,e] * V[tj,e]; dV += P * dA.
				var dotDP float64
				for tj := 0; tj < t; tj++ {
					var s float64
					for e := 0; e < dh; e++ {
						s += dA[ti*d+off+e] * v[tj*d+off+e]
					}
					dP[tj] = s
				}
				for tj := 0; tj < t; tj++ {
					p := probs[(head*t+ti)*t+tj]
					for e := 0; e < dh; e++ {
						dV[tj*d+off+e] += p * dA[ti*d+off+e]
					}
					dotDP += dP[tj] * p
				}
				// Softmax backward: dS = P * (dP - sum(dP*P)).
				for tj := 0; tj < t; tj++ {
					p := probs[(head*t+ti)*t+tj]
					dS := p * (dP[tj] - dotDP) * scale
					for e := 0; e < dh; e++ {
						dQ[ti*d+off+e] += dS * k[tj*d+off+e]
						dK[tj*d+off+e] += dS * q[ti*d+off+e]
					}
				}
			}
		}

		// ---- backward through the Q/K/V projections ----
		backProject := func(dProj []float64, wIdx int) {
			w := weights[wIdx]
			dw := dWeights[wIdx]
			db := dBiases[wIdx]
			for ti := 0; ti < t; ti++ {
				for o := 0; o < d; o++ {
					g := dProj[ti*d+o]
					if g == 0 {
						continue
					}
					db[o] += float32(g)
					for i := 0; i < d; i++ {
						dw[o*d+i] += float32(g * float64(xb[ti*d+i]))
						dX.F[b*t*d+ti*d+i] += float32(g * float64(w[o*d+i]))
					}
				}
			}
		}
		backProject(dQ, 0)
		backProject(dK, 1)
		backProject(dV, 2)
	}
	return nil
}
