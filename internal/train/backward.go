package train

import (
	"fmt"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// backwardNode dispatches the backward pass for one node. Gradients are
// accumulated (+=) into input-tensor gradient buffers, so shared tensors
// (residual branches) sum naturally.
func (tr *Trainer) backwardNode(ni int, n *graph.Node) error {
	dOut := tr.grads[n.Outputs[0]]
	if dOut == nil {
		return nil // non-float output; nothing flows
	}
	switch n.Op {
	case graph.OpConv2D:
		return tr.backConv(n, dOut)
	case graph.OpDepthwiseConv2D:
		return tr.backDepthwise(n, dOut)
	case graph.OpDense:
		return tr.backDense(n, dOut)
	case graph.OpAvgPool2D:
		return tr.backAvgPool(n, dOut)
	case graph.OpMaxPool2D:
		return tr.backMaxPool(n, dOut)
	case graph.OpMean:
		return tr.backMean(n, dOut)
	case graph.OpPad:
		return tr.backPad(n, dOut)
	case graph.OpAdd:
		return tr.backAdd(n, dOut)
	case graph.OpMul:
		return tr.backMul(n, dOut)
	case graph.OpConcat:
		return tr.backConcat(n, dOut)
	case graph.OpReLU:
		return tr.backUnaryFromOutput(n, dOut, func(out float32) float32 {
			if out > 0 {
				return 1
			}
			return 0
		})
	case graph.OpReLU6:
		return tr.backUnaryFromOutput(n, dOut, func(out float32) float32 {
			if out > 0 && out < 6 {
				return 1
			}
			return 0
		})
	case graph.OpSigmoid:
		return tr.backUnaryFromOutput(n, dOut, func(out float32) float32 {
			return out * (1 - out)
		})
	case graph.OpHardSigmoid:
		return tr.backUnaryFromInput(n, dOut, func(x float32) float32 {
			if x <= -3 || x >= 3 {
				return 0
			}
			return 1.0 / 6.0
		})
	case graph.OpHardSwish:
		return tr.backUnaryFromInput(n, dOut, func(x float32) float32 {
			if x <= -3 {
				return 0
			}
			if x >= 3 {
				return 1
			}
			return (2*x + 3) / 6
		})
	case graph.OpSoftmax:
		return tr.backSoftmax(n, dOut)
	case graph.OpBatchNorm:
		return tr.backBatchNorm(ni, n, dOut)
	case graph.OpLayerNorm:
		return tr.backLayerNorm(n, dOut)
	case graph.OpReshape:
		din := tr.grad(n.Inputs[0])
		for i := range dOut.F {
			din.F[i] += dOut.F[i]
		}
		return nil
	case graph.OpEmbedding:
		return tr.backEmbedding(n, dOut)
	case graph.OpSelfAttention:
		return tr.backSelfAttention(n, dOut)
	case graph.OpResizeBilinear, graph.OpQuantize, graph.OpDequantize:
		return fmt.Errorf("train: %v has no backward pass (deployment-only op)", n.Op)
	}
	return fmt.Errorf("train: no backward for %v", n.Op)
}

func (tr *Trainer) backConv(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	w := tr.acts[n.Inputs[1]]
	dIn := tr.grad(n.Inputs[0])
	dW := tr.grad(n.Inputs[1])
	var dB *tensor.Tensor
	if len(n.Inputs) >= 3 {
		dB = tr.grad(n.Inputs[2])
	}
	a := n.Attrs
	nb, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	oh, ow := dOut.Shape[1], dOut.Shape[2]
	dh, dw2 := max1(a.DilationH), max1(a.DilationW)
	for b := 0; b < nb; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * oc
				for co := 0; co < oc; co++ {
					g := dOut.F[outBase+co]
					if g == 0 {
						continue
					}
					if dB != nil {
						dB.F[co] += g
					}
					for ky := 0; ky < kh; ky++ {
						iy := oy*a.StrideH - a.PadT + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*a.StrideW - a.PadL + kx*dw2
							if ix < 0 || ix >= iw {
								continue
							}
							inBase := ((b*ih+iy)*iw + ix) * ic
							wBase := ((co*kh+ky)*kw + kx) * ic
							for ci := 0; ci < ic; ci++ {
								dW.F[wBase+ci] += g * in.F[inBase+ci]
								dIn.F[inBase+ci] += g * w.F[wBase+ci]
							}
						}
					}
				}
			}
		}
	}
	return nil
}

func (tr *Trainer) backDepthwise(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	w := tr.acts[n.Inputs[1]]
	dIn := tr.grad(n.Inputs[0])
	dW := tr.grad(n.Inputs[1])
	var dB *tensor.Tensor
	if len(n.Inputs) >= 3 {
		dB = tr.grad(n.Inputs[2])
	}
	a := n.Attrs
	mult := max1(a.DepthMultiplier)
	nb, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, oc := w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := dOut.Shape[1], dOut.Shape[2]
	dh, dw2 := max1(a.DilationH), max1(a.DilationW)
	for b := 0; b < nb; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * oc
				for co := 0; co < oc; co++ {
					g := dOut.F[outBase+co]
					if g == 0 {
						continue
					}
					ci := co / mult
					if dB != nil {
						dB.F[co] += g
					}
					for ky := 0; ky < kh; ky++ {
						iy := oy*a.StrideH - a.PadT + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*a.StrideW - a.PadL + kx*dw2
							if ix < 0 || ix >= iw {
								continue
							}
							inOff := ((b*ih+iy)*iw+ix)*ic + ci
							wOff := (ky*kw+kx)*oc + co
							dW.F[wOff] += g * in.F[inOff]
							dIn.F[inOff] += g * w.F[wOff]
						}
					}
				}
			}
		}
	}
	return nil
}

func (tr *Trainer) backDense(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	w := tr.acts[n.Inputs[1]]
	dIn := tr.grad(n.Inputs[0])
	dW := tr.grad(n.Inputs[1])
	var dB *tensor.Tensor
	if len(n.Inputs) >= 3 {
		dB = tr.grad(n.Inputs[2])
	}
	nb := in.Shape[0]
	inC := in.Len() / nb
	outC := w.Shape[0]
	for b := 0; b < nb; b++ {
		inBase := b * inC
		for co := 0; co < outC; co++ {
			g := dOut.F[b*outC+co]
			if g == 0 {
				continue
			}
			if dB != nil {
				dB.F[co] += g
			}
			wBase := co * inC
			for k := 0; k < inC; k++ {
				dW.F[wBase+k] += g * in.F[inBase+k]
				dIn.F[inBase+k] += g * w.F[wBase+k]
			}
		}
	}
	return nil
}

func (tr *Trainer) backAvgPool(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	dIn := tr.grad(n.Inputs[0])
	a := n.Attrs
	nb, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := dOut.Shape[1], dOut.Shape[2]
	for b := 0; b < nb; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Count valid taps first (matches forward's divide-by-valid).
				count := 0
				for ky := 0; ky < a.KernelH; ky++ {
					iy := oy*a.StrideH - a.PadT + ky
					if iy < 0 || iy >= ih {
						continue
					}
					for kx := 0; kx < a.KernelW; kx++ {
						ix := ox*a.StrideW - a.PadL + kx
						if ix >= 0 && ix < iw {
							count++
						}
					}
				}
				if count == 0 {
					continue
				}
				outBase := ((b*oh+oy)*ow + ox) * ch
				for ky := 0; ky < a.KernelH; ky++ {
					iy := oy*a.StrideH - a.PadT + ky
					if iy < 0 || iy >= ih {
						continue
					}
					for kx := 0; kx < a.KernelW; kx++ {
						ix := ox*a.StrideW - a.PadL + kx
						if ix < 0 || ix >= iw {
							continue
						}
						inBase := ((b*ih+iy)*iw + ix) * ch
						for cc := 0; cc < ch; cc++ {
							dIn.F[inBase+cc] += dOut.F[outBase+cc] / float32(count)
						}
					}
				}
			}
		}
	}
	return nil
}

func (tr *Trainer) backMaxPool(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	dIn := tr.grad(n.Inputs[0])
	a := n.Attrs
	nb, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := dOut.Shape[1], dOut.Shape[2]
	for b := 0; b < nb; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * ch
				for cc := 0; cc < ch; cc++ {
					bestOff := -1
					var bestV float32
					for ky := 0; ky < a.KernelH; ky++ {
						iy := oy*a.StrideH - a.PadT + ky
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ox*a.StrideW - a.PadL + kx
							if ix < 0 || ix >= iw {
								continue
							}
							off := ((b*ih+iy)*iw+ix)*ch + cc
							if bestOff < 0 || in.F[off] > bestV {
								bestOff = off
								bestV = in.F[off]
							}
						}
					}
					if bestOff >= 0 {
						dIn.F[bestOff] += dOut.F[outBase+cc]
					}
				}
			}
		}
	}
	return nil
}

func (tr *Trainer) backMean(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	dIn := tr.grad(n.Inputs[0])
	nb, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	inv := 1 / float32(ih*iw)
	for b := 0; b < nb; b++ {
		for y := 0; y < ih; y++ {
			for x := 0; x < iw; x++ {
				base := ((b*ih+y)*iw + x) * ch
				for cc := 0; cc < ch; cc++ {
					dIn.F[base+cc] += dOut.F[b*ch+cc] * inv
				}
			}
		}
	}
	return nil
}

func (tr *Trainer) backPad(n *graph.Node, dOut *tensor.Tensor) error {
	in := tr.acts[n.Inputs[0]]
	dIn := tr.grad(n.Inputs[0])
	rank := len(in.Shape)
	idx := make([]int, rank)
	outShape := tr.m.Tensors[n.Outputs[0]].Shape
	total := in.Len()
	for off := 0; off < total; off++ {
		dst := 0
		for d := 0; d < rank; d++ {
			dst = dst*outShape[d] + idx[d] + n.Attrs.Paddings[d][0]
		}
		dIn.F[off] += dOut.F[dst]
		for d := rank - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < in.Shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return nil
}

func (tr *Trainer) backAdd(n *graph.Node, dOut *tensor.Tensor) error {
	dA := tr.grad(n.Inputs[0])
	dB := tr.grad(n.Inputs[1])
	a := tr.acts[n.Inputs[0]]
	b := tr.acts[n.Inputs[1]]
	if a.Len() == b.Len() {
		for i := range dOut.F {
			dA.F[i] += dOut.F[i]
			dB.F[i] += dOut.F[i]
		}
		return nil
	}
	// Broadcast [N,H,W,C] + [N,C]: the small operand sums over spatial.
	nb, h, w, ch := a.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3]
	for bi := 0; bi < nb; bi++ {
		for i := 0; i < h*w; i++ {
			base := (bi*h*w + i) * ch
			for cc := 0; cc < ch; cc++ {
				dA.F[base+cc] += dOut.F[base+cc]
				dB.F[bi*ch+cc] += dOut.F[base+cc]
			}
		}
	}
	return nil
}

func (tr *Trainer) backMul(n *graph.Node, dOut *tensor.Tensor) error {
	dA := tr.grad(n.Inputs[0])
	dB := tr.grad(n.Inputs[1])
	a := tr.acts[n.Inputs[0]]
	b := tr.acts[n.Inputs[1]]
	if a.Len() == b.Len() {
		for i := range dOut.F {
			dA.F[i] += dOut.F[i] * b.F[i]
			dB.F[i] += dOut.F[i] * a.F[i]
		}
		return nil
	}
	nb, h, w, ch := a.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3]
	for bi := 0; bi < nb; bi++ {
		for i := 0; i < h*w; i++ {
			base := (bi*h*w + i) * ch
			for cc := 0; cc < ch; cc++ {
				g := dOut.F[base+cc]
				dA.F[base+cc] += g * b.F[bi*ch+cc]
				dB.F[bi*ch+cc] += g * a.F[base+cc]
			}
		}
	}
	return nil
}

func (tr *Trainer) backConcat(n *graph.Node, dOut *tensor.Tensor) error {
	axis := n.Attrs.Axis
	outShape := tr.m.Tensors[n.Outputs[0]].Shape
	outer := 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	inner := 1
	for d := axis + 1; d < len(outShape); d++ {
		inner *= outShape[d]
	}
	axisOff := 0
	for _, id := range n.Inputs {
		in := tr.acts[id]
		dIn := tr.grad(id)
		inAxis := in.Shape[axis]
		for o := 0; o < outer; o++ {
			for a := 0; a < inAxis; a++ {
				srcBase := (o*outShape[axis] + axisOff + a) * inner
				dstBase := (o*inAxis + a) * inner
				for i := 0; i < inner; i++ {
					dIn.F[dstBase+i] += dOut.F[srcBase+i]
				}
			}
		}
		axisOff += inAxis
	}
	return nil
}

func (tr *Trainer) backUnaryFromOutput(n *graph.Node, dOut *tensor.Tensor, deriv func(out float32) float32) error {
	out := tr.acts[n.Outputs[0]]
	dIn := tr.grad(n.Inputs[0])
	for i := range dOut.F {
		dIn.F[i] += dOut.F[i] * deriv(out.F[i])
	}
	return nil
}

func (tr *Trainer) backUnaryFromInput(n *graph.Node, dOut *tensor.Tensor, deriv func(x float32) float32) error {
	in := tr.acts[n.Inputs[0]]
	dIn := tr.grad(n.Inputs[0])
	for i := range dOut.F {
		dIn.F[i] += dOut.F[i] * deriv(in.F[i])
	}
	return nil
}

func (tr *Trainer) backSoftmax(n *graph.Node, dOut *tensor.Tensor) error {
	out := tr.acts[n.Outputs[0]]
	dIn := tr.grad(n.Inputs[0])
	last := out.Shape[len(out.Shape)-1]
	rows := out.Len() / last
	for r := 0; r < rows; r++ {
		base := r * last
		var dot float64
		for i := 0; i < last; i++ {
			dot += float64(dOut.F[base+i]) * float64(out.F[base+i])
		}
		for i := 0; i < last; i++ {
			dIn.F[base+i] += out.F[base+i] * (dOut.F[base+i] - float32(dot))
		}
	}
	return nil
}

func (tr *Trainer) backBatchNorm(ni int, n *graph.Node, dOut *tensor.Tensor) error {
	st, ok := tr.bnCache[ni]
	if !ok {
		return fmt.Errorf("train: batchnorm backward without cached forward state")
	}
	gamma := tr.acts[n.Inputs[1]]
	dIn := tr.grad(n.Inputs[0])
	dGamma := tr.grad(n.Inputs[1])
	dBeta := tr.grad(n.Inputs[2])
	x := tr.acts[n.Inputs[0]]
	ch := x.Shape[len(x.Shape)-1]
	rows := x.Len() / ch
	nf := float64(rows)
	for c := 0; c < ch; c++ {
		var sumDy, sumDyXhat float64
		for r := 0; r < rows; r++ {
			dy := float64(dOut.F[r*ch+c])
			sumDy += dy
			sumDyXhat += dy * float64(st.xhat[r*ch+c])
		}
		dGamma.F[c] += float32(sumDyXhat)
		dBeta.F[c] += float32(sumDy)
		g := float64(gamma.F[c]) * st.invStd[c]
		for r := 0; r < rows; r++ {
			dy := float64(dOut.F[r*ch+c])
			xh := float64(st.xhat[r*ch+c])
			dIn.F[r*ch+c] += float32(g * (dy - sumDy/nf - xh*sumDyXhat/nf))
		}
	}
	return nil
}

func (tr *Trainer) backLayerNorm(n *graph.Node, dOut *tensor.Tensor) error {
	x := tr.acts[n.Inputs[0]]
	gamma := tr.acts[n.Inputs[1]]
	dIn := tr.grad(n.Inputs[0])
	dGamma := tr.grad(n.Inputs[1])
	dBeta := tr.grad(n.Inputs[2])
	eps := n.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	d := x.Shape[len(x.Shape)-1]
	rows := x.Len() / d
	nf := float64(d)
	for r := 0; r < rows; r++ {
		base := r * d
		var mean float64
		for i := 0; i < d; i++ {
			mean += float64(x.F[base+i])
		}
		mean /= nf
		var variance float64
		for i := 0; i < d; i++ {
			dv := float64(x.F[base+i]) - mean
			variance += dv * dv
		}
		variance /= nf
		invStd := 1 / sqrt(variance+eps)
		var sumDy, sumDyXhat float64
		for i := 0; i < d; i++ {
			xh := (float64(x.F[base+i]) - mean) * invStd
			dy := float64(dOut.F[base+i]) * float64(gamma.F[i])
			sumDy += dy
			sumDyXhat += dy * xh
			dGamma.F[i] += dOut.F[base+i] * float32(xh)
			dBeta.F[i] += dOut.F[base+i]
		}
		for i := 0; i < d; i++ {
			xh := (float64(x.F[base+i]) - mean) * invStd
			dy := float64(dOut.F[base+i]) * float64(gamma.F[i])
			dIn.F[base+i] += float32(invStd * (dy - sumDy/nf - xh*sumDyXhat/nf))
		}
	}
	return nil
}

func (tr *Trainer) backEmbedding(n *graph.Node, dOut *tensor.Tensor) error {
	ids := tr.acts[n.Inputs[0]]
	dTable := tr.grad(n.Inputs[1])
	if dTable == nil {
		return nil
	}
	dim := tr.acts[n.Inputs[1]].Shape[1]
	for i, id := range ids.X {
		base := int(id) * dim
		for j := 0; j < dim; j++ {
			dTable.F[base+j] += dOut.F[i*dim+j]
		}
	}
	return nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
