// Package train is the training substrate that produces the "checkpoint"
// models of the deployment pipeline: reverse-mode automatic differentiation
// over the graph IR, SGD with momentum, and the loss functions the model zoo
// needs (softmax cross-entropy, per-pixel cross-entropy, SSD multi-task
// loss). It exists because the paper's workflow starts from models trained
// in the cloud — so this repository trains its miniature architectures from
// scratch on the synthetic datasets rather than shipping opaque weights.
package train

import (
	"fmt"
	"math"

	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Config holds optimizer hyperparameters.
type Config struct {
	LR         float64
	Momentum   float64
	BNMomentum float64 // running-statistics update rate
	// WeightDecay applies L2 regularization to weight matrices (not biases
	// or normalization parameters).
	WeightDecay float64
}

// DefaultConfig is a sensible starting point for the mini models.
func DefaultConfig() Config {
	return Config{LR: 0.05, Momentum: 0.9, BNMomentum: 0.1, WeightDecay: 1e-4}
}

// LossFn computes a loss and its gradients with respect to named tensors.
// get returns the forward value of any named tensor (e.g. "logits"). The
// returned map keys are tensor names; values are dL/dtensor.
type LossFn func(get func(name string) (*tensor.Tensor, error)) (loss float64, grads map[string]*tensor.Tensor, err error)

// bnState caches training-mode batch-norm intermediates for backward.
type bnState struct {
	xhat   []float32
	invStd []float64
	mu     []float64
}

// Trainer performs SGD on a rebatched clone of a model.
type Trainer struct {
	orig    *graph.Model
	m       *graph.Model // rebatched clone; consts are the live weights
	cfg     Config
	batch   int
	kernels []ops.Kernel

	acts      []*tensor.Tensor // runtime value per tensor id
	grads     []*tensor.Tensor // gradient per tensor id (F32 tensors only)
	vel       map[int][]float32
	trainable map[int]bool
	decayable map[int]bool
	bnCache   map[int]*bnState // node index -> state
}

// New builds a trainer for the given checkpoint model and batch size.
// Checkpoint models must not contain fused activations (the converter adds
// those later); backward passes rely on activations being explicit nodes.
func New(src *graph.Model, batch int, cfg Config) (*Trainer, error) {
	if src.Format != graph.FormatCheckpoint {
		return nil, fmt.Errorf("train: expected a checkpoint model, got %s", src.Format)
	}
	for _, n := range src.Nodes {
		if n.Attrs.Activation != graph.ActNone {
			return nil, fmt.Errorf("train: node %q has a fused activation; checkpoint graphs must keep activations explicit", n.Name)
		}
	}
	m, err := graph.Rebatch(src, batch)
	if err != nil {
		return nil, err
	}
	tr := &Trainer{
		orig: src, m: m, cfg: cfg, batch: batch,
		kernels:   make([]ops.Kernel, len(m.Nodes)),
		acts:      make([]*tensor.Tensor, len(m.Tensors)),
		grads:     make([]*tensor.Tensor, len(m.Tensors)),
		vel:       make(map[int][]float32),
		trainable: make(map[int]bool),
		decayable: make(map[int]bool),
		bnCache:   make(map[int]*bnState),
	}
	resolver := ops.NewReference(ops.Fixed())
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Op == graph.OpBatchNorm {
			continue // trainer's own forward
		}
		k, err := resolver.Lookup(n.Op, ops.KindOf(n, m.Tensors))
		if err != nil {
			return nil, fmt.Errorf("train: node %q: %w", n.Name, err)
		}
		tr.kernels[i] = k
	}
	for id, info := range m.Tensors {
		if c, ok := m.Consts[id]; ok {
			tr.acts[id] = c
			if c.DType == tensor.F32 {
				tr.trainable[id] = true
				// Weight matrices (rank >= 2) get weight decay; biases and
				// norm parameters do not.
				tr.decayable[id] = len(c.Shape) >= 2
			}
			continue
		}
		tr.acts[id] = tensor.New(info.DType, info.Shape...)
	}
	// BatchNorm running statistics are updated by the moving average, not
	// by gradients.
	for _, n := range m.Nodes {
		if n.Op == graph.OpBatchNorm {
			tr.trainable[n.Inputs[3]] = false
			tr.trainable[n.Inputs[4]] = false
		}
	}
	return tr, nil
}

// Model returns the live (rebatched) training model.
func (tr *Trainer) Model() *graph.Model { return tr.m }

// Gradient returns the gradient buffer of the named tensor as computed by
// the most recent Step. Intended for diagnostics and gradient checking.
func (tr *Trainer) Gradient(name string) (*tensor.Tensor, error) {
	id, err := tr.m.TensorByName(name)
	if err != nil {
		return nil, err
	}
	if tr.grads[id] == nil {
		return nil, fmt.Errorf("train: no gradient recorded for %q", name)
	}
	return tr.grads[id], nil
}

// ExportInto copies the trained constants back into dst, which must be the
// model New was constructed from (or a clone sharing its tensor ids).
func (tr *Trainer) ExportInto(dst *graph.Model) error {
	if len(dst.Tensors) != len(tr.m.Tensors) {
		return fmt.Errorf("train: export target has %d tensors, trainer has %d", len(dst.Tensors), len(tr.m.Tensors))
	}
	for id, c := range tr.m.Consts {
		dst.Consts[id].CopyFrom(c)
	}
	return nil
}

// Step runs one SGD step: forward on the inputs, loss, backward, update.
func (tr *Trainer) Step(inputs []*tensor.Tensor, loss LossFn) (float64, error) {
	if len(inputs) != len(tr.m.Inputs) {
		return 0, fmt.Errorf("train: %d inputs for %d model inputs", len(inputs), len(tr.m.Inputs))
	}
	for i, in := range inputs {
		dst := tr.acts[tr.m.Inputs[i]]
		if !tensor.SameShape(dst.Shape, in.Shape) || dst.DType != in.DType {
			return 0, fmt.Errorf("train: input %d is %v/%v, model wants %v/%v", i, in.DType, in.Shape, dst.DType, dst.Shape)
		}
		dst.CopyFrom(in)
	}
	if err := tr.forward(); err != nil {
		return 0, err
	}
	get := func(name string) (*tensor.Tensor, error) {
		id, err := tr.m.TensorByName(name)
		if err != nil {
			return nil, err
		}
		return tr.acts[id], nil
	}
	lossV, gradMap, err := loss(get)
	if err != nil {
		return 0, err
	}
	if err := tr.backward(gradMap); err != nil {
		return 0, err
	}
	tr.applySGD()
	return lossV, nil
}

func (tr *Trainer) forward() error {
	for i := range tr.m.Nodes {
		n := &tr.m.Nodes[i]
		if n.Op == graph.OpBatchNorm {
			if err := tr.batchNormTrainForward(i, n); err != nil {
				return err
			}
			continue
		}
		ctx := tr.ctxFor(n)
		if err := tr.kernels[i](ctx); err != nil {
			return fmt.Errorf("train: forward %q: %w", n.Name, err)
		}
	}
	return nil
}

func (tr *Trainer) ctxFor(n *graph.Node) *ops.Ctx {
	inputs := make([]*tensor.Tensor, len(n.Inputs))
	for j, id := range n.Inputs {
		inputs[j] = tr.acts[id]
	}
	outputs := make([]*tensor.Tensor, len(n.Outputs))
	for j, id := range n.Outputs {
		outputs[j] = tr.acts[id]
	}
	return &ops.Ctx{Node: n, Inputs: inputs, Outputs: outputs,
		InQ: make([]*quant.Params, len(n.Inputs)), OutQ: make([]*quant.Params, len(n.Outputs))}
}

// batchNormTrainForward normalizes with batch statistics and updates the
// running mean/variance constants.
func (tr *Trainer) batchNormTrainForward(ni int, n *graph.Node) error {
	x := tr.acts[n.Inputs[0]]
	gamma := tr.acts[n.Inputs[1]]
	beta := tr.acts[n.Inputs[2]]
	runMean := tr.acts[n.Inputs[3]]
	runVar := tr.acts[n.Inputs[4]]
	out := tr.acts[n.Outputs[0]]
	eps := n.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	ch := x.Shape[len(x.Shape)-1]
	rows := x.Len() / ch
	st := &bnState{
		xhat:   make([]float32, x.Len()),
		invStd: make([]float64, ch),
		mu:     make([]float64, ch),
	}
	for c := 0; c < ch; c++ {
		var sum float64
		for r := 0; r < rows; r++ {
			sum += float64(x.F[r*ch+c])
		}
		mu := sum / float64(rows)
		var varSum float64
		for r := 0; r < rows; r++ {
			d := float64(x.F[r*ch+c]) - mu
			varSum += d * d
		}
		variance := varSum / float64(rows)
		invStd := 1 / sqrt(variance+eps)
		st.mu[c] = mu
		st.invStd[c] = invStd
		for r := 0; r < rows; r++ {
			xh := (float64(x.F[r*ch+c]) - mu) * invStd
			st.xhat[r*ch+c] = float32(xh)
			out.F[r*ch+c] = float32(xh)*gamma.F[c] + beta.F[c]
		}
		mom := tr.cfg.BNMomentum
		runMean.F[c] = float32((1-mom)*float64(runMean.F[c]) + mom*mu)
		runVar.F[c] = float32((1-mom)*float64(runVar.F[c]) + mom*variance)
	}
	tr.bnCache[ni] = st
	return nil
}

// grad returns (allocating lazily) the gradient buffer for tensor id; nil
// for non-float tensors.
func (tr *Trainer) grad(id int) *tensor.Tensor {
	info := tr.m.Tensors[id]
	var shape []int
	if c, ok := tr.m.Consts[id]; ok {
		if c.DType != tensor.F32 {
			return nil
		}
		shape = c.Shape
	} else {
		if info.DType != tensor.F32 {
			return nil
		}
		shape = info.Shape
	}
	if tr.grads[id] == nil {
		tr.grads[id] = tensor.New(tensor.F32, shape...)
	}
	return tr.grads[id]
}

func (tr *Trainer) backward(gradMap map[string]*tensor.Tensor) error {
	for _, g := range tr.grads {
		if g != nil {
			g.Zero()
		}
	}
	for name, g := range gradMap {
		id, err := tr.m.TensorByName(name)
		if err != nil {
			return fmt.Errorf("train: loss gradient for unknown tensor %q", name)
		}
		dst := tr.grad(id)
		if dst == nil {
			return fmt.Errorf("train: tensor %q is not differentiable", name)
		}
		if dst.Len() != g.Len() {
			return fmt.Errorf("train: gradient for %q has %d values, tensor has %d", name, g.Len(), dst.Len())
		}
		for i := range g.F {
			dst.F[i] += g.F[i]
		}
	}
	for i := len(tr.m.Nodes) - 1; i >= 0; i-- {
		n := &tr.m.Nodes[i]
		if err := tr.backwardNode(i, n); err != nil {
			return fmt.Errorf("train: backward %q: %w", n.Name, err)
		}
	}
	return nil
}

func (tr *Trainer) applySGD() {
	for id, isTrainable := range tr.trainable {
		if !isTrainable {
			continue
		}
		g := tr.grads[id]
		if g == nil {
			continue
		}
		w := tr.m.Consts[id]
		v, ok := tr.vel[id]
		if !ok {
			v = make([]float32, w.Len())
			tr.vel[id] = v
		}
		lr := float32(tr.cfg.LR)
		mom := float32(tr.cfg.Momentum)
		decay := float32(0)
		if tr.decayable[id] {
			decay = float32(tr.cfg.WeightDecay)
		}
		for i := range w.F {
			gi := g.F[i] + decay*w.F[i]
			v[i] = mom*v[i] - lr*gi
			w.F[i] += v[i]
		}
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
