package train

import (
	"math"
	"math/rand"
	"testing"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// weightedSumLoss builds a loss that is a fixed random linear functional of
// the named tensor — enough to exercise every gradient path.
func weightedSumLoss(name string, n int, seed int64) LossFn {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	return func(get func(string) (*tensor.Tensor, error)) (float64, map[string]*tensor.Tensor, error) {
		out, err := get(name)
		if err != nil {
			return 0, nil, err
		}
		var loss float64
		grad := tensor.New(tensor.F32, out.Shape...)
		for i := range out.F {
			loss += float64(w[i]) * float64(out.F[i])
			grad.F[i] = w[i]
		}
		return loss, map[string]*tensor.Tensor{name: grad}, nil
	}
}

// gradCheck verifies analytic gradients against central finite differences
// for every float constant in the model.
func gradCheck(t *testing.T, m *graph.Model, inputs []*tensor.Tensor, loss LossFn, maxPerTensor int) {
	t.Helper()
	cfg := Config{LR: 0, Momentum: 0, BNMomentum: 0, WeightDecay: 0}
	tr, err := New(m, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(inputs, loss); err != nil {
		t.Fatal(err)
	}
	// Capture analytic gradients before subsequent steps clear them.
	analytic := make(map[int]*tensor.Tensor)
	for id := range tr.m.Consts {
		if !tr.trainable[id] || tr.grads[id] == nil {
			continue
		}
		analytic[id] = tr.grads[id].Clone()
	}
	const eps = 2e-3
	rng := rand.New(rand.NewSource(99))
	for id, ga := range analytic {
		w := tr.m.Consts[id]
		name := tr.m.Tensors[id].Name
		indices := rng.Perm(w.Len())
		if len(indices) > maxPerTensor {
			indices = indices[:maxPerTensor]
		}
		for _, i := range indices {
			orig := w.F[i]
			w.F[i] = orig + eps
			lp, err := tr.Step(inputs, loss)
			if err != nil {
				t.Fatal(err)
			}
			w.F[i] = orig - eps
			lm, err := tr.Step(inputs, loss)
			if err != nil {
				t.Fatal(err)
			}
			w.F[i] = orig
			numeric := (lp - lm) / (2 * eps)
			a := float64(ga.F[i])
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(a)))
			if math.Abs(numeric-a)/denom > 0.05 {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", name, i, a, numeric)
			}
		}
	}
}

func randInput(seed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(tensor.F32, shape...)
	tensor.RandUniform(rng, in, -1, 1)
	return in
}

func TestGradConvReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 5, 5, 2)
	w := tensor.New(tensor.F32, 3, 3, 3, 2)
	tensor.HeInit(rng, w, 18)
	bias := tensor.New(tensor.F32, 3)
	tensor.RandUniform(rng, bias, -0.1, 0.1)
	x := b.Node(graph.OpConv2D, "conv",
		graph.Attrs{StrideH: 2, StrideW: 2, PadT: 1, PadB: 1, PadL: 1, PadR: 1},
		in, b.Const("w", w), b.Const("b", bias))
	x = b.Node(graph.OpReLU, "relu", graph.Attrs{}, x)
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(2, 1, 5, 5, 2)},
		weightedSumLoss("out", 3*3*3, 3), 12)
}

func TestGradDilatedConv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 7, 7, 1)
	w := tensor.New(tensor.F32, 2, 3, 3, 1)
	tensor.HeInit(rng, w, 9)
	x := b.Node(graph.OpConv2D, "conv",
		graph.Attrs{StrideH: 1, StrideW: 1, DilationH: 2, DilationW: 2, PadT: 2, PadB: 2, PadL: 2, PadR: 2},
		in, b.Const("w", w))
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(3, 1, 7, 7, 1)},
		weightedSumLoss("out", 7*7*2, 4), 10)
}

func TestGradDepthwiseReLU6(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 5, 5, 3)
	w := tensor.New(tensor.F32, 1, 3, 3, 3)
	tensor.HeInit(rng, w, 9)
	bias := tensor.New(tensor.F32, 3)
	x := b.Node(graph.OpDepthwiseConv2D, "dw",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1},
		in, b.Const("w", w), b.Const("b", bias))
	x = b.Node(graph.OpReLU6, "relu6", graph.Attrs{}, x)
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(4, 1, 5, 5, 3)},
		weightedSumLoss("out", 5*5*3, 5), 12)
}

func TestGradDenseSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 6)
	w := tensor.New(tensor.F32, 4, 6)
	tensor.HeInit(rng, w, 6)
	bias := tensor.New(tensor.F32, 4)
	x := b.Node(graph.OpDense, "fc", graph.Attrs{}, in, b.Const("w", w), b.Const("b", bias))
	x = b.Node(graph.OpSigmoid, "sig", graph.Attrs{}, x)
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(5, 1, 6)},
		weightedSumLoss("out", 4, 6), 24)
}

func TestGradPoolsAndPad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 6, 6, 2)
	w := tensor.New(tensor.F32, 2, 1, 1, 2)
	tensor.HeInit(rng, w, 2)
	x := b.Node(graph.OpConv2D, "conv", graph.Attrs{StrideH: 1, StrideW: 1}, in, b.Const("w", w))
	x = b.Node(graph.OpPad, "pad", graph.Attrs{Paddings: [][2]int{{0, 0}, {1, 1}, {1, 1}, {0, 0}}}, x)
	x = b.Node(graph.OpMaxPool2D, "maxp", graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, x)
	x = b.Node(graph.OpAvgPool2D, "avgp", graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, x)
	x = b.Node(graph.OpMean, "gap", graph.Attrs{}, x)
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(6, 1, 6, 6, 2)},
		weightedSumLoss("out", 2, 7), 4)
}

func TestGradSEBlockMulBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 4, 4, 4)
	w := tensor.New(tensor.F32, 4, 1, 1, 4)
	tensor.HeInit(rng, w, 4)
	feat := b.Node(graph.OpConv2D, "conv", graph.Attrs{StrideH: 1, StrideW: 1}, in, b.Const("w", w))
	sq := b.Node(graph.OpMean, "squeeze", graph.Attrs{}, feat)
	wfc := tensor.New(tensor.F32, 4, 4)
	tensor.HeInit(rng, wfc, 4)
	bfc := tensor.New(tensor.F32, 4)
	gate := b.Node(graph.OpDense, "fc", graph.Attrs{}, sq, b.Const("wf", wfc), b.Const("bf", bfc))
	gate = b.Node(graph.OpHardSigmoid, "hsig", graph.Attrs{}, gate)
	x := b.Node(graph.OpMul, "scale", graph.Attrs{}, feat, gate)
	x = b.Node(graph.OpHardSwish, "hswish", graph.Attrs{}, x)
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(7, 1, 4, 4, 4)},
		weightedSumLoss("out", 4*4*4, 8), 8)
}

func TestGradResidualAddAndConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 4, 4, 2)
	w1 := tensor.New(tensor.F32, 2, 3, 3, 2)
	tensor.HeInit(rng, w1, 18)
	x := b.Node(graph.OpConv2D, "conv1",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1}, in, b.Const("w1", w1))
	y := b.Node(graph.OpAdd, "res", graph.Attrs{}, in, x)
	z := b.Node(graph.OpConcat, "cat", graph.Attrs{Axis: 3}, x, y)
	b.RenameTensor(z, "out")
	b.Output(z)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(8, 1, 4, 4, 2)},
		weightedSumLoss("out", 4*4*4, 9), 18)
}

func TestGradBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 4, 4, 2)
	w := tensor.New(tensor.F32, 2, 3, 3, 2)
	tensor.HeInit(rng, w, 18)
	x := b.Node(graph.OpConv2D, "conv",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1}, in, b.Const("w", w))
	gamma := tensor.New(tensor.F32, 2)
	gamma.Fill(1.2)
	beta := tensor.New(tensor.F32, 2)
	beta.Fill(0.1)
	mean := tensor.New(tensor.F32, 2)
	variance := tensor.New(tensor.F32, 2)
	variance.Fill(1)
	x = b.Node(graph.OpBatchNorm, "bn", graph.Attrs{Eps: 1e-5},
		x, b.Const("gamma", gamma), b.Const("beta", beta), b.Const("mean", mean), b.Const("var", variance))
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(9, 1, 4, 4, 2)},
		weightedSumLoss("out", 4*4*2, 10), 10)
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder("g")
	in := b.Input("input", tensor.F32, 1, 5)
	w := tensor.New(tensor.F32, 4, 5)
	tensor.HeInit(rng, w, 5)
	x := b.Node(graph.OpDense, "fc", graph.Attrs{}, in, b.Const("w", w))
	x = b.Node(graph.OpSoftmax, "sm", graph.Attrs{Axis: 1}, x)
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	gradCheck(t, m, []*tensor.Tensor{randInput(10, 1, 5)},
		weightedSumLoss("out", 4, 11), 20)
}

func TestGradTextStack(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := graph.NewBuilder("g")
	ids := b.Input("ids", tensor.I32, 1, 4)
	table := tensor.New(tensor.F32, 8, 6)
	tensor.GlorotInit(rng, table, 8, 6)
	x := b.Node(graph.OpEmbedding, "emb", graph.Attrs{}, ids, b.Const("table", table))
	mk := func(name string) (int, int) {
		w := tensor.New(tensor.F32, 6, 6)
		tensor.GlorotInit(rng, w, 6, 6)
		bb := tensor.New(tensor.F32, 6)
		return b.Const(name+"/w", w), b.Const(name+"/b", bb)
	}
	wq, bq := mk("q")
	wk, bk := mk("k")
	wv, bv := mk("v")
	wo, bo := mk("o")
	x = b.Node(graph.OpSelfAttention, "attn", graph.Attrs{NumHeads: 2}, x, wq, bq, wk, bk, wv, bv, wo, bo)
	gamma := tensor.New(tensor.F32, 6)
	gamma.Fill(1)
	beta := tensor.New(tensor.F32, 6)
	x = b.Node(graph.OpLayerNorm, "ln", graph.Attrs{Eps: 1e-5}, x, b.Const("ln/g", gamma), b.Const("ln/b", beta))
	x = b.Node(graph.OpReshape, "flat", graph.Attrs{NewShape: []int{1, 24}}, x)
	w := tensor.New(tensor.F32, 3, 24)
	tensor.GlorotInit(rng, w, 24, 3)
	x = b.Node(graph.OpDense, "fc", graph.Attrs{}, x, b.Const("fc/w", w))
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	in := tensor.FromInt32([]int32{1, 3, 5, 7}, 1, 4)
	gradCheck(t, m, []*tensor.Tensor{in}, weightedSumLoss("out", 3, 12), 6)
}
