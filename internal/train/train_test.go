package train

import (
	"math"
	"math/rand"
	"testing"

	"mlexray/internal/graph"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/tensor"
)

// stripeModel builds a small trainable CNN for the stripe-orientation task.
func stripeModel(seed int64) *graph.Model {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder("stripes")
	in := b.Input("input", tensor.F32, 1, 8, 8, 1)
	w1 := tensor.New(tensor.F32, 8, 3, 3, 1)
	tensor.HeInit(rng, w1, 9)
	b1 := tensor.New(tensor.F32, 8)
	x := b.Node(graph.OpConv2D, "conv1",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1},
		in, b.Const("conv1/w", w1), b.Const("conv1/b", b1))
	x = b.Node(graph.OpReLU, "relu1", graph.Attrs{}, x)
	x = b.Node(graph.OpMean, "gap", graph.Attrs{}, x)
	w2 := tensor.New(tensor.F32, 2, 8)
	tensor.HeInit(rng, w2, 8)
	b2 := tensor.New(tensor.F32, 2)
	logits := b.Node(graph.OpDense, "fc", graph.Attrs{}, x, b.Const("fc/w", w2), b.Const("fc/b", b2))
	b.RenameTensor(logits, "logits")
	sm := b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, logits)
	b.Output(sm)
	return b.MustFinish()
}

// stripeBatch generates images of vertical (class 0) or horizontal (class 1)
// stripes with noise.
func stripeBatch(rng *rand.Rand, n int) (*tensor.Tensor, []int32) {
	in := tensor.New(tensor.F32, n, 8, 8, 1)
	labels := make([]int32, n)
	for b := 0; b < n; b++ {
		cls := rng.Intn(2)
		labels[b] = int32(cls)
		phase := rng.Intn(2)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				var v float64
				if cls == 0 {
					v = float64((x + phase) % 2)
				} else {
					v = float64((y + phase) % 2)
				}
				v = v*2 - 1 + rng.NormFloat64()*0.15
				in.F[((b*8+y)*8+x)*1] = float32(v)
			}
		}
	}
	return in, labels
}

func TestTrainerLearnsStripeTask(t *testing.T) {
	m := stripeModel(1)
	cfg := DefaultConfig()
	cfg.LR = 0.1
	tr, err := New(m, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var firstLoss, lastLoss float64
	for step := 0; step < 120; step++ {
		in, labels := stripeBatch(rng, 16)
		loss, err := tr.Step([]*tensor.Tensor{in}, SoftmaxCE("logits", labels))
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			firstLoss = loss
		}
		lastLoss = loss
	}
	if lastLoss > firstLoss/3 {
		t.Errorf("loss did not drop: %v -> %v", firstLoss, lastLoss)
	}
	// Export into the original batch-1 model and measure accuracy through
	// the standard inference path.
	if err := tr.ExportInto(m); err != nil {
		t.Fatal(err)
	}
	ip, err := interp.New(m, ops.NewReference(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		in, labels := stripeBatch(rng, 16)
		for b := 0; b < 16; b++ {
			single := tensor.New(tensor.F32, 1, 8, 8, 1)
			copy(single.F, in.F[b*64:(b+1)*64])
			out, err := ip.Run(single)
			if err != nil {
				t.Fatal(err)
			}
			if int32(out.ArgMax()) == labels[b] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("trained accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainerRejectsBadModels(t *testing.T) {
	m := stripeModel(3)
	m.Format = graph.FormatMobile
	if _, err := New(m, 4, DefaultConfig()); err == nil {
		t.Error("accepted non-checkpoint model")
	}
	m.Format = graph.FormatCheckpoint
	m.Nodes[0].Attrs.Activation = graph.ActReLU
	if _, err := New(m, 4, DefaultConfig()); err == nil {
		t.Error("accepted fused activation in checkpoint graph")
	}
}

func TestStepValidatesInputs(t *testing.T) {
	m := stripeModel(4)
	tr, err := New(m, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(nil, SoftmaxCE("logits", []int32{0})); err == nil {
		t.Error("accepted missing inputs")
	}
	bad := tensor.New(tensor.F32, 4, 4, 4, 1)
	if _, err := tr.Step([]*tensor.Tensor{bad}, SoftmaxCE("logits", []int32{0, 0, 0, 0})); err == nil {
		t.Error("accepted wrong input shape")
	}
	in := tensor.New(tensor.F32, 4, 8, 8, 1)
	if _, err := tr.Step([]*tensor.Tensor{in}, SoftmaxCE("logits", []int32{0})); err == nil {
		t.Error("accepted wrong label count")
	}
	if _, err := tr.Step([]*tensor.Tensor{in}, SoftmaxCE("nope", []int32{0, 0, 0, 0})); err == nil {
		t.Error("accepted unknown logits tensor")
	}
}

func TestSoftmaxCEValues(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(tensor.F32, 1, 4)
	loss := SoftmaxCE("l", []int32{2})
	get := func(string) (*tensor.Tensor, error) { return logits, nil }
	l, grads, err := loss(get)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-math.Log(4)) > 1e-6 {
		t.Errorf("uniform CE = %v, want ln4 = %v", l, math.Log(4))
	}
	g := grads["l"]
	// grad = p - y: 0.25 except class 2 which is -0.75.
	for i := 0; i < 4; i++ {
		want := 0.25
		if i == 2 {
			want = -0.75
		}
		if math.Abs(float64(g.F[i])-want) > 1e-6 {
			t.Errorf("grad[%d] = %v, want %v", i, g.F[i], want)
		}
	}
	// Ignore labels (-1) contribute nothing.
	lossIgn := SoftmaxCE("l", []int32{-1})
	if _, _, err := lossIgn(get); err == nil {
		t.Error("all-ignored labels should error")
	}
}

func TestSmoothL1(t *testing.T) {
	l, g := smoothL1(0.5, 0)
	if math.Abs(l-0.125) > 1e-9 || math.Abs(g-0.5) > 1e-9 {
		t.Errorf("quadratic region: %v, %v", l, g)
	}
	l, g = smoothL1(3, 0)
	if math.Abs(l-2.5) > 1e-9 || g != 1 {
		t.Errorf("linear region: %v, %v", l, g)
	}
	_, g = smoothL1(-3, 0)
	if g != -1 {
		t.Errorf("negative linear grad = %v", g)
	}
}

func TestSSDLossGradients(t *testing.T) {
	cls := tensor.New(tensor.F32, 1, 2, 3) // 2 anchors, 3 classes (0=bg)
	box := tensor.New(tensor.F32, 1, 2, 4)
	box.F[4] = 1 // anchor 1 prediction offset
	labels := []int32{0, 2}
	targets := make([]float32, 8)
	targets[4] = 0.5
	loss := SSDLoss("cls", "box", labels, targets, 1.0)
	get := func(name string) (*tensor.Tensor, error) {
		if name == "cls" {
			return cls, nil
		}
		return box, nil
	}
	l, grads, err := loss(get)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 {
		t.Error("loss should be positive")
	}
	bg := grads["box"]
	// Only positive anchor (index 1) has box gradient; element 4 moved.
	for i := 0; i < 4; i++ {
		if bg.F[i] != 0 {
			t.Errorf("background anchor has box grad at %d", i)
		}
	}
	if bg.F[4] == 0 {
		t.Error("positive anchor missing box grad")
	}
	if grads["cls"] == nil {
		t.Error("missing classification grads")
	}
}

func TestBNRunningStatsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := graph.NewBuilder("bn")
	in := b.Input("input", tensor.F32, 1, 2, 2, 1)
	gamma := tensor.New(tensor.F32, 1)
	gamma.Fill(1)
	beta := tensor.New(tensor.F32, 1)
	mean := tensor.New(tensor.F32, 1)
	variance := tensor.New(tensor.F32, 1)
	variance.Fill(1)
	x := b.Node(graph.OpBatchNorm, "bn", graph.Attrs{Eps: 1e-5},
		in, b.Const("g", gamma), b.Const("b", beta), b.Const("m", mean), b.Const("v", variance))
	b.RenameTensor(x, "out")
	b.Output(x)
	m := b.MustFinish()
	cfg := Config{LR: 0, BNMomentum: 0.5}
	tr, err := New(m, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed data with mean 10: running mean must move toward it.
	data := tensor.New(tensor.F32, 4, 2, 2, 1)
	for i := range data.F {
		data.F[i] = 10 + float32(rng.NormFloat64())
	}
	if _, err := tr.Step([]*tensor.Tensor{data}, weightedSumLoss("out", 16, 1)); err != nil {
		t.Fatal(err)
	}
	mID, _ := tr.m.TensorByName("m")
	got := tr.m.Consts[mID].F[0]
	if got < 4 || got > 6 {
		t.Errorf("running mean after one step = %v, want ~5 (momentum 0.5 toward 10)", got)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	m := stripeModel(12)
	cfg := Config{LR: 0.1, Momentum: 0, BNMomentum: 0, WeightDecay: 0.5}
	tr, err := New(m, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wID, _ := tr.m.TensorByName("conv1/w")
	before := tr.m.Consts[wID].Clone()
	// Zero-gradient loss: only decay acts on the weights.
	zeroLoss := func(get func(string) (*tensor.Tensor, error)) (float64, map[string]*tensor.Tensor, error) {
		lg, _ := get("logits")
		return 0, map[string]*tensor.Tensor{"logits": tensor.New(tensor.F32, lg.Shape...)}, nil
	}
	in := tensor.New(tensor.F32, 4, 8, 8, 1)
	if _, err := tr.Step([]*tensor.Tensor{in}, zeroLoss); err != nil {
		t.Fatal(err)
	}
	after := tr.m.Consts[wID]
	var sumBefore, sumAfter float64
	for i := range before.F {
		sumBefore += math.Abs(float64(before.F[i]))
		sumAfter += math.Abs(float64(after.F[i]))
	}
	if sumAfter >= sumBefore {
		t.Errorf("weight decay did not shrink weights: %v -> %v", sumBefore, sumAfter)
	}
	// Bias must not decay.
	bID, _ := tr.m.TensorByName("conv1/b")
	for _, v := range tr.m.Consts[bID].F {
		if v != 0 {
			t.Error("bias was decayed")
		}
	}
}

func TestGradientAccessor(t *testing.T) {
	m := stripeModel(13)
	tr, err := New(m, 2, Config{LR: 0})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.F32, 2, 8, 8, 1)
	in.Fill(0.3)
	if _, err := tr.Step([]*tensor.Tensor{in}, SoftmaxCE("logits", []int32{0, 1})); err != nil {
		t.Fatal(err)
	}
	g, err := tr.Gradient("fc/w")
	if err != nil {
		t.Fatal(err)
	}
	var nonzero bool
	for _, v := range g.F {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("fc/w gradient is all zero")
	}
	if _, err := tr.Gradient("missing"); err == nil {
		t.Error("Gradient accepted unknown tensor")
	}
}
