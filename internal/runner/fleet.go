package runner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mlexray/internal/core"
	"mlexray/internal/device"
)

// Fleet is the two-tier replay scheduler: it shards one dataset replay
// across a set of simulated devices (the paper's heterogeneous edge fleet —
// phones, GPU delegates, emulators), and each device runs its shard through
// the per-device replay core (runShard) with its own worker pool, batch
// size, monitor shards and optional log sink. Devices execute concurrently;
// because every record keeps its global frame tag, the per-device shard
// logs merge (core.MergeByFrame) into exactly the record order a sequential
// replay of the same shard assignment would have produced — the determinism
// contract of the single-device engine, lifted to the fleet.
//
//	frames ─► ShardPolicy ─► device 0 shard ─► worker pool ─► shard log ─┐
//	                     ├─► device 1 shard ─► worker pool ─► shard log ─┤─► MergeByFrame
//	                     └─► device D shard ─► worker pool ─► shard log ─┘   + FleetReport
type Fleet struct {
	// Devices lists the fleet members; at least one is required.
	Devices []DeviceSpec
	// Policy shards the frame range across devices; nil means Contiguous.
	Policy ShardPolicy
	// MonitorOptions configure every device's monitor shards. As with
	// Options.MonitorOptions, all shards must be configured identically;
	// nil replays uninstrumented.
	MonitorOptions []core.MonitorOption
	// MaxPending caps each device's reorder window (see
	// Options.MaxPending); <= 0 derives the default per device.
	MaxPending int
	// DiscardLogs suppresses the in-memory per-device and merged logs.
	// Requires every device to carry a Sink, or telemetry would be lost.
	DiscardLogs bool
}

// DeviceSpec describes one device slot of a fleet replay.
type DeviceSpec struct {
	// Profile is the simulated device (latency model, logging overheads).
	// The fleet scheduler itself only consults it for Weighted sharding and
	// naming; worker factories attach it to their pipeline replicas.
	Profile *device.Profile
	// Workers is this device's worker-pool size; <= 0 means 1 (fleet
	// devices default narrow so a many-device fleet does not oversubscribe
	// the host).
	Workers int
	// BatchFrames is the device's frames-per-dispatch (and, with a batched
	// worker, frames per interpreter invoke); <= 1 is frame at a time.
	BatchFrames int
	// Sink, when set, streams this device's shard frames in order — the
	// per-device shard log. Frame tags are global, so shard logs remain
	// mergeable and individually validatable.
	Sink core.Sink
}

// Name returns the device profile name (or a placeholder when no profile is
// attached).
func (s DeviceSpec) Name() string {
	if s.Profile != nil {
		return s.Profile.Name
	}
	return "device"
}

func (s DeviceSpec) workers() int {
	if s.Workers <= 0 {
		return 1
	}
	return s.Workers
}

func (s DeviceSpec) batch() int {
	if s.BatchFrames < 1 {
		return 1
	}
	return s.BatchFrames
}

// weight is the device's share under throughput-proportional policies:
// modeled single-core throughput times the worker count.
func (s DeviceSpec) weight() float64 {
	w := 1.0
	if s.Profile != nil {
		w = s.Profile.ModeledThroughput()
	}
	return w * float64(s.workers())
}

// ShardPolicy distributes the frame range of a fleet replay across devices.
// Assign returns one ordered, disjoint range list per device; together the
// lists must cover [0, frames) exactly (validated by the fleet before any
// worker starts). Policies must be deterministic: the shard assignment is
// part of the replay's reproducibility contract.
type ShardPolicy interface {
	Name() string
	Assign(frames int, devs []DeviceSpec) [][]Range
}

// RoundRobin deals fixed-size chunks of consecutive frames to devices
// cyclically — the policy that ignores device speed and spreads cache-warm
// ranges evenly.
type RoundRobin struct {
	// Chunk is the frames per deal; <= 0 uses each receiving device's batch
	// size, so every deal is one batched invoke.
	Chunk int
}

// Name implements ShardPolicy.
func (p RoundRobin) Name() string { return "round-robin" }

// Assign implements ShardPolicy.
func (p RoundRobin) Assign(frames int, devs []DeviceSpec) [][]Range {
	if len(devs) == 0 {
		return nil
	}
	out := make([][]Range, len(devs))
	next := 0
	for d := 0; next < frames; d = (d + 1) % len(devs) {
		n := p.Chunk
		if n <= 0 {
			n = devs[d].batch()
		}
		end := next + n
		if end > frames {
			end = frames
		}
		out[d] = appendRange(out[d], Range{next, end})
		next = end
	}
	return out
}

// Weighted deals chunks in proportion to each device's modeled throughput
// (device.Profile.ModeledThroughput × worker count), so a fleet of unequal
// devices finishes together instead of idling behind its slowest member.
// Assignment is deterministic: at every deal the device with the largest
// deficit (target share minus frames assigned) takes the next chunk, ties
// broken by device index.
type Weighted struct {
	// Chunk is the frames per deal; <= 0 uses each receiving device's batch
	// size.
	Chunk int
}

// Name implements ShardPolicy.
func (p Weighted) Name() string { return "weighted" }

// Assign implements ShardPolicy.
func (p Weighted) Assign(frames int, devs []DeviceSpec) [][]Range {
	if len(devs) == 0 {
		return nil
	}
	out := make([][]Range, len(devs))
	weights := make([]float64, len(devs))
	var total float64
	for d, spec := range devs {
		weights[d] = spec.weight()
		if weights[d] <= 0 {
			weights[d] = 1
		}
		total += weights[d]
	}
	counts := make([]int, len(devs))
	next := 0
	for next < frames {
		// The next chunk goes to the device furthest below its target share
		// of the frames dealt so far (counting the chunk being dealt, so the
		// very first deals also follow the weights).
		best, bestDeficit := 0, 0.0
		for d := range devs {
			chunk := p.Chunk
			if chunk <= 0 {
				chunk = devs[d].batch()
			}
			deficit := weights[d]/total*float64(next+chunk) - float64(counts[d])
			if d == 0 || deficit > bestDeficit {
				best, bestDeficit = d, deficit
			}
		}
		n := p.Chunk
		if n <= 0 {
			n = devs[best].batch()
		}
		end := next + n
		if end > frames {
			end = frames
		}
		out[best] = appendRange(out[best], Range{next, end})
		counts[best] += end - next
		next = end
	}
	return out
}

// Contiguous splits [0, frames) into one contiguous span per device, sized
// equally (remainder frames go to the leading devices). The layout with the
// fewest range boundaries — use Weighted when device speeds differ.
type Contiguous struct{}

// Name implements ShardPolicy.
func (p Contiguous) Name() string { return "contiguous" }

// Assign implements ShardPolicy.
func (p Contiguous) Assign(frames int, devs []DeviceSpec) [][]Range {
	if len(devs) == 0 {
		return nil
	}
	out := make([][]Range, len(devs))
	per, rem := frames/len(devs), frames%len(devs)
	next := 0
	for d := range devs {
		n := per
		if d < rem {
			n++
		}
		if n > 0 {
			out[d] = append(out[d], Range{next, next + n})
			next += n
		}
	}
	return out
}

// appendRange appends r, coalescing with the previous range when adjacent
// (a single-device round-robin degenerates to one contiguous range).
func appendRange(rs []Range, r Range) []Range {
	if n := len(rs); n > 0 && rs[n-1].End == r.Start {
		rs[n-1].End = r.End
		return rs
	}
	return append(rs, r)
}

// checkAssignment validates a policy's output: per-device ranges ordered and
// disjoint, and the union covering [0, frames) exactly once. The range count
// scales with the frame count (one-frame chunks under round-robin), so the
// disjointness check is a sort plus one linear sweep, not a pairwise scan.
func checkAssignment(frames int, devices int, asn [][]Range) error {
	if len(asn) != devices {
		return fmt.Errorf("runner: shard policy returned %d shard lists for %d devices", len(asn), devices)
	}
	covered := 0
	var all []Range
	for d, ranges := range asn {
		if err := checkRanges(ranges); err != nil {
			return fmt.Errorf("runner: device %d: %w", d, err)
		}
		for _, r := range ranges {
			if r.End > frames {
				return fmt.Errorf("runner: device %d assigned frames [%d,%d) beyond %d", d, r.Start, r.End, frames)
			}
			all = append(all, r)
			covered += r.Len()
		}
	}
	if covered != frames {
		return fmt.Errorf("runner: shard policy covered %d of %d frames", covered, frames)
	}
	// Equal totals plus disjointness imply exact cover; sorted bounds make
	// disjointness a single adjacent-pair sweep.
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].End {
			return fmt.Errorf("runner: shard ranges [%d,%d) and [%d,%d) overlap",
				all[i-1].Start, all[i-1].End, all[i].Start, all[i].End)
		}
	}
	return nil
}

// FleetWorkerFactory builds one worker for device dev (index into
// Fleet.Devices): the same contract as WorkerFactory, plus the device spec
// so the factory can attach the device's latency profile (or a per-device
// configuration under test) to its pipeline replica.
type FleetWorkerFactory func(dev int, spec DeviceSpec, mon *core.Monitor) (ProcessFunc, error)

// FleetBatchWorkerFactory builds one batch-aware worker for device dev.
type FleetBatchWorkerFactory func(dev int, spec DeviceSpec, mon *core.Monitor) (ProcessBatchFunc, error)

// FleetResult is one fleet replay's output.
type FleetResult struct {
	// Merged is the fleet-wide telemetry log in sequential record order
	// (nil with DiscardLogs). Byte-identical — modulo wall-clock latency
	// values — to a sequential replay of the same shard assignment.
	Merged *core.Log
	// DeviceLogs holds each device's shard log (records tagged with global
	// frame numbers), indexed like Fleet.Devices. Empty logs with
	// DiscardLogs — the telemetry then lives in the per-device sinks.
	DeviceLogs []*core.Log
	// Assignment is the shard assignment the policy produced, indexed like
	// Fleet.Devices.
	Assignment [][]Range
}

// Frames returns the number of frames assigned to device d.
func (r *FleetResult) Frames(d int) int {
	n := 0
	for _, rg := range r.Assignment[d] {
		n += rg.Len()
	}
	return n
}

// Replay shards frames 0..frames-1 across the fleet's devices and runs
// every device's shard concurrently through the per-device replay core,
// frame at a time. See ReplayBatched for the batched variant and the
// determinism contract.
func (f *Fleet) Replay(frames int, factory FleetWorkerFactory) (*FleetResult, error) {
	var bf FleetBatchWorkerFactory
	if factory != nil {
		bf = func(dev int, spec DeviceSpec, mon *core.Monitor) (ProcessBatchFunc, error) {
			process, err := factory(dev, spec, mon)
			if err != nil {
				return nil, err
			}
			return PerFrame(mon, process), nil
		}
	}
	return f.ReplayBatched(frames, bf)
}

// ReplayBatched shards frames 0..frames-1 across the fleet's devices; each
// device's workers process its shard in BatchFrames-sized dispatches (one
// batched interpreter invoke each, with a batch-aware worker). Per-device
// shard logs stream to the device sinks as frames merge in order;
// FleetResult.Merged is the fleet-wide sequential-order log.
func (f *Fleet) ReplayBatched(frames int, factory FleetBatchWorkerFactory) (*FleetResult, error) {
	if len(f.Devices) == 0 {
		return nil, fmt.Errorf("runner: fleet has no devices")
	}
	if frames < 0 {
		return nil, fmt.Errorf("runner: negative frame count %d", frames)
	}
	if f.DiscardLogs {
		for d, spec := range f.Devices {
			if spec.Sink == nil {
				return nil, fmt.Errorf("runner: DiscardLogs but device %d (%s) has no Sink", d, spec.Name())
			}
		}
	}
	policy := f.Policy
	if policy == nil {
		policy = Contiguous{}
	}
	asn := policy.Assign(frames, f.Devices)
	if err := checkAssignment(frames, len(f.Devices), asn); err != nil {
		return nil, fmt.Errorf("runner: policy %s: %w", policy.Name(), err)
	}

	logs := make([]*core.Log, len(f.Devices))
	errs := make([]error, len(f.Devices))
	var wg sync.WaitGroup
	for d := range f.Devices {
		if len(asn[d]) == 0 {
			// Starved device (e.g. Weighted with a very slow profile): no
			// frames means no workers — skip the pipeline construction.
			logs[d] = &core.Log{}
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			spec := f.Devices[d]
			opts := Options{
				Workers:        spec.workers(),
				BatchFrames:    spec.BatchFrames,
				MaxPending:     f.MaxPending,
				MonitorOptions: f.MonitorOptions,
				Sink:           spec.Sink,
				DiscardLog:     f.DiscardLogs,
			}
			logs[d], errs[d] = runShard(asn[d], func(mon *core.Monitor) (ProcessBatchFunc, error) {
				return factory(d, spec, mon)
			}, opts)
		}(d)
	}
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: device %d (%s): %w", d, f.Devices[d].Name(), err)
		}
	}
	res := &FleetResult{DeviceLogs: logs, Assignment: asn}
	if !f.DiscardLogs {
		res.Merged = core.MergeByFrame(logs...)
	}
	return res, nil
}

// ParseShardPolicy resolves a CLI policy name to its ShardPolicy.
func ParseShardPolicy(name string) (ShardPolicy, error) {
	switch name {
	case "contiguous":
		return Contiguous{}, nil
	case "round-robin":
		return RoundRobin{}, nil
	case "weighted":
		return Weighted{}, nil
	}
	return nil, fmt.Errorf("runner: unknown shard policy %q (want contiguous, round-robin or weighted)", name)
}

// ParseFleetSpec parses the CLI fleet syntax: comma-separated
// "profile:workers[:batch]" entries, e.g. "Pixel4:2,Pixel3:1:4" — two
// Pixel 4 workers at the default batch plus one Pixel 3 worker batching 4
// frames per invoke. Workers and batch must be positive; profile names
// resolve through device.ByName.
func ParseFleetSpec(spec string) ([]DeviceSpec, error) {
	var devs []DeviceSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("runner: empty fleet entry in %q", spec)
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("runner: fleet entry %q: want profile:workers[:batch]", entry)
		}
		prof, err := device.ByName(parts[0])
		if err != nil {
			return nil, fmt.Errorf("runner: fleet entry %q: %w", entry, err)
		}
		d := DeviceSpec{Profile: prof, Workers: 1, BatchFrames: 1}
		if len(parts) > 1 {
			d.Workers, err = strconv.Atoi(parts[1])
			if err != nil || d.Workers < 1 {
				return nil, fmt.Errorf("runner: fleet entry %q: workers must be a positive integer", entry)
			}
		}
		if len(parts) > 2 {
			d.BatchFrames, err = strconv.Atoi(parts[2])
			if err != nil || d.BatchFrames < 1 {
				return nil, fmt.Errorf("runner: fleet entry %q: batch must be a positive integer", entry)
			}
		}
		devs = append(devs, d)
	}
	return devs, nil
}
