// Package runner is the parallel replay engine: it shards a dataset replay
// across a pool of workers, each owning its own pipeline replica (its own
// interpreter arena) and its own core.Monitor shard, and merges the shard
// telemetry deterministically by frame index. The merged log is record-for-
// record identical to what a sequential replay would have produced (modulo
// wall-clock latency values, which no two runs share), so CompareLayers and
// the deployment validator see exactly the sequential result — replay is
// embarrassingly parallel across frames and this engine exploits that
// without giving up reproducibility.
//
// The flow:
//
//	frames ─► dispatcher ─► worker 0 (pipeline replica + monitor shard) ─┐
//	   ▲                ├─► worker 1 (pipeline replica + monitor shard) ─┤─► in-order
//	   │                └─► worker N (pipeline replica + monitor shard) ─┘    collector ─► Log / JSONL sink
//	   └──────────────── reorder-window credits (MaxPending) ◄───────────────────┘
//
// Two axes of batching compose with the worker pool:
//
//   - Dispatch batching (Options.BatchFrames): the dispatcher hands each
//     worker a contiguous [start,end) frame range instead of single frames,
//     amortizing the channel round-trip, shard positioning and drain across
//     the range.
//   - Execution batching (ReplayBatched + a batch-aware worker, e.g.
//     pipeline.BatchClassifier): the worker runs the whole range through one
//     batched interpreter invoke, amortizing per-node dispatch across B
//     frames. Per-frame record groups still come out identical to a
//     sequential run — the batched interpreter replays per-frame hook events
//     from sliced output views.
//
// Workers drain their monitor shard after every range, so shard buffers stay
// one range deep; with a FrameSink attached (and KeepLog false) the collector
// streams frames to disk as soon as they are in order. When the sink supports
// pre-encoding (core.FramePreEncoder — the JSONL sink does), workers also
// pre-marshal their frames' record lines, so the serial collector only patches
// sequence numbers and concatenates — full-capture JSONL encoding scales with
// the worker count instead of bottlenecking on the collector. The reorder
// window is bounded: at most Options.MaxPending frames may be dispatched and
// not yet flushed, so a single slow frame throttles dispatch instead of
// growing the window without limit — streaming million-frame replays hold
// flat memory.
//
// A third tier sits on top: the fleet scheduler (fleet.go) shards one frame
// range across several simulated devices, each running its shard through this
// same engine with its own worker pool and per-device shard log.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"mlexray/internal/core"
)

// ProcessFunc replays one dataset frame (0-based index) through the
// worker-local pipeline replica. The monitor shard handed to the factory is
// already positioned so the pipeline's NextFrame call tags records with the
// global frame number; a ProcessFunc that logs records MUST advance the
// frame exactly once via Monitor.NextFrame before logging (every pipeline
// type does this on entry) — the collector groups records by their frame
// tag and rejects records tagged outside the dispatched range.
type ProcessFunc func(frame int) error

// WorkerFactory builds one worker's state: given that worker's monitor
// shard, it returns the function that processes a frame on that worker.
// Factories run sequentially before any worker starts, so they may touch
// shared caches (zoo, resolvers) without synchronisation; the returned
// ProcessFuncs run concurrently and must only share read-only state.
type WorkerFactory func(mon *core.Monitor) (ProcessFunc, error)

// ProcessBatchFunc replays the contiguous frame range [start, end) through a
// worker-local (typically batched) pipeline replica. The monitor shard is
// positioned at start before the call; the function must advance the shard's
// frame counter exactly once per frame, in frame order, so every record
// lands in its frame's group.
type ProcessBatchFunc func(start, end int) error

// BatchWorkerFactory builds one batch-aware worker. Same sequencing
// guarantees as WorkerFactory.
type BatchWorkerFactory func(mon *core.Monitor) (ProcessBatchFunc, error)

// FrameSink receives frames strictly in increasing frame order, with record
// sequence numbers already globally renumbered. It is the core.Sink
// interface: core.JSONLSink streams JSONL logs to disk and core.BinarySink
// streams the length-prefixed binary format (core.NewLogSink picks by
// core.LogFormat). The replay engine never calls Flush — the sink's
// lifecycle stays with the caller.
type FrameSink = core.Sink

// Range is a half-open interval of dataset frames [Start, End). Shard
// policies express device assignments as ordered, disjoint range lists.
type Range struct{ Start, End int }

// Len returns the number of frames in the range.
func (r Range) Len() int { return r.End - r.Start }

// Options configures a replay.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. The merged output is
	// identical for every worker count.
	Workers int
	// BatchFrames is the number of consecutive frames handed to a worker
	// per dispatch; <= 1 dispatches frame at a time. The merged output is
	// identical for every batch size.
	BatchFrames int
	// MaxPending caps the reorder window: the maximum number of frames
	// dispatched but not yet flushed in order. When one slow frame holds
	// back the flush, dispatch blocks instead of buffering without bound.
	// <= 0 defaults to 4 × workers × batch; values below one batch are
	// raised to one batch so a batch can always be in flight.
	MaxPending int
	// MonitorOptions configure each worker's monitor shard (capture mode,
	// per-layer logging). All shards must be configured identically or the
	// merged log would depend on which worker processed which frame.
	MonitorOptions []core.MonitorOption
	// Sink, when set, receives frames in order as soon as they are
	// contiguous — the streaming path for replays too large to hold in
	// memory. Sinks implementing core.FramePreEncoder (the JSONL sink)
	// additionally move record marshaling onto the worker goroutines.
	Sink FrameSink
	// DiscardLog suppresses the in-memory merged log (Replay returns an
	// empty log). Only meaningful with a Sink; without one the records
	// would be lost.
	DiscardLog bool
}

func (o *Options) workers(frames int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if b := o.batch(); frames > 0 && w > (frames+b-1)/b {
		w = (frames + b - 1) / b
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o *Options) batch() int {
	if o.BatchFrames < 1 {
		return 1
	}
	return o.BatchFrames
}

func (o *Options) maxPending(workers int) int {
	b := o.batch()
	mp := o.MaxPending
	if mp <= 0 {
		mp = 4 * workers * b
	}
	if mp < b {
		// A full batch must fit in the window or the dispatcher could
		// never issue one.
		mp = b
	}
	return mp
}

// frameResult is one completed frame's telemetry en route to the collector.
type frameResult struct {
	// pos is the frame's position in the shard sequence (0-based across the
	// runner's ranges); frame is its global dataset index. For a whole-range
	// replay the two coincide.
	pos   int
	frame int
	recs  []core.Record
	// pre holds the worker-marshaled record lines when the sink supports
	// pre-encoding; the collector then only patches sequence numbers.
	pre    core.PreEncodedFrame
	hasPre bool
}

// Replay runs frames 0..frames-1 through the worker pool and returns the
// merged telemetry log (empty when DiscardLog is set). On error the first
// failure is returned and in-flight workers stop at the next frame boundary.
//
// With Options.BatchFrames > 1 the per-frame ProcessFunc still runs once per
// frame but dispatch overhead is amortized across the range; use
// ReplayBatched with a batch-aware worker to also batch the tensor compute.
func Replay(frames int, factory WorkerFactory, opts Options) (*core.Log, error) {
	var bf BatchWorkerFactory
	if factory != nil {
		bf = func(mon *core.Monitor) (ProcessBatchFunc, error) {
			process, err := factory(mon)
			if err != nil {
				return nil, err
			}
			return PerFrame(mon, process), nil
		}
	}
	return ReplayBatched(frames, bf, opts)
}

// PerFrame adapts a per-frame body to the ProcessBatchFunc range contract:
// each frame is re-positioned individually, because a ProcessFunc only
// advances the counter once and the range contract wants exact tags even if
// a frame logs nothing. Replay applies it internally; frame-at-a-time
// workers inside batch-oriented factories (fleet devices without a batched
// pipeline) use it directly.
func PerFrame(mon *core.Monitor, process ProcessFunc) ProcessBatchFunc {
	return func(start, end int) error {
		for g := start; g < end; g++ {
			mon.SetNextFrame(g + 1)
			if err := process(g); err != nil {
				return err
			}
		}
		return nil
	}
}

// ReplayBatched runs frames 0..frames-1 through the worker pool, handing
// each worker contiguous [start,end) ranges of Options.BatchFrames frames.
// The factory's ProcessBatchFunc owns the whole range (typically one batched
// interpreter invoke); the collector splits each range's drained records
// back into per-frame groups and merges them exactly as the per-frame
// engine would.
func ReplayBatched(frames int, factory BatchWorkerFactory, opts Options) (*core.Log, error) {
	if frames < 0 {
		return nil, fmt.Errorf("runner: negative frame count %d", frames)
	}
	return runShard([]Range{{0, frames}}, factory, opts)
}

// checkRanges validates a shard assignment slice: ranges must be ordered,
// disjoint and non-negative.
func checkRanges(ranges []Range) error {
	prev := 0
	for i, r := range ranges {
		if r.Start < 0 || r.End < r.Start {
			return fmt.Errorf("runner: invalid frame range [%d,%d)", r.Start, r.End)
		}
		if i > 0 && r.Start < prev {
			return fmt.Errorf("runner: frame range [%d,%d) overlaps or precedes [..,%d)", r.Start, r.End, prev)
		}
		prev = r.End
	}
	return nil
}

// runShard is the replay core shared by the single-device entry points
// (Replay/ReplayBatched over one [0,frames) range) and the fleet scheduler
// (one call per device, over that device's assigned ranges): a worker pool
// with per-worker monitor shards, a credit-bounded reorder window, and an
// in-order collector that renumbers sequence numbers across the shard and
// streams frames to the sink. Ranges must be ordered and disjoint; records
// keep their global frame tags, so shard logs from different devices merge
// with core.MergeByFrame into exactly the sequential record order.
func runShard(ranges []Range, factory BatchWorkerFactory, opts Options) (*core.Log, error) {
	if err := checkRanges(ranges); err != nil {
		return nil, err
	}
	if opts.DiscardLog && opts.Sink == nil {
		return nil, fmt.Errorf("runner: DiscardLog without a Sink would drop all telemetry")
	}
	frames := 0
	for _, r := range ranges {
		frames += r.Len()
	}
	nw := opts.workers(frames)
	batch := opts.batch()
	maxPending := opts.maxPending(nw)
	// Pre-encoding pays off by overlapping record marshaling across worker
	// goroutines; with a single worker there is nothing to overlap and the
	// extra staging buffer would only cost, so the collector encodes.
	var preEnc core.FramePreEncoder
	if nw > 1 {
		preEnc, _ = opts.Sink.(core.FramePreEncoder)
	}

	// Build all workers up front: factory errors surface before any
	// goroutine starts, and sequential construction lets factories share
	// caches safely.
	mons := make([]*core.Monitor, nw)
	procs := make([]ProcessBatchFunc, nw)
	for i := range mons {
		mons[i] = core.NewMonitor(opts.MonitorOptions...)
		p, err := factory(mons[i])
		if err != nil {
			return nil, fmt.Errorf("runner: worker %d: %w", i, err)
		}
		procs[i] = p
	}

	// A job is one dispatched frame range: [start,end) in global frame
	// indices, with pos the shard position of start (the collector's
	// ordering key — global indices are not contiguous within a fleet
	// shard).
	type job struct{ start, end, pos int }
	jobs := make(chan job)
	results := make(chan frameResult, nw)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	// credits is the reorder-window budget: the dispatcher takes one credit
	// per frame before sending a range, the collector returns one per frame
	// flushed in order. Dispatch therefore stalls as soon as maxPending
	// frames are in flight — the frame after a straggler is always either
	// executing or buffered, so progress is guaranteed.
	credits := make(chan struct{}, maxPending)
	for i := 0; i < maxPending; i++ {
		credits <- struct{}{}
	}

	go func() { // dispatcher
		defer close(jobs)
		pos := 0
		for _, rg := range ranges {
			for start := rg.Start; start < rg.End; start += batch {
				end := start + batch
				if end > rg.End {
					end = rg.End
				}
				for i := start; i < end; i++ {
					select {
					case <-credits:
					case <-stop:
						return
					}
				}
				select {
				case jobs <- job{start, end, pos}:
				case <-stop:
					return
				}
				pos += end - start
			}
		}
	}()

	var wg sync.WaitGroup
	workerErrs := make([]error, nw)
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mon, process := mons[i], procs[i]
			for j := range jobs {
				// Position the shard so the pipeline's NextFrame calls tag
				// records with global frame numbers (sequential runs number
				// frames 1..N).
				mon.SetNextFrame(j.start + 1)
				if err := process(j.start, j.end); err != nil {
					if j.end-j.start == 1 {
						workerErrs[i] = fmt.Errorf("runner: frame %d: %w", j.start, err)
					} else {
						workerErrs[i] = fmt.Errorf("runner: frames [%d,%d): %w", j.start, j.end, err)
					}
					cancel()
					return
				}
				groups, err := splitByFrame(j.start, j.end, mon.Drain())
				if err != nil {
					workerErrs[i] = err
					cancel()
					return
				}
				for g := j.start; g < j.end; g++ {
					fr := frameResult{pos: j.pos + (g - j.start), frame: g, recs: groups[g-j.start]}
					if preEnc != nil {
						// Marshal here, on the worker, so the serial
						// collector only patches seq numbers and appends.
						fr.pre, err = preEnc.PreEncodeFrame(fr.recs)
						if err != nil {
							workerErrs[i] = fmt.Errorf("runner: frame %d: %w", g, err)
							cancel()
							return
						}
						fr.hasPre = true
						if opts.DiscardLog {
							// The merged log is discarded, so the reorder
							// window need not hold the raw payloads on top
							// of their encoded lines.
							fr.recs = nil
						}
					}
					select {
					case results <- fr:
					case <-stop:
						return
					}
				}
			}
		}(i)
	}
	go func() { wg.Wait(); close(results) }()

	// In-order collector: a reorder window buffers frames that finished
	// ahead of a slower predecessor and releases them as soon as the
	// sequence is contiguous.
	merged := &core.Log{}
	pending := make(map[int]frameResult)
	next, seq := 0, 0
	var sinkErr error
	for fr := range results {
		pending[fr.pos] = fr
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			// Pre-encoded frames may have dropped their raw records
			// (DiscardLog), so the encoded line count is the seq authority.
			n := len(cur.recs)
			if cur.hasPre {
				n = cur.pre.Records()
			}
			for j := range cur.recs {
				cur.recs[j].Seq = seq + j
			}
			if opts.Sink != nil && sinkErr == nil {
				if cur.hasPre {
					sinkErr = preEnc.WritePreEncoded(cur.frame+1, cur.pre, seq)
				} else {
					sinkErr = opts.Sink.WriteFrame(cur.frame+1, cur.recs)
				}
				if sinkErr != nil {
					cancel()
				}
			}
			seq += n
			if !opts.DiscardLog {
				merged.Records = append(merged.Records, cur.recs...)
			}
			next++
			select {
			case credits <- struct{}{}:
			default:
				// Only reachable after a cancel already tore the flow down;
				// never under normal operation (releases ≤ acquisitions).
			}
		}
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("runner: sink: %w", sinkErr)
	}
	return merged, nil
}

// splitByFrame groups a drained record range back into per-frame groups.
// Monitors tag records with 1-based frame numbers; the range [start,end) is
// 0-based, so frame tag start+1 lands in group 0. A record tagged outside
// the range means the worker body advanced the frame counter out of
// contract, which would silently corrupt the merge — fail loudly instead.
func splitByFrame(start, end int, recs []core.Record) ([][]core.Record, error) {
	groups := make([][]core.Record, end-start)
	for _, r := range recs {
		g := r.Frame - 1 - start
		if g < 0 || g >= len(groups) {
			return nil, fmt.Errorf("runner: record %q tagged frame %d outside dispatched range [%d,%d)",
				r.Key, r.Frame, start+1, end+1)
		}
		groups[g] = append(groups[g], r)
	}
	return groups, nil
}
