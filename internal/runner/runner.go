// Package runner is the parallel replay engine: it shards a dataset replay
// across a pool of workers, each owning its own pipeline replica (its own
// interpreter arena) and its own core.Monitor shard, and merges the shard
// telemetry deterministically by frame index. The merged log is record-for-
// record identical to what a sequential replay would have produced (modulo
// wall-clock latency values, which no two runs share), so CompareLayers and
// the deployment validator see exactly the sequential result — replay is
// embarrassingly parallel across frames and this engine exploits that
// without giving up reproducibility.
//
// The flow:
//
//	frames ──► dispatcher ──► worker 0 (pipeline replica + monitor shard) ─┐
//	                     ├──► worker 1 (pipeline replica + monitor shard) ─┤──► in-order
//	                     └──► worker N (pipeline replica + monitor shard) ─┘    collector ──► Log / JSONL sink
//
// Workers drain their monitor shard after every frame, so shard buffers stay
// one frame deep; with a FrameSink attached (and KeepLog false) the collector
// streams frames to disk as soon as they are in order and a million-frame
// replay holds only the out-of-order reorder window in memory.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"mlexray/internal/core"
)

// ProcessFunc replays one dataset frame (0-based index) through the
// worker-local pipeline replica. The monitor shard handed to the factory is
// already positioned so the pipeline's NextFrame call tags records with the
// global frame number; a ProcessFunc must advance the frame exactly once
// (every pipeline type does this on entry).
type ProcessFunc func(frame int) error

// WorkerFactory builds one worker's state: given that worker's monitor
// shard, it returns the function that processes a frame on that worker.
// Factories run sequentially before any worker starts, so they may touch
// shared caches (zoo, resolvers) without synchronisation; the returned
// ProcessFuncs run concurrently and must only share read-only state.
type WorkerFactory func(mon *core.Monitor) (ProcessFunc, error)

// FrameSink receives frames strictly in increasing frame order, with record
// sequence numbers already globally renumbered. core.JSONLSink implements it
// for streaming logs to disk.
type FrameSink interface {
	WriteFrame(frame int, recs []core.Record) error
}

// Options configures a replay.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. The merged output is
	// identical for every worker count.
	Workers int
	// MonitorOptions configure each worker's monitor shard (capture mode,
	// per-layer logging). All shards must be configured identically or the
	// merged log would depend on which worker processed which frame.
	MonitorOptions []core.MonitorOption
	// Sink, when set, receives frames in order as soon as they are
	// contiguous — the streaming path for replays too large to hold in
	// memory.
	Sink FrameSink
	// DiscardLog suppresses the in-memory merged log (Replay returns an
	// empty log). Only meaningful with a Sink; without one the records
	// would be lost.
	DiscardLog bool
}

func (o *Options) workers(frames int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if frames > 0 && w > frames {
		w = frames
	}
	if w < 1 {
		w = 1
	}
	return w
}

// frameResult is one completed frame's telemetry en route to the collector.
type frameResult struct {
	frame int
	recs  []core.Record
}

// Replay runs frames 0..frames-1 through the worker pool and returns the
// merged telemetry log (empty when DiscardLog is set). On error the first
// failure is returned and in-flight workers stop at the next frame boundary.
func Replay(frames int, factory WorkerFactory, opts Options) (*core.Log, error) {
	if frames < 0 {
		return nil, fmt.Errorf("runner: negative frame count %d", frames)
	}
	if opts.DiscardLog && opts.Sink == nil {
		return nil, fmt.Errorf("runner: DiscardLog without a Sink would drop all telemetry")
	}
	nw := opts.workers(frames)

	// Build all workers up front: factory errors surface before any
	// goroutine starts, and sequential construction lets factories share
	// caches safely.
	mons := make([]*core.Monitor, nw)
	procs := make([]ProcessFunc, nw)
	for i := range mons {
		mons[i] = core.NewMonitor(opts.MonitorOptions...)
		p, err := factory(mons[i])
		if err != nil {
			return nil, fmt.Errorf("runner: worker %d: %w", i, err)
		}
		procs[i] = p
	}

	jobs := make(chan int)
	results := make(chan frameResult, nw)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	go func() { // dispatcher
		defer close(jobs)
		for g := 0; g < frames; g++ {
			select {
			case jobs <- g:
			case <-stop:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	workerErrs := make([]error, nw)
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mon, process := mons[i], procs[i]
			for g := range jobs {
				// Position the shard so the pipeline's NextFrame tags
				// records with the global frame number (sequential runs
				// number frames 1..N).
				mon.SetNextFrame(g + 1)
				if err := process(g); err != nil {
					workerErrs[i] = fmt.Errorf("runner: frame %d: %w", g, err)
					cancel()
					return
				}
				select {
				case results <- frameResult{frame: g, recs: mon.Drain()}:
				case <-stop:
					return
				}
			}
		}(i)
	}
	go func() { wg.Wait(); close(results) }()

	// In-order collector: a reorder window buffers frames that finished
	// ahead of a slower predecessor and releases them as soon as the
	// sequence is contiguous.
	merged := &core.Log{}
	pending := make(map[int][]core.Record)
	next, seq := 0, 0
	var sinkErr error
	for fr := range results {
		pending[fr.frame] = fr.recs
		for {
			recs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for j := range recs {
				recs[j].Seq = seq
				seq++
			}
			if opts.Sink != nil && sinkErr == nil {
				if sinkErr = opts.Sink.WriteFrame(next+1, recs); sinkErr != nil {
					cancel()
				}
			}
			if !opts.DiscardLog {
				merged.Records = append(merged.Records, recs...)
			}
			next++
		}
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("runner: sink: %w", sinkErr)
	}
	return merged, nil
}
