package runner

import (
	"bytes"
	"strings"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/imaging"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

// fleetDevices is the heterogeneous test fleet: three distinct profiles
// with different worker counts and batch sizes, so every composition axis
// (device × workers × dispatch batching × execution batching) is exercised
// at once.
func fleetDevices() []DeviceSpec {
	return []DeviceSpec{
		{Profile: device.Pixel4(), Workers: 2, BatchFrames: 4},
		{Profile: device.Pixel3(), Workers: 1, BatchFrames: 1},
		{Profile: device.EmulatorX86(), Workers: 2, BatchFrames: 2},
	}
}

// ownerOf inverts a shard assignment: frame -> device index.
func ownerOf(t *testing.T, frames int, asn [][]Range) []int {
	t.Helper()
	owner := make([]int, frames)
	for i := range owner {
		owner[i] = -1
	}
	for d, ranges := range asn {
		for _, r := range ranges {
			for g := r.Start; g < r.End; g++ {
				if owner[g] != -1 {
					t.Fatalf("frame %d assigned to devices %d and %d", g, owner[g], d)
				}
				owner[g] = d
			}
		}
	}
	for g, d := range owner {
		if d == -1 {
			t.Fatalf("frame %d unassigned", g)
		}
	}
	return owner
}

// sequentialFleetLog replays the frames in order through one shared
// monitor, routing each frame to the classifier of its assigned device —
// the single-threaded ground truth the fleet engine must reproduce.
func sequentialFleetLog(t *testing.T, devs []DeviceSpec, owner []int, frames int) *core.Log {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, frames)
	mon := core.NewMonitor(monOpts...)
	cls := make([]*pipeline.Classifier, len(devs))
	for d, spec := range devs {
		cls[d], err = pipeline.NewClassifier(entry.Mobile, pipeline.Options{
			Resolver: ops.NewOptimized(ops.Fixed()), Device: spec.Profile, Monitor: mon,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < frames; g++ {
		if _, _, err := cls[owner[g]].Classify(samples[g].Image); err != nil {
			t.Fatal(err)
		}
	}
	return mon.Log()
}

// fleetLog replays the same frames through the fleet scheduler.
func fleetLog(t *testing.T, fleet *Fleet, frames int) *FleetResult {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, frames)
	res, err := fleet.ReplayBatched(frames, func(dev int, spec DeviceSpec, mon *core.Monitor) (ProcessBatchFunc, error) {
		popts := pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed()), Device: spec.Profile, Monitor: mon}
		if spec.BatchFrames > 1 {
			bc, err := pipeline.NewBatchClassifier(entry.Mobile, spec.BatchFrames, popts)
			if err != nil {
				return nil, err
			}
			return func(start, end int) error {
				imgs := make([]*imaging.Image, end-start)
				for i := range imgs {
					imgs[i] = samples[start+i].Image
				}
				_, err := bc.ClassifyBatch(imgs)
				return err
			}, nil
		}
		cl, err := pipeline.NewClassifier(entry.Mobile, popts)
		if err != nil {
			return nil, err
		}
		return PerFrame(mon, func(g int) error {
			_, _, err := cl.Classify(samples[g].Image)
			return err
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetMatchesSequentialAssignment is the fleet determinism contract
// (and the tentpole acceptance criterion): for every shard policy, the
// merge of the per-device shard logs is byte-identical — after wall-clock
// normalization — to a sequential replay routing each frame through its
// assigned device's pipeline.
func TestFleetMatchesSequentialAssignment(t *testing.T) {
	const frames = 12
	for _, policy := range []ShardPolicy{RoundRobin{}, Weighted{}, Contiguous{}, RoundRobin{Chunk: 3}} {
		t.Run(policy.Name(), func(t *testing.T) {
			devs := fleetDevices()
			fleet := &Fleet{Devices: devs, Policy: policy, MonitorOptions: monOpts}
			res := fleetLog(t, fleet, frames)
			owner := ownerOf(t, frames, res.Assignment)

			seq := sequentialFleetLog(t, devs, owner, frames)
			normalizeWallClock(seq)
			want := logBytes(t, seq)

			merged := core.MergeByFrame(res.DeviceLogs...)
			normalizeWallClock(merged)
			if got := logBytes(t, merged); !bytes.Equal(got, want) {
				t.Errorf("merged device shard logs differ from sequential replay (%d vs %d bytes)", len(got), len(want))
			}
			normalizeWallClock(res.Merged)
			if got := logBytes(t, res.Merged); !bytes.Equal(got, want) {
				t.Errorf("FleetResult.Merged differs from sequential replay (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestFleetPerDeviceSinks checks that per-device sinks stream exactly each
// device's shard log.
func TestFleetPerDeviceSinks(t *testing.T) {
	const frames = 8
	devs := fleetDevices()
	bufs := make([]bytes.Buffer, len(devs))
	sinks := make([]*core.JSONLSink, len(devs))
	for d := range devs {
		sinks[d] = core.NewJSONLSink(&bufs[d])
		devs[d].Sink = sinks[d]
	}
	fleet := &Fleet{Devices: devs, Policy: RoundRobin{}, MonitorOptions: monOpts}
	res := fleetLog(t, fleet, frames)
	for d := range devs {
		if err := sinks[d].Flush(); err != nil {
			t.Fatal(err)
		}
		if got, want := sinks[d].Records(), len(res.DeviceLogs[d].Records); got != want {
			t.Errorf("device %d sink wrote %d records, shard log has %d", d, got, want)
		}
		if !bytes.Equal(bufs[d].Bytes(), logBytes(t, res.DeviceLogs[d])) {
			t.Errorf("device %d streamed shard log differs from in-memory shard log", d)
		}
		readBack, err := core.ReadJSONL(bytes.NewReader(bufs[d].Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(readBack.Records) != len(res.DeviceLogs[d].Records) {
			t.Errorf("device %d sink log reads back %d records, want %d", d, len(readBack.Records), len(res.DeviceLogs[d].Records))
		}
	}
}

// TestShardPolicies pins the assignment shapes: full disjoint cover for
// every policy, interleaving for round-robin, throughput-proportional
// shares for weighted, single spans for contiguous.
func TestShardPolicies(t *testing.T) {
	devs := []DeviceSpec{
		{Profile: device.Pixel4GPU(), Workers: 1, BatchFrames: 2},
		{Profile: device.EmulatorX86(), Workers: 1, BatchFrames: 2},
	}
	const frames = 64

	for _, policy := range []ShardPolicy{RoundRobin{}, Weighted{}, Contiguous{}} {
		asn := policy.Assign(frames, devs)
		if err := checkAssignment(frames, len(devs), asn); err != nil {
			t.Errorf("%s: invalid assignment: %v", policy.Name(), err)
		}
	}

	// Weighted: the GPU profile models far higher throughput than the x86
	// emulator, so it must take the bulk of the frames.
	asn := Weighted{}.Assign(frames, devs)
	gpu, emu := 0, 0
	for _, r := range asn[0] {
		gpu += r.Len()
	}
	for _, r := range asn[1] {
		emu += r.Len()
	}
	if gpu <= emu {
		t.Errorf("weighted policy gave the GPU %d frames and the emulator %d; want GPU > emulator", gpu, emu)
	}

	// RoundRobin alternates chunks: both devices get about half, in more
	// than one range each.
	asn = RoundRobin{}.Assign(frames, devs)
	if len(asn[0]) < 2 || len(asn[1]) < 2 {
		t.Errorf("round-robin produced %d and %d ranges; want interleaving", len(asn[0]), len(asn[1]))
	}

	// Contiguous: one span per device.
	asn = Contiguous{}.Assign(frames, devs)
	for d, ranges := range asn {
		if len(ranges) != 1 {
			t.Errorf("contiguous device %d has %d ranges, want 1", d, len(ranges))
		}
	}
}

// TestFleetErrors covers the loud-failure paths: empty fleet, negative
// frames, DiscardLogs without sinks, and a policy that loses frames.
func TestFleetErrors(t *testing.T) {
	noop := func(dev int, spec DeviceSpec, mon *core.Monitor) (ProcessFunc, error) {
		return func(int) error { return nil }, nil
	}
	if _, err := (&Fleet{}).Replay(4, noop); err == nil || !strings.Contains(err.Error(), "no devices") {
		t.Errorf("empty fleet: %v", err)
	}
	fleet := &Fleet{Devices: []DeviceSpec{{Profile: device.Pixel4()}}}
	if _, err := fleet.Replay(-1, noop); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative frames: %v", err)
	}
	bad := &Fleet{Devices: []DeviceSpec{{Profile: device.Pixel4()}}, Policy: dropPolicy{}}
	if _, err := bad.Replay(4, noop); err == nil || !strings.Contains(err.Error(), "covered") {
		t.Errorf("lossy policy: %v", err)
	}
	discard := &Fleet{Devices: []DeviceSpec{{Profile: device.Pixel4()}}, DiscardLogs: true}
	if _, err := discard.Replay(4, noop); err == nil || !strings.Contains(err.Error(), "Sink") {
		t.Errorf("DiscardLogs without sink: %v", err)
	}
}

// dropPolicy loses the last frame — checkAssignment must reject it.
type dropPolicy struct{}

func (dropPolicy) Name() string { return "drop" }
func (dropPolicy) Assign(frames int, devs []DeviceSpec) [][]Range {
	out := make([][]Range, len(devs))
	if frames > 1 {
		out[0] = []Range{{0, frames - 1}}
	}
	return out
}

func TestParseFleetSpec(t *testing.T) {
	devs, err := ParseFleetSpec("Pixel4:2,Pixel3:1:4, Emulator-x86")
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 3 {
		t.Fatalf("parsed %d devices, want 3", len(devs))
	}
	if devs[0].Profile.Name != "Pixel4" || devs[0].Workers != 2 || devs[0].BatchFrames != 1 {
		t.Errorf("entry 0 = %+v", devs[0])
	}
	if devs[1].Profile.Name != "Pixel3" || devs[1].Workers != 1 || devs[1].BatchFrames != 4 {
		t.Errorf("entry 1 = %+v", devs[1])
	}
	if devs[2].Profile.Name != "Emulator-x86" || devs[2].Workers != 1 {
		t.Errorf("entry 2 = %+v", devs[2])
	}
	for _, bad := range []string{"", "NoSuchDevice:1", "Pixel4:0", "Pixel4:-2", "Pixel4:1:0", "Pixel4:1:2:3", "Pixel4:x"} {
		if _, err := ParseFleetSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}
