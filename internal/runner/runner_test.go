package runner

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

const testFrames = 6

var monOpts = []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}

// sequentialLog replays the samples the way the pre-runner code did: one
// pipeline, one monitor, frames in order.
func sequentialLog(t testing.TB, bug pipeline.Bug, resolver *ops.Resolver) *core.Log {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	mon := core.NewMonitor(monOpts...)
	cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: resolver, Monitor: mon, Bug: bug})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range datasets.SynthImageNet(5555, testFrames) {
		if _, _, err := cl.Classify(s.Image); err != nil {
			t.Fatal(err)
		}
	}
	return mon.Log()
}

// parallelLog replays the same samples through the worker pool.
func parallelLog(t testing.TB, bug pipeline.Bug, resolver *ops.Resolver, workers int, sink FrameSink, discard bool) *core.Log {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, testFrames)
	base, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: resolver, Bug: bug})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Replay(len(samples), func(mon *core.Monitor) (ProcessFunc, error) {
		cl, err := base.Clone(mon)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			_, _, err := cl.Classify(samples[i].Image)
			return err
		}, nil
	}, Options{Workers: workers, MonitorOptions: monOpts, Sink: sink, DiscardLog: discard})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// normalizeWallClock zeroes wall-clock latency values ("ns" unit), the only
// record content that legitimately differs between two runs — even two
// sequential ones.
func normalizeWallClock(l *core.Log) {
	for i := range l.Records {
		if l.Records[i].Kind == core.KindMetric && l.Records[i].Unit == "ns" {
			l.Records[i].Value = 0
		}
	}
}

func logBytes(t testing.TB, l *core.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayMatchesSequential is the determinism contract: for any worker
// count, the merged log is byte-identical to a sequential replay after
// wall-clock normalization.
func TestReplayMatchesSequential(t *testing.T) {
	seq := sequentialLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()))
	normalizeWallClock(seq)
	want := logBytes(t, seq)
	for _, workers := range []int{1, 2, 8} {
		par := parallelLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), workers, nil, false)
		normalizeWallClock(par)
		if got := logBytes(t, par); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: merged log differs from sequential (%d vs %d bytes)", workers, len(got), len(want))
		}
	}
}

// TestReplayValidatorIdentical feeds sequential and parallel reference logs
// to the full validation flow against the same bugged edge log: CompareLayers
// and the rendered report must be byte-identical.
func TestReplayValidatorIdentical(t *testing.T) {
	edge := sequentialLog(t, pipeline.BugNormalization, ops.NewOptimized(ops.Fixed()))
	refSeq := sequentialLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()))
	normalizeWallClock(edge)
	normalizeWallClock(refSeq)

	wantDiffs, err := core.CompareLayers(edge, refSeq)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := core.Validate(edge, refSeq, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	wantRep.Render(&wantBuf)

	for _, workers := range []int{1, 2, 8} {
		refPar := parallelLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), workers, nil, false)
		normalizeWallClock(refPar)
		gotDiffs, err := core.CompareLayers(edge, refPar)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotDiffs, wantDiffs) {
			t.Errorf("workers=%d: CompareLayers output differs from sequential", workers)
		}
		gotRep, err := core.Validate(edge, refPar, core.DefaultValidateOptions())
		if err != nil {
			t.Fatal(err)
		}
		var gotBuf bytes.Buffer
		gotRep.Render(&gotBuf)
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			t.Errorf("workers=%d: validator report differs:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, wantBuf.String(), gotBuf.String())
		}
	}
}

// TestReplayMaxPendingBoundsWindow pins the reorder-window cap: with frame 0
// stalled, at most MaxPending frames may enter processing before the flush
// releases credits.
func TestReplayMaxPendingBoundsWindow(t *testing.T) {
	const frames = 60
	const maxPending = 8
	var started, flushed atomic.Int64
	var worst atomic.Int64
	sink := sinkFunc(func(frame int, recs []core.Record) error {
		flushed.Add(1)
		return nil
	})
	l, err := Replay(frames, func(mon *core.Monitor) (ProcessFunc, error) {
		return func(i int) error {
			inFlight := started.Add(1) - flushed.Load()
			for {
				w := worst.Load()
				if inFlight <= w || worst.CompareAndSwap(w, inFlight) {
					break
				}
			}
			if i == 0 {
				time.Sleep(50 * time.Millisecond) // the straggler everyone else outruns
			}
			mon.NextFrame()
			mon.LogMetric("frame/value", float64(i), "count")
			return nil
		}, nil
	}, Options{Workers: 4, MaxPending: maxPending, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != frames {
		t.Fatalf("%d records for %d frames", len(l.Records), frames)
	}
	if w := worst.Load(); w > maxPending {
		t.Errorf("reorder window reached %d in-flight frames, cap is %d", w, maxPending)
	}
	// The cap must throttle, not deadlock: everything flushed.
	if f := flushed.Load(); f != frames {
		t.Errorf("flushed %d of %d frames", f, frames)
	}
}

type sinkFunc func(frame int, recs []core.Record) error

func (f sinkFunc) WriteFrame(frame int, recs []core.Record) error { return f(frame, recs) }

func (f sinkFunc) Flush() error { return nil }

// TestReplayBatchedFrameTagContract verifies the loud failure when a batch
// worker mis-tags frames (the silent-corruption class of bug).
func TestReplayBatchedFrameTagContract(t *testing.T) {
	_, err := ReplayBatched(8, func(mon *core.Monitor) (ProcessBatchFunc, error) {
		return func(start, end int) error {
			for g := start; g < end; g++ {
				mon.NextFrame()
				mon.NextFrame() // skips ahead: tags drift out of the range
				mon.LogMetric("x", 1, "count")
			}
			return nil
		}, nil
	}, Options{Workers: 2, BatchFrames: 4})
	if err == nil || !strings.Contains(err.Error(), "outside dispatched range") {
		t.Fatalf("want frame-tag contract error, got %v", err)
	}
}

// TestReplayStreamingSink checks that the streaming path writes exactly the
// merged log, and that DiscardLog keeps the returned log empty.
func TestReplayStreamingSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := core.NewJSONLSink(f)
	merged := parallelLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), 4, sink, false)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Records() != len(merged.Records) {
		t.Fatalf("sink wrote %d records, merged log has %d", sink.Records(), len(merged.Records))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, logBytes(t, merged)) {
		t.Error("streamed JSONL differs from the merged in-memory log")
	}

	// Discard path: telemetry only reaches the sink.
	var buf bytes.Buffer
	sink2 := core.NewJSONLSink(&buf)
	empty := parallelLog(t, pipeline.BugNone, ops.NewReference(ops.Fixed()), 4, sink2, true)
	if err := sink2.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(empty.Records) != 0 {
		t.Errorf("DiscardLog returned %d records", len(empty.Records))
	}
	readBack, err := core.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(readBack.Records) != len(merged.Records) {
		t.Errorf("discarded replay streamed %d records, want %d", len(readBack.Records), len(merged.Records))
	}
}

func TestReplayErrorStopsPool(t *testing.T) {
	boom := fmt.Errorf("injected failure")
	_, err := Replay(64, func(mon *core.Monitor) (ProcessFunc, error) {
		return func(i int) error {
			if i == 3 {
				return boom
			}
			mon.NextFrame()
			mon.LogMetric("test/metric", float64(i), "count")
			return nil
		}, nil
	}, Options{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "frame 3") {
		t.Fatalf("want frame-3 error, got %v", err)
	}
}

func TestReplayFactoryError(t *testing.T) {
	boom := fmt.Errorf("no pipeline for you")
	_, err := Replay(4, func(mon *core.Monitor) (ProcessFunc, error) {
		return nil, boom
	}, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "no pipeline") {
		t.Fatalf("want factory error, got %v", err)
	}
}

func TestReplayEdgeCases(t *testing.T) {
	l, err := Replay(0, func(mon *core.Monitor) (ProcessFunc, error) {
		return func(int) error { return nil }, nil
	}, Options{Workers: 4})
	if err != nil || len(l.Records) != 0 {
		t.Fatalf("zero frames: log=%v err=%v", l, err)
	}
	if _, err := Replay(-1, nil, Options{}); err == nil {
		t.Fatal("negative frames should error")
	}
	if _, err := Replay(1, nil, Options{DiscardLog: true}); err == nil {
		t.Fatal("DiscardLog without sink should error")
	}
}

// TestMergeByFrameMatchesReplay pins the two expressions of the merge
// contract to each other: hand-sharding frames across monitors and calling
// core.MergeByFrame must yield byte-identical output to Replay's streaming
// collector over the same frames.
func TestMergeByFrameMatchesReplay(t *testing.T) {
	const n = 10
	record := func(mon *core.Monitor, i int) {
		mon.SetNextFrame(i + 1)
		mon.NextFrame()
		mon.LogMetric("frame/value", float64(i*3), "count")
		mon.LogSensor("frame/sensor", float64(i), "deg")
	}
	monA, monB := core.NewMonitor(), core.NewMonitor()
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			record(monA, i)
		} else {
			record(monB, i)
		}
	}
	manual := core.MergeByFrame(monA.Log(), monB.Log())

	viaReplay, err := Replay(n, func(mon *core.Monitor) (ProcessFunc, error) {
		return func(i int) error {
			mon.NextFrame() // Replay pre-seeks the shard; same frame tags
			mon.LogMetric("frame/value", float64(i*3), "count")
			mon.LogSensor("frame/sensor", float64(i), "deg")
			return nil
		}, nil
	}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(logBytes(t, manual), logBytes(t, viaReplay)) {
		t.Error("MergeByFrame and Replay's collector disagree on the merge contract")
	}
}

// TestReplayCustomProcessFunc exercises a non-pipeline worker: process funcs
// that log directly against the shard monitor still merge deterministically.
func TestReplayCustomProcessFunc(t *testing.T) {
	run := func(workers int) *core.Log {
		l, err := Replay(40, func(mon *core.Monitor) (ProcessFunc, error) {
			return func(i int) error {
				mon.NextFrame()
				mon.LogMetric("frame/value", float64(i*i), "count")
				mon.LogSensor("frame/sensor", float64(i), "deg")
				return nil
			}, nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	want := logBytes(t, run(1))
	for _, w := range []int{2, 8} {
		if got := logBytes(t, run(w)); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: custom replay not deterministic", w)
		}
	}
	// Frames are numbered 1..40 (sequential NextFrame convention), so
	// Frames() — max frame + 1 — reports 41, exactly as a sequential run.
	l := run(3)
	if got := l.Frames(); got != 41 {
		t.Errorf("Frames() = %d, want 41", got)
	}
	for i, r := range l.Records {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}
