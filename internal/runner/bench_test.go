package runner

import (
	"runtime"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

const benchFrames = 32

// benchPipeline builds the replay workload: full per-layer capture of the
// MobileNet-v2 classifier, the configuration the offline validation sweeps
// use.
func benchSamples(b *testing.B) ([]datasets.ImageSample, *pipeline.Classifier) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	base, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		b.Fatal(err)
	}
	return datasets.SynthImageNet(5555, benchFrames), base
}

// BenchmarkReplaySequential is the baseline: one pipeline, one monitor,
// frames in order — the pre-runner replay path.
func BenchmarkReplaySequential(b *testing.B) {
	samples, base := benchSamples(b)
	b.ReportMetric(float64(benchFrames), "frames/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := core.NewMonitor(monOpts...)
		cl, err := base.Clone(mon)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range samples {
			if _, _, err := cl.Classify(s.Image); err != nil {
				b.Fatal(err)
			}
		}
		if got := len(mon.Log().Records); got == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkReplayParallel shards the same replay across GOMAXPROCS workers.
// On a multi-core host throughput scales with roughly the core count; on a
// single core it matches the sequential baseline (the scheduler overhead is
// per-frame, and a frame is a full model inference).
func BenchmarkReplayParallel(b *testing.B) {
	samples, base := benchSamples(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(benchFrames), "frames/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Replay(len(samples), func(mon *core.Monitor) (ProcessFunc, error) {
			cl, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(j int) error {
				_, _, err := cl.Classify(samples[j].Image)
				return err
			}, nil
		}, Options{Workers: workers, MonitorOptions: monOpts})
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) == 0 {
			b.Fatal("no records")
		}
	}
}
