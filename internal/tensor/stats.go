package tensor

import (
	"fmt"
	"math"
)

// Stats summarises a tensor's value distribution. It is the payload of
// "stats-only" telemetry records, which keep the runtime logging overhead at
// the paper's reported 0.41 KB/frame instead of shipping full tensors.
type Stats struct {
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	RMS  float64 `json:"rms"`
	N    int     `json:"n"`
}

// ComputeStats scans the tensor once and returns its Stats. Quantized
// tensors report raw integer values.
func ComputeStats(t *Tensor) Stats {
	n := t.Len()
	if n == 0 {
		return Stats{}
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := t.flat(i)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
		sumSq += v * v
	}
	return Stats{
		Min:  mn,
		Max:  mx,
		Mean: sum / float64(n),
		RMS:  math.Sqrt(sumSq / float64(n)),
		N:    n,
	}
}

// Range returns max-min, the "layer output scale" used by the paper to
// normalize per-layer rMSE.
func (s Stats) Range() float64 { return s.Max - s.Min }

// RMSE returns the root-mean-square error between two equal-length tensors,
// evaluated in float64. The tensors may have different dtypes (e.g. a
// dequantized edge output versus a float reference); both are widened.
func RMSE(a, b *Tensor) (float64, error) {
	if a.Len() != b.Len() {
		return 0, fmt.Errorf("tensor: RMSE length mismatch %v vs %v", a.Shape, b.Shape)
	}
	n := a.Len()
	if n == 0 {
		return 0, nil
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := a.flat(i) - b.flat(i)
		sum += d * d
	}
	return math.Sqrt(sum / float64(n)), nil
}

// NormalizedRMSE implements the paper's per-layer drift metric
// (§3.4): rMSE(a, b) normalized by the reference tensor's value range
// max(e)-min(e). A degenerate (constant) reference yields the raw rMSE so a
// drift against a flat-lined layer is still visible rather than dividing by
// zero.
func NormalizedRMSE(edge, ref *Tensor) (float64, error) {
	rmse, err := RMSE(edge, ref)
	if err != nil {
		return 0, err
	}
	rng := ComputeStats(ref).Range()
	if rng <= 0 {
		return rmse, nil
	}
	return rmse / rng, nil
}

// MaxAbsDiff returns the maximum absolute element-wise difference, an
// alternative error function the framework's ablation compares against
// normalized rMSE.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if a.Len() != b.Len() {
		return 0, fmt.Errorf("tensor: MaxAbsDiff length mismatch %v vs %v", a.Shape, b.Shape)
	}
	var m float64
	for i := 0; i < a.Len(); i++ {
		d := math.Abs(a.flat(i) - b.flat(i))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// AllClose reports whether every pair of elements differs by at most
// atol + rtol*|b|. It mirrors numpy's allclose, which the paper's example
// assertion functions are written with.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.flat(i), b.flat(i)
		if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
			return false
		}
	}
	return true
}
