// Package tensor provides the dense n-dimensional array type used by every
// other module in this repository: the inference engine, the training
// substrate, the preprocessing libraries and the validation framework.
//
// Tensors are row-major. Convolutional data uses NHWC layout ([batch,
// height, width, channel]) to match the TensorFlow Lite convention the paper
// targets. Four element types are supported: float32 for reference and
// "mobile" float models, uint8 for quantized activations, int8 for quantized
// weights, and int32 for biases and integer inputs such as token ids.
package tensor

import (
	"fmt"
	"math"
)

// DType enumerates the element types a Tensor can hold.
type DType int

const (
	F32 DType = iota // float32
	U8               // uint8 (quantized activations)
	I8               // int8 (quantized weights)
	I32              // int32 (biases, token ids, labels)
)

// String returns the TFLite-style lowercase name of the dtype.
func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case U8:
		return "u8"
	case I8:
		return "i8"
	case I32:
		return "i32"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Size returns the width of one element in bytes.
func (d DType) Size() int {
	switch d {
	case F32, I32:
		return 4
	default:
		return 1
	}
}

// ParseDType is the inverse of DType.String. It reports an error for
// unknown names so that log files with corrupted dtype fields fail loudly.
func ParseDType(s string) (DType, error) {
	switch s {
	case "f32":
		return F32, nil
	case "u8":
		return U8, nil
	case "i8":
		return I8, nil
	case "i32":
		return I32, nil
	}
	return F32, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Tensor is a dense row-major n-dimensional array. Exactly one of the data
// slices is non-nil, selected by DType. The zero value is not usable; use
// New or one of the typed constructors.
type Tensor struct {
	DType DType
	Shape []int

	F []float32
	U []uint8
	I []int8
	X []int32
}

// NumElems returns the product of dims. An empty shape denotes a scalar and
// has one element.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// New allocates a zero-filled tensor of the given dtype and shape.
func New(dt DType, shape ...int) *Tensor {
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim in shape %v", shape))
		}
	}
	t := &Tensor{DType: dt, Shape: append([]int(nil), shape...)}
	n := NumElems(shape)
	switch dt {
	case F32:
		t.F = make([]float32, n)
	case U8:
		t.U = make([]uint8, n)
	case I8:
		t.I = make([]int8, n)
	case I32:
		t.X = make([]int32, n)
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %v", dt))
	}
	return t
}

// FromFloats wraps (does not copy) a float32 slice as a tensor. The slice
// length must match the shape.
func FromFloats(data []float32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(data), shape))
	}
	return &Tensor{DType: F32, Shape: append([]int(nil), shape...), F: data}
}

// FromBytes wraps a uint8 slice as a tensor.
func FromBytes(data []uint8, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(data), shape))
	}
	return &Tensor{DType: U8, Shape: append([]int(nil), shape...), U: data}
}

// FromInt8 wraps an int8 slice as a tensor.
func FromInt8(data []int8, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(data), shape))
	}
	return &Tensor{DType: I8, Shape: append([]int(nil), shape...), I: data}
}

// FromInt32 wraps an int32 slice as a tensor.
func FromInt32(data []int32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(data), shape))
	}
	return &Tensor{DType: I32, Shape: append([]int(nil), shape...), X: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return NumElems(t.Shape) }

// Bytes returns the storage footprint of the element data in bytes.
func (t *Tensor) Bytes() int { return t.Len() * t.DType.Size() }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns dimension i, supporting negative indices from the end.
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	return t.Shape[i]
}

// SameShape reports whether two shapes are identical.
func SameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShapeString renders a shape like "[1 32 32 3]".
func ShapeString(shape []int) string { return fmt.Sprint(shape) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{DType: t.DType, Shape: append([]int(nil), t.Shape...)}
	switch t.DType {
	case F32:
		c.F = append([]float32(nil), t.F...)
	case U8:
		c.U = append([]uint8(nil), t.U...)
	case I8:
		c.I = append([]int8(nil), t.I...)
	case I32:
		c.X = append([]int32(nil), t.X...)
	}
	return c
}

// Reshape returns a view sharing the same storage with a new shape. The
// element count must be preserved. One dimension may be -1, in which case it
// is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in Reshape")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || t.Len()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = t.Len() / known
	}
	if NumElems(shape) != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes element count", t.Shape, shape))
	}
	return &Tensor{DType: t.DType, Shape: shape, F: t.F, U: t.U, I: t.I, X: t.X}
}

// At returns element value at the given multi-index as float64, regardless
// of dtype. Intended for tests and diagnostics, not hot loops.
func (t *Tensor) At(idx ...int) float64 {
	off := t.Offset(idx...)
	switch t.DType {
	case F32:
		return float64(t.F[off])
	case U8:
		return float64(t.U[off])
	case I8:
		return float64(t.I[off])
	case I32:
		return float64(t.X[off])
	}
	panic("tensor: bad dtype")
}

// SetAt stores a float64 value at the given multi-index, casting to the
// tensor's dtype. Intended for tests and diagnostics.
func (t *Tensor) SetAt(v float64, idx ...int) {
	off := t.Offset(idx...)
	switch t.DType {
	case F32:
		t.F[off] = float32(v)
	case U8:
		t.U[off] = uint8(v)
	case I8:
		t.I[off] = int8(v)
	case I32:
		t.X[off] = int32(v)
	}
}

// Offset converts a multi-index into a flat row-major offset, with bounds
// checking.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v (cast to the tensor's dtype).
func (t *Tensor) Fill(v float64) {
	switch t.DType {
	case F32:
		f := float32(v)
		for i := range t.F {
			t.F[i] = f
		}
	case U8:
		u := uint8(v)
		for i := range t.U {
			t.U[i] = u
		}
	case I8:
		s := int8(v)
		for i := range t.I {
			t.I[i] = s
		}
	case I32:
		x := int32(v)
		for i := range t.X {
			t.X[i] = x
		}
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies element data from src, which must have the same dtype and
// element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.DType != src.DType {
		panic(fmt.Sprintf("tensor: CopyFrom dtype mismatch %v vs %v", t.DType, src.DType))
	}
	if t.Len() != src.Len() {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.Shape, src.Shape))
	}
	switch t.DType {
	case F32:
		copy(t.F, src.F)
	case U8:
		copy(t.U, src.U)
	case I8:
		copy(t.I, src.I)
	case I32:
		copy(t.X, src.X)
	}
}

// Floats returns the tensor contents widened to a fresh []float32 regardless
// of dtype. Quantized tensors are returned as their raw integer values (no
// dequantization; that is the caller's job, since scale/zero-point live in
// the graph, not the tensor).
func (t *Tensor) Floats() []float32 {
	out := make([]float32, t.Len())
	switch t.DType {
	case F32:
		copy(out, t.F)
	case U8:
		for i, v := range t.U {
			out[i] = float32(v)
		}
	case I8:
		for i, v := range t.I {
			out[i] = float32(v)
		}
	case I32:
		for i, v := range t.X {
			out[i] = float32(v)
		}
	}
	return out
}

// ArgMax returns the flat index of the maximum element. Ties resolve to the
// lowest index. Panics on empty tensors.
func (t *Tensor) ArgMax() int {
	if t.Len() == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best := 0
	bestV := t.flat(0)
	for i := 1; i < t.Len(); i++ {
		if v := t.flat(i); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func (t *Tensor) flat(i int) float64 {
	switch t.DType {
	case F32:
		return float64(t.F[i])
	case U8:
		return float64(t.U[i])
	case I8:
		return float64(t.I[i])
	case I32:
		return float64(t.X[i])
	}
	panic("tensor: bad dtype")
}

// IsFinite reports whether every float element is finite. Non-float tensors
// are always finite.
func (t *Tensor) IsFinite() bool {
	if t.DType != F32 {
		return true
	}
	for _, v := range t.F {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

// String renders a short human-readable summary, e.g. "f32[1 32 32 3]".
func (t *Tensor) String() string {
	return fmt.Sprintf("%s%v", t.DType, t.Shape)
}
