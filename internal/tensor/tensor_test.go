package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{0}, 0},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{1, 4, 4, 3}, 48},
	}
	for _, c := range cases {
		tt := New(F32, c.shape...)
		if tt.Len() != c.want {
			t.Errorf("Len(%v) = %d, want %d", c.shape, tt.Len(), c.want)
		}
		if len(tt.F) != c.want {
			t.Errorf("storage for %v = %d, want %d", c.shape, len(tt.F), c.want)
		}
	}
}

func TestDTypeSizesAndNames(t *testing.T) {
	for _, c := range []struct {
		dt   DType
		name string
		size int
	}{{F32, "f32", 4}, {U8, "u8", 1}, {I8, "i8", 1}, {I32, "i32", 4}} {
		if c.dt.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.dt, c.dt.String(), c.name)
		}
		if c.dt.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.dt, c.dt.Size(), c.size)
		}
		back, err := ParseDType(c.name)
		if err != nil || back != c.dt {
			t.Errorf("ParseDType(%q) = %v, %v", c.name, back, err)
		}
	}
	if _, err := ParseDType("f64"); err == nil {
		t.Error("ParseDType accepted unknown dtype")
	}
}

func TestOffsetRowMajor(t *testing.T) {
	tt := New(F32, 2, 3, 4)
	if got := tt.Offset(1, 2, 3); got != 1*12+2*4+3 {
		t.Errorf("Offset(1,2,3) = %d", got)
	}
	if got := tt.Offset(0, 0, 0); got != 0 {
		t.Errorf("Offset(0,0,0) = %d", got)
	}
}

func TestOffsetBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds index")
		}
	}()
	New(F32, 2, 2).Offset(2, 0)
}

func TestAtSetAtRoundTrip(t *testing.T) {
	for _, dt := range []DType{F32, U8, I8, I32} {
		tt := New(dt, 2, 2)
		tt.SetAt(3, 1, 0)
		if got := tt.At(1, 0); got != 3 {
			t.Errorf("dtype %v: At = %v, want 3", dt, got)
		}
		if got := tt.At(0, 1); got != 0 {
			t.Errorf("dtype %v: untouched cell = %v, want 0", dt, got)
		}
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromFloats([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.F[0] = 99
	if a.F[0] != 99 {
		t.Error("Reshape should alias storage")
	}
	c := a.Reshape(-1, 2)
	if !SameShape(c.Shape, []int{3, 2}) {
		t.Errorf("inferred shape = %v", c.Shape)
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(F32, 4).Reshape(3)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromFloats([]float32{1, 2}, 2)
	b := a.Clone()
	b.F[0] = 5
	if a.F[0] != 1 {
		t.Error("Clone should copy storage")
	}
}

func TestCopyFromChecksDtype(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected dtype mismatch panic")
		}
	}()
	New(F32, 2).CopyFrom(New(U8, 2))
}

func TestFillAndZero(t *testing.T) {
	tt := New(I32, 3)
	tt.Fill(7)
	for _, v := range tt.X {
		if v != 7 {
			t.Fatalf("Fill: %v", tt.X)
		}
	}
	tt.Zero()
	for _, v := range tt.X {
		if v != 0 {
			t.Fatalf("Zero: %v", tt.X)
		}
	}
}

func TestArgMax(t *testing.T) {
	tt := FromFloats([]float32{0.1, 0.9, 0.9, 0.2}, 4)
	if got := tt.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of tie)", got)
	}
	u := FromBytes([]uint8{3, 200, 7}, 3)
	if got := u.ArgMax(); got != 1 {
		t.Errorf("u8 ArgMax = %d", got)
	}
}

func TestFloatsWidening(t *testing.T) {
	i := FromInt8([]int8{-5, 3}, 2)
	f := i.Floats()
	if f[0] != -5 || f[1] != 3 {
		t.Errorf("Floats() = %v", f)
	}
}

func TestIsFinite(t *testing.T) {
	tt := FromFloats([]float32{1, 2}, 2)
	if !tt.IsFinite() {
		t.Error("finite tensor reported non-finite")
	}
	tt.F[1] = float32(math.NaN())
	if tt.IsFinite() {
		t.Error("NaN not detected")
	}
	tt.F[1] = float32(math.Inf(1))
	if tt.IsFinite() {
		t.Error("Inf not detected")
	}
}

func TestComputeStats(t *testing.T) {
	tt := FromFloats([]float32{-1, 0, 1, 2}, 4)
	s := ComputeStats(tt)
	if s.Min != -1 || s.Max != 2 || s.N != 4 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Mean-0.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	wantRMS := math.Sqrt((1 + 0 + 1 + 4) / 4.0)
	if math.Abs(s.RMS-wantRMS) > 1e-9 {
		t.Errorf("rms = %v, want %v", s.RMS, wantRMS)
	}
	if s.Range() != 3 {
		t.Errorf("range = %v", s.Range())
	}
}

func TestRMSEAndNormalized(t *testing.T) {
	a := FromFloats([]float32{0, 0, 0, 0}, 4)
	b := FromFloats([]float32{1, 1, 1, 1}, 4)
	r, err := RMSE(a, b)
	if err != nil || r != 1 {
		t.Errorf("RMSE = %v, %v", r, err)
	}
	// Reference is constant, so normalization falls back to raw rMSE.
	nr, err := NormalizedRMSE(a, b)
	if err != nil || nr != 1 {
		t.Errorf("NormalizedRMSE const ref = %v, %v", nr, err)
	}
	ref := FromFloats([]float32{0, 10, 0, 10}, 4)
	nr, err = NormalizedRMSE(a, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((0+100+0+100)/4.0) / 10.0
	if math.Abs(nr-want) > 1e-9 {
		t.Errorf("NormalizedRMSE = %v, want %v", nr, want)
	}
	if _, err := RMSE(a, New(F32, 3)); err == nil {
		t.Error("RMSE accepted length mismatch")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromFloats([]float32{1, -4}, 2)
	b := FromFloats([]float32{0, 1}, 2)
	d, err := MaxAbsDiff(a, b)
	if err != nil || d != 5 {
		t.Errorf("MaxAbsDiff = %v, %v", d, err)
	}
}

func TestAllClose(t *testing.T) {
	a := FromFloats([]float32{1.0001, 2}, 2)
	b := FromFloats([]float32{1, 2}, 2)
	if !AllClose(a, b, 1e-3, 1e-3) {
		t.Error("AllClose false negative")
	}
	if AllClose(a, b, 0, 1e-6) {
		t.Error("AllClose false positive")
	}
	if AllClose(a, New(F32, 3), 1, 1) {
		t.Error("AllClose should reject shape mismatch")
	}
}

// Property: RMSE(a, a) == 0 and is symmetric for arbitrary vectors.
func TestRMSEPropertySymmetry(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromFloats(append([]float32(nil), vals...), len(vals))
		b := FromFloats(append([]float32(nil), vals...), len(vals))
		self, _ := RMSE(a, a)
		ab, _ := RMSE(a, b)
		ba, _ := RMSE(b, a)
		return self == 0 && ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: stats min <= mean <= max for arbitrary non-empty inputs.
func TestStatsOrderingProperty(t *testing.T) {
	f := func(vals []float32) bool {
		clean := make([]float32, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
				// Clamp magnitude so the float64 accumulators cannot overflow.
				if v > 1e18 {
					v = 1e18
				}
				if v < -1e18 {
					v = -1e18
				}
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := ComputeStats(FromFloats(clean, len(clean)))
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Reshape twice returns to the same flat contents.
func TestReshapeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := New(F32, 4, 6)
		RandUniform(rng, tt, -1, 1)
		r := tt.Reshape(8, 3).Reshape(4, 6)
		for i := range tt.F {
			if r.F[i] != tt.F[i] {
				return false
			}
		}
		return SameShape(r.Shape, tt.Shape)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHeInitVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tt := New(F32, 10000)
	HeInit(rng, tt, 50)
	s := ComputeStats(tt)
	wantStd := math.Sqrt(2.0 / 50.0)
	if math.Abs(s.Mean) > 0.02 {
		t.Errorf("He init mean = %v", s.Mean)
	}
	if math.Abs(s.RMS-wantStd) > 0.02 {
		t.Errorf("He init std = %v, want ~%v", s.RMS, wantStd)
	}
}

func TestGlorotInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tt := New(F32, 1000)
	GlorotInit(rng, tt, 8, 8)
	limit := math.Sqrt(6.0 / 16.0)
	s := ComputeStats(tt)
	if s.Min < -limit || s.Max > limit {
		t.Errorf("Glorot out of bounds: [%v, %v] limit %v", s.Min, s.Max, limit)
	}
}

func TestSameShapeAndString(t *testing.T) {
	if !SameShape([]int{1, 2}, []int{1, 2}) || SameShape([]int{1}, []int{1, 2}) || SameShape([]int{2}, []int{3}) {
		t.Error("SameShape misbehaves")
	}
	tt := New(U8, 1, 3)
	if tt.String() != "u8[1 3]" {
		t.Errorf("String = %q", tt.String())
	}
	if tt.Bytes() != 3 {
		t.Errorf("Bytes = %d", tt.Bytes())
	}
	if tt.Dim(-1) != 3 || tt.Dim(0) != 1 || tt.Rank() != 2 {
		t.Error("Dim/Rank misbehave")
	}
}
