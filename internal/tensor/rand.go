package tensor

import (
	"math"
	"math/rand"
)

// RandUniform fills a float tensor with uniform values in [lo, hi) drawn
// from rng. Deterministic given the rng seed; every random initialization in
// the repository flows through seeded sources so experiments reproduce
// exactly.
func RandUniform(rng *rand.Rand, t *Tensor, lo, hi float64) {
	if t.DType != F32 {
		panic("tensor: RandUniform requires F32")
	}
	span := hi - lo
	for i := range t.F {
		t.F[i] = float32(lo + span*rng.Float64())
	}
}

// RandNormal fills a float tensor with Gaussian values of the given mean and
// standard deviation.
func RandNormal(rng *rand.Rand, t *Tensor, mean, std float64) {
	if t.DType != F32 {
		panic("tensor: RandNormal requires F32")
	}
	for i := range t.F {
		t.F[i] = float32(mean + std*rng.NormFloat64())
	}
}

// HeInit fills a weight tensor with He-normal initialization, the standard
// scheme for ReLU networks: std = sqrt(2 / fanIn).
func HeInit(rng *rand.Rand, t *Tensor, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	RandNormal(rng, t, 0, math.Sqrt(2/float64(fanIn)))
}

// GlorotInit fills a weight tensor with Glorot/Xavier-uniform
// initialization, used for the embedding and attention layers.
func GlorotInit(rng *rand.Rand, t *Tensor, fanIn, fanOut int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	if fanOut <= 0 {
		fanOut = 1
	}
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	RandUniform(rng, t, -limit, limit)
}
