// Package ops implements the operation kernels of the inference runtime,
// organized exactly like TensorFlow Lite's kernel registry (the paper's
// register.h vs register_ref.h): a *reference* resolver with straightforward
// loop kernels, and an *optimized* resolver with im2col/GEMM kernels that is
// orders of magnitude faster on the device model but — faithfully to the
// paper's §4.4 findings — ships with a broken quantized depthwise
// convolution. A second historical defect, a sign misinterpretation in the
// quantized average pool, lives in the shared kernel both resolvers use,
// which is why MobileNet-v3-style models fail even under the reference
// resolver. Both defects are controlled by Config so the "after the fix"
// behaviour is testable.
package ops

import (
	"fmt"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Ctx is the execution context handed to a kernel: resolved input/output
// tensors (constants already materialized) and their quantization params
// (nil entries for float tensors).
//
// A planned interpreter builds one Ctx per node at construction time and
// reuses it for every Invoke, which enables the two zero-allocation
// mechanisms below; a Ctx built ad hoc (tests, tools) leaves both nil and
// kernels transparently fall back to allocating.
type Ctx struct {
	Node    *graph.Node
	Inputs  []*tensor.Tensor
	Outputs []*tensor.Tensor
	InQ     []*quant.Params
	OutQ    []*quant.Params

	// Arena supplies node-scoped scratch buffers (reset by the interpreter
	// before each kernel). Nil falls back to make.
	Arena *Arena

	// Backend selects the GEMM micro-kernel family the optimized lowerings
	// dispatch to. Set at plan time by the interpreter; the zero value is
	// BackendBlocked, preserving pre-seam behaviour for hand-built Ctxs.
	Backend Backend

	// cache memoizes derived per-node state whose inputs never change across
	// invokes — requantization multipliers, lookup tables, requant closures.
	// Exactly one kernel owns a Ctx, so a single slot suffices.
	cache any
}

// cachedIn returns the kernel's memoized plan of type T, building it on the
// first invoke. Quantization parameters and node attributes are fixed for the
// lifetime of a planned Ctx, so anything derived from them is computed once.
func cachedIn[T any](c *Ctx, build func() (T, error)) (T, error) {
	if v, ok := c.cache.(T); ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	c.cache = v
	return v, nil
}

// In returns input i, erroring rather than panicking so kernels can report
// malformed graphs cleanly.
func (c *Ctx) In(i int) (*tensor.Tensor, error) {
	if i >= len(c.Inputs) {
		return nil, fmt.Errorf("ops: %s needs input %d, has %d", c.Node.Op, i, len(c.Inputs))
	}
	return c.Inputs[i], nil
}

// OptionalIn returns input i or nil when absent (e.g. bias-less conv).
func (c *Ctx) OptionalIn(i int) *tensor.Tensor {
	if i >= len(c.Inputs) {
		return nil
	}
	return c.Inputs[i]
}

// Kernel executes one node.
type Kernel func(*Ctx) error

// ComputeKind classifies how a node computes, selecting between the float,
// full-integer and hybrid (int8 weights, float activations) kernel
// registrations.
type ComputeKind int

const (
	KindFloat ComputeKind = iota
	KindQuant
	KindHybrid
)

func (k ComputeKind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindQuant:
		return "quant"
	case KindHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindOf derives the compute kind of a node from its tensor table entries.
func KindOf(n *graph.Node, tensors []graph.TensorInfo) ComputeKind {
	switch n.Op {
	case graph.OpQuantize, graph.OpDequantize:
		return KindQuant
	}
	hybrid := false
	for _, id := range n.Inputs {
		ti := tensors[id]
		if ti.DType == tensor.U8 {
			return KindQuant
		}
		if ti.Const && ti.DType == tensor.I8 {
			hybrid = true
		}
	}
	for _, id := range n.Outputs {
		if tensors[id].DType == tensor.U8 {
			return KindQuant
		}
	}
	if hybrid {
		return KindHybrid
	}
	return KindFloat
}

// Config toggles the historically buggy kernels. The zero value is the
// fully fixed runtime; Historical() reproduces the TFLite build the paper
// debugged.
type Config struct {
	// DepthwiseOverflowBug: the optimized quantized DepthwiseConv2D
	// accumulates in int16 and silently wraps — the §4.4 defect that zeroes
	// MobileNet-v2 accuracy under the optimized resolver and shows up as an
	// rMSE spike at the first depthwise layer (Figure 6, left).
	DepthwiseOverflowBug bool
	// AvgPoolSignBug: the quantized AveragePool2D kernel misreads uint8
	// activations as int8. Both resolvers share this kernel, which is why
	// MobileNet-v3 (average pooling inside every squeeze-excite block) gets
	// 0% accuracy even with the reference resolver (Figure 6, right).
	AvgPoolSignBug bool
}

// Historical returns the defect configuration of the runtime version the
// paper's users deployed.
func Historical() Config { return Config{DepthwiseOverflowBug: true, AvgPoolSignBug: true} }

// Fixed returns the configuration with all known kernel defects repaired.
func Fixed() Config { return Config{} }

type kernelKey struct {
	op   graph.OpType
	kind ComputeKind
}

// Resolver maps (op, compute kind) to a kernel, mirroring TFLite's
// OpResolver interface.
type Resolver struct {
	name    string
	kernels map[kernelKey]Kernel
}

// Name returns "optimized" or "reference".
func (r *Resolver) Name() string { return r.name }

// Lookup finds the kernel for an op/kind pair.
func (r *Resolver) Lookup(op graph.OpType, kind ComputeKind) (Kernel, error) {
	if k, ok := r.kernels[kernelKey{op, kind}]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("ops: resolver %q has no %v kernel for %v", r.name, kind, op)
}

func (r *Resolver) register(op graph.OpType, kind ComputeKind, k Kernel) {
	r.kernels[kernelKey{op, kind}] = k
}

// NewReference builds the reference resolver: naive, easy-to-audit loops
// for everything (TFLite's register_ref.h analogue).
func NewReference(cfg Config) *Resolver {
	r := &Resolver{name: "reference", kernels: make(map[kernelKey]Kernel)}
	registerShared(r, cfg)
	r.register(graph.OpConv2D, KindFloat, convFloatRef)
	r.register(graph.OpDepthwiseConv2D, KindFloat, depthwiseFloatRef)
	r.register(graph.OpDense, KindFloat, denseFloatRef)
	r.register(graph.OpConv2D, KindQuant, convQuantRef)
	r.register(graph.OpDepthwiseConv2D, KindQuant, depthwiseQuantRef)
	r.register(graph.OpDense, KindQuant, denseQuantRef)
	return r
}

// NewOptimized builds the optimized resolver: im2col/GEMM compute kernels
// (TFLite's register.h analogue), plus — when cfg.DepthwiseOverflowBug is
// set — the historically broken quantized depthwise convolution.
func NewOptimized(cfg Config) *Resolver {
	r := &Resolver{name: "optimized", kernels: make(map[kernelKey]Kernel)}
	registerShared(r, cfg)
	r.register(graph.OpConv2D, KindFloat, convFloatOpt)
	r.register(graph.OpDepthwiseConv2D, KindFloat, depthwiseFloatOpt)
	r.register(graph.OpDense, KindFloat, denseFloatOpt)
	r.register(graph.OpConv2D, KindQuant, convQuantOpt)
	if cfg.DepthwiseOverflowBug {
		r.register(graph.OpDepthwiseConv2D, KindQuant, depthwiseQuantOptBuggy)
	} else {
		r.register(graph.OpDepthwiseConv2D, KindQuant, depthwiseQuantRef)
	}
	r.register(graph.OpDense, KindQuant, denseQuantOpt)
	return r
}

// registerShared installs the kernels that both resolvers use verbatim.
func registerShared(r *Resolver, cfg Config) {
	float := map[graph.OpType]Kernel{
		graph.OpAvgPool2D:      avgPoolFloat,
		graph.OpMaxPool2D:      maxPoolFloat,
		graph.OpMean:           meanFloat,
		graph.OpPad:            padFloat,
		graph.OpAdd:            addFloat,
		graph.OpMul:            mulFloat,
		graph.OpConcat:         concatFloat,
		graph.OpReLU:           reluFloat,
		graph.OpReLU6:          relu6Float,
		graph.OpHardSwish:      hardSwishFloat,
		graph.OpHardSigmoid:    hardSigmoidFloat,
		graph.OpSigmoid:        sigmoidFloat,
		graph.OpSoftmax:        softmaxFloat,
		graph.OpBatchNorm:      batchNormFloat,
		graph.OpReshape:        reshapeAny,
		graph.OpLayerNorm:      layerNormFloat,
		graph.OpSelfAttention:  selfAttentionFloat,
		graph.OpEmbedding:      embeddingFloat,
		graph.OpResizeBilinear: resizeBilinearFloat,
	}
	for op, k := range float {
		r.register(op, KindFloat, k)
	}

	avgPool := avgPoolQuantCorrect
	if cfg.AvgPoolSignBug {
		avgPool = avgPoolQuantBuggy
	}
	quantKernels := map[graph.OpType]Kernel{
		graph.OpAvgPool2D:      avgPool,
		graph.OpMaxPool2D:      maxPoolQuant,
		graph.OpMean:           meanQuant,
		graph.OpPad:            padQuant,
		graph.OpAdd:            addQuant,
		graph.OpMul:            mulQuant,
		graph.OpConcat:         concatQuant,
		graph.OpReLU:           reluQuant,
		graph.OpReLU6:          relu6Quant,
		graph.OpHardSwish:      lutKernel(hardSwishF64),
		graph.OpHardSigmoid:    lutKernel(hardSigmoidF64),
		graph.OpSigmoid:        lutKernel(sigmoidF64),
		graph.OpSoftmax:        softmaxQuant,
		graph.OpReshape:        reshapeAny,
		graph.OpQuantize:       quantizeKernel,
		graph.OpDequantize:     dequantizeKernel,
		graph.OpResizeBilinear: resizeBilinearQuant,
	}
	for op, k := range quantKernels {
		r.register(op, KindQuant, k)
	}

	hybrid := map[graph.OpType]Kernel{
		graph.OpDense:         denseHybrid,
		graph.OpEmbedding:     embeddingHybrid,
		graph.OpSelfAttention: selfAttentionHybrid,
		graph.OpLayerNorm:     layerNormFloat,
		graph.OpReshape:       reshapeAny,
		graph.OpMean:          meanFloat,
		graph.OpSoftmax:       softmaxFloat,
		graph.OpAdd:           addFloat,
	}
	for op, k := range hybrid {
		r.register(op, KindHybrid, k)
	}
}
