package ops

import (
	"fmt"
	"math"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// ---- shared helpers ----

func applyActF32(act graph.Activation, v float32) float32 {
	switch act {
	case graph.ActReLU:
		if v < 0 {
			return 0
		}
	case graph.ActReLU6:
		if v < 0 {
			return 0
		}
		if v > 6 {
			return 6
		}
	}
	return v
}

func want4D(t *tensor.Tensor, what string) error {
	if t.Rank() != 4 {
		return fmt.Errorf("ops: %s must be rank 4, got %v", what, t.Shape)
	}
	return nil
}

// ---- convolution family (reference implementations) ----

// convFloatRef is the naive reference Conv2D: plain loops, no cache blocking
// — the "easy to understand but inefficient" kernel of TFLite's reference
// resolver (§4.4 footnote).
func convFloatRef(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	if err := want4D(in, "conv input"); err != nil {
		return err
	}
	a := c.Node.Attrs
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for co := 0; co < oc; co++ {
					var acc float32
					if bias != nil {
						acc = bias.F[co]
					}
					for ky := 0; ky < kh; ky++ {
						iy := oy*a.StrideH - a.PadT + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*a.StrideW - a.PadL + kx*dw
							if ix < 0 || ix >= iw {
								continue
							}
							inBase := ((b*ih+iy)*iw + ix) * ic
							wBase := ((co*kh+ky)*kw + kx) * ic
							for ci := 0; ci < ic; ci++ {
								acc += in.F[inBase+ci] * w.F[wBase+ci]
							}
						}
					}
					out.F[((b*oh+oy)*ow+ox)*oc+co] = applyActF32(a.Activation, acc)
				}
			}
		}
	}
	return nil
}

// depthwiseFloatRef is the reference DepthwiseConv2D.
func depthwiseFloatRef(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	if err := want4D(in, "depthwise input"); err != nil {
		return err
	}
	a := c.Node.Attrs
	mult := max1(a.DepthMultiplier)
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, oc := w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for co := 0; co < oc; co++ {
					ci := co / mult
					var acc float32
					if bias != nil {
						acc = bias.F[co]
					}
					for ky := 0; ky < kh; ky++ {
						iy := oy*a.StrideH - a.PadT + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*a.StrideW - a.PadL + kx*dw
							if ix < 0 || ix >= iw {
								continue
							}
							acc += in.F[((b*ih+iy)*iw+ix)*ic+ci] * w.F[(ky*kw+kx)*oc+co]
						}
					}
					out.F[((b*oh+oy)*ow+ox)*oc+co] = applyActF32(a.Activation, acc)
				}
			}
		}
	}
	return nil
}

// denseFloatRef is the reference fully-connected kernel. The input is
// flattened beyond the batch dimension.
func denseFloatRef(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	n := in.Shape[0]
	inC := in.Len() / n
	outC := w.Shape[0]
	a := c.Node.Attrs
	for b := 0; b < n; b++ {
		for co := 0; co < outC; co++ {
			var acc float32
			if bias != nil {
				acc = bias.F[co]
			}
			inBase := b * inC
			wBase := co * inC
			for k := 0; k < inC; k++ {
				acc += in.F[inBase+k] * w.F[wBase+k]
			}
			out.F[b*outC+co] = applyActF32(a.Activation, acc)
		}
	}
	return nil
}

// ---- pooling ----

func avgPoolFloat(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	a := c.Node.Attrs
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for cc := 0; cc < ch; cc++ {
					var sum float32
					count := 0
					for ky := 0; ky < a.KernelH; ky++ {
						iy := oy*a.StrideH - a.PadT + ky
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ox*a.StrideW - a.PadL + kx
							if ix < 0 || ix >= iw {
								continue
							}
							sum += in.F[((b*ih+iy)*iw+ix)*ch+cc]
							count++
						}
					}
					v := float32(0)
					if count > 0 {
						v = sum / float32(count)
					}
					out.F[((b*oh+oy)*ow+ox)*ch+cc] = applyActF32(a.Activation, v)
				}
			}
		}
	}
	return nil
}

func maxPoolFloat(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	a := c.Node.Attrs
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for cc := 0; cc < ch; cc++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < a.KernelH; ky++ {
						iy := oy*a.StrideH - a.PadT + ky
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ox*a.StrideW - a.PadL + kx
							if ix < 0 || ix >= iw {
								continue
							}
							if v := in.F[((b*ih+iy)*iw+ix)*ch+cc]; v > best {
								best = v
							}
						}
					}
					out.F[((b*oh+oy)*ow+ox)*ch+cc] = applyActF32(a.Activation, best)
				}
			}
		}
	}
	return nil
}

// meanFloat reduces over the spatial dimensions: [N,H,W,C] -> [N,C]. This is
// the TFLite MEAN op MobileNet-v2's classifier head uses (distinct from
// AvgPool2D, which is why v2 survives the average-pool defect while v3's
// SE blocks do not).
func meanFloat(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	area := float32(ih * iw)
	// Accumulate channel sums while walking the input contiguously (the
	// channel-outer order re-reads the tensor ch times with stride-ch loads).
	for b := 0; b < n; b++ {
		sums := out.F[b*ch:][:ch]
		zeroF32(sums)
		for i := 0; i < ih*iw; i++ {
			px := in.F[(b*ih*iw+i)*ch:][:ch]
			for cc, v := range px {
				sums[cc] += v
			}
		}
		for cc := range sums {
			sums[cc] /= area
		}
	}
	return nil
}

func padFloat(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	if padMarginsF32(in, out, c.Node.Attrs.Paddings) {
		return nil
	}
	out.Zero()
	if done, err := padRows4D(in, out, c.Node.Attrs.Paddings, func(src, dst, n int) {
		copy(out.F[dst:dst+n], in.F[src:src+n])
	}); done || err != nil {
		return err
	}
	return padCopy(c, in, out, c.Node.Attrs.Paddings, func(src, dst int) {
		out.F[dst] = in.F[src]
	})
}

// padMarginsF32 is the NHWC float pad fast path: instead of zeroing the whole
// output and then overwriting the interior (the interior is most of the
// tensor, so nearly every zero is wasted), it zeroes only the top/bottom pad
// rows and the left/right margins while copying each input row. Returns false
// for shapes it does not cover (non-rank-4, batch or channel padding).
func padMarginsF32(in, out *tensor.Tensor, paddings [][2]int) bool {
	if len(in.Shape) != 4 || len(paddings) != 4 ||
		paddings[0][0] != 0 || paddings[0][1] != 0 ||
		paddings[3][0] != 0 || paddings[3][1] != 0 {
		return false
	}
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	row, orow := iw*ch, ow*ch
	pt, pl := paddings[1][0], paddings[2][0]
	for b := 0; b < n; b++ {
		zeroF32(out.F[b*oh*orow : (b*oh+pt)*orow])
		for y := 0; y < ih; y++ {
			dst := (b*oh+pt+y)*orow + pl*ch
			zeroF32(out.F[(b*oh+pt+y)*orow : dst])
			copy(out.F[dst:dst+row], in.F[(b*ih+y)*row:])
			zeroF32(out.F[dst+row : (b*oh+pt+y+1)*orow])
		}
		zeroF32(out.F[(b*oh+pt+ih)*orow : (b+1)*oh*orow])
	}
	return true
}

// padRows4D is the fast path for the ubiquitous rank-4 NHWC pad: each input
// row [W,C] maps to one contiguous destination run, so the walk copies rows
// instead of elements. Returns done=false for other ranks, which fall back
// to the generic element walk.
func padRows4D(in, out *tensor.Tensor, paddings [][2]int, copyRow func(srcOff, dstOff, n int)) (bool, error) {
	if len(in.Shape) != 4 {
		return false, nil
	}
	if len(paddings) != 4 {
		return true, fmt.Errorf("ops: pad with %d pairs for rank 4", len(paddings))
	}
	if paddings[3][0] != 0 || paddings[3][1] != 0 {
		// Channel padding breaks row contiguity; take the generic walk.
		return false, nil
	}
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	row := iw * ch
	for b := 0; b < n; b++ {
		ob := b + paddings[0][0]
		for y := 0; y < ih; y++ {
			src := (b*ih + y) * row
			dst := ((ob*oh+y+paddings[1][0])*ow + paddings[2][0]) * ch
			copyRow(src, dst, row)
		}
	}
	return true, nil
}

// padCopy walks the input tensor and maps each element to its padded
// position. The visit callback does the dtype-specific copy.
func padCopy(c *Ctx, in, out *tensor.Tensor, paddings [][2]int, visit func(srcOff, dstOff int)) error {
	if len(paddings) != len(in.Shape) {
		return fmt.Errorf("ops: pad with %d pairs for rank %d", len(paddings), len(in.Shape))
	}
	rank := len(in.Shape)
	idx := c.Arena.Idx(rank)
	for d := range idx {
		idx[d] = 0
	}
	total := in.Len()
	for off := 0; off < total; off++ {
		dst := 0
		for d := 0; d < rank; d++ {
			dst = dst*out.Shape[d] + idx[d] + paddings[d][0]
		}
		visit(off, dst)
		for d := rank - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < in.Shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return nil
}

// ---- elementwise binary with channel broadcast ----

// broadcastIndex maps a flat NHWC offset of the full-shape operand onto the
// (possibly [N,C]-shaped) second operand.
func elementwiseBinaryF32(c *Ctx, f func(a, b float32) float32) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	y, err := c.In(1)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	act := c.Node.Attrs.Activation
	if x.Len() == y.Len() {
		for i := range out.F {
			out.F[i] = applyActF32(act, f(x.F[i], y.F[i]))
		}
		return nil
	}
	// Channel broadcast: y is [N,C] (or [N,1,1,C]) against x [N,H,W,C].
	if x.Rank() != 4 {
		return fmt.Errorf("ops: %v broadcast needs rank-4 lhs, got %v", c.Node.Op, x.Shape)
	}
	n, h, w, ch := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if y.Len() != n*ch {
		return fmt.Errorf("ops: %v cannot broadcast %v with %v", c.Node.Op, x.Shape, y.Shape)
	}
	for b := 0; b < n; b++ {
		for i := 0; i < h*w; i++ {
			base := (b*h*w + i) * ch
			for cc := 0; cc < ch; cc++ {
				out.F[base+cc] = applyActF32(act, f(x.F[base+cc], y.F[b*ch+cc]))
			}
		}
	}
	return nil
}

func addFloat(c *Ctx) error {
	// Fast path for the residual connection (same-shape add, no fused
	// activation): a direct loop, sparing the per-element closure call and
	// activation switch of the generic path.
	if c.Node.Attrs.Activation == graph.ActNone && len(c.Inputs) >= 2 {
		x, y := c.Inputs[0], c.Inputs[1]
		if x.Len() == y.Len() {
			out := c.Outputs[0]
			ys := y.F[:len(x.F)]
			os := out.F[:len(x.F)]
			for i, v := range x.F {
				os[i] = v + ys[i]
			}
			return nil
		}
	}
	return elementwiseBinaryF32(c, func(a, b float32) float32 { return a + b })
}

func mulFloat(c *Ctx) error {
	return elementwiseBinaryF32(c, func(a, b float32) float32 { return a * b })
}

func concatFloat(c *Ctx) error {
	return concatGeneric(c, func(t *tensor.Tensor) []float32 { return t.F }, func(dst []float32, i int, src []float32, j int) {
		dst[i] = src[j]
	})
}

// concatGeneric implements Concat for any storage type via accessors.
func concatGeneric[T any](c *Ctx, data func(*tensor.Tensor) []T, set func(dst []T, i int, src []T, j int)) error {
	out := c.Outputs[0]
	axis := c.Node.Attrs.Axis
	outer := 1
	for d := 0; d < axis; d++ {
		outer *= out.Shape[d]
	}
	inner := 1
	for d := axis + 1; d < len(out.Shape); d++ {
		inner *= out.Shape[d]
	}
	outData := data(out)
	axisOff := 0
	for _, in := range c.Inputs {
		inAxis := in.Shape[axis]
		inData := data(in)
		for o := 0; o < outer; o++ {
			for a := 0; a < inAxis; a++ {
				srcBase := (o*inAxis + a) * inner
				dstBase := (o*out.Shape[axis] + axisOff + a) * inner
				for i := 0; i < inner; i++ {
					set(outData, dstBase+i, inData, srcBase+i)
				}
			}
		}
		axisOff += inAxis
	}
	return nil
}

// ---- activations ----

func unaryFloat(c *Ctx, f func(float64) float64) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	for i := range out.F {
		out.F[i] = float32(f(float64(in.F[i])))
	}
	return nil
}

func reluF64(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

func relu6F64(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 6 {
		return 6
	}
	return x
}

func hardSigmoidF64(x float64) float64 { return relu6F64(x+3) / 6 }
func hardSwishF64(x float64) float64   { return x * hardSigmoidF64(x) }
func sigmoidF64(x float64) float64     { return 1 / (1 + math.Exp(-x)) }

func reluFloat(c *Ctx) error        { return unaryFloat(c, reluF64) }
func relu6Float(c *Ctx) error       { return unaryFloat(c, relu6F64) }
func hardSwishFloat(c *Ctx) error   { return unaryFloat(c, hardSwishF64) }
func hardSigmoidFloat(c *Ctx) error { return unaryFloat(c, hardSigmoidF64) }
func sigmoidFloat(c *Ctx) error     { return unaryFloat(c, sigmoidF64) }

// softmaxFloat computes softmax over the last axis with the max-subtraction
// stabilization.
func softmaxFloat(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	last := in.Shape[len(in.Shape)-1]
	rows := in.Len() / last
	for r := 0; r < rows; r++ {
		base := r * last
		mx := in.F[base]
		for i := 1; i < last; i++ {
			if in.F[base+i] > mx {
				mx = in.F[base+i]
			}
		}
		var sum float64
		for i := 0; i < last; i++ {
			e := math.Exp(float64(in.F[base+i] - mx))
			out.F[base+i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := 0; i < last; i++ {
			out.F[base+i] *= inv
		}
	}
	return nil
}

// batchNormFloat applies inference-mode batch normalization with stored
// statistics over the channel (last) axis. Inputs: x, gamma, beta, mean,
// variance. Checkpoint-format models carry these nodes; the converter folds
// them into the preceding convolution.
func batchNormFloat(c *Ctx) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	gamma, err := c.In(1)
	if err != nil {
		return err
	}
	beta, err := c.In(2)
	if err != nil {
		return err
	}
	mean, err := c.In(3)
	if err != nil {
		return err
	}
	variance, err := c.In(4)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	eps := c.Node.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	ch := x.Shape[len(x.Shape)-1]
	if gamma.Len() != ch {
		return fmt.Errorf("ops: batchnorm gamma %v for channels %d", gamma.Shape, ch)
	}
	scale := c.Arena.F32(ch)
	shift := c.Arena.F32(ch)
	for cc := 0; cc < ch; cc++ {
		s := float64(gamma.F[cc]) / math.Sqrt(float64(variance.F[cc])+eps)
		scale[cc] = float32(s)
		shift[cc] = beta.F[cc] - float32(s*float64(mean.F[cc]))
	}
	rows := x.Len() / ch
	for r := 0; r < rows; r++ {
		base := r * ch
		for cc := 0; cc < ch; cc++ {
			out.F[base+cc] = x.F[base+cc]*scale[cc] + shift[cc]
		}
	}
	return nil
}

// reshapeAny copies data across dtypes unchanged; works for every compute
// kind.
func reshapeAny(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	c.Outputs[0].CopyFrom(in)
	return nil
}

// ---- sequence ops ----

func embeddingFloat(c *Ctx) error {
	ids, err := c.In(0)
	if err != nil {
		return err
	}
	table, err := c.In(1)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	vocab, dim := table.Shape[0], table.Shape[1]
	for i, id := range ids.X {
		if id < 0 || int(id) >= vocab {
			return fmt.Errorf("ops: embedding id %d outside vocab %d", id, vocab)
		}
		copy(out.F[i*dim:(i+1)*dim], table.F[int(id)*dim:(int(id)+1)*dim])
	}
	return nil
}

func layerNormFloat(c *Ctx) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	gamma, err := c.In(1)
	if err != nil {
		return err
	}
	beta, err := c.In(2)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	eps := c.Node.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	d := x.Shape[len(x.Shape)-1]
	rows := x.Len() / d
	for r := 0; r < rows; r++ {
		base := r * d
		var mean float64
		for i := 0; i < d; i++ {
			mean += float64(x.F[base+i])
		}
		mean /= float64(d)
		var variance float64
		for i := 0; i < d; i++ {
			dv := float64(x.F[base+i]) - mean
			variance += dv * dv
		}
		variance /= float64(d)
		inv := 1 / math.Sqrt(variance+eps)
		for i := 0; i < d; i++ {
			out.F[base+i] = float32((float64(x.F[base+i])-mean)*inv)*gamma.F[i] + beta.F[i]
		}
	}
	return nil
}

// selfAttentionFloat implements multi-head self attention over [N, T, D]
// with weight inputs Wq, Wk, Wv, Wo ([D, D], row = output unit) and biases
// bq, bk, bv, bo.
func selfAttentionFloat(c *Ctx) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	if len(c.Inputs) < 9 {
		return fmt.Errorf("ops: SelfAttention needs x + 4 weights + 4 biases, got %d inputs", len(c.Inputs))
	}
	var weights, biases [4][]float32
	for i := 0; i < 4; i++ {
		wt := c.Inputs[1+2*i]
		bt := c.Inputs[2+2*i]
		if wt.DType == tensor.I8 {
			return fmt.Errorf("ops: float attention got int8 weights; use the hybrid kernel")
		}
		weights[i] = wt.F
		biases[i] = bt.F
	}
	return attentionCompute(c, x, weights, biases)
}

func attentionCompute(c *Ctx, x *tensor.Tensor, weights, biases [4][]float32) error {
	out := c.Outputs[0]
	n, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	h := c.Node.Attrs.NumHeads
	dh := d / h
	scale := float32(1 / math.Sqrt(float64(dh)))

	q := c.Arena.F32(t * d)
	k := c.Arena.F32(t * d)
	v := c.Arena.F32(t * d)
	attnOut := c.Arena.F32(t * d)
	scores := c.Arena.F32(t)

	project := func(dst []float32, src []float32, w []float32, b []float32) {
		// dst[t, d] = src[t, d] x w[d, d]^T + b
		for ti := 0; ti < t; ti++ {
			for o := 0; o < d; o++ {
				acc := b[o]
				for i := 0; i < d; i++ {
					acc += src[ti*d+i] * w[o*d+i]
				}
				dst[ti*d+o] = acc
			}
		}
	}

	for b := 0; b < n; b++ {
		xb := x.F[b*t*d : (b+1)*t*d]
		project(q, xb, weights[0], biases[0])
		project(k, xb, weights[1], biases[1])
		project(v, xb, weights[2], biases[2])
		for head := 0; head < h; head++ {
			off := head * dh
			for ti := 0; ti < t; ti++ {
				// scores over all source positions.
				var mx float32 = float32(math.Inf(-1))
				for tj := 0; tj < t; tj++ {
					var s float32
					for e := 0; e < dh; e++ {
						s += q[ti*d+off+e] * k[tj*d+off+e]
					}
					s *= scale
					scores[tj] = s
					if s > mx {
						mx = s
					}
				}
				var sum float64
				for tj := 0; tj < t; tj++ {
					e := math.Exp(float64(scores[tj] - mx))
					scores[tj] = float32(e)
					sum += e
				}
				inv := float32(1 / sum)
				for e := 0; e < dh; e++ {
					var acc float32
					for tj := 0; tj < t; tj++ {
						acc += scores[tj] * inv * v[tj*d+off+e]
					}
					attnOut[ti*d+off+e] = acc
				}
			}
		}
		// Output projection.
		ob := out.F[b*t*d : (b+1)*t*d]
		for ti := 0; ti < t; ti++ {
			for o := 0; o < d; o++ {
				acc := biases[3][o]
				for i := 0; i < d; i++ {
					acc += attnOut[ti*d+i] * weights[3][o*d+i]
				}
				ob[ti*d+o] = acc
			}
		}
	}
	return nil
}

// resizeBilinearFloat is the in-graph preprocessing resize (the §A
// EfficientDet pattern: models that embed preprocessing are immune to
// app-side resize bugs).
func resizeBilinearFloat(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	return resizeBilinearGeneric(c, in, out, func(src []int, weights []float32, dst int) {
		var acc float32
		for i, s := range src {
			acc += in.F[s] * weights[i]
		}
		out.F[dst] = acc
	})
}

// resizeBilinearGeneric computes, for every output element, the four source
// offsets and interpolation weights, delegating the arithmetic to visit.
func resizeBilinearGeneric(c *Ctx, in, out *tensor.Tensor, visit func(srcOffsets []int, weights []float32, dstOffset int)) error {
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	sy := float64(ih) / float64(oh)
	sx := float64(iw) / float64(ow)
	src := c.Arena.Idx(4)
	wts := c.Arena.F32(4)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			fy := (float64(oy)+0.5)*sy - 0.5
			if fy < 0 {
				fy = 0
			}
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= ih {
				y1 = ih - 1
			}
			wy := float32(fy - float64(y0))
			for ox := 0; ox < ow; ox++ {
				fx := (float64(ox)+0.5)*sx - 0.5
				if fx < 0 {
					fx = 0
				}
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= iw {
					x1 = iw - 1
				}
				wx := float32(fx - float64(x0))
				for cc := 0; cc < ch; cc++ {
					src[0] = ((b*ih+y0)*iw+x0)*ch + cc
					src[1] = ((b*ih+y0)*iw+x1)*ch + cc
					src[2] = ((b*ih+y1)*iw+x0)*ch + cc
					src[3] = ((b*ih+y1)*iw+x1)*ch + cc
					wts[0] = (1 - wy) * (1 - wx)
					wts[1] = (1 - wy) * wx
					wts[2] = wy * (1 - wx)
					wts[3] = wy * wx
					visit(src, wts, ((b*oh+oy)*ow+ox)*ch+cc)
				}
			}
		}
	}
	return nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
