package ops

import (
	"math/rand"
	"testing"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Micro-benchmarks of the kernel layer: the optimized-vs-reference speed gap
// these measure is the real-wall-clock analogue of the device simulator's
// Table 4 coefficients.

func benchConvInputs(b *testing.B, ih, ic, oc, k int) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor, graph.Attrs, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	in := tensor.New(tensor.F32, 1, ih, ih, ic)
	tensor.RandUniform(rng, in, -1, 1)
	w := tensor.New(tensor.F32, oc, k, k, ic)
	tensor.RandUniform(rng, w, -0.5, 0.5)
	bias := tensor.New(tensor.F32, oc)
	pt, pb := graph.SamePadding(ih, k, 1, 1)
	attrs := graph.Attrs{StrideH: 1, StrideW: 1, PadT: pt, PadB: pb, PadL: pt, PadR: pb}
	outShape, err := graph.InferShape(graph.OpConv2D, attrs, [][]int{in.Shape, w.Shape})
	if err != nil {
		b.Fatal(err)
	}
	return in, w, bias, attrs, outShape
}

func BenchmarkConvFloatReference(b *testing.B) {
	in, w, bias, attrs, outShape := benchConvInputs(b, 28, 16, 32, 3)
	out := tensor.New(tensor.F32, outShape...)
	ctx := ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{in, w, bias}, nil, out, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := convFloatRef(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvFloatOptimized(b *testing.B) {
	in, w, bias, attrs, outShape := benchConvInputs(b, 28, 16, 32, 3)
	out := tensor.New(tensor.F32, outShape...)
	ctx := ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{in, w, bias}, nil, out, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := convFloatOpt(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuantConvCtx(b *testing.B) (*Ctx, Kernel, Kernel) {
	b.Helper()
	in, w, bias, attrs, outShape := benchConvInputs(b, 28, 16, 32, 3)
	inP := quant.AsymmetricU8Params(-1, 1)
	inQ8 := quant.QuantizeTensorU8(in, inP)
	wI8, wP, err := quant.QuantizeWeightsPerChannel(w, 0)
	if err != nil {
		b.Fatal(err)
	}
	bI32 := quant.QuantizeBias(bias, inP.Scale(0), wP)
	outP := quant.AsymmetricU8Params(-4, 4)
	out := tensor.New(tensor.U8, outShape...)
	ctx := ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{inQ8, wI8, bI32},
		[]*quant.Params{inP, wP, nil}, out, outP)
	return ctx, convQuantRef, convQuantOpt
}

func BenchmarkConvQuantReference(b *testing.B) {
	ctx, ref, _ := benchQuantConvCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvQuantOptimized(b *testing.B) {
	ctx, _, opt := benchQuantConvCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := opt(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepthwiseQuant(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := tensor.New(tensor.F32, 1, 28, 28, 32)
	tensor.RandUniform(rng, in, -1, 1)
	w := tensor.New(tensor.F32, 1, 3, 3, 32)
	tensor.RandUniform(rng, w, -0.5, 0.5)
	inP := quant.AsymmetricU8Params(-1, 1)
	inQ8 := quant.QuantizeTensorU8(in, inP)
	wI8, wP, err := quant.QuantizeWeightsPerChannel(w, 3)
	if err != nil {
		b.Fatal(err)
	}
	outP := quant.AsymmetricU8Params(-4, 4)
	attrs := graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1}
	out := tensor.New(tensor.U8, 1, 28, 28, 32)
	ctx := ctxFor(graph.OpDepthwiseConv2D, attrs, []*tensor.Tensor{inQ8, wI8},
		[]*quant.Params{inP, wP}, out, outP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := depthwiseQuantRef(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const m, n, k = 196, 64, 144
	a := make([]float32, m*k)
	bb := make([]float32, n*k)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(4 * (m*k + n*k + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range c {
			c[j] = 0
		}
		gemmNT(a, bb, c, m, n, k)
	}
}

// BenchmarkGemmBackend races the kernel backends on a MobileNet-ish 3x3
// conv layer, float and quantized — the per-op view of the whole-model
// invoke_gemm_* entries in BENCH_replay.json.
func BenchmarkGemmBackend(b *testing.B) {
	for _, backend := range Backends() {
		backend := backend
		b.Run("conv-float/"+backend.String(), func(b *testing.B) {
			in, w, bias, attrs, outShape := benchConvInputs(b, 28, 16, 32, 3)
			out := tensor.New(tensor.F32, outShape...)
			ctx := ctxForBackend(backend, graph.OpConv2D, attrs, []*tensor.Tensor{in, w, bias}, nil, out, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := convFloatOpt(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, backend := range []Backend{BackendBlocked, BackendTiled} {
		backend := backend
		b.Run("conv-quant/"+backend.String(), func(b *testing.B) {
			ctx, _, opt := benchQuantConvCtx(b)
			ctx.Backend = backend
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := opt(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, backend := range []Backend{BackendBlocked, BackendTiled} {
		backend := backend
		b.Run("depthwise-float/"+backend.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			in := tensor.New(tensor.F32, 1, 28, 28, 32)
			tensor.RandUniform(rng, in, -1, 1)
			w := tensor.New(tensor.F32, 1, 3, 3, 32)
			tensor.RandUniform(rng, w, -0.5, 0.5)
			bias := tensor.New(tensor.F32, 32)
			attrs := graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1}
			out := tensor.New(tensor.F32, 1, 28, 28, 32)
			ctx := ctxForBackend(backend, graph.OpDepthwiseConv2D, attrs, []*tensor.Tensor{in, w, bias}, nil, out, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := depthwiseFloatOpt(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSoftmaxFloat(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := tensor.New(tensor.F32, 64, 10)
	tensor.RandUniform(rng, in, -5, 5)
	out := tensor.New(tensor.F32, 64, 10)
	ctx := ctxFor(graph.OpSoftmax, graph.Attrs{Axis: 1}, []*tensor.Tensor{in}, nil, out, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := softmaxFloat(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
