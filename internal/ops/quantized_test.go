package ops

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// quantConvFixture builds matched float and quantized conv inputs: a float
// input/weights pair, its quantized counterparts, and output params derived
// from the float result's range.
type quantConvFixture struct {
	attrs           graph.Attrs
	inF, wF, bF     *tensor.Tensor
	inQ8, wI8, bI32 *tensor.Tensor
	inP, wP, outP   *quant.Params
	floatOut        *tensor.Tensor
	outShape        []int
}

func makeQuantConvFixture(t *testing.T, rng *rand.Rand, op graph.OpType, ih, ic, oc, k, stride int, act graph.Activation) *quantConvFixture {
	t.Helper()
	fx := &quantConvFixture{}
	fx.inF = tensor.New(tensor.F32, 1, ih, ih, ic)
	tensor.RandUniform(rng, fx.inF, -1, 1)
	var wShape []int
	mult := 1
	if op == graph.OpDepthwiseConv2D {
		wShape = []int{1, k, k, ic}
		oc = ic
	} else {
		wShape = []int{oc, k, k, ic}
	}
	fx.wF = tensor.New(tensor.F32, wShape...)
	tensor.RandUniform(rng, fx.wF, -0.5, 0.5)
	fx.bF = tensor.New(tensor.F32, oc)
	tensor.RandUniform(rng, fx.bF, -0.2, 0.2)

	pt, pb := graph.SamePadding(ih, k, stride, 1)
	fx.attrs = graph.Attrs{StrideH: stride, StrideW: stride, PadT: pt, PadB: pb, PadL: pt, PadR: pb,
		Activation: act, DepthMultiplier: mult}
	var err error
	fx.outShape, err = graph.InferShape(op, fx.attrs, [][]int{fx.inF.Shape, fx.wF.Shape})
	if err != nil {
		t.Fatal(err)
	}

	// Float reference output (ground truth).
	fx.floatOut = tensor.New(tensor.F32, fx.outShape...)
	var kern Kernel
	if op == graph.OpDepthwiseConv2D {
		kern = depthwiseFloatRef
	} else {
		kern = convFloatRef
	}
	if err := kern(ctxFor(op, fx.attrs, []*tensor.Tensor{fx.inF, fx.wF, fx.bF}, nil, fx.floatOut, nil)); err != nil {
		t.Fatal(err)
	}

	// Quantize everything.
	fx.inP = quant.AsymmetricU8Params(-1, 1)
	fx.inQ8 = quant.QuantizeTensorU8(fx.inF, fx.inP)
	axis := 0
	if op == graph.OpDepthwiseConv2D {
		axis = 3
	}
	fx.wI8, fx.wP, err = quant.QuantizeWeightsPerChannel(fx.wF, axis)
	if err != nil {
		t.Fatal(err)
	}
	fx.bI32 = quant.QuantizeBias(fx.bF, fx.inP.Scale(0), fx.wP)
	st := tensor.ComputeStats(fx.floatOut)
	fx.outP = quant.AsymmetricU8Params(st.Min, st.Max)
	return fx
}

func (fx *quantConvFixture) run(t *testing.T, kern Kernel, op graph.OpType) *tensor.Tensor {
	t.Helper()
	out := tensor.New(tensor.U8, fx.outShape...)
	ctx := ctxFor(op, fx.attrs,
		[]*tensor.Tensor{fx.inQ8, fx.wI8, fx.bI32},
		[]*quant.Params{fx.inP, fx.wP, nil}, out, fx.outP)
	if err := kern(ctx); err != nil {
		t.Fatal(err)
	}
	return out
}

func dequantErr(fx *quantConvFixture, out *tensor.Tensor) float64 {
	deq := quant.DequantizeTensorU8(out, fx.outP)
	rmse, _ := tensor.RMSE(deq, fx.floatOut)
	return rmse
}

func TestQuantConvMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fx := makeQuantConvFixture(t, rng, graph.OpConv2D, 8, 3, 8, 3, 1, graph.ActNone)
	out := fx.run(t, convQuantRef, graph.OpConv2D)
	rng2 := tensor.ComputeStats(fx.floatOut).Range()
	if e := dequantErr(fx, out); e > 0.02*rng2 {
		t.Errorf("quant conv rmse %v exceeds 2%% of range %v", e, rng2)
	}
}

// Property: optimized quantized conv is bit-exact with the reference
// quantized conv (same integer math, different loop order).
func TestQuantConvRefVsOptBitExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := makeQuantConvFixture(t, rng, graph.OpConv2D,
			4+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(6), 3, 1+rng.Intn(2), graph.Activation(rng.Intn(3)))
		a := fx.run(t, convQuantRef, graph.OpConv2D)
		b := fx.run(t, convQuantOpt, graph.OpConv2D)
		for i := range a.U {
			if a.U[i] != b.U[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuantDepthwiseCorrectMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fx := makeQuantConvFixture(t, rng, graph.OpDepthwiseConv2D, 8, 8, 0, 3, 1, graph.ActNone)
	out := fx.run(t, depthwiseQuantRef, graph.OpDepthwiseConv2D)
	rng2 := tensor.ComputeStats(fx.floatOut).Range()
	if e := dequantErr(fx, out); e > 0.02*rng2 {
		t.Errorf("quant depthwise rmse %v exceeds 2%% of range %v", e, rng2)
	}
}

// The §4.4 depthwise defect: negative accumulators have their sign bit
// shifted into the value (logical instead of arithmetic right shift) and
// saturate, so the buggy optimized kernel diverges wildly from the reference
// kernel on any data producing negative pre-activations.
func TestQuantDepthwiseOverflowBug(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	// Mixed-sign weights guarantee some negative accumulators.
	in := tensor.New(tensor.F32, 1, 6, 6, 4)
	tensor.RandUniform(rng, in, 2, 4)
	w := tensor.New(tensor.F32, 1, 3, 3, 4)
	tensor.RandUniform(rng, w, -1.0, 1.0)
	b := tensor.New(tensor.F32, 4)
	attrs := graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1}

	inP := quant.AsymmetricU8Params(-4, 4)
	inQ8 := quant.QuantizeTensorU8(in, inP)
	wI8, wP, err := quant.QuantizeWeightsPerChannel(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	bI32 := quant.QuantizeBias(b, inP.Scale(0), wP)
	outP := quant.AsymmetricU8Params(0, 40)

	run := func(k Kernel) *tensor.Tensor {
		out := tensor.New(tensor.U8, 1, 6, 6, 4)
		ctx := ctxFor(graph.OpDepthwiseConv2D, attrs, []*tensor.Tensor{inQ8, wI8, bI32},
			[]*quant.Params{inP, wP, nil}, out, outP)
		if err := k(ctx); err != nil {
			t.Fatal(err)
		}
		return out
	}
	good := run(depthwiseQuantRef)
	bad := run(depthwiseQuantOptBuggy)

	diff := 0
	for i := range good.U {
		if good.U[i] != bad.U[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("int16-overflow bug produced identical output; the defect is not being exercised")
	}
	// The wrapped accumulator must produce a large normalized drift — the
	// Figure 6 rMSE spike.
	nrmse, err := tensor.NormalizedRMSE(bad, good)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse < 0.2 {
		t.Errorf("buggy depthwise nRMSE = %v; expected a large spike", nrmse)
	}
}

// With small accumulators (low-magnitude data) the buggy kernel agrees with
// the reference kernel — which is exactly why the defect slips through basic
// smoke tests and needs per-layer validation to catch.
func TestQuantDepthwiseBugInvisibleOnSmallData(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	// Construct quantized data whose accumulators are all non-negative:
	// activations at or above the zero point and strictly positive weights.
	// The logical-shift defect only corrupts negative accumulators, so the
	// buggy kernel is bit-exact here — which is why happy-path smoke tests
	// (all-positive toy data) never catch it.
	inP := quant.AsymmetricU8Params(-1, 1)
	zp := inP.ZeroPoint(0)
	in := tensor.New(tensor.U8, 1, 6, 6, 3)
	for i := range in.U {
		in.U[i] = uint8(zp + int32(rng.Intn(40)))
	}
	w := tensor.New(tensor.I8, 1, 3, 3, 3)
	for i := range w.I {
		w.I[i] = int8(1 + rng.Intn(15))
	}
	wP := quant.PerTensor(0.01, 0)
	outP := quant.AsymmetricU8Params(-1, 1)
	attrs := graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1}
	run := func(k Kernel) *tensor.Tensor {
		out := tensor.New(tensor.U8, 1, 6, 6, 3)
		ctx := ctxFor(graph.OpDepthwiseConv2D, attrs, []*tensor.Tensor{in, w},
			[]*quant.Params{inP, wP}, out, outP)
		if err := k(ctx); err != nil {
			t.Fatal(err)
		}
		return out
	}
	good := run(depthwiseQuantRef)
	bad := run(depthwiseQuantOptBuggy)
	for i := range good.U {
		if good.U[i] != bad.U[i] {
			t.Fatalf("bug visible on small data at %d: %d vs %d", i, good.U[i], bad.U[i])
		}
	}
}

func TestQuantDenseMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	in := tensor.New(tensor.F32, 2, 12)
	tensor.RandUniform(rng, in, -1, 1)
	w := tensor.New(tensor.F32, 5, 12)
	tensor.RandUniform(rng, w, -0.5, 0.5)
	b := tensor.New(tensor.F32, 5)
	tensor.RandUniform(rng, b, -0.2, 0.2)
	floatOut := tensor.New(tensor.F32, 2, 5)
	if err := denseFloatRef(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in, w, b}, nil, floatOut, nil)); err != nil {
		t.Fatal(err)
	}
	inP := quant.AsymmetricU8Params(-1, 1)
	inQ8 := quant.QuantizeTensorU8(in, inP)
	wI8, wP, err := quant.QuantizeWeightsPerChannel(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	bI32 := quant.QuantizeBias(b, inP.Scale(0), wP)
	st := tensor.ComputeStats(floatOut)
	outP := quant.AsymmetricU8Params(st.Min, st.Max)
	out := tensor.New(tensor.U8, 2, 5)
	ctx := ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{inQ8, wI8, bI32},
		[]*quant.Params{inP, wP, nil}, out, outP)
	if err := denseQuantRef(ctx); err != nil {
		t.Fatal(err)
	}
	deq := quant.DequantizeTensorU8(out, outP)
	rmse, _ := tensor.RMSE(deq, floatOut)
	if rmse > 0.02*st.Range() {
		t.Errorf("quant dense rmse %v", rmse)
	}
}

func TestAvgPoolQuantCorrect(t *testing.T) {
	p := quant.AsymmetricU8Params(0, 255)
	in := tensor.FromBytes([]uint8{10, 20, 30, 40}, 1, 2, 2, 1)
	out := tensor.New(tensor.U8, 1, 1, 1, 1)
	attrs := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	ctx := ctxFor(graph.OpAvgPool2D, attrs, []*tensor.Tensor{in}, []*quant.Params{p}, out, p)
	if err := avgPoolQuantCorrect(ctx); err != nil {
		t.Fatal(err)
	}
	if out.U[0] != 25 {
		t.Errorf("avg = %d, want 25", out.U[0])
	}
}

// The §4.4 average-pool defect: on long windows (the "vectorized" path) the
// division by the window size is lost, so the kernel emits the clamped sum —
// saturating for any active channel. Short windows take the scalar path and
// stay correct — the reason Inception's 3x3 pooling branch survives while
// MobileNet-v3's global pools do not.
func TestAvgPoolQuantMissingDivideBug(t *testing.T) {
	p := quant.AsymmetricU8Params(0, 255)
	// 6x6 global pool (36 taps >= buggy threshold) of modest activations.
	in := tensor.New(tensor.U8, 1, 6, 6, 1)
	for i := range in.U {
		in.U[i] = uint8(10 + i%5)
	}
	attrs := graph.Attrs{KernelH: 6, KernelW: 6, StrideH: 6, StrideW: 6}
	out := tensor.New(tensor.U8, 1, 1, 1, 1)
	ctxOK := ctxFor(graph.OpAvgPool2D, attrs, []*tensor.Tensor{in}, []*quant.Params{p}, out, p)
	if err := avgPoolQuantCorrect(ctxOK); err != nil {
		t.Fatal(err)
	}
	if out.U[0] < 10 || out.U[0] > 15 {
		t.Fatalf("correct avg = %d, want ~12", out.U[0])
	}
	bad := tensor.New(tensor.U8, 1, 1, 1, 1)
	ctxBad := ctxFor(graph.OpAvgPool2D, attrs, []*tensor.Tensor{in}, []*quant.Params{p}, bad, p)
	if err := avgPoolQuantBuggy(ctxBad); err != nil {
		t.Fatal(err)
	}
	// The undivided 36-tap sum (~430) saturates the quantized range.
	if bad.U[0] != 255 {
		t.Errorf("buggy avg = %d, want saturation at 255", bad.U[0])
	}
	// Short windows (2x2 = 4 taps) take the scalar path and are correct even
	// with the defect present — the bug is architecture-dependent, which is
	// why it slipped through op-level smoke tests.
	small := tensor.FromBytes([]uint8{200, 210, 220, 230}, 1, 2, 2, 1)
	outSmall := tensor.New(tensor.U8, 1, 1, 1, 1)
	attrsSmall := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	ctxSmall := ctxFor(graph.OpAvgPool2D, attrsSmall, []*tensor.Tensor{small}, []*quant.Params{p}, outSmall, p)
	if err := avgPoolQuantBuggy(ctxSmall); err != nil {
		t.Fatal(err)
	}
	if outSmall.U[0] != 215 {
		t.Errorf("buggy kernel on short window = %d, want correct 215", outSmall.U[0])
	}
}

func TestMaxPoolAndMeanQuant(t *testing.T) {
	p := quant.AsymmetricU8Params(0, 255)
	in := tensor.FromBytes([]uint8{10, 250, 30, 40}, 1, 2, 2, 1)
	out := tensor.New(tensor.U8, 1, 1, 1, 1)
	attrs := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	if err := maxPoolQuant(ctxFor(graph.OpMaxPool2D, attrs, []*tensor.Tensor{in}, []*quant.Params{p}, out, p)); err != nil {
		t.Fatal(err)
	}
	if out.U[0] != 250 {
		t.Errorf("max = %d", out.U[0])
	}
	mOut := tensor.New(tensor.U8, 1, 1)
	if err := meanQuant(ctxFor(graph.OpMean, graph.Attrs{}, []*tensor.Tensor{in}, []*quant.Params{p}, mOut, p)); err != nil {
		t.Fatal(err)
	}
	if mOut.U[0] != 83 { // (10+250+30+40)/4 = 82.5 -> 83
		t.Errorf("mean = %d, want 83", mOut.U[0])
	}
}

func TestPadQuantFillsZeroPoint(t *testing.T) {
	p := quant.AsymmetricU8Params(-1, 1) // zero point 128 (rounded)
	in := tensor.FromBytes([]uint8{200}, 1, 1, 1, 1)
	out := tensor.New(tensor.U8, 1, 3, 3, 1)
	attrs := graph.Attrs{Paddings: [][2]int{{0, 0}, {1, 1}, {1, 1}, {0, 0}}}
	if err := padQuant(ctxFor(graph.OpPad, attrs, []*tensor.Tensor{in}, []*quant.Params{p}, out, p)); err != nil {
		t.Fatal(err)
	}
	zp := uint8(p.ZeroPoint(0))
	if out.At(0, 0, 0, 0) != float64(zp) || out.At(0, 1, 1, 0) != 200 {
		t.Errorf("pad quant: corner=%v centre=%v zp=%d", out.At(0, 0, 0, 0), out.At(0, 1, 1, 0), zp)
	}
}

// Property: quantized add approximates float add within a few quantization
// steps for random in/out scales.
func TestAddQuantApproximatesFloat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		a := tensor.New(tensor.F32, 1, n)
		b := tensor.New(tensor.F32, 1, n)
		tensor.RandUniform(rng, a, -1, 1)
		tensor.RandUniform(rng, b, -2, 2)
		pa := quant.AsymmetricU8Params(-1, 1)
		pb := quant.AsymmetricU8Params(-2, 2)
		po := quant.AsymmetricU8Params(-3, 3)
		qa := quant.QuantizeTensorU8(a, pa)
		qb := quant.QuantizeTensorU8(b, pb)
		out := tensor.New(tensor.U8, 1, n)
		ctx := ctxFor(graph.OpAdd, graph.Attrs{}, []*tensor.Tensor{qa, qb}, []*quant.Params{pa, pb}, out, po)
		if err := addQuant(ctx); err != nil {
			return false
		}
		deq := quant.DequantizeTensorU8(out, po)
		for i := 0; i < n; i++ {
			want := float64(a.F[i] + b.F[i])
			if math.Abs(float64(deq.F[i])-want) > 3*po.Scale(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMulQuantApproximatesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 32
	a := tensor.New(tensor.F32, 1, n)
	b := tensor.New(tensor.F32, 1, n)
	tensor.RandUniform(rng, a, 0, 2)
	tensor.RandUniform(rng, b, 0, 1)
	pa := quant.AsymmetricU8Params(0, 2)
	pb := quant.AsymmetricU8Params(0, 1)
	po := quant.AsymmetricU8Params(0, 2)
	qa := quant.QuantizeTensorU8(a, pa)
	qb := quant.QuantizeTensorU8(b, pb)
	out := tensor.New(tensor.U8, 1, n)
	ctx := ctxFor(graph.OpMul, graph.Attrs{}, []*tensor.Tensor{qa, qb}, []*quant.Params{pa, pb}, out, po)
	if err := mulQuant(ctx); err != nil {
		t.Fatal(err)
	}
	deq := quant.DequantizeTensorU8(out, po)
	for i := 0; i < n; i++ {
		want := float64(a.F[i] * b.F[i])
		if math.Abs(float64(deq.F[i])-want) > 3*po.Scale(0) {
			t.Fatalf("mul[%d]: %v vs %v", i, deq.F[i], want)
		}
	}
}

func TestLUTKernelMatchesFloat(t *testing.T) {
	inP := quant.AsymmetricU8Params(-6, 6)
	outP := quant.AsymmetricU8Params(-1, 6)
	in := tensor.New(tensor.U8, 1, 256)
	for i := 0; i < 256; i++ {
		in.U[i] = uint8(i)
	}
	out := tensor.New(tensor.U8, 1, 256)
	k := lutKernel(hardSwishF64)
	if err := k(ctxFor(graph.OpHardSwish, graph.Attrs{}, []*tensor.Tensor{in}, []*quant.Params{inP}, out, outP)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		real := inP.DequantizeU8(uint8(i), 0)
		want := hardSwishF64(real)
		got := outP.DequantizeU8(out.U[i], 0)
		if math.Abs(got-want) > outP.Scale(0) {
			t.Fatalf("lut[%d]: %v vs %v", i, got, want)
		}
	}
}

func TestReluQuantClampsAtZeroPoint(t *testing.T) {
	p := quant.AsymmetricU8Params(-1, 1)
	zp := uint8(p.ZeroPoint(0))
	in := tensor.FromBytes([]uint8{0, zp - 10, zp, zp + 10, 255}, 1, 5)
	out := tensor.New(tensor.U8, 1, 5)
	if err := reluQuant(ctxFor(graph.OpReLU, graph.Attrs{}, []*tensor.Tensor{in}, []*quant.Params{p}, out, p)); err != nil {
		t.Fatal(err)
	}
	want := []uint8{zp, zp, zp, zp + 10, 255}
	for i := range want {
		if out.U[i] != want[i] {
			t.Errorf("relu[%d] = %d, want %d", i, out.U[i], want[i])
		}
	}
}

func TestSoftmaxQuantRowsSumToOne(t *testing.T) {
	inP := quant.AsymmetricU8Params(-8, 8)
	outP := quant.PerTensor(1.0/255.0, 0)
	rng := rand.New(rand.NewSource(33))
	in := tensor.New(tensor.U8, 2, 10)
	for i := range in.U {
		in.U[i] = uint8(rng.Intn(256))
	}
	out := tensor.New(tensor.U8, 2, 10)
	if err := softmaxQuant(ctxFor(graph.OpSoftmax, graph.Attrs{Axis: 1}, []*tensor.Tensor{in}, []*quant.Params{inP}, out, outP)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		var sum float64
		for i := 0; i < 10; i++ {
			sum += outP.DequantizeU8(out.U[r*10+i], 0)
		}
		if math.Abs(sum-1) > 0.05 {
			t.Errorf("row %d sums to %v", r, sum)
		}
	}
}

func TestQuantizeDequantizeKernels(t *testing.T) {
	p := quant.AsymmetricU8Params(-1, 1)
	in := tensor.FromFloats([]float32{-1, 0, 0.5, 1}, 1, 4)
	q := tensor.New(tensor.U8, 1, 4)
	if err := quantizeKernel(ctxFor(graph.OpQuantize, graph.Attrs{}, []*tensor.Tensor{in}, nil, q, p)); err != nil {
		t.Fatal(err)
	}
	back := tensor.New(tensor.F32, 1, 4)
	if err := dequantizeKernel(ctxFor(graph.OpDequantize, graph.Attrs{}, []*tensor.Tensor{q}, []*quant.Params{p}, back, nil)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(back, in, 0, p.Scale(0)) {
		t.Errorf("quantize/dequantize round trip: %v -> %v", in.F, back.F)
	}
	if err := quantizeKernel(ctxFor(graph.OpQuantize, graph.Attrs{}, []*tensor.Tensor{q}, nil, q, p)); err == nil {
		t.Error("Quantize accepted non-float input")
	}
}

func TestConcatQuantSameAndDifferentParams(t *testing.T) {
	p := quant.AsymmetricU8Params(0, 1)
	a := tensor.FromBytes([]uint8{10, 20}, 1, 1, 1, 2)
	b := tensor.FromBytes([]uint8{30}, 1, 1, 1, 1)
	out := tensor.New(tensor.U8, 1, 1, 1, 3)
	ctx := &Ctx{Node: &graph.Node{Op: graph.OpConcat, Attrs: graph.Attrs{Axis: 3}},
		Inputs: []*tensor.Tensor{a, b}, Outputs: []*tensor.Tensor{out},
		InQ: []*quant.Params{p, p}, OutQ: []*quant.Params{p}}
	if err := concatQuant(ctx); err != nil {
		t.Fatal(err)
	}
	if out.U[0] != 10 || out.U[2] != 30 {
		t.Errorf("concat fast path: %v", out.U)
	}
	// Different params: input scale half of output scale -> values halve.
	pHalf := quant.AsymmetricU8Params(0, 0.5)
	ctx2 := &Ctx{Node: &graph.Node{Op: graph.OpConcat, Attrs: graph.Attrs{Axis: 3}},
		Inputs: []*tensor.Tensor{a, b}, Outputs: []*tensor.Tensor{out},
		InQ: []*quant.Params{pHalf, p}, OutQ: []*quant.Params{p}}
	if err := concatQuant(ctx2); err != nil {
		t.Fatal(err)
	}
	if out.U[0] != 5 || out.U[2] != 30 {
		t.Errorf("concat requant path: %v", out.U)
	}
}

func TestHybridDenseMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	in := tensor.New(tensor.F32, 2, 16)
	tensor.RandUniform(rng, in, -1, 1)
	w := tensor.New(tensor.F32, 4, 16)
	tensor.RandUniform(rng, w, -0.5, 0.5)
	b := tensor.New(tensor.F32, 4)
	floatOut := tensor.New(tensor.F32, 2, 4)
	if err := denseFloatRef(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in, w, b}, nil, floatOut, nil)); err != nil {
		t.Fatal(err)
	}
	wI8, wP, err := quant.QuantizeWeightsPerChannel(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(tensor.F32, 2, 4)
	ctx := ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in, wI8, b},
		[]*quant.Params{nil, wP, nil}, out, nil)
	if err := denseHybrid(ctx); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(out, floatOut, 0.02, 0.02) {
		t.Error("hybrid dense diverges from float")
	}
}

func TestHybridEmbedding(t *testing.T) {
	table := tensor.FromFloats([]float32{0.5, -0.5, 1, -1}, 2, 2)
	tI8, tP, err := quant.QuantizeWeightsPerTensor(table)
	if err != nil {
		t.Fatal(err)
	}
	ids := tensor.FromInt32([]int32{1, 0}, 1, 2)
	out := tensor.New(tensor.F32, 1, 2, 2)
	ctx := ctxFor(graph.OpEmbedding, graph.Attrs{}, []*tensor.Tensor{ids, tI8},
		[]*quant.Params{nil, tP}, out, nil)
	if err := embeddingHybrid(ctx); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out.F[0])-1) > 0.02 || math.Abs(float64(out.F[2])-0.5) > 0.02 {
		t.Errorf("hybrid embedding = %v", out.F)
	}
}

func TestQuantActRange(t *testing.T) {
	p := quant.AsymmetricU8Params(-1, 3) // zp should be 64ish
	lo, hi := quantActRange(graph.ActNone, p)
	if lo != 0 || hi != 255 {
		t.Errorf("none range = [%d, %d]", lo, hi)
	}
	lo, _ = quantActRange(graph.ActReLU, p)
	if lo != p.ZeroPoint(0) {
		t.Errorf("relu lo = %d, want zp %d", lo, p.ZeroPoint(0))
	}
	lo, hi = quantActRange(graph.ActReLU6, p)
	want6 := p.ZeroPoint(0) + int32(math.Round(6/p.Scale(0)))
	if lo != p.ZeroPoint(0) || hi != min32(255, want6) {
		t.Errorf("relu6 range = [%d, %d]", lo, hi)
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func TestRoundDiv(t *testing.T) {
	cases := []struct{ a, b, want int32 }{
		{10, 4, 3}, {11, 4, 3}, {-10, 4, -3}, {-11, 4, -3}, {9, 3, 3}, {-9, 3, -3},
	}
	for _, cse := range cases {
		if got := roundDiv(cse.a, cse.b); got != cse.want {
			t.Errorf("roundDiv(%d, %d) = %d, want %d", cse.a, cse.b, got, cse.want)
		}
	}
}
