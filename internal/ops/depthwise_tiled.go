package ops

import (
	"mlexray/internal/graph"
	"mlexray/internal/quant"
)

// Register-tiled depthwise convolution kernels for the tiled backend. The
// blocked depthwise path accumulates through a per-pixel scratch slab —
// every MAC is a load-modify-store on memory, bracketed by a bias-copy pass
// and an activation pass over the same slab. The tiled kernels instead walk
// channels in blocks of register accumulators with the bias seeding and the
// activation clamp fused into the block store, cutting the per-MAC memory
// traffic in half. Tap validity and addressing are resolved once per output
// pixel into a small offset table (interior pixels reuse a precomputed
// relative table, one add per tap), so the accumulation loop carries no
// boundary branches and no address multiplies. The per-pixel channel walk
// lives in its own small function on purpose: inlined into the node-level
// loop the register allocator has too many live values and spills the
// accumulators, which costs more than the call. Taps accumulate in the same
// ascending (ky, kx) order as the blocked kernel, so the float results are
// bitwise identical; the quantized results are bit-exact by integer
// associativity.
//
// Both kernels cover the depth_multiplier == 1 layout with kernels up to
// maxDWTaps taps (every production depthwise layer qualifies); the
// dispatchers in float_opt.go / quantized.go fall back to the blocked loop
// for other layouts and for the injected logical-shift-bug variant.

// maxDWTaps bounds the per-pixel tap table (covers kernels up to 5x5).
const maxDWTaps = 25

// dwTapTable fills tapIn/tapW with the input and weight base offsets of the
// valid taps of output pixel (oy, ox) and returns the tap count.
func dwTapTable(a graph.Attrs, oy, ox, ih, iw, ic, kh, kw, oc, dh, dw, rowBase int, tapIn, tapW *[maxDWTaps]int) int {
	nt := 0
	for ky := 0; ky < kh; ky++ {
		iy := oy*a.StrideH - a.PadT + ky*dh
		if iy < 0 || iy >= ih {
			continue
		}
		for kx := 0; kx < kw; kx++ {
			ix := ox*a.StrideW - a.PadL + kx*dw
			if ix < 0 || ix >= iw {
				continue
			}
			tapIn[nt] = ((rowBase+iy)*iw + ix) * ic
			tapW[nt] = (ky*kw + kx) * oc
			nt++
		}
	}
	return nt
}

// dwPixelF32 accumulates all oc channels of one output pixel in register
// blocks of 8/4/1 and stores the bias-seeded, clamped results.
func dwPixelF32(inF, wF, bf, outRow []float32, taps, wofs []int, oc int, lo, hi float32) {
	co := 0
	for ; co+8 <= oc; co += 8 {
		var s0, s1, s2, s3, s4, s5, s6, s7 float32
		if bf != nil {
			s0, s1, s2, s3 = bf[co], bf[co+1], bf[co+2], bf[co+3]
			s4, s5, s6, s7 = bf[co+4], bf[co+5], bf[co+6], bf[co+7]
		}
		for t, ib := range taps {
			inR := inF[ib+co:][:8]
			wR := wF[wofs[t]+co:][:8]
			s0 += inR[0] * wR[0]
			s1 += inR[1] * wR[1]
			s2 += inR[2] * wR[2]
			s3 += inR[3] * wR[3]
			s4 += inR[4] * wR[4]
			s5 += inR[5] * wR[5]
			s6 += inR[6] * wR[6]
			s7 += inR[7] * wR[7]
		}
		o := outRow[co:][:8]
		o[0] = clampF32(s0, lo, hi)
		o[1] = clampF32(s1, lo, hi)
		o[2] = clampF32(s2, lo, hi)
		o[3] = clampF32(s3, lo, hi)
		o[4] = clampF32(s4, lo, hi)
		o[5] = clampF32(s5, lo, hi)
		o[6] = clampF32(s6, lo, hi)
		o[7] = clampF32(s7, lo, hi)
	}
	for ; co+4 <= oc; co += 4 {
		var s0, s1, s2, s3 float32
		if bf != nil {
			s0, s1, s2, s3 = bf[co], bf[co+1], bf[co+2], bf[co+3]
		}
		for t, ib := range taps {
			inR := inF[ib+co:][:4]
			wR := wF[wofs[t]+co:][:4]
			s0 += inR[0] * wR[0]
			s1 += inR[1] * wR[1]
			s2 += inR[2] * wR[2]
			s3 += inR[3] * wR[3]
		}
		o := outRow[co:][:4]
		o[0] = clampF32(s0, lo, hi)
		o[1] = clampF32(s1, lo, hi)
		o[2] = clampF32(s2, lo, hi)
		o[3] = clampF32(s3, lo, hi)
	}
	for ; co < oc; co++ {
		var s float32
		if bf != nil {
			s = bf[co]
		}
		for t, ib := range taps {
			s += inF[ib+co] * wF[wofs[t]+co]
		}
		outRow[co] = clampF32(s, lo, hi)
	}
}

// dwPixelPairF32 accumulates two interior output pixels adjacent in x at
// once. Both share the same weight taps, so every 4-wide weight block is
// loaded once for the two pixels' MACs — 12 loads per 8 MACs instead of the
// single-pixel path's 16, which matters on a load-port-bound scalar target.
// The channel block stays at 4 on purpose: two pixels' accumulators plus the
// shared weight block already fill most of the XMM file, and an 8-wide pair
// spills. d is the input-offset delta between the two pixels (strideW * ic;
// weight sharing is stride-independent). Per-pixel tap order is unchanged.
func dwPixelPairF32(inF, wF, bf, o0, o1 []float32, taps, wofs []int, d, oc int, lo, hi float32) {
	co := 0
	for ; co+4 <= oc; co += 4 {
		var s0, s1, s2, s3, r0, r1, r2, r3 float32
		if bf != nil {
			s0, s1, s2, s3 = bf[co], bf[co+1], bf[co+2], bf[co+3]
			r0, r1, r2, r3 = s0, s1, s2, s3
		}
		for t, ib := range taps {
			wR := wF[wofs[t]+co:][:4]
			inA := inF[ib+co:][:4]
			inB := inF[ib+d+co:][:4]
			// One weight temp, reused lane by lane: four long-lived weight
			// registers alongside eight accumulators spill.
			w := wR[0]
			s0 += inA[0] * w
			r0 += inB[0] * w
			w = wR[1]
			s1 += inA[1] * w
			r1 += inB[1] * w
			w = wR[2]
			s2 += inA[2] * w
			r2 += inB[2] * w
			w = wR[3]
			s3 += inA[3] * w
			r3 += inB[3] * w
		}
		oa := o0[co:][:4]
		oa[0] = clampF32(s0, lo, hi)
		oa[1] = clampF32(s1, lo, hi)
		oa[2] = clampF32(s2, lo, hi)
		oa[3] = clampF32(s3, lo, hi)
		ob := o1[co:][:4]
		ob[0] = clampF32(r0, lo, hi)
		ob[1] = clampF32(r1, lo, hi)
		ob[2] = clampF32(r2, lo, hi)
		ob[3] = clampF32(r3, lo, hi)
	}
	for ; co < oc; co++ {
		var s, r float32
		if bf != nil {
			s = bf[co]
			r = s
		}
		for t, ib := range taps {
			w := wF[wofs[t]+co]
			s += inF[ib+co] * w
			r += inF[ib+d+co] * w
		}
		o0[co] = clampF32(s, lo, hi)
		o1[co] = clampF32(r, lo, hi)
	}
}

// dwInteriorX returns the [lo, hi) range of output-x positions whose kernel
// window is fully inside the input width.
func dwInteriorX(a graph.Attrs, iw, kw, dw, ow int) (lo, hi int) {
	s := a.StrideW
	if a.PadL > 0 {
		lo = (a.PadL + s - 1) / s
	}
	// ox*s - PadL + (kw-1)*dw <= iw-1
	hi = (iw-1-(kw-1)*dw+a.PadL)/s + 1
	if hi > ow {
		hi = ow
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// depthwiseFloatTiled is the float depthwise kernel of the tiled backend.
func depthwiseFloatTiled(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, oc := w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	lo, hi := actClampF32(a.Activation)
	var bf []float32
	if bias != nil {
		bf = bias.F
	}
	inF, wF := in.F, w.F
	// Relative offsets of the full (all-valid) tap set; stack arrays keep
	// the kernel allocation-free.
	var relInA, relWA, tapInA, tapWA [maxDWTaps]int
	nt0 := 0
	for ky := 0; ky < kh; ky++ {
		for kx := 0; kx < kw; kx++ {
			relInA[nt0] = (ky*dh*iw + kx*dw) * ic
			relWA[nt0] = (ky*kw + kx) * oc
			nt0++
		}
	}
	relIn, relW := relInA[:nt0], relWA[:nt0]
	tapIn, tapW := &tapInA, &tapWA
	oxLo, oxHi := dwInteriorX(a, iw, kw, dw, ow)
	pairD := a.StrideW * ic
	border := func(b, oy, ox int) {
		nt := dwTapTable(a, oy, ox, ih, iw, ic, kh, kw, oc, dh, dw, b*ih, tapIn, tapW)
		outRow := out.F[((b*oh+oy)*ow+ox)*oc:][:oc]
		dwPixelF32(inF, wF, bf, outRow, (*tapIn)[:nt], (*tapW)[:nt], oc, lo, hi)
	}
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*a.StrideH - a.PadT
			if iy0 < 0 || iy0+(kh-1)*dh >= ih {
				for ox := 0; ox < ow; ox++ {
					border(b, oy, ox)
				}
				continue
			}
			for ox := 0; ox < oxLo; ox++ {
				border(b, oy, ox)
			}
			// Interior pixels: every tap is valid, so the offsets are the
			// precomputed relative table plus one base — no boundary tests,
			// no address multiplies — and adjacent pixels run as weight-
			// sharing pairs.
			rowOut := ((b*oh + oy) * ow) * oc
			ox := oxLo
			for ; ox+2 <= oxHi; ox += 2 {
				base := ((b*ih+iy0)*iw + ox*a.StrideW - a.PadL) * ic
				for t, r := range relIn {
					tapIn[t] = base + r
				}
				o0 := out.F[rowOut+ox*oc:][:oc]
				o1 := out.F[rowOut+(ox+1)*oc:][:oc]
				dwPixelPairF32(inF, wF, bf, o0, o1, tapIn[:len(relIn)], relW, pairD, oc, lo, hi)
			}
			if ox < oxHi {
				base := ((b*ih+iy0)*iw + ox*a.StrideW - a.PadL) * ic
				for t, r := range relIn {
					tapIn[t] = base + r
				}
				dwPixelF32(inF, wF, bf, out.F[rowOut+ox*oc:][:oc], tapIn[:len(relIn)], relW, oc, lo, hi)
				ox++
			}
			for ; ox < ow; ox++ {
				border(b, oy, ox)
			}
		}
	}
	return nil
}

// dwPixelQuant accumulates all oc channels of one output pixel in register
// blocks of four int32 accumulators, fusing bias and requantization into
// the store.
func dwPixelQuant(inU []uint8, wI []int8, bx []int32, outRow []uint8, taps, wofs []int, oc int, muls []quant.Multiplier, inZ, outZ, lo, hi int32) {
	co := 0
	for ; co+4 <= oc; co += 4 {
		var s0, s1, s2, s3 int32
		if bx != nil {
			s0, s1, s2, s3 = bx[co], bx[co+1], bx[co+2], bx[co+3]
		}
		for t, ib := range taps {
			inR := inU[ib+co:][:4]
			wR := wI[wofs[t]+co:][:4]
			s0 += (int32(inR[0]) - inZ) * int32(wR[0])
			s1 += (int32(inR[1]) - inZ) * int32(wR[1])
			s2 += (int32(inR[2]) - inZ) * int32(wR[2])
			s3 += (int32(inR[3]) - inZ) * int32(wR[3])
		}
		o := outRow[co:][:4]
		o[0] = clampU8(outZ+muls[co].Apply(s0), lo, hi)
		o[1] = clampU8(outZ+muls[co+1].Apply(s1), lo, hi)
		o[2] = clampU8(outZ+muls[co+2].Apply(s2), lo, hi)
		o[3] = clampU8(outZ+muls[co+3].Apply(s3), lo, hi)
	}
	for ; co < oc; co++ {
		var s int32
		if bx != nil {
			s = bx[co]
		}
		for t, ib := range taps {
			s += (int32(inU[ib+co]) - inZ) * int32(wI[wofs[t]+co])
		}
		outRow[co] = clampU8(outZ+muls[co].Apply(s), lo, hi)
	}
}

// depthwiseQuantTiled is the quantized depthwise kernel of the tiled
// backend: int32 register accumulators per channel block, bias and
// fixed-point requantization fused into the store. Bit-exact against
// depthwiseQuantImpl (integer accumulation is associative).
func depthwiseQuantTiled(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, oc := w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	muls, err := cachedConvMultipliers(c, oc)
	if err != nil {
		return err
	}
	inZ := inQ.ZeroPoint(0)
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)
	var bx []int32
	if bias != nil {
		bx = bias.X
	}
	inU, wI := in.U, w.I
	var relInA, relWA, tapInA, tapWA [maxDWTaps]int
	nt0 := 0
	for ky := 0; ky < kh; ky++ {
		for kx := 0; kx < kw; kx++ {
			relInA[nt0] = (ky*dh*iw + kx*dw) * ic
			relWA[nt0] = (ky*kw + kx) * oc
			nt0++
		}
	}
	relIn, relW := relInA[:nt0], relWA[:nt0]
	tapIn, tapW := &tapInA, &tapWA
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*a.StrideH - a.PadT
			interiorY := iy0 >= 0 && iy0+(kh-1)*dh < ih
			for ox := 0; ox < ow; ox++ {
				var taps, wofs []int
				if ix0 := ox*a.StrideW - a.PadL; interiorY && ix0 >= 0 && ix0+(kw-1)*dw < iw {
					base := ((b*ih+iy0)*iw + ix0) * ic
					for t, r := range relIn {
						tapIn[t] = base + r
					}
					taps, wofs = tapIn[:len(relIn)], relW
				} else {
					nt := dwTapTable(a, oy, ox, ih, iw, ic, kh, kw, oc, dh, dw, b*ih, tapIn, tapW)
					taps, wofs = (*tapIn)[:nt], (*tapW)[:nt]
				}
				outRow := out.U[((b*oh+oy)*ow+ox)*oc:][:oc]
				dwPixelQuant(inU, wI, bx, outRow, taps, wofs, oc, muls, inZ, outZ, lo, hi)
			}
		}
	}
	return nil
}
