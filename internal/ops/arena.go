package ops

import (
	"mlexray/internal/graph"
)

// Arena is the kernel scratch allocator: a set of typed slabs handed out
// bump-pointer style and reclaimed wholesale with Reset before every node
// executes. Kernels request transient buffers (im2col matrices, GEMM
// products, per-channel scale/shift tables, dequantization staging) through
// the Ctx instead of calling make per invoke, so a planned interpreter runs
// its entire hot loop without allocating.
//
// Two properties make this safe without per-kernel bookkeeping:
//
//   - Scratch is node-scoped. The interpreter resets the arena before each
//     kernel, so a request can never alias a buffer another node still needs.
//   - Growth never invalidates. When a request exceeds the current slab a
//     larger one replaces it; slices already handed out keep the old backing
//     array, which stays valid for the remainder of that node.
//
// Returned scratch is NOT zeroed — every kernel fully initializes what it
// requests (the same contract a fresh make only incidentally exceeds).
//
// The zero/nil Arena degrades to plain make calls, so kernels stay usable
// with hand-built Ctx values in tests and one-off tool code.
type Arena struct {
	f32 []float32
	f64 []float64
	i16 []int16
	idx []int

	nf32, nf64, ni16, nidx int
}

// NewArena returns an empty arena; Reserve or first use sizes the slabs.
func NewArena() *Arena { return &Arena{} }

// Reset reclaims all outstanding scratch. The interpreter calls this before
// every node, so slab capacity converges to the single largest node's need.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.nf32, a.nf64, a.ni16, a.nidx = 0, 0, 0, 0
}

// Reserve grows the slabs to at least the given element counts. The
// interpreter calls it at plan time with the per-node maxima from
// ScratchPlan, so even the first Invoke runs allocation-free.
func (a *Arena) Reserve(f32, f64, i16, idx int) {
	if a == nil {
		return
	}
	if f32 > len(a.f32) {
		a.f32 = make([]float32, f32)
	}
	if f64 > len(a.f64) {
		a.f64 = make([]float64, f64)
	}
	if i16 > len(a.i16) {
		a.i16 = make([]int16, i16)
	}
	if idx > len(a.idx) {
		a.idx = make([]int, idx)
	}
}

// F32 hands out n float32 of node-scoped scratch (uninitialized).
func (a *Arena) F32(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	if a.nf32+n > len(a.f32) {
		a.f32 = make([]float32, growSlab(len(a.f32), a.nf32+n))
		a.nf32 = 0
	}
	s := a.f32[a.nf32 : a.nf32+n : a.nf32+n]
	a.nf32 += n
	return s
}

// F64 hands out n float64 of node-scoped scratch (uninitialized).
func (a *Arena) F64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if a.nf64+n > len(a.f64) {
		a.f64 = make([]float64, growSlab(len(a.f64), a.nf64+n))
		a.nf64 = 0
	}
	s := a.f64[a.nf64 : a.nf64+n : a.nf64+n]
	a.nf64 += n
	return s
}

// I16 hands out n int16 of node-scoped scratch (uninitialized).
func (a *Arena) I16(n int) []int16 {
	if a == nil {
		return make([]int16, n)
	}
	if a.ni16+n > len(a.i16) {
		a.i16 = make([]int16, growSlab(len(a.i16), a.ni16+n))
		a.ni16 = 0
	}
	s := a.i16[a.ni16 : a.ni16+n : a.ni16+n]
	a.ni16 += n
	return s
}

// Idx hands out n ints of node-scoped scratch (uninitialized).
func (a *Arena) Idx(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	if a.nidx+n > len(a.idx) {
		a.idx = make([]int, growSlab(len(a.idx), a.nidx+n))
		a.nidx = 0
	}
	s := a.idx[a.nidx : a.nidx+n : a.nidx+n]
	a.nidx += n
	return s
}

// Bytes reports the arena's slab footprint, for memory accounting.
func (a *Arena) Bytes() int {
	if a == nil {
		return 0
	}
	return 4*len(a.f32) + 8*len(a.f64) + 2*len(a.i16) + 8*len(a.idx)
}

func growSlab(have, need int) int {
	if have*2 > need {
		return have * 2
	}
	return need
}

// ScratchPlan reports the scratch a node's kernel may request per invoke, in
// elements per slab type, for the given kernel backend. The interpreter
// reserves the per-node maximum at plan time — including the tiled backend's
// padded pack panels, which is what keeps steady-state Invoke at zero
// allocations. The numbers mirror the kernels' requests; a conservative
// overestimate (e.g. planning im2col space even under the reference
// resolver, which does not use it) only costs idle slab bytes, and an
// underestimate is still correct — the arena grows once at first use.
func ScratchPlan(n *graph.Node, kind ComputeKind, backend Backend, shapeOf func(id int) []int) (f32, f64, i16, idx int) {
	outShape := shapeOf(n.Outputs[0])
	switch n.Op {
	case graph.OpConv2D:
		w := shapeOf(n.Inputs[1])
		oc, kh, kw, ic := w[0], w[1], w[2], w[3]
		k := kh * kw * ic
		if kind == KindQuant {
			// The quantized lowerings reuse one per-element im2col buffer
			// across the batch loop, so only oh*ow rows are ever live; the
			// tiled backend pads the panel to the 4-row register tile.
			m := outShape[1] * outShape[2]
			if backend == BackendTiled {
				m = padUp(m, 4)
			}
			return 0, 0, m * k, 0
		}
		// The float lowerings span the whole batch in one GEMM: n*oh*ow
		// rows. The tiled backend packs a padded left panel and fuses the
		// epilogue, so it needs no separate product buffer.
		m := outShape[0] * outShape[1] * outShape[2]
		if backend == BackendTiled {
			return padUp(m, 4) * k, 0, 0, 0
		}
		return m*k + m*oc, 0, 0, 0
	case graph.OpDense:
		if backend == BackendTiled {
			in := shapeOf(n.Inputs[0])
			batch := in[0]
			inC := 1
			for _, d := range in[1:] {
				inC *= d
			}
			// Padded left panel: float activations or zero-corrected int16.
			if kind == KindQuant {
				return 0, 0, padUp(batch, 4) * inC, 0
			}
			return padUp(batch, 4) * inC, 0, 0, 0
		}
	case graph.OpDepthwiseConv2D:
		oc := outShape[len(outShape)-1]
		return oc, 0, 0, 0
	case graph.OpBatchNorm:
		ch := outShape[len(outShape)-1]
		return 2 * ch, 0, 0, 0
	case graph.OpSelfAttention:
		x := shapeOf(n.Inputs[0])
		t, d := x[1], x[2]
		need := 4*t*d + t
		if kind == KindHybrid {
			// Four dequantized projection matrices staged alongside.
			need += 4 * d * d
		}
		return need, 0, 0, 0
	case graph.OpSoftmax:
		if kind == KindQuant {
			return 0, outShape[len(outShape)-1], 0, 0
		}
	case graph.OpPad:
		return 0, 0, 0, len(shapeOf(n.Inputs[0]))
	case graph.OpResizeBilinear:
		return 4, 0, 0, 4
	}
	return 0, 0, 0, 0
}
