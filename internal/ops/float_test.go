package ops

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// ctxFor builds a kernel context directly, bypassing the interpreter.
func ctxFor(op graph.OpType, attrs graph.Attrs, ins []*tensor.Tensor, inQ []*quant.Params,
	out *tensor.Tensor, outQ *quant.Params) *Ctx {
	if inQ == nil {
		inQ = make([]*quant.Params, len(ins))
	}
	return &Ctx{
		Node:    &graph.Node{Op: op, Name: "t", Attrs: attrs},
		Inputs:  ins,
		Outputs: []*tensor.Tensor{out},
		InQ:     inQ,
		OutQ:    []*quant.Params{outQ},
	}
}

func randF32(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.F32, shape...)
	tensor.RandUniform(rng, t, -1, 1)
	return t
}

func TestConvFloatHandComputed(t *testing.T) {
	// 1x2x2x1 input, 1x1 kernel of weight 2, bias 0.5: out = 2*in + 0.5.
	in := tensor.FromFloats([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	w := tensor.FromFloats([]float32{2}, 1, 1, 1, 1)
	b := tensor.FromFloats([]float32{0.5}, 1)
	out := tensor.New(tensor.F32, 1, 2, 2, 1)
	ctx := ctxFor(graph.OpConv2D, graph.Attrs{StrideH: 1, StrideW: 1}, []*tensor.Tensor{in, w, b}, nil, out, nil)
	if err := convFloatRef(ctx); err != nil {
		t.Fatal(err)
	}
	want := []float32{2.5, 4.5, 6.5, 8.5}
	for i := range want {
		if out.F[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
}

func TestConvFloatIdentityKernel(t *testing.T) {
	// A centered delta 3x3 kernel with SAME padding reproduces the input.
	rng := rand.New(rand.NewSource(1))
	in := randF32(rng, 1, 5, 5, 2)
	w := tensor.New(tensor.F32, 2, 3, 3, 2)
	w.SetAt(1, 0, 1, 1, 0) // out ch 0 copies in ch 0
	w.SetAt(1, 1, 1, 1, 1) // out ch 1 copies in ch 1
	out := tensor.New(tensor.F32, 1, 5, 5, 2)
	attrs := graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1}
	ctx := ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{in, w}, nil, out, nil)
	if err := convFloatRef(ctx); err != nil {
		t.Fatal(err)
	}
	for i := range in.F {
		if math.Abs(float64(out.F[i]-in.F[i])) > 1e-6 {
			t.Fatalf("delta kernel not identity at %d: %v vs %v", i, out.F[i], in.F[i])
		}
	}
}

// Property: the optimized conv (im2col+GEMM) matches the reference conv.
func TestConvRefVsOptProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ih := 4 + rng.Intn(6)
		iw := 4 + rng.Intn(6)
		ic := 1 + rng.Intn(4)
		oc := 1 + rng.Intn(5)
		k := 1 + 2*rng.Intn(2) // 1 or 3
		stride := 1 + rng.Intn(2)
		in := randF32(rng, 1, ih, iw, ic)
		w := randF32(rng, oc, k, k, ic)
		b := randF32(rng, oc)
		pt, pb := graph.SamePadding(ih, k, stride, 1)
		pl, pr := graph.SamePadding(iw, k, stride, 1)
		attrs := graph.Attrs{StrideH: stride, StrideW: stride, PadT: pt, PadB: pb, PadL: pl, PadR: pr,
			Activation: graph.Activation(rng.Intn(3))}
		outShape, err := graph.InferShape(graph.OpConv2D, attrs, [][]int{in.Shape, w.Shape})
		if err != nil {
			return false
		}
		o1 := tensor.New(tensor.F32, outShape...)
		o2 := tensor.New(tensor.F32, outShape...)
		if err := convFloatRef(ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{in, w, b}, nil, o1, nil)); err != nil {
			return false
		}
		if err := convFloatOpt(ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{in, w, b}, nil, o2, nil)); err != nil {
			return false
		}
		return tensor.AllClose(o1, o2, 1e-5, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: optimized depthwise matches reference depthwise.
func TestDepthwiseRefVsOptProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ih := 4 + rng.Intn(6)
		ic := 1 + rng.Intn(6)
		mult := 1 + rng.Intn(2)
		stride := 1 + rng.Intn(2)
		in := randF32(rng, 1, ih, ih, ic)
		w := randF32(rng, 1, 3, 3, ic*mult)
		b := randF32(rng, ic*mult)
		pt, pb := graph.SamePadding(ih, 3, stride, 1)
		attrs := graph.Attrs{StrideH: stride, StrideW: stride, PadT: pt, PadB: pb, PadL: pt, PadR: pb,
			DepthMultiplier: mult}
		outShape, err := graph.InferShape(graph.OpDepthwiseConv2D, attrs, [][]int{in.Shape, w.Shape})
		if err != nil {
			return false
		}
		o1 := tensor.New(tensor.F32, outShape...)
		o2 := tensor.New(tensor.F32, outShape...)
		if err := depthwiseFloatRef(ctxFor(graph.OpDepthwiseConv2D, attrs, []*tensor.Tensor{in, w, b}, nil, o1, nil)); err != nil {
			return false
		}
		if err := depthwiseFloatOpt(ctxFor(graph.OpDepthwiseConv2D, attrs, []*tensor.Tensor{in, w, b}, nil, o2, nil)); err != nil {
			return false
		}
		return tensor.AllClose(o1, o2, 1e-5, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: dense ref matches dense opt, and conv is linear in its input.
func TestDenseRefVsOptAndLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randF32(rng, 3, 17)
	w := randF32(rng, 9, 17)
	b := randF32(rng, 9)
	o1 := tensor.New(tensor.F32, 3, 9)
	o2 := tensor.New(tensor.F32, 3, 9)
	if err := denseFloatRef(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in, w, b}, nil, o1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := denseFloatOpt(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in, w, b}, nil, o2, nil)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(o1, o2, 1e-5, 1e-5) {
		t.Error("dense ref vs opt mismatch")
	}
	// Linearity: dense(2x) - bias == 2*(dense(x) - bias).
	in2 := in.Clone()
	for i := range in2.F {
		in2.F[i] *= 2
	}
	o3 := tensor.New(tensor.F32, 3, 9)
	if err := denseFloatRef(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in2, w, b}, nil, o3, nil)); err != nil {
		t.Fatal(err)
	}
	for i := range o1.F {
		left := float64(o3.F[i] - b.F[i%9])
		right := 2 * float64(o1.F[i]-b.F[i%9])
		if math.Abs(left-right) > 1e-4 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, left, right)
		}
	}
}

func TestAvgPoolFloat(t *testing.T) {
	in := tensor.FromFloats([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 4, 4, 1)
	out := tensor.New(tensor.F32, 1, 2, 2, 1)
	attrs := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	if err := avgPoolFloat(ctxFor(graph.OpAvgPool2D, attrs, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.F[i] != want[i] {
			t.Errorf("avg[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
}

func TestMaxPoolFloat(t *testing.T) {
	in := tensor.FromFloats([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 4, 4, 1)
	out := tensor.New(tensor.F32, 1, 2, 2, 1)
	attrs := graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	if err := maxPoolFloat(ctxFor(graph.OpMaxPool2D, attrs, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out.F[i] != want[i] {
			t.Errorf("max[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
}

func TestMeanFloat(t *testing.T) {
	in := tensor.FromFloats([]float32{1, 10, 2, 20, 3, 30, 4, 40}, 1, 2, 2, 2)
	out := tensor.New(tensor.F32, 1, 2)
	if err := meanFloat(ctxFor(graph.OpMean, graph.Attrs{}, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	if out.F[0] != 2.5 || out.F[1] != 25 {
		t.Errorf("mean = %v", out.F)
	}
}

func TestPadFloat(t *testing.T) {
	in := tensor.FromFloats([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	out := tensor.New(tensor.F32, 1, 4, 4, 1)
	attrs := graph.Attrs{Paddings: [][2]int{{0, 0}, {1, 1}, {1, 1}, {0, 0}}}
	if err := padFloat(ctxFor(graph.OpPad, attrs, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 0 || out.At(0, 1, 1, 0) != 1 || out.At(0, 2, 2, 0) != 4 || out.At(0, 3, 3, 0) != 0 {
		t.Errorf("pad layout wrong: %v", out.F)
	}
}

func TestAddMulBroadcast(t *testing.T) {
	x := tensor.FromFloats([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 1, 2, 2, 2)
	gate := tensor.FromFloats([]float32{10, 100}, 1, 2)
	out := tensor.New(tensor.F32, 1, 2, 2, 2)
	if err := mulFloat(ctxFor(graph.OpMul, graph.Attrs{}, []*tensor.Tensor{x, gate}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	want := []float32{10, 200, 30, 400, 50, 600, 70, 800}
	for i := range want {
		if out.F[i] != want[i] {
			t.Errorf("mul[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
	if err := addFloat(ctxFor(graph.OpAdd, graph.Attrs{}, []*tensor.Tensor{x, x}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	if out.F[3] != 8 {
		t.Errorf("add = %v", out.F)
	}
	bad := tensor.New(tensor.F32, 1, 3)
	if err := addFloat(ctxFor(graph.OpAdd, graph.Attrs{}, []*tensor.Tensor{x, bad}, nil, out, nil)); err == nil {
		t.Error("accepted invalid broadcast")
	}
}

func TestConcatFloat(t *testing.T) {
	a := tensor.FromFloats([]float32{1, 2, 3, 4}, 1, 2, 1, 2)
	b := tensor.FromFloats([]float32{9, 8}, 1, 2, 1, 1)
	out := tensor.New(tensor.F32, 1, 2, 1, 3)
	if err := concatFloat(ctxFor(graph.OpConcat, graph.Attrs{Axis: 3}, []*tensor.Tensor{a, b}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 9, 3, 4, 8}
	for i := range want {
		if out.F[i] != want[i] {
			t.Errorf("concat[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
}

func TestActivationFunctions(t *testing.T) {
	cases := []struct {
		f    func(float64) float64
		x, y float64
	}{
		{reluF64, -1, 0}, {reluF64, 2, 2},
		{relu6F64, 7, 6}, {relu6F64, -1, 0}, {relu6F64, 3, 3},
		{hardSigmoidF64, -4, 0}, {hardSigmoidF64, 4, 1}, {hardSigmoidF64, 0, 0.5},
		{hardSwishF64, -4, 0}, {hardSwishF64, 4, 4}, {hardSwishF64, 0, 0},
		{sigmoidF64, 0, 0.5},
	}
	for i, cse := range cases {
		if got := cse.f(cse.x); math.Abs(got-cse.y) > 1e-9 {
			t.Errorf("case %d: f(%v) = %v, want %v", i, cse.x, got, cse.y)
		}
	}
}

// Property: softmax rows sum to 1 and are shift-invariant.
func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randF32(rng, 2, 7)
		out := tensor.New(tensor.F32, 2, 7)
		if err := softmaxFloat(ctxFor(graph.OpSoftmax, graph.Attrs{Axis: 1}, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
			return false
		}
		for r := 0; r < 2; r++ {
			var sum float64
			for i := 0; i < 7; i++ {
				sum += float64(out.F[r*7+i])
			}
			if math.Abs(sum-1) > 1e-5 {
				return false
			}
		}
		// Shift invariance.
		shifted := in.Clone()
		for i := range shifted.F {
			shifted.F[i] += 3.7
		}
		out2 := tensor.New(tensor.F32, 2, 7)
		if err := softmaxFloat(ctxFor(graph.OpSoftmax, graph.Attrs{Axis: 1}, []*tensor.Tensor{shifted}, nil, out2, nil)); err != nil {
			return false
		}
		return tensor.AllClose(out, out2, 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBatchNormFloat(t *testing.T) {
	x := tensor.FromFloats([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	gamma := tensor.FromFloats([]float32{2, 1}, 2)
	beta := tensor.FromFloats([]float32{0, 10}, 2)
	mean := tensor.FromFloats([]float32{1, 2}, 2)
	variance := tensor.FromFloats([]float32{4, 1}, 2)
	out := tensor.New(tensor.F32, 1, 1, 2, 2)
	ctx := ctxFor(graph.OpBatchNorm, graph.Attrs{Eps: 0},
		[]*tensor.Tensor{x, gamma, beta, mean, variance}, nil, out, nil)
	if err := batchNormFloat(ctx); err != nil {
		t.Fatal(err)
	}
	// ch0: gamma*(x-1)/2: x=1 -> 0; x=3 -> 2. ch1: (x-2)/1 + 10: x=2 -> 10; x=4 -> 12.
	want := []float32{0, 10, 2, 12}
	for i := range want {
		if math.Abs(float64(out.F[i]-want[i])) > 1e-4 {
			t.Errorf("bn[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randF32(rng, 2, 3, 8)
	gamma := tensor.New(tensor.F32, 8)
	gamma.Fill(1)
	beta := tensor.New(tensor.F32, 8)
	out := tensor.New(tensor.F32, 2, 3, 8)
	if err := layerNormFloat(ctxFor(graph.OpLayerNorm, graph.Attrs{}, []*tensor.Tensor{x, gamma, beta}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		var mean, sq float64
		for i := 0; i < 8; i++ {
			v := float64(out.F[r*8+i])
			mean += v
			sq += v * v
		}
		mean /= 8
		variance := sq/8 - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Errorf("row %d: mean %v var %v", r, mean, variance)
		}
	}
}

func TestEmbeddingFloat(t *testing.T) {
	ids := tensor.FromInt32([]int32{1, 0, 2}, 1, 3)
	table := tensor.FromFloats([]float32{0, 0, 1, 1, 2, 2}, 3, 2)
	out := tensor.New(tensor.F32, 1, 3, 2)
	if err := embeddingFloat(ctxFor(graph.OpEmbedding, graph.Attrs{}, []*tensor.Tensor{ids, table}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 1, 0, 0, 2, 2}
	for i := range want {
		if out.F[i] != want[i] {
			t.Errorf("emb[%d] = %v, want %v", i, out.F[i], want[i])
		}
	}
	bad := tensor.FromInt32([]int32{5}, 1, 1)
	outBad := tensor.New(tensor.F32, 1, 1, 2)
	if err := embeddingFloat(ctxFor(graph.OpEmbedding, graph.Attrs{}, []*tensor.Tensor{bad, table}, nil, outBad, nil)); err == nil {
		t.Error("accepted out-of-vocab id")
	}
}

// With zero Q/K projections every attention weight is uniform, so the
// attention output is the mean of the V projections — an analytically
// checkable case.
func TestSelfAttentionUniformCase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const T, D = 4, 6
	x := randF32(rng, 1, T, D)
	zeroW := tensor.New(tensor.F32, D, D)
	zeroB := tensor.New(tensor.F32, D)
	wv := randF32(rng, D, D)
	bv := randF32(rng, D)
	// Wo = identity, bo = 0.
	wo := tensor.New(tensor.F32, D, D)
	for i := 0; i < D; i++ {
		wo.F[i*D+i] = 1
	}
	out := tensor.New(tensor.F32, 1, T, D)
	ctx := ctxFor(graph.OpSelfAttention, graph.Attrs{NumHeads: 2},
		[]*tensor.Tensor{x, zeroW, zeroB, zeroW, zeroB, wv, bv, wo, tensor.New(tensor.F32, D)}, nil, out, nil)
	if err := selfAttentionFloat(ctx); err != nil {
		t.Fatal(err)
	}
	// Expected: mean over t of V(x_t).
	vproj := make([]float32, T*D)
	for ti := 0; ti < T; ti++ {
		for o := 0; o < D; o++ {
			acc := bv.F[o]
			for i := 0; i < D; i++ {
				acc += x.F[ti*D+i] * wv.F[o*D+i]
			}
			vproj[ti*D+o] = acc
		}
	}
	for o := 0; o < D; o++ {
		var mean float32
		for ti := 0; ti < T; ti++ {
			mean += vproj[ti*D+o]
		}
		mean /= T
		for ti := 0; ti < T; ti++ {
			if math.Abs(float64(out.F[ti*D+o]-mean)) > 1e-4 {
				t.Fatalf("attention[%d,%d] = %v, want uniform mean %v", ti, o, out.F[ti*D+o], mean)
			}
		}
	}
}

func TestResizeBilinearFloatIdentityAndConst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := randF32(rng, 1, 5, 5, 2)
	out := tensor.New(tensor.F32, 1, 5, 5, 2)
	if err := resizeBilinearFloat(ctxFor(graph.OpResizeBilinear, graph.Attrs{TargetH: 5, TargetW: 5}, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(in, out, 1e-6, 1e-6) {
		t.Error("identity resize changed values")
	}
	cst := tensor.New(tensor.F32, 1, 4, 4, 1)
	cst.Fill(3)
	out2 := tensor.New(tensor.F32, 1, 9, 9, 1)
	if err := resizeBilinearFloat(ctxFor(graph.OpResizeBilinear, graph.Attrs{TargetH: 9, TargetW: 9}, []*tensor.Tensor{cst}, nil, out2, nil)); err != nil {
		t.Fatal(err)
	}
	for _, v := range out2.F {
		if math.Abs(float64(v)-3) > 1e-6 {
			t.Fatalf("constant resize produced %v", v)
		}
	}
}

func TestReshapeAnyCopies(t *testing.T) {
	in := tensor.FromFloats([]float32{1, 2, 3, 4}, 2, 2)
	out := tensor.New(tensor.F32, 4)
	if err := reshapeAny(ctxFor(graph.OpReshape, graph.Attrs{NewShape: []int{4}}, []*tensor.Tensor{in}, nil, out, nil)); err != nil {
		t.Fatal(err)
	}
	if out.F[3] != 4 {
		t.Error("reshape copy")
	}
}

func TestKindOf(t *testing.T) {
	tensors := []graph.TensorInfo{
		{Name: "f", DType: tensor.F32},
		{Name: "u", DType: tensor.U8},
		{Name: "w8", DType: tensor.I8, Const: true},
		{Name: "fw", DType: tensor.F32, Const: true},
	}
	n := &graph.Node{Op: graph.OpDense, Inputs: []int{0, 3}, Outputs: []int{0}}
	if k := KindOf(n, tensors); k != KindFloat {
		t.Errorf("float dense kind = %v", k)
	}
	n = &graph.Node{Op: graph.OpDense, Inputs: []int{1, 2}, Outputs: []int{1}}
	if k := KindOf(n, tensors); k != KindQuant {
		t.Errorf("quant dense kind = %v", k)
	}
	n = &graph.Node{Op: graph.OpDense, Inputs: []int{0, 2}, Outputs: []int{0}}
	if k := KindOf(n, tensors); k != KindHybrid {
		t.Errorf("hybrid dense kind = %v", k)
	}
	n = &graph.Node{Op: graph.OpQuantize, Inputs: []int{0}, Outputs: []int{1}}
	if k := KindOf(n, tensors); k != KindQuant {
		t.Errorf("quantize kind = %v", k)
	}
}

func TestResolverLookup(t *testing.T) {
	for _, r := range []*Resolver{NewReference(Fixed()), NewOptimized(Fixed()), NewOptimized(Historical())} {
		if _, err := r.Lookup(graph.OpConv2D, KindFloat); err != nil {
			t.Errorf("%s: conv float missing: %v", r.Name(), err)
		}
		if _, err := r.Lookup(graph.OpConv2D, KindQuant); err != nil {
			t.Errorf("%s: conv quant missing: %v", r.Name(), err)
		}
		if _, err := r.Lookup(graph.OpBatchNorm, KindQuant); err == nil {
			t.Errorf("%s: quantized batchnorm should be unsupported", r.Name())
		}
	}
	if NewReference(Fixed()).Name() != "reference" || NewOptimized(Fixed()).Name() != "optimized" {
		t.Error("resolver names")
	}
}

func TestEstimateCost(t *testing.T) {
	shapes := map[int][]int{0: {1, 8, 8, 3}, 1: {16, 3, 3, 3}, 2: {16}, 3: {1, 8, 8, 16}}
	shapeOf := func(id int) []int { return shapes[id] }
	sizeOf := func(id int) int { return 4 }
	n := &graph.Node{Op: graph.OpConv2D, Inputs: []int{0, 1, 2}, Outputs: []int{3}}
	c := EstimateCost(n, shapeOf, sizeOf)
	wantMACs := int64(1 * 8 * 8 * 16 * 3 * 3 * 3)
	if c.MACs != wantMACs {
		t.Errorf("conv MACs = %d, want %d", c.MACs, wantMACs)
	}
	if c.Bytes <= 0 {
		t.Error("bytes should be positive")
	}
	n = &graph.Node{Op: graph.OpDepthwiseConv2D, Inputs: []int{0, 1}, Outputs: []int{3}}
	c = EstimateCost(n, shapeOf, sizeOf)
	if c.MACs != int64(1*8*8*16*3*3) {
		t.Errorf("dw MACs = %d", c.MACs)
	}
}
