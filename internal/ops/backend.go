package ops

import "fmt"

// Backend selects the GEMM micro-kernel family the compute kernels lower
// through. It is orthogonal to the Resolver: the resolver picks the *op
// lowering* (reference loop nests vs im2col+GEMM, including the historical
// defects), while the backend picks the *inner GEMM kernel* the optimized
// lowering dispatches to. The reference resolver ignores the backend — its
// kernels never reach a GEMM.
//
// The zero value is BackendBlocked, today's gemmNT, so hand-built Ctx values
// and existing callers keep their exact behaviour.
type Backend int

const (
	// BackendBlocked is the cache-blocked 4-column gemmNT kernel (the
	// pre-seam default). Float accumulation runs per output element over k in
	// ascending order: bitwise identical to BackendReference.
	BackendBlocked Backend = iota
	// BackendReference is the naive single-column dot-product GEMM. Same
	// ascending-k summation order as BackendBlocked, so float outputs are
	// bitwise identical — it exists as the slow anchor the faster kernels are
	// diffed against.
	BackendReference
	// BackendTiled is the register-tiled kernel family: the float column-quad
	// (1x4) kernel runs over in-place row operands, the int8 path packs
	// int16-widened panels for its 4x2 tile, and the bias/activation
	// (float) or requantization (int8) epilogue is fused into the tile store.
	// The quantized path accumulates in int32 — integer addition is
	// associative, so it is bit-exact against the reference kernel. The float
	// path is contractually only validator-bounded against reference (see
	// BitwiseStable), even though the current tile kernel happens to preserve
	// ascending-k per-element order.
	BackendTiled
)

// String returns the -kernel flag spelling of the backend.
func (b Backend) String() string {
	switch b {
	case BackendBlocked:
		return "blocked"
	case BackendReference:
		return "reference"
	case BackendTiled:
		return "tiled"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses a -kernel flag value. The empty string selects the
// default blocked backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "blocked":
		return BackendBlocked, nil
	case "reference", "ref":
		return BackendReference, nil
	case "tiled":
		return BackendTiled, nil
	default:
		return BackendBlocked, fmt.Errorf("ops: unknown kernel backend %q (want reference, blocked or tiled)", s)
	}
}

// Backends lists every selectable backend, in documentation order.
func Backends() []Backend {
	return []Backend{BackendReference, BackendBlocked, BackendTiled}
}

// BitwiseStable reports whether the backend's float GEMM promises bitwise
// identity with the reference summation order. Reference and blocked both
// accumulate each output element over k ascending, so they are stable.
// Tiled float is declared validator-bounded instead: the packed kernel is
// free to reassociate the accumulation (the benign float-discrepancy class
// the paper documents), and validators must bound it with agreement/nRMSE
// thresholds rather than equality. Quantized GEMM is bit-exact on every
// backend regardless — int32 addition is associative.
func (b Backend) BitwiseStable() bool {
	return b != BackendTiled
}
