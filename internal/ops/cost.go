package ops

import (
	"mlexray/internal/graph"
)

// Cost is a first-order work estimate for one node, the input to the device
// latency model: multiply-accumulates for compute-bound ops and bytes
// touched for memory-bound ops.
type Cost struct {
	MACs  int64
	Bytes int64
}

// EstimateCost computes the cost of a node given a resolver for tensor
// shapes. It is exact for the convolution family and a reasonable byte
// count elsewhere.
func EstimateCost(n *graph.Node, shapeOf func(id int) []int, elemSize func(id int) int) Cost {
	elems := func(id int) int64 {
		v := int64(1)
		for _, d := range shapeOf(id) {
			v *= int64(d)
		}
		return v
	}
	var bytes int64
	for _, id := range n.Inputs {
		bytes += elems(id) * int64(elemSize(id))
	}
	for _, id := range n.Outputs {
		bytes += elems(id) * int64(elemSize(id))
	}
	c := Cost{Bytes: bytes}
	switch n.Op {
	case graph.OpConv2D:
		out := shapeOf(n.Outputs[0])
		w := shapeOf(n.Inputs[1])
		// N*OH*OW*outC * kh*kw*inC
		c.MACs = int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) *
			int64(w[1]) * int64(w[2]) * int64(w[3])
	case graph.OpDepthwiseConv2D:
		out := shapeOf(n.Outputs[0])
		w := shapeOf(n.Inputs[1])
		c.MACs = int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) *
			int64(w[1]) * int64(w[2])
	case graph.OpDense:
		out := shapeOf(n.Outputs[0])
		w := shapeOf(n.Inputs[1])
		c.MACs = int64(out[0]) * int64(w[0]) * int64(w[1])
	case graph.OpSelfAttention:
		in := shapeOf(n.Inputs[0])
		nb, t, d := int64(in[0]), int64(in[1]), int64(in[2])
		// 4 projections + 2 attention matmuls.
		c.MACs = nb * (4*t*d*d + 2*t*t*d)
	case graph.OpAvgPool2D, graph.OpMaxPool2D:
		out := shapeOf(n.Outputs[0])
		k := int64(max1(n.Attrs.KernelH)) * int64(max1(n.Attrs.KernelW))
		c.MACs = int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) * k
	case graph.OpMean:
		c.MACs = elems(n.Inputs[0])
	case graph.OpBatchNorm, graph.OpLayerNorm, graph.OpAdd, graph.OpMul,
		graph.OpHardSwish, graph.OpHardSigmoid, graph.OpSigmoid, graph.OpSoftmax:
		c.MACs = elems(n.Outputs[0])
	case graph.OpEmbedding, graph.OpResizeBilinear:
		c.MACs = elems(n.Outputs[0])
	default:
		// Data-movement ops: Pad, Concat, Reshape, ReLU, Quantize, ...
		c.MACs = 0
	}
	return c
}
