package ops

import (
	"mlexray/internal/graph"
)

// Cost is a first-order work estimate for one node, the input to the device
// latency model: multiply-accumulates for compute-bound ops and bytes
// touched for memory-bound ops, plus the active kernel backend's efficiency
// terms so modeled latency does not pretend every backend runs gemmNT's
// constants.
type Cost struct {
	MACs  int64
	Bytes int64
	// PackBytes counts the panel-packing traffic the tiled backend adds per
	// invoke: the int8 path's zero-corrected int16 activation panel, written
	// and re-read. Zero for the float path (its operands are used in place
	// or go through the same im2col as the blocked backend) and for backends
	// that do not pack.
	PackBytes int64
	// MACTimeFactor scales the per-MAC latency coefficient for the active
	// backend relative to the blocked baseline (reference > 1, tiled < 1).
	// Zero means 1.0, so a zero-value Cost models the pre-seam behaviour.
	MACTimeFactor float64
}

// TimeFactor returns the backend MAC-time multiplier, defaulting to 1.
func (c Cost) TimeFactor() float64 {
	if c.MACTimeFactor == 0 {
		return 1
	}
	return c.MACTimeFactor
}

// Backend MAC-time factors for the kernel-family ops (Conv2D, Dense,
// DepthwiseConv2D), relative to the blocked baseline. Calibrated against
// the BenchmarkInvokeGemm per-backend profiles on the bench host: the naive
// reference float dot loop runs a single dependency chain (the quantized
// dot loop is shared between reference and blocked, so no factor there);
// the tiled conv/dense path fuses the epilogue, skips im2col for pointwise
// and narrow-stem convolutions and runs the column-quad (1x4) register
// kernel over in-place row operands; the tiled depthwise kernels replace
// the scratch-slab accumulate with register blocks.
const (
	macFactorRefFloat     = 1.5
	macFactorTiledFloat   = 0.65
	macFactorTiledQuant   = 0.55
	macFactorTiledDWFloat = 0.7
	macFactorTiledDWQuant = 0.6
)

// EstimateCost computes the blocked-backend cost of a node. It is exact for
// the convolution family and a reasonable byte count elsewhere.
func EstimateCost(n *graph.Node, shapeOf func(id int) []int, elemSize func(id int) int) Cost {
	return EstimateCostBackend(n, KindFloat, BackendBlocked, shapeOf, elemSize)
}

// EstimateCostBackend computes the cost of a node under a specific compute
// kind and kernel backend. Kind and backend only influence the kernel-family
// ops (Conv2D, Dense, DepthwiseConv2D): other nodes never reach the backend
// seam.
func EstimateCostBackend(n *graph.Node, kind ComputeKind, backend Backend, shapeOf func(id int) []int, elemSize func(id int) int) Cost {
	c := estimateBaseCost(n, shapeOf, elemSize)
	if n.Op == graph.OpDepthwiseConv2D {
		// The depthwise kernels never pack panels; only the tiled register
		// blocks change the per-MAC time.
		if backend == BackendTiled {
			if kind == KindQuant {
				c.MACTimeFactor = macFactorTiledDWQuant
			} else {
				c.MACTimeFactor = macFactorTiledDWFloat
			}
		}
		return c
	}
	switch n.Op {
	case graph.OpConv2D, graph.OpDense:
	default:
		return c
	}
	switch backend {
	case BackendReference:
		if kind != KindQuant {
			// The quantized dot loop is shared between reference and blocked.
			c.MACTimeFactor = macFactorRefFloat
		}
	case BackendTiled:
		if kind == KindQuant {
			c.MACTimeFactor = macFactorTiledQuant
			// Panel traffic, quantized path only: the zero-corrected int16
			// activation panel is written once and re-read once per invoke
			// (the widened weight panels are packed once per node and
			// amortize to nothing over a replay). The float path uses its
			// operands in place — or the same im2col the blocked backend
			// pays — so it adds no packing bytes.
			if c.MACs > 0 {
				out := shapeOf(n.Outputs[0])
				oc := int64(out[len(out)-1])
				if oc > 0 {
					kRows := c.MACs / oc // m*k elements in the left panel
					c.PackBytes = 2 * kRows * 2
				}
			}
		} else {
			c.MACTimeFactor = macFactorTiledFloat
		}
	}
	return c
}

// estimateBaseCost is the backend-independent MAC/byte estimate.
func estimateBaseCost(n *graph.Node, shapeOf func(id int) []int, elemSize func(id int) int) Cost {
	elems := func(id int) int64 {
		v := int64(1)
		for _, d := range shapeOf(id) {
			v *= int64(d)
		}
		return v
	}
	var bytes int64
	for _, id := range n.Inputs {
		bytes += elems(id) * int64(elemSize(id))
	}
	for _, id := range n.Outputs {
		bytes += elems(id) * int64(elemSize(id))
	}
	c := Cost{Bytes: bytes}
	switch n.Op {
	case graph.OpConv2D:
		out := shapeOf(n.Outputs[0])
		w := shapeOf(n.Inputs[1])
		// N*OH*OW*outC * kh*kw*inC
		c.MACs = int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) *
			int64(w[1]) * int64(w[2]) * int64(w[3])
	case graph.OpDepthwiseConv2D:
		out := shapeOf(n.Outputs[0])
		w := shapeOf(n.Inputs[1])
		c.MACs = int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) *
			int64(w[1]) * int64(w[2])
	case graph.OpDense:
		out := shapeOf(n.Outputs[0])
		w := shapeOf(n.Inputs[1])
		c.MACs = int64(out[0]) * int64(w[0]) * int64(w[1])
	case graph.OpSelfAttention:
		in := shapeOf(n.Inputs[0])
		nb, t, d := int64(in[0]), int64(in[1]), int64(in[2])
		// 4 projections + 2 attention matmuls.
		c.MACs = nb * (4*t*d*d + 2*t*t*d)
	case graph.OpAvgPool2D, graph.OpMaxPool2D:
		out := shapeOf(n.Outputs[0])
		k := int64(max1(n.Attrs.KernelH)) * int64(max1(n.Attrs.KernelW))
		c.MACs = int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) * k
	case graph.OpMean:
		c.MACs = elems(n.Inputs[0])
	case graph.OpBatchNorm, graph.OpLayerNorm, graph.OpAdd, graph.OpMul,
		graph.OpHardSwish, graph.OpHardSigmoid, graph.OpSigmoid, graph.OpSoftmax:
		c.MACs = elems(n.Outputs[0])
	case graph.OpEmbedding, graph.OpResizeBilinear:
		c.MACs = elems(n.Outputs[0])
	default:
		// Data-movement ops: Pad, Concat, Reshape, ReLU, Quantize, ...
		c.MACs = 0
	}
	return c
}
