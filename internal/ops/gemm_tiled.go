package ops

import (
	"math"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// The tiled backend: register-tiled GEMM micro-kernels with fused epilogues
// over contiguous row operands, mirroring how TFLite's production path
// actually earns its speed.
//
// Layout. Both operands are contiguous k-length rows. The float path uses
// them in place: the [oc, k] row-major weight tensor already is the right-
// side row layout, and the left side is either the activation matrix itself
// (pointwise convolutions, dense) or the arena im2col buffer. The int8 path
// genuinely packs: weights are widened to int16 row panels padded to the
// 2-column tile once per node and cached on the Ctx, and activations are
// zero-corrected into an int16 left panel per invoke. On a scalar target
// the interleaved-panel layout classic SIMD kernels use costs more in
// packing than it returns in locality; row operands keep the inner loops
// free of bounds checks via equal-length re-slicing.
//
// Micro-kernels. Float runs a 1x4 column-quad tile (see gemmTiledFusedF32
// for why wider row tiles lose on the deployment hosts); int8 runs a 4x2
// tile whose eight int32 accumulators amortize the int16 widening of the
// activation side. Each accumulator sums its k terms in ascending order,
// but the tiled float contract does NOT promise that (see
// Backend.BitwiseStable): validators must bound it, not expect equality.
//
// Epilogue fusion. Bias add + activation (float) and bias add +
// requantization + clamp (int8) happen in the tile store. The blocked path's
// separate product buffer, its zeroing pass and its re-read are gone, and
// pointwise (1x1 stride-1 unpadded) convolutions skip im2col entirely: the
// input activation matrix already IS the left operand.

// padUp rounds x up to a multiple of m (m a power of two is not required).
func padUp(x, m int) int {
	r := x % m
	if r == 0 {
		return x
	}
	return x + m - r
}

// zeroF32 clears dst.
func zeroF32(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
}

// zeroI16 clears dst.
func zeroI16(dst []int16) {
	for i := range dst {
		dst[i] = 0
	}
}

// actClampF32 lowers the fused activation to a [lo, hi] clamp computed once
// per kernel call, so the tile store needs two branchless selects instead of
// a per-element switch. NaN survives the clamp (min/max propagate it) and
// ActNone's infinite bounds leave every value untouched.
func actClampF32(act graph.Activation) (lo, hi float32) {
	switch act {
	case graph.ActReLU:
		return 0, float32(math.Inf(1))
	case graph.ActReLU6:
		return 0, 6
	}
	return float32(math.Inf(-1)), float32(math.Inf(1))
}

// clampF32 clamps v to [lo, hi]; NaN passes through (both compares false).
// Deliberately compare-and-branch: the builtin float min/max carry Go's
// -0/NaN ordering semantics and lower to a ~10-uop MINSS/POR fixup sequence,
// measurably slower here than two well-predicted branches.
func clampF32(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// gemmTiledFusedF32 computes out[i,j] = act(sum_p a[i,p]*b[j,p] + bias[j])
// over the row-major left operand a (m rows of k; any pad rows a packed
// panel carries are simply never read) and the packed right panel b. out is
// the dense m x n result. bias may be nil.
//
// The register tile is 1x4: one activation row against four weight rows,
// four bias-seeded accumulator chains. A wider 4x2 tile (eight chains,
// fewer loads per MAC) was raced against this shape on every layer of the
// benchmark model and lost by 15-20% — the deployment hosts issue scalar FP
// adds and muls on separate pipes, so the column quad's extra loads are
// free while its shorter dependency windows retire faster. The k loop is
// unrolled by two (eight independent FMAs per branch), and k == 8 — the
// bottleneck depth of every pointwise expand layer, where loop overhead
// dominates eight-term dots — takes a fully straight-line body with the
// activation row held in registers. Each output element accumulates
// bias-first then p ascending in every variant, so neither the tile shape
// nor the unrolling is visible even at the bit level.
func gemmTiledFusedF32(a, b, bias, out []float32, m, n, k int, act graph.Activation) {
	if k == 8 {
		gemmTiledFusedF32K8(a, b, bias, out, m, n, act)
		return
	}
	lo, hi := actClampF32(act)
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		oi := out[i*n:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			// Equal-length re-slices let the compiler drop every bounds
			// check in the 4-MAC inner loop (same trick as gemmNT).
			b0 := b[j*k:][:len(ai)]
			b1 := b[(j+1)*k:][:len(ai)]
			b2 := b[(j+2)*k:][:len(ai)]
			b3 := b[(j+3)*k:][:len(ai)]
			var s0, s1, s2, s3 float32
			if bias != nil {
				s0, s1, s2, s3 = bias[j], bias[j+1], bias[j+2], bias[j+3]
			}
			p := 0
			for ; p+2 <= len(ai); p += 2 {
				av0, av1 := ai[p], ai[p+1]
				s0 += av0 * b0[p]
				s1 += av0 * b1[p]
				s2 += av0 * b2[p]
				s3 += av0 * b3[p]
				s0 += av1 * b0[p+1]
				s1 += av1 * b1[p+1]
				s2 += av1 * b2[p+1]
				s3 += av1 * b3[p+1]
			}
			if p < len(ai) {
				av := ai[p]
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			oi[j] = clampF32(s0, lo, hi)
			oi[j+1] = clampF32(s1, lo, hi)
			oi[j+2] = clampF32(s2, lo, hi)
			oi[j+3] = clampF32(s3, lo, hi)
		}
		for ; j < n; j++ {
			// Column tail: single-chain dot; only real (non-pad) b rows are
			// ever touched.
			bj := b[j*k:][:len(ai)]
			var s float32
			if bias != nil {
				s = bias[j]
			}
			for p, av := range ai {
				s += av * bj[p]
			}
			oi[j] = clampF32(s, lo, hi)
		}
	}
}

// gemmTiledFusedF32K8 is gemmTiledFusedF32 specialized to k == 8: the eight
// activation values of the row live in registers across every column quad,
// and each quad's 32 MACs run branch-free. Identical accumulation order to
// the general kernel, measured ~25% faster on the k == 8 expand layers.
func gemmTiledFusedF32K8(a, b, bias, out []float32, m, n int, act graph.Activation) {
	lo, hi := actClampF32(act)
	for i := 0; i < m; i++ {
		ai := a[i*8 : i*8+8]
		a0, a1, a2, a3 := ai[0], ai[1], ai[2], ai[3]
		a4, a5, a6, a7 := ai[4], ai[5], ai[6], ai[7]
		oi := out[i*n:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*8:][:8]
			b1 := b[(j+1)*8:][:8]
			b2 := b[(j+2)*8:][:8]
			b3 := b[(j+3)*8:][:8]
			var s0, s1, s2, s3 float32
			if bias != nil {
				s0, s1, s2, s3 = bias[j], bias[j+1], bias[j+2], bias[j+3]
			}
			s0 += a0 * b0[0]
			s0 += a1 * b0[1]
			s0 += a2 * b0[2]
			s0 += a3 * b0[3]
			s0 += a4 * b0[4]
			s0 += a5 * b0[5]
			s0 += a6 * b0[6]
			s0 += a7 * b0[7]
			s1 += a0 * b1[0]
			s1 += a1 * b1[1]
			s1 += a2 * b1[2]
			s1 += a3 * b1[3]
			s1 += a4 * b1[4]
			s1 += a5 * b1[5]
			s1 += a6 * b1[6]
			s1 += a7 * b1[7]
			s2 += a0 * b2[0]
			s2 += a1 * b2[1]
			s2 += a2 * b2[2]
			s2 += a3 * b2[3]
			s2 += a4 * b2[4]
			s2 += a5 * b2[5]
			s2 += a6 * b2[6]
			s2 += a7 * b2[7]
			s3 += a0 * b3[0]
			s3 += a1 * b3[1]
			s3 += a2 * b3[2]
			s3 += a3 * b3[3]
			s3 += a4 * b3[4]
			s3 += a5 * b3[5]
			s3 += a6 * b3[6]
			s3 += a7 * b3[7]
			oi[j] = clampF32(s0, lo, hi)
			oi[j+1] = clampF32(s1, lo, hi)
			oi[j+2] = clampF32(s2, lo, hi)
			oi[j+3] = clampF32(s3, lo, hi)
		}
		for ; j < n; j++ {
			bj := b[j*8:][:8]
			var s float32
			if bias != nil {
				s = bias[j]
			}
			s += a0 * bj[0]
			s += a1 * bj[1]
			s += a2 * bj[2]
			s += a3 * bj[3]
			s += a4 * bj[4]
			s += a5 * bj[5]
			s += a6 * bj[6]
			s += a7 * bj[7]
			oi[j] = clampF32(s, lo, hi)
		}
	}
}

// gemmTiledFusedQuant is the int8 fast path: int16 zero-corrected activations
// against int16-widened weights, int32 accumulation, with the bias add,
// fixed-point requantization and clamp fused into the tile store. Integer
// addition is associative, so any accumulation order — including this tiled
// one — is bit-exact against the reference kernel. a has padUp(m,4) rows of
// k; wp has padUp(n,2) rows of k. out[outBase:] receives the m x n block.
func gemmTiledFusedQuant(a []int16, wp []int16, bias *tensor.Tensor, out []uint8, outBase, m, n, k int, muls []quant.Multiplier, outZ, lo, hi int32) {
	var bx []int32
	if bias != nil {
		bx = bias.X
	}
	for i0 := 0; i0 < m; i0 += 4 {
		a0s := a[i0*k : i0*k+k]
		a1s := a[(i0+1)*k:][:len(a0s)]
		a2s := a[(i0+2)*k:][:len(a0s)]
		a3s := a[(i0+3)*k:][:len(a0s)]
		if m-i0 >= 4 {
			// Full 4-row tile: requantize and store directly from the
			// accumulator registers.
			o0 := out[outBase+i0*n:][:n]
			o1 := out[outBase+(i0+1)*n:][:n]
			o2 := out[outBase+(i0+2)*n:][:n]
			o3 := out[outBase+(i0+3)*n:][:n]
			j0 := 0
			for ; j0+2 <= n; j0 += 2 {
				b0s := wp[j0*k:][:len(a0s)]
				b1s := wp[(j0+1)*k:][:len(a0s)]
				var c00, c01, c10, c11, c20, c21, c30, c31 int32
				for p, a0v := range a0s {
					b0, b1 := int32(b0s[p]), int32(b1s[p])
					a0 := int32(a0v)
					a1, a2, a3 := int32(a1s[p]), int32(a2s[p]), int32(a3s[p])
					c00 += a0 * b0
					c01 += a0 * b1
					c10 += a1 * b0
					c11 += a1 * b1
					c20 += a2 * b0
					c21 += a2 * b1
					c30 += a3 * b0
					c31 += a3 * b1
				}
				var bb0, bb1 int32
				if bx != nil {
					bb0, bb1 = bx[j0], bx[j0+1]
				}
				m0, m1 := muls[j0], muls[j0+1]
				o0[j0] = clampU8(outZ+m0.Apply(c00+bb0), lo, hi)
				o0[j0+1] = clampU8(outZ+m1.Apply(c01+bb1), lo, hi)
				o1[j0] = clampU8(outZ+m0.Apply(c10+bb0), lo, hi)
				o1[j0+1] = clampU8(outZ+m1.Apply(c11+bb1), lo, hi)
				o2[j0] = clampU8(outZ+m0.Apply(c20+bb0), lo, hi)
				o2[j0+1] = clampU8(outZ+m1.Apply(c21+bb1), lo, hi)
				o3[j0] = clampU8(outZ+m0.Apply(c30+bb0), lo, hi)
				o3[j0+1] = clampU8(outZ+m1.Apply(c31+bb1), lo, hi)
			}
			if j0 < n {
				b0s := wp[j0*k:][:len(a0s)]
				var c0, c1, c2, c3 int32
				for p, a0v := range a0s {
					b0 := int32(b0s[p])
					c0 += int32(a0v) * b0
					c1 += int32(a1s[p]) * b0
					c2 += int32(a2s[p]) * b0
					c3 += int32(a3s[p]) * b0
				}
				var bb int32
				if bx != nil {
					bb = bx[j0]
				}
				m0 := muls[j0]
				o0[j0] = clampU8(outZ+m0.Apply(c0+bb), lo, hi)
				o1[j0] = clampU8(outZ+m0.Apply(c1+bb), lo, hi)
				o2[j0] = clampU8(outZ+m0.Apply(c2+bb), lo, hi)
				o3[j0] = clampU8(outZ+m0.Apply(c3+bb), lo, hi)
			}
			continue
		}
		rows := m - i0
		for j0 := 0; j0 < n; j0 += 2 {
			b0s := wp[j0*k:][:len(a0s)]
			b1s := wp[(j0+1)*k:][:len(a0s)]
			var c00, c01, c10, c11, c20, c21, c30, c31 int32
			for p, a0v := range a0s {
				b0, b1 := int32(b0s[p]), int32(b1s[p])
				a0 := int32(a0v)
				a1, a2, a3 := int32(a1s[p]), int32(a2s[p]), int32(a3s[p])
				c00 += a0 * b0
				c01 += a0 * b1
				c10 += a1 * b0
				c11 += a1 * b1
				c20 += a2 * b0
				c21 += a2 * b1
				c30 += a3 * b0
				c31 += a3 * b1
			}
			acc := [8]int32{c00, c01, c10, c11, c20, c21, c30, c31}
			cols := min(2, n-j0)
			for r := 0; r < rows; r++ {
				base := outBase + (i0+r)*n + j0
				for q := 0; q < cols; q++ {
					v := acc[r*2+q]
					if bias != nil {
						v += bias.X[j0+q]
					}
					out[base+q] = clampU8(outZ+muls[j0+q].Apply(v), lo, hi)
				}
			}
		}
	}
}

// packWidenI8 widens the n x k int8 weight matrix to int16 panels padded to
// a multiple of 2 rows. Done once per node and cached: the quantized
// micro-kernel then multiplies int16*int16 without per-element widening of
// the weight side competing with the activation side for conversion work.
func packWidenI8(src []int8, n, k int) []int16 {
	nPad := padUp(n, 2)
	dst := make([]int16, nPad*k)
	for i, v := range src[:n*k] {
		dst[i] = int16(v)
	}
	return dst
}

// pointwiseConv reports whether the convolution is a pure 1x1 stride-1
// unpadded mapping, in which case the im2col matrix is the input activation
// matrix itself and the lowering can skip materializing it.
func pointwiseConv(a graph.Attrs, kh, kw int) bool {
	return kh == 1 && kw == 1 &&
		a.StrideH == 1 && a.StrideW == 1 &&
		a.PadT == 0 && a.PadB == 0 && a.PadL == 0 && a.PadR == 0
}

// convFloatTiled is Conv2D lowered through the fused tiled path: pointwise
// convolutions feed the input straight into the micro-kernel, everything
// else goes through im2col into the arena left operand; the [oc, k]
// row-major weight tensor already is the right-side row layout the kernel
// wants, so it is used in place; bias and activation are fused into the
// tile store.
func convFloatTiled(c *Ctx) error {
	if w, err := c.In(1); err == nil && convDirectSupported(c.Node.Attrs, w.Shape[1], w.Shape[2], w.Shape[3]) {
		return convFloatTiledDirect(c)
	}
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	n := in.Shape[0]
	oc, kh, kw, ic := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	mb := oh * ow
	m := n * mb
	k := kh * kw * ic
	var cols []float32
	if pointwiseConv(a, kh, kw) {
		cols = in.F // zero-copy: the input already is the left operand
	} else {
		cols = c.Arena.F32(m * k)
		for b := 0; b < n; b++ {
			im2col(in, b, a, kh, kw, oh, ow, cols[b*mb*k:(b+1)*mb*k])
		}
	}
	var biasF []float32
	if bias != nil {
		biasF = bias.F
	}
	gemmTiledFusedF32(cols, w.F, biasF, out.F, m, oc, k, a.Activation)
	return nil
}

// denseFloatTiled is the fully-connected layer through the fused row
// kernel; like conv, the [outC, inC] weight tensor is used in place.
func denseFloatTiled(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	n := in.Shape[0]
	inC := in.Len() / n
	outC := w.Shape[0]
	var biasF []float32
	if bias != nil {
		biasF = bias.F
	}
	gemmTiledFusedF32(in.F, w.F, biasF, out.F, n, outC, inC, a.Activation)
	return nil
}

// quantGemmPlan is the per-node cached state of the tiled quantized path:
// requantization multipliers plus the widened, packed weight panel.
type quantGemmPlan struct {
	muls []quant.Multiplier
	wp   []int16
}

func cachedQuantGemmPlan(c *Ctx, w *tensor.Tensor, outC, k int) (quantGemmPlan, error) {
	return cachedIn(c, func() (quantGemmPlan, error) {
		muls, err := convMultipliers(c.InQ[0], c.InQ[1], c.OutQ[0], outC)
		if err != nil {
			return quantGemmPlan{}, err
		}
		return quantGemmPlan{muls: muls, wp: packWidenI8(w.I, outC, k)}, nil
	})
}

// convQuantTiled is the quantized Conv2D through the int8 packed path:
// zero-corrected int16 im2col into the padded left panel, int16-widened
// cached weight panels, int32 tile accumulators, requantization fused into
// the store. Bit-exact against convQuantRef/convQuantOpt by construction.
func convQuantTiled(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n := in.Shape[0]
	oc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	ic := in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	m := oh * ow
	k := kh * kw * ic
	plan, err := cachedQuantGemmPlan(c, w, oc, k)
	if err != nil {
		return err
	}
	inZ := int16(inQ.ZeroPoint(0))
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)
	mPad := padUp(m, 4)
	cols := c.Arena.I16(mPad * k)
	zeroI16(cols[m*k:])
	for b := 0; b < n; b++ {
		im2colQuant(in, b, a, inZ, kh, kw, oh, ow, cols[:m*k])
		gemmTiledFusedQuant(cols, plan.wp, bias, out.U, b*m*oc, m, oc, k, plan.muls, outZ, lo, hi)
	}
	return nil
}

// im2colQuant lowers one batch element into the [oh*ow, kh*kw*ic] matrix
// with the input zero point subtracted up front, so padded taps contribute
// exactly zero to the accumulator. Pointwise convolutions take the flat
// subtract-copy path.
func im2colQuant(in *tensor.Tensor, batch int, a graph.Attrs, inZ int16, kh, kw, oh, ow int, dst []int16) {
	ih, iw, ic := in.Shape[1], in.Shape[2], in.Shape[3]
	if pointwiseConv(a, kh, kw) && oh == ih && ow == iw {
		src := in.U[batch*ih*iw*ic:][:len(dst)]
		for i, v := range src {
			dst[i] = int16(v) - inZ
		}
		return
	}
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	k := kh * kw * ic
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := row * k
			col := 0
			for ky := 0; ky < kh; ky++ {
				iy := oy*a.StrideH - a.PadT + ky*dh
				for kx := 0; kx < kw; kx++ {
					ix := ox*a.StrideW - a.PadL + kx*dw
					if iy < 0 || iy >= ih || ix < 0 || ix >= iw {
						for ci := 0; ci < ic; ci++ {
							dst[base+col] = 0
							col++
						}
						continue
					}
					src := ((batch*ih+iy)*iw + ix) * ic
					for ci := 0; ci < ic; ci++ {
						dst[base+col] = int16(in.U[src+ci]) - inZ
						col++
					}
				}
			}
			row++
		}
	}
}

// denseQuantTiled is the quantized fully-connected layer through the int8
// packed path.
func denseQuantTiled(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n := in.Shape[0]
	inC := in.Len() / n
	outC := w.Shape[0]
	plan, err := cachedQuantGemmPlan(c, w, outC, inC)
	if err != nil {
		return err
	}
	inZ := int16(inQ.ZeroPoint(0))
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)
	nPad := padUp(n, 4)
	ap := c.Arena.I16(nPad * inC)
	for i, v := range in.U[:n*inC] {
		ap[i] = int16(v) - inZ
	}
	zeroI16(ap[n*inC:])
	gemmTiledFusedQuant(ap, plan.wp, bias, out.U, 0, n, outC, inC, plan.muls, outZ, lo, hi)
	return nil
}
