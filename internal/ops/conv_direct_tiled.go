package ops

import "mlexray/internal/graph"

// Direct (im2col-free) float convolution for the tiled backend. For
// non-pointwise convolutions the packed GEMM lowering first materializes the
// [oh*ow, kh*kw*ic] patch matrix; for the small-k kernels where such layers
// occur (stems like 3x3xRGB) that copy costs a large fraction of the GEMM
// itself. The direct kernel instead walks each output pixel's patch in
// place: per valid kernel row the patch is one contiguous input run (this
// requires DilationW == 1 — the dispatcher falls back to im2col otherwise),
// and each input value is broadcast against eight output-channel weights
// from a transposed packed panel wT[k][oc], accumulating in registers. The
// per-element k order (ky, kx, ci ascending) is exactly the GEMM's p order,
// so the results are bitwise identical to the packed float path. Bias and
// activation clamp are fused into the store, as everywhere on the tiled
// backend.

// maxConvRuns bounds the per-pixel run table (one run per kernel row).
const maxConvRuns = 8

// packTransposeF32 packs the [oc, k] weight matrix into wT[k][oc] so the
// broadcast kernel reads its eight channel weights contiguously.
func packTransposeF32(src []float32, oc, k int) []float32 {
	dst := make([]float32, k*oc)
	for co := 0; co < oc; co++ {
		row := src[co*k : co*k+k]
		for p, v := range row {
			dst[p*oc+co] = v
		}
	}
	return dst
}

// convPixelF32 accumulates all oc output channels of one pixel from its
// nRuns contiguous patch runs. runIn[u] is the input offset of run u,
// runW[u] the corresponding k index (row offset into wT is runW[u]*oc),
// runLen[u] its element count. Small on purpose: the register allocator
// keeps the eight accumulators and the loop state in registers only when
// the function body is this narrow.
func convPixelF32(inF, wT, bf, outRow []float32, runIn, runW, runLen *[maxConvRuns]int, nRuns, oc int, lo, hi float32) {
	co := 0
	for ; co+8 <= oc; co += 8 {
		var s0, s1, s2, s3, s4, s5, s6, s7 float32
		if bf != nil {
			s0, s1, s2, s3 = bf[co], bf[co+1], bf[co+2], bf[co+3]
			s4, s5, s6, s7 = bf[co+4], bf[co+5], bf[co+6], bf[co+7]
		}
		for u := 0; u < nRuns; u++ {
			inRun := inF[runIn[u]:][:runLen[u]]
			wOff := runW[u]*oc + co
			for _, v := range inRun {
				wR := wT[wOff:][:8]
				s0 += v * wR[0]
				s1 += v * wR[1]
				s2 += v * wR[2]
				s3 += v * wR[3]
				s4 += v * wR[4]
				s5 += v * wR[5]
				s6 += v * wR[6]
				s7 += v * wR[7]
				wOff += oc
			}
		}
		o := outRow[co:][:8]
		o[0] = clampF32(s0, lo, hi)
		o[1] = clampF32(s1, lo, hi)
		o[2] = clampF32(s2, lo, hi)
		o[3] = clampF32(s3, lo, hi)
		o[4] = clampF32(s4, lo, hi)
		o[5] = clampF32(s5, lo, hi)
		o[6] = clampF32(s6, lo, hi)
		o[7] = clampF32(s7, lo, hi)
	}
	for ; co+4 <= oc; co += 4 {
		var s0, s1, s2, s3 float32
		if bf != nil {
			s0, s1, s2, s3 = bf[co], bf[co+1], bf[co+2], bf[co+3]
		}
		for u := 0; u < nRuns; u++ {
			inRun := inF[runIn[u]:][:runLen[u]]
			wOff := runW[u]*oc + co
			for _, v := range inRun {
				wR := wT[wOff:][:4]
				s0 += v * wR[0]
				s1 += v * wR[1]
				s2 += v * wR[2]
				s3 += v * wR[3]
				wOff += oc
			}
		}
		o := outRow[co:][:4]
		o[0] = clampF32(s0, lo, hi)
		o[1] = clampF32(s1, lo, hi)
		o[2] = clampF32(s2, lo, hi)
		o[3] = clampF32(s3, lo, hi)
	}
	for ; co < oc; co++ {
		var s float32
		if bf != nil {
			s = bf[co]
		}
		for u := 0; u < nRuns; u++ {
			inRun := inF[runIn[u]:][:runLen[u]]
			wOff := runW[u]*oc + co
			for _, v := range inRun {
				s += v * wT[wOff]
				wOff += oc
			}
		}
		outRow[co] = clampF32(s, lo, hi)
	}
}

// maxConvDirectIC bounds the input channels the direct kernel accepts.
// Direct conv only beats im2col + packed GEMM when the patch copy is large
// relative to the arithmetic — narrow-input stems (RGB and other thin
// layers). On wide inputs the broadcast kernel runs below the GEMM's
// MAC rate and the im2col overhead it avoids is a small fraction, so the
// packed path wins; both paths are bitwise identical, so the gate is purely
// a speed choice.
const maxConvDirectIC = 8

// convDirectSupported reports whether the direct kernel covers the node:
// width-dense patches (DilationW == 1), at most maxConvRuns kernel rows,
// and a narrow input (see maxConvDirectIC).
func convDirectSupported(a graph.Attrs, kh, kw, ic int) bool {
	return max1(a.DilationW) == 1 && kh <= maxConvRuns && ic <= maxConvDirectIC &&
		!pointwiseConv(a, kh, kw)
}

// convFloatTiledDirect is the im2col-free tiled lowering for non-pointwise
// float convolutions.
func convFloatTiledDirect(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	oh, ow := out.Shape[1], out.Shape[2]
	k := kh * kw * ic
	dh := max1(a.DilationH)
	wT, err := cachedIn(c, func() ([]float32, error) {
		return packTransposeF32(w.F, oc, k), nil
	})
	if err != nil {
		return err
	}
	lo, hi := actClampF32(a.Activation)
	var bf []float32
	if bias != nil {
		bf = bias.F
	}
	inF := in.F
	var runIn, runW, runLen [maxConvRuns]int
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*a.StrideH - a.PadT
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*a.StrideW - a.PadL
				// Clip the kernel window to the input: kxLo/kxHi are shared
				// by every kernel row (width clipping is y-independent).
				kxLo, kxHi := 0, kw
				if ix0 < 0 {
					kxLo = -ix0
				}
				if ix0+kw > iw {
					kxHi = iw - ix0
				}
				nRuns := 0
				if kxLo < kxHi {
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						runIn[nRuns] = ((b*ih+iy)*iw + ix0 + kxLo) * ic
						runW[nRuns] = (ky*kw + kxLo) * ic
						runLen[nRuns] = (kxHi - kxLo) * ic
						nRuns++
					}
				}
				outRow := out.F[((b*oh+oy)*ow+ox)*oc:][:oc]
				convPixelF32(inF, wT, bf, outRow, &runIn, &runW, &runLen, nRuns, oc, lo, hi)
			}
		}
	}
	return nil
}
