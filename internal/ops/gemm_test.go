package ops

import (
	"math/rand"
	"os"
	"testing"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// The kernel-backend parity suite: every backend must compute the same
// function through denseFloatOpt/convFloatOpt/depthwiseFloatOpt and their
// quantized counterparts. Float agreement is validator-style — bitwise
// against the blocked anchor for bitwise-stable backends, tolerance + nRMSE
// for the tiled backend (its fused epilogue seeds accumulators with the
// bias, changing the summation order; see DESIGN.md §10). Quantized outputs
// are int32-accumulated, so every backend must be bit-exact.
//
// The CI kernel matrix runs this file per backend via MLEXRAY_KERNEL
// (reference|blocked|tiled); unset, each test sweeps all backends. Tests are
// named TestGemmBackend* so `go test ./internal/ops/... -run Gemm` selects
// exactly this suite.

// backendsUnderTest resolves the backend sweep: the MLEXRAY_KERNEL
// environment toggle pins one backend (the CI matrix leg), otherwise every
// registered backend runs.
func backendsUnderTest(t *testing.T) []Backend {
	t.Helper()
	if s := os.Getenv("MLEXRAY_KERNEL"); s != "" {
		b, err := ParseBackend(s)
		if err != nil {
			t.Fatalf("MLEXRAY_KERNEL: %v", err)
		}
		return []Backend{b}
	}
	return Backends()
}

// ctxForBackend is ctxFor with the kernel backend pinned, as the interpreter
// does at plan time.
func ctxForBackend(b Backend, op graph.OpType, attrs graph.Attrs, ins []*tensor.Tensor,
	inQ []*quant.Params, out *tensor.Tensor, outQ *quant.Params) *Ctx {
	c := ctxFor(op, attrs, ins, inQ, out, outQ)
	c.Backend = b
	return c
}

// nRMSE is the validator-style normalized error: RMSE over the reference
// output's value range. Zero-range outputs fall back to plain RMSE.
func nRMSE(t *testing.T, got, ref *tensor.Tensor) float64 {
	t.Helper()
	rmse, err := tensor.RMSE(got, ref)
	if err != nil {
		t.Fatal(err)
	}
	if r := tensor.ComputeStats(ref).Range(); r > 0 {
		return rmse / r
	}
	return rmse
}

// checkFloatParity applies the per-backend float contract: close to the
// reference within validator bounds for every backend, and bitwise equal to
// the blocked anchor when the backend declares BitwiseStable.
func checkFloatParity(t *testing.T, b Backend, got, ref, blocked *tensor.Tensor, label string) {
	t.Helper()
	if !tensor.AllClose(got, ref, 1e-4, 1e-5) {
		t.Errorf("%s: backend %s not close to reference", label, b)
		return
	}
	if e := nRMSE(t, got, ref); e > 1e-5 {
		t.Errorf("%s: backend %s nRMSE %v vs reference, want <= 1e-5", label, b, e)
	}
	if b.BitwiseStable() {
		for i := range got.F {
			if got.F[i] != blocked.F[i] {
				t.Errorf("%s: bitwise-stable backend %s differs from blocked anchor at %d: %v vs %v",
					label, b, i, got.F[i], blocked.F[i])
				return
			}
		}
	}
}

// TestGemmBackendDenseOddShapes sweeps the full odd-shape cross product
// m,n,k in {1, 3, 5, 7, 63, 64, 65} — every row/column-tail combination of
// the 4x2 register tile plus the cache-block boundary — through each
// backend's dense lowering.
func TestGemmBackendDenseOddShapes(t *testing.T) {
	sizes := []int{1, 3, 5, 7, 63, 64, 65}
	backends := backendsUnderTest(t)
	rng := rand.New(rand.NewSource(101))
	for _, m := range sizes {
		for _, n := range sizes {
			for _, k := range sizes {
				in := randF32(rng, m, k)
				w := randF32(rng, n, k)
				bias := randF32(rng, n)
				attrs := graph.Attrs{Activation: graph.Activation((m + n + k) % 3)}
				ref := tensor.New(tensor.F32, m, n)
				if err := denseFloatRef(ctxFor(graph.OpDense, attrs, []*tensor.Tensor{in, w, bias}, nil, ref, nil)); err != nil {
					t.Fatal(err)
				}
				blocked := tensor.New(tensor.F32, m, n)
				if err := denseFloatOpt(ctxForBackend(BackendBlocked, graph.OpDense, attrs,
					[]*tensor.Tensor{in, w, bias}, nil, blocked, nil)); err != nil {
					t.Fatal(err)
				}
				for _, b := range backends {
					out := tensor.New(tensor.F32, m, n)
					if err := denseFloatOpt(ctxForBackend(b, graph.OpDense, attrs,
						[]*tensor.Tensor{in, w, bias}, nil, out, nil)); err != nil {
						t.Fatalf("dense %dx%dx%d backend %s: %v", m, n, k, b, err)
					}
					checkFloatParity(t, b, out, ref, blocked,
						// Label carries the shape so a failure pins the tile tail.
						"dense m="+itoa(m)+" n="+itoa(n)+" k="+itoa(k))
				}
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestGemmBackendConvEdgeCases drives each backend's conv lowering through
// stride and dilation edge cases: pointwise (the zero-copy left panel),
// strided SAME 3x3 (direct-conv fast path), dilated 3x3 (the im2col
// fallback), and asymmetric VALID padding.
func TestGemmBackendConvEdgeCases(t *testing.T) {
	backends := backendsUnderTest(t)
	rng := rand.New(rand.NewSource(202))
	cases := []struct {
		name              string
		ih, iw, ic, oc, k int
		stride, dilation  int
		same              bool
		act               graph.Activation
	}{
		{"pointwise", 7, 5, 3, 8, 1, 1, 1, false, graph.ActReLU6},
		{"same3x3", 9, 7, 3, 5, 3, 1, 1, true, graph.ActReLU},
		{"same3x3-stride2", 9, 9, 4, 6, 3, 2, 1, true, graph.ActNone},
		{"valid3x3-stride2", 8, 11, 2, 3, 3, 2, 1, false, graph.ActReLU},
		{"dilated3x3", 11, 9, 3, 4, 3, 1, 2, true, graph.ActNone},
		{"dilated3x3-stride2", 13, 13, 2, 5, 3, 2, 2, false, graph.ActReLU6},
		{"tiny", 3, 3, 1, 1, 3, 1, 1, true, graph.ActNone},
	}
	for _, cse := range cases {
		in := randF32(rng, 1, cse.ih, cse.iw, cse.ic)
		w := randF32(rng, cse.oc, cse.k, cse.k, cse.ic)
		bias := randF32(rng, cse.oc)
		attrs := graph.Attrs{StrideH: cse.stride, StrideW: cse.stride,
			DilationH: cse.dilation, DilationW: cse.dilation, Activation: cse.act}
		if cse.same {
			attrs.PadT, attrs.PadB = graph.SamePadding(cse.ih, cse.k, cse.stride, cse.dilation)
			attrs.PadL, attrs.PadR = graph.SamePadding(cse.iw, cse.k, cse.stride, cse.dilation)
		}
		outShape, err := graph.InferShape(graph.OpConv2D, attrs, [][]int{in.Shape, w.Shape})
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		ref := tensor.New(tensor.F32, outShape...)
		if err := convFloatRef(ctxFor(graph.OpConv2D, attrs, []*tensor.Tensor{in, w, bias}, nil, ref, nil)); err != nil {
			t.Fatal(err)
		}
		blocked := tensor.New(tensor.F32, outShape...)
		if err := convFloatOpt(ctxForBackend(BackendBlocked, graph.OpConv2D, attrs,
			[]*tensor.Tensor{in, w, bias}, nil, blocked, nil)); err != nil {
			t.Fatal(err)
		}
		for _, b := range backends {
			out := tensor.New(tensor.F32, outShape...)
			if err := convFloatOpt(ctxForBackend(b, graph.OpConv2D, attrs,
				[]*tensor.Tensor{in, w, bias}, nil, out, nil)); err != nil {
				t.Fatalf("%s backend %s: %v", cse.name, b, err)
			}
			checkFloatParity(t, b, out, ref, blocked, "conv "+cse.name)
		}
	}
}

// TestGemmBackendDepthwiseParity covers the register-tiled depthwise kernel:
// odd widths (border/interior/pair splits), 3x3 and 5x5 taps, strides and
// dilation, each backend against the reference slab loop.
func TestGemmBackendDepthwiseParity(t *testing.T) {
	backends := backendsUnderTest(t)
	rng := rand.New(rand.NewSource(303))
	cases := []struct {
		name             string
		ih, iw, ic, k    int
		stride, dilation int
	}{
		{"same3x3", 7, 9, 4, 3, 1, 1},
		{"same3x3-stride2", 9, 7, 3, 3, 2, 1},
		{"same5x5", 11, 11, 2, 5, 1, 1},
		{"dilated3x3", 9, 9, 5, 3, 1, 2},
		{"narrow", 5, 3, 8, 3, 1, 1},
	}
	for _, cse := range cases {
		in := randF32(rng, 1, cse.ih, cse.iw, cse.ic)
		w := randF32(rng, 1, cse.k, cse.k, cse.ic)
		bias := randF32(rng, cse.ic)
		attrs := graph.Attrs{StrideH: cse.stride, StrideW: cse.stride,
			DilationH: cse.dilation, DilationW: cse.dilation,
			DepthMultiplier: 1, Activation: graph.Activation((cse.ih + cse.k) % 3)}
		attrs.PadT, attrs.PadB = graph.SamePadding(cse.ih, cse.k, cse.stride, cse.dilation)
		attrs.PadL, attrs.PadR = graph.SamePadding(cse.iw, cse.k, cse.stride, cse.dilation)
		outShape, err := graph.InferShape(graph.OpDepthwiseConv2D, attrs, [][]int{in.Shape, w.Shape})
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		ref := tensor.New(tensor.F32, outShape...)
		if err := depthwiseFloatRef(ctxFor(graph.OpDepthwiseConv2D, attrs,
			[]*tensor.Tensor{in, w, bias}, nil, ref, nil)); err != nil {
			t.Fatal(err)
		}
		blocked := tensor.New(tensor.F32, outShape...)
		if err := depthwiseFloatOpt(ctxForBackend(BackendBlocked, graph.OpDepthwiseConv2D, attrs,
			[]*tensor.Tensor{in, w, bias}, nil, blocked, nil)); err != nil {
			t.Fatal(err)
		}
		for _, b := range backends {
			out := tensor.New(tensor.F32, outShape...)
			if err := depthwiseFloatOpt(ctxForBackend(b, graph.OpDepthwiseConv2D, attrs,
				[]*tensor.Tensor{in, w, bias}, nil, out, nil)); err != nil {
				t.Fatalf("%s backend %s: %v", cse.name, b, err)
			}
			checkFloatParity(t, b, out, ref, blocked, "depthwise "+cse.name)
		}
	}
}

// runQuantBackend runs the fixture through the optimized quantized kernel
// with the backend pinned — fx.run with the backend seam exercised.
func runQuantBackend(t *testing.T, fx *quantConvFixture, kern Kernel, op graph.OpType, b Backend) *tensor.Tensor {
	t.Helper()
	out := tensor.New(tensor.U8, fx.outShape...)
	ctx := ctxForBackend(b, op, fx.attrs,
		[]*tensor.Tensor{fx.inQ8, fx.wI8, fx.bI32},
		[]*quant.Params{fx.inP, fx.wP, nil}, out, fx.outP)
	if err := kern(ctx); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGemmBackendQuantBitExact pins the integer contract: conv and depthwise
// through every backend are bitwise equal to the reference quantized kernels
// on odd shapes, strides and activations — integer accumulation is
// associative, so no backend may perturb a single bit.
func TestGemmBackendQuantBitExact(t *testing.T) {
	backends := backendsUnderTest(t)
	rng := rand.New(rand.NewSource(404))
	for _, cse := range []struct {
		op         graph.OpType
		ref, opt   Kernel
		ih, ic, oc int
		k, stride  int
		act        graph.Activation
	}{
		{graph.OpConv2D, convQuantRef, convQuantOpt, 7, 3, 5, 3, 1, graph.ActReLU6},
		{graph.OpConv2D, convQuantRef, convQuantOpt, 9, 1, 7, 3, 2, graph.ActNone},
		{graph.OpConv2D, convQuantRef, convQuantOpt, 5, 4, 1, 1, 1, graph.ActReLU},
		// depthwiseQuantRef doubles as the optimized kernel (the resolver
		// registers it for both), dispatching on Ctx.Backend internally — the
		// zero-backend fx.run above is the blocked anchor.
		{graph.OpDepthwiseConv2D, depthwiseQuantRef, depthwiseQuantRef, 7, 6, 0, 3, 1, graph.ActReLU6},
		{graph.OpDepthwiseConv2D, depthwiseQuantRef, depthwiseQuantRef, 9, 3, 0, 5, 2, graph.ActNone},
	} {
		fx := makeQuantConvFixture(t, rng, cse.op, cse.ih, cse.ic, cse.oc, cse.k, cse.stride, cse.act)
		ref := fx.run(t, cse.ref, cse.op)
		for _, b := range backends {
			got := runQuantBackend(t, fx, cse.opt, cse.op, b)
			for i := range ref.U {
				if got.U[i] != ref.U[i] {
					t.Errorf("%s k=%d stride=%d backend %s: quant output differs at %d: %d vs %d",
						cse.op, cse.k, cse.stride, b, i, got.U[i], ref.U[i])
					break
				}
			}
		}
	}
}

// TestGemmBackendQuantDenseBitExact is the dense leg of the integer
// contract, with odd batch and feature sizes straddling the register tile.
func TestGemmBackendQuantDenseBitExact(t *testing.T) {
	backends := backendsUnderTest(t)
	rng := rand.New(rand.NewSource(505))
	for _, cse := range []struct{ batch, inC, outC int }{
		{1, 7, 5}, {3, 64, 9}, {5, 65, 63},
	} {
		in := tensor.New(tensor.F32, cse.batch, cse.inC)
		tensor.RandUniform(rng, in, -1, 1)
		w := tensor.New(tensor.F32, cse.outC, cse.inC)
		tensor.RandUniform(rng, w, -0.5, 0.5)
		bias := tensor.New(tensor.F32, cse.outC)
		tensor.RandUniform(rng, bias, -0.2, 0.2)
		floatOut := tensor.New(tensor.F32, cse.batch, cse.outC)
		if err := denseFloatRef(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{in, w, bias}, nil, floatOut, nil)); err != nil {
			t.Fatal(err)
		}
		inP := quant.AsymmetricU8Params(-1, 1)
		inQ8 := quant.QuantizeTensorU8(in, inP)
		wI8, wP, err := quant.QuantizeWeightsPerChannel(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		bI32 := quant.QuantizeBias(bias, inP.Scale(0), wP)
		st := tensor.ComputeStats(floatOut)
		outP := quant.AsymmetricU8Params(st.Min, st.Max)
		ref := tensor.New(tensor.U8, cse.batch, cse.outC)
		if err := denseQuantRef(ctxFor(graph.OpDense, graph.Attrs{}, []*tensor.Tensor{inQ8, wI8, bI32},
			[]*quant.Params{inP, wP, nil}, ref, outP)); err != nil {
			t.Fatal(err)
		}
		for _, b := range backends {
			got := tensor.New(tensor.U8, cse.batch, cse.outC)
			if err := denseQuantOpt(ctxForBackend(b, graph.OpDense, graph.Attrs{},
				[]*tensor.Tensor{inQ8, wI8, bI32}, []*quant.Params{inP, wP, nil}, got, outP)); err != nil {
				t.Fatalf("dense quant %dx%dx%d backend %s: %v", cse.batch, cse.inC, cse.outC, b, err)
			}
			for i := range ref.U {
				if got.U[i] != ref.U[i] {
					t.Errorf("dense quant %dx%dx%d backend %s differs at %d: %d vs %d",
						cse.batch, cse.inC, cse.outC, b, i, got.U[i], ref.U[i])
					break
				}
			}
		}
	}
}
