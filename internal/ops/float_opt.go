package ops

import (
	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// The optimized float kernels mirror TFLite's production path: im2col
// lowering followed by a blocked GEMM. They compute the same function as the
// reference kernels but in a different summation order, so float outputs
// can differ in the low bits — the benign class of discrepancy the paper
// notes when comparing resolvers on float models ("small discrepancies on
// float models due to the non-associativity of floating point arithmetic").
//
// All transient buffers come from the Ctx arena, so a planned interpreter
// invokes these kernels without allocating.

// gemmNT computes C[m,n] += A[m,k] * B[n,k]^T with cache blocking and a
// 4-column inner kernel. Each output element still accumulates over p in
// ascending order in its own chain, so results are bitwise identical to the
// single-column loop — the unroll only interleaves four independent
// dependency chains to keep the FMA pipeline full.
func gemmNT(a []float32, b []float32, c []float32, m, n, k int) {
	const block = 64
	for i0 := 0; i0 < m; i0 += block {
		iMax := min(i0+block, m)
		for j0 := 0; j0 < n; j0 += block {
			jMax := min(j0+block, n)
			for i := i0; i < iMax; i++ {
				ai := a[i*k : (i+1)*k]
				ci := c[i*n : (i+1)*n]
				j := j0
				for ; j+4 <= jMax; j += 4 {
					// Re-slicing to ai's length lets the compiler drop the
					// b*[p] bounds checks inside the dot loop.
					b0 := b[j*k:][:len(ai)]
					b1 := b[(j+1)*k:][:len(ai)]
					b2 := b[(j+2)*k:][:len(ai)]
					b3 := b[(j+3)*k:][:len(ai)]
					var acc0, acc1, acc2, acc3 float32
					for p, av := range ai {
						acc0 += av * b0[p]
						acc1 += av * b1[p]
						acc2 += av * b2[p]
						acc3 += av * b3[p]
					}
					ci[j] += acc0
					ci[j+1] += acc1
					ci[j+2] += acc2
					ci[j+3] += acc3
				}
				for ; j < jMax; j++ {
					bj := b[j*k : (j+1)*k]
					var acc float32
					for p, av := range ai {
						acc += av * bj[p]
					}
					ci[j] += acc
				}
			}
		}
	}
}

// im2col lowers a padded convolution input into a [outH*outW, kh*kw*inC]
// matrix for one batch element. Out-of-bounds taps are zero.
func im2col(in *tensor.Tensor, batch int, a graph.Attrs, kh, kw, oh, ow int, dst []float32) {
	ih, iw, ic := in.Shape[1], in.Shape[2], in.Shape[3]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	cols := kh * kw * ic
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := row * cols
			col := 0
			for ky := 0; ky < kh; ky++ {
				iy := oy*a.StrideH - a.PadT + ky*dh
				for kx := 0; kx < kw; kx++ {
					ix := ox*a.StrideW - a.PadL + kx*dw
					if iy < 0 || iy >= ih || ix < 0 || ix >= iw {
						for ci := 0; ci < ic; ci++ {
							dst[base+col] = 0
							col++
						}
						continue
					}
					src := ((batch*ih+iy)*iw + ix) * ic
					copy(dst[base+col:base+col+ic], in.F[src:src+ic])
					col += ic
				}
			}
			row++
		}
	}
}

// gemmRefNT is the naive single-column GEMM: the reference backend's anchor
// kernel. Identical summation order to gemmNT (each output element
// accumulates over p ascending), so results are bitwise equal — it exists so
// the faster kernels always have a slow, obviously-correct kernel to race.
func gemmRefNT(a []float32, b []float32, c []float32, m, n, k int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k:][:len(ai)]
			var acc float32
			for p, av := range ai {
				acc += av * bj[p]
			}
			ci[j] += acc
		}
	}
}

// gemmForBackend returns the plain (non-fused) float GEMM of a backend. The
// tiled backend never goes through this path — its kernels fuse the epilogue.
func gemmForBackend(b Backend) func(a, bb, c []float32, m, n, k int) {
	if b == BackendReference {
		return gemmRefNT
	}
	return gemmNT
}

// convFloatOpt is the optimized Conv2D, dispatching on the planned kernel
// backend: the tiled backend takes the packed fused path, reference and
// blocked share the im2col + GEMM + separate-epilogue lowering below.
func convFloatOpt(c *Ctx) error {
	if c.Backend == BackendTiled {
		return convFloatTiled(c)
	}
	return convFloatBlocked(c)
}

// convFloatBlocked is the pre-seam optimized Conv2D: im2col + GEMM + fused
// bias and activation. The im2col matrix spans the whole (possibly
// rebatched) batch, so one GEMM covers every element — per-row summation
// order is unchanged, keeping outputs bitwise identical to a per-element
// lowering.
func convFloatBlocked(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	n := in.Shape[0]
	oc, kh, kw, ic := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	mb := oh * ow // rows per batch element
	m := n * mb
	k := kh * kw * ic
	cols := c.Arena.F32(m * k)
	prod := c.Arena.F32(m * oc)
	for b := 0; b < n; b++ {
		im2col(in, b, a, kh, kw, oh, ow, cols[b*mb*k:(b+1)*mb*k])
	}
	for i := range prod {
		prod[i] = 0
	}
	// Weights are [oc, kh, kw, ic] = row-major [oc, k]: exactly the
	// B[n,k] layout gemmNT wants.
	gemmForBackend(c.Backend)(cols, w.F, prod, m, oc, k)
	for i := 0; i < m; i++ {
		for co := 0; co < oc; co++ {
			v := prod[i*oc+co]
			if bias != nil {
				v += bias.F[co]
			}
			out.F[i*oc+co] = applyActF32(a.Activation, v)
		}
	}
	return nil
}

// depthwiseFloatOpt processes the image row-by-row with hoisted bounds
// checks; same math as the reference kernel, reordered loops. The common
// depth-multiplier-1 case runs a division-free inner loop.
func depthwiseFloatOpt(c *Ctx) error {
	// The tiled backend's register-accumulator kernel covers the standard
	// depth_multiplier == 1 layout with tap tables up to 5x5; rarer layouts
	// take the blocked slab loop.
	if c.Backend == BackendTiled && max1(c.Node.Attrs.DepthMultiplier) == 1 {
		if w, err := c.In(1); err == nil && w.Shape[1]*w.Shape[2] <= maxDWTaps {
			return depthwiseFloatTiled(c)
		}
	}
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	mult := max1(a.DepthMultiplier)
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, oc := w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	acc := c.Arena.F32(oc)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				if bias != nil {
					copy(acc, bias.F)
				} else {
					for i := range acc {
						acc[i] = 0
					}
				}
				for ky := 0; ky < kh; ky++ {
					iy := oy*a.StrideH - a.PadT + ky*dh
					if iy < 0 || iy >= ih {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*a.StrideW - a.PadL + kx*dw
						if ix < 0 || ix >= iw {
							continue
						}
						inBase := ((b*ih+iy)*iw + ix) * ic
						wBase := (ky*kw + kx) * oc
						if mult == 1 {
							// ic == oc: channel c reads input channel c.
							inRow := in.F[inBase : inBase+oc]
							wRow := w.F[wBase : wBase+oc]
							for co := range acc {
								acc[co] += inRow[co] * wRow[co]
							}
							continue
						}
						for co := 0; co < oc; co++ {
							acc[co] += in.F[inBase+co/mult] * w.F[wBase+co]
						}
					}
				}
				outBase := ((b*oh+oy)*ow + ox) * oc
				for co := 0; co < oc; co++ {
					out.F[outBase+co] = applyActF32(a.Activation, acc[co])
				}
			}
		}
	}
	return nil
}

// denseFloatOpt runs the fully-connected layer through the backend's GEMM.
func denseFloatOpt(c *Ctx) error {
	if c.Backend == BackendTiled {
		return denseFloatTiled(c)
	}
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	n := in.Shape[0]
	inC := in.Len() / n
	outC := w.Shape[0]
	out.Zero()
	gemmForBackend(c.Backend)(in.F, w.F, out.F, n, outC, inC)
	for b := 0; b < n; b++ {
		for co := 0; co < outC; co++ {
			v := out.F[b*outC+co]
			if bias != nil {
				v += bias.F[co]
			}
			out.F[b*outC+co] = applyActF32(a.Activation, v)
		}
	}
	return nil
}
