package ops

import (
	"fmt"
	"math"

	"mlexray/internal/graph"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// ---- requantization plumbing ----

// quantActRange maps a fused activation into clamp bounds in the quantized
// output domain.
func quantActRange(act graph.Activation, q *quant.Params) (lo, hi int32) {
	lo, hi = 0, 255
	z := q.ZeroPoint(0)
	switch act {
	case graph.ActReLU:
		if z > lo {
			lo = z
		}
	case graph.ActReLU6:
		if z > lo {
			lo = z
		}
		q6 := z + int32(math.Round(6/q.Scale(0)))
		if q6 < hi {
			hi = q6
		}
	}
	return lo, hi
}

func clampU8(v, lo, hi int32) uint8 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return uint8(v)
}

// convMultipliers builds the per-output-channel requantization multipliers
// M_c = inScale * wScale(c) / outScale.
func convMultipliers(inQ, wQ, outQ *quant.Params, outC int) ([]quant.Multiplier, error) {
	if inQ == nil || wQ == nil || outQ == nil {
		return nil, fmt.Errorf("ops: quantized conv missing quant params")
	}
	muls := make([]quant.Multiplier, outC)
	for c := 0; c < outC; c++ {
		m, err := quant.NewMultiplier(inQ.Scale(0) * wQ.Scale(c%len(wQ.Scales)) / outQ.Scale(0))
		if err != nil {
			return nil, fmt.Errorf("ops: channel %d multiplier: %w", c, err)
		}
		muls[c] = m
	}
	return muls, nil
}

// cachedConvMultipliers memoizes the per-channel multipliers on the Ctx —
// quant params are fixed per node, so a planned interpreter derives them
// exactly once instead of on every frame.
func cachedConvMultipliers(c *Ctx, outC int) ([]quant.Multiplier, error) {
	return cachedIn(c, func() ([]quant.Multiplier, error) {
		return convMultipliers(c.InQ[0], c.InQ[1], c.OutQ[0], outC)
	})
}

// ---- quantized convolution family ----

// convQuantRef is the reference full-integer Conv2D: uint8 activations,
// int8 weights (symmetric, per-channel), int32 bias, int32 accumulation,
// fixed-point requantization.
func convQuantRef(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	muls, err := cachedConvMultipliers(c, oc)
	if err != nil {
		return err
	}
	inZ := inQ.ZeroPoint(0)
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for co := 0; co < oc; co++ {
					var acc int32
					for ky := 0; ky < kh; ky++ {
						iy := oy*a.StrideH - a.PadT + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*a.StrideW - a.PadL + kx*dw
							if ix < 0 || ix >= iw {
								continue
							}
							inBase := ((b*ih+iy)*iw + ix) * ic
							wBase := ((co*kh+ky)*kw + kx) * ic
							for ci := 0; ci < ic; ci++ {
								acc += (int32(in.U[inBase+ci]) - inZ) * int32(w.I[wBase+ci])
							}
						}
					}
					if bias != nil {
						acc += bias.X[co]
					}
					out.U[((b*oh+oy)*ow+ox)*oc+co] = clampU8(outZ+muls[co].Apply(acc), lo, hi)
				}
			}
		}
	}
	return nil
}

// convQuantOpt is the optimized quantized Conv2D: im2col into an int16
// zero-offset-corrected buffer, int32 GEMM accumulation. Same math as the
// reference kernel — the optimized *conv* is correct; only depthwise has the
// historical defect. The tiled backend routes to the packed int8 fast path;
// reference and blocked share the scalar dot loop below (the blocked
// backend's 4-column unroll exists only on the float side). All backends are
// bit-exact against each other: integer accumulation is associative.
func convQuantOpt(c *Ctx) error {
	if c.Backend == BackendTiled {
		return convQuantTiled(c)
	}
	return convQuantBlocked(c)
}

func convQuantBlocked(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n, ic := in.Shape[0], in.Shape[3]
	oc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	oh, ow := out.Shape[1], out.Shape[2]
	muls, err := cachedConvMultipliers(c, oc)
	if err != nil {
		return err
	}
	inZ := int16(inQ.ZeroPoint(0))
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)

	m := oh * ow
	k := kh * kw * ic
	cols := c.Arena.I16(m * k)
	for b := 0; b < n; b++ {
		im2colQuant(in, b, a, inZ, kh, kw, oh, ow, cols)
		outBase := b * m * oc
		for i := 0; i < m; i++ {
			ci := cols[i*k : (i+1)*k]
			for co := 0; co < oc; co++ {
				wj := w.I[co*k : (co+1)*k]
				var acc int32
				for p := 0; p < k; p++ {
					acc += int32(ci[p]) * int32(wj[p])
				}
				if bias != nil {
					acc += bias.X[co]
				}
				out.U[outBase+i*oc+co] = clampU8(outZ+muls[co].Apply(acc), lo, hi)
			}
		}
	}
	return nil
}

// depthwiseQuantRef is the correct quantized DepthwiseConv2D (int32
// accumulator).
func depthwiseQuantRef(c *Ctx) error {
	return depthwiseQuantImpl(c, false)
}

// depthwiseQuantOptBuggy is the historical optimized kernel the paper's
// per-layer diagnosis exposed (§4.4, Figure 6 left): the hand-vectorized
// requantization emits a logical right shift where an arithmetic one was
// needed, so every negative accumulator — roughly half of all pre-activation
// values — saturates to the top of the quantized range. Downstream layers
// amplify the garbage and the model emits constant or invalid outputs (0%
// accuracy), with a normalized-rMSE spike at the first DepthwiseConv2D
// layer. The reference kernel computes the same convolution with the correct
// arithmetic shift, which is exactly how the paper's resolver-diff
// methodology isolates the defect.
func depthwiseQuantOptBuggy(c *Ctx) error {
	return depthwiseQuantImpl(c, true)
}

func depthwiseQuantImpl(c *Ctx, logicalShiftBug bool) error {
	// The tiled backend's register-accumulator kernel covers the standard
	// depth_multiplier == 1 layout with tap tables up to 5x5; the
	// injected-bug variant and rarer layouts keep the original loop
	// (bit-exact either way for the former).
	if c.Backend == BackendTiled && !logicalShiftBug && max1(c.Node.Attrs.DepthMultiplier) == 1 {
		if w, err := c.In(1); err == nil && w.Shape[1]*w.Shape[2] <= maxDWTaps {
			return depthwiseQuantTiled(c)
		}
	}
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	mult := max1(a.DepthMultiplier)
	n, ih, iw, ic := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, oc := w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	dh, dw := max1(a.DilationH), max1(a.DilationW)
	muls, err := cachedConvMultipliers(c, oc)
	if err != nil {
		return err
	}
	inZ := inQ.ZeroPoint(0)
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for co := 0; co < oc; co++ {
					ci := co / mult
					var acc int32
					for ky := 0; ky < kh; ky++ {
						iy := oy*a.StrideH - a.PadT + ky*dh
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*a.StrideW - a.PadL + kx*dw
							if ix < 0 || ix >= iw {
								continue
							}
							acc += (int32(in.U[((b*ih+iy)*iw+ix)*ic+ci]) - inZ) * int32(w.I[(ky*kw+kx)*oc+co])
						}
					}
					if bias != nil {
						acc += bias.X[co]
					}
					var requantized int32
					if logicalShiftBug {
						requantized = muls[co].ApplyLogicalShiftBug(acc)
					} else {
						requantized = muls[co].Apply(acc)
					}
					out.U[((b*oh+oy)*ow+ox)*oc+co] = clampU8(outZ+requantized, lo, hi)
				}
			}
		}
	}
	return nil
}

// denseQuantOpt is the optimized resolver's quantized fully-connected
// kernel: a dispatcher so the tiled backend lowers dense through the packed
// int8 path. The other backends share the reference loop — bit-exact either
// way, since integer accumulation is associative.
func denseQuantOpt(c *Ctx) error {
	if c.Backend == BackendTiled {
		return denseQuantTiled(c)
	}
	return denseQuantRef(c)
}

// denseQuantRef is the quantized fully-connected kernel.
func denseQuantRef(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n := in.Shape[0]
	inC := in.Len() / n
	outC := w.Shape[0]
	muls, err := cachedConvMultipliers(c, outC)
	if err != nil {
		return err
	}
	inZ := inQ.ZeroPoint(0)
	outZ := outQ.ZeroPoint(0)
	lo, hi := quantActRange(a.Activation, outQ)
	for b := 0; b < n; b++ {
		for co := 0; co < outC; co++ {
			var acc int32
			inBase := b * inC
			wBase := co * inC
			for k := 0; k < inC; k++ {
				acc += (int32(in.U[inBase+k]) - inZ) * int32(w.I[wBase+k])
			}
			if bias != nil {
				acc += bias.X[co]
			}
			out.U[b*outC+co] = clampU8(outZ+muls[co].Apply(acc), lo, hi)
		}
	}
	return nil
}

// ---- quantized pooling ----

// avgPoolQuantCorrect averages in the integer domain with rounding, then
// requantizes if input and output params differ.
func avgPoolQuantCorrect(c *Ctx) error {
	return avgPoolQuantImpl(c, false)
}

// avgPoolQuantBuggy is the historical quantized AveragePool2D defect the
// paper uncovered on MobileNet-v3 (§4.4, Figure 6 right): in the long-window
// accumulation path (engaged when the pooling window has at least
// buggyAvgPoolWindow taps, as in the global pools of squeeze-excite blocks)
// the division by the window size was hoisted out of the vectorized loop and
// lost, so the kernel emits the clamped window *sum* instead of the mean —
// saturating the pooled value for any active channel. Small windows —
// Inception's 3x3 pooling branch, DenseNet's 2x2 transitions — take the
// scalar path and stay correct, which is why only architectures with large
// average pools collapse (the paper's v3) while Inception survives at ±3%.
// Because this kernel is shared by both resolvers, even the reference
// resolver cannot mask the failure — matching the paper's observation that
// Mobile Quant Ref still scores 0% on v3, with rMSE peaks at each
// squeeze-excite average pool.
func avgPoolQuantBuggy(c *Ctx) error {
	return avgPoolQuantImpl(c, true)
}

// buggyAvgPoolWindow is the window area at which the defective vectorized
// accumulation path engages.
const buggyAvgPoolWindow = 32

func avgPoolQuantImpl(c *Ctx, missingDivide bool) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	requant, err := cachedRequantU8(c, inQ, outQ)
	if err != nil {
		return err
	}
	lo, hi := quantActRange(a.Activation, outQ)
	// The defect lives in the long-window path only.
	bugActive := missingDivide && a.KernelH*a.KernelW >= buggyAvgPoolWindow
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for cc := 0; cc < ch; cc++ {
					var sum int32
					count := int32(0)
					for ky := 0; ky < a.KernelH; ky++ {
						iy := oy*a.StrideH - a.PadT + ky
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ox*a.StrideW - a.PadL + kx
							if ix < 0 || ix >= iw {
								continue
							}
							sum += int32(in.U[((b*ih+iy)*iw+ix)*ch+cc])
							count++
						}
					}
					var avg int32
					if count > 0 {
						if bugActive {
							avg = sum // the lost division
						} else {
							avg = roundDiv(sum, count)
						}
					}
					out.U[((b*oh+oy)*ow+ox)*ch+cc] = clampU8(requant(avg), lo, hi)
				}
			}
		}
	}
	return nil
}

// cachedRequantU8 memoizes the requant closure on the Ctx so steady-state
// invokes neither rebuild the multiplier nor allocate the closure.
func cachedRequantU8(c *Ctx, inQ, outQ *quant.Params) (func(int32) int32, error) {
	return cachedIn(c, func() (func(int32) int32, error) {
		return requantU8(inQ, outQ)
	})
}

// requantU8 returns a function mapping a quantized value under inQ to the
// outQ domain. When params match it is the identity.
func requantU8(inQ, outQ *quant.Params) (func(int32) int32, error) {
	if inQ == nil || outQ == nil {
		return nil, fmt.Errorf("ops: quantized op missing activation params")
	}
	if inQ.Scale(0) == outQ.Scale(0) && inQ.ZeroPoint(0) == outQ.ZeroPoint(0) {
		return func(v int32) int32 { return v }, nil
	}
	m, err := quant.NewMultiplier(inQ.Scale(0) / outQ.Scale(0))
	if err != nil {
		return nil, err
	}
	inZ, outZ := inQ.ZeroPoint(0), outQ.ZeroPoint(0)
	return func(v int32) int32 { return outZ + m.Apply(v-inZ) }, nil
}

func roundDiv(a, b int32) int32 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

func maxPoolQuant(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	a := c.Node.Attrs
	inQ, outQ := c.InQ[0], c.OutQ[0]
	requant, err := cachedRequantU8(c, inQ, outQ)
	if err != nil {
		return err
	}
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	lo, hi := quantActRange(a.Activation, outQ)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for cc := 0; cc < ch; cc++ {
					best := int32(-1)
					for ky := 0; ky < a.KernelH; ky++ {
						iy := oy*a.StrideH - a.PadT + ky
						if iy < 0 || iy >= ih {
							continue
						}
						for kx := 0; kx < a.KernelW; kx++ {
							ix := ox*a.StrideW - a.PadL + kx
							if ix < 0 || ix >= iw {
								continue
							}
							if v := int32(in.U[((b*ih+iy)*iw+ix)*ch+cc]); v > best {
								best = v
							}
						}
					}
					out.U[((b*oh+oy)*ow+ox)*ch+cc] = clampU8(requant(best), lo, hi)
				}
			}
		}
	}
	return nil
}

// meanQuant is the global spatial mean in the integer domain. This kernel
// was never buggy — which is exactly why MobileNet-v2 (whose head uses Mean)
// passes per-layer validation under the reference resolver while v3 (whose
// SE blocks use AvgPool2D) does not.
func meanQuant(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	inQ, outQ := c.InQ[0], c.OutQ[0]
	requant, err := cachedRequantU8(c, inQ, outQ)
	if err != nil {
		return err
	}
	n, ih, iw, ch := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	area := int32(ih * iw)
	for b := 0; b < n; b++ {
		for cc := 0; cc < ch; cc++ {
			var sum int32
			for y := 0; y < ih; y++ {
				for x := 0; x < iw; x++ {
					sum += int32(in.U[((b*ih+y)*iw+x)*ch+cc])
				}
			}
			out.U[b*ch+cc] = clampU8(requant(roundDiv(sum, area)), 0, 255)
		}
	}
	return nil
}

func padQuant(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	// Padding fills with the zero point, which represents real 0.
	zp := uint8(0)
	if c.OutQ[0] != nil {
		zp = uint8(c.OutQ[0].ZeroPoint(0))
	}
	for i := range out.U {
		out.U[i] = zp
	}
	if done, err := padRows4D(in, out, c.Node.Attrs.Paddings, func(src, dst, n int) {
		copy(out.U[dst:dst+n], in.U[src:src+n])
	}); done || err != nil {
		return err
	}
	return padCopy(c, in, out, c.Node.Attrs.Paddings, func(src, dst int) {
		out.U[dst] = in.U[src]
	})
}

// ---- quantized elementwise ----

func addQuant(c *Ctx) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	y, err := c.In(1)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	combine, err := cachedIn(c, func() (func(a, b uint8) uint8, error) {
		q1, q2, qo := c.InQ[0], c.InQ[1], c.OutQ[0]
		if q1 == nil || q2 == nil || qo == nil {
			return nil, fmt.Errorf("ops: quantized add missing params")
		}
		m1, err := quant.NewMultiplier(q1.Scale(0) / qo.Scale(0))
		if err != nil {
			return nil, err
		}
		m2, err := quant.NewMultiplier(q2.Scale(0) / qo.Scale(0))
		if err != nil {
			return nil, err
		}
		z1, z2, zo := q1.ZeroPoint(0), q2.ZeroPoint(0), qo.ZeroPoint(0)
		lo, hi := quantActRange(c.Node.Attrs.Activation, qo)
		return func(a, b uint8) uint8 {
			v := zo + m1.Apply(int32(a)-z1) + m2.Apply(int32(b)-z2)
			return clampU8(v, lo, hi)
		}, nil
	})
	if err != nil {
		return err
	}
	return quantBroadcast(c, x, y, out, combine)
}

func mulQuant(c *Ctx) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	y, err := c.In(1)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	combine, err := cachedIn(c, func() (func(a, b uint8) uint8, error) {
		q1, q2, qo := c.InQ[0], c.InQ[1], c.OutQ[0]
		if q1 == nil || q2 == nil || qo == nil {
			return nil, fmt.Errorf("ops: quantized mul missing params")
		}
		m, err := quant.NewMultiplier(q1.Scale(0) * q2.Scale(0) / qo.Scale(0))
		if err != nil {
			return nil, err
		}
		z1, z2, zo := q1.ZeroPoint(0), q2.ZeroPoint(0), qo.ZeroPoint(0)
		lo, hi := quantActRange(c.Node.Attrs.Activation, qo)
		return func(a, b uint8) uint8 {
			v := zo + m.Apply((int32(a)-z1)*(int32(b)-z2))
			return clampU8(v, lo, hi)
		}, nil
	})
	if err != nil {
		return err
	}
	return quantBroadcast(c, x, y, out, combine)
}

func quantBroadcast(c *Ctx, x, y, out *tensor.Tensor, combine func(a, b uint8) uint8) error {
	if x.Len() == y.Len() {
		for i := range out.U {
			out.U[i] = combine(x.U[i], y.U[i])
		}
		return nil
	}
	if x.Rank() != 4 {
		return fmt.Errorf("ops: %v broadcast needs rank-4 lhs, got %v", c.Node.Op, x.Shape)
	}
	n, h, w, ch := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if y.Len() != n*ch {
		return fmt.Errorf("ops: %v cannot broadcast %v with %v", c.Node.Op, x.Shape, y.Shape)
	}
	for b := 0; b < n; b++ {
		for i := 0; i < h*w; i++ {
			base := (b*h*w + i) * ch
			for cc := 0; cc < ch; cc++ {
				out.U[base+cc] = combine(x.U[base+cc], y.U[b*ch+cc])
			}
		}
	}
	return nil
}

func concatQuant(c *Ctx) error {
	out := c.Outputs[0]
	qo := c.OutQ[0]
	// Fast path: all inputs share the output params; raw byte concat.
	same := true
	for i := range c.Inputs {
		qi := c.InQ[i]
		if qi == nil || qo == nil || qi.Scale(0) != qo.Scale(0) || qi.ZeroPoint(0) != qo.ZeroPoint(0) {
			same = false
			break
		}
	}
	if same {
		return concatGeneric(c, func(t *tensor.Tensor) []uint8 { return t.U }, func(dst []uint8, i int, src []uint8, j int) {
			dst[i] = src[j]
		})
	}
	// Slow path: requantize each input into the output domain first.
	requants, err := cachedIn(c, func() ([]func(int32) int32, error) {
		rs := make([]func(int32) int32, len(c.Inputs))
		for i := range c.Inputs {
			r, err := requantU8(c.InQ[i], qo)
			if err != nil {
				return nil, err
			}
			rs[i] = r
		}
		return rs, nil
	})
	if err != nil {
		return err
	}
	// Identify which input each output element came from by replaying the
	// concat walk.
	axis := c.Node.Attrs.Axis
	outer := 1
	for d := 0; d < axis; d++ {
		outer *= out.Shape[d]
	}
	inner := 1
	for d := axis + 1; d < len(out.Shape); d++ {
		inner *= out.Shape[d]
	}
	axisOff := 0
	for ii, in := range c.Inputs {
		inAxis := in.Shape[axis]
		for o := 0; o < outer; o++ {
			for a := 0; a < inAxis; a++ {
				srcBase := (o*inAxis + a) * inner
				dstBase := (o*out.Shape[axis] + axisOff + a) * inner
				for i := 0; i < inner; i++ {
					out.U[dstBase+i] = clampU8(requants[ii](int32(in.U[srcBase+i])), 0, 255)
				}
			}
		}
		axisOff += inAxis
	}
	return nil
}

// ---- quantized activations ----

func reluQuant(c *Ctx) error {
	return clampActQuant(c, graph.ActReLU)
}

func relu6Quant(c *Ctx) error {
	return clampActQuant(c, graph.ActReLU6)
}

func clampActQuant(c *Ctx, act graph.Activation) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	requant, err := cachedRequantU8(c, c.InQ[0], c.OutQ[0])
	if err != nil {
		return err
	}
	lo, hi := quantActRange(act, c.OutQ[0])
	for i := range out.U {
		out.U[i] = clampU8(requant(int32(in.U[i])), lo, hi)
	}
	return nil
}

// lutKernel builds a 256-entry lookup-table kernel for a unary function —
// exactly how TFLite implements quantized hard-swish and logistic.
func lutKernel(f func(float64) float64) Kernel {
	return func(c *Ctx) error {
		in, err := c.In(0)
		if err != nil {
			return err
		}
		out := c.Outputs[0]
		lut, err := cachedIn(c, func() (*[256]uint8, error) {
			inQ, outQ := c.InQ[0], c.OutQ[0]
			if inQ == nil || outQ == nil {
				return nil, fmt.Errorf("ops: quantized %v missing params", c.Node.Op)
			}
			var t [256]uint8
			for q := 0; q < 256; q++ {
				real := inQ.DequantizeU8(uint8(q), 0)
				t[q] = outQ.QuantizeU8(f(real), 0)
			}
			return &t, nil
		})
		if err != nil {
			return err
		}
		for i := range out.U {
			out.U[i] = lut[in.U[i]]
		}
		return nil
	}
}

// softmaxQuant dequantizes, runs the stable float softmax, and requantizes —
// the hybrid approach TFLite uses for ops where integer-only math would cost
// accuracy.
func softmaxQuant(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	inQ, outQ := c.InQ[0], c.OutQ[0]
	if inQ == nil || outQ == nil {
		return fmt.Errorf("ops: quantized softmax missing params")
	}
	last := in.Shape[len(in.Shape)-1]
	rows := in.Len() / last
	buf := c.Arena.F64(last)
	for r := 0; r < rows; r++ {
		base := r * last
		mx := math.Inf(-1)
		for i := 0; i < last; i++ {
			buf[i] = inQ.DequantizeU8(in.U[base+i], 0)
			if buf[i] > mx {
				mx = buf[i]
			}
		}
		var sum float64
		for i := 0; i < last; i++ {
			buf[i] = math.Exp(buf[i] - mx)
			sum += buf[i]
		}
		for i := 0; i < last; i++ {
			out.U[base+i] = outQ.QuantizeU8(buf[i]/sum, 0)
		}
	}
	return nil
}

// ---- boundary ops ----

func quantizeKernel(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	q := c.OutQ[0]
	if q == nil {
		return fmt.Errorf("ops: Quantize output has no params")
	}
	if in.DType != tensor.F32 {
		return fmt.Errorf("ops: Quantize input must be f32, got %v", in.DType)
	}
	for i := range out.U {
		out.U[i] = q.QuantizeU8(float64(in.F[i]), 0)
	}
	return nil
}

func dequantizeKernel(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	q := c.InQ[0]
	if q == nil {
		return fmt.Errorf("ops: Dequantize input has no params")
	}
	if in.DType != tensor.U8 {
		return fmt.Errorf("ops: Dequantize input must be u8, got %v", in.DType)
	}
	for i := range out.F {
		out.F[i] = float32(q.DequantizeU8(in.U[i], 0))
	}
	return nil
}

// resizeBilinearQuant interpolates quantized values directly; input and
// output share params by construction (the converter keeps them equal), so
// interpolation in the integer domain is exact up to rounding.
func resizeBilinearQuant(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	return resizeBilinearGeneric(c, in, out, func(src []int, weights []float32, dst int) {
		var acc float32
		for i, s := range src {
			acc += float32(in.U[s]) * weights[i]
		}
		out.U[dst] = uint8(acc + 0.5)
	})
}

// ---- hybrid kernels (int8 weights, float activations) ----

// denseHybrid implements dynamic-range quantization: float inputs, int8
// symmetric weights dequantized on the fly, float bias.
func denseHybrid(c *Ctx) error {
	in, err := c.In(0)
	if err != nil {
		return err
	}
	w, err := c.In(1)
	if err != nil {
		return err
	}
	bias := c.OptionalIn(2)
	out := c.Outputs[0]
	wQ := c.InQ[1]
	if wQ == nil {
		return fmt.Errorf("ops: hybrid dense weights missing params")
	}
	a := c.Node.Attrs
	n := in.Shape[0]
	inC := in.Len() / n
	outC := w.Shape[0]
	for b := 0; b < n; b++ {
		for co := 0; co < outC; co++ {
			var acc float64
			inBase := b * inC
			wBase := co * inC
			for k := 0; k < inC; k++ {
				acc += float64(in.F[inBase+k]) * float64(w.I[wBase+k])
			}
			acc *= wQ.Scale(co % len(wQ.Scales))
			if bias != nil {
				acc += float64(bias.F[co])
			}
			out.F[b*outC+co] = applyActF32(a.Activation, float32(acc))
		}
	}
	return nil
}

// embeddingHybrid looks up int8 table rows and dequantizes.
func embeddingHybrid(c *Ctx) error {
	ids, err := c.In(0)
	if err != nil {
		return err
	}
	table, err := c.In(1)
	if err != nil {
		return err
	}
	out := c.Outputs[0]
	wQ := c.InQ[1]
	if wQ == nil {
		return fmt.Errorf("ops: hybrid embedding table missing params")
	}
	vocab, dim := table.Shape[0], table.Shape[1]
	scale := float32(wQ.Scale(0))
	for i, id := range ids.X {
		if id < 0 || int(id) >= vocab {
			return fmt.Errorf("ops: embedding id %d outside vocab %d", id, vocab)
		}
		row := table.I[int(id)*dim : (int(id)+1)*dim]
		for j, v := range row {
			out.F[i*dim+j] = float32(v) * scale
		}
	}
	return nil
}

// selfAttentionHybrid dequantizes the four int8 projection matrices and runs
// the float attention computation.
func selfAttentionHybrid(c *Ctx) error {
	x, err := c.In(0)
	if err != nil {
		return err
	}
	if len(c.Inputs) < 9 {
		return fmt.Errorf("ops: SelfAttention needs x + 4 weights + 4 biases, got %d inputs", len(c.Inputs))
	}
	var weights, biases [4][]float32
	for i := 0; i < 4; i++ {
		wt := c.Inputs[1+2*i]
		wq := c.InQ[1+2*i]
		if wt.DType != tensor.I8 || wq == nil {
			return fmt.Errorf("ops: hybrid attention weight %d not int8-with-params", i)
		}
		deq := c.Arena.F32(wt.Len())
		for j, v := range wt.I {
			ch := 0
			if wq.IsPerChannel() {
				ch = j / wt.Shape[1]
			}
			deq[j] = float32(float64(v) * wq.Scale(ch))
		}
		weights[i] = deq
		biases[i] = c.Inputs[2+2*i].F
	}
	return attentionCompute(c, x, weights, biases)
}
