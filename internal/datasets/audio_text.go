package datasets

import (
	"math"
	"math/rand"
	"strings"
)

// AudioSample is one waveform with a keyword label (the Speech Commands
// stand-in).
type AudioSample struct {
	Wave  []float64
	Label int
}

// SpeechKeywords names the synthetic keyword classes. Each keyword has a
// distinct spectral signature (tone pairs or chirps) so a small CNN on
// spectrograms can separate them.
var SpeechKeywords = []string{"yes", "no", "up", "down", "left", "right", "go", "stop"}

// SpeechNumClasses is the keyword count.
const SpeechNumClasses = 8

// SpeechWaveLen is the waveform length in samples.
const SpeechWaveLen = 1024

// SynthSpeech generates n labeled waveforms, classes balanced round-robin.
func SynthSpeech(seed int64, n int) []AudioSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]AudioSample, n)
	for i := range out {
		label := i % SpeechNumClasses
		out[i] = AudioSample{Wave: renderKeyword(rng, label), Label: label}
	}
	return out
}

// keywordSpec defines each keyword's spectral signature as component
// frequencies (cycles/sample) with amplitudes; two classes are chirps.
var keywordSpecs = [][2][]float64{
	{{0.05}, {1.0}},
	{{0.12}, {1.0}},
	{{0.20}, {1.0}},
	{{0.30}, {1.0}},
	{{0.07, 0.22}, {0.8, 0.6}},
	{{0.10, 0.33}, {0.7, 0.7}},
	{{0.04, 0.16, 0.28}, {0.5, 0.6, 0.5}},
	{{0.26, 0.40}, {0.9, 0.4}},
}

func renderKeyword(rng *rand.Rand, label int) []float64 {
	spec := keywordSpecs[label]
	wave := make([]float64, SpeechWaveLen)
	phase := rng.Float64() * 6.28
	ampJitter := 0.8 + rng.Float64()*0.4
	for i := 0; i < SpeechWaveLen; i++ {
		var v float64
		for k, f := range spec[0] {
			fj := f * (1 + 0.02*(rng.Float64()-0.5)/10)
			v += spec[1][k] * ampJitter * sin(6.283185307*fj*float64(i)+phase*float64(k+1))
		}
		v += rng.NormFloat64() * 0.05
		wave[i] = v
	}
	return wave
}

func sin(x float64) float64 { return math.Sin(x) }

// TextSample is one token sequence with a sentiment label (the IMDB
// stand-in).
type TextSample struct {
	Tokens []int32
	Text   string
	Label  int // 0 negative, 1 positive
}

// TextSeqLen is the fixed (padded/truncated) token sequence length.
const TextSeqLen = 12

// Vocabulary layout: id 0 = PAD, id 1 = UNK, then cased word pairs. Every
// sentiment word exists in a capitalized and a lowercase form with distinct
// ids — the mechanism behind the §A case-folding experiment: lowercasing the
// input changes embeddings drastically while a well-trained classifier keeps
// the same output.
var (
	positiveWords = []string{"good", "great", "superb", "lovely", "fine", "classic"}
	negativeWords = []string{"bad", "awful", "boring", "weak", "poor", "flat"}
	neutralWords  = []string{"movie", "film", "plot", "actor", "scene", "the", "a", "was", "and", "it"}
)

// TextVocab maps each token string to its id. Built deterministically.
var TextVocab = buildVocab()

// TextVocabSize is the vocabulary size.
var TextVocabSize = len(TextVocab) + 2 // + PAD, UNK

func buildVocab() map[string]int32 {
	v := make(map[string]int32)
	id := int32(2)
	addBoth := func(w string) {
		v[w] = id
		id++
		v[strings.ToUpper(w[:1])+w[1:]] = id
		id++
	}
	for _, w := range positiveWords {
		addBoth(w)
	}
	for _, w := range negativeWords {
		addBoth(w)
	}
	for _, w := range neutralWords {
		addBoth(w)
	}
	return v
}

// TokenizeText maps words to token ids (PAD=0, UNK=1), fixed length.
func TokenizeText(text string) []int32 {
	words := strings.Fields(text)
	out := make([]int32, TextSeqLen)
	for i := 0; i < TextSeqLen; i++ {
		if i >= len(words) {
			break // PAD
		}
		if id, ok := TextVocab[words[i]]; ok {
			out[i] = id
		} else {
			out[i] = 1 // UNK
		}
	}
	return out
}

// SynthIMDB generates n sentiment-labeled reviews. Sentences mix neutral
// words with majority-sentiment words; roughly half the sentiment words are
// capitalized (sentence starts), so training data covers both cased forms.
func SynthIMDB(seed int64, n int) []TextSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]TextSample, n)
	for i := range out {
		label := i % 2
		out[i] = renderReview(rng, label)
	}
	return out
}

func renderReview(rng *rand.Rand, label int) TextSample {
	pool := negativeWords
	if label == 1 {
		pool = positiveWords
	}
	var words []string
	for len(words) < TextSeqLen {
		var w string
		if rng.Float64() < 0.45 {
			w = pool[rng.Intn(len(pool))]
		} else {
			w = neutralWords[rng.Intn(len(neutralWords))]
		}
		if rng.Float64() < 0.3 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		words = append(words, w)
	}
	text := strings.Join(words, " ")
	return TextSample{Tokens: TokenizeText(text), Text: text, Label: label}
}

// LowercaseText is the §A "bug": case-folding the input before tokenization,
// which maps every capitalized token onto the different lowercase id.
func LowercaseText(text string) string { return strings.ToLower(text) }
