// Package datasets generates the deterministic synthetic datasets that stand
// in for ImageNet, COCO, Speech Commands and IMDB (see DESIGN.md §1). Each
// generator is seeded and pure, so every experiment reproduces exactly.
//
// SynthImageNet's ten classes are engineered so that each of the paper's
// preprocessing-bug classes (§2) destroys a known slice of the class
// information: colour-defined classes make channel order matter, stripe
// orientation makes rotation matter, brightness bands make the normalization
// range matter, and texture frequency makes the resize filter matter.
package datasets

import (
	"math/rand"

	"mlexray/internal/imaging"
)

// ImageSample is one labeled image.
type ImageSample struct {
	Image *imaging.Image
	Label int
}

// ImageNetClassNames names the ten SynthImageNet classes, in label order.
// The class structure maps bug classes onto known class subsets: channel
// swaps confuse red/blue blobs; quarter-turn rotations exchange the stripe
// pair and move the diagonal gratings off-distribution; resize-filter
// aliasing blurs the fine/coarse grating distinction; normalization shifts
// hurt the intensity-defined disks and overall contrast.
var ImageNetClassNames = []string{
	"red-blob", "green-blob", "blue-blob",
	"v-stripes", "h-stripes",
	"dark-disk", "bright-disk",
	"fine-diag", "coarse-diag",
	"plain",
}

// ImageNetNumClasses is the class count of SynthImageNet.
const ImageNetNumClasses = 10

// ImageNetSize is the raw ("camera") resolution; models consume a
// preprocessed (resized) version per their Meta conventions.
const ImageNetSize = 64

// SynthImageNet generates n labeled 64x64 RGB images, classes balanced
// round-robin.
func SynthImageNet(seed int64, n int) []ImageSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ImageSample, n)
	for i := range out {
		label := i % ImageNetNumClasses
		out[i] = ImageSample{Image: renderImageNetClass(rng, label), Label: label}
	}
	return out
}

func renderImageNetClass(rng *rand.Rand, label int) *imaging.Image {
	const s = ImageNetSize
	im := imaging.NewImage(s, s, 3)
	// Mid-gray noisy background.
	for i := range im.Pix {
		im.Pix[i] = noisy(rng, 128, 12)
	}
	switch label {
	case 0, 1, 2: // colour blobs: R, G, B dominant
		drawBlob(rng, im, label)
	case 3, 4: // stripes: vertical (3) / horizontal (4)
		drawStripes(rng, im, label == 4)
	case 5, 6: // intensity disks: dark (5) / bright (6)
		drawDisk(rng, im, label == 6)
	case 7, 8: // texture: fine (7) / coarse (8) diagonal gratings
		// The fine period survives a correct area downsample at reduced
		// contrast but aliases badly under bilinear resampling; the diagonal
		// orientation additionally makes both classes rotation-sensitive.
		period := 4
		if label == 8 {
			period = 12
		}
		drawDiagGrating(rng, im, period)
	case 9: // plain background only
	}
	return im
}

func noisy(rng *rand.Rand, base, spread int) uint8 {
	v := base + rng.Intn(2*spread+1) - spread
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

func drawBlob(rng *rand.Rand, im *imaging.Image, channel int) {
	cx := im.W/2 + rng.Intn(17) - 8
	cy := im.H/2 + rng.Intn(17) - 8
	r := im.W/4 + rng.Intn(im.W/8)
	hi := 190 + rng.Intn(50)
	lo := 40 + rng.Intn(30)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				for c := 0; c < 3; c++ {
					if c == channel {
						im.Set(x, y, c, noisy(rng, hi, 10))
					} else {
						im.Set(x, y, c, noisy(rng, lo, 10))
					}
				}
			}
		}
	}
}

func drawStripes(rng *rand.Rand, im *imaging.Image, horizontal bool) {
	period := 8 + rng.Intn(4)
	phase := rng.Intn(period)
	hi := 200 + rng.Intn(40)
	lo := 50 + rng.Intn(30)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			pos := x
			if horizontal {
				pos = y
			}
			v := lo
			if ((pos+phase)/(period/2))%2 == 0 {
				v = hi
			}
			for c := 0; c < 3; c++ {
				im.Set(x, y, c, noisy(rng, v, 8))
			}
		}
	}
}

func drawDisk(rng *rand.Rand, im *imaging.Image, bright bool) {
	cx := im.W/2 + rng.Intn(13) - 6
	cy := im.H/2 + rng.Intn(13) - 6
	r := im.W/3 + rng.Intn(im.W/10)
	v := 25 + rng.Intn(25) // dark
	if bright {
		v = 215 + rng.Intn(30)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				for c := 0; c < 3; c++ {
					im.Set(x, y, c, noisy(rng, v, 8))
				}
			}
		}
	}
}

// drawDiagGrating renders 45-degree stripes with the given period. A
// quarter-turn rotation maps these onto anti-diagonal stripes, which appear
// in no training class.
func drawDiagGrating(rng *rand.Rand, im *imaging.Image, period int) {
	phase := rng.Intn(period)
	hi := 205 + rng.Intn(30)
	lo := 45 + rng.Intn(25)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := lo
			if ((x+y+phase)/(period/2))%2 == 0 {
				v = hi
			}
			for c := 0; c < 3; c++ {
				im.Set(x, y, c, noisy(rng, v, 8))
			}
		}
	}
}
