package datasets

import (
	"math/rand"

	"mlexray/internal/imaging"
)

// Box is an axis-aligned box in normalized [0,1] image coordinates.
type Box struct {
	CY, CX, H, W float64
	Class        int // 1-based; 0 is background
}

// DetectionSample is one image with ground-truth boxes (the COCO stand-in).
type DetectionSample struct {
	Image *imaging.Image
	Boxes []Box
}

// DetectionClassNames names the object classes (index 0 is background).
var DetectionClassNames = []string{"background", "red-square", "green-disk", "blue-diamond"}

// DetectionNumClasses counts foreground classes + background.
const DetectionNumClasses = 4

// DetectionImageSize is the raw capture resolution.
const DetectionImageSize = 48

// SynthCOCO generates n images each containing 1-3 coloured shapes with
// ground-truth boxes.
func SynthCOCO(seed int64, n int) []DetectionSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]DetectionSample, n)
	for i := range out {
		out[i] = renderDetectionSample(rng)
	}
	return out
}

func renderDetectionSample(rng *rand.Rand) DetectionSample {
	const s = DetectionImageSize
	im := imaging.NewImage(s, s, 3)
	for i := range im.Pix {
		im.Pix[i] = noisy(rng, 110, 14)
	}
	count := 1 + rng.Intn(3)
	var boxes []Box
	type placed struct{ cx, cy, size int }
	var placedObjs []placed
	for o := 0; o < count; o++ {
		cls := 1 + rng.Intn(DetectionNumClasses-1)
		size := 10 + rng.Intn(8)
		// Retry placement so objects never overlap (occluded centres would
		// corrupt both training targets and the mAP ground truth).
		ok := false
		var cx, cy int
		for attempt := 0; attempt < 20 && !ok; attempt++ {
			cx = size/2 + 2 + rng.Intn(s-size-4)
			cy = size/2 + 2 + rng.Intn(s-size-4)
			ok = true
			for _, p := range placedObjs {
				if abs(cx-p.cx) < (size+p.size)/2+2 && abs(cy-p.cy) < (size+p.size)/2+2 {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		placedObjs = append(placedObjs, placed{cx, cy, size})
		drawObject(rng, im, cls, cx, cy, size)
		boxes = append(boxes, Box{
			CY:    float64(cy) / s,
			CX:    float64(cx) / s,
			H:     float64(size) / s,
			W:     float64(size) / s,
			Class: cls,
		})
	}
	return DetectionSample{Image: im, Boxes: boxes}
}

func drawObject(rng *rand.Rand, im *imaging.Image, cls, cx, cy, size int) {
	half := size / 2
	var r, g, b int
	switch cls {
	case 1:
		r, g, b = 220, 40, 40
	case 2:
		r, g, b = 40, 220, 40
	case 3:
		r, g, b = 40, 40, 220
	}
	for y := cy - half; y <= cy+half; y++ {
		for x := cx - half; x <= cx+half; x++ {
			if x < 0 || x >= im.W || y < 0 || y >= im.H {
				continue
			}
			dx, dy := x-cx, y-cy
			inside := false
			switch cls {
			case 1: // square
				inside = true
			case 2: // disk
				inside = dx*dx+dy*dy <= half*half
			case 3: // diamond
				inside = abs(dx)+abs(dy) <= half
			}
			if inside {
				im.Set(x, y, 0, noisy(rng, r, 10))
				im.Set(x, y, 1, noisy(rng, g, 10))
				im.Set(x, y, 2, noisy(rng, b, 10))
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SegmentationSample is one image with a per-pixel label map at a reduced
// resolution (labels are [H/2, W/2], matching the segmentation head).
type SegmentationSample struct {
	Image  *imaging.Image
	Labels []int32 // row-major (H/2)*(W/2), values in [0, classes)
	LH, LW int
}

// SegmentationNumClasses counts segmentation classes (0 = background).
const SegmentationNumClasses = 3

// SegmentationImageSize is the raw capture resolution.
const SegmentationImageSize = 32

// SynthSegmentation generates n images with per-pixel ground truth: a red
// region (class 1) and a blue region (class 2) on background (class 0).
func SynthSegmentation(seed int64, n int) []SegmentationSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SegmentationSample, n)
	for i := range out {
		out[i] = renderSegSample(rng)
	}
	return out
}

func renderSegSample(rng *rand.Rand) SegmentationSample {
	const s = SegmentationImageSize
	im := imaging.NewImage(s, s, 3)
	full := make([]int32, s*s)
	for i := range im.Pix {
		im.Pix[i] = noisy(rng, 120, 12)
	}
	// Two non-class-0 regions: a red rectangle and a blue disk.
	rx := rng.Intn(s / 2)
	ry := rng.Intn(s / 2)
	rw := 8 + rng.Intn(8)
	rh := 8 + rng.Intn(8)
	for y := ry; y < ry+rh && y < s; y++ {
		for x := rx; x < rx+rw && x < s; x++ {
			im.Set(x, y, 0, noisy(rng, 210, 10))
			im.Set(x, y, 1, noisy(rng, 50, 10))
			im.Set(x, y, 2, noisy(rng, 50, 10))
			full[y*s+x] = 1
		}
	}
	cx := s/2 + rng.Intn(s/3)
	cy := s/2 + rng.Intn(s/3)
	r := 5 + rng.Intn(5)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				im.Set(x, y, 0, noisy(rng, 50, 10))
				im.Set(x, y, 1, noisy(rng, 50, 10))
				im.Set(x, y, 2, noisy(rng, 210, 10))
				full[y*s+x] = 2
			}
		}
	}
	// Downsample labels 2x by majority (top-left sample is adequate for
	// synthetic regions).
	lh, lw := s/2, s/2
	labels := make([]int32, lh*lw)
	for y := 0; y < lh; y++ {
		for x := 0; x < lw; x++ {
			labels[y*lw+x] = full[(2*y)*s+2*x]
		}
	}
	return SegmentationSample{Image: im, Labels: labels, LH: lh, LW: lw}
}
