package datasets

import (
	"strings"
	"testing"

	"mlexray/internal/dsp"
)

func TestSynthImageNetDeterministicAndBalanced(t *testing.T) {
	a := SynthImageNet(42, 40)
	b := SynthImageNet(42, 40)
	if len(a) != 40 {
		t.Fatalf("len = %d", len(a))
	}
	counts := make([]int, ImageNetNumClasses)
	for i := range a {
		counts[a[i].Label]++
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across same-seed runs")
		}
		for p := range a[i].Image.Pix {
			if a[i].Image.Pix[p] != b[i].Image.Pix[p] {
				t.Fatal("pixels differ across same-seed runs")
			}
		}
	}
	for c, n := range counts {
		if n != 4 {
			t.Errorf("class %d has %d samples, want 4", c, n)
		}
	}
	c := SynthImageNet(43, 10)
	same := true
	for p := range a[0].Image.Pix {
		if a[0].Image.Pix[p] != c[0].Image.Pix[p] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

func TestImageNetClassStructure(t *testing.T) {
	samples := SynthImageNet(1, 100)
	// Red-blob images must have higher mean R than B; blue-blob the
	// opposite — the property that makes channel swaps damaging.
	chanMean := func(im0 ImageSample, c int) float64 {
		var sum float64
		n := 0
		for i := c; i < len(im0.Image.Pix); i += 3 {
			sum += float64(im0.Image.Pix[i])
			n++
		}
		return sum / float64(n)
	}
	for _, s := range samples {
		switch s.Label {
		case 0:
			if chanMean(s, 0) <= chanMean(s, 2) {
				t.Error("red-blob image has R <= B")
			}
		case 2:
			if chanMean(s, 2) <= chanMean(s, 0) {
				t.Error("blue-blob image has B <= R")
			}
		case 5:
			if chanMean(s, 0) > 128 {
				t.Error("dark-disk image too bright")
			}
		case 6:
			if chanMean(s, 0) < 115 {
				t.Error("bright-disk image too dark")
			}
		}
	}
	if len(ImageNetClassNames) != ImageNetNumClasses {
		t.Error("class-name table size")
	}
}

func TestSynthCOCOBoxes(t *testing.T) {
	samples := SynthCOCO(7, 30)
	for _, s := range samples {
		if len(s.Boxes) < 1 || len(s.Boxes) > 3 {
			t.Fatalf("box count %d", len(s.Boxes))
		}
		for _, b := range s.Boxes {
			if b.Class < 1 || b.Class >= DetectionNumClasses {
				t.Errorf("class %d out of range", b.Class)
			}
			if b.CX < 0 || b.CX > 1 || b.CY < 0 || b.CY > 1 || b.W <= 0 || b.H <= 0 {
				t.Errorf("bad box %+v", b)
			}
			// The object must actually be drawn: sample the box centre and
			// check the class colour dominates there.
			px := int(b.CX * DetectionImageSize)
			py := int(b.CY * DetectionImageSize)
			im := s.Image
			r := int(im.At(px, py, 0))
			g := int(im.At(px, py, 1))
			bl := int(im.At(px, py, 2))
			switch b.Class {
			case 1:
				if r <= g || r <= bl {
					t.Error("red-square centre not red")
				}
			case 2:
				if g <= r || g <= bl {
					t.Error("green-disk centre not green")
				}
			case 3:
				if bl <= r || bl <= g {
					t.Error("blue-diamond centre not blue")
				}
			}
		}
	}
}

func TestSynthSegmentationLabels(t *testing.T) {
	samples := SynthSegmentation(9, 20)
	for _, s := range samples {
		if len(s.Labels) != s.LH*s.LW {
			t.Fatalf("label map %d for %dx%d", len(s.Labels), s.LH, s.LW)
		}
		var has1, has2 bool
		for _, l := range s.Labels {
			if l < 0 || l >= SegmentationNumClasses {
				t.Fatalf("label %d out of range", l)
			}
			if l == 1 {
				has1 = true
			}
			if l == 2 {
				has2 = true
			}
		}
		if !has1 || !has2 {
			t.Error("segmentation sample missing a foreground class")
		}
	}
}

func TestSynthSpeechSeparableSpectra(t *testing.T) {
	samples := SynthSpeech(11, 32)
	// The single-tone keywords must peak at distinct spectrogram bins.
	peakBin := func(wave []float64) int {
		sp, err := dsp.Spectrogram(wave, dsp.SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: dsp.SpecNormNone})
		if err != nil {
			t.Fatal(err)
		}
		bins := 33
		frame := sp.F[5*bins : 6*bins]
		best := 1 // skip DC
		for i := 2; i < bins; i++ {
			if frame[i] > frame[best] {
				best = i
			}
		}
		return best
	}
	peaks := make(map[int]int)
	for _, s := range samples {
		if s.Label < 4 { // single-tone classes
			p := peakBin(s.Wave)
			if prev, ok := peaks[s.Label]; ok && prev != p {
				t.Errorf("class %d peak moved: %d vs %d", s.Label, prev, p)
			}
			peaks[s.Label] = p
		}
	}
	seen := make(map[int]bool)
	for label, p := range peaks {
		if seen[p] {
			t.Errorf("class %d shares peak bin %d with another class", label, p)
		}
		seen[p] = true
	}
	if len(SpeechKeywords) != SpeechNumClasses || len(keywordSpecs) != SpeechNumClasses {
		t.Error("keyword table sizes")
	}
}

func TestTextVocabCasedPairs(t *testing.T) {
	for _, w := range positiveWords {
		lower, okL := TextVocab[w]
		upper, okU := TextVocab[strings.ToUpper(w[:1])+w[1:]]
		if !okL || !okU {
			t.Fatalf("missing cased pair for %q", w)
		}
		if lower == upper {
			t.Errorf("cased forms of %q share an id", w)
		}
	}
	if TextVocabSize <= len(TextVocab) {
		t.Error("vocab size must include PAD/UNK")
	}
}

func TestTokenizeText(t *testing.T) {
	toks := TokenizeText("good movie xyzzy")
	if toks[0] != TextVocab["good"] {
		t.Error("known token not mapped")
	}
	if toks[1] != TextVocab["movie"] {
		t.Error("neutral token not mapped")
	}
	if toks[2] != 1 {
		t.Errorf("unknown token id = %d, want 1 (UNK)", toks[2])
	}
	if toks[5] != 0 {
		t.Errorf("padding id = %d, want 0", toks[5])
	}
	if len(toks) != TextSeqLen {
		t.Errorf("len = %d", len(toks))
	}
}

func TestSynthIMDBSentimentSignal(t *testing.T) {
	samples := SynthIMDB(13, 40)
	posSet := make(map[string]bool)
	for _, w := range positiveWords {
		posSet[w] = true
	}
	negSet := make(map[string]bool)
	for _, w := range negativeWords {
		negSet[w] = true
	}
	for _, s := range samples {
		var pos, neg int
		for _, w := range strings.Fields(strings.ToLower(s.Text)) {
			if posSet[w] {
				pos++
			}
			if negSet[w] {
				neg++
			}
		}
		if s.Label == 1 && neg > 0 {
			t.Error("positive review contains negative words")
		}
		if s.Label == 0 && pos > 0 {
			t.Error("negative review contains positive words")
		}
	}
}

func TestLowercaseChangesTokens(t *testing.T) {
	s := renderReviewForTest()
	orig := TokenizeText(s)
	folded := TokenizeText(LowercaseText(s))
	diff := 0
	for i := range orig {
		if orig[i] != folded[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("case folding changed no token ids; §A experiment would be vacuous")
	}
}

func renderReviewForTest() string {
	return "Good movie it was Great and the plot was Superb"
}
