package quant

import (
	"fmt"
	"math"
)

// Multiplier is TFLite's fixed-point representation of a real multiplier in
// (0, 1): value ≈ M * 2^(-Shift) where M is a Q31 significand in
// [2^30, 2^31). Quantized kernels requantize int32 accumulators to uint8 by
// multiplying with this fixed-point value — using only integer arithmetic,
// exactly as an ARM kernel would, so the simulated edge runtime has the same
// rounding behaviour class as the real thing.
type Multiplier struct {
	M     int32
	Shift int // right shift applied after the Q31 multiply
}

// NewMultiplier converts a positive real multiplier (< 1 in practice:
// inScale*weightScale/outScale) into fixed point. Multipliers >= 1 are
// supported with a negative shift.
func NewMultiplier(real float64) (Multiplier, error) {
	if real <= 0 || math.IsNaN(real) || math.IsInf(real, 0) {
		return Multiplier{}, fmt.Errorf("quant: multiplier %v out of range", real)
	}
	frac, exp := math.Frexp(real) // real = frac * 2^exp, frac in [0.5, 1)
	m := int64(math.Round(frac * (1 << 31)))
	if m == 1<<31 { // rounding overflow: 1.0 * 2^31
		m /= 2
		exp++
	}
	return Multiplier{M: int32(m), Shift: -exp}, nil
}

// Apply requantizes an int32 accumulator: result ≈ round(acc * real). The
// computation is the standard saturating-rounding-doubling-high-multiply
// followed by a rounding right shift, matching gemmlowp semantics.
func (mul Multiplier) Apply(acc int32) int32 {
	if mul.Shift < 0 {
		// Multiplier >= 1: pre-shift the accumulator (TFLite's
		// MultiplyByQuantizedMultiplier ordering) so no precision is lost
		// to Q31 rounding before the scale-up.
		return saturatingRoundingDoublingHighMul(acc<<uint(-mul.Shift), mul.M)
	}
	v := saturatingRoundingDoublingHighMul(acc, mul.M)
	return roundingRightShift(v, mul.Shift)
}

// Real returns the approximate real value of the multiplier, for
// diagnostics.
func (mul Multiplier) Real() float64 {
	return float64(mul.M) / float64(int64(1)<<31) * math.Pow(2, -float64(mul.Shift))
}

// ApplyLogicalShiftBug emulates the historical vectorized-kernel defect the
// simulated runtime ships in its optimized quantized depthwise convolution:
// the final rounding right shift was emitted as a *logical* shift (SRL)
// instead of an *arithmetic* one (SRA), so negative accumulators have their
// sign bit shifted into the value and come out as huge positives — the
// "different overflow behavior in the optimized kernel" class of bug the
// paper describes (§4.4). Non-negative accumulators are unaffected, which is
// why the defect passes happy-path smoke tests.
func (mul Multiplier) ApplyLogicalShiftBug(acc int32) int32 {
	if mul.Shift <= 0 {
		return mul.Apply(acc)
	}
	v := saturatingRoundingDoublingHighMul(acc, mul.M)
	if v >= 0 {
		return roundingRightShift(v, mul.Shift)
	}
	return int32(uint32(v) >> uint(mul.Shift))
}

func saturatingRoundingDoublingHighMul(a, b int32) int32 {
	if a == math.MinInt32 && b == math.MinInt32 {
		return math.MaxInt32
	}
	ab := int64(a) * int64(b)
	nudge := int64(1 << 30)
	if ab < 0 {
		nudge = 1 - int64(1<<30)
	}
	return int32((ab + nudge) >> 31)
}

func roundingRightShift(v int32, shift int) int32 {
	if shift <= 0 {
		// Negative shift means a left shift (multiplier >= 1).
		return v << uint(-shift)
	}
	mask := int64(1)<<uint(shift) - 1
	remainder := int64(v) & mask
	threshold := mask >> 1
	if v < 0 {
		threshold++
	}
	out := int64(v) >> uint(shift)
	if remainder > threshold {
		out++
	}
	return int32(out)
}
