package quant

import (
	"fmt"
	"math"
	"sort"

	"mlexray/internal/tensor"
)

// Observer accumulates the value range of a tensor across a calibration
// dataset. The paper (§2, "Scale calibration") notes two failure modes that
// this type makes reproducible: a single outlier in the representative
// dataset inflates the range so normal data loses integer resolution, and a
// too-small dataset yields a clipped range. ClipPercentile trades the two
// off: 0 keeps the strict min/max, 0.001 drops the most extreme 0.1% of
// observed values before computing the range.
type Observer struct {
	ClipPercentile float64

	min, max float64
	seen     bool
	// Reservoir of observed values for percentile clipping. Sampling every
	// k-th element keeps memory bounded on large calibration runs.
	samples   []float64
	sampleGap int
	counter   int
}

// NewObserver creates an observer with the given clip percentile.
func NewObserver(clipPercentile float64) *Observer {
	return &Observer{ClipPercentile: clipPercentile, min: math.Inf(1), max: math.Inf(-1), sampleGap: 1}
}

// Observe folds one tensor's values into the running range.
func (o *Observer) Observe(t *tensor.Tensor) {
	if t.DType != tensor.F32 {
		panic("quant: calibration observes float tensors")
	}
	for _, v := range t.F {
		f := float64(v)
		if f < o.min {
			o.min = f
		}
		if f > o.max {
			o.max = f
		}
		if o.ClipPercentile > 0 {
			if o.counter%o.sampleGap == 0 {
				o.samples = append(o.samples, f)
				if len(o.samples) > 1<<16 {
					// Halve the reservoir, double the gap.
					kept := o.samples[:0]
					for i := 0; i < len(o.samples); i += 2 {
						kept = append(kept, o.samples[i])
					}
					o.samples = kept
					o.sampleGap *= 2
				}
			}
			o.counter++
		}
	}
	o.seen = true
}

// Range returns the calibrated [min, max], applying percentile clipping if
// configured.
func (o *Observer) Range() (min, max float64, err error) {
	if !o.seen {
		return 0, 0, fmt.Errorf("quant: observer saw no data")
	}
	if o.ClipPercentile <= 0 || len(o.samples) < 16 {
		return o.min, o.max, nil
	}
	s := append([]float64(nil), o.samples...)
	sort.Float64s(s)
	k := int(o.ClipPercentile * float64(len(s)))
	// With too few samples the percentile covers no whole sample; clipping
	// would then discard genuine extremes (e.g. a 28-value logits tensor),
	// so fall back to the strict range.
	if k < 1 || 2*k >= len(s) {
		return o.min, o.max, nil
	}
	return s[k], s[len(s)-1-k], nil
}

// Params computes asymmetric uint8 activation params from the calibrated
// range.
func (o *Observer) Params() (*Params, error) {
	mn, mx, err := o.Range()
	if err != nil {
		return nil, err
	}
	return AsymmetricU8Params(mn, mx), nil
}

// QuantizeWeightsPerChannel quantizes a float weight tensor to int8 with one
// symmetric scale per output channel. outAxis is the output-channel
// dimension of the weight layout (0 for [outC, kh, kw, inC] conv weights,
// 3 for depthwise [1, kh, kw, outC], 0 for dense [outC, inC]).
func QuantizeWeightsPerChannel(w *tensor.Tensor, outAxis int) (*tensor.Tensor, *Params, error) {
	if w.DType != tensor.F32 {
		return nil, nil, fmt.Errorf("quant: weights must be f32, got %v", w.DType)
	}
	if outAxis < 0 || outAxis >= len(w.Shape) {
		return nil, nil, fmt.Errorf("quant: axis %d out of range for %v", outAxis, w.Shape)
	}
	outC := w.Shape[outAxis]
	// Stride arithmetic for walking one channel of the axis.
	inner := 1
	for i := outAxis + 1; i < len(w.Shape); i++ {
		inner *= w.Shape[i]
	}
	outer := w.Len() / (outC * inner)

	scales := make([]float64, outC)
	zeroPoints := make([]int32, outC)
	for c := 0; c < outC; c++ {
		var maxAbs float64
		for o := 0; o < outer; o++ {
			base := (o*outC + c) * inner
			for i := 0; i < inner; i++ {
				a := math.Abs(float64(w.F[base+i]))
				if a > maxAbs {
					maxAbs = a
				}
			}
		}
		scales[c] = SymmetricI8WeightParams(maxAbs)
	}
	p := PerChannel(scales, zeroPoints, outAxis)
	q := tensor.New(tensor.I8, w.Shape...)
	for c := 0; c < outC; c++ {
		for o := 0; o < outer; o++ {
			base := (o*outC + c) * inner
			for i := 0; i < inner; i++ {
				q.I[base+i] = p.QuantizeI8(float64(w.F[base+i]), c)
			}
		}
	}
	return q, p, nil
}

// QuantizeWeightsPerTensor quantizes a float weight tensor to int8 with a
// single symmetric scale. When channels have very different magnitudes this
// squashes the small ones to zero — the §2 per-tensor pitfall the ablation
// benchmark demonstrates.
func QuantizeWeightsPerTensor(w *tensor.Tensor) (*tensor.Tensor, *Params, error) {
	if w.DType != tensor.F32 {
		return nil, nil, fmt.Errorf("quant: weights must be f32, got %v", w.DType)
	}
	var maxAbs float64
	for _, v := range w.F {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	p := PerTensor(SymmetricI8WeightParams(maxAbs), 0)
	q := tensor.New(tensor.I8, w.Shape...)
	for i, v := range w.F {
		q.I[i] = p.QuantizeI8(float64(v), 0)
	}
	return q, p, nil
}

// QuantizeTensorU8 quantizes a float tensor to uint8 under per-tensor
// params.
func QuantizeTensorU8(t *tensor.Tensor, p *Params) *tensor.Tensor {
	q := tensor.New(tensor.U8, t.Shape...)
	for i, v := range t.F {
		q.U[i] = p.QuantizeU8(float64(v), 0)
	}
	return q
}

// DequantizeTensorU8 reconstructs floats from a uint8 tensor.
func DequantizeTensorU8(t *tensor.Tensor, p *Params) *tensor.Tensor {
	f := tensor.New(tensor.F32, t.Shape...)
	for i, v := range t.U {
		f.F[i] = float32(p.DequantizeU8(v, 0))
	}
	return f
}

// QuantizeBias quantizes a float bias vector to int32 with scale
// inScale*weightScale(c) and zero point 0, the convention quantized conv and
// dense kernels require so the bias adds directly onto the accumulator.
func QuantizeBias(b *tensor.Tensor, inScale float64, wp *Params) *tensor.Tensor {
	q := tensor.New(tensor.I32, b.Shape...)
	for i, v := range b.F {
		s := inScale * wp.Scale(0)
		if wp.IsPerChannel() {
			s = inScale * wp.Scale(i)
		}
		q.X[i] = int32(math.Round(float64(v) / s))
	}
	return q
}
