package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlexray/internal/tensor"
)

func TestAsymmetricParamsBasics(t *testing.T) {
	p := AsymmetricU8Params(-1, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Scale(0)-2.0/255.0) > 1e-12 {
		t.Errorf("scale = %v", p.Scale(0))
	}
	// Real zero must quantize exactly.
	z := p.QuantizeU8(0, 0)
	if back := p.DequantizeU8(z, 0); math.Abs(back) > 1e-9 {
		t.Errorf("zero reconstructs to %v", back)
	}
}

func TestAsymmetricParamsWidenToZero(t *testing.T) {
	// All-positive range must still include zero so padding is exact.
	p := AsymmetricU8Params(2, 6)
	if p.ZeroPoint(0) != 0 {
		t.Errorf("zero point = %d, want 0", p.ZeroPoint(0))
	}
	if math.Abs(p.DequantizeU8(p.QuantizeU8(0, 0), 0)) > 1e-9 {
		t.Error("zero not exactly representable")
	}
}

func TestDegenerateRange(t *testing.T) {
	p := AsymmetricU8Params(0, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.QuantizeU8(0, 0) != 0 {
		t.Error("constant-zero tensor should quantize to zero point")
	}
}

// Property (paper Eqn 1–2): quantize→dequantize error is bounded by half a
// quantization step for in-range values.
func TestQuantRoundTripErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := -rng.Float64()*10 - 0.1
		hi := rng.Float64()*10 + 0.1
		p := AsymmetricU8Params(lo, hi)
		step := p.Scale(0)
		for i := 0; i < 100; i++ {
			v := lo + (hi-lo)*rng.Float64()
			back := p.DequantizeU8(p.QuantizeU8(v, 0), 0)
			if math.Abs(back-v) > step/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSymmetricParamsPinZeroPoint(t *testing.T) {
	p := SymmetricU8Params(-0.5, 4)
	if p.ZeroPoint(0) != 128 {
		t.Errorf("symmetric zero point = %d", p.ZeroPoint(0))
	}
	// Symmetric scale covers [-4, 4] even though data only reaches -0.5:
	// coarser than the asymmetric scale for the same data (§2).
	a := AsymmetricU8Params(-0.5, 4)
	if p.Scale(0) <= a.Scale(0) {
		t.Errorf("symmetric scale %v should be coarser than asymmetric %v", p.Scale(0), a.Scale(0))
	}
}

func TestI8Quantization(t *testing.T) {
	p := PerTensor(0.1, 0)
	if p.QuantizeI8(12.6, 0) != 126 {
		t.Errorf("QuantizeI8(12.6) = %d", p.QuantizeI8(12.6, 0))
	}
	if p.QuantizeI8(1e9, 0) != 127 || p.QuantizeI8(-1e9, 0) != -128 {
		t.Error("I8 saturation")
	}
	if got := p.DequantizeI8(-50, 0); math.Abs(got+5) > 1e-9 {
		t.Errorf("DequantizeI8 = %v", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (&Params{Scales: []float64{1}, ZeroPoints: []int32{0, 0}}).Validate(); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if err := (&Params{Scales: []float64{-1}, ZeroPoints: []int32{0}}).Validate(); err == nil {
		t.Error("accepted negative scale")
	}
	if err := (&Params{}).Validate(); err == nil {
		t.Error("accepted empty params")
	}
}

func TestPerChannelAccessors(t *testing.T) {
	p := PerChannel([]float64{0.1, 0.2}, []int32{0, 0}, 0)
	if !p.IsPerChannel() {
		t.Error("IsPerChannel")
	}
	if p.Scale(1) != 0.2 {
		t.Error("per-channel scale lookup")
	}
	pt := PerTensor(0.5, 3)
	if pt.IsPerChannel() || pt.Scale(7) != 0.5 || pt.ZeroPoint(7) != 3 {
		t.Error("per-tensor accessors should ignore the channel index")
	}
}

// Property: the fixed-point multiplier reproduces real multiplication within
// 1 ulp of the accumulator for representative requantization scales.
func TestMultiplierMatchesRealMath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		real := math.Exp(rng.Float64()*8 - 9) // ~[1e-4, 0.4]
		mul, err := NewMultiplier(real)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			acc := int32(rng.Intn(1<<20) - 1<<19)
			got := mul.Apply(acc)
			want := math.Round(float64(acc) * real)
			if math.Abs(float64(got)-want) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiplierGEOne(t *testing.T) {
	mul, err := NewMultiplier(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := mul.Apply(100); math.Abs(float64(got)-250) > 1 {
		t.Errorf("2.5 * 100 = %d", got)
	}
	if math.Abs(mul.Real()-2.5) > 1e-6 {
		t.Errorf("Real() = %v", mul.Real())
	}
}

func TestMultiplierRejectsBad(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewMultiplier(v); err == nil {
			t.Errorf("NewMultiplier(%v) accepted", v)
		}
	}
}

func TestObserverMinMax(t *testing.T) {
	o := NewObserver(0)
	o.Observe(tensor.FromFloats([]float32{-2, 0, 5}, 3))
	o.Observe(tensor.FromFloats([]float32{1, 7}, 2))
	mn, mx, err := o.Range()
	if err != nil || mn != -2 || mx != 7 {
		t.Errorf("range = [%v, %v], %v", mn, mx, err)
	}
	if _, _, err := NewObserver(0).Range(); err == nil {
		t.Error("empty observer should error")
	}
}

func TestObserverPercentileClipsOutlier(t *testing.T) {
	// 1000 normal values in [0, 1] plus one huge outlier: strict min/max
	// inflates the scale 100x; 1% clipping recovers the usable range (§2
	// scale-calibration pitfall).
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = float32(rng.Float64())
	}
	vals[500] = 100

	strict := NewObserver(0)
	strict.Observe(tensor.FromFloats(vals, len(vals)))
	_, mxStrict, _ := strict.Range()
	if mxStrict != 100 {
		t.Fatalf("strict max = %v", mxStrict)
	}

	clipped := NewObserver(0.01)
	clipped.Observe(tensor.FromFloats(vals, len(vals)))
	_, mxClip, err := clipped.Range()
	if err != nil {
		t.Fatal(err)
	}
	if mxClip > 2 {
		t.Errorf("clipped max = %v, outlier not rejected", mxClip)
	}
	p, err := clipped.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Scale(0) > 0.02 {
		t.Errorf("clipped scale = %v still inflated", p.Scale(0))
	}
}

func TestObserverReservoirBounded(t *testing.T) {
	o := NewObserver(0.001)
	big := tensor.New(tensor.F32, 1<<15)
	for i := 0; i < 8; i++ {
		o.Observe(big)
	}
	if len(o.samples) > 1<<16 {
		t.Errorf("reservoir grew to %d", len(o.samples))
	}
}

func TestQuantizeWeightsPerChannelScales(t *testing.T) {
	// Two output channels with magnitudes 1.0 and 0.001: per-channel keeps
	// both resolvable.
	w := tensor.FromFloats([]float32{1, -0.5, 0.001, -0.0005}, 2, 2)
	q, p, err := QuantizeWeightsPerChannel(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsPerChannel() {
		t.Fatal("expected per-channel params")
	}
	if q.I[0] != 127 {
		t.Errorf("q[0] = %d, want 127", q.I[0])
	}
	if q.I[2] != 127 {
		t.Errorf("small channel q = %d, want 127 under its own scale", q.I[2])
	}
}

func TestPerTensorSquashesSmallChannel(t *testing.T) {
	// The §2 pitfall: with one scale, the 0.001-magnitude channel rounds to
	// zero entirely.
	w := tensor.FromFloats([]float32{1, -0.5, 0.001, -0.0005}, 2, 2)
	q, p, err := QuantizeWeightsPerTensor(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsPerChannel() {
		t.Fatal("expected per-tensor params")
	}
	if q.I[2] != 0 || q.I[3] != 0 {
		t.Errorf("small channel survived per-tensor quantization: %v", q.I)
	}
}

func TestQuantizeWeightsErrors(t *testing.T) {
	if _, _, err := QuantizeWeightsPerChannel(tensor.New(tensor.U8, 2, 2), 0); err == nil {
		t.Error("accepted non-float weights")
	}
	if _, _, err := QuantizeWeightsPerChannel(tensor.New(tensor.F32, 2, 2), 5); err == nil {
		t.Error("accepted bad axis")
	}
	if _, _, err := QuantizeWeightsPerTensor(tensor.New(tensor.I8, 2)); err == nil {
		t.Error("accepted non-float weights")
	}
}

func TestQuantizeDequantizeTensorU8(t *testing.T) {
	p := AsymmetricU8Params(-1, 1)
	in := tensor.FromFloats([]float32{-1, -0.5, 0, 0.5, 1}, 5)
	q := QuantizeTensorU8(in, p)
	back := DequantizeTensorU8(q, p)
	for i := range in.F {
		if math.Abs(float64(back.F[i]-in.F[i])) > p.Scale(0) {
			t.Errorf("round trip [%d]: %v -> %v", i, in.F[i], back.F[i])
		}
	}
}

func TestQuantizeBias(t *testing.T) {
	b := tensor.FromFloats([]float32{0.5, -0.25}, 2)
	wp := PerChannel([]float64{0.01, 0.02}, []int32{0, 0}, 0)
	q := QuantizeBias(b, 0.5, wp)
	// bias_q = bias / (inScale * wScale(c))
	if q.X[0] != 100 {
		t.Errorf("bias[0] = %d, want 100", q.X[0])
	}
	if q.X[1] != -25 {
		t.Errorf("bias[1] = %d, want -25", q.X[1])
	}
	pt := PerTensor(0.01, 0)
	q2 := QuantizeBias(b, 1.0, pt)
	if q2.X[0] != 50 || q2.X[1] != -25 {
		t.Errorf("per-tensor bias = %v", q2.X)
	}
}
