// Package quant implements post-training quantization: asymmetric per-tensor
// uint8 activation quantization (the paper's Eqn 1–2), symmetric per-channel
// int8 weight quantization, range calibration with outlier handling, and the
// TFLite-style fixed-point requantization pipeline (int32 multiplier +
// right shift) that quantized kernels use to map accumulators back to uint8.
//
// The §2 "Model Optimization and Quantization" pitfalls are all expressible
// through this package's options: an outlier-inflated calibration scale,
// symmetric vs asymmetric activation ranges, and per-tensor vs per-channel
// weight scales that squash low-magnitude channels.
package quant

import (
	"fmt"
	"math"
)

// Params describes an affine quantization: real = scale * (q - zeroPoint).
// For per-channel quantization, Scales/ZeroPoints hold one entry per channel
// of the quantized axis (always the output-channel axis in this repository);
// for per-tensor quantization they hold exactly one entry.
type Params struct {
	Scales     []float64 `json:"scales"`
	ZeroPoints []int32   `json:"zero_points"`
	// Axis is the quantized dimension for per-channel params; -1 for
	// per-tensor.
	Axis int `json:"axis"`
}

// PerTensor constructs per-tensor params.
func PerTensor(scale float64, zeroPoint int32) *Params {
	return &Params{Scales: []float64{scale}, ZeroPoints: []int32{zeroPoint}, Axis: -1}
}

// PerChannel constructs per-channel params along the given axis.
func PerChannel(scales []float64, zeroPoints []int32, axis int) *Params {
	return &Params{Scales: scales, ZeroPoints: zeroPoints, Axis: axis}
}

// IsPerChannel reports whether the params carry more than one scale.
func (p *Params) IsPerChannel() bool { return p != nil && len(p.Scales) > 1 }

// Scale returns the scale for channel c (or the single per-tensor scale).
func (p *Params) Scale(c int) float64 {
	if len(p.Scales) == 1 {
		return p.Scales[0]
	}
	return p.Scales[c]
}

// ZeroPoint returns the zero point for channel c.
func (p *Params) ZeroPoint(c int) int32 {
	if len(p.ZeroPoints) == 1 {
		return p.ZeroPoints[0]
	}
	return p.ZeroPoints[c]
}

// Validate checks internal consistency.
func (p *Params) Validate() error {
	if len(p.Scales) == 0 || len(p.Scales) != len(p.ZeroPoints) {
		return fmt.Errorf("quant: %d scales vs %d zero points", len(p.Scales), len(p.ZeroPoints))
	}
	for i, s := range p.Scales {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("quant: bad scale[%d]=%v", i, s)
		}
	}
	return nil
}

// AsymmetricU8Params computes per-tensor asymmetric uint8 parameters from an
// observed [min, max] range — the paper's Eqn 1: scale = (max-min)/255,
// zeroPoint chosen so that real 0 maps exactly onto an integer (required so
// zero padding introduces no error). The range is first widened to include
// zero, as TFLite does.
func AsymmetricU8Params(min, max float64) *Params {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max-min < 1e-9 {
		// Degenerate constant tensor: pick a harmless scale.
		return PerTensor(1.0/255.0, 0)
	}
	scale := (max - min) / 255.0
	zp := int32(math.Round(-min / scale))
	if zp < 0 {
		zp = 0
	}
	if zp > 255 {
		zp = 255
	}
	return PerTensor(scale, zp)
}

// SymmetricU8Params computes per-tensor *symmetric* uint8 parameters: the
// range is forced to [-a, a] with zero point pinned to 128. Symmetric
// quantization wastes part of the integer range when data is skewed (§2) —
// the ablation benchmark quantifies that cost.
func SymmetricU8Params(min, max float64) *Params {
	a := math.Max(math.Abs(min), math.Abs(max))
	if a < 1e-9 {
		return PerTensor(1.0/255.0, 128)
	}
	return PerTensor(2*a/255.0, 128)
}

// SymmetricI8WeightParams computes symmetric int8 weight parameters for one
// output channel: scale = maxAbs/127, zero point 0.
func SymmetricI8WeightParams(maxAbs float64) (scale float64) {
	if maxAbs < 1e-12 {
		return 1.0 / 127.0
	}
	return maxAbs / 127.0
}

// QuantizeU8 maps a real value to uint8 under params channel c (Eqn 1).
func (p *Params) QuantizeU8(v float64, c int) uint8 {
	q := math.Round(float64(p.ZeroPoint(c)) + v/p.Scale(c))
	if q < 0 {
		q = 0
	}
	if q > 255 {
		q = 255
	}
	return uint8(q)
}

// DequantizeU8 reconstructs a real value from uint8 (Eqn 2).
func (p *Params) DequantizeU8(q uint8, c int) float64 {
	return p.Scale(c) * float64(int32(q)-p.ZeroPoint(c))
}

// QuantizeI8 maps a real value to int8 under params channel c.
func (p *Params) QuantizeI8(v float64, c int) int8 {
	q := math.Round(float64(p.ZeroPoint(c)) + v/p.Scale(c))
	if q < -128 {
		q = -128
	}
	if q > 127 {
		q = 127
	}
	return int8(q)
}

// DequantizeI8 reconstructs a real value from int8.
func (p *Params) DequantizeI8(q int8, c int) float64 {
	return p.Scale(c) * float64(int32(q)-p.ZeroPoint(c))
}
