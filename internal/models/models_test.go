package models

import (
	"math"
	"testing"

	"mlexray/internal/convert"
	"mlexray/internal/graph"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/tensor"
)

// classifierBuilders lists the zoo's classification architectures.
var classifierBuilders = map[string]func(int64) *graph.Model{
	"mobilenetv1": MobileNetV1Mini,
	"mobilenetv2": MobileNetV2Mini,
	"mobilenetv3": MobileNetV3Mini,
	"resnet":      ResNetMini,
	"inception":   InceptionMini,
	"densenet":    DenseNetMini,
}

func TestClassifiersBuildAndRun(t *testing.T) {
	ref := ops.NewReference(ops.Fixed())
	for name, build := range classifierBuilders {
		m := build(1)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Meta.NumClasses != 10 || m.Meta.Task != "classification" {
			t.Errorf("%s: meta %+v", name, m.Meta)
		}
		ip, err := interp.New(m, ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := tensor.New(tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
		in.Fill(0.1)
		out, err := ip.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() != 10 || !out.IsFinite() {
			t.Errorf("%s: output %v", name, out)
		}
		var sum float64
		for _, v := range out.F {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("%s: softmax sums to %v", name, sum)
		}
	}
}

func TestClassifiersSurviveFullConversion(t *testing.T) {
	for name, build := range classifierBuilders {
		m := build(2)
		mob, err := convert.Optimize(m)
		if err != nil {
			t.Fatalf("%s optimize: %v", name, err)
		}
		calib := []*tensor.Tensor{}
		for i := 0; i < 3; i++ {
			in := tensor.New(tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
			in.Fill(float64(i)*0.3 - 0.3)
			calib = append(calib, in)
		}
		q, err := convert.Quantize(mob, calib, convert.DefaultQuantOptions())
		if err != nil {
			t.Fatalf("%s quantize: %v", name, err)
		}
		for _, resolver := range []*ops.Resolver{ops.NewReference(ops.Historical()), ops.NewOptimized(ops.Historical())} {
			ip, err := interp.New(q, resolver)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, resolver.Name(), err)
			}
			in := tensor.New(tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
			out, err := ip.Run(in)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, resolver.Name(), err)
			}
			if !out.IsFinite() {
				t.Errorf("%s/%s: non-finite output", name, resolver.Name())
			}
		}
	}
}

func TestMobileNetStructuralProperties(t *testing.T) {
	v2 := MobileNetV2Mini(3)
	v3 := MobileNetV3Mini(3)
	hasOp := func(m *graph.Model, op graph.OpType) bool {
		for _, n := range m.Nodes {
			if n.Op == op {
				return true
			}
		}
		return false
	}
	// v2 reduces via Mean (safe op); v3 carries AvgPool2D (the buggy op) in
	// both its SE blocks and its head.
	if hasOp(v2, graph.OpAvgPool2D) {
		t.Error("v2 must not use AvgPool2D")
	}
	if !hasOp(v2, graph.OpMean) {
		t.Error("v2 classifier head must use Mean")
	}
	if hasOp(v3, graph.OpMean) {
		t.Error("v3 must reduce with AvgPool2D, not Mean")
	}
	if !hasOp(v3, graph.OpAvgPool2D) {
		t.Error("v3 must use AvgPool2D in SE blocks")
	}
	if !hasOp(v3, graph.OpHardSwish) || !hasOp(v3, graph.OpMul) {
		t.Error("v3 must use hard-swish and SE gating")
	}
	if !hasOp(v2, graph.OpPad) {
		t.Error("v2 must lower one stride-2 depthwise through an explicit Pad")
	}
	if !hasOp(v2, graph.OpDepthwiseConv2D) || !hasOp(MobileNetV1Mini(3), graph.OpDepthwiseConv2D) {
		t.Error("mobilenets must use depthwise convs")
	}
	// v3's SE pool windows must engage the defective long-window path.
	for _, n := range v3.Nodes {
		if n.Op == graph.OpAvgPool2D {
			if n.Attrs.KernelH*n.Attrs.KernelW < 32 {
				t.Errorf("SE pool %q window %dx%d below the buggy-path threshold",
					n.Name, n.Attrs.KernelH, n.Attrs.KernelW)
			}
		}
	}
	// Inception's pooling branch must stay below the threshold.
	for _, n := range InceptionMini(3).Nodes {
		if n.Op == graph.OpAvgPool2D && n.Attrs.KernelH*n.Attrs.KernelW >= 32 {
			t.Errorf("inception pool %q would hit the buggy path", n.Name)
		}
	}
}

func TestMetaConventionsDiffer(t *testing.T) {
	dn := DenseNetMini(4)
	if dn.Meta.ChannelOrder != "BGR" || dn.Meta.NormLo != 0 {
		t.Errorf("densenet meta = %+v", dn.Meta)
	}
	mn := MobileNetV2Mini(4)
	if mn.Meta.ChannelOrder != "RGB" || mn.Meta.NormLo != -1 {
		t.Errorf("mobilenet meta = %+v", mn.Meta)
	}
	rn := ResNetMini(4)
	if rn.Meta.NormLo != 0 || rn.Meta.NormHi != 1 {
		t.Errorf("resnet meta = %+v", rn.Meta)
	}
}

func TestSSDAnchorsAndMatching(t *testing.T) {
	anchors := SSDAnchors()
	if len(anchors) != SSDGrid*SSDGrid {
		t.Fatalf("anchor count %d", len(anchors))
	}
	// A ground-truth box on an anchor centre must match that anchor.
	gt := [][4]float64{{anchors[7][0], anchors[7][1], SSDAnchorSize, SSDAnchorSize}}
	cls, box := MatchAnchors(anchors, gt, []int{2})
	if cls[7] != 2 {
		t.Errorf("anchor 7 class = %d, want 2", cls[7])
	}
	// A perfectly matched anchor has ~zero offsets.
	for j := 0; j < 4; j++ {
		if math.Abs(float64(box[7*4+j])) > 1e-9 {
			t.Errorf("offset[%d] = %v, want 0", j, box[7*4+j])
		}
	}
	// Every ground truth gets at least one positive anchor even at low IoU.
	gtSmall := [][4]float64{{0.5, 0.5, 0.04, 0.04}}
	clsS, _ := MatchAnchors(anchors, gtSmall, []int{1})
	pos := 0
	for _, c := range clsS {
		if c != 0 {
			pos++
		}
	}
	if pos == 0 {
		t.Error("small ground truth matched no anchor")
	}
}

func TestEncodeDecodeBoxRoundTrip(t *testing.T) {
	anchor := [4]float64{0.5, 0.5, 0.3, 0.3}
	gt := [4]float64{0.55, 0.42, 0.25, 0.35}
	back := DecodeBox(EncodeBox(gt, anchor), anchor)
	for i := 0; i < 4; i++ {
		if math.Abs(back[i]-gt[i]) > 1e-12 {
			t.Errorf("round trip [%d]: %v vs %v", i, back[i], gt[i])
		}
	}
}

func TestIoU(t *testing.T) {
	a := [4]float64{0.5, 0.5, 0.2, 0.2}
	if got := IoU(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self IoU = %v", got)
	}
	b := [4]float64{0.9, 0.9, 0.1, 0.1}
	if got := IoU(a, b); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	c := [4]float64{0.5, 0.6, 0.2, 0.2} // half horizontal overlap
	want := 0.5 * 0.2 * 0.2 / (2*0.04 - 0.02)
	_ = want
	got := IoU(a, c)
	if got <= 0.3 || got >= 0.4 {
		t.Errorf("partial IoU = %v", got)
	}
}

func TestNMSSuppressesDuplicates(t *testing.T) {
	d := []Detection{
		{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1, Score: 0.9},
		{Box: [4]float64{0.51, 0.5, 0.2, 0.2}, Class: 1, Score: 0.8},
		{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 2, Score: 0.7}, // other class survives
	}
	kept := NMS(d, 0.5)
	if len(kept) != 2 {
		t.Fatalf("kept %d detections", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Class != 2 {
		t.Errorf("NMS kept %v", kept)
	}
}

func TestDetectorsBuildAndRun(t *testing.T) {
	ref := ops.NewReference(ops.Fixed())
	for name, build := range map[string]func(int64) *graph.Model{"ssd": SSDMini, "frcnn": FRCNNMini} {
		m := build(5)
		ip, err := interp.New(m, ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := tensor.New(tensor.F32, 1, DetectionInputSize, DetectionInputSize, 3)
		if err := ip.SetInput(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ip.Invoke(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scores, _ := ip.Output(0)
		boxes, _ := ip.Output(1)
		if !tensor.SameShape(scores.Shape, []int{1, 36, 4}) || !tensor.SameShape(boxes.Shape, []int{1, 36, 4}) {
			t.Errorf("%s: shapes %v %v", name, scores.Shape, boxes.Shape)
		}
		if len(m.Meta.Anchors) != 36 {
			t.Errorf("%s: %d anchors in meta", name, len(m.Meta.Anchors))
		}
	}
}

func TestSegSpeechTextBuildAndRun(t *testing.T) {
	ref := ops.NewReference(ops.Fixed())

	seg := DeepLabMini(6)
	ip, err := interp.New(seg, ref)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ip.Run(tensor.New(tensor.F32, 1, SegInputSize, SegInputSize, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out.Shape, []int{1, 16, 16, 3}) {
		t.Errorf("seg output %v", out.Shape)
	}

	kws := KWSMini(6, "a", "log-global")
	ip, err = interp.New(kws, ref)
	if err != nil {
		t.Fatal(err)
	}
	out, err = ip.Run(tensor.New(tensor.F32, 1, KWSFrames, KWSBins, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 8 {
		t.Errorf("kws output %v", out.Shape)
	}

	for name, build := range map[string]*graph.Model{
		"nnlm": NNLMMini(6, 12, 50), "bert": MobileBertMini(6, 12, 50),
	} {
		ip, err = interp.New(build, ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ids := tensor.New(tensor.I32, 1, 12)
		out, err = ip.Run(ids)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() != 2 || !out.IsFinite() {
			t.Errorf("%s: output %v", name, out)
		}
		if _, err := build.TensorByName("embeddings"); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestInGraphPreprocessing(t *testing.T) {
	base := MobileNetV2Mini(7)
	ing, err := WithInGraphPreprocessing(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Validate(); err != nil {
		t.Fatal(err)
	}
	if ing.Meta.InputH != 64 || ing.Meta.Resize != "ingraph" {
		t.Errorf("meta %+v", ing.Meta)
	}
	ref := ops.NewReference(ops.Fixed())
	ip, err := interp.New(ing, ref)
	if err != nil {
		t.Fatal(err)
	}
	raw := tensor.New(tensor.F32, 1, 64, 64, 3)
	raw.Fill(128)
	outIn, err := ip.Run(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent external preprocessing: normalize then bilinear-resize.
	ipBase, err := interp.New(base, ref)
	if err != nil {
		t.Fatal(err)
	}
	ext := tensor.New(tensor.F32, 1, 28, 28, 3)
	ext.Fill(128.0/255.0*2 - 1)
	outExt, err := ipBase.Run(ext)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(outIn, outExt, 1e-3, 1e-4) {
		t.Errorf("in-graph preprocessing diverges on constant input: %v vs %v", outIn.F, outExt.F)
	}
}
