package models

import (
	"fmt"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// ResNetMini is a two-block residual network with a max-pool stem. Expects
// RGB in [0, 1] — a different normalization convention from the MobileNets,
// which is the sort of per-model detail deployment teams lose track of.
func ResNetMini(seed int64) *graph.Model {
	n := newNet("resnet-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
	x := n.convBN("conv1", in, 8, 3, 1, 1, "relu")
	x = n.b.Node(graph.OpMaxPool2D, "pool1",
		graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, x)

	x = n.resBlock("res1", x, 8, 1)
	x = n.resBlock("res2", x, 16, 2)

	out := n.classifierHead(x, 10)
	n.b.Output(out)
	n.b.Meta(classifierMeta("resnet-mini", "RGB", 0, 1, "area"))
	return n.b.MustFinish()
}

func (n *net) resBlock(name string, x int, outC, stride int) int {
	inC := n.b.Shape(x)[3]
	shortcut := x
	h := n.convBN(name+"/conv1", x, outC, 3, stride, 1, "relu")
	h = n.convBN(name+"/conv2", h, outC, 3, 1, 1, "")
	if stride != 1 || inC != outC {
		shortcut = n.convBN(name+"/proj", x, outC, 1, stride, 1, "")
	}
	h = n.b.Node(graph.OpAdd, name+"/add", graph.Attrs{}, shortcut, h)
	return n.b.Node(graph.OpReLU, name+"/relu_out", graph.Attrs{}, h)
}

// InceptionMini stacks two inception modules whose branches (1x1, 1x1->3x3,
// 3x3-avgpool->1x1) concatenate along channels. The 3x3 average pool takes
// the short-window (correct) path of the quantized kernel, so Inception
// survives quantization at the paper's ±3% — only large-window pools break.
func InceptionMini(seed int64) *graph.Model {
	n := newNet("inception-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
	x := n.convBN("stem", in, 8, 3, 2, 1, "relu")

	x = n.inceptionModule("incep1", x, 8, 4, 8, 4)
	x = n.convBN("reduce", x, 16, 3, 2, 1, "relu")
	x = n.inceptionModule("incep2", x, 8, 6, 12, 4)

	out := n.classifierHead(x, 10)
	n.b.Output(out)
	n.b.Meta(classifierMeta("inception-mini", "RGB", -1, 1, "area"))
	return n.b.MustFinish()
}

func (n *net) inceptionModule(name string, x int, c1x1, cReduce, c3x3, cPool int) int {
	b0 := n.convBN(name+"/b0", x, c1x1, 1, 1, 1, "relu")
	b1 := n.convBN(name+"/b1_reduce", x, cReduce, 1, 1, 1, "relu")
	b1 = n.convBN(name+"/b1_conv", b1, c3x3, 3, 1, 1, "relu")
	shape := n.b.Shape(x)
	pt, pb := graph.SamePadding(shape[1], 3, 1, 1)
	pl, pr := graph.SamePadding(shape[2], 3, 1, 1)
	b2 := n.b.Node(graph.OpAvgPool2D, name+"/b2_pool",
		graph.Attrs{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadT: pt, PadB: pb, PadL: pl, PadR: pr}, x)
	b2 = n.convBN(name+"/b2_proj", b2, cPool, 1, 1, 1, "relu")
	return n.b.Node(graph.OpConcat, name+"/concat", graph.Attrs{Axis: 3}, b0, b1, b2)
}

// DenseNetMini chains two dense blocks (feature concatenation) with an
// average-pool transition. Expects **BGR** input in [0, 1] — the channel
// convention that silently breaks when an app feeds it RGB.
func DenseNetMini(seed int64) *graph.Model {
	n := newNet("densenet-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
	x := n.convBN("stem", in, 8, 3, 2, 1, "relu")

	x = n.denseBlock("dense1", x, 2, 4)
	x = n.transition("trans1", x, 8)
	x = n.denseBlock("dense2", x, 2, 8)

	out := n.classifierHead(x, 10)
	n.b.Output(out)
	n.b.Meta(classifierMeta("densenet-mini", "BGR", 0, 1, "area"))
	return n.b.MustFinish()
}

func (n *net) denseBlock(name string, x int, layers, growth int) int {
	for l := 0; l < layers; l++ {
		h := n.convBN(fmt.Sprintf("%s/l%d", name, l), x, growth, 3, 1, 1, "relu")
		x = n.b.Node(graph.OpConcat, fmt.Sprintf("%s/cat%d", name, l), graph.Attrs{Axis: 3}, x, h)
	}
	return x
}

func (n *net) transition(name string, x int, outC int) int {
	x = n.convBN(name+"/conv", x, outC, 1, 1, 1, "relu")
	// 2x2 average pool: 4 taps, short-window path, unaffected by the
	// quantized kernel defect.
	return n.b.Node(graph.OpAvgPool2D, name+"/pool",
		graph.Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, x)
}
